package ftbfs_test

import (
	"testing"

	"ftbfs"
)

func TestBuildVertexFT(t *testing.T) {
	g := ringWithChords(18)
	vs, err := ftbfs.BuildVertexFT(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := vs.Verify(); err != nil {
		t.Fatal(err)
	}
	if vs.Size() < g.N()-1 || vs.Size() > g.M() {
		t.Fatalf("size %d outside [n-1, m]", vs.Size())
	}
	found := false
	for u := 0; u < g.N() && !found; u++ {
		for v := u + 1; v < g.N(); v++ {
			if vs.Contains(u, v) {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("structure contains no edges?")
	}
	if vs.Contains(0, 0) {
		t.Fatal("self-loop reported present")
	}
}

func TestSensitivityOracle(t *testing.T) {
	g := randomGraph(50, 80, 13)
	o, err := ftbfs.NewSensitivityOracle(g, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if o.Dist(0) != 0 {
		t.Fatal("source distance not 0")
	}
	// cross-check a few failures against the structure oracle
	st, err := ftbfs.Build(randomGraph(50, 80, 13), 0, 1) // baseline protects everything
	if err != nil {
		t.Fatal(err)
	}
	so := st.Oracle()
	for _, e := range st.Edges() {
		if st.IsReinforced(e[0], e[1]) {
			continue
		}
		for v := 0; v < 50; v += 11 {
			want, err := so.BaselineDistAvoiding(v, e[0], e[1])
			if err != nil {
				t.Fatal(err)
			}
			got, err := o.DistAvoiding(v, e[0], e[1])
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("failure {%d,%d} v=%d: sensitivity %d, baseline %d", e[0], e[1], v, got, want)
			}
		}
	}
	hits, misses := o.CacheStats()
	if hits+misses == 0 {
		t.Fatal("cache never exercised")
	}
	if _, err := o.DistAvoiding(1, 0, 49); err == nil && !g.HasEdge(0, 49) {
		t.Fatal("non-edge accepted")
	}
}

func TestVertexFTErrorPropagation(t *testing.T) {
	g := ftbfs.NewGraph(3)
	g.MustAddEdge(0, 1)
	if _, err := ftbfs.BuildVertexFT(g, 9); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := ftbfs.NewSensitivityOracle(g, 9, 4); err == nil {
		t.Fatal("bad source accepted")
	}
}
