package ftbfs_test

import (
	"bytes"
	"strings"
	"testing"

	"ftbfs"
)

func TestSaveLoadStructure(t *testing.T) {
	g := randomGraph(40, 60, 19)
	st, err := ftbfs.Build(g, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ftbfs.LoadStructure(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != st.Size() || back.ReinforcedCount() != st.ReinforcedCount() {
		t.Fatal("round trip changed counts")
	}
	if back.Source() != 2 || back.Epsilon() != 0.3 {
		t.Fatal("metadata lost")
	}
	if err := back.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := ftbfs.LoadStructure(g, strings.NewReader("junk")); err == nil {
		t.Fatal("junk accepted")
	}
}
