package ftbfs

import (
	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
	"ftbfs/internal/tree"
)

// QueryPlan is the precomputed serving view of a structure: H materialized
// as its own flat CSR adjacency, the intact distance vector, and the
// canonical BFS tree of H with preorder subtree intervals. Together they
// make failure queries sublinear in practice:
//
//   - a failed edge that is not a tree edge of H's BFS tree (including
//     every edge outside H) cannot change any distance from the source —
//     the tree survives, so every vertex keeps its intact distance. Such
//     queries answer in O(1) from the cached vector, no search at all.
//   - a failed tree edge can only change distances inside the subtree
//     hanging below it. The repair search (bfs.Repair) seeds that subtree
//     from the intact-distance frontier crossing into it and relaxes only
//     the subtree's own H-arcs — O(Σ deg_H(subtree)) work instead of a
//     full O(|E(H)|) restricted BFS over G.
//
// Because H's BFS-tree parents follow the same canonical min-index rule as
// the reference search, every plan answer equals Oracle.DistAvoidingRef
// exactly (the randomized differential tests assert this edge-for-edge).
//
// A QueryPlan is immutable and safe for concurrent use; the per-query
// repair scratch lives in the Oracle that uses the plan.
type QueryPlan struct {
	h         *graph.CSR // H's own adjacency; scans touch no non-H arc
	intact    []int32    // dist(s, ·) in the intact H, shared with Structure
	t         *tree.Tree // canonical BFS tree of H with subtree intervals
	edgeChild []int32    // EdgeID → deeper endpoint if a tree edge, else -1
}

// Plan returns the structure's query plan, building it on the first call
// (one CSR extraction plus two linear passes) and caching it forever —
// structures are immutable once built.
func (s *Structure) Plan() *QueryPlan {
	s.planOnce.Do(func() {
		g := s.st.G
		h := g.SubgraphCSR(s.st.Edges)
		bt := bfs.FromCSR(h, s.st.S)
		p := &QueryPlan{
			h:         h,
			intact:    s.intactDistances(),
			t:         tree.BuildAncestry(g.N(), bt),
			edgeChild: make([]int32, g.M()),
		}
		for id := range p.edgeChild {
			p.edgeChild[id] = -1
		}
		for _, v := range bt.Order {
			if id := bt.ParentEdge[v]; id != graph.NoEdge {
				p.edgeChild[id] = v
			}
		}
		s.qplan = p
	})
	return s.qplan
}

// IsTreeEdge reports whether {u,v} is a tree edge of H's canonical BFS tree
// — the only kind of failure that forces a repair search; all others answer
// in O(1).
func (p *QueryPlan) IsTreeEdge(u, v int) bool {
	return p.treeChild(p.edgeID(u, v)) >= 0
}

// SubtreeSize returns the number of vertices a failure of {u,v} can affect:
// the size of the subtree below the edge for tree edges, 0 otherwise. It is
// the work bound of the repair search and useful for admission control.
func (p *QueryPlan) SubtreeSize(u, v int) int {
	c := p.treeChild(p.edgeID(u, v))
	if c < 0 {
		return 0
	}
	return int(p.t.Size[c])
}

// edgeID resolves endpoints against the underlying graph of the plan's CSR;
// the plan only ever sees ids validated by Oracle.failureEdge, but the
// exported classifiers accept raw endpoints.
func (p *QueryPlan) edgeID(u, v int) graph.EdgeID {
	// The CSR has no endpoint lookup; scan u's (H-only) row. Classification
	// is diagnostics, not a hot path.
	if u < 0 || v < 0 || u >= p.h.N() || v >= p.h.N() {
		return graph.NoEdge
	}
	for _, a := range p.h.ArcsOf(int32(u)) {
		if a.To == int32(v) {
			return a.ID
		}
	}
	return graph.NoEdge
}

// treeChild returns the deeper endpoint of a tree edge, or -1 when id is
// not a tree edge of H's BFS tree (including NoEdge and edges outside H).
func (p *QueryPlan) treeChild(id graph.EdgeID) int32 {
	if id < 0 {
		return -1
	}
	return p.edgeChild[id]
}

// dist answers dist(source, v) in H \ {id} using the plan's O(1) paths,
// falling back to r for the subtree repair of a tree-edge failure. The
// caller owns r and guarantees repairedID is the edge r last ran for
// (NoEdge for none); dist returns the id the scratch holds afterwards, so
// consecutive failures of one edge — the shape of a grouped batch — repair
// once and serve every target from the same scratch. viaRepair reports
// whether the answer came out of the repair scratch (telemetry counts plan
// hits vs repairs without re-deriving the branch).
func (p *QueryPlan) dist(v int, id graph.EdgeID, r *bfs.Repair, repairedID graph.EdgeID) (d int32, _ graph.EdgeID, viaRepair bool) {
	c := p.edgeChild[id]
	if c < 0 {
		// Not a tree edge of H: the BFS tree survives, no distance changes.
		return p.intact[v], repairedID, false
	}
	if !p.t.InSubtree(int32(v), c) {
		// Tree edge, but v hangs outside the failed subtree: its tree path
		// avoids the failure.
		return p.intact[v], repairedID, false
	}
	if id != repairedID {
		r.Run(p.h, p.intact, p.t.Subtree(c), id)
		repairedID = id
	}
	return r.Dist(int32(v)), repairedID, true
}
