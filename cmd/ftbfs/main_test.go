package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ftbfs/internal/cli"
)

// Smoke tests of the ftbfs binary's main path (main delegates to cli.Main
// with os exit codes): generate a tiny graph, build/sweep/verify against it,
// and assert exit status and parseable output.

func TestMainPathGenBuildVerify(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.graph")
	structPath := filepath.Join(dir, "g.ftbfs")

	var out, errb strings.Builder
	if code := cli.Main([]string{"gen", "-family", "gnp", "-n", "40", "-p", "0.15", "-seed", "7", "-o", graphPath}, &out, &errb); code != 0 {
		t.Fatalf("gen exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "p 40 ") {
		t.Fatalf("generated graph has wrong header: %.40s", data)
	}

	out.Reset()
	if code := cli.Main([]string{"build", "-in", graphPath, "-source", "0", "-eps", "0.3", "-save", structPath, "-verify"}, &out, &errb); code != 0 {
		t.Fatalf("build exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "verified") {
		t.Fatalf("build -verify did not report success:\n%s", out.String())
	}
	saved, err := os.ReadFile(structPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(saved), "ftbfs-structure 1") {
		t.Fatalf("saved structure has wrong header: %.40s", saved)
	}

	out.Reset()
	if code := cli.Main([]string{"verify", "-in", graphPath, "-source", "0", "-structure", structPath}, &out, &errb); code != 0 {
		t.Fatalf("verify exit %d, stderr: %s", code, errb.String())
	}

	out.Reset()
	if code := cli.Main([]string{"sweep", "-in", graphPath, "-source", "0", "-grid", "0,0.3,1", "-csv"}, &out, &errb); code != 0 {
		t.Fatalf("sweep exit %d, stderr: %s", code, errb.String())
	}
	csv := out.String()
	if !strings.Contains(csv, "eps,backup,reinforced,cost,best") {
		t.Fatalf("sweep CSV header missing:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got < 4 {
		t.Fatalf("sweep CSV has %d lines, want ≥ 4:\n%s", got, csv)
	}
}

func TestMainPathErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := cli.Main(nil, &out, &errb); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	errb.Reset()
	if code := cli.Main([]string{"frobnicate"}, &out, &errb); code != 2 {
		t.Fatalf("unknown-subcommand exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown subcommand") {
		t.Fatalf("unknown subcommand not reported: %s", errb.String())
	}
	errb.Reset()
	if code := cli.Main([]string{"build", "-in", "/nonexistent/x.graph", "-source", "0", "-eps", "0.3"}, &out, &errb); code != 1 {
		t.Fatalf("missing-input exit %d, want 1", code)
	}
	if code := cli.Main([]string{"help"}, &out, &errb); code != 0 {
		t.Fatalf("help exit %d, want 0", code)
	}
}
