// Command ftbfs builds, inspects and verifies fault-tolerant BFS structures
// from the command line. Run `ftbfs help` for the subcommand reference; the
// implementation lives in internal/cli.
package main

import (
	"os"

	"ftbfs/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stdout, os.Stderr))
}
