// Command experiments regenerates the paper-reproduction tables (E1–E10).
//
// Usage:
//
//	experiments [-quick] all        # every experiment
//	experiments [-quick] <id>...    # selected experiments
//	experiments -list               # list experiment ids
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"ftbfs/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses args, executes the selected
// experiments writing tables to stdout, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run smaller instances")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", e.ID, e.Title)
		}
		return 0
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(stderr, "usage: experiments [-quick] all | <id>... (see -list)")
		return 2
	}
	var ids []string
	if len(rest) == 1 && rest[0] == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = rest
	}
	cfg := experiments.Config{Quick: *quick}
	for _, id := range ids {
		if err := experiments.Run(id, cfg, stdout); err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 1
		}
	}
	return 0
}
