// Command experiments regenerates the paper-reproduction tables (E1–E10).
//
// Usage:
//
//	experiments [-quick] all        # every experiment
//	experiments [-quick] <id>...    # selected experiments
//	experiments -list               # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"ftbfs/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run smaller instances")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-quick] all | <id>... (see -list)")
		os.Exit(2)
	}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}
	cfg := experiments.Config{Quick: *quick}
	for _, id := range ids {
		if err := experiments.Run(id, cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
}
