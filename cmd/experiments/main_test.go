package main

import (
	"strings"
	"testing"
)

// Smoke tests of the experiments binary's main path: each invocation must
// return the documented exit status and produce parseable output.

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, id := range []string{"tradeoff-upper", "verify-exact", "vertex-ft"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("-list output missing %q:\n%s", id, out.String())
		}
	}
}

func TestRunQuickExperiment(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-quick", "clique-example"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	text := out.String()
	if !strings.HasPrefix(text, "# E6") {
		t.Fatalf("missing experiment header:\n%s", text)
	}
	// the table must have a header row and at least one data row
	if !strings.Contains(text, "strategy") || !strings.Contains(text, "ε=0.3") {
		t.Fatalf("table rows missing:\n%s", text)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage") {
		t.Fatalf("no usage message: %s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"no-such-experiment"}, &out, &errb); code != 1 {
		t.Fatalf("unknown-id exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown id") {
		t.Fatalf("unknown-id error not reported: %s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-bogus-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad-flag exit %d, want 2", code)
	}
}
