package ftbfs

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"ftbfs/internal/bfs"
	"ftbfs/internal/core"
	"ftbfs/internal/graph"
	"ftbfs/internal/vertexft"
)

// readRecord slurps a structure record, pre-sizing the buffer when the
// reader's length is knowable (files via Stat, in-memory readers via Size)
// so a load costs one allocation instead of a doubling growth chain — slab
// loading is otherwise fast enough that buffer churn shows up.
func readRecord(r io.Reader) ([]byte, error) {
	var buf bytes.Buffer
	switch src := r.(type) {
	case *os.File:
		if fi, err := src.Stat(); err == nil && fi.Size() > 0 {
			buf.Grow(int(fi.Size()) + 1)
		}
	case interface{ Size() int64 }: // bytes.Reader, strings.Reader
		if sz := src.Size(); sz > 0 {
			buf.Grow(int(sz) + 1)
		}
	}
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Save serialises the structure (without its base graph) in a text format;
// pair it with Graph.Write to persist a full deployment plan. SaveSlab
// writes the same structure as a version-3 binary record that loads without
// parsing; LoadStructure reads either.
func (s *Structure) Save(w io.Writer) error {
	return core.EncodeStructure(w, s.st)
}

// LoadStructure parses a structure previously written with Save (text
// versions 1) or SaveSlab (binary version 3), re-binding it against its base
// graph; the format is sniffed from the first bytes. The graph is frozen by
// this call. Text records are validated structurally with a BFS pass (use
// Verify for the full contract); binary records carry their serving arrays
// ready-built and are cross-validated without any search, so loading them is
// I/O-bound.
func LoadStructure(g *Graph, r io.Reader) (*Structure, error) {
	g.g.Freeze()
	data, err := readRecord(r)
	if err != nil {
		return nil, err
	}
	if core.IsSlabRecord(data) {
		rec, err := core.DecodeSlab(data, g.g)
		if err != nil {
			return nil, err
		}
		return slabStructure(g.g, rec)
	}
	st, err := core.DecodeStructure(bytes.NewReader(data), g.g)
	if err != nil {
		return nil, err
	}
	return &Structure{st: st}, nil
}

// Save serialises the vertex structure (without its base graph) as a
// version-2 record of the structure text format. Edge-structure files keep
// their version-1 record; the two load through their own decoders. SaveSlab
// writes the binary version-3 record instead.
func (s *VertexStructure) Save(w io.Writer) error {
	return core.EncodeVertexRecord(w, s.st.G, &core.VertexRecord{
		S:     s.st.S,
		Pairs: s.st.Pairs,
		Edges: s.st.Edges,
	})
}

// LoadVertexStructure parses a vertex structure previously written with
// VertexStructure.Save (text version 2) or SaveSlab (binary version 3),
// re-binding it against its base graph; the format is sniffed from the first
// bytes. The graph is frozen by this call. Text records are validated
// structurally — H must contain every edge of the canonical BFS tree and
// preserve the intact BFS distances (two BFS passes); binary records carry
// the validated serving arrays directly and load without searching. Use
// Verify for the full per-failure contract.
func LoadVertexStructure(g *Graph, r io.Reader) (*VertexStructure, error) {
	g.g.Freeze()
	data, err := readRecord(r)
	if err != nil {
		return nil, err
	}
	if core.IsSlabRecord(data) {
		rec, err := core.DecodeSlab(data, g.g)
		if err != nil {
			return nil, err
		}
		return slabVertexStructure(g.g, rec)
	}
	rec, err := core.DecodeVertexRecord(bytes.NewReader(data), g.g)
	if err != nil {
		return nil, err
	}
	bt := bfs.From(g.g, rec.S)
	for v, id := range bt.ParentEdge {
		if id != graph.NoEdge && !rec.Edges.Contains(id) {
			return nil, fmt.Errorf("ftbfs: decoded vertex structure invalid: tree edge of vertex %d missing from H", v)
		}
	}
	s := &VertexStructure{st: &vertexft.Structure{G: g.g, S: rec.S, Edges: rec.Edges, Pairs: rec.Pairs}}
	intact := s.intactDistances()
	for v := range intact {
		if intact[v] != bt.Dist[v] {
			return nil, fmt.Errorf("ftbfs: decoded vertex structure invalid: intact dist(%d) = %d, want %d",
				v, intact[v], bt.Dist[v])
		}
	}
	return s, nil
}
