package ftbfs

import (
	"fmt"
	"io"

	"ftbfs/internal/bfs"
	"ftbfs/internal/core"
	"ftbfs/internal/graph"
	"ftbfs/internal/vertexft"
)

// Save serialises the structure (without its base graph) in a text format;
// pair it with Graph.Write to persist a full deployment plan.
func (s *Structure) Save(w io.Writer) error {
	return core.EncodeStructure(w, s.st)
}

// LoadStructure parses a structure previously written with Save, re-binding
// it against its base graph. The graph is frozen by this call; the decoded
// structure is validated structurally (use Verify for the full contract).
func LoadStructure(g *Graph, r io.Reader) (*Structure, error) {
	g.g.Freeze()
	st, err := core.DecodeStructure(r, g.g)
	if err != nil {
		return nil, err
	}
	return &Structure{st: st}, nil
}

// Save serialises the vertex structure (without its base graph) as a
// version-2 record of the structure text format. Edge-structure files keep
// their version-1 record; the two load through their own decoders.
func (s *VertexStructure) Save(w io.Writer) error {
	return core.EncodeVertexRecord(w, s.st.G, &core.VertexRecord{
		S:     s.st.S,
		Pairs: s.st.Pairs,
		Edges: s.st.Edges,
	})
}

// LoadVertexStructure parses a vertex structure previously written with
// VertexStructure.Save, re-binding it against its base graph. The graph is
// frozen by this call. The decoded structure is validated structurally: H
// must contain every edge of the canonical BFS tree and preserve the intact
// BFS distances (two BFS passes); use Verify for the full per-failure
// contract.
func LoadVertexStructure(g *Graph, r io.Reader) (*VertexStructure, error) {
	g.g.Freeze()
	rec, err := core.DecodeVertexRecord(r, g.g)
	if err != nil {
		return nil, err
	}
	bt := bfs.From(g.g, rec.S)
	for v, id := range bt.ParentEdge {
		if id != graph.NoEdge && !rec.Edges.Contains(id) {
			return nil, fmt.Errorf("ftbfs: decoded vertex structure invalid: tree edge of vertex %d missing from H", v)
		}
	}
	s := &VertexStructure{st: &vertexft.Structure{G: g.g, S: rec.S, Edges: rec.Edges, Pairs: rec.Pairs}}
	intact := s.intactDistances()
	for v := range intact {
		if intact[v] != bt.Dist[v] {
			return nil, fmt.Errorf("ftbfs: decoded vertex structure invalid: intact dist(%d) = %d, want %d",
				v, intact[v], bt.Dist[v])
		}
	}
	return s, nil
}
