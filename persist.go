package ftbfs

import (
	"io"

	"ftbfs/internal/core"
)

// Save serialises the structure (without its base graph) in a text format;
// pair it with Graph.Write to persist a full deployment plan.
func (s *Structure) Save(w io.Writer) error {
	return core.EncodeStructure(w, s.st)
}

// LoadStructure parses a structure previously written with Save, re-binding
// it against its base graph. The graph is frozen by this call; the decoded
// structure is validated structurally (use Verify for the full contract).
func LoadStructure(g *Graph, r io.Reader) (*Structure, error) {
	g.g.Freeze()
	st, err := core.DecodeStructure(r, g.g)
	if err != nil {
		return nil, err
	}
	return &Structure{st: st}, nil
}
