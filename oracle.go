package ftbfs

import (
	"fmt"
	"slices"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
)

// Oracle answers distance queries inside a structure under simulated
// single-edge failures — the operational view of the FT-BFS guarantee.
// Failure queries run against the structure's QueryPlan: non-tree-edge
// failures are O(1) lookups of the cached intact vector, tree-edge failures
// repair only the failed subtree; DistAvoidingRef keeps the original
// full-BFS search as the reference implementation.
// An Oracle is not safe for concurrent use; create one per goroutine or
// check oracles out of an OraclePool.
type Oracle struct {
	st      *Structure
	plan    *QueryPlan
	scratch *bfs.Scratch
	dist    []int32

	// Subtree-repair state: the scratch is allocated on the first tree-edge
	// failure and then recycled (pooled oracles carry it across requests);
	// repairedID names the failed edge whose repair it currently holds, so
	// repeated failures of one edge — including a whole grouped batch —
	// answer from a single repair run.
	repair     *bfs.Repair
	repairedID graph.EdgeID

	// DistAvoidingMany scratch, reused across batches.
	ids []graph.EdgeID
	ord []int32

	// Plan-path accounting, plain counters because an oracle is
	// single-goroutine by contract; OraclePool.Put folds them into the
	// process-wide telemetry totals so the 30 ns query path never pays an
	// atomic op.
	planHits, planRepairs uint64
}

// Oracle returns a failure-simulation oracle for the structure.
func (s *Structure) Oracle() *Oracle {
	return &Oracle{
		st:         s,
		plan:       s.Plan(),
		scratch:    bfs.NewScratch(s.st.G.N()),
		dist:       make([]int32, s.st.G.N()),
		repairedID: graph.NoEdge,
	}
}

// Unreachable is returned by distance queries for unreachable vertices.
const Unreachable = int(bfs.Unreachable)

// intactDistances returns the distance vector of the intact structure H,
// computing it on the first call. Structures are immutable once built, so the
// cache is never invalidated; the vector is shared read-only by every Oracle
// of the structure.
func (s *Structure) intactDistances() []int32 {
	s.intactOnce.Do(func() {
		sc := bfs.NewScratch(s.st.G.N())
		s.intactDist = sc.DistancesAvoiding(s.st.G, s.st.S,
			bfs.Restriction{BannedEdge: graph.NoEdge, AllowedEdges: s.st.Edges},
			make([]int32, s.st.G.N()))
	})
	return s.intactDist
}

// Dist returns dist(source, v) inside the intact structure H. The vector is
// computed once on first use and cached forever (structures are immutable
// once built); the method is safe for concurrent use.
func (s *Structure) Dist(v int) int {
	return int(s.intactDistances()[v])
}

// Dist returns dist(source, v) inside the intact structure H; it reads the
// structure's shared cached vector, so repeated calls are O(1) lookups.
func (o *Oracle) Dist(v int) int { return o.st.Dist(v) }

// failureEdge validates a failed edge for simulation: it must exist in the
// base graph and must not be reinforced (reinforced edges cannot fail by
// contract).
func (o *Oracle) failureEdge(failedU, failedV int) (graph.EdgeID, error) {
	id := o.st.st.G.EdgeIDOf(failedU, failedV)
	if id == graph.NoEdge {
		return graph.NoEdge, fmt.Errorf("ftbfs: {%d,%d} is not an edge of the base graph", failedU, failedV)
	}
	if o.st.st.Reinforced.Contains(id) {
		return graph.NoEdge, fmt.Errorf("ftbfs: {%d,%d} is reinforced and cannot fail", failedU, failedV)
	}
	return id, nil
}

// planDist answers one validated failure query through the query plan,
// keeping the oracle's repair scratch in sync.
func (o *Oracle) planDist(v int, id graph.EdgeID) int32 {
	if o.repair == nil {
		o.repair = bfs.NewRepair(o.st.st.G.N())
	}
	d, repaired, viaRepair := o.plan.dist(v, id, o.repair, o.repairedID)
	o.repairedID = repaired
	if viaRepair {
		o.planRepairs++
	} else {
		o.planHits++
	}
	return d
}

// DistAvoiding returns dist(source, v) in H \ {failedU, failedV}. Failing a
// reinforced edge is rejected — reinforced edges cannot fail by contract.
//
// The answer comes from the structure's QueryPlan: O(1) when the failed
// edge is not a tree edge of H's BFS tree (the intact distances survive),
// and a subtree-local repair search otherwise. It always equals what the
// full-search DistAvoidingRef returns.
func (o *Oracle) DistAvoiding(v, failedU, failedV int) (int, error) {
	id, err := o.failureEdge(failedU, failedV)
	if err != nil {
		return 0, err
	}
	return int(o.planDist(v, id)), nil
}

// DistAvoidingRef is the reference implementation of DistAvoiding: a full
// restricted BFS over the base graph, rejecting non-H arcs one by one. It
// is what the plan-backed fast path is differential-tested against; prefer
// DistAvoiding everywhere else.
func (o *Oracle) DistAvoidingRef(v, failedU, failedV int) (int, error) {
	id, err := o.failureEdge(failedU, failedV)
	if err != nil {
		return 0, err
	}
	o.scratch.DistancesAvoiding(o.st.st.G, o.st.st.S,
		bfs.Restriction{BannedEdge: id, AllowedEdges: o.st.st.Edges}, o.dist)
	return int(o.dist[v]), nil
}

// FailureQuery is one entry of a DistAvoidingMany batch: the target vertex
// and the endpoints of the simulated failed edge.
type FailureQuery struct {
	V       int
	FailedU int
	FailedV int
}

// DistAvoidingMany answers a vector of (target, failed-edge) queries.
// The whole batch is validated up front — an invalid query (out-of-range
// target, non-edge, or reinforced edge) fails the call before any result is
// published, so out is never left partially written. Valid batches are then
// answered in failed-edge groups: queries failing the same tree edge share
// one subtree repair, and non-tree-edge failures are O(1) lookups. Results
// land in out (allocated when nil) in query order; each equals what
// DistAvoiding returns for that query.
func (o *Oracle) DistAvoidingMany(queries []FailureQuery, out []int) ([]int, error) {
	if out == nil {
		out = make([]int, len(queries))
	}
	if len(out) != len(queries) {
		return nil, fmt.Errorf("ftbfs: DistAvoidingMany: out has %d slots for %d queries", len(out), len(queries))
	}
	n := o.st.st.G.N()
	o.ids = o.ids[:0]
	o.ord = o.ord[:0]
	for i, q := range queries {
		if q.V < 0 || q.V >= n {
			return nil, fmt.Errorf("ftbfs: query %d: vertex %d out of range [0,%d)", i, q.V, n)
		}
		id, err := o.failureEdge(q.FailedU, q.FailedV)
		if err != nil {
			return nil, fmt.Errorf("ftbfs: query %d: %w", i, err)
		}
		o.ids = append(o.ids, id)
		o.ord = append(o.ord, int32(i))
	}
	// Group by failed edge: answering in edge order means each tree-edge
	// failure is repaired exactly once and serves all its targets (planDist
	// reuses the scratch while the id repeats). The sort is on the oracle's
	// recycled index buffer, so steady-state batches allocate nothing.
	slices.SortFunc(o.ord, func(a, b int32) int { return int(o.ids[a]) - int(o.ids[b]) })
	for _, i := range o.ord {
		out[i] = int(o.planDist(queries[i].V, o.ids[i]))
	}
	return out, nil
}

// DistAvoidingEach answers a vector of (target, failed-edge) queries with
// per-query error slots: an invalid query (out-of-range target, non-edge, or
// reinforced edge) fills errs[i] and leaves out[i] at Unreachable instead of
// failing the whole batch — the partial-result contract a scatter-gather
// router needs. Valid queries are still answered in failed-edge groups, so
// queries failing the same tree edge share one subtree repair exactly as in
// DistAvoidingMany. out and errs are allocated when nil or mis-sized; both
// are returned.
func (o *Oracle) DistAvoidingEach(queries []FailureQuery, out []int, errs []error) ([]int, []error) {
	if len(out) != len(queries) {
		out = make([]int, len(queries))
	}
	if len(errs) != len(queries) {
		errs = make([]error, len(queries))
	}
	n := o.st.st.G.N()
	o.ids = o.ids[:0]
	o.ord = o.ord[:0]
	for i, q := range queries {
		errs[i] = nil
		out[i] = Unreachable
		if q.V < 0 || q.V >= n {
			errs[i] = fmt.Errorf("ftbfs: vertex %d out of range [0,%d)", q.V, n)
			o.ids = append(o.ids, graph.NoEdge)
			continue
		}
		id, err := o.failureEdge(q.FailedU, q.FailedV)
		if err != nil {
			errs[i] = err
			o.ids = append(o.ids, graph.NoEdge)
			continue
		}
		o.ids = append(o.ids, id)
		o.ord = append(o.ord, int32(i))
	}
	// Same grouped answering as DistAvoidingMany: edge order means each
	// tree-edge failure repairs once for all its targets.
	slices.SortFunc(o.ord, func(a, b int32) int { return int(o.ids[a]) - int(o.ids[b]) })
	for _, i := range o.ord {
		out[i] = int(o.planDist(queries[i].V, o.ids[i]))
	}
	return out, errs
}

// BaselineDistAvoiding returns dist(source, v) in the full graph G minus
// the failed edge — the yardstick the FT-BFS contract compares against.
func (o *Oracle) BaselineDistAvoiding(v, failedU, failedV int) (int, error) {
	id := o.st.st.G.EdgeIDOf(failedU, failedV)
	if id == graph.NoEdge {
		return 0, fmt.Errorf("ftbfs: {%d,%d} is not an edge of the base graph", failedU, failedV)
	}
	o.scratch.DistancesAvoiding(o.st.st.G, o.st.st.S,
		bfs.Restriction{BannedEdge: id}, o.dist)
	return int(o.dist[v]), nil
}
