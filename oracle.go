package ftbfs

import (
	"fmt"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
)

// Oracle answers distance queries inside a structure under simulated
// single-edge failures — the operational view of the FT-BFS guarantee.
// An Oracle is not safe for concurrent use; create one per goroutine.
type Oracle struct {
	st      *Structure
	scratch *bfs.Scratch
	dist    []int32
}

// Oracle returns a failure-simulation oracle for the structure.
func (s *Structure) Oracle() *Oracle {
	return &Oracle{
		st:      s,
		scratch: bfs.NewScratch(s.st.G.N()),
		dist:    make([]int32, s.st.G.N()),
	}
}

// Unreachable is returned by distance queries for unreachable vertices.
const Unreachable = int(bfs.Unreachable)

// Dist returns dist(source, v) inside the intact structure H.
func (o *Oracle) Dist(v int) int {
	o.scratch.DistancesAvoiding(o.st.st.G, o.st.st.S,
		bfs.Restriction{BannedEdge: graph.NoEdge, AllowedEdges: o.st.st.Edges}, o.dist)
	return int(o.dist[v])
}

// DistAvoiding returns dist(source, v) in H \ {failedU, failedV}. Failing a
// reinforced edge is rejected — reinforced edges cannot fail by contract.
func (o *Oracle) DistAvoiding(v, failedU, failedV int) (int, error) {
	id := o.st.st.G.EdgeIDOf(failedU, failedV)
	if id == graph.NoEdge {
		return 0, fmt.Errorf("ftbfs: {%d,%d} is not an edge of the base graph", failedU, failedV)
	}
	if o.st.st.Reinforced.Contains(id) {
		return 0, fmt.Errorf("ftbfs: {%d,%d} is reinforced and cannot fail", failedU, failedV)
	}
	o.scratch.DistancesAvoiding(o.st.st.G, o.st.st.S,
		bfs.Restriction{BannedEdge: id, AllowedEdges: o.st.st.Edges}, o.dist)
	return int(o.dist[v]), nil
}

// BaselineDistAvoiding returns dist(source, v) in the full graph G minus
// the failed edge — the yardstick the FT-BFS contract compares against.
func (o *Oracle) BaselineDistAvoiding(v, failedU, failedV int) (int, error) {
	id := o.st.st.G.EdgeIDOf(failedU, failedV)
	if id == graph.NoEdge {
		return 0, fmt.Errorf("ftbfs: {%d,%d} is not an edge of the base graph", failedU, failedV)
	}
	o.scratch.DistancesAvoiding(o.st.st.G, o.st.st.S,
		bfs.Restriction{BannedEdge: id}, o.dist)
	return int(o.dist[v]), nil
}
