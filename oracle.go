package ftbfs

import (
	"fmt"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
)

// Oracle answers distance queries inside a structure under simulated
// single-edge failures — the operational view of the FT-BFS guarantee.
// An Oracle is not safe for concurrent use; create one per goroutine or
// check oracles out of an OraclePool.
type Oracle struct {
	st      *Structure
	scratch *bfs.Scratch
	dist    []int32
}

// Oracle returns a failure-simulation oracle for the structure.
func (s *Structure) Oracle() *Oracle {
	return &Oracle{
		st:      s,
		scratch: bfs.NewScratch(s.st.G.N()),
		dist:    make([]int32, s.st.G.N()),
	}
}

// Unreachable is returned by distance queries for unreachable vertices.
const Unreachable = int(bfs.Unreachable)

// intactDistances returns the distance vector of the intact structure H,
// computing it on the first call. Structures are immutable once built, so the
// cache is never invalidated; the vector is shared read-only by every Oracle
// of the structure.
func (s *Structure) intactDistances() []int32 {
	s.intactOnce.Do(func() {
		sc := bfs.NewScratch(s.st.G.N())
		s.intactDist = sc.DistancesAvoiding(s.st.G, s.st.S,
			bfs.Restriction{BannedEdge: graph.NoEdge, AllowedEdges: s.st.Edges},
			make([]int32, s.st.G.N()))
	})
	return s.intactDist
}

// Dist returns dist(source, v) inside the intact structure H. The vector is
// computed once on first use and cached forever (structures are immutable
// once built); the method is safe for concurrent use.
func (s *Structure) Dist(v int) int {
	return int(s.intactDistances()[v])
}

// Dist returns dist(source, v) inside the intact structure H; it reads the
// structure's shared cached vector, so repeated calls are O(1) lookups.
func (o *Oracle) Dist(v int) int { return o.st.Dist(v) }

// failureEdge validates a failed edge for simulation: it must exist in the
// base graph and must not be reinforced (reinforced edges cannot fail by
// contract).
func (o *Oracle) failureEdge(failedU, failedV int) (graph.EdgeID, error) {
	id := o.st.st.G.EdgeIDOf(failedU, failedV)
	if id == graph.NoEdge {
		return graph.NoEdge, fmt.Errorf("ftbfs: {%d,%d} is not an edge of the base graph", failedU, failedV)
	}
	if o.st.st.Reinforced.Contains(id) {
		return graph.NoEdge, fmt.Errorf("ftbfs: {%d,%d} is reinforced and cannot fail", failedU, failedV)
	}
	return id, nil
}

// DistAvoiding returns dist(source, v) in H \ {failedU, failedV}. Failing a
// reinforced edge is rejected — reinforced edges cannot fail by contract.
func (o *Oracle) DistAvoiding(v, failedU, failedV int) (int, error) {
	id, err := o.failureEdge(failedU, failedV)
	if err != nil {
		return 0, err
	}
	o.scratch.DistancesAvoiding(o.st.st.G, o.st.st.S,
		bfs.Restriction{BannedEdge: id, AllowedEdges: o.st.st.Edges}, o.dist)
	return int(o.dist[v]), nil
}

// FailureQuery is one entry of a DistAvoidingMany batch: the target vertex
// and the endpoints of the simulated failed edge.
type FailureQuery struct {
	V       int
	FailedU int
	FailedV int
}

// DistAvoidingMany answers a vector of (target, failed-edge) queries, reusing
// the oracle's single BFS scratch across the whole batch and early-exiting
// each search at its target. Results land in out (allocated when nil) in
// query order; the first invalid query (non-edge, or reinforced edge) aborts
// the batch. Each result equals what DistAvoiding returns for that query.
func (o *Oracle) DistAvoidingMany(queries []FailureQuery, out []int) ([]int, error) {
	if out == nil {
		out = make([]int, len(queries))
	}
	if len(out) != len(queries) {
		return nil, fmt.Errorf("ftbfs: DistAvoidingMany: out has %d slots for %d queries", len(out), len(queries))
	}
	for i, q := range queries {
		if q.V < 0 || q.V >= o.st.st.G.N() {
			return nil, fmt.Errorf("ftbfs: query %d: vertex %d out of range [0,%d)", i, q.V, o.st.st.G.N())
		}
		id, err := o.failureEdge(q.FailedU, q.FailedV)
		if err != nil {
			return nil, fmt.Errorf("ftbfs: query %d: %w", i, err)
		}
		out[i] = int(o.scratch.DistAvoiding(o.st.st.G, o.st.st.S, q.V,
			bfs.Restriction{BannedEdge: id, AllowedEdges: o.st.st.Edges}))
	}
	return out, nil
}

// BaselineDistAvoiding returns dist(source, v) in the full graph G minus
// the failed edge — the yardstick the FT-BFS contract compares against.
func (o *Oracle) BaselineDistAvoiding(v, failedU, failedV int) (int, error) {
	id := o.st.st.G.EdgeIDOf(failedU, failedV)
	if id == graph.NoEdge {
		return 0, fmt.Errorf("ftbfs: {%d,%d} is not an edge of the base graph", failedU, failedV)
	}
	o.scratch.DistancesAvoiding(o.st.st.G, o.st.st.S,
		bfs.Restriction{BannedEdge: id}, o.dist)
	return int(o.dist[v]), nil
}
