package ftbfs_test

import (
	"bytes"
	"testing"

	"ftbfs"
	"ftbfs/internal/gen"
)

// slabFixture builds an edge structure over a random connected graph,
// returning the public graph, the structure, and the edge list of G.
func slabFixture(t testing.TB, n, m int, seed int64) (*ftbfs.Graph, *ftbfs.Structure, [][2]int) {
	t.Helper()
	ig := gen.RandomConnected(n, m, seed)
	g := ftbfs.NewGraph(ig.N())
	edges := make([][2]int, 0, ig.M())
	for _, e := range ig.EdgesView() {
		g.MustAddEdge(int(e.U), int(e.V))
		edges = append(edges, [2]int{int(e.U), int(e.V)})
	}
	s, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, s, edges
}

// TestSlabTextInterop round-trips an edge structure through both formats and
// asserts they describe the same structure: text → slab → text is
// byte-identical, slab → slab is byte-identical, and the slab-loaded
// structure answers every failable edge exactly like the builder's.
func TestSlabTextInterop(t *testing.T) {
	g, s, edges := slabFixture(t, 120, 360, 7)

	var text1, slab1 bytes.Buffer
	if err := s.Save(&text1); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := s.SaveSlab(&slab1); err != nil {
		t.Fatalf("SaveSlab: %v", err)
	}

	// Load the slab, re-encode both ways.
	fromSlab, err := ftbfs.LoadStructure(g, bytes.NewReader(slab1.Bytes()))
	if err != nil {
		t.Fatalf("LoadStructure(slab): %v", err)
	}
	var text2, slab2 bytes.Buffer
	if err := fromSlab.Save(&text2); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	if err := fromSlab.SaveSlab(&slab2); err != nil {
		t.Fatalf("re-SaveSlab: %v", err)
	}
	if !bytes.Equal(text1.Bytes(), text2.Bytes()) {
		t.Fatalf("text re-encode after slab round trip differs")
	}
	if !bytes.Equal(slab1.Bytes(), slab2.Bytes()) {
		t.Fatalf("slab re-encode differs")
	}

	// Load the text record and re-encode it as a slab: same bytes again.
	fromText, err := ftbfs.LoadStructure(g, bytes.NewReader(text1.Bytes()))
	if err != nil {
		t.Fatalf("LoadStructure(text): %v", err)
	}
	var slab3 bytes.Buffer
	if err := fromText.SaveSlab(&slab3); err != nil {
		t.Fatalf("SaveSlab(from text): %v", err)
	}
	if !bytes.Equal(slab1.Bytes(), slab3.Bytes()) {
		t.Fatalf("slab encode of text-loaded structure differs")
	}

	// The slab-loaded structure serves identical answers, for every failable
	// edge of G and a spread of targets.
	want, got := s.Oracle(), fromSlab.Oracle()
	for _, e := range edges {
		if s.IsReinforced(e[0], e[1]) {
			continue
		}
		for v := 0; v < g.N(); v += 7 {
			dw, errW := want.DistAvoiding(v, e[0], e[1])
			dg, errG := got.DistAvoiding(v, e[0], e[1])
			if (errW == nil) != (errG == nil) || dw != dg {
				t.Fatalf("DistAvoiding(%d, {%d,%d}) = %d,%v via slab, want %d,%v", v, e[0], e[1], dg, errG, dw, errW)
			}
		}
	}
}

// TestSlabTextInteropVertex is TestSlabTextInterop for the vertex model.
func TestSlabTextInteropVertex(t *testing.T) {
	ig := gen.RandomConnected(100, 280, 11)
	g := ftbfs.NewGraph(ig.N())
	for _, e := range ig.EdgesView() {
		g.MustAddEdge(int(e.U), int(e.V))
	}
	s, err := ftbfs.BuildVertex(g, 0)
	if err != nil {
		t.Fatalf("BuildVertex: %v", err)
	}

	var text1, slab1 bytes.Buffer
	if err := s.Save(&text1); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := s.SaveSlab(&slab1); err != nil {
		t.Fatalf("SaveSlab: %v", err)
	}

	fromSlab, err := ftbfs.LoadVertexStructure(g, bytes.NewReader(slab1.Bytes()))
	if err != nil {
		t.Fatalf("LoadVertexStructure(slab): %v", err)
	}
	var text2, slab2 bytes.Buffer
	if err := fromSlab.Save(&text2); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	if err := fromSlab.SaveSlab(&slab2); err != nil {
		t.Fatalf("re-SaveSlab: %v", err)
	}
	if !bytes.Equal(text1.Bytes(), text2.Bytes()) {
		t.Fatalf("vertex text re-encode after slab round trip differs")
	}
	if !bytes.Equal(slab1.Bytes(), slab2.Bytes()) {
		t.Fatalf("vertex slab re-encode differs")
	}

	fromText, err := ftbfs.LoadVertexStructure(g, bytes.NewReader(text1.Bytes()))
	if err != nil {
		t.Fatalf("LoadVertexStructure(text): %v", err)
	}
	var slab3 bytes.Buffer
	if err := fromText.SaveSlab(&slab3); err != nil {
		t.Fatalf("SaveSlab(from text): %v", err)
	}
	if !bytes.Equal(slab1.Bytes(), slab3.Bytes()) {
		t.Fatalf("vertex slab encode of text-loaded structure differs")
	}

	// Every failable vertex, spread of targets.
	want, got := s.Oracle(), fromSlab.Oracle()
	for w := 1; w < g.N(); w++ {
		for v := 0; v < g.N(); v += 9 {
			dw, errW := want.DistAvoidingVertex(v, w)
			dg, errG := got.DistAvoidingVertex(v, w)
			if (errW == nil) != (errG == nil) || dw != dg {
				t.Fatalf("DistAvoidingVertex(%d, %d) = %d,%v via slab, want %d,%v", v, w, dg, errG, dw, errW)
			}
		}
	}
}

// TestSlabRejectsCorruption flips bytes all over a valid record and expects
// every corruption to be caught by the length, bounds or checksum layers —
// never a panic, never a silently-wrong load.
func TestSlabRejectsCorruption(t *testing.T) {
	g, s, _ := slabFixture(t, 80, 200, 3)
	var buf bytes.Buffer
	if err := s.SaveSlab(&buf); err != nil {
		t.Fatalf("SaveSlab: %v", err)
	}
	valid := buf.Bytes()

	for _, cut := range []int{0, 3, 4, 63, 64, len(valid) / 2, len(valid) - 1} {
		if _, err := ftbfs.LoadStructure(g, bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes loaded", cut)
		}
	}
	for off := 0; off < len(valid); off += 13 {
		mut := bytes.Clone(valid)
		mut[off] ^= 0x5a
		if _, err := ftbfs.LoadStructure(g, bytes.NewReader(mut)); err == nil {
			t.Fatalf("corruption at offset %d loaded", off)
		}
	}
	// Model confusion: an edge slab must not load as a vertex structure.
	if _, err := ftbfs.LoadVertexStructure(g, bytes.NewReader(valid)); err == nil {
		t.Fatalf("edge slab loaded as vertex structure")
	}
	// A record for a different base graph must be rejected.
	other := ftbfs.NewGraph(g.N() + 1)
	if _, err := ftbfs.LoadStructure(other, bytes.NewReader(valid)); err == nil {
		t.Fatalf("slab for a different graph loaded")
	}
}
