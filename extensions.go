package ftbfs

import (
	"fmt"

	"ftbfs/internal/sensitivity"
	"ftbfs/internal/vertexft"
)

// VertexStructure is a vertex fault-tolerant BFS structure: after the
// failure of any single vertex w ≠ source, the surviving structure
// preserves all BFS distances of the surviving network. This extends the
// paper's edge-failure model to the companion vertex-failure problem it
// cites ([16]).
type VertexStructure struct {
	st *vertexft.Structure
}

// BuildVertexFT constructs a vertex fault-tolerant BFS structure.
// The graph is frozen by this call.
func BuildVertexFT(g *Graph, source int) (*VertexStructure, error) {
	g.g.Freeze()
	st, err := vertexft.Build(g.g, source)
	if err != nil {
		return nil, err
	}
	return &VertexStructure{st: st}, nil
}

// Size returns |E(H)|.
func (v *VertexStructure) Size() int { return v.st.Size() }

// Contains reports whether {a,b} belongs to the structure.
func (v *VertexStructure) Contains(a, b int) bool {
	id := v.st.G.EdgeIDOf(a, b)
	return id >= 0 && v.st.Edges.Contains(id)
}

// Verify exhaustively checks the vertex FT-BFS contract.
func (v *VertexStructure) Verify() error {
	if viol := vertexft.Verify(v.st, 5); len(viol) > 0 {
		return fmt.Errorf("ftbfs: vertex FT-BFS contract violated: %v", viol)
	}
	return nil
}

// SensitivityOracle answers dist(source, v, G\{e}) queries on the full
// graph — the replacement-path distances that FT-BFS structures preserve.
// Queries for failures that cannot affect v are O(1); others run one BFS
// per distinct failed edge, cached.
type SensitivityOracle struct {
	o *sensitivity.Oracle
}

// NewSensitivityOracle builds the oracle; cacheCapacity bounds the number
// of failure BFS results kept (≤ 0 uses the default).
func NewSensitivityOracle(g *Graph, source, cacheCapacity int) (*SensitivityOracle, error) {
	g.g.Freeze()
	o, err := sensitivity.New(g.g, source, cacheCapacity)
	if err != nil {
		return nil, err
	}
	return &SensitivityOracle{o: o}, nil
}

// Dist returns the intact distance from the source to v.
func (s *SensitivityOracle) Dist(v int) int { return int(s.o.Dist(v)) }

// DistAvoiding returns dist(source, v, G \ {u,w}) (Unreachable if cut off).
func (s *SensitivityOracle) DistAvoiding(v, u, w int) (int, error) {
	d, err := s.o.DistAvoiding(v, u, w)
	return int(d), err
}

// CacheStats returns (hits, misses) of the failure cache.
func (s *SensitivityOracle) CacheStats() (hits, misses int) { return s.o.CacheStats() }
