package ftbfs

import (
	"ftbfs/internal/sensitivity"
)

// BuildVertexFT is the original name of BuildVertex, kept for
// compatibility; the vertex-failure serving surface (query plan, oracles,
// persistence) lives on the VertexStructure it returns — see vertex.go.
func BuildVertexFT(g *Graph, source int) (*VertexStructure, error) {
	return BuildVertex(g, source)
}

// SensitivityOracle answers dist(source, v, G\{e}) queries on the full
// graph — the replacement-path distances that FT-BFS structures preserve.
// Queries for failures that cannot affect v are O(1); others run one BFS
// per distinct failed edge, cached.
type SensitivityOracle struct {
	o *sensitivity.Oracle
}

// NewSensitivityOracle builds the oracle; cacheCapacity bounds the number
// of failure BFS results kept (≤ 0 uses the default).
func NewSensitivityOracle(g *Graph, source, cacheCapacity int) (*SensitivityOracle, error) {
	g.g.Freeze()
	o, err := sensitivity.New(g.g, source, cacheCapacity)
	if err != nil {
		return nil, err
	}
	return &SensitivityOracle{o: o}, nil
}

// Dist returns the intact distance from the source to v.
func (s *SensitivityOracle) Dist(v int) int { return int(s.o.Dist(v)) }

// DistAvoiding returns dist(source, v, G \ {u,w}) (Unreachable if cut off).
func (s *SensitivityOracle) DistAvoiding(v, u, w int) (int, error) {
	d, err := s.o.DistAvoiding(v, u, w)
	return int(d), err
}

// CacheStats returns (hits, misses) of the failure cache.
func (s *SensitivityOracle) CacheStats() (hits, misses int) { return s.o.CacheStats() }
