// Package graph implements the undirected-graph substrate used by every
// other package in this repository: a compact adjacency representation with
// stable edge identifiers, mutation-free views, and helpers for the
// edge-subset bookkeeping that fault-tolerant BFS constructions need.
//
// Vertices are dense integers 0..N()-1. Every undirected edge {u,v} has a
// unique EdgeID assigned at insertion time; all higher-level structures
// (BFS trees, replacement paths, FT-BFS structures) refer to edges by id so
// that "the same edge" is unambiguous across subgraphs.
package graph

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
)

// EdgeID identifies an undirected edge within a Graph. IDs are dense:
// 0..M()-1 in insertion order.
type EdgeID int32

// NoEdge is returned by lookups when the requested edge does not exist.
const NoEdge EdgeID = -1

// Edge is an undirected edge. U < V is NOT guaranteed; use Canonical to
// normalize. Both orientations denote the same EdgeID.
type Edge struct {
	U, V int32
}

// Canonical returns the edge with endpoints ordered so that U <= V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint of e.
func (e Edge) Other(x int32) int32 {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", x, e))
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("{%d,%d}", e.U, e.V) }

// Arc is a directed view of an undirected edge as seen from one endpoint:
// To is the neighbour, ID is the undirected edge's identifier.
type Arc struct {
	To int32
	ID EdgeID
}

// Graph is an undirected multigraph-free graph with stable edge ids.
// The zero value is an empty graph with no vertices; use New.
//
// Graph is immutable after Freeze (all algorithm packages require a frozen
// graph); the builder API (AddEdge) may only be used before Freeze.
type Graph struct {
	n      int32
	adj    [][]Arc
	edges  []Edge
	lookup map[int64]EdgeID
	frozen bool

	// Live-graph identity: a graph is a (lineage, generation) pair, not just
	// a fingerprint. gen counts mutations applied since the lineage's root;
	// lineage is the root's fingerprint and is stable across mutations (it is
	// what keys registries and the cluster ring, so every generation of one
	// graph routes to the same shards). fp is the content identity of THIS
	// generation — structural FNV for generation 0, incrementally mixed from
	// the parent's fp plus the mutation batch for later generations. All four
	// fields are set during single-threaded construction (Apply, Decode, or
	// Freeze) and never after, so concurrent readers need no synchronisation.
	gen     uint64
	lineage uint64
	fp      uint64
	fpSet   bool

	csrOnce sync.Once
	csr     *CSR // cached CSRView; valid only after Freeze
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{
		n:      int32(n),
		adj:    make([][]Arc, n),
		lookup: make(map[int64]EdgeID),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return int(g.n) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.edges) }

// Generation returns how many mutation batches separate g from its lineage
// root. A graph built directly (New + AddEdge) is generation 0.
func (g *Graph) Generation() uint64 { return g.gen }

// Lineage returns the stable identity shared by every generation of this
// graph: the fingerprint of the generation-0 root. Registries and the
// cluster ring key on the lineage so mutations never move a graph between
// shards. For a generation-0 graph the lineage IS the fingerprint.
func (g *Graph) Lineage() uint64 {
	if g.gen == 0 && g.lineage == 0 {
		return g.Fingerprint()
	}
	return g.lineage
}

// setIdentity stamps the live-graph identity fields; it is only called from
// single-threaded construction paths (Apply, Decode) before the graph is
// shared.
func (g *Graph) setIdentity(gen, lineage, fp uint64) {
	g.gen, g.lineage, g.fp, g.fpSet = gen, lineage, fp, true
}

func (g *Graph) key(u, v int32) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

// AddEdge inserts the undirected edge {u,v} and returns its id. Self-loops
// and duplicate edges are rejected with an error. AddEdge panics if called
// after Freeze.
func (g *Graph) AddEdge(u, v int) (EdgeID, error) {
	if g.frozen {
		panic("graph: AddEdge after Freeze")
	}
	if u == v {
		return NoEdge, fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	if u < 0 || v < 0 || u >= int(g.n) || v >= int(g.n) {
		return NoEdge, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	uu, vv := int32(u), int32(v)
	k := g.key(uu, vv)
	if _, dup := g.lookup[k]; dup {
		return NoEdge, fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{uu, vv})
	g.lookup[k] = id
	g.adj[u] = append(g.adj[u], Arc{To: vv, ID: id})
	g.adj[v] = append(g.adj[v], Arc{To: uu, ID: id})
	// Content changed: any stamped identity is stale. The edited graph is a
	// fresh generation-0 root, not some generation of its source lineage.
	g.gen, g.lineage, g.fpSet = 0, 0, false
	return id, nil
}

// MustAddEdge is AddEdge that panics on error; intended for generators whose
// construction logic guarantees validity.
func (g *Graph) MustAddEdge(u, v int) EdgeID {
	id, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return id
}

// HasEdge reports whether the undirected edge {u,v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= int(g.n) || v >= int(g.n) {
		return false
	}
	_, ok := g.lookup[g.key(int32(u), int32(v))]
	return ok
}

// EdgeIDOf returns the id of edge {u,v}, or NoEdge if absent.
func (g *Graph) EdgeIDOf(u, v int) EdgeID {
	if u < 0 || v < 0 || u >= int(g.n) || v >= int(g.n) {
		return NoEdge
	}
	id, ok := g.lookup[g.key(int32(u), int32(v))]
	if !ok {
		return NoEdge
	}
	return id
}

// EdgeByID returns the endpoints of the given edge id.
func (g *Graph) EdgeByID(id EdgeID) Edge {
	return g.edges[id]
}

// Neighbors returns the adjacency list of u as (neighbour, edge id) arcs.
// The returned slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []Arc {
	return g.adj[u]
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Edges returns a copy of the edge list indexed by EdgeID.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// EdgesView returns the edge list indexed by EdgeID without copying. The
// slice is owned by the graph and MUST be treated as read-only; use Edges
// when the caller needs to retain or mutate the list. Hot paths that only
// iterate (fingerprinting, persistence) use this to stay allocation-free.
func (g *Graph) EdgesView() []Edge { return g.edges }

// Freeze sorts every adjacency list by neighbour id (required for the
// canonical min-index BFS tie-breaking used throughout this repository) and
// marks the graph immutable. Freeze is idempotent.
func (g *Graph) Freeze() *Graph {
	if g.frozen {
		return g
	}
	for u := range g.adj {
		slices.SortFunc(g.adj[u], func(a, b Arc) int { return cmp.Compare(a.To, b.To) })
	}
	g.frozen = true
	if !g.fpSet {
		// Cache the structural fingerprint now, while construction is still
		// single-threaded; concurrent Fingerprint calls after Freeze then
		// read an immutable field instead of racing to write a cache.
		g.fp, g.fpSet = g.computeFingerprint(), true
	}
	return g
}

// Frozen reports whether Freeze has been called.
func (g *Graph) Frozen() bool { return g.frozen }

// Clone returns a deep, unfrozen copy of g. The copy keeps g's live-graph
// identity (generation, lineage, fingerprint) until it is edited; AddEdge
// resets an edited clone to a fresh generation-0 root.
func (g *Graph) Clone() *Graph {
	c := New(int(g.n))
	for id, e := range g.edges {
		c.edges = append(c.edges, e)
		c.lookup[c.key(e.U, e.V)] = EdgeID(id)
	}
	for u := range g.adj {
		c.adj[u] = append([]Arc(nil), g.adj[u]...)
	}
	c.gen, c.lineage, c.fp, c.fpSet = g.gen, g.lineage, g.fp, g.fpSet
	return c
}

// InducedSubgraph returns the subgraph induced by keep (vertices mapped to
// 0..len(keep)-1 in the given order) together with the vertex mapping
// old→new (-1 when dropped). Edge ids are NOT preserved.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int32) {
	remap := make([]int32, g.n)
	for i := range remap {
		remap[i] = -1
	}
	for i, v := range keep {
		remap[v] = int32(i)
	}
	sub := New(len(keep))
	for _, e := range g.edges {
		nu, nv := remap[e.U], remap[e.V]
		if nu >= 0 && nv >= 0 {
			sub.MustAddEdge(int(nu), int(nv))
		}
	}
	return sub, remap
}

// String implements fmt.Stringer with a short summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, len(g.edges))
}
