package graph

import "fmt"

// CSR is a flat compressed-sparse-row adjacency view: the arcs leaving
// vertex u occupy Arcs[RowStart[u]:RowStart[u+1]], each carrying the
// neighbour and the undirected EdgeID. The two packed slices make a BFS over
// the view a linear scan with no pointer chasing and no per-arc membership
// tests — the whole point of materializing a subgraph H ⊆ G once instead of
// filtering G's adjacency on every query.
//
// Rows inherit the frozen graph's neighbour-sorted order, so the canonical
// min-index parent rule of package bfs applies to a CSR exactly as it does
// to the graph it was extracted from. A CSR is immutable and safe for
// concurrent use.
type CSR struct {
	n        int32
	RowStart []int32 // len n+1; monotone
	Arcs     []Arc   // packed rows

	// Gen is the generation of the graph the view was extracted from. A
	// query plan's CSR carries it so a serving layer can assert it never
	// mixes views from different generations of one lineage; CSRs assembled
	// from deserialized rows (NewCSR) start at 0 and are stamped by the
	// decoder that knows the record's generation.
	Gen uint64
}

// N returns the number of vertices.
func (c *CSR) N() int { return int(c.n) }

// NumArcs returns the number of directed arcs (twice the undirected edges).
func (c *CSR) NumArcs() int { return len(c.Arcs) }

// ArcsOf returns the arcs leaving u. The slice aliases the CSR's packed
// storage and must be treated as read-only.
func (c *CSR) ArcsOf(u int32) []Arc {
	return c.Arcs[c.RowStart[u]:c.RowStart[u+1]]
}

// Degree returns the number of arcs leaving u.
func (c *CSR) Degree(u int32) int {
	return int(c.RowStart[u+1] - c.RowStart[u])
}

// NewCSR assembles a CSR from deserialized rows, validating the shape a
// search relies on: RowStart must be a monotone prefix-sum array covering
// exactly the arcs, and every arc must name an in-range neighbour. Arc
// EdgeIDs are only range-checked here; binding them to a particular edge set
// is the caller's (the slab decoder cross-checks them against H). The slices
// are adopted, not copied.
func NewCSR(n int, rowStart []int32, arcs []Arc) (*CSR, error) {
	if n < 0 || len(rowStart) != n+1 {
		return nil, fmt.Errorf("graph: CSR row array has %d entries for %d vertices", len(rowStart), n)
	}
	if rowStart[0] != 0 || int(rowStart[n]) != len(arcs) {
		return nil, fmt.Errorf("graph: CSR rows cover [%d,%d) of %d arcs", rowStart[0], rowStart[n], len(arcs))
	}
	for u := 0; u < n; u++ {
		if rowStart[u] > rowStart[u+1] {
			return nil, fmt.Errorf("graph: CSR row %d is not monotone", u)
		}
	}
	for i, a := range arcs {
		if a.To < 0 || int(a.To) >= n || a.ID < 0 {
			return nil, fmt.Errorf("graph: CSR arc %d → %d (edge %d) out of range", i, a.To, a.ID)
		}
	}
	return &CSR{n: int32(n), RowStart: rowStart, Arcs: arcs}, nil
}

// CSRView returns the flat CSR adjacency of the whole graph. It is built on
// the first call and cached (the graph must be frozen, hence immutable), so
// repeated callers share one view.
func (g *Graph) CSRView() *CSR {
	if !g.frozen {
		panic("graph: CSRView before Freeze")
	}
	g.csrOnce.Do(func() { g.csr = g.buildCSR(nil) })
	return g.csr
}

// SubgraphCSR extracts the subgraph with edge set allowed as its own CSR:
// only arcs whose EdgeID is in allowed are packed. The extraction is O(n+m)
// once; afterwards a search over the subgraph touches only its own arcs,
// with zero membership tests. The graph must be frozen.
func (g *Graph) SubgraphCSR(allowed *EdgeSet) *CSR {
	if !g.frozen {
		panic("graph: SubgraphCSR before Freeze")
	}
	return g.buildCSR(allowed)
}

// buildCSR packs the adjacency rows, keeping only arcs in allowed (nil keeps
// everything).
func (g *Graph) buildCSR(allowed *EdgeSet) *CSR {
	c := &CSR{n: g.n, RowStart: make([]int32, g.n+1), Gen: g.gen}
	for u := range g.adj {
		cnt := 0
		if allowed == nil {
			cnt = len(g.adj[u])
		} else {
			for _, a := range g.adj[u] {
				if allowed.Contains(a.ID) {
					cnt++
				}
			}
		}
		c.RowStart[u+1] = c.RowStart[u] + int32(cnt)
	}
	c.Arcs = make([]Arc, c.RowStart[g.n])
	pos := int32(0)
	for u := range g.adj {
		for _, a := range g.adj[u] {
			if allowed == nil || allowed.Contains(a.ID) {
				c.Arcs[pos] = a
				pos++
			}
		}
	}
	return c
}
