package graph

import "fmt"

// Validate performs internal-consistency checks on a graph: adjacency and
// edge list agree, ids are dense, no duplicates or self loops. It is used by
// tests and by the decoder's fuzz-ish inputs; algorithm packages assume a
// valid graph.
func Validate(g *Graph) error {
	if int(g.n) != len(g.adj) {
		return fmt.Errorf("graph: n=%d but %d adjacency lists", g.n, len(g.adj))
	}
	degSum := 0
	for u, arcs := range g.adj {
		degSum += len(arcs)
		for _, a := range arcs {
			if a.To < 0 || a.To >= g.n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbour %d", u, a.To)
			}
			if int32(u) == a.To {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if a.ID < 0 || int(a.ID) >= len(g.edges) {
				return fmt.Errorf("graph: vertex %d references unknown edge id %d", u, a.ID)
			}
			e := g.edges[a.ID]
			if !(e.U == int32(u) && e.V == a.To) && !(e.V == int32(u) && e.U == a.To) {
				return fmt.Errorf("graph: arc %d->%d disagrees with edge %v (id %d)", u, a.To, e, a.ID)
			}
		}
	}
	if degSum != 2*len(g.edges) {
		return fmt.Errorf("graph: degree sum %d != 2m=%d", degSum, 2*len(g.edges))
	}
	seen := make(map[int64]bool, len(g.edges))
	for id, e := range g.edges {
		k := g.key(e.U, e.V)
		if seen[k] {
			return fmt.Errorf("graph: duplicate edge %v (id %d)", e, id)
		}
		seen[k] = true
		if got, ok := g.lookup[k]; !ok || got != EdgeID(id) {
			return fmt.Errorf("graph: lookup table inconsistent for edge %v (id %d)", e, id)
		}
	}
	return nil
}
