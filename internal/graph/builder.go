package graph

import "fmt"

// Builder accumulates edges (tolerating duplicates, which are ignored) and
// produces a frozen Graph. Generators use it so they never have to reason
// about duplicate-edge errors.
type Builder struct {
	g *Graph
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{g: New(n)}
}

// Add inserts {u,v} unless it is a self-loop or already present.
// Reports whether a new edge was created.
func (b *Builder) Add(u, v int) bool {
	if u == v || b.g.HasEdge(u, v) {
		return false
	}
	b.g.MustAddEdge(u, v)
	return true
}

// AddPath inserts the path v0-v1-...-vk.
func (b *Builder) AddPath(vs ...int) {
	for i := 0; i+1 < len(vs); i++ {
		b.Add(vs[i], vs[i+1])
	}
}

// AddClique inserts all pairs among vs.
func (b *Builder) AddClique(vs ...int) {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			b.Add(vs[i], vs[j])
		}
	}
}

// AddStar connects center to every leaf.
func (b *Builder) AddStar(center int, leaves ...int) {
	for _, l := range leaves {
		b.Add(center, l)
	}
}

// AddBiclique inserts the complete bipartite graph between left and right.
func (b *Builder) AddBiclique(left, right []int) {
	for _, u := range left {
		for _, v := range right {
			b.Add(u, v)
		}
	}
}

// N returns the number of vertices of the graph under construction.
func (b *Builder) N() int { return b.g.N() }

// M returns the number of edges added so far.
func (b *Builder) M() int { return b.g.M() }

// Graph freezes and returns the built graph. The builder must not be used
// afterwards.
func (b *Builder) Graph() *Graph {
	g := b.g
	b.g = nil
	return g.Freeze()
}

// FromEdgeList builds a frozen graph on n vertices from an explicit edge
// list, rejecting invalid input with an error (used by the decoder and by
// tests that construct adversarial inputs).
func FromEdgeList(n int, edges [][2]int) (*Graph, error) {
	g := New(n)
	for i, e := range edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("edge #%d: %w", i, err)
		}
	}
	return g.Freeze(), nil
}
