package graph

import (
	"math/rand"
	"testing"
)

func mustEdge(t *testing.T, g *Graph, u, v int) EdgeID {
	t.Helper()
	id, err := g.AddEdge(u, v)
	if err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
	return id
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	id0 := mustEdge(t, g, 0, 1)
	id1 := mustEdge(t, g, 1, 2)
	if id0 != 0 || id1 != 1 {
		t.Fatalf("ids not dense: %d %d", id0, id1)
	}
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(1, 0) {
		t.Fatal("HasEdge should be orientation-independent")
	}
	if g.EdgeIDOf(2, 1) != id1 {
		t.Fatalf("EdgeIDOf(2,1)=%d want %d", g.EdgeIDOf(2, 1), id1)
	}
	if g.EdgeIDOf(0, 3) != NoEdge {
		t.Fatal("EdgeIDOf of absent edge should be NoEdge")
	}
	if e := g.EdgeByID(id1); e.Canonical() != (Edge{1, 2}) {
		t.Fatalf("EdgeByID(%d)=%v", id1, e)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := g.AddEdge(0, 3); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if _, err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("negative accepted")
	}
	mustEdge(t, g, 0, 1)
	if _, err := g.AddEdge(1, 0); err == nil {
		t.Fatal("duplicate (reversed) accepted")
	}
}

func TestFreezeSortsAdjacency(t *testing.T) {
	g := New(5)
	mustEdge(t, g, 0, 4)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 0, 3)
	mustEdge(t, g, 0, 1)
	g.Freeze()
	if !g.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}
	prev := int32(-1)
	for _, a := range g.Neighbors(0) {
		if a.To <= prev {
			t.Fatalf("adjacency not sorted: %v", g.Neighbors(0))
		}
		prev = a.To
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{3, 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint should panic")
		}
	}()
	e.Other(5)
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	c := g.Clone()
	c.MustAddEdge(1, 2)
	if g.M() != 1 || c.M() != 2 {
		t.Fatalf("clone not independent: g.M=%d c.M=%d", g.M(), c.M())
	}
	if err := Validate(c.Freeze()); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	b := NewBuilder(6)
	b.AddPath(0, 1, 2, 3, 4, 5)
	b.Add(0, 5)
	g := b.Graph()
	sub, remap := g.InducedSubgraph([]int{0, 1, 2, 5})
	if sub.N() != 4 {
		t.Fatalf("sub.N=%d", sub.N())
	}
	// surviving edges: 0-1, 1-2, 0-5
	if sub.M() != 3 {
		t.Fatalf("sub.M=%d want 3", sub.M())
	}
	if remap[3] != -1 || remap[5] != 3 {
		t.Fatalf("remap wrong: %v", remap)
	}
	if !sub.HasEdge(int(remap[0]), int(remap[5])) {
		t.Fatal("edge 0-5 missing in subgraph")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	if err := Validate(g); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	g.edges[0] = Edge{0, 2} // corrupt edge list behind adjacency's back
	if err := Validate(g); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestRandomGraphValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := New(50)
	for added := 0; added < 200; {
		u, v := rng.Intn(50), rng.Intn(50)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		mustEdge(t, g, u, v)
		added++
	}
	if err := Validate(g.Freeze()); err != nil {
		t.Fatal(err)
	}
}
