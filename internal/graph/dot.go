package graph

import (
	"bufio"
	"fmt"
	"io"
)

// DOTOptions controls Graphviz export of an FT-BFS structure overlaid on its
// base graph: reinforced edges render bold red, backup edges solid, edges of
// G outside the structure dotted grey.
type DOTOptions struct {
	Name       string   // graph name (default "G")
	Structure  *EdgeSet // edges of the structure H (nil = all solid)
	Reinforced *EdgeSet // reinforced subset of H
	Source     int      // highlighted source vertex; -1 to disable
}

// WriteDOT emits g in Graphviz format.
func WriteDOT(w io.Writer, g *Graph, opt DOTOptions) error {
	bw := bufio.NewWriter(w)
	name := opt.Name
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "graph %s {\n  node [shape=circle fontsize=10];\n", name)
	if opt.Source >= 0 && opt.Source < g.N() {
		fmt.Fprintf(bw, "  %d [style=filled fillcolor=gold];\n", opt.Source)
	}
	for id, e := range g.edges {
		attr := ""
		switch {
		case opt.Reinforced != nil && opt.Reinforced.Contains(EdgeID(id)):
			attr = " [color=red penwidth=2.5]"
		case opt.Structure == nil || opt.Structure.Contains(EdgeID(id)):
			// default solid edge
		default:
			attr = " [style=dotted color=gray60]"
		}
		fmt.Fprintf(bw, "  %d -- %d%s;\n", e.U, e.V, attr)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
