package graph

import (
	"fmt"
	"math/bits"
	"slices"
)

// EdgeSet is a dense bitset over the edge ids of a fixed graph. It is the
// workhorse for representing subgraphs H ⊆ G (FT-BFS structures, reinforced
// sets, protected sets) without re-allocating adjacency structures.
type EdgeSet struct {
	bits  []uint64
	count int
}

// NewEdgeSet returns an empty set sized for a graph with m edges.
func NewEdgeSet(m int) *EdgeSet {
	return &EdgeSet{bits: make([]uint64, (m+63)/64)}
}

// NewFullEdgeSet returns a set containing all m edge ids.
func NewFullEdgeSet(m int) *EdgeSet {
	s := NewEdgeSet(m)
	for id := 0; id < m; id++ {
		s.Add(EdgeID(id))
	}
	return s
}

// Add inserts id. Reports whether the set changed.
func (s *EdgeSet) Add(id EdgeID) bool {
	w, b := id>>6, uint(id&63)
	if s.bits[w]&(1<<b) != 0 {
		return false
	}
	s.bits[w] |= 1 << b
	s.count++
	return true
}

// Remove deletes id. Reports whether the set changed.
func (s *EdgeSet) Remove(id EdgeID) bool {
	w, b := id>>6, uint(id&63)
	if s.bits[w]&(1<<b) == 0 {
		return false
	}
	s.bits[w] &^= 1 << b
	s.count--
	return true
}

// Contains reports membership of id.
func (s *EdgeSet) Contains(id EdgeID) bool {
	if id < 0 || int(id) >= len(s.bits)*64 {
		return false
	}
	return s.bits[id>>6]&(1<<uint(id&63)) != 0
}

// Len returns the cardinality.
func (s *EdgeSet) Len() int { return s.count }

// Clone returns a deep copy.
func (s *EdgeSet) Clone() *EdgeSet {
	c := &EdgeSet{bits: make([]uint64, len(s.bits)), count: s.count}
	copy(c.bits, s.bits)
	return c
}

// AddSet inserts every element of o into s.
func (s *EdgeSet) AddSet(o *EdgeSet) {
	for w := range o.bits {
		added := o.bits[w] &^ s.bits[w]
		if added != 0 {
			s.bits[w] |= added
			s.count += popcount(added)
		}
	}
}

// Minus returns s \ o as a new set.
func (s *EdgeSet) Minus(o *EdgeSet) *EdgeSet {
	c := &EdgeSet{bits: make([]uint64, len(s.bits))}
	for w := range s.bits {
		var ob uint64
		if w < len(o.bits) {
			ob = o.bits[w]
		}
		c.bits[w] = s.bits[w] &^ ob
		c.count += popcount(c.bits[w])
	}
	return c
}

// Intersect returns s ∩ o as a new set.
func (s *EdgeSet) Intersect(o *EdgeSet) *EdgeSet {
	c := &EdgeSet{bits: make([]uint64, len(s.bits))}
	for w := range s.bits {
		var ob uint64
		if w < len(o.bits) {
			ob = o.bits[w]
		}
		c.bits[w] = s.bits[w] & ob
		c.count += popcount(c.bits[w])
	}
	return c
}

// IDs returns the sorted list of edge ids in the set.
func (s *EdgeSet) IDs() []EdgeID {
	out := make([]EdgeID, 0, s.count)
	for w, word := range s.bits {
		for word != 0 {
			b := word & -word
			out = append(out, EdgeID(w*64+trailingZeros(word)))
			word ^= b
		}
	}
	slices.Sort(out)
	return out
}

// Words exposes the set's backing bit words (little-endian edge ids: bit b
// of word w is edge 64w+b) for zero-copy serialization. The slice is owned
// by the set and must be treated as read-only.
func (s *EdgeSet) Words() []uint64 { return s.bits }

// NewEdgeSetFromWords reconstructs a set over m edge ids from serialized bit
// words, validating that the word count matches m and that no bit beyond the
// last edge id is set — so a deserialized set can never report phantom
// members. The words are copied; the cardinality is recomputed.
func NewEdgeSetFromWords(m int, words []uint64) (*EdgeSet, error) {
	if len(words) != (m+63)/64 {
		return nil, fmt.Errorf("graph: edge set has %d words for %d edges (want %d)", len(words), m, (m+63)/64)
	}
	s := &EdgeSet{bits: make([]uint64, len(words))}
	copy(s.bits, words)
	if tail := m & 63; tail != 0 && len(s.bits) > 0 {
		if s.bits[len(s.bits)-1]&^(1<<uint(tail)-1) != 0 {
			return nil, fmt.Errorf("graph: edge set has bits beyond edge id %d", m-1)
		}
	}
	for _, w := range s.bits {
		s.count += popcount(w)
	}
	return s, nil
}

// ForEach calls fn on every member in increasing id order.
func (s *EdgeSet) ForEach(fn func(EdgeID)) {
	for w, word := range s.bits {
		for word != 0 {
			tz := trailingZeros(word)
			fn(EdgeID(w*64 + tz))
			word &^= 1 << uint(tz)
		}
	}
}

func popcount(x uint64) int      { return bits.OnesCount64(x) }
func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// VertexSet is a dense bitset over vertex ids, used for banned-vertex BFS in
// the replacement-path engine (the graphs G_j(v) of Algorithm Pcons).
type VertexSet struct {
	bits  []uint64
	count int
}

// NewVertexSet returns an empty set sized for n vertices.
func NewVertexSet(n int) *VertexSet {
	return &VertexSet{bits: make([]uint64, (n+63)/64)}
}

// Add inserts v; reports whether the set changed.
func (s *VertexSet) Add(v int32) bool {
	w, b := v>>6, uint(v&63)
	if s.bits[w]&(1<<b) != 0 {
		return false
	}
	s.bits[w] |= 1 << b
	s.count++
	return true
}

// Remove deletes v; reports whether the set changed.
func (s *VertexSet) Remove(v int32) bool {
	w, b := v>>6, uint(v&63)
	if s.bits[w]&(1<<b) == 0 {
		return false
	}
	s.bits[w] &^= 1 << b
	s.count--
	return true
}

// Contains reports membership.
func (s *VertexSet) Contains(v int32) bool {
	if v < 0 || int(v) >= len(s.bits)*64 {
		return false
	}
	return s.bits[v>>6]&(1<<uint(v&63)) != 0
}

// Len returns the cardinality.
func (s *VertexSet) Len() int { return s.count }

// Clear empties the set in O(words).
func (s *VertexSet) Clear() {
	for i := range s.bits {
		s.bits[i] = 0
	}
	s.count = 0
}
