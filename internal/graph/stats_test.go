package graph

import "testing"

func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.Add(i, i+1)
	}
	return b.Graph()
}

func TestStatsPath(t *testing.T) {
	g := pathGraph(5)
	st := ComputeStats(g, true)
	if !st.Connected {
		t.Fatal("path disconnected?")
	}
	if st.Diameter != 4 {
		t.Fatalf("diameter=%d want 4", st.Diameter)
	}
	if st.MinDeg != 1 || st.MaxDeg != 2 {
		t.Fatalf("deg range [%d,%d]", st.MinDeg, st.MaxDeg)
	}
	if st.String() == "" {
		t.Fatal("empty String")
	}
}

func TestStatsDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.Add(0, 1)
	g := b.Graph()
	st := ComputeStats(g, true)
	if st.Connected {
		t.Fatal("disconnected graph reported connected")
	}
	if st.Diameter != -1 {
		t.Fatalf("diameter=%d want -1", st.Diameter)
	}
}

func TestIsConnectedTrivial(t *testing.T) {
	if !IsConnected(New(0).Freeze()) || !IsConnected(New(1).Freeze()) {
		t.Fatal("trivial graphs must be connected")
	}
}

func TestIsBridge(t *testing.T) {
	// triangle 0-1-2 plus pendant 2-3
	b := NewBuilder(4)
	b.AddClique(0, 1, 2)
	b.Add(2, 3)
	g := b.Graph()
	pend := g.EdgeIDOf(2, 3)
	if !IsBridge(g, pend) {
		t.Fatal("pendant edge should be a bridge")
	}
	tri := g.EdgeIDOf(0, 1)
	if IsBridge(g, tri) {
		t.Fatal("triangle edge is not a bridge")
	}
}

func TestBuilderHelpers(t *testing.T) {
	b := NewBuilder(10)
	b.AddStar(0, 1, 2, 3)
	b.AddBiclique([]int{4, 5}, []int{6, 7})
	b.AddClique(8, 9)
	if b.M() != 3+4+1 {
		t.Fatalf("M=%d", b.M())
	}
	if b.Add(0, 1) {
		t.Fatal("duplicate add reported true")
	}
	if b.Add(0, 0) {
		t.Fatal("self loop add reported true")
	}
	g := b.Graph()
	if !g.Frozen() {
		t.Fatal("builder result not frozen")
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgeList(t *testing.T) {
	g, err := FromEdgeList(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || !g.Frozen() {
		t.Fatal("FromEdgeList wrong")
	}
	if _, err := FromEdgeList(2, [][2]int{{0, 0}}); err == nil {
		t.Fatal("self loop accepted")
	}
}
