package graph

import "fmt"

// MutationOp selects the kind of one edge mutation.
type MutationOp uint8

const (
	// MutInsert adds an edge that must not currently exist.
	MutInsert MutationOp = iota
	// MutDelete removes an edge that must currently exist.
	MutDelete
)

// String implements fmt.Stringer.
func (op MutationOp) String() string {
	if op == MutDelete {
		return "delete"
	}
	return "insert"
}

// Mutation is one edge insert or delete. Endpoints follow AddEdge's rules:
// in range, no self-loops.
type Mutation struct {
	Op   MutationOp
	U, V int
}

// Apply applies a batch of mutations to a frozen graph and returns the next
// generation: a new frozen graph with Generation() = g.Generation()+1, the
// same Lineage(), and an incrementally derived Fingerprint(). g itself is
// untouched — old-generation structures keep serving from it while the new
// generation builds.
//
// Mutations apply sequentially, so a batch may delete an edge and re-insert
// it (the re-inserted edge gets a NEW EdgeID) or insert one and delete it
// again. Surviving original edges are re-added in their original insertion
// order, then surviving inserts in batch order, so EdgeIDs stay dense.
// remap translates g's EdgeIDs into the new graph's (NoEdge for deleted
// edges); structure delta-rebuilds use it to carry edge sets across.
//
// Any invalid mutation (out-of-range endpoint, self-loop, inserting a
// present edge, deleting an absent one) fails the whole batch: Apply returns
// an error and no new generation exists.
func (g *Graph) Apply(muts []Mutation) (next *Graph, remap []EdgeID, err error) {
	if !g.frozen {
		panic("graph: Apply before Freeze")
	}
	if len(muts) == 0 {
		return nil, nil, fmt.Errorf("graph: empty mutation batch")
	}
	// Walk the batch sequentially against a view of "current" edge presence:
	// original edges minus deletions, plus still-alive inserts.
	deleted := make(map[EdgeID]bool)
	type ins struct {
		e     Edge
		alive bool
	}
	var inserts []ins
	insByKey := make(map[int64]int) // key(u,v) -> index of the live insert
	for i, m := range muts {
		if m.U == m.V {
			return nil, nil, fmt.Errorf("graph: mutation %d: self-loop at vertex %d", i, m.U)
		}
		if m.U < 0 || m.V < 0 || m.U >= int(g.n) || m.V >= int(g.n) {
			return nil, nil, fmt.Errorf("graph: mutation %d: edge {%d,%d} out of range [0,%d)", i, m.U, m.V, g.n)
		}
		k := g.key(int32(m.U), int32(m.V))
		id, inOrig := g.lookup[k]
		origAlive := inOrig && !deleted[id]
		insIdx, hasIns := insByKey[k]
		switch m.Op {
		case MutInsert:
			if origAlive || hasIns {
				return nil, nil, fmt.Errorf("graph: mutation %d: insert of existing edge {%d,%d}", i, m.U, m.V)
			}
			insByKey[k] = len(inserts)
			inserts = append(inserts, ins{e: Edge{int32(m.U), int32(m.V)}, alive: true})
		case MutDelete:
			switch {
			case hasIns:
				inserts[insIdx].alive = false
				delete(insByKey, k)
			case origAlive:
				deleted[id] = true
			default:
				return nil, nil, fmt.Errorf("graph: mutation %d: delete of absent edge {%d,%d}", i, m.U, m.V)
			}
		default:
			return nil, nil, fmt.Errorf("graph: mutation %d: unknown op %d", i, m.Op)
		}
	}

	next = New(int(g.n))
	remap = make([]EdgeID, len(g.edges))
	for id, e := range g.edges {
		if deleted[EdgeID(id)] {
			remap[id] = NoEdge
			continue
		}
		nid, aerr := next.AddEdge(int(e.U), int(e.V))
		if aerr != nil {
			return nil, nil, aerr // unreachable: the source graph had no duplicates
		}
		remap[id] = nid
	}
	for _, in := range inserts {
		if !in.alive {
			continue
		}
		if _, aerr := next.AddEdge(int(in.e.U), int(in.e.V)); aerr != nil {
			return nil, nil, aerr // unreachable: presence was checked above
		}
	}

	// Stamp the child's identity before Freeze so Freeze adopts it instead
	// of recomputing: generation advances, lineage is inherited, and the
	// fingerprint mixes the parent's with the batch — O(batch) per
	// generation, with insert/delete of the same edge hashing differently.
	gen := g.gen + 1
	h := g.Fingerprint()
	h = fnvMix(h, gen)
	h = fnvMix(h, uint64(len(muts)))
	for _, m := range muts {
		h = fnvMix(h, uint64(m.Op))
		u, v := m.U, m.V
		if u > v {
			u, v = v, u
		}
		h = fnvMix(h, uint64(uint32(u))<<32|uint64(uint32(v)))
	}
	next.setIdentity(gen, g.Lineage(), h)
	next.Freeze()
	return next, remap, nil
}
