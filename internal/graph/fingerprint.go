package graph

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds the 8 bytes of x into a running FNV-1a hash h. It is the one
// mixing primitive behind both the structural fingerprint and the
// incremental per-generation fingerprint, so the two stay bit-compatible.
func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

// Fingerprint returns the graph's 64-bit content identity. For a
// generation-0 graph this is an FNV-1a hash of the vertex count and
// canonical edge list: two such graphs share a fingerprint iff they have the
// same vertex count and the same edge set inserted in the same order
// (EdgeIDs are part of the identity: every higher-level structure refers to
// edges by id). For a mutated graph (Generation() > 0) the fingerprint is
// derived incrementally — the parent's fingerprint mixed with the mutation
// batch — so stamping a new generation costs O(batch), not O(m). Either way
// the value is stable across processes and keys on-disk caches of built
// structures. Frozen graphs serve the fingerprint from an immutable cache.
func (g *Graph) Fingerprint() uint64 {
	if g.fpSet {
		return g.fp
	}
	return g.computeFingerprint()
}

// computeFingerprint hashes the structural identity from scratch.
func (g *Graph) computeFingerprint() uint64 {
	h := uint64(fnvOffset64)
	h = fnvMix(h, uint64(g.n))
	h = fnvMix(h, uint64(len(g.edges)))
	for _, e := range g.EdgesView() {
		c := e.Canonical()
		h = fnvMix(h, uint64(uint32(c.U))<<32|uint64(uint32(c.V)))
	}
	return h
}
