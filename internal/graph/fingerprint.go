package graph

// Fingerprint returns a 64-bit FNV-1a hash of the graph's vertex count and
// canonical edge list. Two graphs share a fingerprint iff they have the same
// vertex count and the same edge set inserted in the same order (EdgeIDs are
// part of the identity: every higher-level structure refers to edges by id).
// The fingerprint is stable across processes, so it can key on-disk caches of
// built structures.
func (g *Graph) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(g.n))
	mix(uint64(len(g.edges)))
	for _, e := range g.EdgesView() {
		c := e.Canonical()
		mix(uint64(uint32(c.U))<<32 | uint64(uint32(c.V)))
	}
	return h
}
