package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a minimal, diff-friendly edge-list format:
//
//	# optional comments
//	p <n> <m>
//	e <u> <v>          (m lines, 0-based endpoints, insertion order = EdgeID)
//
// It deliberately mirrors DIMACS so that externally produced graphs can be
// imported with a one-line header tweak.
//
// A mutated graph (Generation() > 0) additionally carries its live-graph
// identity in a leading comment —
//
//	# gen <generation> lineage <hex> fp <hex>
//
// — which Decode restores, so a persisted generation round-trips exactly
// (incremental fingerprints are not recomputable from the edge list alone).
// Being a comment, the line is invisible to older parsers, and generation-0
// graphs never emit it: their files stay byte-identical to before.

// Encode writes g in the text format.
func Encode(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if gen := g.Generation(); gen > 0 {
		if _, err := fmt.Fprintf(bw, "# gen %d lineage %016x fp %016x\n", gen, g.Lineage(), g.Fingerprint()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.EdgesView() {
		if _, err := fmt.Fprintf(bw, "e %d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses the text format and returns a frozen graph.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *Graph
	line := 0
	declared := -1
	var gen, lineage, fp uint64
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			// Comments are skipped — except the identity header a mutated
			// graph writes about itself, which must round-trip.
			if f := strings.Fields(text); len(f) == 7 && f[0] == "#" && f[1] == "gen" && f[3] == "lineage" && f[5] == "fp" {
				gv, err1 := strconv.ParseUint(f[2], 10, 64)
				lv, err2 := strconv.ParseUint(f[4], 16, 64)
				fv, err3 := strconv.ParseUint(f[6], 16, 64)
				if err1 != nil || err2 != nil || err3 != nil {
					return nil, fmt.Errorf("graph: line %d: malformed identity header", line)
				}
				gen, lineage, fp = gv, lv, fv
			}
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "p":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'p n m'", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", line, fields[1])
			}
			m, err := strconv.Atoi(fields[2])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("graph: line %d: bad edge count %q", line, fields[2])
			}
			declared = m
			g = New(n)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'e u v'", line)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint %q", line, fields[1])
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint %q", line, fields[2])
			}
			if _, err := g.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing header")
	}
	if declared >= 0 && g.M() != declared {
		return nil, fmt.Errorf("graph: header declares %d edges, got %d", declared, g.M())
	}
	if gen > 0 {
		g.setIdentity(gen, lineage, fp)
	}
	return g.Freeze(), nil
}
