package graph

import "fmt"

// Stats summarises a graph for experiment tables.
type Stats struct {
	N, M      int
	MinDeg    int
	MaxDeg    int
	AvgDeg    float64
	Connected bool
	Diameter  int // -1 if disconnected or N==0
}

// ComputeStats returns basic structural statistics. Diameter is computed by
// n BFS passes and is intended for the moderate graph sizes used in tests
// and experiments.
func ComputeStats(g *Graph, withDiameter bool) Stats {
	st := Stats{N: g.N(), M: g.M(), MinDeg: -1, Diameter: -1}
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if st.MinDeg == -1 || d < st.MinDeg {
			st.MinDeg = d
		}
		if d > st.MaxDeg {
			st.MaxDeg = d
		}
	}
	if g.N() > 0 {
		st.AvgDeg = 2 * float64(g.M()) / float64(g.N())
	}
	st.Connected = IsConnected(g)
	if withDiameter && st.Connected && g.N() > 0 {
		diam := 0
		dist := make([]int32, g.N())
		queue := make([]int32, 0, g.N())
		for src := 0; src < g.N(); src++ {
			for i := range dist {
				dist[i] = -1
			}
			queue = queue[:0]
			dist[src] = 0
			queue = append(queue, int32(src))
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				for _, a := range g.adj[u] {
					if dist[a.To] == -1 {
						dist[a.To] = dist[u] + 1
						queue = append(queue, a.To)
						if int(dist[a.To]) > diam {
							diam = int(dist[a.To])
						}
					}
				}
			}
		}
		st.Diameter = diam
	}
	return st
}

// IsConnected reports whether g is connected (vacuously true for N<=1).
func IsConnected(g *Graph) bool {
	if g.N() <= 1 {
		return true
	}
	seen := make([]bool, g.N())
	queue := []int32{0}
	seen[0] = true
	count := 1
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, a := range g.adj[u] {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				queue = append(queue, a.To)
			}
		}
	}
	return count == g.N()
}

// IsBridge reports whether removing edge id disconnects the component of its
// endpoints (single BFS in G\{id}).
func IsBridge(g *Graph, id EdgeID) bool {
	e := g.EdgeByID(id)
	seen := make([]bool, g.N())
	queue := []int32{e.U}
	seen[e.U] = true
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, a := range g.adj[u] {
			if a.ID == id || seen[a.To] {
				continue
			}
			seen[a.To] = true
			if a.To == e.V {
				return false
			}
			queue = append(queue, a.To)
		}
	}
	return true
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d deg[%d..%d] avg=%.2f conn=%v diam=%d",
		s.N, s.M, s.MinDeg, s.MaxDeg, s.AvgDeg, s.Connected, s.Diameter)
}
