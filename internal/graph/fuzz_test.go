package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode checks that the text-format decoder never panics and that
// everything it accepts round-trips and validates.
func FuzzDecode(f *testing.F) {
	f.Add("p 3 2\ne 0 1\ne 1 2\n")
	f.Add("p 0 0\n")
	f.Add("# comment\np 2 1\ne 0 1\n")
	f.Add("p 5 0\n\n\n")
	f.Add("e 0 1\np 2 1\n")
	f.Add("p 2 1\ne 0 0\n")
	f.Add("p 1000000000 1\ne 0 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		// guard against absurd vertex counts eating memory
		if strings.Contains(in, "p 1000000") || strings.Contains(in, "p 999") {
			return
		}
		g, err := Decode(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := Validate(g); err != nil {
			t.Fatalf("decoder accepted an invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, g); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		g2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed sizes")
		}
	})
}
