package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet(200)
	if s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	if !s.Add(5) || s.Add(5) {
		t.Fatal("Add change-reporting wrong")
	}
	if !s.Contains(5) || s.Contains(6) {
		t.Fatal("Contains wrong")
	}
	if !s.Remove(5) || s.Remove(5) {
		t.Fatal("Remove change-reporting wrong")
	}
	if s.Len() != 0 {
		t.Fatalf("Len=%d after remove", s.Len())
	}
	if s.Contains(-1) || s.Contains(10_000) {
		t.Fatal("out-of-range Contains should be false")
	}
}

func TestEdgeSetIDsSortedAndComplete(t *testing.T) {
	s := NewEdgeSet(500)
	want := []EdgeID{499, 64, 63, 0, 128, 1}
	for _, id := range want {
		s.Add(id)
	}
	got := s.IDs()
	exp := []EdgeID{0, 1, 63, 64, 128, 499}
	if !reflect.DeepEqual(got, exp) {
		t.Fatalf("IDs()=%v want %v", got, exp)
	}
}

func TestEdgeSetAlgebra(t *testing.T) {
	a := NewEdgeSet(300)
	b := NewEdgeSet(300)
	for i := 0; i < 300; i += 2 {
		a.Add(EdgeID(i))
	}
	for i := 0; i < 300; i += 3 {
		b.Add(EdgeID(i))
	}
	inter := a.Intersect(b)
	for _, id := range inter.IDs() {
		if id%6 != 0 {
			t.Fatalf("intersect contains %d", id)
		}
	}
	if inter.Len() != 50 {
		t.Fatalf("intersect len=%d want 50", inter.Len())
	}
	diff := a.Minus(b)
	if diff.Len() != a.Len()-inter.Len() {
		t.Fatalf("minus len=%d", diff.Len())
	}
	u := a.Clone()
	u.AddSet(b)
	if u.Len() != a.Len()+b.Len()-inter.Len() {
		t.Fatalf("union len=%d", u.Len())
	}
}

func TestEdgeSetForEachMatchesIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewEdgeSet(1000)
	for i := 0; i < 300; i++ {
		s.Add(EdgeID(rng.Intn(1000)))
	}
	var walked []EdgeID
	s.ForEach(func(id EdgeID) { walked = append(walked, id) })
	if !reflect.DeepEqual(walked, s.IDs()) {
		t.Fatal("ForEach order disagrees with IDs")
	}
}

// Property: Len always equals the number of distinct added ids minus removed.
func TestEdgeSetLenProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewEdgeSet(1 << 16)
		ref := map[EdgeID]bool{}
		for i, op := range ops {
			id := EdgeID(op)
			if i%3 == 2 {
				s.Remove(id)
				delete(ref, id)
			} else {
				s.Add(id)
				ref[id] = true
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for id := range ref {
			if !s.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexSet(t *testing.T) {
	s := NewVertexSet(100)
	if !s.Add(10) || s.Add(10) {
		t.Fatal("Add reporting")
	}
	s.Add(99)
	if s.Len() != 2 || !s.Contains(99) {
		t.Fatal("vertex set state wrong")
	}
	if !s.Remove(10) || s.Remove(10) {
		t.Fatal("Remove reporting")
	}
	s.Clear()
	if s.Len() != 0 || s.Contains(99) {
		t.Fatal("Clear failed")
	}
	if s.Contains(-3) {
		t.Fatal("negative Contains must be false")
	}
}

func TestNewFullEdgeSet(t *testing.T) {
	s := NewFullEdgeSet(130)
	if s.Len() != 130 {
		t.Fatalf("full set len=%d", s.Len())
	}
	for i := 0; i < 130; i++ {
		if !s.Contains(EdgeID(i)) {
			t.Fatalf("missing %d", i)
		}
	}
	if s.Contains(130) {
		t.Fatal("contains out of range")
	}
}
