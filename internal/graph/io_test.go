package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := NewBuilder(6)
	b.AddPath(0, 1, 2, 3)
	b.AddClique(3, 4, 5)
	g := b.Graph()

	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip size mismatch: %v vs %v", g2, g)
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(int(e.U), int(e.V)) {
			t.Fatalf("edge %v lost", e)
		}
	}
	if err := Validate(g2); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"edge first":   "e 0 1\n",
		"bad header":   "p x 1\n",
		"neg n":        "p -1 0\n",
		"short edge":   "p 2 1\ne 0\n",
		"bad endpoint": "p 2 1\ne 0 q\n",
		"self loop":    "p 2 1\ne 1 1\n",
		"out of range": "p 2 1\ne 0 5\n",
		"dup edge":     "p 2 2\ne 0 1\ne 1 0\n",
		"count lie":    "p 3 5\ne 0 1\n",
		"dup header":   "p 2 0\np 2 0\n",
		"unknown rec":  "p 2 0\nz 1 2\n",
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode accepted %q", name, in)
		}
	}
}

func TestDecodeSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\np 3 2\n# mid\ne 0 1\n\ne 1 2\n"
	g, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M=%d", g.M())
	}
}

func TestWriteDOT(t *testing.T) {
	b := NewBuilder(3)
	b.AddPath(0, 1, 2)
	g := b.Graph()
	st := NewEdgeSet(g.M())
	st.Add(0)
	re := NewEdgeSet(g.M())
	re.Add(0)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, DOTOptions{Structure: st, Reinforced: re, Source: 0}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph G {", "0 -- 1 [color=red", "1 -- 2 [style=dotted", "fillcolor=gold"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}
