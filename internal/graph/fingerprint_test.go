package graph

import "testing"

func TestFingerprintDeterministic(t *testing.T) {
	mk := func() *Graph {
		g := New(5)
		g.MustAddEdge(0, 1)
		g.MustAddEdge(1, 2)
		g.MustAddEdge(2, 3)
		g.MustAddEdge(3, 4)
		return g
	}
	a, b := mk(), mk()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical graphs disagree on fingerprint")
	}
	// Frozen vs unfrozen must not matter: the fingerprint hashes the edge
	// list, which Freeze does not touch.
	b.Freeze()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("Freeze changed the fingerprint")
	}
}

func TestFingerprintDiscriminates(t *testing.T) {
	base := New(5)
	base.MustAddEdge(0, 1)
	base.MustAddEdge(1, 2)

	moreVertices := New(6)
	moreVertices.MustAddEdge(0, 1)
	moreVertices.MustAddEdge(1, 2)
	if base.Fingerprint() == moreVertices.Fingerprint() {
		t.Fatal("fingerprint ignores vertex count")
	}

	otherEdge := New(5)
	otherEdge.MustAddEdge(0, 1)
	otherEdge.MustAddEdge(1, 3)
	if base.Fingerprint() == otherEdge.Fingerprint() {
		t.Fatal("fingerprint ignores edge identity")
	}

	reordered := New(5)
	reordered.MustAddEdge(1, 2)
	reordered.MustAddEdge(0, 1)
	if base.Fingerprint() == reordered.Fingerprint() {
		t.Fatal("fingerprint ignores insertion order (EdgeIDs differ)")
	}

	// Endpoint orientation must NOT matter: {u,v} and {v,u} are the same
	// undirected edge.
	flipped := New(5)
	flipped.MustAddEdge(1, 0)
	flipped.MustAddEdge(2, 1)
	if base.Fingerprint() != flipped.Fingerprint() {
		t.Fatal("fingerprint depends on endpoint orientation")
	}
}
