package graph

import (
	"math/rand"
	"testing"
)

func randomFrozen(t *testing.T, n, m int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 1; i < n; i++ {
		mustEdge(t, g, i, rng.Intn(i))
	}
	for len(g.edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			mustEdge(t, g, u, v)
		}
	}
	return g.Freeze()
}

func TestCSRViewMatchesAdjacency(t *testing.T) {
	g := randomFrozen(t, 50, 120, 1)
	c := g.CSRView()
	if c.N() != g.N() {
		t.Fatalf("N = %d, want %d", c.N(), g.N())
	}
	if c.NumArcs() != 2*g.M() {
		t.Fatalf("NumArcs = %d, want %d", c.NumArcs(), 2*g.M())
	}
	for u := 0; u < g.N(); u++ {
		want := g.Neighbors(u)
		got := c.ArcsOf(int32(u))
		if len(got) != len(want) || c.Degree(int32(u)) != len(want) {
			t.Fatalf("vertex %d: %d arcs, want %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vertex %d arc %d: %v, want %v", u, i, got[i], want[i])
			}
		}
	}
	if g.CSRView() != c {
		t.Fatal("CSRView is not cached")
	}
}

func TestSubgraphCSRKeepsOnlyAllowedArcs(t *testing.T) {
	g := randomFrozen(t, 60, 150, 2)
	allowed := NewEdgeSet(g.M())
	for id := 0; id < g.M(); id += 2 {
		allowed.Add(EdgeID(id))
	}
	c := g.SubgraphCSR(allowed)
	if c.NumArcs() != 2*allowed.Len() {
		t.Fatalf("NumArcs = %d, want %d", c.NumArcs(), 2*allowed.Len())
	}
	for u := 0; u < g.N(); u++ {
		var want []Arc
		for _, a := range g.Neighbors(u) {
			if allowed.Contains(a.ID) {
				want = append(want, a)
			}
		}
		got := c.ArcsOf(int32(u))
		if len(got) != len(want) {
			t.Fatalf("vertex %d: %d arcs, want %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vertex %d arc %d: %v, want %v", u, i, got[i], want[i])
			}
			// Frozen-order inheritance: rows stay sorted by neighbour.
			if i > 0 && got[i-1].To > got[i].To {
				t.Fatalf("vertex %d: row not sorted at %d", u, i)
			}
		}
	}
}

func TestCSRPanicsBeforeFreeze(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	for name, f := range map[string]func(){
		"CSRView":     func() { g.CSRView() },
		"SubgraphCSR": func() { g.SubgraphCSR(NewEdgeSet(g.M())) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s before Freeze did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEdgesViewIsZeroCopy(t *testing.T) {
	g := randomFrozen(t, 20, 40, 3)
	v1, v2 := g.EdgesView(), g.EdgesView()
	if len(v1) != g.M() || &v1[0] != &v2[0] {
		t.Fatal("EdgesView must alias the graph's edge storage")
	}
	cp := g.Edges()
	if &cp[0] == &v1[0] {
		t.Fatal("Edges must return a copy")
	}
	for i := range cp {
		if cp[i] != v1[i] {
			t.Fatalf("edge %d: copy %v != view %v", i, cp[i], v1[i])
		}
	}
}
