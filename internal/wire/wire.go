// Package wire implements the binary query protocol that replaces HTTP/JSON
// on the serving hot path. A connection is persistent and carries
// length-prefixed frames both ways; requests carry client-chosen ids that
// responses echo, so many requests can be in flight on one connection
// (pipelining) and responses may arrive out of order.
//
// Connection preamble (client → server, once): "FTBW" + version u32.
//
// Frame layout (protocol version 3), everything little-endian:
//
//	length  u32  bytes after this field: 1 (type) + 8 (id) + 4 (budget) + 8 (trace) + payload + 4 (crc)
//	type    u8   request or response type
//	id      u64  request id, echoed verbatim by the response
//	budget  u32  caller's remaining deadline budget in milliseconds (0 = none);
//	             meaningful on requests, zero on responses
//	trace   u64  telemetry trace ID (0 = untraced); meaningful on requests,
//	             zero on responses — the wire twin of the X-Ftbfs-Trace header
//	payload      fixed-layout body, see below
//	crc     u32  CRC-32C (Castagnoli) over type+id+budget+trace+payload
//
// The trailing checksum is what makes "zero wrong answers under corrupted
// bytes" an honest guarantee: a flipped bit anywhere in a frame surfaces as a
// transport error (the connection is dropped and the caller retries or falls
// back to HTTP) instead of a silently wrong distance. The budget field
// propagates the caller's deadline shard-side so a server never works past
// the time its caller is still willing to wait; the trace field propagates
// the caller's trace ID so a sampled request's spans line up across layers.
//
// Point request payload (TDist / TDistAvoiding / TDistAvoidingVertex),
// 36 bytes: graph fingerprint u64, ε bits u64, source i32, algorithm i32,
// target v i32, a i32, b i32 — (a,b) are the failed edge's endpoints for
// TDistAvoiding, a is the failed vertex for TDistAvoidingVertex, both -1
// for TDist. Batch request payload: count u32, then count 40-byte slots
// (point payload + flags u32, bit 0 = vertex model). Responses: RDist
// carries dist i32; RBatch carries count u32 + dists + errCount u32 +
// errCount × (slot u32, len u32, message); RError carries an HTTP-equivalent
// status code u32 + len u32 + message, so the router's retry classification
// works identically over either transport.
//
// Mutation request payload (TMutate): graph lineage u64, count u32, then
// count 9-byte entries (op u8 — 0 insert, 1 delete — u u32, v u32). The
// RMutate response is fixed 32 bytes: lineage u64, new generation u64, new
// fingerprint u64, delta-rebuild count u32, full-rebuild count u32. Backends
// without mutation support answer an in-protocol 501 and the caller falls
// back to the HTTP /mutate surface.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

// Protocol constants.
const (
	// Version is the protocol version sent in the connection preamble.
	// Version 2 added the per-frame budget field and CRC-32C trailer;
	// version 3 added the per-frame trace field.
	Version uint32 = 3

	// MaxPayload bounds a frame's payload; a peer announcing more is
	// protocol-corrupt and the connection is dropped. Generous for batches:
	// 200k slots fit with room to spare.
	MaxPayload = 8 << 20

	frameOverhead = 1 + 8 + 4 + 8 // type + id + budget + trace, covered by the length prefix
	frameTrailer  = 4             // CRC-32C over type+id+budget+trace+payload
)

// castagnoli is the CRC-32C table used for the per-frame checksum (hardware
// accelerated on amd64/arm64, and the same polynomial the slab format uses).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// preamble is the 8-byte connection header: magic + version.
var preamble = [8]byte{'F', 'T', 'B', 'W', byte(Version), 0, 0, 0}

// Request and response frame types.
const (
	TDist               byte = 0x01 // intact distance
	TDistAvoiding       byte = 0x02 // distance under an edge failure
	TDistAvoidingVertex byte = 0x03 // distance under a vertex failure
	TBatch              byte = 0x04 // mixed batch of the above
	THandoff            byte = 0x05 // fetch one structure record (shard-to-shard)
	TGraph              byte = 0x06 // fetch one graph's canonical text
	TMutate             byte = 0x07 // apply a mutation batch to a live graph
	RDist               byte = 0x81 // point answer
	RBatch              byte = 0x84 // batch answer
	RHandoff            byte = 0x85 // raw structure record bytes
	RGraph              byte = 0x86 // raw graph text bytes
	RMutate             byte = 0x87 // new generation identity + rebuild ledger
	RError              byte = 0xff // status code + message
)

// pointPayloadLen is the fixed point-request payload length.
const pointPayloadLen = 36

// slotLen is the fixed batch-slot length (point payload + flags).
const slotLen = pointPayloadLen + 4

// slotFlagVertex marks a batch slot as a vertex-model query.
const slotFlagVertex uint32 = 1

// PointQuery is one fully-resolved point query: the key (graph fingerprint,
// source, ε, algorithm) plus the target and failure. All fields travel
// verbatim — the router resolves defaults before framing, the shard
// validates against its store exactly as the HTTP handlers do.
type PointQuery struct {
	FP      uint64
	EpsBits uint64
	Source  int32
	Alg     int32
	V       int32
	A, B    int32 // failed edge endpoints, or failed vertex in A; -1 unused
}

// Eps returns the ε the bits encode.
func (q *PointQuery) Eps() float64 { return math.Float64frombits(q.EpsBits) }

// BatchSlot is one entry of a batch request.
type BatchSlot struct {
	PointQuery
	Vertex bool // vertex-failure model (A is the failed vertex)
}

// handoffPayloadLen is the fixed THandoff request payload length.
const handoffPayloadLen = 28

// handoffFlagVertex marks a handoff key as a vertex-model structure.
const handoffFlagVertex uint32 = 1

// HandoffKey addresses one structure record in a shard-to-shard handoff:
// the full registry key, ε as its IEEE-754 bit pattern so the key on the
// receiving side is bit-identical to the one the router computed ranges for.
type HandoffKey struct {
	FP      uint64
	EpsBits uint64
	Source  int32
	Alg     int32
	Vertex  bool // vertex-failure model (EpsBits/Alg travel as zero)
}

// appendHandoffKey appends the fixed THandoff payload.
func appendHandoffKey(buf []byte, k *HandoffKey) []byte {
	le := binary.LittleEndian
	buf = le.AppendUint64(buf, k.FP)
	buf = le.AppendUint64(buf, k.EpsBits)
	buf = le.AppendUint32(buf, uint32(k.Source))
	buf = le.AppendUint32(buf, uint32(k.Alg))
	var flags uint32
	if k.Vertex {
		flags |= handoffFlagVertex
	}
	return le.AppendUint32(buf, flags)
}

// parseHandoffKey decodes a fixed THandoff payload.
func parseHandoffKey(payload []byte) (HandoffKey, error) {
	if len(payload) != handoffPayloadLen {
		return HandoffKey{}, fmt.Errorf("wire: handoff payload is %d bytes, want %d", len(payload), handoffPayloadLen)
	}
	le := binary.LittleEndian
	flags := le.Uint32(payload[24:])
	if flags&^handoffFlagVertex != 0 {
		return HandoffKey{}, fmt.Errorf("wire: handoff key has unknown flags %#x", flags)
	}
	return HandoffKey{
		FP:      le.Uint64(payload[0:]),
		EpsBits: le.Uint64(payload[8:]),
		Source:  int32(le.Uint32(payload[16:])),
		Alg:     int32(le.Uint32(payload[20:])),
		Vertex:  flags&handoffFlagVertex != 0,
	}, nil
}

// MutationWire is one edge mutation in a TMutate frame. Op is 0 for insert,
// 1 for delete — the same numbering graph.MutationOp uses, validated on parse
// so a corrupt op byte is a protocol error, not a surprise downstream.
type MutationWire struct {
	Op   uint8
	U, V uint32
}

// mutEntryLen is the per-mutation entry length in a TMutate payload.
const mutEntryLen = 1 + 4 + 4

// mutateResponseLen is the fixed RMutate payload length.
const mutateResponseLen = 8 + 8 + 8 + 4 + 4

// MutateResult is the decoded RMutate payload: the new generation's identity
// plus the shard's rebuild ledger for this batch, which the router aggregates
// into its convergence counters.
type MutateResult struct {
	Lineage       uint64 // stable graph identity (unchanged by mutation)
	Gen           uint64 // new serving generation
	FP            uint64 // content fingerprint of the new generation
	RebuildsDelta uint32 // structures carried over by the delta fast path
	RebuildsFull  uint32 // structures rebuilt from scratch
}

// appendMutate appends a TMutate payload: lineage u64, count u32, then count
// 9-byte entries (op u8, u u32, v u32).
func appendMutate(buf []byte, lineage uint64, muts []MutationWire) []byte {
	le := binary.LittleEndian
	buf = le.AppendUint64(buf, lineage)
	buf = le.AppendUint32(buf, uint32(len(muts)))
	for i := range muts {
		buf = append(buf, muts[i].Op)
		buf = le.AppendUint32(buf, muts[i].U)
		buf = le.AppendUint32(buf, muts[i].V)
	}
	return buf
}

// parseMutate decodes a TMutate payload.
func parseMutate(payload []byte) (lineage uint64, muts []MutationWire, err error) {
	le := binary.LittleEndian
	if len(payload) < 12 {
		return 0, nil, fmt.Errorf("wire: mutate payload truncated")
	}
	lineage = le.Uint64(payload[0:])
	count := int(le.Uint32(payload[8:]))
	if count < 0 || len(payload) != 12+count*mutEntryLen {
		return 0, nil, fmt.Errorf("wire: mutate payload is %d bytes for %d mutations", len(payload), count)
	}
	muts = make([]MutationWire, count)
	off := 12
	for i := range muts {
		op := payload[off]
		if op > 1 {
			return 0, nil, fmt.Errorf("wire: mutate entry %d has unknown op %d", i, op)
		}
		muts[i] = MutationWire{
			Op: op,
			U:  le.Uint32(payload[off+1:]),
			V:  le.Uint32(payload[off+5:]),
		}
		off += mutEntryLen
	}
	return lineage, muts, nil
}

// appendMutateResponse appends the fixed RMutate payload.
func appendMutateResponse(buf []byte, r *MutateResult) []byte {
	le := binary.LittleEndian
	buf = le.AppendUint64(buf, r.Lineage)
	buf = le.AppendUint64(buf, r.Gen)
	buf = le.AppendUint64(buf, r.FP)
	buf = le.AppendUint32(buf, r.RebuildsDelta)
	return le.AppendUint32(buf, r.RebuildsFull)
}

// parseMutateResponse decodes the fixed RMutate payload.
func parseMutateResponse(payload []byte) (MutateResult, error) {
	if len(payload) != mutateResponseLen {
		return MutateResult{}, fmt.Errorf("wire: mutate response is %d bytes, want %d", len(payload), mutateResponseLen)
	}
	le := binary.LittleEndian
	return MutateResult{
		Lineage:       le.Uint64(payload[0:]),
		Gen:           le.Uint64(payload[8:]),
		FP:            le.Uint64(payload[16:]),
		RebuildsDelta: le.Uint32(payload[24:]),
		RebuildsFull:  le.Uint32(payload[28:]),
	}, nil
}

// Error is a non-transport failure answered by the server: an
// HTTP-equivalent status code plus message, so callers relaying to HTTP
// clients (and the router's retryable-status logic) need no translation.
type Error struct {
	Code int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("wire: status %d: %s", e.Code, e.Msg) }

// frameBufs recycles frame encode/decode buffers across connections and
// requests; point frames are tiny but batches are worth pooling.
var frameBufs = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

func getBuf() *[]byte  { return frameBufs.Get().(*[]byte) }
func putBuf(b *[]byte) { *b = (*b)[:0]; frameBufs.Put(b) }

// appendFrame appends a complete frame to buf: header, payload, and the
// CRC-32C trailer over everything after the length prefix.
func appendFrame(buf []byte, typ byte, id uint64, budget uint32, trace uint64, payload []byte) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(frameOverhead+len(payload)+frameTrailer))
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint32(buf, budget)
	buf = binary.LittleEndian.AppendUint64(buf, trace)
	buf = append(buf, payload...)
	sum := crc32.Checksum(buf[start+4:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// writeFrame writes one frame to w.
func writeFrame(w io.Writer, typ byte, id uint64, budget uint32, trace uint64, payload []byte) error {
	buf := getBuf()
	defer putBuf(buf)
	*buf = appendFrame((*buf)[:0], typ, id, budget, trace, payload)
	_, err := w.Write(*buf)
	return err
}

// readFrame reads one frame from r into buf (grown as needed), returning the
// payload as a sub-slice of the returned buffer — valid until the next call.
// A checksum mismatch is a transport error: the caller drops the connection
// rather than act on bytes the wire may have mangled.
func readFrame(r io.Reader, buf []byte) (typ byte, id uint64, budget uint32, trace uint64, payload, newBuf []byte, err error) {
	var hdr [4 + frameOverhead]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, 0, nil, buf, err
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	if length < frameOverhead+frameTrailer || length > frameOverhead+MaxPayload+frameTrailer {
		return 0, 0, 0, 0, nil, buf, fmt.Errorf("wire: bad frame length %d", length)
	}
	typ = hdr[4]
	id = binary.LittleEndian.Uint64(hdr[5:])
	budget = binary.LittleEndian.Uint32(hdr[13:])
	trace = binary.LittleEndian.Uint64(hdr[17:])
	n := int(length) - frameOverhead // payload + trailer
	if cap(buf) < n {
		buf = make([]byte, n, n+n/2)
	}
	buf = buf[:n]
	if _, err = io.ReadFull(r, buf); err != nil {
		return 0, 0, 0, 0, nil, buf, err
	}
	sum := crc32.Checksum(hdr[4:], castagnoli)
	sum = crc32.Update(sum, castagnoli, buf[:n-frameTrailer])
	if got := binary.LittleEndian.Uint32(buf[n-frameTrailer:]); got != sum {
		return 0, 0, 0, 0, nil, buf, fmt.Errorf("wire: frame checksum mismatch (corrupted bytes)")
	}
	return typ, id, budget, trace, buf[:n-frameTrailer], buf, nil
}

// appendPoint appends the fixed point payload.
func appendPoint(buf []byte, q *PointQuery) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, q.FP)
	buf = binary.LittleEndian.AppendUint64(buf, q.EpsBits)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(q.Source))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(q.Alg))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(q.V))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(q.A))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(q.B))
	return buf
}

// parsePoint decodes a fixed point payload.
func parsePoint(payload []byte) (PointQuery, error) {
	if len(payload) != pointPayloadLen {
		return PointQuery{}, fmt.Errorf("wire: point payload is %d bytes, want %d", len(payload), pointPayloadLen)
	}
	le := binary.LittleEndian
	return PointQuery{
		FP:      le.Uint64(payload[0:]),
		EpsBits: le.Uint64(payload[8:]),
		Source:  int32(le.Uint32(payload[16:])),
		Alg:     int32(le.Uint32(payload[20:])),
		V:       int32(le.Uint32(payload[24:])),
		A:       int32(le.Uint32(payload[28:])),
		B:       int32(le.Uint32(payload[32:])),
	}, nil
}

// appendBatch appends a batch request payload.
func appendBatch(buf []byte, slots []BatchSlot) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(slots)))
	for i := range slots {
		buf = appendPoint(buf, &slots[i].PointQuery)
		var flags uint32
		if slots[i].Vertex {
			flags |= slotFlagVertex
		}
		buf = binary.LittleEndian.AppendUint32(buf, flags)
	}
	return buf
}

// parseBatch decodes a batch request payload.
func parseBatch(payload []byte) ([]BatchSlot, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("wire: batch payload truncated")
	}
	count := int(binary.LittleEndian.Uint32(payload))
	if count < 0 || len(payload) != 4+count*slotLen {
		return nil, fmt.Errorf("wire: batch payload is %d bytes for %d slots", len(payload), count)
	}
	slots := make([]BatchSlot, count)
	off := 4
	for i := range slots {
		q, err := parsePoint(payload[off : off+pointPayloadLen])
		if err != nil {
			return nil, err
		}
		flags := binary.LittleEndian.Uint32(payload[off+pointPayloadLen:])
		if flags&^slotFlagVertex != 0 {
			return nil, fmt.Errorf("wire: batch slot %d has unknown flags %#x", i, flags)
		}
		slots[i] = BatchSlot{PointQuery: q, Vertex: flags&slotFlagVertex != 0}
		off += slotLen
	}
	return slots, nil
}

// appendError appends an RError payload.
func appendError(buf []byte, code int, msg string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(code))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(msg)))
	return append(buf, msg...)
}

// parseError decodes an RError payload.
func parseError(payload []byte) (*Error, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("wire: error payload truncated")
	}
	le := binary.LittleEndian
	code := int(le.Uint32(payload))
	n := int(le.Uint32(payload[4:]))
	if n < 0 || len(payload) != 8+n {
		return nil, fmt.Errorf("wire: error payload is %d bytes for a %d-byte message", len(payload), n)
	}
	if code < 100 || code > 599 {
		return nil, fmt.Errorf("wire: error status %d out of range", code)
	}
	return &Error{Code: code, Msg: string(payload[8:])}, nil
}

// appendBatchResponse appends an RBatch payload: all dists, then the sparse
// error entries (slots whose errs entry is non-empty).
func appendBatchResponse(buf []byte, dists []int32, errs []string) []byte {
	le := binary.LittleEndian
	buf = le.AppendUint32(buf, uint32(len(dists)))
	for _, d := range dists {
		buf = le.AppendUint32(buf, uint32(d))
	}
	errCount := 0
	for _, e := range errs {
		if e != "" {
			errCount++
		}
	}
	buf = le.AppendUint32(buf, uint32(errCount))
	for i, e := range errs {
		if e == "" {
			continue
		}
		buf = le.AppendUint32(buf, uint32(i))
		buf = le.AppendUint32(buf, uint32(len(e)))
		buf = append(buf, e...)
	}
	return buf
}

// parseBatchResponse decodes an RBatch payload into dense dists and a
// same-length errs slice ("" = ok).
func parseBatchResponse(payload []byte) (dists []int32, errs []string, err error) {
	le := binary.LittleEndian
	if len(payload) < 4 {
		return nil, nil, fmt.Errorf("wire: batch response truncated")
	}
	count := int(le.Uint32(payload))
	off := 4
	if count < 0 || len(payload) < off+count*4+4 {
		return nil, nil, fmt.Errorf("wire: batch response is %d bytes for %d dists", len(payload), count)
	}
	dists = make([]int32, count)
	for i := range dists {
		dists[i] = int32(le.Uint32(payload[off:]))
		off += 4
	}
	errCount := int(le.Uint32(payload[off:]))
	off += 4
	if errCount < 0 || errCount > count {
		return nil, nil, fmt.Errorf("wire: batch response claims %d errors for %d slots", errCount, count)
	}
	errs = make([]string, count)
	for j := 0; j < errCount; j++ {
		if len(payload) < off+8 {
			return nil, nil, fmt.Errorf("wire: batch response truncated in error entry %d", j)
		}
		slot := int(le.Uint32(payload[off:]))
		n := int(le.Uint32(payload[off+4:]))
		off += 8
		if slot < 0 || slot >= count || n < 0 || len(payload) < off+n {
			return nil, nil, fmt.Errorf("wire: batch response error entry %d malformed", j)
		}
		errs[slot] = string(payload[off : off+n])
		off += n
	}
	if off != len(payload) {
		return nil, nil, fmt.Errorf("wire: batch response has %d trailing bytes", len(payload)-off)
	}
	return dists, errs, nil
}
