package wire

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ftbfs/internal/telemetry"
)

// Client is a pooled, pipelining wire client for one server address. It
// keeps a small fixed set of persistent connections; concurrent requests are
// spread round-robin and multiplexed by request id, so one connection can
// carry many in-flight requests (hedged reads and scatter-gather sub-batches
// share connections instead of dialing). A Client is safe for concurrent use
// and survives server restarts: a dead connection fails its in-flight
// requests with a transport error and is re-dialed on the next request.
type Client struct {
	addr        string
	dialTimeout time.Duration
	reqTimeout  time.Duration

	ids   atomic.Uint64
	next  atomic.Uint64
	mu    sync.Mutex // guards conns slots during (re)dial
	conns []*clientConn
}

// response is what the reader goroutine hands back to a waiter.
type response struct {
	typ     byte
	payload []byte // owned by the waiter
	err     error
}

// chanPool recycles waiter channels: a channel that delivered its response
// is drained and safe to reuse, and point queries are frequent enough that
// the per-request make(chan) shows up. Channels on the forget path (timeout
// or cancel) are simply dropped — the dying connection may still send to
// them, so they must not be reused.
var chanPool = sync.Pool{New: func() any { return make(chan response, 1) }}

// timerPool recycles request timers; Reset after a receive or Stop is safe
// with Go 1.23+ timer semantics.
var timerPool = sync.Pool{}

// clientConn is one multiplexed connection.
type clientConn struct {
	c  net.Conn
	bw *bufio.Writer

	wmu   sync.Mutex   // serialises frame writes
	wpend atomic.Int64 // senders holding or waiting on wmu

	pmu     sync.Mutex
	pending map[uint64]chan response
	dead    bool
}

// NewClient returns a client for addr; connections are dialed lazily. conns
// bounds the connection pool (values < 1 mean 4 — enough to spread syscall
// load without hoarding server sockets; pipelining provides the parallelism).
func NewClient(addr string, conns int) *Client {
	if conns < 1 {
		conns = 4
	}
	return &Client{
		addr:        addr,
		dialTimeout: 2 * time.Second,
		reqTimeout:  30 * time.Second,
		conns:       make([]*clientConn, conns),
	}
}

// Addr returns the server address the client dials.
func (c *Client) Addr() string { return c.addr }

// Close tears down every pooled connection; in-flight requests fail with a
// transport error. The client remains usable (connections re-dial).
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, cc := range c.conns {
		if cc != nil {
			cc.fail(fmt.Errorf("wire: client closed"))
			c.conns[i] = nil
		}
	}
}

// conn returns a live connection from the pool slot the round-robin counter
// picks, dialing if the slot is empty or its connection died. Dialing runs
// outside the pool lock so a slow dial to one address never stalls requests
// that can ride an existing connection.
func (c *Client) conn() (*clientConn, error) {
	slot := int(c.next.Add(1) % uint64(len(c.conns)))
	c.mu.Lock()
	cc := c.conns[slot]
	c.mu.Unlock()
	if cc != nil && !cc.isDead() {
		return cc, nil
	}
	nc, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if _, err := nc.Write(preamble[:]); err != nil {
		nc.Close()
		return nil, err
	}
	ncc := &clientConn{
		c:       nc,
		bw:      bufio.NewWriterSize(nc, 32<<10),
		pending: make(map[uint64]chan response),
	}
	c.mu.Lock()
	if cur := c.conns[slot]; cur != nil && cur != cc && !cur.isDead() {
		// Lost a dial race; use the winner and drop ours (no reader yet).
		c.mu.Unlock()
		nc.Close()
		return cur, nil
	}
	c.conns[slot] = ncc
	c.mu.Unlock()
	go ncc.readLoop()
	return ncc, nil
}

// isDead reports whether the connection has failed.
func (cc *clientConn) isDead() bool {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	return cc.dead
}

// readLoop dispatches response frames to their waiters until the connection
// dies, then fails everything still pending.
func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.c, 32<<10)
	var buf []byte
	for {
		typ, id, _, _, payload, newBuf, err := readFrame(br, buf)
		buf = newBuf
		if err != nil {
			cc.fail(fmt.Errorf("wire: connection lost: %w", err))
			return
		}
		cc.pmu.Lock()
		ch, ok := cc.pending[id]
		delete(cc.pending, id)
		cc.pmu.Unlock()
		if ok {
			// Copy out of the read buffer: the waiter owns its payload.
			p := make([]byte, len(payload))
			copy(p, payload)
			ch <- response{typ: typ, payload: p}
		}
	}
}

// fail marks the connection dead, closes it, and fails all waiters.
func (cc *clientConn) fail(err error) {
	cc.pmu.Lock()
	if cc.dead {
		cc.pmu.Unlock()
		return
	}
	cc.dead = true
	pending := cc.pending
	cc.pending = nil
	cc.pmu.Unlock()
	cc.c.Close()
	for _, ch := range pending {
		ch <- response{err: err}
	}
}

// send registers a waiter and writes one request frame.
func (cc *clientConn) send(typ byte, id uint64, budget uint32, trace uint64, payload []byte) (chan response, error) {
	ch := chanPool.Get().(chan response)
	cc.pmu.Lock()
	if cc.dead {
		cc.pmu.Unlock()
		return nil, fmt.Errorf("wire: connection lost")
	}
	cc.pending[id] = ch
	cc.pmu.Unlock()

	cc.wpend.Add(1)
	cc.wmu.Lock()
	buf := getBuf()
	*buf = appendFrame((*buf)[:0], typ, id, budget, trace, payload)
	_, err := cc.bw.Write(*buf)
	// Group flush: if another sender is already waiting on wmu, leave our
	// frame buffered — the last writer in the burst sees the count hit zero
	// and pays one syscall for everyone. Under light load the count is zero
	// immediately and this degenerates to flush-per-request.
	if err == nil && cc.wpend.Add(-1) == 0 {
		err = cc.bw.Flush()
	} else if err != nil {
		cc.wpend.Add(-1)
	}
	putBuf(buf)
	cc.wmu.Unlock()
	if err != nil {
		cc.fail(fmt.Errorf("wire: write failed: %w", err))
		return nil, err
	}
	return ch, nil
}

// forget abandons a waiter (timeout/cancel); the connection is killed, since
// an abandoned in-flight response would otherwise desynchronise nothing —
// ids keep frames matched — but a hung server must not pin a conn forever.
func (cc *clientConn) forget(id uint64, err error) {
	cc.pmu.Lock()
	_, mine := cc.pending[id]
	delete(cc.pending, id)
	cc.pmu.Unlock()
	if mine {
		cc.fail(err)
	}
}

// do sends one request and waits for its response. The caller's remaining
// context deadline travels in the frame's budget field (rounded up to a whole
// millisecond) so the server stops working when the caller stops waiting; a
// telemetry trace in the context travels in the trace field so shard-side
// spans share the caller's trace ID.
func (c *Client) do(ctx context.Context, typ byte, payload []byte) (response, error) {
	cc, err := c.conn()
	if err != nil {
		return response{}, err
	}
	var trace uint64
	if tr := telemetry.TraceFrom(ctx); tr != nil {
		trace = tr.ID()
	}
	timeout := c.reqTimeout
	var budget uint32
	if dl, ok := ctx.Deadline(); ok {
		d := time.Until(dl)
		if d <= 0 {
			return response{}, context.DeadlineExceeded
		}
		if d < timeout {
			timeout = d
		}
		ms := int64((d + time.Millisecond - 1) / time.Millisecond)
		if ms > int64(^uint32(0)) {
			budget = ^uint32(0)
		} else {
			budget = uint32(ms)
		}
	}
	id := c.ids.Add(1)
	ch, err := cc.send(typ, id, budget, trace, payload)
	if err != nil {
		return response{}, err
	}
	var timer *time.Timer
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(timeout)
		timer = t
	} else {
		timer = time.NewTimer(timeout)
	}
	select {
	case r := <-ch:
		timer.Stop()
		timerPool.Put(timer)
		// The channel delivered its single response; it is empty and safe
		// to reuse.
		chanPool.Put(ch)
		return r, r.err
	case <-ctx.Done():
		cc.forget(id, ctx.Err())
		timer.Stop()
		timerPool.Put(timer)
		return response{}, ctx.Err()
	case <-timer.C:
		err := fmt.Errorf("wire: request timed out after %v", timeout)
		cc.forget(id, err)
		timerPool.Put(timer)
		return response{}, err
	}
}

// Point answers one point query. A non-nil *Error is a definitive in-protocol
// answer from the server (mirroring an HTTP status); a non-nil error is a
// transport failure the caller may retry or fall back from.
func (c *Client) Point(ctx context.Context, typ byte, q *PointQuery) (int32, *Error, error) {
	buf := getBuf()
	payload := appendPoint((*buf)[:0], q)
	r, err := c.do(ctx, typ, payload)
	putBuf(buf)
	if err != nil {
		return 0, nil, err
	}
	switch r.typ {
	case RDist:
		if len(r.payload) != 4 {
			return 0, nil, fmt.Errorf("wire: bad point response length %d", len(r.payload))
		}
		return int32(uint32(r.payload[0]) | uint32(r.payload[1])<<8 | uint32(r.payload[2])<<16 | uint32(r.payload[3])<<24), nil, nil
	case RError:
		werr, perr := parseError(r.payload)
		if perr != nil {
			return 0, nil, perr
		}
		return 0, werr, nil
	default:
		return 0, nil, fmt.Errorf("wire: unexpected response type %#x", r.typ)
	}
}

// FetchRecord fetches the record bytes of one structure from a peer shard
// over the persistent connection pool — the handoff fast path. A non-nil
// *Error is the peer's definitive in-protocol answer (404 not held, 413
// record exceeds the frame bound — the caller then falls back to HTTP, which
// has no such bound); a non-nil error is a transport failure.
func (c *Client) FetchRecord(ctx context.Context, k *HandoffKey) ([]byte, *Error, error) {
	buf := getBuf()
	payload := appendHandoffKey((*buf)[:0], k)
	r, err := c.do(ctx, THandoff, payload)
	putBuf(buf)
	if err != nil {
		return nil, nil, err
	}
	switch r.typ {
	case RHandoff:
		return r.payload, nil, nil
	case RError:
		werr, perr := parseError(r.payload)
		if perr != nil {
			return nil, nil, perr
		}
		return nil, werr, nil
	default:
		return nil, nil, fmt.Errorf("wire: unexpected response type %#x", r.typ)
	}
}

// FetchGraph fetches the canonical text of one graph from a peer shard —
// what a handoff receiver registers before importing the graph's structures.
// Error semantics match FetchRecord.
func (c *Client) FetchGraph(ctx context.Context, fp uint64) ([]byte, *Error, error) {
	var payload [8]byte
	payload[0], payload[1], payload[2], payload[3] = byte(fp), byte(fp>>8), byte(fp>>16), byte(fp>>24)
	payload[4], payload[5], payload[6], payload[7] = byte(fp>>32), byte(fp>>40), byte(fp>>48), byte(fp>>56)
	r, err := c.do(ctx, TGraph, payload[:])
	if err != nil {
		return nil, nil, err
	}
	switch r.typ {
	case RGraph:
		return r.payload, nil, nil
	case RError:
		werr, perr := parseError(r.payload)
		if perr != nil {
			return nil, nil, perr
		}
		return nil, werr, nil
	default:
		return nil, nil, fmt.Errorf("wire: unexpected response type %#x", r.typ)
	}
}

// Mutate applies one edge-mutation batch to the graph of the given lineage on
// a peer shard and returns the new generation's identity plus the shard's
// rebuild ledger. A non-nil *Error is the shard's definitive in-protocol
// answer (404 graph not held there, 501 transport lacks mutation support —
// the caller then falls back to HTTP); a non-nil error is a transport
// failure.
func (c *Client) Mutate(ctx context.Context, lineage uint64, muts []MutationWire) (MutateResult, *Error, error) {
	buf := getBuf()
	payload := appendMutate((*buf)[:0], lineage, muts)
	r, err := c.do(ctx, TMutate, payload)
	putBuf(buf)
	if err != nil {
		return MutateResult{}, nil, err
	}
	switch r.typ {
	case RMutate:
		res, perr := parseMutateResponse(r.payload)
		if perr != nil {
			return MutateResult{}, nil, perr
		}
		return res, nil, nil
	case RError:
		werr, perr := parseError(r.payload)
		if perr != nil {
			return MutateResult{}, nil, perr
		}
		return MutateResult{}, werr, nil
	default:
		return MutateResult{}, nil, fmt.Errorf("wire: unexpected response type %#x", r.typ)
	}
}

// Batch answers a batch of slots; dists and errs are parallel to slots with
// "" marking success. A non-nil *Error means the server rejected the whole
// batch; a non-nil error is a transport failure.
func (c *Client) Batch(ctx context.Context, slots []BatchSlot) ([]int32, []string, *Error, error) {
	buf := getBuf()
	payload := appendBatch((*buf)[:0], slots)
	r, err := c.do(ctx, TBatch, payload)
	putBuf(buf)
	if err != nil {
		return nil, nil, nil, err
	}
	switch r.typ {
	case RBatch:
		dists, errs, perr := parseBatchResponse(r.payload)
		if perr != nil {
			return nil, nil, nil, perr
		}
		if len(dists) != len(slots) {
			return nil, nil, nil, fmt.Errorf("wire: batch response has %d slots, want %d", len(dists), len(slots))
		}
		return dists, errs, nil, nil
	case RError:
		werr, perr := parseError(r.payload)
		if perr != nil {
			return nil, nil, nil, perr
		}
		return nil, nil, werr, nil
	default:
		return nil, nil, nil, fmt.Errorf("wire: unexpected response type %#x", r.typ)
	}
}
