package wire

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"ftbfs/internal/telemetry"
)

// Backend answers decoded wire queries; internal/server implements it on top
// of the same store/oracle machinery the HTTP handlers use, which is what
// makes the two transports answer-identical by construction. The context
// carries the caller's deadline budget (derived from the frame's budget
// field): a backend should stop working when it expires and answer with a
// 504-equivalent error.
type Backend interface {
	// WirePoint answers one point query of the given request type
	// (TDist / TDistAvoiding / TDistAvoidingVertex).
	WirePoint(ctx context.Context, typ byte, q *PointQuery) (int32, *Error)
	// WireBatch answers a batch; dists and errs are parallel to slots, with
	// "" marking a slot that succeeded.
	WireBatch(ctx context.Context, slots []BatchSlot) (dists []int32, errs []string)
}

// HandoffBackend is the optional shard-to-shard extension of Backend:
// backends implementing it additionally serve THandoff/TGraph frames, which
// is how structures stream between shards during a rebalance. A backend
// without it answers those frames with an in-protocol 501 — the puller then
// falls back to the HTTP handoff surface.
type HandoffBackend interface {
	// HandoffRecord returns the record bytes of one held structure (or an
	// in-protocol error: 404 not held, 413 record exceeds MaxPayload).
	HandoffRecord(ctx context.Context, k *HandoffKey) ([]byte, *Error)
	// HandoffGraph returns the canonical text of one registered graph.
	HandoffGraph(ctx context.Context, fp uint64) ([]byte, *Error)
}

// MutateBackend is the optional live-graph extension of Backend: backends
// implementing it additionally serve TMutate frames, applying an edge
// mutation batch and atomically swapping the shard to the new generation. A
// backend without it answers with an in-protocol 501 — the router then falls
// back to the HTTP /mutate surface.
type MutateBackend interface {
	// WireMutate applies one mutation batch to the graph of the given
	// lineage (or answers an in-protocol error: 404 unknown graph, 400
	// invalid batch, 500 persist fault).
	WireMutate(ctx context.Context, lineage uint64, muts []MutationWire) (MutateResult, *Error)
}

// Serve accepts wire connections on ln until ctx is cancelled or the
// listener fails, answering frames through backend. Each connection is
// handled by its own goroutine; frames on one connection are answered in
// order (responses carry the request id, so pipelined clients don't care).
// Serve closes every live connection on shutdown and only then returns.
func Serve(ctx context.Context, ln net.Listener, backend Backend) error {
	var (
		mu    sync.Mutex
		conns = make(map[net.Conn]struct{})
		wg    sync.WaitGroup
	)
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	var err error
	for {
		var c net.Conn
		c, err = ln.Accept()
		if err != nil {
			break
		}
		mu.Lock()
		conns[c] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				mu.Lock()
				delete(conns, c)
				mu.Unlock()
				c.Close()
			}()
			serveConn(ctx, c, backend)
		}()
	}
	mu.Lock()
	for c := range conns {
		c.Close()
	}
	mu.Unlock()
	wg.Wait()
	if ctx.Err() != nil {
		return nil // orderly shutdown
	}
	return err
}

// serveConn validates the preamble then answers frames until the peer
// disconnects or breaks the protocol. A frame failing its checksum is
// treated like any other transport fault: the connection is dropped.
func serveConn(ctx context.Context, c net.Conn, backend Backend) {
	br := bufio.NewReaderSize(c, 32<<10)
	bw := bufio.NewWriterSize(c, 32<<10)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil || got != preamble {
		return
	}
	buf := *getBuf()
	defer func() { putBuf(&buf) }()
	for {
		typ, id, budget, trace, payload, newBuf, err := readFrame(br, buf[:cap(buf)])
		buf = newBuf
		if err != nil {
			return
		}
		if err := answer(ctx, bw, backend, typ, id, budget, trace, payload); err != nil {
			return
		}
		// Flush only when the pipeline drains: back-to-back pipelined
		// requests share one syscall on the way out.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// errProtocol tells serveConn to drop the connection: the peer sent a frame
// that cannot be answered in-protocol.
var errProtocol = errors.New("wire: protocol error")

// answer decodes and answers one request frame. A non-zero budget bounds the
// backend's work with a context deadline — the caller has already given up
// once it expires, so finishing the computation would be wasted work. A
// non-zero trace hands the backend a telemetry trace with the caller's ID;
// the untraced hot path pays a single branch.
func answer(ctx context.Context, w io.Writer, backend Backend, typ byte, id uint64, budget uint32, trace uint64, payload []byte) error {
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(budget)*time.Millisecond)
		defer cancel()
	}
	if trace != 0 {
		ctx = telemetry.WithTrace(ctx, telemetry.NewTrace(trace))
	}
	switch typ {
	case TDist, TDistAvoiding, TDistAvoidingVertex:
		q, err := parsePoint(payload)
		if err != nil {
			return errProtocol
		}
		d, werr := backend.WirePoint(ctx, typ, &q)
		if werr != nil {
			buf := getBuf()
			defer putBuf(buf)
			return writeFrame(w, RError, id, 0, 0, appendError((*buf)[:0], werr.Code, werr.Msg))
		}
		var db [4]byte
		db[0], db[1], db[2], db[3] = byte(d), byte(d>>8), byte(d>>16), byte(d>>24)
		return writeFrame(w, RDist, id, 0, 0, db[:])
	case TBatch:
		slots, err := parseBatch(payload)
		if err != nil {
			return errProtocol
		}
		dists, errs := backend.WireBatch(ctx, slots)
		buf := getBuf()
		defer putBuf(buf)
		return writeFrame(w, RBatch, id, 0, 0, appendBatchResponse((*buf)[:0], dists, errs))
	case THandoff:
		k, err := parseHandoffKey(payload)
		if err != nil {
			return errProtocol
		}
		hb, ok := backend.(HandoffBackend)
		if !ok {
			return writeError(w, id, 501, "handoff not supported")
		}
		data, werr := hb.HandoffRecord(ctx, &k)
		if werr != nil {
			return writeError(w, id, werr.Code, werr.Msg)
		}
		return writeFrame(w, RHandoff, id, 0, 0, data)
	case TGraph:
		if len(payload) != 8 {
			return errProtocol
		}
		fp := uint64(payload[0]) | uint64(payload[1])<<8 | uint64(payload[2])<<16 | uint64(payload[3])<<24 |
			uint64(payload[4])<<32 | uint64(payload[5])<<40 | uint64(payload[6])<<48 | uint64(payload[7])<<56
		hb, ok := backend.(HandoffBackend)
		if !ok {
			return writeError(w, id, 501, "handoff not supported")
		}
		data, werr := hb.HandoffGraph(ctx, fp)
		if werr != nil {
			return writeError(w, id, werr.Code, werr.Msg)
		}
		return writeFrame(w, RGraph, id, 0, 0, data)
	case TMutate:
		lineage, muts, err := parseMutate(payload)
		if err != nil {
			return errProtocol
		}
		mb, ok := backend.(MutateBackend)
		if !ok {
			return writeError(w, id, 501, "mutate not supported")
		}
		res, werr := mb.WireMutate(ctx, lineage, muts)
		if werr != nil {
			return writeError(w, id, werr.Code, werr.Msg)
		}
		buf := getBuf()
		defer putBuf(buf)
		return writeFrame(w, RMutate, id, 0, 0, appendMutateResponse((*buf)[:0], &res))
	default:
		return errProtocol
	}
}

// writeError writes one RError frame.
func writeError(w io.Writer, id uint64, code int, msg string) error {
	buf := getBuf()
	defer putBuf(buf)
	return writeFrame(w, RError, id, 0, 0, appendError((*buf)[:0], code, msg))
}
