package wire

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ftbfs/internal/telemetry"
)

// testBackend answers arithmetically so tests can verify routing without a
// real store: point answers V + A + B + int32(typ), batches echo per-slot,
// and A == -7 triggers an in-protocol error.
type testBackend struct{}

func (testBackend) WirePoint(ctx context.Context, typ byte, q *PointQuery) (int32, *Error) {
	if q.A == -7 {
		return 0, &Error{Code: 404, Msg: "unknown graph 00000000000000ff"}
	}
	if q.A == -9 {
		// Busy-server stand-in: wait out the caller's budget, then prove the
		// budget arrived by answering with its expiry instead of a distance.
		select {
		case <-ctx.Done():
			return 0, &Error{Code: 504, Msg: "deadline budget exhausted"}
		case <-time.After(2 * time.Second):
			return 0, &Error{Code: 500, Msg: "no budget arrived"}
		}
	}
	return q.V + q.A + q.B + int32(typ), nil
}

func (testBackend) WireBatch(ctx context.Context, slots []BatchSlot) ([]int32, []string) {
	dists := make([]int32, len(slots))
	errs := make([]string, len(slots))
	for i, s := range slots {
		if s.A == -7 {
			dists[i] = -1
			errs[i] = fmt.Sprintf("slot %d failed", i)
			continue
		}
		dists[i] = s.V * 2
		if s.Vertex {
			dists[i]++
		}
	}
	return dists, errs
}

// startWire serves testBackend on a loopback listener.
func startWire(t *testing.T) (addr string, shutdown func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Serve(ctx, ln, testBackend{})
	}()
	return ln.Addr().String(), func() {
		cancel()
		<-done
	}
}

func TestPointRoundTrip(t *testing.T) {
	addr, shutdown := startWire(t)
	defer shutdown()
	c := NewClient(addr, 2)
	defer c.Close()

	d, werr, err := c.Point(context.Background(), TDistAvoiding, &PointQuery{V: 10, A: 2, B: 3})
	if err != nil || werr != nil {
		t.Fatalf("Point: %v / %v", werr, err)
	}
	if want := int32(10 + 2 + 3 + int32(TDistAvoiding)); d != want {
		t.Fatalf("Point = %d, want %d", d, want)
	}

	// In-protocol errors carry their HTTP-equivalent status through.
	_, werr, err = c.Point(context.Background(), TDist, &PointQuery{V: 1, A: -7})
	if err != nil {
		t.Fatalf("Point transport error: %v", err)
	}
	if werr == nil || werr.Code != 404 {
		t.Fatalf("Point error = %v, want status 404", werr)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	addr, shutdown := startWire(t)
	defer shutdown()
	c := NewClient(addr, 1)
	defer c.Close()

	slots := []BatchSlot{
		{PointQuery: PointQuery{V: 5}},
		{PointQuery: PointQuery{V: 6, A: -7}},
		{PointQuery: PointQuery{V: 7}, Vertex: true},
	}
	dists, errs, werr, err := c.Batch(context.Background(), slots)
	if err != nil || werr != nil {
		t.Fatalf("Batch: %v / %v", werr, err)
	}
	if dists[0] != 10 || dists[2] != 15 {
		t.Fatalf("Batch dists = %v", dists)
	}
	if errs[0] != "" || errs[1] != "slot 1 failed" || errs[2] != "" {
		t.Fatalf("Batch errs = %q", errs)
	}
}

// TestPipelinedConcurrency hammers one client (few conns, many goroutines)
// to exercise id multiplexing; run with -race.
func TestPipelinedConcurrency(t *testing.T) {
	addr, shutdown := startWire(t)
	defer shutdown()
	c := NewClient(addr, 2)
	defer c.Close()

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := int32(w*1000 + i)
				d, werr, err := c.Point(context.Background(), TDist, &PointQuery{V: v, A: 1, B: 1})
				if err != nil || werr != nil {
					t.Errorf("Point: %v / %v", werr, err)
					return
				}
				if want := v + 2 + int32(TDist); d != want {
					t.Errorf("Point = %d, want %d", d, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestClientSurvivesServerRestart kills the server mid-stream and expects
// transport errors (not hangs), then a full recovery once a new server
// listens on the same address.
func TestClientSurvivesServerRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan struct{})
	go func() { defer close(done1); Serve(ctx1, ln, testBackend{}) }()

	c := NewClient(addr, 1)
	defer c.Close()
	if _, _, err := c.Point(context.Background(), TDist, &PointQuery{V: 1}); err != nil {
		t.Fatalf("warm-up point: %v", err)
	}

	cancel1()
	<-done1
	// The dead connection surfaces as a transport error (possibly after one
	// failed redial); it must not hang.
	cctx, ccancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer ccancel()
	if _, _, err := c.Point(cctx, TDist, &PointQuery{V: 1}); err == nil {
		t.Fatalf("point against dead server succeeded")
	}

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan struct{})
	go func() { defer close(done2); Serve(ctx2, ln2, testBackend{}) }()
	defer func() { cancel2(); <-done2 }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := c.Point(context.Background(), TDist, &PointQuery{V: 2}); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered after server restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerRejectsGarbage sends a non-preamble byte stream (an HTTP request,
// say) and expects the server to just hang up.
func TestServerRejectsGarbage(t *testing.T) {
	addr, shutdown := startWire(t)
	defer shutdown()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	fmt.Fprintf(nc, "GET /dist HTTP/1.1\r\nHost: x\r\n\r\n")
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	var b [1]byte
	if _, err := nc.Read(b[:]); err == nil {
		t.Fatalf("server answered a non-wire client")
	}
}

// FuzzWireFrame feeds arbitrary bytes to the frame reader and every payload
// parser; nothing may panic or over-allocate, and whatever parses must
// re-encode cleanly.
func FuzzWireFrame(f *testing.F) {
	var seed []byte
	seed = appendFrame(seed, TDistAvoiding, 7, 0, 0, appendPoint(nil, &PointQuery{FP: 1, V: 2, A: 3, B: 4}))
	f.Add(seed)
	f.Add(appendFrame(nil, TBatch, 9, 250, 0, appendBatch(nil, []BatchSlot{{PointQuery: PointQuery{V: 1}, Vertex: true}})))
	f.Add(appendFrame(nil, RError, 1, 0, 7, appendError(nil, 404, "nope")))
	f.Add(appendFrame(nil, RBatch, 2, 0, 0, appendBatchResponse(nil, []int32{1, -1}, []string{"", "bad"})))
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, _, _, _, payload, _, err := readFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		switch typ {
		case TDist, TDistAvoiding, TDistAvoidingVertex:
			if q, err := parsePoint(payload); err == nil {
				if got := appendPoint(nil, &q); !bytes.Equal(got, payload) {
					t.Fatalf("point payload not canonical")
				}
			}
		case TBatch:
			if slots, err := parseBatch(payload); err == nil {
				if got := appendBatch(nil, slots); !bytes.Equal(got, payload) {
					t.Fatalf("batch payload not canonical")
				}
			}
		case RError:
			if e, err := parseError(payload); err == nil {
				if got := appendError(nil, e.Code, e.Msg); !bytes.Equal(got, payload) {
					t.Fatalf("error payload not canonical")
				}
			}
		case RBatch:
			// Batch responses have a sparse error section; parse only.
			parseBatchResponse(payload)
		}
	})
}

// TestFrameTraceRoundTrip proves the v3 trace field survives encode/decode.
func TestFrameTraceRoundTrip(t *testing.T) {
	const want = uint64(0xabcdef0123456789)
	frame := appendFrame(nil, TDist, 3, 17, want, appendPoint(nil, &PointQuery{V: 1, A: -1, B: -1}))
	typ, id, budget, trace, _, _, err := readFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if typ != TDist || id != 3 || budget != 17 || trace != want {
		t.Fatalf("frame fields = %x/%d/%d/%x, want %x/3/17/%x", typ, id, budget, trace, TDist, want)
	}
}

// traceBackend records the trace ID each point request's context carried.
type traceBackend struct {
	mu   sync.Mutex
	seen []uint64
}

func (b *traceBackend) WirePoint(ctx context.Context, typ byte, q *PointQuery) (int32, *Error) {
	var id uint64
	if tr := telemetry.TraceFrom(ctx); tr != nil {
		id = tr.ID()
	}
	b.mu.Lock()
	b.seen = append(b.seen, id)
	b.mu.Unlock()
	return q.V, nil
}

func (b *traceBackend) WireBatch(ctx context.Context, slots []BatchSlot) ([]int32, []string) {
	return make([]int32, len(slots)), make([]string, len(slots))
}

// TestClientPropagatesTraceID proves a telemetry trace in the caller's
// context reaches the backend through the frame's trace field — and that
// untraced requests arrive with a zero ID.
func TestClientPropagatesTraceID(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	backend := &traceBackend{}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); Serve(ctx, ln, backend) }()
	defer func() { cancel(); <-done }()

	c := NewClient(ln.Addr().String(), 1)
	defer c.Close()

	tr := telemetry.NewTrace(0x1234)
	tctx := telemetry.WithTrace(context.Background(), tr)
	if _, werr, err := c.Point(tctx, TDist, &PointQuery{V: 5, A: -1, B: -1}); err != nil || werr != nil {
		t.Fatalf("traced Point: %v / %v", werr, err)
	}
	if _, werr, err := c.Point(context.Background(), TDist, &PointQuery{V: 6, A: -1, B: -1}); err != nil || werr != nil {
		t.Fatalf("untraced Point: %v / %v", werr, err)
	}
	backend.mu.Lock()
	defer backend.mu.Unlock()
	if len(backend.seen) != 2 || backend.seen[0] != 0x1234 || backend.seen[1] != 0 {
		t.Fatalf("backend saw trace IDs %x, want [1234 0]", backend.seen)
	}
}
