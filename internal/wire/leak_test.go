package wire

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// Resource-lifecycle tests: every goroutine the client and server spawn
// (per-connection read loops, per-connection server handlers) must exit once
// the client is closed and the server shut down — including with requests
// still in flight when the teardown starts. Request timers are pooled and
// stopped on every do() exit path, so a timer leak would surface here as a
// parked goroutine holding its waiter channel.

// waitForGoroutines polls until the goroutine count settles back to the
// baseline, dumping all stacks on timeout so the leaked goroutine is named
// in the failure.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d now, %d at baseline\n%s", n, base, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClientCloseReleasesResources closes a client with requests in flight:
// the waiters must fail immediately (not hang out their 30s request timers)
// and every pooled connection's read loop must exit.
func TestClientCloseReleasesResources(t *testing.T) {
	base := runtime.NumGoroutine()
	addr, shutdown := startWire(t)
	c := NewClient(addr, 4)

	// Fill every pool slot so all four connections (and read loops) exist.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				v := int32(w*100 + i)
				if d, werr, err := c.Point(context.Background(), TDist, &PointQuery{V: v, A: 1, B: 1}); err != nil || werr != nil {
					t.Errorf("Point: %v / %v", werr, err)
					return
				} else if want := v + 2 + int32(TDist); d != want {
					t.Errorf("Point = %d, want %d", d, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Park requests on the stalling backend (A == -9 waits out the budget),
	// then close the client under them.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	inflight := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, werr, err := c.Point(ctx, TDist, &PointQuery{V: 1, A: -9})
			if err == nil && werr == nil {
				inflight <- fmt.Errorf("stalled point succeeded after client close")
				return
			}
			inflight <- nil
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the frames land in flight
	closed := time.Now()
	c.Close()
	for i := 0; i < 4; i++ {
		if err := <-inflight; err != nil {
			t.Fatal(err)
		}
	}
	if waited := time.Since(closed); waited > 2*time.Second {
		t.Fatalf("in-flight requests took %v to fail after Close — they must fail fast, not time out", waited)
	}
	shutdown()
	waitForGoroutines(t, base)
}

// TestServerShutdownFailsInflightFast drains the server with a request in
// flight: the client must get a prompt failure (connection closed or an
// in-protocol 504 written during the drain), never a hang into its 30s
// request timer, and both sides' goroutines must exit.
func TestServerShutdownFailsInflightFast(t *testing.T) {
	base := runtime.NumGoroutine()
	addr, shutdown := startWire(t)
	c := NewClient(addr, 1)
	if _, werr, err := c.Point(context.Background(), TDist, &PointQuery{V: 1, A: 1, B: 1}); err != nil || werr != nil {
		t.Fatalf("warm-up point: %v / %v", werr, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	type result struct {
		werr *Error
		err  error
	}
	res := make(chan result, 1)
	go func() {
		_, werr, err := c.Point(ctx, TDist, &PointQuery{V: 1, A: -9})
		res <- result{werr, err}
	}()
	time.Sleep(50 * time.Millisecond) // the frame is in flight, the handler parked
	start := time.Now()
	shutdown() // cancels the server ctx, closes conns, waits for handlers

	select {
	case r := <-res:
		if r.err == nil && r.werr == nil {
			t.Fatal("in-flight request reported success across a server shutdown")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight request still pending 3s after server shutdown")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("drain took %v", waited)
	}
	c.Close()
	waitForGoroutines(t, base)
}
