package store

import (
	"ftbfs/internal/telemetry"
)

// storeMetrics is the registry-backed view of the store's counters and
// timings. Every counter pointer is resolved once at New, so the serving
// path pays one atomic add per event and never formats a label; Stats()
// reconstructs the legacy /stats JSON shape from these same series, keeping
// the registry the single source of truth.
type storeMetrics struct {
	reg *telemetry.Registry

	hits, misses, loads, builds, evictions, saves *telemetry.Counter
	warmLoaded, warmSkipped, warmQuarantined      *telemetry.Counter
	handoffsIn, handoffsOut                       *telemetry.Counter

	// Live-graph convergence ledger (see Store.Mutate).
	generationsApplied, rebuildsDelta, rebuildsFull, persistGC *telemetry.Counter

	buildDur, loadDur, saveDur, handoffDur, swapDur *telemetry.Histogram
}

// newStoreMetrics builds the store's registry. The gauge funcs read the
// store under its own lock at snapshot time, so residency numbers are always
// current without a write on every insert/evict.
func newStoreMetrics(s *Store) *storeMetrics {
	reg := telemetry.NewRegistry()
	op := func(kind string) *telemetry.Counter {
		return reg.Counter("ftbfs_store_ops_total", `op="`+kind+`"`,
			"Store registry operations by kind.")
	}
	m := &storeMetrics{
		reg:             reg,
		hits:            op("hit"),
		misses:          op("miss"),
		loads:           op("load"),
		builds:          op("build"),
		evictions:       op("evict"),
		saves:           op("save"),
		warmLoaded:      op("warm_loaded"),
		warmSkipped:     op("warm_skipped"),
		warmQuarantined: op("warm_quarantined"),
		handoffsIn:      op("handoff_in"),
		handoffsOut:     op("handoff_out"),
		buildDur: reg.Histogram("ftbfs_store_build_seconds", "",
			"Time to build one structure batch or vertex structure."),
		loadDur: reg.Histogram("ftbfs_store_load_seconds", "",
			"Time to load and validate one persisted structure record."),
		saveDur: reg.Histogram("ftbfs_store_save_seconds", "",
			"Time of one atomic record write (temp file, fsync, rename)."),
		handoffDur: reg.Histogram("ftbfs_store_handoff_seconds", "",
			"Time to export or import one shard-handoff record."),
		generationsApplied: reg.Counter("ftbfs_store_generations_applied_total", "",
			"Mutation batches applied and atomically swapped in."),
		rebuildsDelta: reg.Counter("ftbfs_store_rebuilds_total", `kind="delta"`,
			"Structures carried across a generation by the delta fast path."),
		rebuildsFull: reg.Counter("ftbfs_store_rebuilds_total", `kind="full"`,
			"Structures rebuilt from scratch on a generation change."),
		persistGC: reg.Counter("ftbfs_store_persist_gc_total", "",
			"Superseded-generation record files deleted from the persist directory."),
		swapDur: reg.Histogram("ftbfs_store_swap_seconds", "",
			"Lock-held time of the atomic generation swap (queries block only for this)."),
	}
	reg.GaugeFunc("ftbfs_store_graphs", "", "Registered graphs.", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.graphs))
	})
	reg.GaugeFunc("ftbfs_store_structures", "", "Structures resident in memory.", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.entries))
	})
	reg.GaugeFunc("ftbfs_store_capacity", "", "Configured LRU capacity (non-positive = unlimited).", func() int64 {
		return int64(s.capacity)
	})
	return m
}
