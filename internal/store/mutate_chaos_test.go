package store_test

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"ftbfs"
	"ftbfs/internal/chaos"
	"ftbfs/internal/store"
)

// External test package: the in-package store tests cannot import
// internal/chaos (it imports store), so the disk-fault mutation coverage
// lives here.

func chaosGraph(n, extra int, seed int64) (*ftbfs.Graph, [][2]int) {
	rng := rand.New(rand.NewSource(seed))
	g := ftbfs.NewGraph(n)
	var edges [][2]int
	for i := 1; i < n; i++ {
		u := rng.Intn(i)
		g.MustAddEdge(i, u)
		edges = append(edges, [2]int{i, u})
	}
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
			edges = append(edges, [2]int{u, v})
		}
	}
	return g, edges
}

// TestMutatePersistFaultKeepsOldGeneration pins the store half of the swap
// contract under disk faults: a persist failure mid-mutation surfaces as a
// PersistError with NO swap — the old generation keeps serving, in memory
// and on disk, and no half-written next-generation files survive.
func TestMutatePersistFaultKeepsOldGeneration(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.New(chaos.Plan{Name: "mutate-disk", DiskWriteErrP: 1}, 7)
	inj.SetEnabled(false) // the initial build persists fault-free
	st, err := store.New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	st.SetIOHooks(inj.StoreHooks())

	g, edges := chaosGraph(50, 80, 9)
	lineage, err := st.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	k := store.Key{Graph: lineage, Source: 0, Eps: 0.3}
	est, err := st.GetOrBuild(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	o := est.Oracle()
	want := make([]int, g.N())
	for v := range want {
		want[v] = o.Dist(v)
	}

	inj.SetEnabled(true)
	e := edges[len(edges)-1]
	_, err = st.Mutate(context.Background(), lineage, []ftbfs.Mutation{
		{Op: ftbfs.MutDelete, U: e[0], V: e[1]},
	})
	var pe *store.PersistError
	if err == nil || !errors.As(err, &pe) {
		t.Fatalf("mutate with persist writes failing: err = %v, want a PersistError", err)
	}
	if inj.Counts()["disk-write-err"] == 0 {
		t.Fatal("the disk-fault plan never fired")
	}

	// No swap: the serving generation, its resident structure, and its
	// answers are all untouched — with the plan still armed, since reads of
	// resident state must not touch disk.
	if gg, ok := st.Graph(lineage); !ok || gg.Generation() != 0 {
		t.Fatalf("graph registration changed after failed mutate: ok=%v", ok)
	}
	est2, ok := st.Get(k)
	if !ok {
		t.Fatal("structure no longer resident after failed mutate")
	}
	o2 := est2.Oracle()
	for v := range want {
		if d := o2.Dist(v); d != want[v] {
			t.Fatalf("dist(%d) changed after failed mutate: %d != %d", v, d, want[v])
		}
	}
	// No orphaned next-generation files.
	if m, _ := filepath.Glob(filepath.Join(dir, "*-g1.fts")); len(m) != 0 {
		t.Fatalf("failed mutate left next-generation files behind: %v", m)
	}

	// A warm start from the untouched persist directory serves generation 0
	// without rebuilding.
	inj.SetEnabled(false)
	st2, err := store.New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	est3, err := st2.GetOrBuild(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Stats().Builds != 0 {
		t.Fatalf("warm start rebuilt instead of loading the persisted gen-0 record (builds=%d)", st2.Stats().Builds)
	}
	o3 := est3.Oracle()
	for v := range want {
		if d := o3.Dist(v); d != want[v] {
			t.Fatalf("warm-start dist(%d) = %d, want %d", v, d, want[v])
		}
	}

	// Faults cleared, the same batch applies and swaps.
	res, err := st.Mutate(context.Background(), lineage, []ftbfs.Mutation{
		{Op: ftbfs.MutDelete, U: e[0], V: e[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen != 1 {
		t.Fatalf("retry after faults cleared reached gen %d, want 1", res.Gen)
	}
	if gg, ok := st.Graph(lineage); !ok || gg.Generation() != 1 {
		t.Fatalf("store not serving gen 1 after successful retry")
	}
}
