package store

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"ftbfs"
	"ftbfs/internal/telemetry"
)

// MutateResult summarises one applied mutation batch: the new serving
// generation's identity plus how each resident structure crossed over.
type MutateResult struct {
	Lineage     uint64 // stable graph identity (unchanged by mutation)
	Fingerprint uint64 // content fingerprint of the new generation
	Gen         uint64 // new serving generation

	RebuildsDelta int // structures carried over by the delta fast path
	RebuildsFull  int // structures rebuilt from scratch
}

// Mutate applies a batch of edge mutations to the registered graph of the
// given lineage and atomically swaps the store to the new generation.
//
// The swap discipline is the whole point: queries never block on a rebuild
// and never observe a torn or mixed-generation view. The old generation
// keeps serving — untouched — while the new graph is derived, every resident
// structure of the lineage is rebuilt against it (through the DeltaRebuild
// fast path when the batch provably cannot have invalidated the structure,
// a full build otherwise), and the new generation's records are persisted.
// Only then does one short critical section install everything: the graph,
// its generation, and every rebuilt structure swap together, and the swap
// histogram measures exactly that lock-held window. Evicted (on-disk-only)
// structures are not rebuilt eagerly; their next query misses and builds
// against the new generation.
//
// Mutate is atomic with respect to failure: an invalid batch or a persist
// fault (including injected chaos faults) returns an error with NO swap —
// the old generation, in memory and on disk, remains the serving one.
// Superseded record files are garbage-collected after a successful swap;
// the currently-serving generation's files are never touched.
//
// Concurrent Mutate calls serialise on an internal mutex; concurrent reads
// proceed throughout.
func (s *Store) Mutate(ctx context.Context, lineage uint64, muts []ftbfs.Mutation) (MutateResult, error) {
	if len(muts) == 0 {
		return MutateResult{}, fmt.Errorf("store: empty mutation batch")
	}
	if err := ctx.Err(); err != nil {
		return MutateResult{}, err
	}
	s.mutateMu.Lock()
	defer s.mutateMu.Unlock()

	type resident struct {
		key Key
		st  *ftbfs.Structure
		vst *ftbfs.VertexStructure
	}
	s.mu.Lock()
	g, ok := s.graphs[lineage]
	if !ok {
		s.mu.Unlock()
		return MutateResult{}, fmt.Errorf("store: unknown graph %016x (register it with AddGraph or /build first)", lineage)
	}
	var snap []resident
	for k, e := range s.entries {
		if k.Graph == lineage {
			snap = append(snap, resident{key: k, st: e.st, vst: e.vst})
		}
	}
	dir := s.dir
	s.mu.Unlock()

	newG, delta, err := g.Mutate(muts)
	if err != nil {
		return MutateResult{}, err
	}
	newGen := newG.Generation()
	res := MutateResult{Lineage: lineage, Fingerprint: newG.Fingerprint(), Gen: newGen}

	// Rebuild every resident structure against the new generation, old
	// generation still serving. A structure the delta provably cannot have
	// invalidated is carried over (edge-set re-keying plus a fresh serving
	// plan); anything else — and every vertex structure — rebuilds fully.
	rebuildStart := time.Now()
	rebuilt := make([]resident, 0, len(snap))
	for _, r := range snap {
		nk := r.key
		nk.Gen = newGen
		if r.key.Model == ModelVertex {
			vst, err := ftbfs.BuildVertex(newG, r.key.Source)
			if err != nil {
				return MutateResult{}, fmt.Errorf("store: mutate %016x: vertex rebuild s%d: %w", lineage, r.key.Source, err)
			}
			vst.Plan()
			res.RebuildsFull++
			rebuilt = append(rebuilt, resident{key: nk, vst: vst})
			continue
		}
		if st, ok := ftbfs.DeltaRebuild(r.st, newG, delta); ok {
			res.RebuildsDelta++
			rebuilt = append(rebuilt, resident{key: nk, st: st})
			continue
		}
		st, err := ftbfs.Build(newG, r.key.Source, r.key.Eps, ftbfs.WithAlgorithm(r.key.Alg))
		if err != nil {
			return MutateResult{}, fmt.Errorf("store: mutate %016x: rebuild %v: %w", lineage, r.key, err)
		}
		st.Plan()
		res.RebuildsFull++
		rebuilt = append(rebuilt, resident{key: nk, st: st})
	}
	if tr := telemetry.TraceFrom(ctx); tr != nil {
		tr.Add("store.rebuild", rebuildStart)
	}

	// Persist the new generation before announcing it: structure records
	// first, the graph record last. Whatever prefix a crash leaves behind,
	// a warm start stays consistent — an old graph record ignores stray
	// new-generation structure files; a new graph record GCs the old ones.
	// A persist fault aborts with NO swap (the chaos tests rely on this);
	// already-written future-generation files are best-effort removed and
	// otherwise collected by the next successful swap or warm start.
	if dir != "" {
		var written []string
		fail := func(cause error) (MutateResult, error) {
			for _, p := range written {
				os.Remove(p)
			}
			return MutateResult{}, &PersistError{Err: cause}
		}
		for _, r := range rebuilt {
			p := s.structPath(r.key)
			save := r.st.SaveSlab
			if r.key.Model == ModelVertex {
				save = r.vst.SaveSlab
			}
			if err := s.writeAtomic(p, save); err != nil {
				return fail(fmt.Errorf("%v: %w", r.key, err))
			}
			written = append(written, p)
			s.m.saves.Inc()
		}
		if err := s.writeAtomic(s.graphPath(lineage), newG.Write); err != nil {
			return fail(fmt.Errorf("graph %016x: %w", lineage, err))
		}
	}

	// The atomic swap: one critical section installs the graph, its
	// generation, and every rebuilt structure, and drops every stale-
	// generation entry (including any a racing load inserted since the
	// snapshot). Queries block only for this — the histogram proves it.
	swapStart := time.Now()
	s.mu.Lock()
	s.graphs[lineage] = newG
	s.gens[lineage] = newGen
	for k, e := range s.entries {
		if k.Graph == lineage && k.Gen != newGen {
			s.lru.Remove(e.el)
			delete(s.entries, k)
		}
	}
	for _, r := range rebuilt {
		s.insertLocked(r.key, r.st, r.vst)
	}
	s.mu.Unlock()
	s.m.swapDur.Observe(time.Since(swapStart))
	s.m.generationsApplied.Inc()
	s.m.rebuildsDelta.Add(uint64(res.RebuildsDelta))
	s.m.rebuildsFull.Add(uint64(res.RebuildsFull))

	if dir != "" {
		s.gcSuperseded(lineage, newGen)
	}
	return res, nil
}

// gcSuperseded deletes every persisted structure record of the lineage that
// is not of the serving generation — the files the swap just obsoleted, plus
// any failed-future leftovers an aborted mutation could not remove. The
// serving generation's files (and every other lineage) are never touched.
func (s *Store) gcSuperseded(lineage, serving uint64) {
	for _, pat := range []string{"st-*.fts", "stv-*.fts"} {
		paths, _ := filepath.Glob(filepath.Join(s.dir, pat))
		for _, p := range paths {
			k, ok := keyFromStructFile(p)
			if !ok || k.Graph != lineage || k.Gen == serving {
				continue
			}
			if err := os.Remove(p); err != nil {
				log.Printf("store: gc: %s: %v", filepath.Base(p), err)
				continue
			}
			s.m.persistGC.Inc()
		}
	}
}
