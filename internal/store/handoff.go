package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ftbfs"
	"ftbfs/internal/core"
)

// This file is the store's side of shard-to-shard structure handoff: a shard
// inventories what it holds (Keys), exports any held structure as the exact
// record bytes another store can install (ExportRecord), and installs a
// shipped record without rebuilding (ImportRecord — the zero-parse
// LoadStructure/LoadVertexStructure path, the same one evictions load back
// through). The cluster router drives these through internal/server's
// /handoff surface when the ring changes.

// ErrNotHeld reports an export of a structure this store holds neither in
// memory nor on disk; the handoff surface maps it to 404 so a puller can
// tell "source never had it" from a source fault.
var ErrNotHeld = errors.New("structure not held")

// Keys inventories every structure key this store can export: resident
// entries plus persisted record files (which load back on demand). The
// result is sorted (by String) so inventories are stable across calls.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	set := make(map[Key]struct{}, len(s.entries))
	for k := range s.entries {
		set[k] = struct{}{}
	}
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		for _, pat := range []string{"st-*.fts", "stv-*.fts"} {
			paths, _ := filepath.Glob(filepath.Join(dir, pat))
			for _, p := range paths {
				if k, ok := keyFromStructFile(p); ok {
					set[k] = struct{}{}
				}
			}
		}
	}
	out := make([]Key, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Has reports whether the store holds k resident in memory or persisted on
// disk, without loading anything or touching LRU order — the receiver-side
// "skip what I already hold" check of a handoff pull.
func (s *Store) Has(k Key) bool {
	s.mu.Lock()
	k = s.normLocked(k)
	_, ok := s.entries[k]
	dir := s.dir
	s.mu.Unlock()
	if ok {
		return true
	}
	if dir == "" {
		return false
	}
	_, err := os.Stat(s.structPath(k))
	return err == nil
}

// ExportRecord returns the record bytes of a held structure, ready for a
// peer store's ImportRecord: a resident structure is encoded as a version-3
// slab record, an on-disk structure ships as its raw file bytes (loaders
// sniff binary vs text, so pre-slab files still transfer). Structures are
// immutable, so encoding outside the lock is safe. Returns ErrNotHeld
// (wrapped) when the store has nothing for k.
func (s *Store) ExportRecord(k Key) ([]byte, error) {
	exportStart := time.Now()
	s.mu.Lock()
	k = s.normLocked(k)
	e, ok := s.entries[k]
	dir := s.dir
	s.mu.Unlock()
	if ok {
		var buf bytes.Buffer
		var err error
		if k.Model == ModelVertex {
			err = e.vst.SaveSlab(&buf)
		} else {
			err = e.st.SaveSlab(&buf)
		}
		if err != nil {
			return nil, fmt.Errorf("store: export %v: %w", k, err)
		}
		s.m.handoffsOut.Inc()
		s.m.handoffDur.Observe(time.Since(exportStart))
		return buf.Bytes(), nil
	}
	if dir == "" {
		return nil, fmt.Errorf("store: %v: %w", k, ErrNotHeld)
	}
	data, err := s.readFile(s.structPath(k))
	if err != nil {
		return nil, fmt.Errorf("store: %v: %w", k, ErrNotHeld)
	}
	s.m.handoffsOut.Inc()
	s.m.handoffDur.Observe(time.Since(exportStart))
	return data, nil
}

// ImportRecord installs a record exported by another shard under key k: the
// record is fully validated against the (already registered) graph through
// the zero-parse load path, cross-checked against the key it claims to be,
// inserted resident with its query plan pre-built, and persisted verbatim
// when the store has a directory. Installing a key that is already resident
// is a no-op (installed = false). The graph must be registered first — a
// handoff pull fetches it from the source before the records.
func (s *Store) ImportRecord(k Key, data []byte) (installed bool, err error) {
	importStart := time.Now()
	s.mu.Lock()
	k = s.normLocked(k)
	_, resident := s.entries[k]
	g, haveGraph := s.graphs[k.Graph]
	dir := s.dir
	s.mu.Unlock()
	if resident {
		return false, nil
	}
	if !haveGraph {
		return false, fmt.Errorf("store: handoff of %v: unknown graph %016x (pull the graph first)", k, k.Graph)
	}
	// Cheap model peek before the full decode: a mis-addressed record fails
	// with a model mismatch, not a deep validation error.
	if m, ok := core.SlabModelOf(data); ok {
		want := core.SlabEdge
		if k.Model == ModelVertex {
			want = core.SlabVertex
		}
		if m != want {
			return false, fmt.Errorf("store: handoff of %v: record is a %d-model slab, key wants %d", k, m, want)
		}
	}
	var st *ftbfs.Structure
	var vst *ftbfs.VertexStructure
	if k.Model == ModelVertex {
		vst, err = ftbfs.LoadVertexStructure(g, bytes.NewReader(data))
		if err != nil {
			return false, fmt.Errorf("store: handoff of %v: %w", k, err)
		}
		if vst.Source() != k.Source {
			return false, fmt.Errorf("store: handoff of %v: record has source %d", k, vst.Source())
		}
		vst.Plan()
	} else {
		st, err = ftbfs.LoadStructure(g, bytes.NewReader(data))
		if err != nil {
			return false, fmt.Errorf("store: handoff of %v: %w", k, err)
		}
		if st.Source() != k.Source || st.Epsilon() != k.Eps {
			return false, fmt.Errorf("store: handoff of %v: record is (source=%d, eps=%g)", k, st.Source(), st.Epsilon())
		}
		st.Plan()
	}
	s.mu.Lock()
	if _, resident = s.entries[k]; resident {
		// Lost a race with a concurrent build/load; keep the resident one.
		s.mu.Unlock()
		return false, nil
	}
	s.insertLocked(k, st, vst)
	s.m.handoffsIn.Inc()
	s.mu.Unlock()
	if dir != "" {
		// Persist the shipped bytes verbatim — the record already validated.
		if err := s.writeAtomic(s.structPath(k), func(w io.Writer) error {
			_, werr := w.Write(data)
			return werr
		}); err != nil {
			return true, &PersistError{Err: fmt.Errorf("%v: %w", k, err)}
		}
		s.m.saves.Inc()
	}
	s.m.handoffDur.Observe(time.Since(importStart))
	return true, nil
}

// GraphText returns the canonical text encoding of a registered graph — what
// a handoff receiver registers before importing the graph's structures. The
// text preserves edge order, so the receiver computes the same fingerprint.
func (s *Store) GraphText(fp uint64) ([]byte, error) {
	g, ok := s.Graph(fp)
	if !ok {
		return nil, fmt.Errorf("store: unknown graph %016x", fp)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		return nil, fmt.Errorf("store: encode graph %016x: %w", fp, err)
	}
	return buf.Bytes(), nil
}
