package store

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ftbfs"
	"ftbfs/internal/core"
)

func testGraph(t testing.TB, n, extra int, seed int64) *ftbfs.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := ftbfs.NewGraph(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, rng.Intn(i))
	}
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

func savedBytes(t *testing.T, st *ftbfs.Structure) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGetOrBuildCachesAndCounts(t *testing.T) {
	s, err := New(8, "")
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.AddGraph(testGraph(t, 40, 60, 1))
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Graph: fp, Source: 0, Eps: 0.25}
	st1, err := s.GetOrBuild(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.GetOrBuild(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatal("second GetOrBuild did not hit the cache")
	}
	if got, ok := s.Get(k); !ok || got != st1 {
		t.Fatal("Get missed a resident structure")
	}
	stats := s.Stats()
	if stats.Builds != 1 || stats.Hits < 2 || stats.Misses != 1 || stats.Structures != 1 {
		t.Fatalf("unexpected stats %+v", stats)
	}
	if _, err := s.GetOrBuild(context.Background(), Key{Graph: fp + 1, Source: 0, Eps: 0.25}); err == nil {
		t.Fatal("unknown graph accepted")
	}
}

func TestGetOrBuildManyBatchesAndDedups(t *testing.T) {
	s, err := New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.AddGraph(testGraph(t, 40, 60, 2))
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Req{
		{Source: 0, Eps: 0.2},
		{Source: 3, Eps: 0.3},
		{Source: 0, Eps: 0.2}, // duplicate inside one batch
	}
	sts, err := s.GetOrBuildMany(context.Background(), fp, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 3 || sts[0] == nil || sts[1] == nil || sts[2] == nil {
		t.Fatalf("missing results: %v", sts)
	}
	if sts[0] != sts[2] {
		t.Fatal("duplicate request resolved to distinct structures")
	}
	if sts[0].Source() != 0 || sts[1].Source() != 3 {
		t.Fatal("results out of request order")
	}
	if got := s.Stats().Builds; got != 2 {
		t.Fatalf("built %d structures, want 2 (deduplicated)", got)
	}
}

func TestLRUEviction(t *testing.T) {
	s, err := New(2, "")
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.AddGraph(testGraph(t, 30, 40, 3))
	if err != nil {
		t.Fatal(err)
	}
	k1 := Key{Graph: fp, Source: 0, Eps: 0.2}
	k2 := Key{Graph: fp, Source: 0, Eps: 0.3}
	k3 := Key{Graph: fp, Source: 0, Eps: 0.4}
	for _, k := range []Key{k1, k2} {
		if _, err := s.GetOrBuild(context.Background(), k); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(k1); !ok { // touch k1 so k2 is the LRU victim
		t.Fatal("k1 not resident")
	}
	if _, err := s.GetOrBuild(context.Background(), k3); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("capacity 2 holds %d structures", s.Len())
	}
	if _, ok := s.Get(k2); ok {
		t.Fatal("LRU victim k2 still resident")
	}
	if _, ok := s.Get(k1); !ok {
		t.Fatal("recently-used k1 was evicted")
	}
	if got := s.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}

// TestPersistRoundTripThroughEviction is the satellite round-trip: build with
// a persist directory, evict, load back through the store, and require the
// reloaded structure's Save output to be byte-identical to the original.
func TestPersistRoundTripThroughEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := New(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.AddGraph(testGraph(t, 50, 70, 4))
	if err != nil {
		t.Fatal(err)
	}
	k1 := Key{Graph: fp, Source: 0, Eps: 0.25}
	k2 := Key{Graph: fp, Source: 5, Eps: 0.3}
	st1, err := s.GetOrBuild(context.Background(), k1)
	if err != nil {
		t.Fatal(err)
	}
	want := savedBytes(t, st1)

	// Building k2 evicts k1 (capacity 1).
	if _, err := s.GetOrBuild(context.Background(), k2); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k1); ok {
		t.Fatal("k1 survived eviction at capacity 1")
	}
	builds := s.Stats().Builds

	st1b, err := s.GetOrBuild(context.Background(), k1) // must load through from disk, not rebuild
	if err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.Builds != builds {
		t.Fatalf("evicted structure was rebuilt (builds %d → %d), not loaded", builds, stats.Builds)
	}
	if stats.Loads == 0 {
		t.Fatal("load-through not counted")
	}
	if got := savedBytes(t, st1b); !bytes.Equal(got, want) {
		t.Fatalf("reloaded Save output differs from original:\n%s\nvs\n%s", got, want)
	}
}

func TestWarmStartFromDirectory(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s1.AddGraph(testGraph(t, 40, 50, 5))
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Graph: fp, Source: 2, Eps: 0.3}
	st, err := s1.GetOrBuild(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	want := savedBytes(t, st)

	// A fresh store over the same directory knows the graph and serves the
	// structure from disk without rebuilding.
	s2, err := New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Graph(fp); !ok {
		t.Fatal("warm start did not load the graph")
	}
	st2, err := s2.GetOrBuild(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	if got := savedBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatal("warm-started structure differs from original")
	}
	stats := s2.Stats()
	if stats.Builds != 0 || stats.Loads != 1 {
		t.Fatalf("warm start rebuilt instead of loading: %+v", stats)
	}

	// The persisted file names round-trip to their keys.
	files, err := filepath.Glob(filepath.Join(dir, "st-*.fts"))
	if err != nil || len(files) != 1 {
		t.Fatalf("expected 1 structure file, got %v (%v)", files, err)
	}
	got, ok := keyFromStructFile(files[0])
	if !ok || got != k {
		t.Fatalf("keyFromStructFile(%s) = %v, %v; want %v", filepath.Base(files[0]), got, ok, k)
	}
}

func TestCorruptFileFallsBackToRebuild(t *testing.T) {
	dir := t.TempDir()
	s, err := New(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.AddGraph(testGraph(t, 30, 40, 6))
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Graph: fp, Source: 0, Eps: 0.25}
	st, err := s.GetOrBuild(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	want := savedBytes(t, st)
	path := s.structPath(k)
	if err := os.WriteFile(path, []byte("ftbfs-structure 1\ngarbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Evict, then re-request: the corrupt file must be rebuilt around.
	if _, err := s.GetOrBuild(context.Background(), Key{Graph: fp, Source: 1, Eps: 0.25}); err != nil {
		t.Fatal(err)
	}
	st2, err := s.GetOrBuild(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	if got := savedBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatal("rebuild after corrupt file differs")
	}
	// The rebuild overwrites the corrupt file with the binary slab record.
	var slab bytes.Buffer
	if err := st2.SaveSlab(&slab); err != nil {
		t.Fatal(err)
	}
	if got, err := os.ReadFile(path); err != nil || !bytes.Equal(got, slab.Bytes()) {
		t.Fatal("corrupt file was not overwritten by the rebuild")
	}
}

// TestBatchErrorDoesNotPoisonResolvedKeys: when one key of a batch fails to
// build, keys that did resolve (here: a load-through from disk) must still be
// inserted and served — not discarded with the unrelated error.
func TestBatchErrorDoesNotPoisonResolvedKeys(t *testing.T) {
	dir := t.TempDir()
	s, err := New(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.AddGraph(testGraph(t, 30, 40, 8))
	if err != nil {
		t.Fatal(err)
	}
	good := Key{Graph: fp, Source: 0, Eps: 0.25}
	if _, err := s.GetOrBuild(context.Background(), good); err != nil {
		t.Fatal(err)
	}
	// Evict `good` to disk, then request it together with an unbuildable key.
	if _, err := s.GetOrBuild(context.Background(), Key{Graph: fp, Source: 1, Eps: 0.25}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(good); ok {
		t.Fatal("good key not evicted")
	}
	_, err = s.GetOrBuildMany(context.Background(), fp, []Req{
		{Source: good.Source, Eps: good.Eps},
		{Source: 999, Eps: 0.25}, // out of range: fails validation in BuildBatch
	})
	if err == nil {
		t.Fatal("invalid source accepted")
	}
	if _, ok := s.Get(good); !ok {
		t.Fatal("loaded structure was discarded because an unrelated key failed")
	}
}

func TestWarmStartSkipsCorruptGraphFiles(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s1.AddGraph(testGraph(t, 30, 40, 9))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "graph-dead.ftg"), []byte("not a graph"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := New(0, dir)
	if err != nil {
		t.Fatalf("one corrupt file made the store unbootable: %v", err)
	}
	if _, ok := s2.Graph(fp); !ok {
		t.Fatal("healthy graph not loaded alongside the corrupt file")
	}
	if got := s2.Stats().WarmQuarantined; got != 1 {
		t.Fatalf("WarmQuarantined = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "graph-dead.ftg.corrupt")); err != nil {
		t.Fatalf("corrupt graph file not quarantined: %v", err)
	}
}

func TestConcurrentGetOrBuildSingleFlight(t *testing.T) {
	s, err := New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.AddGraph(testGraph(t, 60, 90, 7))
	if err != nil {
		t.Fatal(err)
	}
	keys := []Key{
		{Graph: fp, Source: 0, Eps: 0.2},
		{Graph: fp, Source: 0, Eps: 0.3},
		{Graph: fp, Source: 9, Eps: 0.2},
	}
	var wg sync.WaitGroup
	got := make([]*ftbfs.Structure, 24)
	for i := 0; i < 24; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := s.GetOrBuild(context.Background(), keys[i%len(keys)])
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = st
		}()
	}
	wg.Wait()
	for i := range got {
		if got[i] == nil {
			t.Fatalf("request %d resolved to nil", i)
		}
		if got[i] != got[i%len(keys)] {
			t.Fatalf("request %d: same key resolved to distinct structures", i)
		}
	}
	if builds := s.Stats().Builds; builds != uint64(len(keys)) {
		t.Fatalf("single-flight failed: %d builds for %d keys", builds, len(keys))
	}
}

func TestVertexKeyRoundTripsThroughFilename(t *testing.T) {
	k := VertexKey(0xdeadbeef01234567, 9)
	s := &Store{dir: "d"}
	got, ok := keyFromStructFile(s.structPath(k))
	if !ok || got != k {
		t.Fatalf("keyFromStructFile(%s) = %v, %v; want %v", s.structPath(k), got, ok, k)
	}
	if got.Model != ModelVertex {
		t.Fatalf("round-tripped key lost its model: %v", got)
	}
}

func TestGetOrBuildVertexCachesAndSeparatesModels(t *testing.T) {
	s, err := New(8, "")
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.AddGraph(testGraph(t, 40, 60, 1))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := s.GetOrBuildVertex(context.Background(), fp, 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.GetOrBuildVertex(context.Background(), fp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("second GetOrBuildVertex did not hit the cache")
	}
	if got, ok := s.GetVertex(fp, 0); !ok || got != v1 {
		t.Fatal("GetVertex missed a resident vertex structure")
	}
	// The edge structure of the same (graph, source) is a different entry.
	est, err := s.GetOrBuild(context.Background(), Key{Graph: fp, Source: 0, Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("edge and vertex entries collapsed: Len = %d, want 2", s.Len())
	}
	if got, ok := s.Get(Key{Graph: fp, Source: 0, Eps: 0.25}); !ok || got != est {
		t.Fatal("edge entry disturbed by the vertex entry")
	}
	// Get must not hand a vertex entry to an edge caller.
	if _, ok := s.Get(VertexKey(fp, 0)); ok {
		t.Fatal("Get answered a vertex key")
	}
	if _, err := s.GetOrBuild(context.Background(), VertexKey(fp, 0)); err == nil {
		t.Fatal("GetOrBuild accepted a vertex key")
	}
}

func TestVertexPersistRoundTripThroughEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := New(1, dir) // capacity 1: the second entry evicts the first
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.AddGraph(testGraph(t, 40, 60, 2))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := s.GetOrBuildVertex(context.Background(), fp, 0)
	if err != nil {
		t.Fatal(err)
	}
	var firstSave bytes.Buffer
	if err := v1.Save(&firstSave); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "stv-*.fts"))
	if err != nil || len(files) != 1 {
		t.Fatalf("vertex structure not persisted: %v, %v", files, err)
	}
	// Evict the vertex structure by inserting an edge structure.
	if _, err := s.GetOrBuild(context.Background(), Key{Graph: fp, Source: 0, Eps: 0.25}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetVertex(fp, 0); ok {
		t.Fatal("vertex structure survived eviction at capacity 1")
	}
	before := s.Stats().Loads
	v2, err := s.GetOrBuildVertex(context.Background(), fp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Loads != before+1 {
		t.Fatalf("evicted vertex structure rebuilt instead of loaded (loads %d -> %d)", before, s.Stats().Loads)
	}
	var secondSave bytes.Buffer
	if err := v2.Save(&secondSave); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstSave.Bytes(), secondSave.Bytes()) {
		t.Fatal("load-through vertex structure differs from the built one")
	}
}

func TestConcurrentGetOrBuildVertexSingleFlight(t *testing.T) {
	s, err := New(8, "")
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.AddGraph(testGraph(t, 60, 90, 3))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([]*ftbfs.VertexStructure, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.GetOrBuildVertex(context.Background(), fp, 5)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent GetOrBuildVertex returned distinct structures")
		}
	}
	if b := s.Stats().Builds; b != 1 {
		t.Fatalf("single-flight failed: %d builds for one key", b)
	}
}

// TestStructuresPersistAsSlabRecords pins the on-disk contract: the store
// writes version-3 binary slab records for both failure models, and an
// evicted structure loads back through the slab decoder (not the text one)
// into an answer-identical structure.
func TestStructuresPersistAsSlabRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.AddGraph(testGraph(t, 40, 60, 11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetOrBuild(context.Background(), Key{Graph: fp, Source: 0, Eps: 0.25}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetOrBuildVertex(context.Background(), fp, 0); err != nil {
		t.Fatal(err)
	}
	for _, pat := range []string{"st-*.fts", "stv-*.fts"} {
		files, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil || len(files) != 1 {
			t.Fatalf("glob %s: %v, %v", pat, files, err)
		}
		data, err := os.ReadFile(files[0])
		if err != nil {
			t.Fatal(err)
		}
		if !core.IsSlabRecord(data) {
			t.Fatalf("%s does not start with the slab magic", filepath.Base(files[0]))
		}
		if err := core.CheckSlab(data); err != nil {
			t.Fatalf("%s fails integrity check: %v", filepath.Base(files[0]), err)
		}
	}
}

// TestWarmStartCountsAndSkipsStructureFiles: the warm scan accepts intact
// record files (counted in WarmLoaded), skips corrupt or truncated ones
// (counted in WarmSkipped) without making the store unbootable, and a skipped
// file's key still resolves later by rebuild-and-overwrite.
func TestWarmStartCountsAndSkipsStructureFiles(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s1.AddGraph(testGraph(t, 40, 60, 12))
	if err != nil {
		t.Fatal(err)
	}
	good := Key{Graph: fp, Source: 0, Eps: 0.25}
	bad := Key{Graph: fp, Source: 1, Eps: 0.25}
	for _, k := range []Key{good, bad} {
		if _, err := s1.GetOrBuild(context.Background(), k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s1.GetOrBuildVertex(context.Background(), fp, 0); err != nil {
		t.Fatal(err)
	}
	// Truncate one record mid-payload: the checksum/length check must catch it.
	data, err := os.ReadFile(s1.structPath(bad))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s1.structPath(bad), data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(0, dir)
	if err != nil {
		t.Fatalf("one truncated structure file made the store unbootable: %v", err)
	}
	st := s2.Stats()
	if st.WarmLoaded != 3 { // graph + intact edge record + vertex record
		t.Fatalf("WarmLoaded = %d, want 3", st.WarmLoaded)
	}
	if st.WarmQuarantined != 1 {
		t.Fatalf("WarmQuarantined = %d, want 1", st.WarmQuarantined)
	}
	if st.WarmSkipped != 0 {
		t.Fatalf("WarmSkipped = %d, want 0", st.WarmSkipped)
	}
	// The damaged bytes are preserved next to the record, out of glob reach.
	if _, err := os.Stat(s1.structPath(bad) + ".corrupt"); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	// The quarantined key rebuilds (writing a fresh record).
	if _, err := s2.GetOrBuild(context.Background(), bad); err != nil {
		t.Fatal(err)
	}
	if err := s2.checkStructFile(s2.structPath(bad)); err != nil {
		t.Fatalf("rebuilt record still corrupt: %v", err)
	}
}
