package store

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"ftbfs"
)

// TestHandoffExportImportRoundTrip moves edge and vertex structures between
// two stores through the record path and checks the receiver answers from
// the installed copies without ever building.
func TestHandoffExportImportRoundTrip(t *testing.T) {
	src, err := New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 50, 80, 9)
	fp, err := src.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	ek := Key{Graph: fp, Source: 3, Eps: 0.25}
	if _, err := src.GetOrBuild(context.Background(), ek); err != nil {
		t.Fatal(err)
	}
	vk := VertexKey(fp, 3)
	if _, err := src.GetOrBuildVertex(context.Background(), fp, 3); err != nil {
		t.Fatal(err)
	}

	if !src.Has(ek) || !src.Has(vk) {
		t.Fatal("source does not report holding what it built")
	}
	keys := src.Keys()
	if len(keys) != 2 {
		t.Fatalf("source inventories %d keys, want 2: %v", len(keys), keys)
	}

	dst, err := New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	// Graph must be registered first; a record import without it must fail.
	rec, err := src.ExportRecord(ek)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ImportRecord(ek, rec); err == nil {
		t.Fatal("import without the graph registered succeeded")
	}
	text, err := src.GraphText(fp)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ftbfs.ReadGraph(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := dst.AddGraph(g2)
	if err != nil {
		t.Fatal(err)
	}
	if fp2 != fp {
		t.Fatalf("graph round trip changed the fingerprint: %016x != %016x", fp2, fp)
	}

	for _, k := range keys {
		rec, err := src.ExportRecord(k)
		if err != nil {
			t.Fatal(err)
		}
		installed, err := dst.ImportRecord(k, rec)
		if err != nil {
			t.Fatal(err)
		}
		if !installed {
			t.Fatalf("import of %v reported not installed", k)
		}
		// Idempotent: a second import of a resident key is a no-op.
		if again, err := dst.ImportRecord(k, rec); err != nil || again {
			t.Fatalf("re-import of %v: installed=%v err=%v", k, again, err)
		}
		if !dst.Has(k) {
			t.Fatalf("receiver does not hold %v after import", k)
		}
	}

	// Receiver answers identically to the source, with zero builds.
	est, ok := dst.Get(ek)
	if !ok {
		t.Fatal("edge structure not resident on receiver")
	}
	want, _ := src.Get(ek)
	wo, eo := want.Oracle(), est.Oracle()
	for v := 0; v < g.N(); v += 5 {
		if wo.Dist(v) != eo.Dist(v) {
			t.Fatalf("dist(%d) differs after handoff: %d != %d", v, eo.Dist(v), wo.Dist(v))
		}
	}
	vst, ok := dst.GetVertex(fp, 3)
	if !ok {
		t.Fatal("vertex structure not resident on receiver")
	}
	if vst.Source() != 3 {
		t.Fatalf("vertex structure source %d after handoff", vst.Source())
	}
	stats := dst.Stats()
	if stats.Builds != 0 {
		t.Fatalf("receiver built %d structures — handoff must not rebuild", stats.Builds)
	}
	if stats.HandoffsIn != 2 {
		t.Fatalf("receiver counted %d handoffs in, want 2", stats.HandoffsIn)
	}
	if src.Stats().HandoffsOut < 2 {
		t.Fatalf("source counted %d handoffs out, want ≥ 2", src.Stats().HandoffsOut)
	}
}

// TestHandoffRejectsMisaddressedRecords pins the cross-checks: a record
// installed under the wrong key must be rejected, not silently served.
func TestHandoffRejectsMisaddressedRecords(t *testing.T) {
	src, _ := New(0, "")
	g := testGraph(t, 30, 40, 10)
	fp, err := src.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	ek := Key{Graph: fp, Source: 1, Eps: 0.5}
	if _, err := src.GetOrBuild(context.Background(), ek); err != nil {
		t.Fatal(err)
	}
	if _, err := src.GetOrBuildVertex(context.Background(), fp, 1); err != nil {
		t.Fatal(err)
	}
	edgeRec, err := src.ExportRecord(ek)
	if err != nil {
		t.Fatal(err)
	}
	vertRec, err := src.ExportRecord(VertexKey(fp, 1))
	if err != nil {
		t.Fatal(err)
	}

	dst, _ := New(0, "")
	if _, err := dst.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		k    Key
		rec  []byte
	}{
		{"edge record under vertex key", VertexKey(fp, 1), edgeRec},
		{"vertex record under edge key", ek, vertRec},
		{"wrong source", Key{Graph: fp, Source: 2, Eps: 0.5}, edgeRec},
		{"wrong eps", Key{Graph: fp, Source: 1, Eps: 0.25}, edgeRec},
		{"truncated record", ek, edgeRec[:len(edgeRec)/2]},
	}
	for _, tc := range cases {
		if installed, err := dst.ImportRecord(tc.k, tc.rec); err == nil || installed {
			t.Fatalf("%s: installed=%v err=%v — must reject", tc.name, installed, err)
		}
	}
	if dst.Stats().HandoffsIn != 0 {
		t.Fatalf("rejected imports still counted: %d", dst.Stats().HandoffsIn)
	}
	// Exporting a key nobody holds is ErrNotHeld, distinguishable from faults.
	if _, err := src.ExportRecord(Key{Graph: fp, Source: 9, Eps: 0.1}); err == nil {
		t.Fatal("export of an unheld key succeeded")
	}
}

// TestHandoffGenerationRecords pins the live-graph interop contract: a
// generation-0 record is byte-identical to a pre-generation version-3 slab
// and round-trips through export/import unchanged, so mixed-version fleets
// can hand records both ways. A mutated lineage hands off version-4 records
// that carry their generation, and a stale-generation record is rejected
// rather than silently served against the wrong graph.
func TestHandoffGenerationRecords(t *testing.T) {
	src, err := New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 40, 60, 12)
	fp, err := src.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	ek := Key{Graph: fp, Source: 2, Eps: 0.3}
	st, err := src.GetOrBuild(context.Background(), ek)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := src.ExportRecord(ek)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec[:4]) != "FTB3" {
		t.Fatalf("generation-0 record magic %q, want the version-3 FTB3", rec[:4])
	}
	var buf bytes.Buffer
	if err := st.SaveSlab(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, buf.Bytes()) {
		t.Fatal("export rewrote the gen-0 record — v3 interop requires byte identity")
	}

	// Unchanged through a full handoff round trip.
	dst, err := New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	if installed, err := dst.ImportRecord(ek, rec); err != nil || !installed {
		t.Fatalf("gen-0 import: installed=%v err=%v", installed, err)
	}
	rec2, err := dst.ExportRecord(ek)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, rec2) {
		t.Fatal("handoff changed gen-0 record bytes")
	}

	// Mutate the source lineage: the serving record becomes version 4.
	e := st.Edges()[0]
	res, err := src.Mutate(context.Background(), fp, []ftbfs.Mutation{
		{Op: ftbfs.MutDelete, U: e[0], V: e[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen != 1 {
		t.Fatalf("mutation reached gen %d, want 1", res.Gen)
	}
	rec3, err := src.ExportRecord(ek)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec3[:4]) != "FTB4" {
		t.Fatalf("generation-1 record magic %q, want the version-4 FTB4", rec3[:4])
	}

	// A receiver registered at the mutated generation imports the v4 record;
	// the stale gen-0 record must be rejected, not served.
	text, err := src.GraphText(fp)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := ftbfs.ReadGraph(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g1.Generation() != 1 {
		t.Fatalf("graph text carried generation %d, want 1", g1.Generation())
	}
	dst2, err := New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := dst2.AddGraph(g1)
	if err != nil {
		t.Fatal(err)
	}
	if fp2 != fp {
		t.Fatalf("mutated graph registered under %016x, want lineage %016x", fp2, fp)
	}
	if installed, err := dst2.ImportRecord(ek, rec); err == nil && installed {
		t.Fatal("stale gen-0 record imported against a gen-1 registration")
	}
	if installed, err := dst2.ImportRecord(ek, rec3); err != nil || !installed {
		t.Fatalf("gen-1 import: installed=%v err=%v", installed, err)
	}
}

// TestHandoffPersistedStores exercises the disk paths: Keys/Has/Export see
// evicted (disk-only) structures, and an import persists the record so it
// survives a store restart.
func TestHandoffPersistedStores(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, err := New(0, srcDir)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 30, 40, 11)
	fp, err := src.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Graph: fp, Source: 0, Eps: 0.25}
	if _, err := src.GetOrBuild(context.Background(), k); err != nil {
		t.Fatal(err)
	}
	// Reopen the source: the structure is now disk-only until touched.
	src2, err := New(0, srcDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src2.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	if !src2.Has(k) {
		t.Fatal("reopened store does not Have its persisted structure")
	}
	found := false
	for _, kk := range src2.Keys() {
		if kk == k {
			found = true
		}
	}
	if !found {
		t.Fatalf("persisted key missing from inventory: %v", src2.Keys())
	}
	rec, err := src2.ExportRecord(k)
	if err != nil {
		t.Fatal(err)
	}

	dst, err := New(0, dstDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	if installed, err := dst.ImportRecord(k, rec); err != nil || !installed {
		t.Fatalf("import onto persisted store: installed=%v err=%v", installed, err)
	}
	// The record file landed on the receiver's disk.
	matches, _ := filepath.Glob(filepath.Join(dstDir, "st-*.fts"))
	if len(matches) != 1 {
		t.Fatalf("receiver persisted %d record files, want 1", len(matches))
	}
	if fi, err := os.Stat(matches[0]); err != nil || fi.Size() == 0 {
		t.Fatalf("persisted handoff record unreadable: %v", err)
	}
	// A reopened receiver loads the handed-off structure from disk.
	dst2, err := New(0, dstDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst2.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	st, err := dst2.GetOrBuild(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	if st.Source() != 0 || dst2.Stats().Builds != 0 {
		t.Fatalf("reopened receiver rebuilt instead of loading (builds=%d)", dst2.Stats().Builds)
	}
}
