// Package store is a thread-safe registry of built FT-BFS structures: the
// state behind the query service in internal/server. Structures are keyed by
// (graph fingerprint, source, ε, algorithm, failure model) — the Model
// dimension separates edge-failure structures from the vertex-failure
// structures served by /dist-avoiding-vertex, which share the registry, the
// LRU, the single-flight map and the persist directory (under their own
// "stv-" file prefix); the registry holds at most a
// configured number of structures in memory (LRU eviction), builds missing
// entries on demand through ftbfs.BuildBatch (one batched build per request
// burst, deduplicated per key via single-flight), and — when given a
// directory — persists every structure as a version-3 binary slab record
// (graphs keep the text format) so a restarted server warm-starts from disk
// and evicted structures load back through — a zero-parse read — instead of
// rebuilding. Loading sniffs the record header, so directories holding text
// v1/v2 records from older stores keep working. Structures leave the resolver
// with their serving QueryPlan pre-built, so the query hot path never pays
// the CSR extraction or tree preprocessing inline.
//
// Graphs are live: a registered graph is a (lineage, generation) pair, and
// the Graph dimension of every Key is the lineage — stable across mutations,
// so a graph's structures never change ring owners. Key.Gen selects a
// generation explicitly; the zero value means "the currently-serving
// generation" and is normalised on every lookup. Store.Mutate applies an
// edge-mutation batch: the old generation keeps serving, untouched, while
// every resident structure of the lineage is rebuilt against the new graph —
// through the ftbfs.DeltaRebuild fast path when the batch provably cannot
// have invalidated it, a full build otherwise — and persisted (structures
// first, graph last); one short critical section then installs graph,
// generation, and structures together. Queries never block on a rebuild and
// never observe a torn or mixed-generation view; a persist fault aborts with
// no swap, and superseded generations' record files are garbage-collected
// only after a successful swap. Generation-0 records stay byte-identical
// version-3 slabs, so mixed-version fleets hand records both ways.
package store

import (
	"bytes"
	"container/list"
	"context"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ftbfs"
	"ftbfs/internal/core"
	"ftbfs/internal/telemetry"
)

// Model selects the failure model of a structure key: which kind of single
// failure the structure tolerates. The zero value is the edge model, so
// every pre-existing Key literal keeps meaning what it always did.
type Model int

const (
	// ModelEdge keys an edge-failure (b, r) FT-BFS structure — the paper's
	// construction, parameterised by (ε, algorithm).
	ModelEdge Model = iota
	// ModelVertex keys a vertex-failure FT-BFS structure. The vertex
	// construction has no ε or algorithm dimension; vertex keys carry both
	// at their zero values (see VertexKey) so each structure has exactly
	// one key — and exactly one position on the cluster ring.
	ModelVertex
)

// String implements fmt.Stringer.
func (m Model) String() string {
	if m == ModelVertex {
		return "vertex"
	}
	return "edge"
}

// Key identifies one built structure in the registry.
type Key struct {
	Graph  uint64 // lineage of the base graph (fingerprint of its generation-0 root)
	Source int
	Eps    float64
	Alg    ftbfs.Algorithm
	Model  Model // failure model; zero value = ModelEdge
	// Gen is the graph generation the structure serves. Callers normally
	// leave it 0, meaning "the currently-serving generation" — lookups
	// normalise it against the registry — so pre-generation keys (and
	// pre-generation peers) keep working unchanged. The cluster ring hashes
	// every dimension EXCEPT Gen: all generations of one structure key live
	// on the same shards, which is what lets a mutation swap in place
	// instead of re-sharding.
	Gen uint64
}

// String implements fmt.Stringer.
func (k Key) String() string {
	gen := ""
	if k.Gen > 0 {
		gen = fmt.Sprintf("@g%d", k.Gen)
	}
	if k.Model == ModelVertex {
		return fmt.Sprintf("%016x%s/s%d/vertex", k.Graph, gen, k.Source)
	}
	return fmt.Sprintf("%016x%s/s%d/eps%g/%s", k.Graph, gen, k.Source, k.Eps, k.Alg)
}

// VertexKey returns the canonical registry key of a vertex-failure
// structure: the model dimension set, ε and algorithm zeroed. Always build
// vertex keys through this helper — a vertex key with a stray ε would name
// (and route to) a structure nobody ever builds.
func VertexKey(fp uint64, source int) Key {
	return Key{Graph: fp, Source: source, Model: ModelVertex}
}

// Req names one structure for GetOrBuildMany (the Key minus the fingerprint,
// which is shared by the batch).
type Req struct {
	Source int
	Eps    float64
	Alg    ftbfs.Algorithm
}

// Stats is a point-in-time snapshot of the registry counters.
type Stats struct {
	Graphs     int `json:"graphs"`
	Structures int `json:"structures"`
	Capacity   int `json:"capacity"`

	Hits            uint64 `json:"hits"`                   // served from memory
	Misses          uint64 `json:"misses"`                 // not in memory (led to a load or build)
	Loads           uint64 `json:"loads"`                  // satisfied from the persist directory
	Builds          uint64 `json:"builds"`                 // satisfied by BuildBatch
	Evictions       uint64 `json:"evictions"`              // structures dropped by the LRU
	Saves           uint64 `json:"saves"`                  // structures written to the directory
	WarmLoaded      uint64 `json:"warm_start_loaded"`      // files accepted at warm start
	WarmSkipped     uint64 `json:"warm_start_skipped"`     // foreign/unrenamable files skipped at warm start
	WarmQuarantined uint64 `json:"warm_start_quarantined"` // corrupt/truncated files renamed to *.corrupt
	HandoffsIn      uint64 `json:"handoffs_in"`            // structures installed from another shard's records
	HandoffsOut     uint64 `json:"handoffs_out"`           // structure records exported to other shards

	// Live-graph convergence ledger: how many mutation batches this store
	// has applied and how each resident structure crossed a generation.
	GenerationsApplied uint64 `json:"generations_applied"` // mutation batches swapped in
	RebuildsDelta      uint64 `json:"rebuilds_delta"`      // structures carried over by delta rebuild
	RebuildsFull       uint64 `json:"rebuilds_full"`       // structures rebuilt from scratch on a mutation
	PersistGC          uint64 `json:"persist_gc"`          // superseded-generation record files deleted
}

// IOHooks intercepts the store's disk I/O. Production stores leave it unset;
// the chaos harness installs hooks that inject write/fsync errors and
// corrupted or truncated reads, so differential tests can prove the store
// degrades (PersistError, rebuild fallback, quarantine) instead of serving
// wrong answers. Every hook may be nil.
type IOHooks struct {
	// BeforeWrite runs before a record write begins; an error aborts the
	// write and surfaces as a PersistError.
	BeforeWrite func(path string) error
	// BeforeSync runs before the post-write fsync; an error surfaces like a
	// failed fsync (the record is not considered durable).
	BeforeSync func(path string) error
	// AfterRead filters every whole-file read: it may rewrite data (corrupt,
	// truncate) or replace err to simulate unreadable files.
	AfterRead func(path string, data []byte, err error) ([]byte, error)
}

// PersistPrefix starts every PersistError message. Like the server's
// UnknownGraphPrefix it is a wire contract: per-slot batch errors travel as
// strings, and the cluster router matches this prefix to recognise a node
// fault worth retrying on another replica.
const PersistPrefix = "store: persist: "

// PersistError marks a failure of the persist directory (unwritable file,
// full disk) as a server-side fault, distinguishing it from client-caused
// errors like an unknown graph or invalid build parameters.
type PersistError struct{ Err error }

func (e *PersistError) Error() string { return PersistPrefix + e.Err.Error() }
func (e *PersistError) Unwrap() error { return e.Err }

type entry struct {
	key Key
	st  *ftbfs.Structure       // resident edge structure (ModelEdge keys)
	vst *ftbfs.VertexStructure // resident vertex structure (ModelVertex keys)
	el  *list.Element          // position in Store.lru; value is *entry
}

// flight is an in-progress load-or-build shared by concurrent requesters.
// Exactly one of st/vst is set on success, matching the key's model.
type flight struct {
	done chan struct{}
	st   *ftbfs.Structure
	vst  *ftbfs.VertexStructure
	err  error
}

// Store is the registry. The zero value is not usable; call New.
type Store struct {
	mu       sync.Mutex
	capacity int                     // max in-memory structures; ≤ 0 means unlimited
	dir      string                  // persist directory; "" means memory-only
	graphs   map[uint64]*ftbfs.Graph // keyed by lineage; holds the serving generation
	gens     map[uint64]uint64       // lineage → currently-serving generation
	entries  map[Key]*entry
	lru      *list.List // front = most recently used
	inflight map[Key]*flight
	m        *storeMetrics           // registry-backed counters and timings
	hooks    atomic.Pointer[IOHooks] // fault-injection hooks; nil in production

	// mutateMu serialises Mutate calls. Rebuilding happens outside s.mu —
	// queries keep serving the old generation throughout — but two
	// overlapping mutations of different lineages still rebuild one at a
	// time, which keeps generation numbering and persist-dir GC simple.
	mutateMu sync.Mutex
}

// SetIOHooks installs (or, with nil, removes) disk fault-injection hooks.
// Safe to call concurrently with serving, though tests typically install
// hooks right after New.
func (s *Store) SetIOHooks(h *IOHooks) { s.hooks.Store(h) }

// readFile is the store's single whole-file read path, filtered through the
// AfterRead hook so injected corruption hits every disk read the same way.
func (s *Store) readFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if h := s.hooks.Load(); h != nil && h.AfterRead != nil {
		return h.AfterRead(path, data, err)
	}
	return data, err
}

// New returns a registry holding at most capacity structures in memory
// (≤ 0 means unlimited). A non-empty dir enables persistence: the directory
// is created if needed, every graph and structure ever registered is saved
// there, and existing contents are loaded back (graphs eagerly; structures
// lazily, through the LRU, so a huge directory does not blow the memory cap).
func New(capacity int, dir string) (*Store, error) {
	s := &Store{
		capacity: capacity,
		dir:      dir,
		graphs:   make(map[uint64]*ftbfs.Graph),
		gens:     make(map[uint64]uint64),
		entries:  make(map[Key]*entry),
		lru:      list.New(),
		inflight: make(map[Key]*flight),
	}
	s.m = newStoreMetrics(s)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := s.warmStart(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// warmStart loads every graph file in the persist directory and
// integrity-checks every structure record file. A corrupt or truncated file
// (a crash mid-write on a pre-atomic-rename store, say) cannot make the
// whole store unbootable: it is quarantined — renamed to <name>.corrupt,
// counted in Stats.WarmQuarantined and logged — so the damage is preserved
// for inspection but never rescanned or served. Files the store cannot even
// claim (foreign names) or cannot rename are merely skipped and counted in
// Stats.WarmSkipped. Structure contents still load lazily: the warm scan
// verifies record integrity (binary checksum, text header) without retaining
// anything, keys become loadable through GetOrBuild, and the structures
// themselves stay on disk until requested.
func (s *Store) warmStart() error {
	paths, err := filepath.Glob(filepath.Join(s.dir, "graph-*.ftg"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, p := range paths {
		data, err := s.readFile(p)
		if err != nil {
			s.quarantine(p, err)
			continue
		}
		g, err := ftbfs.ReadGraph(bytes.NewReader(data))
		if err != nil {
			s.quarantine(p, err)
			continue
		}
		g.Freeze()
		// The text record carries the graph's identity header, so a mutated
		// graph warm-starts at the generation it was persisted at.
		s.graphs[g.Lineage()] = g
		s.gens[g.Lineage()] = g.Generation()
		s.m.warmLoaded.Inc()
	}
	for _, pat := range []string{"st-*.fts", "stv-*.fts"} {
		paths, err := filepath.Glob(filepath.Join(s.dir, pat))
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		for _, p := range paths {
			k, ok := keyFromStructFile(p)
			if !ok {
				// Not a file this store wrote; leave it alone.
				s.warmSkip(p, fmt.Errorf("unrecognised structure file name"))
				continue
			}
			if gen, known := s.gens[k.Graph]; known && k.Gen != gen {
				// A superseded (or failed-future) generation of a graph we
				// serve: garbage a crash kept the swap-time GC from
				// collecting. It is not corrupt — just never loadable again —
				// so it is GC'd, not quarantined.
				if err := os.Remove(p); err != nil {
					s.warmSkip(p, fmt.Errorf("stale generation %d (serving %d): %v", k.Gen, gen, err))
					continue
				}
				s.m.persistGC.Inc()
				log.Printf("store: warm start: gc %s: generation %d superseded by %d", filepath.Base(p), k.Gen, gen)
				continue
			}
			if err := s.checkStructFile(p); err != nil {
				s.quarantine(p, err)
				continue
			}
			s.m.warmLoaded.Inc()
		}
	}
	return nil
}

// warmSkip counts and logs one file the warm scan could not accept.
func (s *Store) warmSkip(path string, err error) {
	s.m.warmSkipped.Inc()
	log.Printf("store: warm start: skipping %s: %v", filepath.Base(path), err)
}

// quarantine moves a corrupt or truncated record file out of the load path
// by renaming it to <name>.corrupt: the globs never match it again, a later
// build of the same key writes a fresh file, and the damaged bytes stay
// available for forensics. A file that cannot even be renamed falls back to
// a plain skip.
func (s *Store) quarantine(path string, cause error) {
	if err := os.Rename(path, path+".corrupt"); err != nil {
		s.warmSkip(path, cause)
		return
	}
	s.m.warmQuarantined.Inc()
	log.Printf("store: warm start: quarantined %s -> %s.corrupt: %v", filepath.Base(path), filepath.Base(path), cause)
}

// textRecordPrefix starts every text structure record (versions 1 and 2).
const textRecordPrefix = "ftbfs-structure "

// checkStructFile verifies a structure record file is intact without
// decoding it against a graph: binary records are checksum-verified, text
// records are sniffed by header. Deep (graph-dependent) validation still
// happens at load-through; a file failing there falls back to a rebuild.
func (s *Store) checkStructFile(path string) error {
	data, err := s.readFile(path)
	if err != nil {
		return err
	}
	if core.IsSlabRecord(data) {
		return core.CheckSlab(data)
	}
	if !strings.HasPrefix(string(data[:min(len(data), len(textRecordPrefix))]), textRecordPrefix) {
		return fmt.Errorf("unrecognised record header")
	}
	return nil
}

// graphPath returns the persist path of a graph file.
func (s *Store) graphPath(fp uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("graph-%016x.ftg", fp))
}

// structPath returns the persist path of a structure file. ε is encoded as
// its IEEE-754 bit pattern so every distinct key maps to a distinct file.
// Vertex structures live under their own "stv-" prefix — the failure model
// is a filename dimension exactly like it is a Key dimension, so an edge
// and a vertex structure of the same (graph, source) never collide. A live
// generation adds a "-g<gen>" suffix; generation 0 keeps the historical
// name, so pre-generation directories stay valid without renames.
func (s *Store) structPath(k Key) string {
	gen := ""
	if k.Gen > 0 {
		gen = fmt.Sprintf("-g%d", k.Gen)
	}
	if k.Model == ModelVertex {
		return filepath.Join(s.dir, fmt.Sprintf("stv-%016x-s%d%s.fts", k.Graph, k.Source, gen))
	}
	return filepath.Join(s.dir, fmt.Sprintf("st-%016x-s%d-e%016x-a%d%s.fts",
		k.Graph, k.Source, math.Float64bits(k.Eps), int(k.Alg), gen))
}

// keyFromStructFile parses a structure file name produced by the store back
// into its Key; ok is false for foreign names. The filename format is an
// on-disk contract: structPath must stay its inverse.
func keyFromStructFile(name string) (Key, bool) {
	name = strings.TrimSuffix(filepath.Base(name), ".fts")
	parts := strings.Split(name, "-")
	// An optional trailing "g<gen>" part names a live generation; its absence
	// means generation 0 (the historical file name).
	var gen uint64
	if last := parts[len(parts)-1]; len(parts) > 1 && strings.HasPrefix(last, "g") {
		gv, err := strconv.ParseUint(last[1:], 10, 64)
		if err != nil || gv == 0 {
			return Key{}, false
		}
		gen = gv
		parts = parts[:len(parts)-1]
	}
	if len(parts) == 3 && parts[0] == "stv" && strings.HasPrefix(parts[2], "s") {
		fp, err1 := strconv.ParseUint(parts[1], 16, 64)
		src, err2 := strconv.Atoi(parts[2][1:])
		if err1 != nil || err2 != nil {
			return Key{}, false
		}
		k := VertexKey(fp, src)
		k.Gen = gen
		return k, true
	}
	if len(parts) != 5 || parts[0] != "st" ||
		!strings.HasPrefix(parts[2], "s") || !strings.HasPrefix(parts[3], "e") || !strings.HasPrefix(parts[4], "a") {
		return Key{}, false
	}
	fp, err1 := strconv.ParseUint(parts[1], 16, 64)
	src, err2 := strconv.Atoi(parts[2][1:])
	bits, err3 := strconv.ParseUint(parts[3][1:], 16, 64)
	alg, err4 := strconv.Atoi(parts[4][1:])
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		return Key{}, false
	}
	return Key{Graph: fp, Source: src, Eps: math.Float64frombits(bits), Alg: ftbfs.Algorithm(alg), Gen: gen}, true
}

// AddGraph registers (and freezes) a graph, persisting it when the store has
// a directory, and returns its lineage — which, for the generation-0 graphs
// this path registers, is exactly the fingerprint it always returned.
// Re-adding a known lineage is a no-op returning the existing registration
// (whatever generation it has mutated to since).
func (s *Store) AddGraph(g *ftbfs.Graph) (uint64, error) {
	g.Freeze()
	fp := g.Lineage()
	s.mu.Lock()
	if _, ok := s.graphs[fp]; ok {
		s.mu.Unlock()
		return fp, nil
	}
	s.graphs[fp] = g
	s.gens[fp] = g.Generation()
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		if err := s.writeAtomic(s.graphPath(fp), g.Write); err != nil {
			return fp, &PersistError{Err: fmt.Errorf("graph %016x: %w", fp, err)}
		}
	}
	return fp, nil
}

// Graph returns the currently-serving generation of the registered graph
// with the given lineage.
func (s *Store) Graph(fp uint64) (*ftbfs.Graph, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.graphs[fp]
	return g, ok
}

// normLocked resolves a caller key against the serving state: a zero Gen
// means "whatever generation is serving now". Keys naming an explicit
// generation pass through untouched. s.mu must be held.
func (s *Store) normLocked(k Key) Key {
	if k.Gen == 0 {
		k.Gen = s.gens[k.Graph]
	}
	return k
}

// Graphs returns the fingerprints of every registered graph.
func (s *Store) Graphs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.graphs))
	for fp := range s.graphs {
		out = append(out, fp)
	}
	return out
}

// Get returns the edge structure for k if it is resident in memory,
// touching its LRU position. It never loads or builds; use GetOrBuild for
// read-through. Vertex keys miss here by definition — use GetVertex.
func (s *Store) Get(k Key) (*ftbfs.Structure, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[s.normLocked(k)]
	if !ok || e.st == nil {
		s.m.misses.Inc()
		return nil, false
	}
	s.m.hits.Inc()
	s.lru.MoveToFront(e.el)
	return e.st, true
}

// GetVertex returns the vertex structure of (fp, source) if it is resident
// in memory, touching its LRU position. It never loads or builds; use
// GetOrBuildVertex for read-through.
func (s *Store) GetVertex(fp uint64, source int) (*ftbfs.VertexStructure, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[s.normLocked(VertexKey(fp, source))]
	if !ok || e.vst == nil {
		s.m.misses.Inc()
		return nil, false
	}
	s.m.hits.Inc()
	s.lru.MoveToFront(e.el)
	return e.vst, true
}

// Len returns the number of structures resident in memory.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a snapshot of the registry counters. The numbers come from
// the same telemetry series /metrics exposes; this merely reshapes them into
// the legacy /stats JSON contract.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	graphs, structures, capacity := len(s.graphs), len(s.entries), s.capacity
	s.mu.Unlock()
	m := s.m
	return Stats{
		Graphs:          graphs,
		Structures:      structures,
		Capacity:        capacity,
		Hits:            m.hits.Value(),
		Misses:          m.misses.Value(),
		Loads:           m.loads.Value(),
		Builds:          m.builds.Value(),
		Evictions:       m.evictions.Value(),
		Saves:           m.saves.Value(),
		WarmLoaded:      m.warmLoaded.Value(),
		WarmSkipped:     m.warmSkipped.Value(),
		WarmQuarantined: m.warmQuarantined.Value(),
		HandoffsIn:      m.handoffsIn.Value(),
		HandoffsOut:     m.handoffsOut.Value(),

		GenerationsApplied: m.generationsApplied.Value(),
		RebuildsDelta:      m.rebuildsDelta.Value(),
		RebuildsFull:       m.rebuildsFull.Value(),
		PersistGC:          m.persistGC.Value(),
	}
}

// Telemetry returns the store's metric registry. Serving layers merge its
// snapshot into their own at exposition time, so store series appear on the
// shard's /metrics without the store knowing about HTTP.
func (s *Store) Telemetry() *telemetry.Registry { return s.m.reg }

// GetOrBuild returns the structure for k, loading it from the persist
// directory or building it through BuildBatch on a miss. Concurrent calls
// for the same key share one load/build. A resident structure is returned
// on an allocation-free fast path — the steady state of a serving hot loop.
// ctx bounds the miss path only: an already-expired deadline budget fails
// fast instead of starting a load or build the caller will never see.
func (s *Store) GetOrBuild(ctx context.Context, k Key) (*ftbfs.Structure, error) {
	if k.Model != ModelEdge {
		return nil, fmt.Errorf("store: %v is not an edge-structure key (use GetOrBuildVertex)", k)
	}
	s.mu.Lock()
	if e, ok := s.entries[s.normLocked(k)]; ok {
		s.m.hits.Inc()
		s.lru.MoveToFront(e.el)
		s.mu.Unlock()
		return e.st, nil
	}
	s.mu.Unlock()
	sts, err := s.GetOrBuildMany(ctx, k.Graph, []Req{{Source: k.Source, Eps: k.Eps, Alg: k.Alg}})
	if err != nil {
		return nil, err
	}
	return sts[0], nil
}

// GetOrBuildMany resolves a batch of requests against one registered graph.
// Cached structures are served from memory; the remaining misses are first
// tried against the persist directory and whatever is still missing is built
// in a single ftbfs.BuildBatch call, so requests sharing a source share the
// BFS tree, the replacement-path preprocessing and the reinforcement sweep.
// Results are returned in request order.
//
// ctx carries the caller's deadline budget. It is checked before any work
// starts and again while waiting on another call's in-flight build; a build
// this call owns always runs to completion (other waiters may depend on it,
// and the result is cached for the retry), so expiry mid-build costs at most
// one build beyond the budget — never a wrong or partial answer.
func (s *Store) GetOrBuildMany(ctx context.Context, fp uint64, reqs []Req) ([]*ftbfs.Structure, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, r := range reqs {
		// NaN never compares equal, so a NaN-eps Key would be inserted into
		// the inflight map and never found again (nil-deref on the
		// re-lookup, plus a permanent map leak). Inf is equally meaningless.
		if math.IsNaN(r.Eps) || math.IsInf(r.Eps, 0) {
			return nil, fmt.Errorf("store: eps must be finite, got %v", r.Eps)
		}
	}
	s.mu.Lock()
	g, ok := s.graphs[fp]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: unknown graph %016x (register it with AddGraph or /build first)", fp)
	}
	gen := s.gens[fp] // resolve the batch against one serving generation
	out := make([]*ftbfs.Structure, len(reqs))
	var mine []Key // keys this call is responsible for resolving
	mineIdx := make(map[Key][]int)
	var waits []*flight // flights owned by other calls
	waitIdx := make(map[*flight][]int)
	for i, r := range reqs {
		k := Key{Graph: fp, Source: r.Source, Eps: r.Eps, Alg: r.Alg, Gen: gen}
		if e, ok := s.entries[k]; ok {
			s.m.hits.Inc()
			s.lru.MoveToFront(e.el)
			out[i] = e.st
			continue
		}
		s.m.misses.Inc()
		if fl, ok := s.inflight[k]; ok {
			// In-progress elsewhere — or a duplicate key earlier in this
			// very batch, whose flight we just registered; either way the
			// flight is closed before the wait loop runs, so no deadlock.
			if _, seen := waitIdx[fl]; !seen {
				waits = append(waits, fl)
			}
			waitIdx[fl] = append(waitIdx[fl], i)
			continue
		}
		fl := &flight{done: make(chan struct{})}
		s.inflight[k] = fl
		mine = append(mine, k)
		mineIdx[k] = []int{i}
	}
	s.mu.Unlock()

	var firstErr error
	if len(mine) > 0 {
		resolveStart := time.Now()
		resolved, err := s.resolve(g, mine)
		if tr := telemetry.TraceFrom(ctx); tr != nil {
			tr.Add("store.resolve", resolveStart)
		}
		if err != nil {
			firstErr = err
		}
		s.mu.Lock()
		for _, k := range mine {
			fl := s.inflight[k]
			delete(s.inflight, k)
			// A key that did resolve succeeds even when another key of the
			// batch failed: its waiters must not inherit an unrelated error,
			// and the loaded/built structure must not be thrown away.
			if st := resolved[k]; st != nil {
				fl.st = st
				s.insertLocked(k, st, nil)
				for _, i := range mineIdx[k] {
					out[i] = st
				}
			} else if err != nil {
				fl.err = err
			} else {
				fl.err = fmt.Errorf("store: %v: not resolved", k)
			}
			close(fl.done)
		}
		s.mu.Unlock()
	}
	for _, fl := range waits {
		select {
		case <-fl.done:
		case <-ctx.Done():
			// The flight's owner still finishes and caches the result; this
			// caller's budget is spent, so it stops waiting.
			if firstErr == nil {
				firstErr = ctx.Err()
			}
			continue
		}
		if fl.err != nil {
			if firstErr == nil {
				firstErr = fl.err
			}
			continue
		}
		for _, i := range waitIdx[fl] {
			out[i] = fl.st
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// GetOrBuildVertex returns the vertex-failure structure of (fp, source),
// loading it from the persist directory or building it through
// ftbfs.BuildVertex on a miss. Concurrent calls for the same key share one
// load/build via the same single-flight map the edge path uses (the Key's
// Model dimension keeps the two namespaces apart), a built structure is
// persisted next to the edge files under its own "stv-" prefix, and — like
// every structure entering the registry — it is handed out with its query
// plan pre-built. A resident structure is returned on an allocation-free
// fast path. ctx follows the same budget rules as GetOrBuildMany.
func (s *Store) GetOrBuildVertex(ctx context.Context, fp uint64, source int) (*ftbfs.VertexStructure, error) {
	s.mu.Lock()
	k := s.normLocked(VertexKey(fp, source))
	if e, ok := s.entries[k]; ok {
		s.m.hits.Inc()
		s.lru.MoveToFront(e.el)
		s.mu.Unlock()
		return e.vst, nil
	}
	s.m.misses.Inc()
	g, ok := s.graphs[fp]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: unknown graph %016x (register it with AddGraph or /build first)", fp)
	}
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if fl, ok := s.inflight[k]; ok {
		s.mu.Unlock()
		select {
		case <-fl.done:
			return fl.vst, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	s.inflight[k] = fl
	s.mu.Unlock()

	resolveStart := time.Now()
	vst, err := s.resolveVertex(g, k, source)
	if tr := telemetry.TraceFrom(ctx); tr != nil {
		tr.Add("store.resolve", resolveStart)
	}
	s.mu.Lock()
	delete(s.inflight, k)
	if vst != nil {
		fl.vst = vst
		s.insertLocked(k, nil, vst)
	} else {
		fl.err = err
	}
	s.mu.Unlock()
	close(fl.done)
	if vst != nil {
		// A persist fault (err != nil with a built structure) is surfaced to
		// this caller only; waiters got the structure they asked for.
		return vst, err
	}
	return nil, err
}

// resolveVertex loads or builds one vertex structure, pre-building its
// query plan; a build is persisted when the store has a directory, with
// disk faults reported as PersistError alongside the usable structure.
func (s *Store) resolveVertex(g *ftbfs.Graph, k Key, source int) (*ftbfs.VertexStructure, error) {
	s.mu.Lock()
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		loadStart := time.Now()
		if data, err := s.readFile(s.structPath(k)); err == nil {
			vst, lerr := ftbfs.LoadVertexStructure(g, bytes.NewReader(data))
			if lerr == nil && vst.Source() == source {
				s.m.loads.Inc()
				s.m.loadDur.Observe(time.Since(loadStart))
				vst.Plan()
				return vst, nil
			}
			// Unreadable or mismatched file: fall through to a rebuild that
			// overwrites it.
		}
	}
	buildStart := time.Now()
	vst, err := ftbfs.BuildVertex(g, source)
	if err != nil {
		return nil, fmt.Errorf("store: vertex build: %w", err)
	}
	s.m.builds.Inc()
	s.m.buildDur.Observe(time.Since(buildStart))
	vst.Plan()
	if dir != "" {
		if err := s.writeAtomic(s.structPath(k), vst.SaveSlab); err != nil {
			return vst, &PersistError{Err: fmt.Errorf("%v: %w", k, err)}
		}
		s.m.saves.Inc()
	}
	return vst, nil
}

// resolve loads or builds the structures for keys (all on graph g), returning
// them keyed. Load failures fall through to a rebuild; the rebuilt structure
// overwrites the unreadable file. Every structure entering the registry is
// handed out with its query plan already built (Structure.Plan), so the
// first failure query a freshly built or loaded structure serves never pays
// the plan extraction inline.
func (s *Store) resolve(g *ftbfs.Graph, keys []Key) (resolved map[Key]*ftbfs.Structure, err error) {
	defer func() {
		for _, st := range resolved {
			st.Plan()
		}
	}()
	resolved = make(map[Key]*ftbfs.Structure, len(keys))
	var toBuild []Key
	for _, k := range keys {
		if st := s.loadFromDir(k, g); st != nil {
			resolved[k] = st
			continue
		}
		toBuild = append(toBuild, k)
	}
	if len(toBuild) == 0 {
		return resolved, nil
	}
	breqs := make([]ftbfs.BatchRequest, len(toBuild))
	for i, k := range toBuild {
		breqs[i] = ftbfs.BatchRequest{
			Source:  k.Source,
			Eps:     k.Eps,
			Options: []ftbfs.BuildOption{ftbfs.WithAlgorithm(k.Alg)},
		}
	}
	buildStart := time.Now()
	sts, err := ftbfs.BuildBatch(g, breqs)
	if err != nil {
		return resolved, fmt.Errorf("store: build: %w", err)
	}
	s.m.builds.Add(uint64(len(toBuild)))
	s.m.buildDur.Observe(time.Since(buildStart))
	s.mu.Lock()
	dir := s.dir
	s.mu.Unlock()
	var persistErr error
	for i, k := range toBuild {
		resolved[k] = sts[i]
		if dir != "" {
			if err := s.writeAtomic(s.structPath(k), sts[i].SaveSlab); err != nil {
				// The builds succeeded — keep serving every one of them from
				// memory, keep persisting the rest, and surface the first
				// disk fault to the caller.
				if persistErr == nil {
					persistErr = &PersistError{Err: fmt.Errorf("%v: %w", k, err)}
				}
				continue
			}
			s.m.saves.Inc()
		}
	}
	return resolved, persistErr
}

// loadFromDir loads the persisted structure for k, or nil when the store is
// memory-only, the file is absent, or it fails to decode (the caller then
// rebuilds and overwrites it).
func (s *Store) loadFromDir(k Key, g *ftbfs.Graph) *ftbfs.Structure {
	s.mu.Lock()
	dir := s.dir
	s.mu.Unlock()
	if dir == "" {
		return nil
	}
	loadStart := time.Now()
	data, err := s.readFile(s.structPath(k))
	if err != nil {
		return nil
	}
	st, err := ftbfs.LoadStructure(g, bytes.NewReader(data))
	if err != nil || st.Source() != k.Source || st.Epsilon() != k.Eps {
		return nil
	}
	s.m.loads.Inc()
	s.m.loadDur.Observe(time.Since(loadStart))
	return st
}

// insertLocked adds a resolved structure (edge or vertex, matching the
// key's model) and evicts down to capacity. s.mu must be held.
func (s *Store) insertLocked(k Key, st *ftbfs.Structure, vst *ftbfs.VertexStructure) {
	if gen, ok := s.gens[k.Graph]; ok && k.Gen != gen {
		// A load/build that resolved against a generation a concurrent
		// Mutate swapped out while it ran: nothing will ever look this key
		// up again, so inserting it would only waste an LRU slot.
		return
	}
	if e, ok := s.entries[k]; ok { // lost a race; keep the resident one
		s.lru.MoveToFront(e.el)
		return
	}
	e := &entry{key: k, st: st, vst: vst}
	e.el = s.lru.PushFront(e)
	s.entries[k] = e
	for s.capacity > 0 && len(s.entries) > s.capacity {
		back := s.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, victim.key)
		s.m.evictions.Inc()
	}
}

// writeAtomic writes via a temp file + fsync + rename + directory fsync, so
// readers never observe a partial structure or graph file — and a crash right
// after the call cannot leave a renamed-but-unsynced (empty or truncated)
// record behind. The warm scan would survive such a file anyway, but a synced
// rename means a completed save is durable, not merely atomic. Injected
// faults (IOHooks) abort before the write or before the fsync, so a faulted
// save never renames a partial record into place.
func (s *Store) writeAtomic(path string, write func(io.Writer) error) error {
	saveStart := time.Now()
	h := s.hooks.Load()
	if h != nil && h.BeforeWrite != nil {
		if err := h.BeforeWrite(path); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if h != nil && h.BeforeSync != nil {
		if err := h.BeforeSync(path); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return err
	}
	s.m.saveDur.Observe(time.Since(saveStart))
	return nil
}
