package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ftbfs"
	"ftbfs/internal/chaos"
	"ftbfs/internal/server"
)

// The live-graph suite: a sustained mutation stream through the router's
// /mutate while queries hammer the same lineage. The swap contract under
// test: a query may be answered by any generation that was serving at some
// instant of the query's lifetime — and by nothing else. A torn plan, a
// mixed-generation view, or a half-applied batch would produce an answer
// matching NO generation, which the per-generation oracle window catches.

// mutateProbe is one replayed query: an intact distance when isFail is
// false, a failure query on fail otherwise. Probed edges are never mutated,
// so they exist in every generation; whether they are failable (present in
// H, not reinforced) can still change when a full rebuild reshapes H.
type mutateProbe struct {
	v      int
	fail   [2]int
	isFail bool
}

// genAnswers is one generation's ground truth for the probe set, computed by
// the driver from its local mirror before that generation can exist anywhere
// in the cluster. valid[j] is false when generation g rejects probe j (its
// edge became reinforced after a full rebuild) — the server answering 4xx is
// then as correct as a neighbouring generation answering a distance.
type genAnswers struct {
	dist  []int
	valid []bool
}

func snapshotAnswers(st *ftbfs.Structure, probes []mutateProbe) genAnswers {
	o := st.Oracle()
	a := genAnswers{dist: make([]int, len(probes)), valid: make([]bool, len(probes))}
	for j, p := range probes {
		if !p.isFail {
			a.dist[j], a.valid[j] = o.Dist(p.v), true
			continue
		}
		d, err := o.DistAvoiding(p.v, p.fail[0], p.fail[1])
		if err == nil {
			a.dist[j], a.valid[j] = d, true
		}
	}
	return a
}

// windowOK reports whether one observed answer is explained by at least one
// generation in [lo, hi].
func windowOK(answers []genAnswers, lo, hi, j int, got200 bool, dist int) bool {
	for g := lo; g <= hi && g < len(answers); g++ {
		a := answers[g]
		if a.dist == nil {
			continue
		}
		if got200 {
			if a.valid[j] && a.dist[j] == dist {
				return true
			}
		} else if !a.valid[j] {
			return true
		}
	}
	return false
}

func canonPair(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// mutateVia posts one mutation batch through the router without testing.TB
// plumbing, so driver goroutines can report errors instead of t.Fatal-ing.
func mutateVia(client *http.Client, url, lineage string, muts []server.MutationJSON) (int, server.MutateResponse, string, error) {
	raw, err := json.Marshal(server.MutateRequest{Graph: lineage, Mutations: muts})
	if err != nil {
		return 0, server.MutateResponse{}, "", err
	}
	resp, err := client.Post(url+"/mutate", "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, server.MutateResponse{}, "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, server.MutateResponse{}, "", err
	}
	var mr server.MutateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &mr); err != nil {
			return 0, server.MutateResponse{}, "", fmt.Errorf("bad /mutate body %q: %w", buf.String(), err)
		}
	}
	return resp.StatusCode, mr, buf.String(), nil
}

// TestRouterMutateDifferentialSwapAtomicity is the live-graph acceptance
// gate (run under -race in CI): a 4-shard / R=2 cluster absorbs a sustained
// mutation stream — delta-eligible deletes interleaved with rebuild-forcing
// inserts — while point and batch queries run concurrently over both
// transports (the wire fast path for the first half, HTTP fallback after the
// wire listeners die mid-stream). Every answer must match some generation
// that was serving during the query; zero wrong answers tolerated.
func TestRouterMutateDifferentialSwapAtomicity(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	g, edges := clusterGraph(60, 90, 61)
	var text bytes.Buffer
	if err := g.Write(&text); err != nil {
		t.Fatal(err)
	}
	var br server.BuildResponse
	code, body := postJSON(t, lc.URL()+"/build", server.BuildRequest{
		Graph: text.String(), Sources: []int{0}, Eps: []float64{0.3},
	}, &br)
	if code != http.StatusOK {
		t.Fatalf("/build: %d %s", code, body)
	}
	lineage := br.Fingerprint

	// The local mirror evolves exactly as each shard's store does: same
	// graph, same mutation batches, same delta-carry-or-full-rebuild
	// decision — so mirror answers are bit-equal to shard answers per
	// generation, and the differential is exact.
	refG := g
	refSt, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}

	// Probes: intact distances across the vertex range plus failure queries
	// on gen-0 failable edges. Probed edges are excluded from mutation.
	n := g.N()
	var probes []mutateProbe
	for v := 0; v < n; v += 4 {
		probes = append(probes, mutateProbe{v: v})
	}
	protected := make(map[[2]int]bool)
	for i, e := range edges {
		if refSt.IsReinforced(e[0], e[1]) || i%3 != 0 {
			continue
		}
		probes = append(probes, mutateProbe{v: (i * 13) % n, fail: e, isFail: true})
		protected[canonPair(e[0], e[1])] = true
	}
	var failProbes []int
	for j, p := range probes {
		if p.isFail {
			failProbes = append(failProbes, j)
		}
	}
	if len(failProbes) < 8 {
		t.Fatalf("only %d failure probes — graph fixture too reinforced", len(failProbes))
	}

	const batches = 12
	answers := make([]genAnswers, batches+1)
	answers[0] = snapshotAnswers(refSt, probes)
	var genStarted, genDone atomic.Int64

	// Driver: apply batches 1..batches through the router, publishing each
	// generation's ground truth before the cluster can serve it.
	present := make(map[[2]int]bool, len(edges))
	all := append([][2]int(nil), edges...)
	for _, e := range edges {
		present[canonPair(e[0], e[1])] = true
	}
	rng := rand.New(rand.NewSource(62))
	driverErr := make(chan error, 1)
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		client := &http.Client{Timeout: 30 * time.Second}
		abort := func(err error) {
			select {
			case driverErr <- err:
			default:
			}
		}
		for i := 1; i <= batches; i++ {
			var muts []ftbfs.Mutation
			var jmuts []server.MutationJSON
			if i%3 == 0 {
				// Insert a fresh edge: forces a full rebuild everywhere.
				for {
					u, v := rng.Intn(n), rng.Intn(n)
					if u == v || present[canonPair(u, v)] {
						continue
					}
					present[canonPair(u, v)] = true
					all = append(all, [2]int{u, v})
					muts = []ftbfs.Mutation{{Op: ftbfs.MutInsert, U: u, V: v}}
					jmuts = []server.MutationJSON{{Op: "insert", U: u, V: v}}
					break
				}
			} else {
				// Delete a present non-H, non-probed edge: provably cannot
				// invalidate the structure, so the delta path must carry it.
				found := false
				for _, e := range all {
					cp := canonPair(e[0], e[1])
					if !present[cp] || protected[cp] || refSt.Contains(e[0], e[1]) {
						continue
					}
					present[cp] = false
					muts = []ftbfs.Mutation{{Op: ftbfs.MutDelete, U: e[0], V: e[1]}}
					jmuts = []server.MutationJSON{{Op: "delete", U: e[0], V: e[1]}}
					found = true
					break
				}
				if !found {
					abort(fmt.Errorf("batch %d: no deletable non-H edge left", i))
					return
				}
			}
			newG, delta, err := refG.Mutate(muts)
			if err != nil {
				abort(fmt.Errorf("batch %d: local mutate: %w", i, err))
				return
			}
			wantDelta := false
			if st, ok := ftbfs.DeltaRebuild(refSt, newG, delta); ok {
				refSt, wantDelta = st, true
			} else if refSt, err = ftbfs.Build(newG, 0, 0.3); err != nil {
				abort(fmt.Errorf("batch %d: local rebuild: %w", i, err))
				return
			}
			refG = newG
			answers[i] = snapshotAnswers(refSt, probes)
			genStarted.Store(int64(i))

			code, resp, body, err := mutateVia(client, lc.URL(), lineage, jmuts)
			if err != nil {
				abort(fmt.Errorf("batch %d: %w", i, err))
				return
			}
			if code != http.StatusOK {
				abort(fmt.Errorf("batch %d: /mutate: %d %s", i, code, body))
				return
			}
			if resp.Gen != uint64(i) || resp.Fingerprint != fmt.Sprintf("%016x", refG.Fingerprint()) {
				abort(fmt.Errorf("batch %d: cluster reached gen %d fp %s, mirror says gen %d fp %016x",
					i, resp.Gen, resp.Fingerprint, i, refG.Fingerprint()))
				return
			}
			if wantDelta && resp.RebuildsDelta == 0 {
				abort(fmt.Errorf("batch %d: delete of a non-H edge did not ride the delta path: %+v", i, resp))
				return
			}
			if !wantDelta && resp.RebuildsFull == 0 {
				abort(fmt.Errorf("batch %d: insert did not force a full rebuild: %+v", i, resp))
				return
			}
			genDone.Store(int64(i))

			if i == batches/2 {
				// Second half of the stream — mutations and queries alike —
				// runs on the HTTP fallback path.
				for _, sh := range lc.Shards {
					sh.stopWire()
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Query workers: every answer must be explained by a generation inside
	// the query's [genDone-at-start, genStarted-at-end] window.
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			client := &http.Client{Timeout: 30 * time.Second}
			eps := 0.3
			done, tail := false, 8
			for iter := 0; !done || tail > 0; iter++ {
				select {
				case <-stop:
					done = true
				default:
				}
				if done {
					tail--
				}
				if iter%6 == 5 {
					// A batch query: four failure slots, one shared window.
					var req server.BatchQueryRequest
					req.Graph = lineage
					req.Eps = &eps
					var slots []int
					src := 0
					for s := 0; s < 4; s++ {
						j := failProbes[rng.Intn(len(failProbes))]
						slots = append(slots, j)
						p := probes[j]
						req.Queries = append(req.Queries, server.BatchQuery{Source: &src, V: p.v, Fail: p.fail})
					}
					lo := int(genDone.Load())
					var resp server.BatchQueryResponse
					code, body := postJSON(t, lc.URL()+"/batch-query", req, &resp)
					hi := int(genStarted.Load())
					if code != http.StatusOK {
						t.Errorf("batch query: %d %s", code, body)
						return
					}
					for s, j := range slots {
						bad := resp.Errors != nil && resp.Errors[s] != ""
						dist := 0
						if !bad {
							dist = resp.Dists[s]
						}
						if !windowOK(answers, lo, hi, j, !bad, dist) {
							t.Errorf("batch slot probe %+v: answer %d (err=%v) matches no generation in [%d,%d]",
								probes[j], dist, bad, lo, hi)
							return
						}
					}
					continue
				}
				j := rng.Intn(len(probes))
				p := probes[j]
				var url string
				if p.isFail {
					url = fmt.Sprintf("%s/dist-avoiding?graph=%s&source=0&eps=0.3&v=%d&fu=%d&fv=%d",
						lc.URL(), lineage, p.v, p.fail[0], p.fail[1])
				} else {
					url = fmt.Sprintf("%s/dist?graph=%s&source=0&eps=0.3&v=%d", lc.URL(), lineage, p.v)
				}
				lo := int(genDone.Load())
				resp, err := client.Get(url)
				if err != nil {
					t.Errorf("probe %+v: %v", p, err)
					return
				}
				var dr struct {
					Dist int `json:"dist"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				hi := int(genStarted.Load())
				got200 := resp.StatusCode == http.StatusOK
				if got200 && decErr != nil {
					t.Errorf("probe %+v: undecodable 200: %v", p, decErr)
					return
				}
				if !windowOK(answers, lo, hi, j, got200, dr.Dist) {
					t.Errorf("probe %+v: answer %d (status %d) matches no generation in [%d,%d]",
						p, dr.Dist, resp.StatusCode, lo, hi)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-driverErr:
		t.Fatal(err)
	default:
	}

	// Convergence: every shard holding the lineage settled on the final
	// generation and fingerprint.
	lin, err := strconv.ParseUint(lineage, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	holders := 0
	for _, sh := range lc.Shards {
		gg, ok := sh.Store.Graph(lin)
		if !ok {
			continue
		}
		holders++
		if gg.Generation() != batches || gg.Fingerprint() != refG.Fingerprint() {
			t.Errorf("shard %s settled at gen %d fp %016x, want gen %d fp %016x",
				sh.ID, gg.Generation(), gg.Fingerprint(), batches, refG.Fingerprint())
		}
	}
	if holders != 2 {
		t.Errorf("lineage registered on %d shards, want 2 (R=2)", holders)
	}

	// The convergence ledger recorded the stream: fan-outs, per-shard swaps,
	// both rebuild kinds, and both transports.
	var rs RouterStatsResponse
	if code, body := getJSON(t, lc.URL()+"/stats", &rs); code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	if rs.Mutations != batches {
		t.Errorf("router executed %d mutation fan-outs, want %d", rs.Mutations, batches)
	}
	if rs.MutationShards != 2*batches {
		t.Errorf("ledger counted %d shard swaps, want %d (R=2 × %d batches)", rs.MutationShards, 2*batches, batches)
	}
	if rs.MutationRebuildsDelta == 0 {
		t.Error("the delta fast path never engaged across the whole stream")
	}
	if rs.MutationRebuildsFull == 0 {
		t.Error("no full rebuild across a stream with inserts")
	}
	if rs.WireMutations == 0 {
		t.Error("no mutation rode the wire fast path in the first half")
	}
	if rs.WireFallbacks == 0 {
		t.Error("no HTTP fallback after the wire listeners died")
	}
}

// TestRouterMutateSingleFlightNoDoubleApply races identical mutation
// requests: the flight must apply the batch once — a retry racing its slow
// original must never advance the lineage twice (the second apply would
// delete an already-absent edge). Whatever the interleaving, the lineage
// ends at generation 1, and a follow-up batch lands at exactly 2.
func TestRouterMutateSingleFlightNoDoubleApply(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	g, edges := clusterGraph(80, 140, 63)
	var text bytes.Buffer
	if err := g.Write(&text); err != nil {
		t.Fatal(err)
	}
	var br server.BuildResponse
	code, body := postJSON(t, lc.URL()+"/build", server.BuildRequest{
		Graph: text.String(), Sources: []int{0}, Eps: []float64{0.3},
	}, &br)
	if code != http.StatusOK {
		t.Fatalf("/build: %d %s", code, body)
	}
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var targets [][2]int
	for _, e := range edges {
		if !st.Contains(e[0], e[1]) {
			targets = append(targets, e)
		}
	}
	if len(targets) < 2 {
		t.Fatalf("fixture has %d non-H edges, need 2", len(targets))
	}

	const clients = 8
	jmuts := []server.MutationJSON{{Op: "delete", U: targets[0][0], V: targets[0][1]}}
	codes := make([]int, clients)
	resps := make([]server.MutateResponse, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			client := &http.Client{Timeout: 30 * time.Second}
			code, resp, _, err := mutateVia(client, lc.URL(), br.Fingerprint, jmuts)
			if err != nil {
				t.Error(err)
				return
			}
			codes[c], resps[c] = code, resp
		}()
	}
	close(start)
	wg.Wait()

	applied := 0
	for c := 0; c < clients; c++ {
		switch codes[c] {
		case http.StatusOK:
			applied++
			if resps[c].Gen != 1 {
				t.Errorf("client %d saw gen %d from a single logical batch", c, resps[c].Gen)
			}
		case http.StatusBadRequest:
			// A straggler that missed the flight re-applied the delete and
			// was deterministically rejected — the batch still applied once.
		default:
			t.Errorf("client %d: unexpected status %d", c, codes[c])
		}
	}
	if applied == 0 {
		t.Fatal("no client observed the applied batch")
	}

	// The follow-up batch proves the serving generation is exactly 1.
	client := &http.Client{Timeout: 30 * time.Second}
	code, resp, body, err := mutateVia(client, lc.URL(), br.Fingerprint,
		[]server.MutationJSON{{Op: "delete", U: targets[1][0], V: targets[1][1]}})
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || resp.Gen != 2 {
		t.Fatalf("follow-up batch: %d %s (gen %d), want 200 at gen 2", code, body, resp.Gen)
	}

	var rs RouterStatsResponse
	if code, body := getJSON(t, lc.URL()+"/stats", &rs); code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	if rs.Mutations+rs.MutationsCoalesced != clients+1 {
		t.Fatalf("flight accounting: %d executed + %d coalesced != %d requests",
			rs.Mutations, rs.MutationsCoalesced, clients+1)
	}
}

// TestRouterMutateDiskFaultKeepsOldGenerationServing is the chaos variant:
// with every persist write failing, /mutate must fail without swapping —
// and the old generation keeps answering exactly, fault plan still armed.
func TestRouterMutateDiskFaultKeepsOldGenerationServing(t *testing.T) {
	inj := chaos.New(chaos.Plan{Name: "mutate-disk", DiskWriteErrP: 1}, 5)
	inj.SetEnabled(false) // boot and fixtures run fault-free
	lc, err := StartLocal(3, LocalOptions{
		Replicas:    2,
		PersistRoot: t.TempDir(),
		Chaos:       inj,
		Router:      RouterOptions{BuildTimeout: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	fixtures := buildFixtures(t, lc.URL(), []int64{71}, []int{0}, 0.3)
	fx := fixtures[0]
	sample := func(label string) {
		t.Helper()
		for i := 0; i < len(fx.edges); i += 3 {
			checkPoint(t, lc.URL(), fx, (i*17)%fx.n, fx.edges[i])
		}
	}
	sample("pre-fault")

	defer inj.SetEnabled(false)
	inj.SetEnabled(true)
	client := &http.Client{Timeout: 30 * time.Second}
	e := fx.edges[0]
	jmuts := []server.MutationJSON{{Op: "delete", U: e[0], V: e[1]}}
	code, _, body, err := mutateVia(client, lc.URL(), fx.fp, jmuts)
	if err != nil {
		t.Fatal(err)
	}
	if code < http.StatusInternalServerError {
		t.Fatalf("/mutate with persist writes failing: %d %s, want 5xx and no swap", code, body)
	}
	if inj.Counts()["disk-write-err"] == 0 {
		t.Fatal("the disk-fault plan never fired — the mutation failed for some other reason")
	}

	// Old generation keeps serving, fault plan still armed: resident
	// structures answer without touching disk.
	sample("mid-fault")
	lin, err := strconv.ParseUint(fx.fp, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range lc.Shards {
		if gg, ok := sh.Store.Graph(lin); ok && gg.Generation() != 0 {
			t.Errorf("shard %s swapped to gen %d despite the persist fault", sh.ID, gg.Generation())
		}
	}

	// Faults cleared, the same batch applies cleanly.
	inj.SetEnabled(false)
	code, resp, body, err := mutateVia(client, lc.URL(), fx.fp, jmuts)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || resp.Gen != 1 {
		t.Fatalf("retry after faults cleared: %d %s (gen %d), want 200 at gen 1", code, body, resp.Gen)
	}
}
