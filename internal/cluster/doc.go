// Package cluster shards the FT-BFS serving plane across many shard nodes:
// a consistent-hash ring over the structure keyspace, replicated shard
// ownership, membership with health probes, and a router that proxies the
// full query surface (/build, /dist, /dist-avoiding, /batch-query, /stats)
// to the owning shards — hedged reads across replicas for point queries,
// scatter-gather with per-shard sub-batching for multi-structure
// /batch-query vectors, and single-flight build fan-out so one logical
// /build lands on every replica exactly once.
//
// Routing hashes exactly what the store keys: (graph fingerprint, source,
// ε, algorithm, failure model) — vertex-failure queries land on the same
// ring as edge queries, just under their own keys, so hedged point reads
// and scatter-gather sub-batching apply to both failure models unchanged.
// The ring depends only on the sorted member IDs, never on
// addresses or health, so every router with the same member set computes
// the same owners (deterministic rebalance on join/leave); health state
// only reorders which replica is tried first.
//
// # Elastic membership: structures move when the ring does
//
// Membership changes move bytes, not just ranges. The router drives the
// rebalance through the shards' /handoff surface (internal/server), which
// streams version-3 slab records (internal/core) shard-to-shard — over the
// source's persistent binary-protocol connections when it advertises them,
// HTTP otherwise — and installs them on the receiver through the store's
// zero-parse LoadStructure/LoadVertexStructure path. A moved structure is
// never rebuilt.
//
// The handoff protocol is receiver-driven: GET /handoff/keys inventories a
// shard, GET /handoff/record and /handoff/graph export raw bytes (wire
// frames THandoff/TGraph carry the same payloads), and POST /handoff/pull
// tells a shard to fetch a key list from a named source and install it.
// Pulls are idempotent — a receiver skips keys it already holds — so a
// re-driven rebalance converges instead of re-copying.
//
// The rebalance lifecycle around a join (Router.AddShard) is
// transfer-before-flip:
//
//  1. Compute the ring delta: build the prospective ring (current IDs plus
//     the joiner) and, for every key any current shard holds, diff the
//     before/after replica sets (DeltaOwners). On a join, only the joiner
//     gains keys — consistent hashing's minimal-disruption property,
//     verified exhaustively in ring_test.go.
//  2. Drive pull-based transfer: the new shard pulls exactly its gained
//     keys from a current healthy holder, grouped by source shard.
//  3. Only then flip routing by joining the member to the membership: the
//     first routed query lands on a shard that already holds the
//     structure. Load-through remains the fallback for anything a transfer
//     missed — never the plan — and the router's /stats expose
//     structures_transferred / bytes_moved / ranges_pending so a soak can
//     assert the transfer actually ran rather than load-through masking a
//     broken handoff.
//
// A leave (Router.DrainShard) runs the mirror image: inventory the leaver,
// compute which members gain each of its keys once it departs, drive pulls
// on those successors (sourced from the leaver — it is still serving), and
// remove it from the membership last. A rejoin (same ID, new address)
// moves nothing, by construction of the ring.
//
// # Live graphs: mutation fan-out and generation convergence
//
// POST /mutate applies an edge-mutation batch to a lineage fleet-wide. The
// router cannot enumerate which shards hold state for a lineage (per-source
// structure keys hash to different owners), so the batch fans to every
// member — TMutate frames on the wire fast path, HTTP /mutate as the
// per-request fallback — and shards without the graph answer 404, which is
// tolerated as long as at least one shard applied. Each applying shard
// derives the new generation deterministically from the same base graph and
// batch, so all replies must agree on (generation, fingerprint); a diverging
// shard fails the fan-out with 502 rather than letting replicas silently
// serve different graphs.
//
// Identical concurrent requests coalesce into one single-flight fan-out
// (keyed by lineage + batch), so a client retry racing its slow original
// never double-applies; like /build, the fan-out detaches from its
// requester's cancellation and runs to a BuildTimeout-bounded end, because a
// partially-applied batch leaves the lineage split across generations. A
// shard that fails the batch while others applied it surfaces as a gateway
// error naming how many applied — queries stay safe either way, since every
// shard serves whichever generation it holds atomically. /stats carries the
// convergence ledger (mutations, mutation_shards, mutation_rebuilds_delta /
// _full, wire_mutations); the mutation differential soak asserts the delta
// path engages and that every answer under churn matches some generation
// serving during that query's lifetime.
//
// # R+k hot-key promotion
//
// The router tracks per-key hit counts on the point-query path. PromoteHot
// promotes keys whose count passes a threshold to R+k replication: the k
// extra owners — the next distinct members on the key's ring walk past the
// base replica set — pull the structure ahead of time, and from then on
// ownersFor returns the widened set, so hedged reads and batch slots for a
// hot key spread over R+k replicas instead of R. Promotion survives
// membership changes (the widened walk is re-evaluated against the current
// ring on every lookup) and demotion is simply dropping the entry.
//
// # Deadline budgets, retries, and circuit breakers
//
// Every query carries a deadline budget. It enters as the wire frame's
// budget field or the X-Ftbfs-Budget-Ms header (RouterOptions.DefaultBudget
// applies when the client sends none) and becomes the request context's
// deadline; as the router forwards or retries, the REMAINING budget is what
// propagates, so a retry never restarts the clock. The invariant the chaos
// suite enforces is that no request outlives its budget — a fault may cost
// an answer (an error inside the budget), never an open-ended wait.
//
// Failed attempts retry on the next replica with jittered exponential
// backoff (RouterOptions.RetryBackoff/MaxRetryBackoff; a negative base
// disables the delay), bounded by the replica list and the budget rather
// than a count knob.
//
// Each member carries a circuit breaker with the classic three states.
// BreakerThreshold consecutive request failures trip it closed→open; while
// open, hedged and retried attempts skip the member (stats: breaker_skips),
// except that a key whose every owner is open still forces one attempt on
// the primary (breaker_forced) — an answer beats a guaranteed refusal. Open
// transitions to half-open either when BreakerCooldown elapses or when a
// background /readyz probe succeeds (probe-driven recovery); half-open
// admits exactly one trial request, whose success closes the breaker and
// whose failure re-opens it. A membership rejoin (same ID through Join)
// resets the breaker — a rejoining shard is a fresh start. Per-member state
// and trip counts are exposed in /stats (breaker, breaker_opens).
//
// # Load shedding
//
// Shards bound their own work: query-serving endpoints (/build, /dist,
// /dist-avoiding, /dist-avoiding-vertex, /batch-query — health, stats, and
// handoff surfaces are exempt) pass through a limiter with a bounded
// in-flight slot pool and a bounded wait queue (Server.SetWorkLimits). A
// full queue sheds immediately with 503 + Retry-After (in-protocol 503 on
// the wire path; a shed wire batch fails every slot), a draining shard
// refuses new work without queueing, and a request whose budget expires
// while queued answers 504 rather than occupying a freed slot. The router
// treats a shed like any replica failure: retry elsewhere within budget.
//
// # Telemetry and fleet aggregation
//
// The router instruments itself on an internal/telemetry registry: a
// per-route outcome-labeled latency histogram for its HTTP surface,
// per-replica forward latency split by transport
// (ftbfs_router_replica_seconds), and counters for every routing decision —
// hedges, failovers, breaker skips and forced attempts, wire fallbacks,
// rebalance transfers, hot promotions. /stats keeps its JSON shape but now
// reads the same registry values, so the two surfaces cannot drift.
// Exposition is /metrics (Prometheus text) and /metrics.json (the raw
// snapshot).
//
// /metrics/fleet is the aggregation point. The router scrapes each
// member's /metrics.json concurrently (bounded by a short per-scrape
// timeout; ftbfs_fleet_scraped_shards and ftbfs_fleet_scrape_errors report
// coverage), then merges the snapshots with telemetry.Merge: counters and
// gauges sum, and histograms — fixed 256 log-spaced buckets shared by every
// node — add bucket-by-bucket. Because merging is exact (no rebucketing,
// no quantile sketches), a fleet quantile computed from the merged
// histogram equals the quantile of the concatenated per-shard samples at
// bucket resolution, and merge order cannot matter. The merged families
// keep their per-shard label sets, so a fleet scrape still breaks down by
// route, frame type, and outcome.
//
// Request tracing rides the same paths the queries do: the router samples
// every Nth point query (RouterOptions.TraceSample) or honors a
// caller-supplied X-Ftbfs-Trace header, stamps its own spans, and forwards
// the trace ID — as a header over HTTP, as the frame's trace field over the
// wire. Shards answer with their spans in the X-Ftbfs-Spans header, which
// the router folds into its record under a "shard-id:" prefix; wire-traced
// requests land in the shard's own ring instead, since response frames
// carry no span field. Both routers and shards retain a bounded ring of
// recent traces at /debug/traces.
//
// # Chaos testing
//
// internal/chaos provides the deterministic fault injector these policies
// are gated against: a named catalog of fault plans (latency, drops,
// resets, stalls, corrupt, disk, mixed — chaos.PlanNames) wrapping the
// shards' listeners and store disk I/O via LocalOptions.Chaos. The
// differential suite (chaos_test.go) runs mixed edge/vertex traffic under
// every plan and asserts zero wrong answers, no budget overruns, and — in
// breaker_test.go — the full open→half-open→closed lifecycle.
package cluster
