package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ftbfs"
	"ftbfs/internal/core"
	"ftbfs/internal/server"
	"ftbfs/internal/store"
	"ftbfs/internal/telemetry"
	"ftbfs/internal/wire"
)

// DefaultHedgeDelay is how long a point query waits on the primary replica
// before hedging the same request to the next one. Loopback and same-rack
// replicas answer in well under a millisecond, so a few milliseconds only
// fires on a genuinely slow or dead primary.
const DefaultHedgeDelay = 3 * time.Millisecond

// DefaultBuildTimeout bounds one /build fan-out. Builds on graphs near
// MaxBuildN legitimately run for minutes, so this is far above the query
// client's timeout.
const DefaultBuildTimeout = 15 * time.Minute

// DefaultRetryBackoff is the base delay before a failover retry; attempt n
// waits roughly base·2^(n−1) with ±50% jitter.
const DefaultRetryBackoff = 5 * time.Millisecond

// DefaultMaxRetryBackoff caps the exponential growth of retry backoff.
const DefaultMaxRetryBackoff = 100 * time.Millisecond

// RouterOptions tunes a Router.
type RouterOptions struct {
	// HedgeDelay before a point query is hedged to the next replica;
	// DefaultHedgeDelay when 0, negative disables hedging (failover on
	// error still happens).
	HedgeDelay time.Duration
	// Client used for query and stats shard requests; a default with sane
	// timeouts when nil. /build fan-outs use a dedicated timeout-free
	// client bounded by BuildTimeout instead — a big build must not be
	// killed by the query timeout.
	Client *http.Client
	// BuildTimeout bounds one /build fan-out (DefaultBuildTimeout when 0).
	BuildTimeout time.Duration
	// ID reported by /healthz and /stats.
	ID string
	// DisableWire turns off the binary-protocol fast path: every shard
	// request goes over HTTP/JSON even when a shard advertises a wire
	// address. The zero value leaves the fast path enabled — a shard that
	// does not advertise one is routed over HTTP either way.
	DisableWire bool
	// DefaultBudget is the deadline budget applied to query requests that
	// arrive without an X-Ftbfs-Budget-Ms header; 0 leaves them bounded only
	// by the HTTP client timeout. The remaining budget re-propagates to every
	// shard attempt (HTTP header, wire frame field), so no attempt outlives
	// the request that asked for it.
	DefaultBudget time.Duration
	// RetryBackoff is the base delay between failover retries: attempt n
	// waits roughly base·2^(n−1) with ±50% jitter, capped at MaxRetryBackoff
	// and at the request's remaining budget. DefaultRetryBackoff when 0;
	// negative disables backoff (retries fire immediately, as they did
	// before backoff existed — tests use this for speed).
	RetryBackoff time.Duration
	// MaxRetryBackoff caps the exponential growth (DefaultMaxRetryBackoff
	// when 0).
	MaxRetryBackoff time.Duration
	// BreakerThreshold is how many consecutive request failures trip a
	// replica's circuit breaker open (DefaultBreakerThreshold when 0).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before arming a
	// half-open probe (DefaultBreakerCooldown when 0).
	BreakerCooldown time.Duration
	// TraceSample traces every Nth point query end to end: the router opens
	// a trace, the shard attempt carries it (HTTP header), the shard's spans
	// fold back into the router's record, and the finished trace lands in
	// the ring behind /debug/traces. 0 disables sampling; requests arriving
	// with an X-Ftbfs-Trace header are traced regardless.
	TraceSample int
}

// Router fronts a shard cluster with the same HTTP surface a single shard
// serves, so clients cannot tell one node from forty. Point queries go to
// the key's replica set with hedged reads; /batch-query vectors scatter as
// one sub-batch per shard and gather per-query results with failover;
// /build fans out to every owning replica exactly once (single-flight).
type Router struct {
	m     *Membership
	mux   *http.ServeMux
	opts  RouterOptions
	start time.Time

	// buildClient has no client-level timeout: /build fan-outs are bounded
	// by the BuildTimeout context, not by the query client's deadline.
	buildClient *http.Client

	buildFlight  flightGroup
	mutateFlight flightGroup

	// rm holds every routing counter and histogram (metrics.go); /stats and
	// /metrics read the same registry-backed series.
	rm       *routerMetrics
	traces   *telemetry.TraceRing
	pointSeq atomic.Uint64 // point queries seen, drives TraceSample
	draining atomic.Bool

	// hotMu guards the point-path hit counts and the promoted set behind
	// R+k replication (rebalance.go). The map is size-capped: tracking is a
	// sampling heuristic, not an exact census.
	hotMu    sync.Mutex
	hotHits  map[store.Key]uint64
	promoted map[store.Key]int
}

// NewRouter returns a router over the given membership.
func NewRouter(m *Membership, opts RouterOptions) *Router {
	if opts.HedgeDelay == 0 {
		opts.HedgeDelay = DefaultHedgeDelay
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.BuildTimeout == 0 {
		opts.BuildTimeout = DefaultBuildTimeout
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = DefaultRetryBackoff
	}
	if opts.MaxRetryBackoff == 0 {
		opts.MaxRetryBackoff = DefaultMaxRetryBackoff
	}
	m.SetBreakerConfig(opts.BreakerThreshold, opts.BreakerCooldown)
	rt := &Router{
		m:           m,
		mux:         http.NewServeMux(),
		opts:        opts,
		start:       time.Now(),
		buildClient: &http.Client{Transport: opts.Client.Transport},
		hotHits:     make(map[store.Key]uint64),
		promoted:    make(map[store.Key]int),
	}
	routes := []struct {
		path    string
		handler http.HandlerFunc
	}{
		{"/build", rt.handleBuild},
		{"/mutate", rt.handleMutate},
		{"/dist", rt.handlePoint},
		{"/dist-avoiding", rt.handlePoint},
		// The vertex failure model rides the same point machinery: the request
		// resolves to its vertex-model registry key (KeyForEndpoint — the
		// endpoint, not a request field, picks the failure model), lands on that
		// key's replica set, and gets the same hedged reads + failover.
		{"/dist-avoiding-vertex", rt.handlePoint},
		{"/batch-query", rt.handleBatchQuery},
		{"/stats", rt.handleStats},
		{"/healthz", rt.handleHealthz},
		{"/readyz", rt.handleReadyz},
		{"/metrics", rt.handleMetrics},
		{"/metrics/fleet", rt.handleMetricsFleet},
	}
	paths := make([]string, 0, len(routes)+1)
	for _, route := range routes {
		rt.mux.HandleFunc(route.path, route.handler)
		paths = append(paths, route.path)
	}
	rt.traces = telemetry.NewTraceRing(256, 0)
	rt.mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		rt.traces.ServeHTTP(w, r)
	})
	rt.rm = newRouterMetrics(m, append(paths, "/debug/traces"))
	return rt
}

// Membership exposes the router's shard set (join/leave, probing).
func (rt *Router) Membership() *Membership { return rt.m }

// SetDraining flips the router's /readyz gate; server.Serve calls it on
// graceful shutdown.
func (rt *Router) SetDraining(v bool) { rt.draining.Store(v) }

// pointPath reports whether the route is a point query — the only routes
// TraceSample samples (they are the latency-sensitive plane worth tracing).
func pointPath(path string) bool {
	switch path {
	case "/dist", "/dist-avoiding", "/dist-avoiding-vertex":
		return true
	}
	return false
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.rm.requests.Inc()
	start := time.Now()
	if r.Body != nil {
		// Same bound as the shards: the two tiers must agree on what is an
		// acceptable body.
		r.Body = http.MaxBytesReader(w, r.Body, server.MaxBodyBytes)
	}
	// Deadline budget: an explicit X-Ftbfs-Budget-Ms header wins, else the
	// router's configured default. The budget becomes the request context's
	// deadline; every shard attempt below re-propagates what remains of it,
	// so no attempt (or backoff sleep) outlives the caller's patience.
	// /build is exempt by construction — its fan-out detaches via
	// WithoutCancel and is bounded by BuildTimeout instead.
	budget := rt.opts.DefaultBudget
	if h := r.Header.Get(server.BudgetHeader); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			budget = time.Duration(ms) * time.Millisecond
		}
	}
	if budget > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		r = r.WithContext(ctx)
	}
	// Tracing: a caller-supplied X-Ftbfs-Trace header always traces; else
	// TraceSample traces every Nth point query. The trace rides the request
	// context so every shard attempt propagates the ID, and the shard's
	// spans fold back in via the response span header (forwardClient).
	var tr *telemetry.Trace
	if id, ok := telemetry.ParseTraceID(r.Header.Get(telemetry.TraceHeader)); ok {
		tr = telemetry.NewTrace(id)
	} else if n := rt.opts.TraceSample; n > 0 && pointPath(r.URL.Path) && rt.pointSeq.Add(1)%uint64(n) == 0 {
		tr = telemetry.NewTrace(0)
	}
	if tr == nil {
		sw := clusterStatusWriter{ResponseWriter: w}
		rt.mux.ServeHTTP(&sw, r)
		rt.rm.observeHTTP(r.URL.Path, start, sw.status)
		return
	}
	r = r.WithContext(telemetry.WithTrace(r.Context(), tr))
	bw := &clusterBufferedWriter{clusterStatusWriter: clusterStatusWriter{ResponseWriter: w}}
	rt.mux.ServeHTTP(bw, r)
	tr.Add("router.handle", start)
	bw.Header().Set(telemetry.SpanHeader, tr.SpansJSON())
	bw.flush()
	rt.traces.Record(tr, r.URL.Path, time.Since(start))
	rt.rm.observeHTTP(r.URL.Path, start, bw.status)
}

// backoffDelay returns the jittered exponential delay before retry `attempt`
// (1-based): base·2^(attempt−1), capped, then jittered to 50–100% so
// replicas retrying in lockstep spread out.
func (rt *Router) backoffDelay(attempt int) time.Duration {
	base, ceil := rt.opts.RetryBackoff, rt.opts.MaxRetryBackoff
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// sleepBackoff waits the retry delay, bounded by the request's remaining
// budget. Returns false when the budget expired — the caller must stop
// retrying rather than fire an attempt the client has already given up on.
func (rt *Router) sleepBackoff(ctx context.Context, attempt int) bool {
	d := rt.backoffDelay(attempt)
	if d <= 0 {
		return ctx.Err() == nil
	}
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return false
		}
		if d > rem {
			d = rem
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// retryableStatus reports whether a shard's HTTP status may legitimately
// differ on another replica: 404 is absent shard state (the shard maps an
// unknown graph to server.UnknownGraphError — a cold replica may simply not
// have it yet) and 5xx is a node fault. Any other 4xx is a deterministic
// client error every replica would repeat, so it is relayed without burning
// the remaining replicas.
func retryableStatus(code int) bool {
	return code == http.StatusNotFound || code >= http.StatusInternalServerError
}

// retryableSlotError is retryableStatus for per-slot /batch-query errors,
// which travel as strings inside a 200 response: it matches the slot errors
// that reflect shard state rather than a verdict on the query — an unknown
// graph (cold replica, server.UnknownGraphPrefix) and a persist-directory
// fault (broken disk, store.PersistPrefix; the point path retries the same
// condition via its 500 status).
func retryableSlotError(msg string) bool {
	return strings.HasPrefix(msg, server.UnknownGraphPrefix) || strings.HasPrefix(msg, store.PersistPrefix)
}

func (rt *Router) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (rt *Router) writeErr(w http.ResponseWriter, code int, err error) {
	rt.rm.errs.Inc()
	rt.writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeRaw relays a buffered upstream response verbatim.
func (rt *Router) writeRaw(w http.ResponseWriter, code int, body []byte) {
	if code >= http.StatusBadRequest {
		rt.rm.errs.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// attemptResult is one shard request's outcome: a transport error, or a
// buffered status + body.
type attemptResult struct {
	code int
	body []byte
	err  error
}

// wireQuery is a point request in binary-protocol form, carried alongside
// the HTTP request through hedgedDo so each attempt can try the shard's wire
// connection first and fall back to HTTP on a transport fault.
type wireQuery struct {
	typ byte
	q   wire.PointQuery
}

// wireFor returns the member's binary-protocol client, nil when the fast
// path is disabled or the shard has not advertised a wire address.
func (rt *Router) wireFor(m *Member) *wire.Client {
	if rt.opts.DisableWire {
		return nil
	}
	return m.wireClient()
}

// forwardPoint sends one point attempt to a member: over the binary protocol
// when the shard speaks it, over HTTP otherwise. A wire answer — success or
// an in-protocol error — is synthesised into the HTTP-shaped attemptResult
// the hedging/failover logic already understands, so the two transports are
// indistinguishable downstream; only a wire transport fault (dead listener,
// mid-restart shard) falls back to the HTTP request.
func (rt *Router) forwardPoint(ctx context.Context, m *Member, method, path, rawQuery string, body []byte, wq *wireQuery) attemptResult {
	// Traced attempts go over HTTP even when the shard speaks wire: response
	// frames carry no span field, so only the HTTP span header can bring the
	// shard's spans back into the router's trace record.
	if wq != nil && telemetry.TraceFrom(ctx) == nil {
		if wc := rt.wireFor(m); wc != nil {
			attemptStart := time.Now()
			d, werr, err := wc.Point(ctx, wq.typ, &wq.q)
			switch {
			case err == nil && werr == nil:
				rt.rm.wirePoints.Inc()
				rt.rm.observeReplica(m.ID, "wire", time.Since(attemptStart))
				m.markRequest(true, downAfter)
				return attemptResult{code: http.StatusOK, body: []byte(fmt.Sprintf(`{"dist":%d}`, d))}
			case err == nil:
				rt.rm.wirePoints.Inc()
				rt.rm.observeReplica(m.ID, "wire", time.Since(attemptStart))
				m.markRequest(werr.Code < http.StatusInternalServerError, downAfter)
				eb, _ := json.Marshal(map[string]string{"error": werr.Msg})
				return attemptResult{code: werr.Code, body: eb}
			case ctx.Err() != nil:
				// Hedging loser cancelled mid-flight: not a strike, no fallback.
				return attemptResult{err: err}
			}
			// Wire transport fault: the HTTP fallback below observes (and
			// scores) its own outcome against the same shard.
			rt.rm.wireFallbacks.Inc()
		}
	}
	return rt.forward(ctx, m, method, path, rawQuery, body)
}

// forward sends one buffered request to a member with the query client and
// reads the reply. Health is only updated on real outcomes — a hedging
// loser cancelled via ctx must not count against the shard.
func (rt *Router) forward(ctx context.Context, m *Member, method, path, rawQuery string, body []byte) attemptResult {
	return rt.forwardClient(rt.opts.Client, ctx, m, method, path, rawQuery, body)
}

func (rt *Router) forwardClient(client *http.Client, ctx context.Context, m *Member, method, path, rawQuery string, body []byte) attemptResult {
	url := m.Addr() + path
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return attemptResult{err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate what remains of the deadline budget so the shard can shed or
	// time the request out itself instead of answering into a void. Ceil-ms:
	// a still-live budget must never round down to "none".
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return attemptResult{err: context.DeadlineExceeded}
		}
		req.Header.Set(server.BudgetHeader, strconv.FormatInt(int64((rem+time.Millisecond-1)/time.Millisecond), 10))
	}
	tr := telemetry.TraceFrom(ctx)
	if tr != nil {
		req.Header.Set(telemetry.TraceHeader, tr.IDString())
	}
	attemptStart := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			m.markRequest(false, downAfter)
		}
		return attemptResult{err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() == nil {
			m.markRequest(false, downAfter)
		}
		return attemptResult{err: err}
	}
	rt.rm.observeReplica(m.ID, "http", time.Since(attemptStart))
	if tr != nil {
		// Fold the shard's spans into the router's trace, prefixed with the
		// member ID. Shard offsets are relative to the shard's own trace
		// start, so they read as per-layer timelines, not one global clock.
		if spans := resp.Header.Get(telemetry.SpanHeader); spans != "" {
			var shardSpans []telemetry.Span
			if json.Unmarshal([]byte(spans), &shardSpans) == nil {
				for _, sp := range shardSpans {
					sp.Name = m.ID + ":" + sp.Name
					tr.AddSpan(sp)
				}
			}
		}
	}
	// A 5xx is a request strike: a shard consistently failing requests
	// (broken persist directory, wedged store) must drift to the back of
	// the attempt order even though it still answers. A sub-5xx response
	// clears only the request signal — probe-owned readiness stays put, so
	// a draining shard serving its in-flight traffic is still drained out
	// by its 503 /readyz probes.
	m.markRequest(resp.StatusCode < http.StatusInternalServerError, downAfter)
	return attemptResult{code: resp.StatusCode, body: b}
}

// orderedOwners returns the key's replica set, healthy members first but
// otherwise in ring order, so the primary is sticky (its oracle pool stays
// hot) while down replicas drop to last-resort attempts.
func (rt *Router) orderedOwners(keyHash uint64) []*Member {
	owners := rt.m.Owners(keyHash)
	sort.SliceStable(owners, func(i, j int) bool {
		return owners[i].Healthy() && !owners[j].Healthy()
	})
	return owners
}

// ownersFor is orderedOwners for a resolved structure key, widened to R+k
// when the key has been promoted hot (rebalance.go): the extra owners were
// pre-loaded by PromoteHot, so routing to them serves from a handed-off
// structure, not a cold build.
func (rt *Router) ownersFor(k store.Key) []*Member {
	n := rt.m.Replicas()
	rt.hotMu.Lock()
	n += rt.promoted[k]
	rt.hotMu.Unlock()
	owners := rt.m.OwnersN(KeyHash(k), n)
	sort.SliceStable(owners, func(i, j int) bool {
		return owners[i].Healthy() && !owners[j].Healthy()
	})
	return owners
}

// maxTrackedKeys caps the hot-key hit map; when full it resets rather than
// evicting — hotness re-accumulates in a few seconds of traffic, and a
// reset is cheaper than bookkeeping an LRU on the point path.
const maxTrackedKeys = 8192

// noteKey records one routed query against the key's hit count.
func (rt *Router) noteKey(k store.Key) {
	rt.hotMu.Lock()
	if len(rt.hotHits) >= maxTrackedKeys {
		rt.hotHits = make(map[store.Key]uint64)
	}
	rt.hotHits[k]++
	rt.hotMu.Unlock()
}

// hedgedDo tries the owners in order until one returns 200: the primary
// first, the next replica when the hedge timer fires before the primary
// answers, and failover on transport errors and retryable statuses (404
// unknown-graph shard state, 5xx) after a jittered exponential backoff
// bounded by the remaining budget. Owners whose circuit breaker is open are
// skipped — unless every owner's is, in which case one attempt is forced
// (an answer beats a guaranteed refusal, and the outcome feeds the
// breaker). A deterministic client error (any other 4xx) is relayed
// immediately — every replica would repeat it; a retryable status is
// remembered and relayed only when every replica says no.
func (rt *Router) hedgedDo(ctx context.Context, owners []*Member, method, path, rawQuery string, body []byte, wq *wireQuery) attemptResult {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attemptResult, len(owners))
	next, pending := 0, 0
	fire := func(m *Member) {
		pending++
		go func() { results <- rt.forwardPoint(ctx, m, method, path, rawQuery, body, wq) }()
	}
	launch := func() bool {
		for next < len(owners) {
			m := owners[next]
			next++
			if !m.breakerAllow() {
				rt.rm.breakerSkips.Inc()
				continue
			}
			fire(m)
			return true
		}
		return false
	}
	if !launch() {
		// Every owner's breaker is open: force the primary anyway.
		rt.rm.breakerForced.Inc()
		fire(owners[0])
	}
	var hedgeC <-chan time.Time
	if rt.opts.HedgeDelay > 0 && len(owners) > 1 {
		tm := time.NewTimer(rt.opts.HedgeDelay)
		defer tm.Stop()
		hedgeC = tm.C
	}
	last := attemptResult{err: fmt.Errorf("cluster: no shard available")}
	retries := 0
	for pending > 0 {
		select {
		case res := <-results:
			pending--
			if res.err == nil && res.code == http.StatusOK {
				return res
			}
			if res.err == nil && !retryableStatus(res.code) {
				return res // deterministic client error: relay as-is
			}
			// Prefer a definitive shard reply over a transport error as the
			// answer of last resort.
			if res.err == nil || last.code == 0 {
				last = res
			}
			if next >= len(owners) {
				if pending == 0 {
					return last
				}
				continue
			}
			retries++
			if !rt.sleepBackoff(ctx, retries) {
				// Budget exhausted mid-backoff: no further attempts; any
				// stragglers still pending fail fast on the dead context.
				if pending == 0 {
					return last
				}
				continue
			}
			if launch() {
				rt.rm.failovers.Inc()
			} else if pending == 0 {
				return last
			}
		case <-hedgeC:
			hedgeC = nil
			if launch() {
				rt.rm.hedges.Inc()
			}
		}
	}
	return last
}

// handlePoint proxies /dist and /dist-avoiding: resolve the structure key
// from the request, hedge across its replica set, relay the winner.
func (rt *Router) handlePoint(w http.ResponseWriter, r *http.Request) {
	var body []byte
	var q server.QueryRequest
	switch r.Method {
	case http.MethodGet:
		var err error
		if q, err = server.ParseQuery(r); err != nil {
			rt.writeErr(w, http.StatusBadRequest, err)
			return
		}
	case http.MethodPost:
		var err error
		if body, err = io.ReadAll(r.Body); err != nil {
			rt.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
			return
		}
		if err := json.Unmarshal(body, &q); err != nil {
			rt.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
			return
		}
	default:
		rt.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or POST required"))
		return
	}
	k, err := q.KeyForEndpoint(r.URL.Path)
	if err != nil {
		rt.writeErr(w, http.StatusBadRequest, err)
		return
	}
	owners := rt.ownersFor(k)
	if len(owners) == 0 {
		rt.writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("cluster: no shards joined"))
		return
	}
	rt.rm.points.Inc()
	rt.noteKey(k)
	// Frame the request for the binary fast path when it is complete enough
	// to frame; a request missing its target or failure still goes out over
	// HTTP so the shard can answer the same 400 a single node would.
	var wq *wireQuery
	if q.V != nil {
		pq := wire.PointQuery{
			FP:      k.Graph,
			EpsBits: math.Float64bits(k.Eps),
			Source:  int32(k.Source),
			Alg:     int32(k.Alg),
			V:       int32(*q.V),
			A:       -1,
			B:       -1,
		}
		switch r.URL.Path {
		case "/dist":
			wq = &wireQuery{typ: wire.TDist, q: pq}
		case "/dist-avoiding":
			if q.Fail != nil {
				pq.A, pq.B = int32(q.Fail[0]), int32(q.Fail[1])
				wq = &wireQuery{typ: wire.TDistAvoiding, q: pq}
			}
		case "/dist-avoiding-vertex":
			if q.FailedVertex != nil {
				pq.A = int32(*q.FailedVertex)
				wq = &wireQuery{typ: wire.TDistAvoidingVertex, q: pq}
			}
		}
	}
	res := rt.hedgedDo(r.Context(), owners, r.Method, r.URL.Path, r.URL.RawQuery, body, wq)
	if res.err != nil {
		code := http.StatusBadGateway
		if errors.Is(res.err, context.DeadlineExceeded) || r.Context().Err() != nil {
			// The budget ran out, not the replicas: answer 504 like a shard
			// would, so callers can tell "too slow" from "all dead".
			code = http.StatusGatewayTimeout
		}
		rt.writeErr(w, code, fmt.Errorf("cluster: all %d replicas failed: %w", len(owners), res.err))
		return
	}
	rt.writeRaw(w, res.code, res.body)
}

// handleBatchQuery scatter-gathers a multi-structure batch: route every
// query slot by its structure key, ship one sub-batch per shard, and merge
// per-query results. A failed shard's slots fail over to the next replica;
// only slots whose whole replica set failed come back with error slots.
func (rt *Router) handleBatchQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req server.BatchQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rt.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	n := len(req.Queries)
	if n == 0 {
		rt.writeErr(w, http.StatusBadRequest, fmt.Errorf("empty query vector"))
		return
	}
	rt.rm.batches.Inc()
	rt.rm.batchQueries.Add(uint64(n))

	dists := make([]int, n)
	errs := make([]string, n)
	type route struct {
		key    store.Key
		owners []*Member
		tried  int // owners[:tried] already attempted
	}
	routes := make([]*route, n)
	var pending []int
	// One ring walk per distinct key, not per slot — a 256-slot batch over
	// 16 structures resolves 16 owner sets. Each slot still gets its own
	// copy: the least-loaded selection below reorders it in place.
	ownersByKey := make(map[store.Key][]*Member)
	for i := 0; i < n; i++ {
		dists[i] = -1
		k, err := req.KeyFor(i)
		if err != nil {
			errs[i] = err.Error()
			continue
		}
		base, cached := ownersByKey[k]
		if !cached {
			base = rt.ownersFor(k)
			ownersByKey[k] = base
		}
		rt.noteKey(k)
		if len(base) == 0 {
			errs[i] = "cluster: no shards joined"
			continue
		}
		owners := make([]*Member, len(base))
		copy(owners, base)
		routes[i] = &route{key: k, owners: owners}
		pending = append(pending, i)
	}

	// Each round ships at most one sub-batch per shard; slots whose attempt
	// failed (transport, shard error, or per-slot error) advance to their
	// next replica. Rounds are bounded by the replication factor. Unlike
	// point queries (which stick to the primary for oracle-pool locality),
	// batch slots pick the least-loaded untried replica of their key, so a
	// few hot structures cannot pile the whole vector onto one shard —
	// every replica holds the structure, so any of them answers correctly.
	load := make(map[*Member]int)
	for round := 0; len(pending) > 0 && round < rt.m.Replicas(); round++ {
		if round > 0 && !rt.sleepBackoff(r.Context(), round) {
			// Budget exhausted between rounds: pending slots keep the error
			// their last attempt recorded.
			break
		}
		type subBatch struct {
			member *Member
			slots  []int
		}
		var subs []*subBatch
		byMember := make(map[*Member]*subBatch)
		var exhausted []int
		for _, i := range pending {
			rte := routes[i]
			if rte.tried >= len(rte.owners) {
				exhausted = append(exhausted, i)
				continue
			}
			// Graceful degradation: when every remaining replica of this
			// slot's key has an open breaker, fail the slot now instead of
			// feeding a sub-batch to shards known to be failing — the rest of
			// the vector still answers. (Batch selection reads breaker state
			// without consuming half-open probe tokens; the point path and
			// readiness probes drive recovery.)
			allOpen := true
			for j := rte.tried; j < len(rte.owners); j++ {
				if !rte.owners[j].breakerOpen() {
					allOpen = false
					break
				}
			}
			if allOpen {
				rt.rm.breakerSkips.Inc()
				if errs[i] == "" {
					errs[i] = fmt.Sprintf("cluster: circuit open: all %d replicas unavailable", len(rte.owners))
				}
				continue
			}
			best := rte.tried
			for j := rte.tried + 1; j < len(rte.owners); j++ {
				cand, cur := rte.owners[j], rte.owners[best]
				if cand.breakerOpen() != cur.breakerOpen() {
					if !cand.breakerOpen() {
						best = j
					}
					continue
				}
				if cand.Healthy() != cur.Healthy() {
					if cand.Healthy() {
						best = j
					}
					continue
				}
				if load[cand] < load[cur] {
					best = j
				}
			}
			rte.owners[rte.tried], rte.owners[best] = rte.owners[best], rte.owners[rte.tried]
			m := rte.owners[rte.tried]
			rte.tried++
			load[m]++
			sb := byMember[m]
			if sb == nil {
				sb = &subBatch{member: m}
				byMember[m] = sb
				subs = append(subs, sb)
			}
			sb.slots = append(sb.slots, i)
		}
		for _, i := range exhausted {
			if errs[i] == "" {
				errs[i] = "cluster: all replicas failed"
			}
		}
		if round > 0 {
			rt.rm.failovers.Add(uint64(len(subs)))
		}

		var mu sync.Mutex
		var nextPending []int
		var wg sync.WaitGroup
		for _, sb := range subs {
			sb := sb
			wg.Add(1)
			go func() {
				defer wg.Done()
				sub := server.BatchQueryRequest{Queries: make([]server.BatchQuery, len(sb.slots))}
				for j, i := range sb.slots {
					k := routes[i].key
					src := k.Source
					sub.Queries[j] = server.BatchQuery{
						Graph:  fmt.Sprintf("%016x", k.Graph),
						Source: &src,
						V:      req.Queries[i].V,
					}
					if k.Model == store.ModelVertex {
						// A vertex slot re-addresses by (graph, source) only —
						// the shard's KeyFor derives the same vertex-model key
						// the router routed on.
						sub.Queries[j].FailedVertex = req.Queries[i].FailedVertex
					} else {
						eps := k.Eps
						sub.Queries[j].Eps = &eps
						sub.Queries[j].Alg = k.Alg.String()
						sub.Queries[j].Fail = req.Queries[i].Fail
					}
				}
				// The binary fast path ships the sub-batch as fixed-layout
				// slots and lands the reply directly in resp — no JSON in
				// either direction. An in-protocol rejection becomes the
				// HTTP-shaped attemptResult the failover classification
				// below already understands; only a wire transport fault
				// (dead listener, mid-restart shard) re-sends over HTTP.
				var res attemptResult
				var resp server.BatchQueryResponse
				answered, decoded := false, false
				if wc := rt.wireFor(sb.member); wc != nil {
					slots := make([]wire.BatchSlot, len(sb.slots))
					for j, i := range sb.slots {
						k := routes[i].key
						slots[j].PointQuery = wire.PointQuery{
							FP:      k.Graph,
							EpsBits: math.Float64bits(k.Eps),
							Source:  int32(k.Source),
							Alg:     int32(k.Alg),
							V:       int32(req.Queries[i].V),
							A:       -1,
							B:       -1,
						}
						if k.Model == store.ModelVertex {
							// KeyFor only derives a vertex-model key from a
							// slot carrying failedVertex, so the deref is safe.
							slots[j].Vertex = true
							slots[j].A = int32(*req.Queries[i].FailedVertex)
						} else {
							slots[j].A = int32(req.Queries[i].Fail[0])
							slots[j].B = int32(req.Queries[i].Fail[1])
						}
					}
					wdists, werrs, werr, err := wc.Batch(r.Context(), slots)
					switch {
					case err == nil && werr == nil:
						rt.rm.wireBatches.Inc()
						sb.member.markRequest(true, downAfter)
						resp.Dists = make([]int, len(wdists))
						for j, d := range wdists {
							resp.Dists[j] = int(d)
						}
						for _, e := range werrs {
							if e != "" {
								resp.Errors = werrs
								break
							}
						}
						res = attemptResult{code: http.StatusOK}
						answered, decoded = true, true
					case err == nil:
						rt.rm.wireBatches.Inc()
						sb.member.markRequest(werr.Code < http.StatusInternalServerError, downAfter)
						eb, _ := json.Marshal(map[string]string{"error": werr.Msg})
						res = attemptResult{code: werr.Code, body: eb}
						answered = true
					case r.Context().Err() == nil:
						rt.rm.wireFallbacks.Inc()
					}
				}
				if !answered {
					payload, err := json.Marshal(&sub)
					if err != nil {
						mu.Lock()
						for _, i := range sb.slots {
							errs[i] = "cluster: " + err.Error()
						}
						mu.Unlock()
						return
					}
					res = rt.forward(r.Context(), sb.member, http.MethodPost, "/batch-query", "", payload)
					decoded = res.err == nil && res.code == http.StatusOK &&
						json.Unmarshal(res.body, &resp) == nil
				}
				ok := decoded && len(resp.Dists) == len(sb.slots) &&
					(resp.Errors == nil || len(resp.Errors) == len(sb.slots))
				mu.Lock()
				defer mu.Unlock()
				if !ok {
					// Whole sub-batch failed. Only a deterministic 4xx (a
					// malformed sub-request every replica would repeat)
					// fails its slots in place; transport faults, retryable
					// statuses, and un-decodable 200s (version skew, an
					// intermediary's error page) are shard-specific, so
					// those slots go to the next replica.
					msg := fmt.Sprintf("cluster: shard %s failed", sb.member.ID)
					if res.err != nil {
						msg = fmt.Sprintf("cluster: shard %s: %v", sb.member.ID, res.err)
					} else if res.code != http.StatusOK {
						msg = fmt.Sprintf("cluster: shard %s: status %d: %s", sb.member.ID, res.code, bytes.TrimSpace(res.body))
					} else {
						msg = fmt.Sprintf("cluster: shard %s: malformed batch response", sb.member.ID)
					}
					definitive := res.err == nil && res.code != http.StatusOK && !retryableStatus(res.code)
					retry := !definitive
					for _, i := range sb.slots {
						if errs[i] == "" {
							errs[i] = msg
						}
						if retry {
							nextPending = append(nextPending, i)
						}
					}
					return
				}
				for j, i := range sb.slots {
					if resp.Errors != nil && resp.Errors[j] != "" {
						// Per-slot error: cold-replica shard state retries
						// on the next replica (keeping the first message in
						// case every replica is cold); a verdict on the
						// query itself is final and overwrites whatever
						// provisional failover message an earlier dead
						// replica left behind.
						if retryableSlotError(resp.Errors[j]) {
							if errs[i] == "" {
								errs[i] = resp.Errors[j]
							}
							nextPending = append(nextPending, i)
						} else {
							errs[i] = resp.Errors[j]
						}
						continue
					}
					dists[i] = resp.Dists[j]
					errs[i] = ""
				}
			}()
		}
		wg.Wait()
		pending = nextPending
	}

	resp := server.BatchQueryResponse{Dists: dists}
	for _, e := range errs {
		if e != "" {
			resp.Errors = errs
			break
		}
	}
	rt.writeJSON(w, http.StatusOK, resp)
}

// handleBuild fans a /build out to every shard owning any of its requested
// structures, exactly once per logical build: concurrent identical requests
// coalesce on a single-flight key of (fingerprint, algorithm, pairs).
func (rt *Router) handleBuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req server.BuildRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rt.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	g, err := server.GraphFromBuildRequest(&req)
	if err != nil {
		rt.writeErr(w, http.StatusBadRequest, err)
		return
	}
	alg, err := core.ParseAlgorithm(req.Alg)
	if err != nil {
		rt.writeErr(w, http.StatusBadRequest, err)
		return
	}
	pairs := req.ResolvedPairs()
	fp := g.Fingerprint()
	flightKey := fmt.Sprintf("%016x|%d|%v|v%v", fp, alg, pairs, req.VertexSources)
	res, shared := rt.buildFlight.Do(flightKey, func() flightResult {
		rt.rm.builds.Inc()
		// The fan-out is shared work: coalesced waiters must not lose their
		// build because the first caller hung up, so it is detached from
		// any one request's cancellation and bounded by BuildTimeout alone.
		ctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), rt.opts.BuildTimeout)
		defer cancel()
		return rt.fanOutBuild(ctx, g, &req, alg, pairs)
	})
	if shared {
		rt.rm.buildsCoalesced.Inc()
	}
	if res.code == 0 {
		// The flight died without producing a response (a panic in the
		// fan-out); waiters must not relay an invalid status 0.
		rt.writeErr(w, http.StatusBadGateway, fmt.Errorf("cluster: build fan-out failed"))
		return
	}
	rt.writeRaw(w, res.code, res.body)
}

// fanOutBuild ships one /build per involved shard, each carrying exactly
// the (source, ε) pairs that shard owns, and merges the per-shard replies
// into one BuildResponse in request-pair order. A pair succeeds when any of
// its replicas built it; a pair whose whole replica set failed fails the
// build.
func (rt *Router) fanOutBuild(ctx context.Context, g buildGraph, req *server.BuildRequest, alg ftbfs.Algorithm, pairs []server.BuildPair) flightResult {
	fail := func(code int, err error) flightResult {
		body, _ := json.Marshal(map[string]string{"error": err.Error()})
		return flightResult{code: code, body: body}
	}
	// Re-encode once: the canonical text preserves edge order, so every
	// shard computes the same fingerprint the router routed on.
	var text bytes.Buffer
	if err := g.Write(&text); err != nil {
		return fail(http.StatusInternalServerError, err)
	}
	fp := g.Fingerprint()

	type shardBuild struct {
		member   *Member
		pairs    []server.BuildPair
		index    map[server.BuildPair]int // pair -> position in pairs
		vsources []int
		vindex   map[int]int // vertex source -> position in vsources
		resp     server.BuildResponse
		err      error
		code     int // HTTP status behind err, 0 for transport faults
	}
	var shards []*shardBuild
	byMember := make(map[*Member]*shardBuild)
	shardFor := func(m *Member) *shardBuild {
		sb := byMember[m]
		if sb == nil {
			sb = &shardBuild{member: m, index: make(map[server.BuildPair]int), vindex: make(map[int]int)}
			byMember[m] = sb
			shards = append(shards, sb)
		}
		return sb
	}
	pairOwners := make([][]*Member, len(pairs))
	for i, p := range pairs {
		// Builds route on the same registry key as queries; algorithm
		// differences are part of the key, so a mixed-alg workload shards
		// consistently. Replication ignores health: a down replica simply
		// fails its sub-request and the pair survives on the others.
		k := store.Key{Graph: fp, Source: p.Source, Eps: p.Eps, Alg: alg}
		owners := rt.m.Owners(KeyHash(k))
		if len(owners) == 0 {
			return fail(http.StatusServiceUnavailable, fmt.Errorf("cluster: no shards joined"))
		}
		pairOwners[i] = owners
		for _, m := range owners {
			sb := shardFor(m)
			if _, dup := sb.index[p]; !dup {
				sb.index[p] = len(sb.pairs)
				sb.pairs = append(sb.pairs, p)
			}
		}
	}
	// Vertex structures route on their own vertex-model keys, so their
	// owners are generally different shards than any edge pair's — which is
	// exactly what makes the graph reach every shard a later
	// /dist-avoiding-vertex can land on.
	vsrcOwners := make([][]*Member, len(req.VertexSources))
	for i, src := range req.VertexSources {
		owners := rt.m.Owners(KeyHash(store.VertexKey(fp, src)))
		if len(owners) == 0 {
			return fail(http.StatusServiceUnavailable, fmt.Errorf("cluster: no shards joined"))
		}
		vsrcOwners[i] = owners
		for _, m := range owners {
			sb := shardFor(m)
			if _, dup := sb.vindex[src]; !dup {
				sb.vindex[src] = len(sb.vsources)
				sb.vsources = append(sb.vsources, src)
			}
		}
	}

	var wg sync.WaitGroup
	for _, sb := range shards {
		sb := sb
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload, err := json.Marshal(&server.BuildRequest{
				Graph:         text.String(),
				Pairs:         sb.pairs,
				Alg:           req.Alg,
				VertexSources: sb.vsources,
			})
			if err != nil {
				sb.err = err
				return
			}
			res := rt.forwardClient(rt.buildClient, ctx, sb.member, http.MethodPost, "/build", "", payload)
			switch {
			case res.err != nil:
				sb.err = res.err
			case res.code != http.StatusOK:
				sb.err = fmt.Errorf("status %d: %s", res.code, bytes.TrimSpace(res.body))
				sb.code = res.code
			default:
				sb.err = json.Unmarshal(res.body, &sb.resp)
				if sb.err == nil && len(sb.resp.Structures) != len(sb.pairs) {
					sb.err = fmt.Errorf("shard built %d of %d structures", len(sb.resp.Structures), len(sb.pairs))
				}
				if sb.err == nil && len(sb.resp.VertexStructures) != len(sb.vsources) {
					sb.err = fmt.Errorf("shard built %d of %d vertex structures", len(sb.resp.VertexStructures), len(sb.vsources))
				}
			}
		}()
	}
	wg.Wait()

	out := server.BuildResponse{Fingerprint: fmt.Sprintf("%016x", fp), N: g.N(), M: g.M()}
	for i, p := range pairs {
		var info *server.StructureInfo
		var firstErr error
		firstCode := 0
		for _, m := range pairOwners[i] {
			sb := byMember[m]
			if sb.err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("shard %s: %w", m.ID, sb.err)
					firstCode = sb.code
				}
				continue
			}
			info = &sb.resp.Structures[sb.index[p]]
			break
		}
		if info == nil {
			// A deterministic 4xx (bad source, bad eps) is the client's
			// error on every replica and is relayed as such — matching what
			// a single node would answer; anything else is a gateway fault.
			code := http.StatusBadGateway
			if firstCode >= http.StatusBadRequest && firstCode < http.StatusInternalServerError && !retryableStatus(firstCode) {
				code = firstCode
			}
			return fail(code,
				fmt.Errorf("cluster: build (source=%d, eps=%g) failed on all %d replicas: %w",
					p.Source, p.Eps, len(pairOwners[i]), firstErr))
		}
		out.Structures = append(out.Structures, *info)
	}
	for i, src := range req.VertexSources {
		var info *server.VertexStructureInfo
		var firstErr error
		firstCode := 0
		for _, m := range vsrcOwners[i] {
			sb := byMember[m]
			if sb.err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("shard %s: %w", m.ID, sb.err)
					firstCode = sb.code
				}
				continue
			}
			info = &sb.resp.VertexStructures[sb.vindex[src]]
			break
		}
		if info == nil {
			code := http.StatusBadGateway
			if firstCode >= http.StatusBadRequest && firstCode < http.StatusInternalServerError && !retryableStatus(firstCode) {
				code = firstCode
			}
			return fail(code,
				fmt.Errorf("cluster: vertex build (source=%d) failed on all %d replicas: %w",
					src, len(vsrcOwners[i]), firstErr))
		}
		out.VertexStructures = append(out.VertexStructures, *info)
	}
	body, err := json.Marshal(&out)
	if err != nil {
		return fail(http.StatusInternalServerError, err)
	}
	return flightResult{code: http.StatusOK, body: body}
}

// handleMutate fans an edge-mutation batch out to every shard holding the
// graph's lineage. Structures of one lineage hash per-source across the whole
// ring, so the router cannot enumerate which shards hold state for it — the
// batch goes to every member, and shards that never saw the graph answer 404,
// which is tolerated as long as at least one shard applied the batch. The
// fan-out is single-flight per (lineage, batch): concurrent identical
// requests — a client retry racing its own slow original — coalesce instead
// of double-applying, which would fail the retry with "edge already absent".
func (rt *Router) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req server.MutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rt.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	lineage, err := strconv.ParseUint(req.Graph, 16, 64)
	if err != nil {
		rt.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad graph fingerprint %q", req.Graph))
		return
	}
	// Validate the batch router-side (the same parse the shards run) so a
	// malformed request is rejected before any shard does work.
	muts, err := req.ParsedMutations()
	if err != nil {
		rt.writeErr(w, http.StatusBadRequest, err)
		return
	}
	flightKey := fmt.Sprintf("mut|%016x|%v", lineage, req.Mutations)
	res, shared := rt.mutateFlight.Do(flightKey, func() flightResult {
		rt.rm.mutations.Inc()
		// Like /build, the fan-out is shared work detached from any one
		// request's cancellation: a batch applied on some shards but not
		// others leaves the lineage split across generations, so once the
		// fan-out starts it runs to its own BuildTimeout-bounded end.
		ctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), rt.opts.BuildTimeout)
		defer cancel()
		return rt.fanOutMutate(ctx, lineage, &req, muts)
	})
	if shared {
		rt.rm.mutationsCoalesced.Inc()
	}
	if res.code == 0 {
		rt.writeErr(w, http.StatusBadGateway, fmt.Errorf("cluster: mutate fan-out failed"))
		return
	}
	rt.writeRaw(w, res.code, res.body)
}

// fanOutMutate ships the batch to every member — binary protocol when the
// shard speaks it, HTTP otherwise — and merges the replies. Every applying
// shard derives the same new generation from the same batch, so the merged
// response carries the common identity plus fleet-summed rebuild counts; a
// genuinely diverging shard (different gen or fingerprint) fails the fan-out
// loudly rather than letting replicas silently serve different graphs.
func (rt *Router) fanOutMutate(ctx context.Context, lineage uint64, req *server.MutateRequest, muts []ftbfs.Mutation) flightResult {
	fail := func(code int, err error) flightResult {
		body, _ := json.Marshal(map[string]string{"error": err.Error()})
		return flightResult{code: code, body: body}
	}
	members := rt.m.Members()
	if len(members) == 0 {
		return fail(http.StatusServiceUnavailable, fmt.Errorf("cluster: no shards joined"))
	}
	wmuts := make([]wire.MutationWire, len(muts))
	for i, m := range muts {
		wmuts[i] = wire.MutationWire{Op: uint8(m.Op), U: uint32(m.U), V: uint32(m.V)}
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return fail(http.StatusInternalServerError, err)
	}

	type shardMutate struct {
		member  *Member
		resp    server.MutateResponse
		applied bool
		notHeld bool
		err     error
		code    int // HTTP status behind err, 0 for transport faults
	}
	shards := make([]*shardMutate, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		sm := &shardMutate{member: m}
		shards[i] = sm
		wg.Add(1)
		go func() {
			defer wg.Done()
			if wc := rt.wireFor(sm.member); wc != nil {
				res, werr, err := wc.Mutate(ctx, lineage, wmuts)
				switch {
				case err == nil && werr == nil:
					rt.rm.wireMutations.Inc()
					sm.member.markRequest(true, downAfter)
					sm.resp = server.MutateResponse{
						Graph:         fmt.Sprintf("%016x", res.Lineage),
						Gen:           res.Gen,
						Fingerprint:   fmt.Sprintf("%016x", res.FP),
						RebuildsDelta: int(res.RebuildsDelta),
						RebuildsFull:  int(res.RebuildsFull),
					}
					sm.applied = true
					return
				case err == nil && werr.Code == http.StatusNotFound:
					rt.rm.wireMutations.Inc()
					sm.member.markRequest(true, downAfter)
					sm.notHeld = true
					return
				case err == nil && werr.Code != http.StatusNotImplemented:
					rt.rm.wireMutations.Inc()
					sm.member.markRequest(werr.Code < http.StatusInternalServerError, downAfter)
					sm.err = fmt.Errorf("status %d: %s", werr.Code, werr.Msg)
					sm.code = werr.Code
					return
				case ctx.Err() != nil:
					sm.err = ctx.Err()
					return
				}
				// Wire transport fault or in-protocol 501: retry over HTTP.
				rt.rm.wireFallbacks.Inc()
			}
			res := rt.forwardClient(rt.buildClient, ctx, sm.member, http.MethodPost, "/mutate", "", payload)
			switch {
			case res.err != nil:
				sm.err = res.err
			case res.code == http.StatusNotFound:
				sm.notHeld = true
			case res.code != http.StatusOK:
				sm.err = fmt.Errorf("status %d: %s", res.code, bytes.TrimSpace(res.body))
				sm.code = res.code
			default:
				if err := json.Unmarshal(res.body, &sm.resp); err != nil {
					sm.err = err
				} else {
					sm.applied = true
				}
			}
		}()
	}
	wg.Wait()

	out := server.MutateResponse{Graph: fmt.Sprintf("%016x", lineage)}
	applied := 0
	var firstErr error
	firstCode := 0
	for _, sm := range shards {
		if sm.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %s: %w", sm.member.ID, sm.err)
				firstCode = sm.code
			}
			continue
		}
		if !sm.applied {
			continue
		}
		if applied == 0 {
			out.Gen = sm.resp.Gen
			out.Fingerprint = sm.resp.Fingerprint
		} else if out.Gen != sm.resp.Gen || out.Fingerprint != sm.resp.Fingerprint {
			return fail(http.StatusBadGateway, fmt.Errorf(
				"cluster: mutation diverged: shard %s reached gen %d fp %s, others gen %d fp %s",
				sm.member.ID, sm.resp.Gen, sm.resp.Fingerprint, out.Gen, out.Fingerprint))
		}
		applied++
		out.RebuildsDelta += sm.resp.RebuildsDelta
		out.RebuildsFull += sm.resp.RebuildsFull
	}
	if firstErr != nil {
		// One shard refusing or failing the batch while others applied it
		// splits the lineage across generations; surface it as a gateway
		// fault (or the shards' own deterministic 4xx) so the caller knows
		// convergence is not complete. Queries stay safe either way — every
		// shard serves whichever generation it holds, atomically.
		code := http.StatusBadGateway
		if firstCode >= http.StatusBadRequest && firstCode < http.StatusInternalServerError && !retryableStatus(firstCode) {
			code = firstCode
		}
		return fail(code, fmt.Errorf("cluster: mutate applied on %d of %d shards: %w", applied, len(members), firstErr))
	}
	if applied == 0 {
		return fail(http.StatusNotFound, fmt.Errorf("%s%016x (POST /build first)", server.UnknownGraphPrefix, lineage))
	}
	rt.rm.mutationShards.Add(uint64(applied))
	rt.rm.mutationsDelta.Add(uint64(out.RebuildsDelta))
	rt.rm.mutationsFull.Add(uint64(out.RebuildsFull))
	body, err := json.Marshal(&out)
	if err != nil {
		return fail(http.StatusInternalServerError, err)
	}
	return flightResult{code: http.StatusOK, body: body}
}

// buildGraph is the slice of the root Graph API fanOutBuild needs; keeping
// it an interface lets tests fan out without a full build pipeline.
type buildGraph interface {
	Write(io.Writer) error
	Fingerprint() uint64
	N() int
	M() int
}

// ShardStat is one member's entry in a RouterStatsResponse.
type ShardStat struct {
	ID           string                `json:"id"`
	Addr         string                `json:"addr"`
	Healthy      bool                  `json:"healthy"`
	Probes       uint64                `json:"probes"`
	Breaker      string                `json:"breaker"`                 // closed | open | half-open
	BreakerOpens uint64                `json:"breaker_opens,omitempty"` // lifetime trips
	Stats        *server.StatsResponse `json:"stats,omitempty"`
	Error        string                `json:"error,omitempty"`
}

// RouterStatsResponse is the reply of the router's GET /stats: router-level
// counters plus a gathered per-shard breakdown.
type RouterStatsResponse struct {
	Role            string  `json:"role"`
	ID              string  `json:"id,omitempty"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Requests        uint64  `json:"requests"`
	PointQueries    uint64  `json:"point_queries"`
	Batches         uint64  `json:"batches"`
	BatchQueries    uint64  `json:"batch_queries"`
	Builds          uint64  `json:"builds"`
	BuildsCoalesced uint64  `json:"builds_coalesced"`
	Hedges          uint64  `json:"hedges"`
	Failovers       uint64  `json:"failovers"`
	WirePoints      uint64  `json:"wire_points"`
	WireBatches     uint64  `json:"wire_batches"`
	WireMutations   uint64  `json:"wire_mutations"`
	WireFallbacks   uint64  `json:"wire_fallbacks"`

	// Live-graph convergence ledger: mutation fan-outs executed, shard swaps
	// they applied, and how the fleet's rebuild work split between the delta
	// fast path and full rebuilds. A soak asserts MutationRebuildsDelta > 0
	// (the fast path actually engages) alongside zero wrong answers.
	Mutations             uint64 `json:"mutations"`
	MutationsCoalesced    uint64 `json:"mutations_coalesced"`
	MutationShards        uint64 `json:"mutation_shards"`
	MutationRebuildsDelta uint64 `json:"mutation_rebuilds_delta"`
	MutationRebuildsFull  uint64 `json:"mutation_rebuilds_full"`
	BreakerSkips          uint64 `json:"breaker_skips"`
	BreakerForced         uint64 `json:"breaker_forced"`
	Errors                uint64 `json:"errors"`
	Replicas              int    `json:"replicas"`

	// Rebalance state: a churn soak asserts StructuresTransferred > 0 (the
	// transfer actually ran — load-through would mask a broken handoff) and
	// RangesPending == 0 (it finished).
	Rebalances            uint64 `json:"rebalances"`
	RangesPending         int64  `json:"ranges_pending"`
	RangesMoved           uint64 `json:"ranges_moved"`
	StructuresTransferred uint64 `json:"structures_transferred"`
	BytesMoved            uint64 `json:"bytes_moved"`
	HotPromotions         uint64 `json:"hot_promotions"`
	PromotedKeys          int    `json:"promoted_keys"`

	Shards []ShardStat `json:"shards"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	members := rt.m.Members()
	resp := RouterStatsResponse{
		Role:            "router",
		ID:              rt.opts.ID,
		UptimeSeconds:   time.Since(rt.start).Seconds(),
		Requests:        rt.rm.requests.Value(),
		PointQueries:    rt.rm.points.Value(),
		Batches:         rt.rm.batches.Value(),
		BatchQueries:    rt.rm.batchQueries.Value(),
		Builds:          rt.rm.builds.Value(),
		BuildsCoalesced: rt.rm.buildsCoalesced.Value(),
		Hedges:          rt.rm.hedges.Value(),
		Failovers:       rt.rm.failovers.Value(),
		WirePoints:      rt.rm.wirePoints.Value(),
		WireBatches:     rt.rm.wireBatches.Value(),
		WireMutations:   rt.rm.wireMutations.Value(),
		WireFallbacks:   rt.rm.wireFallbacks.Value(),

		Mutations:             rt.rm.mutations.Value(),
		MutationsCoalesced:    rt.rm.mutationsCoalesced.Value(),
		MutationShards:        rt.rm.mutationShards.Value(),
		MutationRebuildsDelta: rt.rm.mutationsDelta.Value(),
		MutationRebuildsFull:  rt.rm.mutationsFull.Value(),
		BreakerSkips:          rt.rm.breakerSkips.Value(),
		BreakerForced:         rt.rm.breakerForced.Value(),
		Errors:                rt.rm.errs.Value(),
		Replicas:              rt.m.Replicas(),

		Rebalances:            rt.rm.rebalances.Value(),
		RangesPending:         rt.rm.rangesPending.Value(),
		RangesMoved:           rt.rm.rangesMoved.Value(),
		StructuresTransferred: rt.rm.structuresMoved.Value(),
		BytesMoved:            rt.rm.bytesMoved.Value(),
		HotPromotions:         rt.rm.hotPromotions.Value(),

		Shards: make([]ShardStat, len(members)),
	}
	rt.hotMu.Lock()
	resp.PromotedKeys = len(rt.promoted)
	rt.hotMu.Unlock()
	// A wedged shard must not stall the operator's stats call for the full
	// query timeout; it just shows up with an Error field.
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i, m := range members {
		i, m := i, m
		bstate, bopens := m.breakerSnapshot()
		resp.Shards[i] = ShardStat{
			ID: m.ID, Addr: m.Addr(), Healthy: m.Healthy(), Probes: m.probes.Load(),
			Breaker: bstate, BreakerOpens: bopens,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := rt.forward(ctx, m, http.MethodGet, "/stats", "", nil)
			if res.err != nil {
				resp.Shards[i].Error = res.err.Error()
				return
			}
			var st server.StatsResponse
			if err := json.Unmarshal(res.body, &st); err != nil {
				resp.Shards[i].Error = err.Error()
				return
			}
			resp.Shards[i].Stats = &st
		}()
	}
	wg.Wait()
	rt.writeJSON(w, http.StatusOK, resp)
}

// promContentType is the Prometheus text exposition content type, matching
// what the shards serve.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// handleMetrics serves the router's own registry in Prometheus text form.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", promContentType)
	rt.rm.reg.Snapshot().WriteProm(w)
}

// handleMetricsFleet scrapes every member's /metrics.json snapshot in
// parallel (the same forward path and timeout discipline as /stats) and
// serves the merged result: counters sum, histogram buckets add, so a fleet
// quantile is computed over the union of every shard's observations rather
// than averaged per shard.
func (rt *Router) handleMetricsFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	members := rt.m.Members()
	snaps := make([]*telemetry.Snapshot, len(members))
	// A wedged shard must not stall the scrape; it is simply absent from
	// this merge and counted in ftbfs_fleet_scrape_errors.
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i, m := range members {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := rt.forward(ctx, m, http.MethodGet, "/metrics.json", "", nil)
			if res.err != nil || res.code != http.StatusOK {
				return
			}
			var s telemetry.Snapshot
			if json.Unmarshal(res.body, &s) == nil {
				snaps[i] = &s
			}
		}()
	}
	wg.Wait()
	scraped := 0
	for _, s := range snaps {
		if s != nil {
			scraped++
		}
	}
	merged := telemetry.Merge(snaps...)
	merged.Gauges["ftbfs_fleet_scraped_shards"] = int64(scraped)
	merged.Help["ftbfs_fleet_scraped_shards"] = "Shards whose snapshot this merge includes."
	merged.Types["ftbfs_fleet_scraped_shards"] = "gauge"
	merged.Gauges["ftbfs_fleet_scrape_errors"] = int64(len(members) - scraped)
	merged.Help["ftbfs_fleet_scrape_errors"] = "Shards that failed to answer the snapshot scrape."
	merged.Types["ftbfs_fleet_scrape_errors"] = "gauge"
	w.Header().Set("Content-Type", promContentType)
	merged.WriteProm(w)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, http.StatusOK, server.HealthResponse{
		OK:            true,
		Role:          "router",
		ID:            rt.opts.ID,
		UptimeSeconds: time.Since(rt.start).Seconds(),
	})
}

// RouterReadyResponse is the reply of the router's GET /readyz: a router is
// ready when it is not draining and at least one shard is healthy.
type RouterReadyResponse struct {
	Ready         bool `json:"ready"`
	Draining      bool `json:"draining,omitempty"`
	Shards        int  `json:"shards"`
	HealthyShards int  `json:"healthy_shards"`
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := RouterReadyResponse{
		Draining:      rt.draining.Load(),
		Shards:        len(rt.m.Members()),
		HealthyShards: rt.m.HealthyCount(),
	}
	resp.Ready = !resp.Draining && resp.HealthyShards > 0
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	rt.writeJSON(w, code, resp)
}
