package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"testing"
	"time"

	"ftbfs/internal/chaos"
)

// TestAddShardAbortKeepsRoutingUnflipped: a join cancelled mid-transfer must
// fail without flipping routing — the joiner holds an arbitrary prefix of
// its ranges and must not start taking traffic for the rest — and must not
// leak ranges_pending.
func TestAddShardAbortKeepsRoutingUnflipped(t *testing.T) {
	lc, err := StartLocal(2, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fixtures := buildFixtures(t, lc.URL(), []int64{81}, []int{0, 3}, 0.3)

	idsBefore := lc.Router.Membership().IDs()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the join is aborted before (and during) its pulls
	if _, _, err := lc.AddShard(ctx); err == nil {
		t.Fatal("AddShard with a cancelled context succeeded")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("AddShard abort error = %v, want context.Canceled", err)
	}

	if ids := lc.Router.Membership().IDs(); len(ids) != len(idsBefore) {
		t.Fatalf("aborted join flipped routing: members %v, want %v", ids, idsBefore)
	}
	var stats RouterStatsResponse
	if code, body := getJSON(t, lc.URL()+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	if stats.RangesPending != 0 {
		t.Fatalf("aborted join leaked ranges_pending = %d", stats.RangesPending)
	}
	// The surviving cluster still answers every query exactly.
	for _, fx := range fixtures {
		checkPoint(t, lc.URL(), fx, 3%fx.n, fx.edges[0])
	}
}

// TestPullPartialFailureAccounting: a receiver whose persist directory is
// broken still installs pulled structures in memory — the join reports them
// Transferred (they serve traffic) AND surfaces the persist errors, with no
// pending-range leak and no wrong answers afterwards.
func TestPullPartialFailureAccounting(t *testing.T) {
	inj := chaos.New(chaos.Plan{Name: "broken-persist", DiskWriteErrP: 1}, 7)
	inj.SetEnabled(false) // fixture builds persist cleanly; armed for the join
	lc, err := StartLocal(2, LocalOptions{
		Replicas:    2,
		PersistRoot: t.TempDir(),
		Chaos:       inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fixtures := buildFixtures(t, lc.URL(), []int64{82, 83}, []int{0, 2}, 0.3)

	defer inj.SetEnabled(false)
	inj.SetEnabled(true) // every record write on the joiner now fails

	ctx, cancelJoin := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelJoin()
	_, report, err := lc.AddShard(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Transferred == 0 {
		t.Fatalf("join moved nothing: %+v", report)
	}
	if len(report.Errors) == 0 {
		t.Fatalf("join with a broken receiver disk reported no errors: %+v", report)
	}
	inj.SetEnabled(false)

	var stats RouterStatsResponse
	if code, body := getJSON(t, lc.URL()+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	if stats.RangesPending != 0 {
		t.Fatalf("partial-failure join leaked ranges_pending = %d", stats.RangesPending)
	}
	// The receiver is consistent: routed queries — some now landing on the
	// joiner's memory-only copies — still match the oracle exactly.
	for _, fx := range fixtures {
		for i := 0; i < 6 && i < len(fx.edges); i++ {
			checkPoint(t, lc.URL(), fx, (i*7)%fx.n, fx.edges[i])
		}
	}
}

// TestClusterShutdownUnderFireLeaksNothing: Close with requests in flight
// must wind down every router-side resource — wire-client read loops,
// forwarded HTTP connections, shard handlers — without leaving goroutines
// parked (the router-shutdown leg of the wire client's lifecycle tests).
func TestClusterShutdownUnderFireLeaksNothing(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		lc, err := StartLocal(3, LocalOptions{Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer lc.Close()
		fx := buildFixtures(t, lc.URL(), []int64{84}, []int{0}, 0.3)[0]

		stop := make(chan struct{})
		done := make(chan struct{})
		client := &http.Client{Timeout: 5 * time.Second}
		go func() {
			defer close(done)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := chaosQueryURL(lc.URL(), fx, i)
				resp, err := client.Get(q)
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
		time.Sleep(100 * time.Millisecond) // requests are genuinely in flight
		close(stop)
		<-done
		client.CloseIdleConnections()
	}()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("cluster shutdown leaked goroutines: %d now, %d at baseline\n%s",
				runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// chaosQueryURL builds the i-th rotating point query against a fixture.
func chaosQueryURL(base string, fx fixture, i int) string {
	e := fx.edges[i%len(fx.edges)]
	v := (i * 13) % fx.n
	return fmt.Sprintf("%s/dist-avoiding?graph=%s&source=%d&eps=%g&v=%d&fu=%d&fv=%d",
		base, fx.fp, fx.source, fx.eps, v, e[0], e[1])
}
