package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"ftbfs/internal/server"
	"ftbfs/internal/store"
)

// This file is the router-driven side of elastic membership: AddShard and
// DrainShard compute the ring delta of a membership change, drive pull-based
// structure transfer through the shards' /handoff surface, and only then
// change routing — transfer before flip, so the first routed query on a new
// owner is served from a handed-off structure, never a cold rebuild (see
// doc.go for the full lifecycle). PromoteHot widens the hottest keys to R+k
// replication using the same pull machinery.

// RebalanceReport summarises one AddShard/DrainShard lifecycle.
type RebalanceReport struct {
	Rejoin      bool     `json:"rejoin,omitempty"` // address refresh only, nothing moved
	Ranges      int      `json:"ranges"`           // keys the ring delta remapped
	Transferred int      `json:"transferred"`      // structures installed on new owners
	Skipped     int      `json:"skipped"`          // records receivers already held
	Bytes       int64    `json:"bytes"`            // record bytes moved
	Unsourced   int      `json:"unsourced,omitempty"`
	Errors      []string `json:"errors,omitempty"`
}

// gatherInventory asks every member for its exportable keys and merges the
// answers into holder lists (in membership ring order — the pull source
// preference order). Shards that fail to answer just contribute nothing; the
// keys they exclusively held fall back to load-through on the new owner.
func (rt *Router) gatherInventory(ctx context.Context) map[store.Key][]*Member {
	members := rt.m.Members()
	keysOf := make([][]store.Key, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := rt.forward(ctx, m, http.MethodGet, "/handoff/keys", "", nil)
			if res.err != nil || res.code != http.StatusOK {
				return
			}
			var kr server.HandoffKeysResponse
			if json.Unmarshal(res.body, &kr) != nil {
				return
			}
			for _, info := range kr.Keys {
				if k, err := info.StoreKey(); err == nil {
					keysOf[i] = append(keysOf[i], k)
				}
			}
		}()
	}
	wg.Wait()
	inv := make(map[store.Key][]*Member)
	for i, m := range members {
		for _, k := range keysOf[i] {
			inv[k] = append(inv[k], m)
		}
	}
	return inv
}

// memberKeys inventories a single member.
func (rt *Router) memberKeys(ctx context.Context, m *Member) ([]store.Key, error) {
	res := rt.forward(ctx, m, http.MethodGet, "/handoff/keys", "", nil)
	if res.err != nil {
		return nil, res.err
	}
	if res.code != http.StatusOK {
		return nil, fmt.Errorf("cluster: shard %s: status %d: %s", m.ID, res.code, bytes.TrimSpace(res.body))
	}
	var kr server.HandoffKeysResponse
	if err := json.Unmarshal(res.body, &kr); err != nil {
		return nil, err
	}
	keys := make([]store.Key, 0, len(kr.Keys))
	for _, info := range kr.Keys {
		if k, err := info.StoreKey(); err == nil {
			keys = append(keys, k)
		}
	}
	return keys, nil
}

// pullTo posts one /handoff/pull to targetAddr: pull keys from src. The
// target need not be a member yet — on a join it is the not-yet-routed
// shard. Moved structures and bytes land in the router's rebalance counters.
func (rt *Router) pullTo(ctx context.Context, targetAddr string, src *Member, keys []server.HandoffKeyInfo) (server.HandoffPullResponse, error) {
	var resp server.HandoffPullResponse
	payload, err := json.Marshal(&server.HandoffPullRequest{
		From: src.Addr(),
		Wire: src.WireAddr(),
		Keys: keys,
	})
	if err != nil {
		return resp, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, targetAddr+"/handoff/pull", bytes.NewReader(payload))
	if err != nil {
		return resp, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Transfers are bulk work bounded by ctx, not by the query client's
	// timeout — the build client has none.
	res, err := rt.buildClient.Do(req)
	if err != nil {
		return resp, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return resp, fmt.Errorf("cluster: pull to %s: status %d", targetAddr, res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		return resp, err
	}
	rt.rm.structuresMoved.Add(uint64(resp.Transferred))
	rt.rm.bytesMoved.Add(uint64(resp.Bytes))
	return resp, nil
}

// firstHealthy returns the first healthy member of the list (or the first
// member at all — a source marked down may still answer a bulk read, and a
// failed pull only costs the fallback).
func firstHealthy(members []*Member) *Member {
	for _, m := range members {
		if m.Healthy() {
			return m
		}
	}
	if len(members) > 0 {
		return members[0]
	}
	return nil
}

// pullTask groups the keys one target pulls from one source.
type pullTask struct {
	src  *Member
	keys []server.HandoffKeyInfo
}

// runPulls drives a target's pull tasks, folding outcomes into the report
// and the pending/moved counters.
func (rt *Router) runPulls(ctx context.Context, targetAddr string, tasks []pullTask, report *RebalanceReport) {
	for _, t := range tasks {
		resp, err := rt.pullTo(ctx, targetAddr, t.src, t.keys)
		rt.rm.rangesPending.Add(-int64(len(t.keys)))
		if err != nil {
			report.Errors = append(report.Errors, err.Error())
			continue
		}
		rt.rm.rangesMoved.Add(uint64(len(t.keys)))
		report.Transferred += resp.Transferred
		report.Skipped += resp.Skipped
		report.Bytes += resp.Bytes
		report.Errors = append(report.Errors, resp.Errors...)
	}
}

// AddShard runs the join-side rebalance lifecycle: compute the ring delta
// for the prospective member, drive pull-based transfer of every structure
// the new shard will own onto it, and only then flip routing by joining it
// to the membership. A known ID is a rejoin — address refresh, nothing
// moves. wireAddr may be empty (the shard then serves handoff and queries
// over HTTP until probes learn a wire address).
func (rt *Router) AddShard(ctx context.Context, id, addr, wireAddr string) (*RebalanceReport, error) {
	ms := rt.m
	if _, ok := ms.Member(id); ok {
		ms.Join(id, addr)
		if m, ok := ms.Member(id); ok && wireAddr != "" {
			m.SetWireAddr(normalizeWireAddr(wireAddr, addr))
		}
		return &RebalanceReport{Rejoin: true}, nil
	}
	rt.rm.rebalances.Inc()
	report := &RebalanceReport{}
	before := ms.Ring()
	after := NewRing(append(ms.IDs(), id), ms.Vnodes())
	replicas := ms.Replicas()

	// Which keys does the joiner gain? Only keys some current shard holds
	// can move; everything else has nothing to transfer (and load-through
	// on first use behaves exactly as before the join).
	inv := rt.gatherInventory(ctx)
	bySource := make(map[*Member][]server.HandoffKeyInfo)
	for k, holders := range inv {
		gained, _ := DeltaOwners(before, after, replicas, KeyHash(k))
		owns := false
		for _, gid := range gained {
			if gid == id {
				owns = true
				break
			}
		}
		if !owns {
			continue
		}
		src := firstHealthy(holders)
		if src == nil {
			report.Unsourced++
			continue
		}
		bySource[src] = append(bySource[src], server.HandoffKeyFor(k))
		report.Ranges++
	}
	rt.rm.rangesPending.Add(int64(report.Ranges))
	var tasks []pullTask
	for src, keys := range bySource {
		tasks = append(tasks, pullTask{src: src, keys: keys})
	}
	rt.runPulls(ctx, addr, tasks, report)
	if err := ctx.Err(); err != nil {
		// The join was aborted mid-transfer (caller cancelled, deadline).
		// Routing must stay unflipped — the joiner holds an arbitrary prefix
		// of its ranges and must not start taking traffic for the rest.
		// runPulls already drained the pending counters; what did transfer is
		// harmless surplus the next AddShard attempt will skip.
		return report, fmt.Errorf("cluster: join of %s aborted before routing flip: %w", id, err)
	}

	// Flip routing only now: the joiner answers its first routed query from
	// a handed-off structure. Load-through stays the fallback for anything
	// the transfer missed — never the plan.
	ms.Join(id, addr)
	if m, ok := ms.Member(id); ok && wireAddr != "" {
		m.SetWireAddr(normalizeWireAddr(wireAddr, addr))
	}
	return report, nil
}

// DrainShard runs the leave-side lifecycle: inventory the leaving shard,
// compute which members replace it in each key's replica set once it
// departs, drive pulls on those successors (sourced from the leaver, which
// is still serving), and remove it from the membership last. Keys the
// leaver held without owning (stale residue from earlier changes) move
// nowhere — no member gains them by its departure.
func (rt *Router) DrainShard(ctx context.Context, id string) (*RebalanceReport, error) {
	ms := rt.m
	leaver, ok := ms.Member(id)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown shard %q", id)
	}
	rt.rm.rebalances.Inc()
	report := &RebalanceReport{}
	before := ms.Ring()
	ids := make([]string, 0, len(ms.IDs()))
	for _, mid := range ms.IDs() {
		if mid != id {
			ids = append(ids, mid)
		}
	}
	after := NewRing(ids, ms.Vnodes())
	replicas := ms.Replicas()

	keys, err := rt.memberKeys(ctx, leaver)
	if err != nil {
		// The leaver is unreachable: nothing to push. Leave anyway — the
		// successors load or rebuild through, which is the fallback path.
		report.Errors = append(report.Errors, err.Error())
		ms.Leave(id)
		return report, nil
	}
	byTarget := make(map[*Member][]server.HandoffKeyInfo)
	for _, k := range keys {
		gained, _ := DeltaOwners(before, after, replicas, KeyHash(k))
		for _, gid := range gained {
			m, ok := ms.Member(gid)
			if !ok {
				continue
			}
			byTarget[m] = append(byTarget[m], server.HandoffKeyFor(k))
			report.Ranges++
		}
	}
	rt.rm.rangesPending.Add(int64(report.Ranges))
	for target, tkeys := range byTarget {
		rt.runPulls(ctx, target.Addr(), []pullTask{{src: leaver, keys: tkeys}}, report)
	}
	ms.Leave(id)
	return report, nil
}

// PromoteHot promotes every tracked key with at least minHits recorded hits
// to R+extra replication: the extra owners — the next distinct members on
// the key's ring walk — pull the structure from a current owner, and only
// once the pull succeeds does ownersFor start returning the widened set
// (transfer before flip, again). Returns how many keys were promoted this
// call; already-promoted keys are skipped.
func (rt *Router) PromoteHot(ctx context.Context, extra int, minHits uint64) (int, error) {
	if extra < 1 {
		return 0, nil
	}
	rt.hotMu.Lock()
	var cands []store.Key
	for k, n := range rt.hotHits {
		if n >= minHits && rt.promoted[k] < extra {
			cands = append(cands, k)
		}
	}
	rt.hotMu.Unlock()
	replicas := rt.m.Replicas()
	promoted := 0
	var firstErr error
	for _, k := range cands {
		base := rt.m.OwnersN(KeyHash(k), replicas)
		wide := rt.m.OwnersN(KeyHash(k), replicas+extra)
		if len(wide) <= len(base) {
			continue // cluster is smaller than R+extra; nothing to widen onto
		}
		src := firstHealthy(base)
		if src == nil {
			continue
		}
		info := []server.HandoffKeyInfo{server.HandoffKeyFor(k)}
		ok := true
		for _, m := range wide[len(base):] {
			if _, err := rt.pullTo(ctx, m.Addr(), src, info); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		rt.hotMu.Lock()
		rt.promoted[k] = extra
		rt.hotMu.Unlock()
		rt.rm.hotPromotions.Inc()
		promoted++
	}
	return promoted, firstErr
}
