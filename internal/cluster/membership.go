package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"ftbfs/internal/server"
	"ftbfs/internal/wire"
)

// Member is one shard node known to the router. Health is maintained by
// probes (and by request outcomes observed in passing); the ring position
// depends only on the ID, so an address change on rejoin does not remap any
// keys.
type Member struct {
	ID string

	addr atomic.Pointer[string] // base URL; updated on rejoin while requests read it

	// Two independent health signals, each with its own strike counter:
	// probeDown is owned by the /readyz probes (a draining shard answers
	// probes with 503 while still serving its in-flight traffic, so
	// request successes must not override it), reqDown by request-path
	// outcomes (transport faults, 5xx) so a dead or broken shard drops to
	// the back of the attempt order between probes — and recovers from a
	// last-resort success even when probing is disabled entirely.
	probeDown     atomic.Bool
	probeFailures atomic.Int64
	reqDown       atomic.Bool
	reqFailures   atomic.Int64
	probes        atomic.Uint64

	// wireAddr is the shard's binary-protocol address, learned from its
	// /readyz responses (or set directly by an in-process cluster); empty
	// means the shard speaks HTTP only and the router routes around the
	// fast path. wireC is the lazily-dialed pooled client for that address.
	wireAddr atomic.Pointer[string]
	wireMu   sync.Mutex
	wireC    *wire.Client

	// cb is the member's circuit breaker (breaker.go): health marks reorder
	// attempts, the breaker stops spending them on a replica that keeps
	// failing. Fed by the same markRequest/markProbe observations.
	cb *breaker
}

// Addr returns the member's current base URL, e.g. "http://127.0.0.1:7001".
func (m *Member) Addr() string { return *m.addr.Load() }

func (m *Member) setAddr(a string) { m.addr.Store(&a) }

// WireAddr returns the member's known binary-protocol address, "" when the
// shard has not advertised one.
func (m *Member) WireAddr() string {
	if p := m.wireAddr.Load(); p != nil {
		return *p
	}
	return ""
}

// SetWireAddr records the shard's binary-protocol address ("" to clear it —
// a restarted shard may come back without a wire listener). Changing the
// address closes the old pooled client; the next request dials fresh.
func (m *Member) SetWireAddr(addr string) {
	if m.WireAddr() == addr {
		return
	}
	m.wireAddr.Store(&addr)
	m.wireMu.Lock()
	if m.wireC != nil && m.wireC.Addr() != addr {
		m.wireC.Close()
		m.wireC = nil
	}
	m.wireMu.Unlock()
}

// wireClient returns the pooled binary-protocol client for the member, nil
// when no wire address is known. The client survives shard restarts on the
// same address (dead connections re-dial lazily).
func (m *Member) wireClient() *wire.Client {
	addr := m.WireAddr()
	if addr == "" {
		return nil
	}
	m.wireMu.Lock()
	defer m.wireMu.Unlock()
	if m.wireC == nil || m.wireC.Addr() != addr {
		if m.wireC != nil {
			m.wireC.Close()
		}
		m.wireC = wire.NewClient(addr, 0)
	}
	return m.wireC
}

// normalizeWireAddr resolves an advertised wire address against the member's
// HTTP URL: a listener bound to the unspecified address advertises
// "[::]:port" or "0.0.0.0:port", which only the shard itself can dial — the
// router must reach it on the host it already reaches over HTTP.
func normalizeWireAddr(wireAddr, httpURL string) string {
	if wireAddr == "" {
		return ""
	}
	host, port, err := net.SplitHostPort(wireAddr)
	if err != nil {
		return wireAddr
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		if u, err := url.Parse(httpURL); err == nil && u.Hostname() != "" {
			return net.JoinHostPort(u.Hostname(), port)
		}
	}
	return wireAddr
}

// Healthy reports whether the member is routable: neither demoted by
// probes (not ready / unreachable) nor by request outcomes. New members
// start healthy (optimistically routable) until an observation says
// otherwise.
func (m *Member) Healthy() bool { return !m.probeDown.Load() && !m.reqDown.Load() }

func (m *Member) resetHealth() {
	m.probeDown.Store(false)
	m.probeFailures.Store(0)
	m.reqDown.Store(false)
	m.reqFailures.Store(0)
	// A rejoin is a fresh start for the breaker too — the restarted process
	// shares nothing with whatever tripped it.
	m.cb.onResult(true)
}

// mark folds one observation into a (down, counter) pair: recovery is
// immediate on success, marking down waits for `threshold` consecutive
// failures so one dropped packet does not eject a replica.
func mark(down *atomic.Bool, failures *atomic.Int64, ok bool, threshold int64) {
	if ok {
		failures.Store(0)
		down.Store(false)
		return
	}
	if failures.Add(1) >= threshold {
		down.Store(true)
	}
}

// markProbe records one /readyz probe outcome. A success while the breaker
// is open arms its half-open token early — probe-driven recovery.
func (m *Member) markProbe(ok bool, threshold int64) {
	mark(&m.probeDown, &m.probeFailures, ok, threshold)
	m.cb.onProbe(ok)
}

// markRequest records one proxied-request outcome, feeding both the health
// strike counter and the circuit breaker.
func (m *Member) markRequest(ok bool, threshold int64) {
	mark(&m.reqDown, &m.reqFailures, ok, threshold)
	m.cb.onResult(ok)
}

// Breaker state accessors for routing and stats (nil-safe for Members
// constructed outside Join, e.g. in tests).

func (m *Member) breakerAllow() bool                { return m.cb.Allow() }
func (m *Member) breakerOpen() bool                 { return m.cb.isOpen() }
func (m *Member) breakerSnapshot() (string, uint64) { return m.cb.snapshot() }

// Membership is the mutable shard set behind a router: members keyed by ID
// plus the current ring built from exactly those IDs. Join/Leave rebuild
// the ring; because the ring is a pure function of the sorted ID set, every
// router observing the same membership routes identically.
type Membership struct {
	replicas int
	vnodes   int

	// Breaker geometry stamped onto members as they join; NewRouter
	// overrides the defaults from its options before traffic flows.
	brThreshold int
	brCooldown  time.Duration

	mu      sync.RWMutex
	members map[string]*Member
	ring    *Ring
}

// NewMembership returns an empty membership with the given replication
// factor (minimum 1) and vnodes per member (DefaultVnodes when ≤ 0).
func NewMembership(replicas, vnodes int) *Membership {
	if replicas < 1 {
		replicas = 1
	}
	return &Membership{
		replicas:    replicas,
		vnodes:      vnodes,
		brThreshold: DefaultBreakerThreshold,
		brCooldown:  DefaultBreakerCooldown,
		members:     make(map[string]*Member),
		ring:        NewRing(nil, vnodes),
	}
}

// SetBreakerConfig retunes the breaker geometry for members joining from now
// on and resets existing members' breakers to the new shape. Zero values
// keep the defaults.
func (ms *Membership) SetBreakerConfig(threshold int, cooldown time.Duration) {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.brThreshold, ms.brCooldown = threshold, cooldown
	for _, m := range ms.members {
		m.cb = newBreaker(threshold, cooldown)
	}
}

// Replicas returns the replication factor.
func (ms *Membership) Replicas() int { return ms.replicas }

// Join adds a shard (or updates the address of a known ID — a rejoin). Only
// an ID-set change rebuilds the ring, so a shard coming back under a new
// port keeps all its key ranges.
func (ms *Membership) Join(id, addr string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if m, ok := ms.members[id]; ok {
		m.setAddr(addr)
		m.resetHealth()
		return
	}
	m := &Member{ID: id, cb: newBreaker(ms.brThreshold, ms.brCooldown)}
	m.setAddr(addr)
	ms.members[id] = m
	ms.rebuildLocked()
}

// Leave removes a shard from the membership, remapping only the key ranges
// it owned (consistent hashing's minimal-disruption property).
func (ms *Membership) Leave(id string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if _, ok := ms.members[id]; !ok {
		return
	}
	delete(ms.members, id)
	ms.rebuildLocked()
}

func (ms *Membership) rebuildLocked() {
	ids := make([]string, 0, len(ms.members))
	for id := range ms.members {
		ids = append(ids, id)
	}
	ms.ring = NewRing(ids, ms.vnodes)
}

// Members returns a snapshot of all members in ring (sorted-ID) order.
func (ms *Membership) Members() []*Member {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	out := make([]*Member, 0, len(ms.members))
	for _, id := range ms.ring.Nodes() {
		out = append(out, ms.members[id])
	}
	return out
}

// Member returns the member with the given ID.
func (ms *Membership) Member(id string) (*Member, bool) {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	m, ok := ms.members[id]
	return m, ok
}

// Owners returns the replica set of a key hash in ring order (primary
// first), regardless of health — callers reorder by health themselves so
// routing stays deterministic when everything is up.
func (ms *Membership) Owners(keyHash uint64) []*Member {
	return ms.OwnersN(keyHash, ms.replicas)
}

// OwnersN is Owners with an explicit replica count — how the router widens
// a hot key's replica set to R+k without touching the base factor.
func (ms *Membership) OwnersN(keyHash uint64, n int) []*Member {
	ms.mu.RLock()
	ids := ms.ring.Owners(keyHash, n)
	out := make([]*Member, 0, len(ids))
	for _, id := range ids {
		if m, ok := ms.members[id]; ok {
			out = append(out, m)
		}
	}
	ms.mu.RUnlock()
	return out
}

// Ring returns the current (immutable) ring — rebalancers snapshot it to
// diff against a prospective ring.
func (ms *Membership) Ring() *Ring {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	return ms.ring
}

// IDs returns the sorted member IDs (a copy of the ring's node set).
func (ms *Membership) IDs() []string {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	return append([]string(nil), ms.ring.Nodes()...)
}

// Vnodes returns the vnodes-per-member parameter, so a prospective ring can
// be built with the same geometry as the live one.
func (ms *Membership) Vnodes() int { return ms.vnodes }

// HealthyCount returns how many members are currently marked healthy.
func (ms *Membership) HealthyCount() int {
	n := 0
	for _, m := range ms.Members() {
		if m.Healthy() {
			n++
		}
	}
	return n
}

// downAfter is how many consecutive probe/request failures mark a member
// unhealthy.
const downAfter = 2

// ProbeAll probes every member once, synchronously (bounded by the
// client's timeout), and returns the number of healthy members after the
// sweep. Probes hit /readyz, not /healthz: a draining shard is alive but
// answers /readyz with 503 precisely so the router stops routing new work
// to it during its drain-grace window — "healthy" here means routable.
// Tests call ProbeAll directly; StartProber calls it on a ticker.
func (ms *Membership) ProbeAll(ctx context.Context, client *http.Client) int {
	members := ms.Members()
	var wg sync.WaitGroup
	for _, m := range members {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.probes.Add(1)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.Addr()+"/readyz", nil)
			if err != nil {
				m.markProbe(false, downAfter)
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				m.markProbe(false, downAfter)
				return
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			m.markProbe(resp.StatusCode == http.StatusOK, downAfter)
			// Probes double as wire-address discovery: /readyz advertises the
			// shard's binary-protocol listener (even while draining), so the
			// router learns — or un-learns — the fast path with no extra
			// configuration. Decode failures (an intermediary's error page)
			// leave the known address untouched.
			var rr server.ReadyResponse
			if json.Unmarshal(body, &rr) == nil {
				m.SetWireAddr(normalizeWireAddr(rr.Wire, m.Addr()))
			}
		}()
	}
	wg.Wait()
	return ms.HealthyCount()
}

// StartProber probes all members every interval until ctx is cancelled.
// Routing does not depend on probes for correctness (failed requests fail
// over to the next replica anyway); probes just move dead shards to the
// back of the attempt order before a request has to find out the hard way.
func (ms *Membership) StartProber(ctx context.Context, interval time.Duration, client *http.Client) {
	if client == nil {
		client = &http.Client{Timeout: interval}
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				ms.ProbeAll(ctx, client)
			}
		}
	}()
}

// String summarises the membership for logs.
func (ms *Membership) String() string {
	members := ms.Members()
	return fmt.Sprintf("cluster{shards=%d healthy=%d replicas=%d}", len(members), ms.HealthyCount(), ms.replicas)
}
