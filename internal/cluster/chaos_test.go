package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"ftbfs/internal/chaos"
	"ftbfs/internal/server"
	"ftbfs/internal/telemetry"
)

// The chaos differential suite: a cluster under a named fault plan must keep
// the same contract as a healthy one — every 200 matches the single-node
// oracle exactly (a fault may cost an answer, never change one), and no
// request outlives its deadline budget by more than scheduling slack.

const (
	// chaosBudget is the per-request deadline budget the router applies.
	chaosBudget = 800 * time.Millisecond
	// chaosGrace is the slack on top of the budget a request may take before
	// the suite calls it a budget overrun: handler teardown after the
	// deadline fires, response writing, and race-detector scheduling. The
	// point of the bound is catching requests that ride a fault into the
	// 30s-client-timeout (or worse, build-timeout) regime.
	chaosGrace = 1200 * time.Millisecond
)

// chaosPlanSummary is one plan's run record; CHAOS_SUMMARY names a JSON file
// the per-plan summaries are written to (uploaded as a CI artifact).
type chaosPlanSummary struct {
	Plan        string            `json:"plan"`
	Queries     int               `json:"queries"`
	OK          int               `json:"ok"`
	Errors      int               `json:"errors"`
	Batches     int               `json:"batches"`
	BatchErrors int               `json:"batch_slot_errors"`
	Builds      int               `json:"builds"`
	BuildErrors int               `json:"build_errors"`
	P50us       float64           `json:"p50_us"`
	P99us       float64           `json:"p99_us"`
	MaxUs       float64           `json:"max_us"`
	Faults      map[string]uint64 `json:"faults"`
}

// chaosPlanNames picks the plans to run: CHAOS_PLANS (comma-separated)
// overrides, -short runs a quick conn-fault subset, otherwise the full
// catalog.
func chaosPlanNames(t *testing.T) []string {
	if v := os.Getenv("CHAOS_PLANS"); v != "" {
		var out []string
		for _, p := range strings.Split(v, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			if _, ok := chaos.Named(p); !ok {
				t.Fatalf("CHAOS_PLANS names unknown plan %q (catalog: %v)", p, chaos.PlanNames())
			}
			out = append(out, p)
		}
		return out
	}
	if testing.Short() {
		return []string{"latency", "mixed"}
	}
	return chaos.PlanNames()
}

func TestChaosDifferential(t *testing.T) {
	var summaries []chaosPlanSummary
	for _, name := range chaosPlanNames(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			summaries = append(summaries, runChaosPlan(t, name))
		})
	}
	if path := os.Getenv("CHAOS_SUMMARY"); path != "" && len(summaries) > 0 {
		raw, err := json.MarshalIndent(map[string]any{
			"budget_ms": chaosBudget.Milliseconds(),
			"plans":     summaries,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func runChaosPlan(t *testing.T, name string) chaosPlanSummary {
	plan, ok := chaos.Named(name)
	if !ok {
		t.Fatalf("unknown plan %q", name)
	}
	// Deterministic per-plan seed: a failing run replays from (plan, seed).
	var seed int64 = 1
	for _, c := range name {
		seed = seed*31 + int64(c)
	}
	inj := chaos.New(plan, seed)
	inj.SetEnabled(false) // boot and fixtures run fault-free; armed below

	lc, err := StartLocal(3, LocalOptions{
		Replicas:    2,
		PersistRoot: t.TempDir(),
		Chaos:       inj,
		Router: RouterOptions{
			DefaultBudget: chaosBudget,
			// Builds are exempt from the query budget but must not ride a
			// dropped write into the default 15-minute build window.
			BuildTimeout: 10 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	fixtures := buildFixtures(t, lc.URL(), []int64{411, 412}, []int{0, 4}, 0.3)
	vfixtures := buildVertexFixtures(t, lc.URL(), 413, []int{0})
	qs := rebalanceQueries(t, lc.URL(), fixtures, vfixtures)
	batchReq, batchWant := chaosBatch(t, fixtures[0], vfixtures[0])

	defer inj.SetEnabled(false) // teardown need not fight the plan
	inj.SetEnabled(true)

	iters := 120
	if testing.Short() {
		iters = 40
	}
	hasDisk := plan.DiskWriteErrP > 0 || plan.DiskSyncErrP > 0 || plan.DiskReadErrP > 0 ||
		plan.DiskCorruptP > 0 || plan.DiskTruncP > 0
	buildEvery := 30
	if hasDisk {
		// Steady-state queries serve resident structures and never touch
		// disk; disk plans need build traffic to have anything to break.
		buildEvery = 8
	}

	// Deliberately far past the budget: the SERVER-side budget must be what
	// bounds latency, not this client.
	client := &http.Client{Timeout: 30 * time.Second}
	limit := chaosBudget + chaosGrace

	sum := chaosPlanSummary{Plan: name}
	// The same log-bucketed histogram the serving plane exposes at /metrics:
	// the suite's percentiles and production percentiles share one
	// implementation, so a chaos regression and a dashboard regression can
	// never disagree about what p99 means.
	var lat telemetry.Histogram
	buildSeed := int64(500)
	for i := 0; i < iters; i++ {
		if i%buildEvery == buildEvery-1 {
			sum.Builds++
			if !chaosBuild(client, lc.URL(), buildSeed) {
				sum.BuildErrors++
			}
			buildSeed++
			continue
		}
		if i%9 == 4 {
			sum.Batches++
			elapsed, slotErrs := chaosBatchQuery(t, name, client, lc.URL(), batchReq, batchWant)
			sum.BatchErrors += slotErrs
			lat.Observe(elapsed)
			if elapsed > limit {
				t.Errorf("plan %s: /batch-query took %v, budget %v + %v grace", name, elapsed, chaosBudget, chaosGrace)
			}
			continue
		}
		q := qs[(i*13)%len(qs)]
		start := time.Now()
		resp, err := client.Get(q.url)
		elapsed := time.Since(start)
		lat.Observe(elapsed)
		sum.Queries++
		if elapsed > limit {
			t.Errorf("plan %s: request outlived its budget: %v (budget %v + %v grace): %s",
				name, elapsed, chaosBudget, chaosGrace, q.url)
		}
		if err != nil {
			sum.Errors++
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			sum.Errors++
			continue
		}
		var dr struct {
			Dist int `json:"dist"`
		}
		if json.Unmarshal(body, &dr) != nil {
			t.Errorf("plan %s: unparseable 200 body %q for %s", name, body, q.url)
			continue
		}
		if dr.Dist != q.want {
			t.Errorf("plan %s: WRONG ANSWER %s = %d, single-node oracle says %d", name, q.url, dr.Dist, q.want)
		}
		sum.OK++
	}

	if sum.OK == 0 {
		t.Errorf("plan %s: not one of %d queries succeeded — the cluster must keep answering under fire (errors=%d)",
			name, sum.Queries, sum.Errors)
	}
	if inj.Total() == 0 {
		t.Errorf("plan %s: the injector never fired — this run tested nothing", name)
	}
	sum.Faults = inj.Counts()
	if lat.Count() > 0 {
		sum.P50us = float64(lat.Quantile(0.5)) / 1e3
		sum.P99us = float64(lat.Quantile(0.99)) / 1e3
		sum.MaxUs = float64(lat.Quantile(1)) / 1e3
	}
	t.Logf("plan %-8s queries=%d ok=%d errors=%d batches=%d(sloterrs=%d) builds=%d(failed=%d) p50=%.0fµs p99=%.0fµs max=%.0fµs faults=%v",
		name, sum.Queries, sum.OK, sum.Errors, sum.Batches, sum.BatchErrors,
		sum.Builds, sum.BuildErrors, sum.P50us, sum.P99us, sum.MaxUs, sum.Faults)
	return sum
}

// chaosBatch builds one mixed edge/vertex batch request plus its oracle
// answers, exercising graceful degradation: a faulted slot may come back as
// a per-slot error, but a slot answered with "" must match exactly.
func chaosBatch(t *testing.T, fx fixture, vf vertexFixture) (server.BatchQueryRequest, []int) {
	t.Helper()
	req := server.BatchQueryRequest{Graph: fx.fp, Source: fx.source, Eps: &fx.eps}
	var want []int
	for i := 0; i < 5 && i < len(fx.edges); i++ {
		v := (i * 11) % fx.n
		e := fx.edges[i]
		w, err := fx.oracle.DistAvoiding(v, e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		req.Queries = append(req.Queries, server.BatchQuery{V: v, Fail: e})
		want = append(want, w)
	}
	vsrc := vf.source
	for i := 0; i < 3; i++ {
		fw := 1 + (i*5)%(vf.n-1)
		if fw == vf.source {
			fw = (fw + 1) % vf.n
		}
		v := (i * 17) % vf.n
		w, err := vf.oracle.DistAvoidingVertex(v, fw)
		if err != nil {
			t.Fatal(err)
		}
		fv := fw
		req.Queries = append(req.Queries, server.BatchQuery{
			Graph: vf.fp, Source: &vsrc, V: v, FailedVertex: &fv,
		})
		want = append(want, w)
	}
	return req, want
}

// chaosBatchQuery posts the batch and checks answered slots against the
// oracle; per-slot errors (degraded slots) are tolerated and counted.
func chaosBatchQuery(t *testing.T, plan string, client *http.Client, base string, req server.BatchQueryRequest, want []int) (time.Duration, int) {
	t.Helper()
	raw, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := client.Post(base+"/batch-query", "application/json", bytes.NewReader(raw))
	elapsed := time.Since(start)
	if err != nil {
		return elapsed, len(want)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return elapsed, len(want)
	}
	var br server.BatchQueryResponse
	if json.Unmarshal(body, &br) != nil || len(br.Dists) != len(want) {
		t.Errorf("plan %s: malformed 200 /batch-query response %q", plan, body)
		return elapsed, len(want)
	}
	slotErrs := 0
	for i, d := range br.Dists {
		if len(br.Errors) == len(br.Dists) && br.Errors[i] != "" {
			slotErrs++
			continue
		}
		if d != want[i] {
			t.Errorf("plan %s: WRONG ANSWER batch slot %d = %d, oracle says %d", plan, i, d, want[i])
		}
	}
	return elapsed, slotErrs
}

// chaosBuild runs one /build of a fresh graph under fire. Failures are
// tolerated (that is the point of the faults); a 200 must have built the
// requested structure.
func chaosBuild(client *http.Client, base string, seed int64) bool {
	g, _ := clusterGraph(30, 40, seed)
	var text bytes.Buffer
	if g.Write(&text) != nil {
		return false
	}
	raw, err := json.Marshal(&server.BuildRequest{
		Graph:   text.String(),
		Sources: []int{0},
		Eps:     []float64{0.5},
	})
	if err != nil {
		return false
	}
	resp, err := client.Post(base+"/build", "application/json", bytes.NewReader(raw))
	if err != nil {
		return false
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var br server.BuildResponse
	return json.Unmarshal(body, &br) == nil && len(br.Structures) == 1
}
