package cluster

import (
	"net/http"
	"sync"
	"time"

	"ftbfs/internal/telemetry"
)

// routerMetrics is the registry behind the router's /metrics: routing
// counters (hedges, failovers, breaker activity, wire fast-path usage),
// per-route request histograms, and per-replica latency histograms. Every
// counter pointer is resolved once at NewRouter; /stats reconstructs its
// legacy JSON shape from these same series, keeping the registry the single
// source of truth.
type routerMetrics struct {
	reg *telemetry.Registry

	requests        *telemetry.Counter // HTTP requests accepted
	points          *telemetry.Counter // point queries routed (/dist, /dist-avoiding*)
	batches         *telemetry.Counter // /batch-query vectors routed
	batchQueries    *telemetry.Counter // individual batch query slots routed
	builds          *telemetry.Counter // /build fan-outs executed
	buildsCoalesced *telemetry.Counter // /build requests that shared another's flight

	// Live-graph convergence ledger: one fan-out mutates every shard holding
	// the lineage, and the rebuild counters aggregate the shards' replies so
	// /stats shows how much of the fleet's rebuild work rode the delta path.
	mutations          *telemetry.Counter // /mutate fan-outs executed
	mutationsCoalesced *telemetry.Counter // /mutate requests that shared another's flight
	mutationShards     *telemetry.Counter // shard mutations applied across all fan-outs
	mutationsDelta     *telemetry.Counter // shard structure rebuilds carried by the delta path
	mutationsFull      *telemetry.Counter // shard structure rebuilds done from scratch
	hedges             *telemetry.Counter // hedge timers that fired a second replica
	failovers          *telemetry.Counter // replica retries after a failed attempt
	wirePoints         *telemetry.Counter // point attempts answered over the binary protocol
	wireBatches        *telemetry.Counter // sub-batches answered over the binary protocol
	wireMutations      *telemetry.Counter // shard mutations answered over the binary protocol
	wireFallbacks      *telemetry.Counter // wire transport faults that fell back to HTTP
	breakerSkips       *telemetry.Counter // attempts not sent because a replica's breaker was open
	breakerForced      *telemetry.Counter // attempts forced through despite every breaker being open
	errs               *telemetry.Counter // requests answered with an error status

	rebalances      *telemetry.Counter // AddShard/DrainShard lifecycles run
	rangesPending   *telemetry.Gauge   // keys computed to move, pull not yet finished
	rangesMoved     *telemetry.Counter // keys whose pull finished
	structuresMoved *telemetry.Counter // structures installed by driven handoff pulls
	bytesMoved      *telemetry.Counter // record bytes moved by driven pulls
	hotPromotions   *telemetry.Counter // keys promoted to R+k replication

	// httpByRoute holds one outcome-labeled histogram per registered route;
	// the map is never written after NewRouter, so lookups need no lock.
	httpByRoute map[string]*telemetry.OutcomeHist

	// replicaMu guards replicaHist, keyed "<member-id>|<transport>". Replica
	// observation happens on the forward path, which already pays an HTTP or
	// wire round trip, so a mutexed map lookup is noise there.
	replicaMu   sync.Mutex
	replicaHist map[string]*telemetry.Histogram
}

// newRouterMetrics builds the router registry. Breaker state and shard
// residency are read from the membership at snapshot time rather than
// counted on the request path.
func newRouterMetrics(m *Membership, routes []string) *routerMetrics {
	reg := telemetry.NewRegistry()
	c := func(name, help string) *telemetry.Counter { return reg.Counter(name, "", help) }
	rm := &routerMetrics{
		reg:             reg,
		requests:        c("ftbfs_router_requests_total", "HTTP requests accepted by the router."),
		points:          c("ftbfs_router_point_queries_total", "Point queries routed."),
		batches:         c("ftbfs_router_batches_total", "Batch query vectors routed."),
		batchQueries:    c("ftbfs_router_batch_queries_total", "Individual batch query slots routed."),
		builds:          c("ftbfs_router_builds_total", "Build fan-outs executed."),
		buildsCoalesced: c("ftbfs_router_builds_coalesced_total", "Build requests that shared another request's fan-out."),
		hedges:          c("ftbfs_router_hedges_total", "Hedge timers that fired a second replica."),
		failovers:       c("ftbfs_router_failovers_total", "Replica retries after a failed attempt."),
		wirePoints: reg.Counter("ftbfs_router_wire_requests_total", `kind="point"`,
			"Shard requests answered over the binary protocol."),
		wireBatches: reg.Counter("ftbfs_router_wire_requests_total", `kind="batch"`,
			"Shard requests answered over the binary protocol."),
		wireMutations: reg.Counter("ftbfs_router_wire_requests_total", `kind="mutate"`,
			"Shard requests answered over the binary protocol."),
		mutations:          c("ftbfs_router_mutations_total", "Mutation fan-outs executed."),
		mutationsCoalesced: c("ftbfs_router_mutations_coalesced_total", "Mutation requests that shared another request's fan-out."),
		mutationShards:     c("ftbfs_router_mutation_shards_total", "Shard generation swaps applied across all mutation fan-outs."),
		mutationsDelta: reg.Counter("ftbfs_router_mutation_rebuilds_total", `kind="delta"`,
			"Fleet structure rebuilds on mutation, by rebuild kind."),
		mutationsFull: reg.Counter("ftbfs_router_mutation_rebuilds_total", `kind="full"`,
			"Fleet structure rebuilds on mutation, by rebuild kind."),
		wireFallbacks: c("ftbfs_router_wire_fallbacks_total", "Wire transport faults that fell back to HTTP."),
		breakerSkips:  c("ftbfs_router_breaker_skips_total", "Attempts skipped because a replica's breaker was open."),
		breakerForced: c("ftbfs_router_breaker_forced_total", "Attempts forced through despite every breaker being open."),
		errs:          c("ftbfs_router_errors_total", "Requests answered with an error status."),

		rebalances: c("ftbfs_router_rebalances_total", "Shard add/drain rebalance lifecycles run."),
		rangesPending: reg.Gauge("ftbfs_router_ranges_pending", "",
			"Key ranges computed to move whose pull has not finished."),
		rangesMoved:     c("ftbfs_router_ranges_moved_total", "Key ranges whose rebalance pull finished."),
		structuresMoved: c("ftbfs_router_structures_transferred_total", "Structures installed by driven handoff pulls."),
		bytesMoved:      c("ftbfs_router_bytes_moved_total", "Record bytes moved by driven handoff pulls."),
		hotPromotions:   c("ftbfs_router_hot_promotions_total", "Keys promoted to widened replication."),

		httpByRoute: make(map[string]*telemetry.OutcomeHist, len(routes)),
		replicaHist: make(map[string]*telemetry.Histogram),
	}
	for _, route := range routes {
		rm.httpByRoute[route] = reg.OutcomeHist("ftbfs_router_http_request_seconds",
			`route="`+route+`"`, "Router request latency by route and outcome.")
	}
	reg.GaugeFunc("ftbfs_router_shards", "", "Joined shards.", func() int64 {
		return int64(len(m.Members()))
	})
	reg.GaugeFunc("ftbfs_router_healthy_shards", "", "Joined shards currently healthy.", func() int64 {
		return int64(m.HealthyCount())
	})
	reg.CounterFunc("ftbfs_router_breaker_opens_total", "",
		"Lifetime circuit-breaker trips summed across replicas.", func() uint64 {
			var total uint64
			for _, mem := range m.Members() {
				_, opens := mem.breakerSnapshot()
				total += opens
			}
			return total
		})
	return rm
}

// observeHTTP records one finished router request into its route's
// outcome-labeled histogram; unknown routes (404s) record nothing.
func (rm *routerMetrics) observeHTTP(route string, start time.Time, status int) {
	h := rm.httpByRoute[route]
	if h == nil {
		return
	}
	if status == 0 {
		status = http.StatusOK
	}
	h.Observe(time.Since(start), telemetry.OutcomeOf(status))
}

// observeReplica records one shard attempt's round-trip latency under the
// replica's ID and transport. Histograms register lazily on a replica's
// first attempt, so joins and leaves need no registry bookkeeping.
func (rm *routerMetrics) observeReplica(id, transport string, d time.Duration) {
	key := id + "|" + transport
	rm.replicaMu.Lock()
	h := rm.replicaHist[key]
	if h == nil {
		h = rm.reg.Histogram("ftbfs_router_replica_seconds",
			`replica="`+id+`",transport="`+transport+`"`,
			"Shard attempt round-trip latency by replica and transport.")
		rm.replicaHist[key] = h
	}
	rm.replicaMu.Unlock()
	h.Observe(d)
}

// clusterStatusWriter captures the status a handler writes so the router can
// label its latency observation with the request outcome.
type clusterStatusWriter struct {
	http.ResponseWriter
	status int
}

func (w *clusterStatusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *clusterStatusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// clusterBufferedWriter additionally buffers a traced request's body so the
// span header — complete only once the handler returns — precedes the first
// body byte. Traced requests are a sampled minority; the copy never touches
// the untraced path.
type clusterBufferedWriter struct {
	clusterStatusWriter
	body []byte
}

func (w *clusterBufferedWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}

func (w *clusterBufferedWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.body = append(w.body, b...)
	return len(b), nil
}

func (w *clusterBufferedWriter) flush() {
	code := w.status
	if code == 0 {
		code = http.StatusOK
	}
	w.ResponseWriter.WriteHeader(code)
	w.ResponseWriter.Write(w.body)
}
