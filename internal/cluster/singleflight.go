package cluster

import "sync"

// flightResult is a buffered HTTP outcome shared by single-flight waiters.
type flightResult struct {
	code int
	body []byte
}

// flightGroup deduplicates concurrent identical work: the first caller of a
// key runs fn, everyone else arriving while it is in flight waits and
// shares the result. Unlike a cache, results are not retained — the next
// call after completion runs fn again (a rebuilt /build is legitimate; a
// doubled fan-out of the same one is not).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  flightResult
}

// Do runs fn under key, coalescing concurrent duplicates. shared reports
// whether this caller piggybacked on another's flight.
func (g *flightGroup) Do(key string, fn func() flightResult) (res flightResult, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.res, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// The flight must be torn down even if fn panics (net/http recovers
	// handler panics, so the process would live on with a dead flight that
	// hangs every waiter and every future call of this key forever).
	// Waiters then observe the zero flightResult; callers treat code 0 as
	// a failed flight.
	defer func() {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.res = fn()
	return c.res, false
}
