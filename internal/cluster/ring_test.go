package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ftbfs/internal/store"
)

func testKeys(n int, seed int64) []store.Key {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]store.Key, n)
	for i := range keys {
		keys[i] = store.Key{
			Graph:  rng.Uint64(),
			Source: rng.Intn(100),
			Eps:    float64(rng.Intn(8)) / 8,
		}
	}
	return keys
}

func TestRingDeterministicAcrossJoinOrder(t *testing.T) {
	ids := []string{"a", "b", "c", "d", "e"}
	r1 := NewRing(ids, 32)
	shuffled := []string{"d", "a", "e", "c", "b"}
	r2 := NewRing(shuffled, 32)
	for _, k := range testKeys(500, 1) {
		h := KeyHash(k)
		o1 := r1.Owners(h, 3)
		o2 := r2.Owners(h, 3)
		if fmt.Sprint(o1) != fmt.Sprint(o2) {
			t.Fatalf("owner sets differ for %v: %v vs %v", k, o1, o2)
		}
		if len(o1) != 3 {
			t.Fatalf("want 3 owners, got %v", o1)
		}
		seen := map[string]bool{}
		for _, id := range o1 {
			if seen[id] {
				t.Fatalf("duplicate owner in %v", o1)
			}
			seen[id] = true
		}
	}
}

// TestKeyHashNegativeZeroEps pins the routing invariant that KeyHash hashes
// exactly what the store keys: ±0 compare equal as Go map keys, so they
// must land on the same ring position.
func TestKeyHashNegativeZeroEps(t *testing.T) {
	pos := store.Key{Graph: 42, Source: 1, Eps: 0}
	neg := store.Key{Graph: 42, Source: 1, Eps: math.Copysign(0, -1)}
	if KeyHash(pos) != KeyHash(neg) {
		t.Fatalf("KeyHash(+0 eps) = %x, KeyHash(-0 eps) = %x — same store key routes to different shards",
			KeyHash(pos), KeyHash(neg))
	}
}

func TestRingDistribution(t *testing.T) {
	ids := []string{"s0", "s1", "s2", "s3"}
	r := NewRing(ids, 0) // DefaultVnodes
	counts := map[string]int{}
	keys := testKeys(4000, 2)
	for _, k := range keys {
		counts[r.Owners(KeyHash(k), 1)[0]]++
	}
	for _, id := range ids {
		// With 64 vnodes the load factor stays within a loose band; the
		// bound here only guards against a pathologically broken hash.
		if counts[id] < len(keys)/16 {
			t.Fatalf("shard %s owns %d of %d keys — distribution collapsed: %v", id, counts[id], len(keys), counts)
		}
	}
}

// TestRingMinimalRebalance is the consistent-hashing property that makes
// join/leave cheap: removing one member only remaps keys that member owned.
func TestRingMinimalRebalance(t *testing.T) {
	ids := []string{"s0", "s1", "s2", "s3", "s4"}
	before := NewRing(ids, 64)
	after := NewRing([]string{"s0", "s1", "s2", "s4"}, 64) // s3 left
	moved, owned := 0, 0
	for _, k := range testKeys(3000, 3) {
		h := KeyHash(k)
		b := before.Owners(h, 1)[0]
		a := after.Owners(h, 1)[0]
		if b == "s3" {
			owned++
			continue // expected to move somewhere
		}
		if a != b {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the departed shard moved anyway", moved)
	}
	if owned == 0 {
		t.Fatal("departed shard owned no keys — test is vacuous")
	}
}

func TestMembershipJoinLeaveRejoin(t *testing.T) {
	ms := NewMembership(2, 16)
	ms.Join("s0", "http://h0")
	ms.Join("s1", "http://h1")
	ms.Join("s2", "http://h2")
	k := testKeys(1, 4)[0]
	ownersOf := func() string {
		var ids []string
		for _, m := range ms.Owners(KeyHash(k)) {
			ids = append(ids, m.ID)
		}
		return fmt.Sprint(ids)
	}
	before := ownersOf()
	// A rejoin under a new address must not remap anything: the ring hashes
	// IDs, not addresses.
	ms.Join("s1", "http://h1-restarted")
	if got := ownersOf(); got != before {
		t.Fatalf("rejoin remapped owners: %s -> %s", before, got)
	}
	m, _ := ms.Member("s1")
	if m.Addr() != "http://h1-restarted" {
		t.Fatalf("rejoin did not update the address: %s", m.Addr())
	}
	// Leaving removes the member from every owner set.
	ms.Leave("s1")
	for _, m := range ms.Owners(KeyHash(k)) {
		if m.ID == "s1" {
			t.Fatal("departed member still owns keys")
		}
	}
	if len(ms.Members()) != 2 {
		t.Fatalf("member count %d after leave, want 2", len(ms.Members()))
	}
}

// TestDeltaOwnersExhaustive is the rebalancer's correctness table: over
// every member-set size and replication factor in range, a join must gain
// keys only on the joiner (and lose at most displaced replicas), a leave
// must lose keys only on the departed member, and a rejoin — the same ID
// set — must move nothing at all. This is the "exactly the departed ranges
// and nothing else" property AddShard/DrainShard rely on.
func TestDeltaOwnersExhaustive(t *testing.T) {
	keys := testKeys(400, 7)
	memberIDs := []string{"s0", "s1", "s2", "s3", "s4"}
	for size := 1; size <= len(memberIDs); size++ {
		base := memberIDs[:size]
		for replicas := 1; replicas <= 3; replicas++ {
			name := fmt.Sprintf("members=%d/replicas=%d", size, replicas)
			t.Run(name, func(t *testing.T) {
				before := NewRing(base, 32)

				// Join: a new member enters the ring.
				joiner := "z-joiner"
				afterJoin := NewRing(append(append([]string(nil), base...), joiner), 32)
				joinerGained := 0
				for _, k := range keys {
					h := KeyHash(k)
					gained, lost := DeltaOwners(before, afterJoin, replicas, h)
					for _, id := range gained {
						if id != joiner {
							t.Fatalf("join of %s made %s gain key %x", joiner, id, h)
						}
						joinerGained++
					}
					// The joiner displaces at most one replica per key, and
					// gains/losses pair up: a key loses an owner only because
					// the joiner pushed it out of the replica set.
					if len(gained) > 1 || len(lost) > len(gained) {
						t.Fatalf("join delta not minimal: gained=%v lost=%v", gained, lost)
					}
					// The replica set never shrinks below min(replicas, size)
					// across the join.
					want := replicas
					if size < want {
						want = size
					}
					if got := len(afterJoin.Owners(h, replicas)); got < want {
						t.Fatalf("replica set shrank across join: %d < %d", got, want)
					}
				}
				if joinerGained == 0 {
					t.Fatal("joiner gained no keys at all — vacuous")
				}

				// Leave: each member departs in turn.
				for _, dep := range base {
					var rest []string
					for _, id := range base {
						if id != dep {
							rest = append(rest, id)
						}
					}
					afterLeave := NewRing(rest, 32)
					departedLost := 0
					for _, k := range keys {
						h := KeyHash(k)
						gained, lost := DeltaOwners(before, afterLeave, replicas, h)
						for _, id := range lost {
							if id != dep {
								t.Fatalf("leave of %s made %s lose key %x", dep, id, h)
							}
							departedLost++
						}
						// Each departure admits at most one successor per key.
						if len(lost) > 1 || len(gained) > len(lost) {
							t.Fatalf("leave delta not minimal: gained=%v lost=%v", gained, lost)
						}
						// Keys the departed member did not own keep their
						// exact owner list (order included).
						if len(lost) == 0 {
							b := before.Owners(h, replicas)
							a := afterLeave.Owners(h, replicas)
							if fmt.Sprint(b) != fmt.Sprint(a) {
								t.Fatalf("unowned key remapped on leave of %s: %v -> %v", dep, b, a)
							}
						}
					}
					if size > 1 && departedLost == 0 {
						t.Fatalf("departed member %s lost no keys — vacuous", dep)
					}
				}

				// Rejoin: the same ID set (any order) is the identity delta.
				shuffled := append([]string(nil), base...)
				for i := range shuffled {
					j := (i * 3) % len(shuffled)
					shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
				}
				rejoined := NewRing(shuffled, 32)
				for _, k := range keys {
					gained, lost := DeltaOwners(before, rejoined, replicas, KeyHash(k))
					if len(gained) != 0 || len(lost) != 0 {
						t.Fatalf("rejoin moved keys: gained=%v lost=%v", gained, lost)
					}
				}
			})
		}
	}
}

func TestMemberHealthThreshold(t *testing.T) {
	m := &Member{ID: "x"}
	m.markRequest(false, 2)
	if !m.Healthy() {
		t.Fatal("single request failure marked member down (threshold is 2)")
	}
	m.markRequest(false, 2)
	if m.Healthy() {
		t.Fatal("two consecutive request failures did not mark member down")
	}
	m.markRequest(true, 2)
	if !m.Healthy() {
		t.Fatal("request success did not recover the member")
	}
	// The probe signal is independent: a draining shard keeps serving
	// requests (request signal healthy) yet its 503 probes drain it out —
	// and request successes must not cancel that.
	m.markProbe(false, 2)
	m.markProbe(false, 2)
	if m.Healthy() {
		t.Fatal("two probe failures did not mark member down")
	}
	m.markRequest(true, 2)
	if m.Healthy() {
		t.Fatal("request success overrode probe-owned readiness")
	}
	m.markProbe(true, 2)
	if !m.Healthy() {
		t.Fatal("probe success did not restore the member")
	}
}
