package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"ftbfs/internal/chaos"
	"ftbfs/internal/telemetry"
	"ftbfs/internal/wire"
)

// Observability e2e: /metrics on shard and router, /metrics/fleet
// aggregation, and trace propagation across the router -> shard boundary
// over both transports.

// getBody fetches a URL and returns its body, failing the test on transport
// errors or a non-200.
func getBody(t testing.TB, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	return string(b)
}

var promSampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[-+]?Inf|[-+]?[0-9][0-9eE.+-]*)$`)

// validateProm asserts the body parses as Prometheus text exposition
// format: every line is a comment or a well-formed sample, and every sample
// belongs to a family announced by a preceding TYPE line.
func validateProm(t testing.TB, body string) {
	t.Helper()
	typed := map[string]string{}
	samples := 0
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Fatalf("line %d: not a valid prom sample: %q", ln+1, line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		fam := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && typed[base] == "histogram" {
				fam = base
			}
		}
		if _, ok := typed[fam]; !ok {
			t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("exposition body carried no samples")
	}
}

// promValue extracts one sample value from an exposition body.
func promValue(t testing.TB, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition body", series)
	return 0
}

// TestShardAndRouterMetricsProm proves both tiers serve valid exposition
// text with the request histograms the issue promises.
func TestShardAndRouterMetricsProm(t *testing.T) {
	lc, err := StartLocal(2, LocalOptions{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fixtures := buildFixtures(t, lc.URL(), []int64{421}, []int{0}, 0.3)
	fx := fixtures[0]
	for i := 0; i < 8 && i < len(fx.edges); i++ {
		checkPoint(t, lc.URL(), fx, (i*3)%fx.n, fx.edges[i])
	}

	routerBody := getBody(t, lc.URL()+"/metrics")
	validateProm(t, routerBody)
	for _, want := range []string{
		"ftbfs_router_requests_total ",
		`ftbfs_router_http_request_seconds_count{route="/dist-avoiding",outcome="ok"}`,
		"ftbfs_router_wire_requests_total",
		"ftbfs_router_replica_seconds_count",
	} {
		if !strings.Contains(routerBody, want) {
			t.Errorf("router /metrics missing %q", want)
		}
	}
	if n := promValue(t, routerBody, "ftbfs_router_point_queries_total"); n < 8 {
		t.Errorf("router point_queries_total = %v, want >= 8", n)
	}

	sawWire := false
	for _, sh := range lc.Shards {
		body := getBody(t, sh.ts.URL+"/metrics")
		validateProm(t, body)
		for _, want := range []string{
			`ftbfs_requests_total{transport="http"}`,
			`ftbfs_requests_total{transport="wire"}`,
			"ftbfs_store_ops_total",
			"ftbfs_plan_queries_total",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("shard %s /metrics missing %q", sh.ID, want)
			}
		}
		if strings.Contains(body, `ftbfs_wire_request_seconds_count{type="dist_avoiding",outcome="ok"}`) &&
			promValue(t, body, `ftbfs_wire_request_seconds_count{type="dist_avoiding",outcome="ok"}`) > 0 {
			sawWire = true
		}
	}
	if !sawWire {
		t.Error("no shard recorded a wire dist_avoiding request — the fast path should have carried the point queries")
	}
}

// TestFleetMetricsMerge drives traffic onto both shards, scrapes their
// /metrics.json snapshots directly, and proves the router's /metrics/fleet
// serves the exact sums — and that the merged histogram's p99 equals the
// rank-based p99 of the concatenated samples, computed the pedestrian way
// (expand every bucket, sort, index).
func TestFleetMetricsMerge(t *testing.T) {
	lc, err := StartLocal(2, LocalOptions{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	// Both shards must observe requests; /healthz hits each directly so the
	// assertion cannot depend on how the ring splits fixture keys.
	for i := 0; i < 40; i++ {
		for _, sh := range lc.Shards {
			getBody(t, sh.ts.URL+"/healthz")
		}
	}

	const series = `ftbfs_http_request_seconds{route="/healthz",outcome="ok"}`
	var snaps []*telemetry.Snapshot
	var wantCount uint64
	var concatenated []int64
	for _, sh := range lc.Shards {
		var s telemetry.Snapshot
		if err := json.Unmarshal([]byte(getBody(t, sh.ts.URL+"/metrics.json")), &s); err != nil {
			t.Fatalf("shard %s /metrics.json: %v", sh.ID, err)
		}
		hs, ok := s.Hists[series]
		if !ok || hs.Count() == 0 {
			t.Fatalf("shard %s snapshot has no %s observations", sh.ID, series)
		}
		wantCount += hs.Count()
		for i, c := range hs.Buckets {
			for j := uint64(0); j < c; j++ {
				concatenated = append(concatenated, telemetry.BucketUpper(i))
			}
		}
		snaps = append(snaps, &s)
	}

	fleet := getBody(t, lc.URL()+"/metrics/fleet")
	validateProm(t, fleet)
	if n := promValue(t, fleet, "ftbfs_fleet_scraped_shards"); n != 2 {
		t.Fatalf("fleet scraped %v shards, want 2", n)
	}
	if n := promValue(t, fleet, `ftbfs_http_request_seconds_count{route="/healthz",outcome="ok"}`); uint64(n) != wantCount {
		t.Errorf("fleet healthz count = %v, want %d (sum of both shards)", n, wantCount)
	}

	// Differential: merged-bucket quantile vs sorted concatenated samples.
	merged := telemetry.Merge(snaps...)
	sort.Slice(concatenated, func(i, j int) bool { return concatenated[i] < concatenated[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := concatenated[ceilRank(q, len(concatenated))-1]
		got := merged.Hists[series].Quantile(q)
		if got != want {
			t.Errorf("merged p%v = %dns, concatenated-samples p%v = %dns", q, got, q, want)
		}
	}
}

// ceilRank returns ceil(q*n) clamped to [1, n] — the registry's quantile
// rank convention, reimplemented independently for the differential.
func ceilRank(q float64, n int) int {
	r := int(q * float64(n))
	if float64(r) < q*float64(n) {
		r++
	}
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r
}

// traceRecords decodes a /debug/traces body.
func traceRecords(t testing.TB, url string) []telemetry.TraceRecord {
	t.Helper()
	var recs []telemetry.TraceRecord
	if err := json.Unmarshal([]byte(getBody(t, url)), &recs); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return recs
}

func spanNames(rec telemetry.TraceRecord) []string {
	names := make([]string, len(rec.Spans))
	for i, sp := range rec.Spans {
		names[i] = sp.Name
	}
	return names
}

// TestTraceHeaderPropagation sends one explicitly traced point query and
// follows the ID through every hop: the response span header, the router's
// trace ring, and the serving shard's trace ring all see the same trace.
func TestTraceHeaderPropagation(t *testing.T) {
	lc, err := StartLocal(2, LocalOptions{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fx := buildFixtures(t, lc.URL(), []int64{431}, []int{0}, 0.3)[0]

	const traceID = "00000000deadbeef"
	url := fmt.Sprintf("%s/dist-avoiding?graph=%s&source=%d&eps=%g&v=%d&fu=%d&fv=%d",
		lc.URL(), fx.fp, fx.source, fx.eps, 1%fx.n, fx.edges[0][0], fx.edges[0][1])
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced query: status %d", resp.StatusCode)
	}
	spans := resp.Header.Get(telemetry.SpanHeader)
	if !strings.Contains(spans, "router.handle") {
		t.Errorf("response spans %q missing the router's own span", spans)
	}
	if !strings.Contains(spans, ":shard.handle") {
		t.Errorf("response spans %q missing a folded shard span", spans)
	}

	var routerRec *telemetry.TraceRecord
	for _, rec := range traceRecords(t, lc.URL()+"/debug/traces") {
		if rec.ID == traceID {
			rec := rec
			routerRec = &rec
		}
	}
	if routerRec == nil {
		t.Fatalf("router /debug/traces has no record for %s", traceID)
	}
	names := strings.Join(spanNames(*routerRec), ",")
	if !strings.Contains(names, "router.handle") || !strings.Contains(names, ":shard.handle") {
		t.Errorf("router trace %s spans = %s, want router.handle and a <shard>:shard.handle", traceID, names)
	}

	// The shard that served it recorded the same ID in its own ring.
	found := false
	for _, sh := range lc.Shards {
		for _, rec := range traceRecords(t, sh.ts.URL+"/debug/traces") {
			if rec.ID == traceID {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no shard /debug/traces recorded trace %s", traceID)
	}
}

// TestWireTraceFramePropagation proves the binary protocol's per-frame
// trace field carries the ID: a traced context on the wire client surfaces
// in the shard's trace ring with the same ID, no HTTP involved.
func TestWireTraceFramePropagation(t *testing.T) {
	lc, err := StartLocal(1, LocalOptions{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fx := buildFixtures(t, lc.URL(), []int64{441}, []int{0}, 0.3)[0]
	fp, err := strconv.ParseUint(fx.fp, 16, 64)
	if err != nil {
		t.Fatal(err)
	}

	sh := lc.Shards[0]
	wc := wire.NewClient(sh.Server.WireAddr(), 1)
	defer wc.Close()
	tr := telemetry.NewTrace(0xabc123)
	ctx := telemetry.WithTrace(context.Background(), tr)
	d, werr, err := wc.Point(ctx, wire.TDist, &wire.PointQuery{
		FP: fp, EpsBits: math.Float64bits(fx.eps), Source: int32(fx.source), V: 1, A: -1, B: -1,
	})
	if err != nil || werr != nil {
		t.Fatalf("wire point: %v / %v", err, werr)
	}
	if want := fx.oracle.Dist(1); int(d) != want {
		t.Fatalf("wire dist = %d, oracle says %d", d, want)
	}

	want := telemetry.FormatTraceID(0xabc123)
	found := false
	for _, rec := range traceRecords(t, sh.ts.URL+"/debug/traces") {
		if rec.ID == want && rec.Route == "wire" {
			found = true
			if !strings.Contains(strings.Join(spanNames(rec), ","), "shard.wire") {
				t.Errorf("wire trace %s spans = %v, want shard.wire", want, spanNames(rec))
			}
		}
	}
	if !found {
		t.Errorf("shard /debug/traces has no wire-route record for %s", want)
	}
}

// TestTraceSampledUnderLatencyChaos is the acceptance gate: with every
// point query sampled and the latency fault plan armed, a slow request must
// leave a retrievable trace at the router's /debug/traces whose record
// holds both router and shard spans under one ID.
func TestTraceSampledUnderLatencyChaos(t *testing.T) {
	plan, ok := chaos.Named("latency")
	if !ok {
		t.Fatal("latency plan missing from the chaos catalog")
	}
	inj := chaos.New(plan, 7)
	inj.SetEnabled(false)
	lc, err := StartLocal(2, LocalOptions{
		Replicas: 1,
		Chaos:    inj,
		Router: RouterOptions{
			DefaultBudget: 2 * time.Second,
			TraceSample:   1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fx := buildFixtures(t, lc.URL(), []int64{451}, []int{0}, 0.3)[0]
	defer inj.SetEnabled(false)
	inj.SetEnabled(true)

	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 20 && i < len(fx.edges); i++ {
		e := fx.edges[i%len(fx.edges)]
		url := fmt.Sprintf("%s/dist-avoiding?graph=%s&source=%d&eps=%g&v=%d&fu=%d&fv=%d",
			lc.URL(), fx.fp, fx.source, fx.eps, (i*3)%fx.n, e[0], e[1])
		resp, err := client.Get(url)
		if err != nil {
			continue // a fault ate the request; the trace gate only needs one survivor
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	inj.SetEnabled(false)

	recs := traceRecords(t, lc.URL()+"/debug/traces")
	if len(recs) == 0 {
		t.Fatal("router /debug/traces is empty after 20 sampled queries under the latency plan")
	}
	for _, rec := range recs {
		names := strings.Join(spanNames(rec), ",")
		if strings.Contains(names, "router.handle") && strings.Contains(names, ":shard.handle") {
			if _, ok := telemetry.ParseTraceID(rec.ID); !ok {
				t.Fatalf("trace record carries malformed ID %q", rec.ID)
			}
			return // one full router+shard trace under fire is the acceptance bar
		}
	}
	t.Errorf("no retained trace holds both router and shard spans; records: %+v", recs)
}
