package cluster

import (
	"math"
	"sort"

	"ftbfs/internal/store"
)

// DefaultVnodes is the number of virtual points each member contributes to
// the ring. More vnodes smooth the key distribution across members at the
// cost of a larger (still tiny) sorted array.
const DefaultVnodes = 64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a state byte by byte. The ring
// only has to agree with itself (routers with the same member set must
// compute identical owners), so the mixing is self-contained here.
func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

func fnvMixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// KeyHash maps a structure key onto the ring's keyspace. ε enters as its
// IEEE-754 bit pattern, so every distinct registry key hashes to a
// distinct, process-stable point. Negative zero is folded into +0 first:
// the store's map keys compare ±0 equal (Go float equality), and routing
// must hash exactly what the store keys — two bit patterns for one key
// would send queries for an ε=0 structure to shards that never built it.
// The failure model enters only for non-edge keys: an edge and a vertex
// structure of the same (graph, source) are distinct registry entries and
// hash to distinct, generally different, ring positions, while every
// pre-existing edge key keeps exactly the position it had before the Model
// dimension existed — an upgraded cluster does not remap (and thereby
// orphan) the structures its shards already hold.
func KeyHash(k store.Key) uint64 {
	eps := k.Eps
	if eps == 0 {
		eps = 0
	}
	h := uint64(fnvOffset64)
	h = fnvMix(h, k.Graph)
	h = fnvMix(h, uint64(int64(k.Source)))
	h = fnvMix(h, math.Float64bits(eps))
	h = fnvMix(h, uint64(int64(k.Alg)))
	if k.Model != store.ModelEdge {
		h = fnvMix(h, uint64(int64(k.Model)))
	}
	return h
}

// ringPoint is one virtual node: a position on the ring owned by a member.
type ringPoint struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is an immutable consistent-hash ring over member IDs. Build a new
// one whenever membership changes; lookups are lock-free.
type Ring struct {
	nodes  []string // sorted member IDs
	points []ringPoint
}

// NewRing builds a ring over the given member IDs with vnodes virtual
// points each (DefaultVnodes when ≤ 0). The input is copied and sorted, so
// any permutation of the same IDs yields an identical ring.
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	nodes := append([]string(nil), ids...)
	sort.Strings(nodes)
	r := &Ring{nodes: nodes, points: make([]ringPoint, 0, len(nodes)*vnodes)}
	for ni, id := range nodes {
		h := fnvMixString(fnvOffset64, id)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: fnvMix(h, uint64(v)), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node // total order: hash collisions stay deterministic
	})
	return r
}

// Nodes returns the sorted member IDs of the ring.
func (r *Ring) Nodes() []string { return r.nodes }

// DeltaOwners diffs one key's replica set across a membership change:
// gained lists members owning the key only after, lost only before. It is
// the rebalancer's unit of work — on a join, gained is at most the joining
// member (so a transfer touches exactly the remapped ranges and nothing
// else); on a leave, gained is the members replacing the leaver in the
// key's replica set. Both rings must share the same vnodes parameter.
func DeltaOwners(before, after *Ring, replicas int, keyHash uint64) (gained, lost []string) {
	b := before.Owners(keyHash, replicas)
	a := after.Owners(keyHash, replicas)
	inB := make(map[string]bool, len(b))
	for _, id := range b {
		inB[id] = true
	}
	inA := make(map[string]bool, len(a))
	for _, id := range a {
		inA[id] = true
	}
	for _, id := range a {
		if !inB[id] {
			gained = append(gained, id)
		}
	}
	for _, id := range b {
		if !inA[id] {
			lost = append(lost, id)
		}
	}
	return gained, lost
}

// Owners returns the first `replicas` distinct member IDs found walking the
// ring clockwise from the key's hash — the replica set of the key, primary
// first. Fewer members than replicas returns all members, still in ring
// order for the key.
func (r *Ring) Owners(keyHash uint64, replicas int) []string {
	if len(r.points) == 0 || replicas <= 0 {
		return nil
	}
	if replicas > len(r.nodes) {
		replicas = len(r.nodes)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= keyHash })
	owners := make([]string, 0, replicas)
	seen := make(map[int]bool, replicas)
	for i := 0; i < len(r.points) && len(owners) < replicas; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			owners = append(owners, r.nodes[p.node])
		}
	}
	return owners
}
