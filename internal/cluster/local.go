package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"ftbfs/internal/chaos"
	"ftbfs/internal/server"
	"ftbfs/internal/store"
	"ftbfs/internal/wire"
)

// LocalShard is one in-process shard of a LocalCluster: its own store, its
// own server, its own loopback HTTP listener plus a binary-protocol listener
// next to it. Kill/Restart flip both listeners while the store survives —
// exactly what a crashed-and-restarted shard process with a persist
// directory looks like to the router.
type LocalShard struct {
	ID     string
	Store  *store.Store
	Server *server.Server

	ts         *httptest.Server
	wireLn     net.Listener
	wireCancel context.CancelFunc
	chaos      *chaos.Injector // nil when the cluster runs fault-free
}

// startWire opens a loopback binary-protocol listener for the shard and
// advertises it on the server (so /healthz, /readyz carry it). Under a
// chaos plan the listener is wrapped at the wire layer, where injected
// corruption is legal (the v2 frame CRC catches it).
func (s *LocalShard) startWire() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	ln = s.chaos.Listener(ln, chaos.LayerWire)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = wire.Serve(ctx, ln, s.Server) }()
	s.wireLn, s.wireCancel = ln, cancel
	s.Server.SetWireAddr(addr)
	return nil
}

// startHTTP boots the shard's HTTP listener, wrapped by the chaos injector
// at the HTTP layer (all faults except byte corruption — HTTP bodies carry
// no checksum, so corrupting them could silently change answers).
func (s *LocalShard) startHTTP() {
	s.ts = httptest.NewUnstartedServer(s.Server)
	s.ts.Listener = s.chaos.Listener(s.ts.Listener, chaos.LayerHTTP)
	s.ts.Start()
}

// stopWire tears the binary listener down (and un-advertises it).
func (s *LocalShard) stopWire() {
	if s.wireCancel != nil {
		s.wireCancel()
		s.wireCancel, s.wireLn = nil, nil
	}
	s.Server.SetWireAddr("")
}

// Addr returns the shard's current base URL ("" while killed).
func (s *LocalShard) Addr() string {
	if s.ts == nil {
		return ""
	}
	return s.ts.URL
}

// LocalCluster is an in-process shard cluster on loopback: N shard servers
// plus a router, wired through real HTTP. Tests and benchmarks use it to
// exercise the exact request path of a deployed cluster — ring routing,
// hedged reads, scatter-gather, failover — without leaving the test binary.
type LocalCluster struct {
	Shards []*LocalShard
	Router *Router

	routerTS *httptest.Server
	cancel   context.CancelFunc
	opts     LocalOptions
	nextID   int
}

// LocalOptions tunes StartLocal.
type LocalOptions struct {
	// Replicas is the replication factor (default 2, capped at the shard
	// count by the ring).
	Replicas int
	// Vnodes per shard on the ring (DefaultVnodes when 0).
	Vnodes int
	// Router options (hedge delay, client, ID).
	Router RouterOptions
	// StoreCapacity per shard (0 = unlimited).
	StoreCapacity int
	// Chaos, when non-nil, runs the whole cluster under the injector's fault
	// plan: every shard's HTTP and wire listeners are wrapped (corruption
	// wire-only) and its store gets the injector's disk hooks. nil is a
	// strict no-op — the fault-free path is byte-identical to before.
	Chaos *chaos.Injector
	// PersistRoot, when non-empty, gives each shard a persist directory
	// under it (PersistRoot/<shardID>) instead of a memory-only store —
	// required for disk-fault plans to have anything to break.
	PersistRoot string
}

// StartLocal boots n shards and a router over them, all on loopback.
// Close must be called to tear everything down.
func StartLocal(n int, opts LocalOptions) (*LocalCluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one shard, got %d", n)
	}
	if opts.Replicas == 0 {
		opts.Replicas = 2
	}
	ms := NewMembership(opts.Replicas, opts.Vnodes)
	lc := &LocalCluster{opts: opts}
	for i := 0; i < n; i++ {
		sh, err := lc.bootShard()
		if err != nil {
			lc.Close()
			return nil, err
		}
		ms.Join(sh.ID, sh.ts.URL)
		// Seed the wire address directly — probes would learn it from
		// /readyz too, but tests without a prober must route the fast path
		// from the first request.
		if m, ok := ms.Member(sh.ID); ok {
			m.SetWireAddr(normalizeWireAddr(sh.Server.WireAddr(), sh.ts.URL))
		}
		lc.Shards = append(lc.Shards, sh)
	}
	lc.Router = NewRouter(ms, opts.Router)
	lc.routerTS = httptest.NewServer(lc.Router)
	return lc, nil
}

// bootShard starts a fresh shard (store, server, HTTP + wire listeners) with
// the next unused ID, without touching the membership.
func (lc *LocalCluster) bootShard() (*LocalShard, error) {
	id := fmt.Sprintf("shard%d", lc.nextID)
	lc.nextID++
	dir := ""
	if lc.opts.PersistRoot != "" {
		dir = filepath.Join(lc.opts.PersistRoot, id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	st, err := store.New(lc.opts.StoreCapacity, dir)
	if err != nil {
		return nil, err
	}
	if lc.opts.Chaos != nil {
		st.SetIOHooks(lc.opts.Chaos.StoreHooks())
	}
	srv := server.New(st)
	srv.SetIdentity("shard", id)
	sh := &LocalShard{ID: id, Store: st, Server: srv, chaos: lc.opts.Chaos}
	sh.startHTTP()
	if err := sh.startWire(); err != nil {
		sh.ts.Close()
		return nil, err
	}
	return sh, nil
}

// AddShard boots a brand-new shard and joins it through the router's
// rebalance lifecycle: structures the new shard will own transfer onto it
// before it starts taking routed traffic.
func (lc *LocalCluster) AddShard(ctx context.Context) (*LocalShard, *RebalanceReport, error) {
	sh, err := lc.bootShard()
	if err != nil {
		return nil, nil, err
	}
	report, err := lc.Router.AddShard(ctx, sh.ID, sh.ts.URL, sh.Server.WireAddr())
	if err != nil {
		sh.ts.Close()
		sh.stopWire()
		return nil, nil, err
	}
	lc.Shards = append(lc.Shards, sh)
	return sh, report, nil
}

// RemoveShard drains shard i through the router (its resident structures
// push to the members gaining them) and then tears it down for good —
// unlike KillShard, the ID leaves the ring and its ranges remap.
func (lc *LocalCluster) RemoveShard(ctx context.Context, i int) (*RebalanceReport, error) {
	sh := lc.Shards[i]
	report, err := lc.Router.DrainShard(ctx, sh.ID)
	if err != nil {
		return nil, err
	}
	if sh.ts != nil {
		sh.ts.Close()
		sh.ts = nil
	}
	sh.stopWire()
	lc.Shards = append(lc.Shards[:i], lc.Shards[i+1:]...)
	return report, nil
}

// URL returns the router's base URL — the single address clients talk to.
func (lc *LocalCluster) URL() string { return lc.routerTS.URL }

// StartProber runs the router's health prober until Close. Tests that need
// deterministic health state call ProbeAll on the membership directly
// instead.
func (lc *LocalCluster) StartProber(interval time.Duration) {
	ctx, cancel := context.WithCancel(context.Background())
	lc.cancel = cancel
	lc.Router.Membership().StartProber(ctx, interval, &http.Client{Timeout: interval})
}

// KillShard stops shard i's listener: in-flight connections drop and new
// requests fail fast, like a crashed process. The membership keeps the ID
// (the shard is expected back), so no keys remap; the router fails over.
func (lc *LocalCluster) KillShard(i int) {
	sh := lc.Shards[i]
	if sh.ts != nil {
		sh.ts.Close()
		sh.ts = nil
	}
	sh.stopWire()
}

// RestartShard brings a killed shard back on a fresh port with its store
// intact, updating the membership address (same ID, so the ring — and every
// key's owner set — is unchanged: deterministic rebalance means a rejoin
// moves nothing).
func (lc *LocalCluster) RestartShard(i int) {
	sh := lc.Shards[i]
	if sh.ts != nil {
		return
	}
	sh.startHTTP()
	_ = sh.startWire()
	ms := lc.Router.Membership()
	ms.Join(sh.ID, sh.ts.URL)
	// A restarted shard's wire listener is on a fresh port; update the
	// member so the fast path re-dials there instead of timing out on the
	// old one (probes would eventually learn it from /readyz anyway).
	if m, ok := ms.Member(sh.ID); ok {
		m.SetWireAddr(normalizeWireAddr(sh.Server.WireAddr(), sh.ts.URL))
	}
}

// Close tears down the router and every shard.
func (lc *LocalCluster) Close() {
	if lc.cancel != nil {
		lc.cancel()
	}
	if lc.routerTS != nil {
		lc.routerTS.Close()
	}
	for _, sh := range lc.Shards {
		if sh.ts != nil {
			sh.ts.Close()
		}
		sh.stopWire()
	}
}
