package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"ftbfs"
	"ftbfs/internal/server"
)

// clusterGraph builds a deterministic connected random graph and returns it
// with its edge list (the root Graph type does not expose edges).
func clusterGraph(n, extra int, seed int64) (*ftbfs.Graph, [][2]int) {
	rng := rand.New(rand.NewSource(seed))
	g := ftbfs.NewGraph(n)
	var edges [][2]int
	add := func(u, v int) {
		g.MustAddEdge(u, v)
		edges = append(edges, [2]int{u, v})
	}
	for i := 1; i < n; i++ {
		add(i, rng.Intn(i))
	}
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			add(u, v)
		}
	}
	return g, edges
}

func getJSON(t testing.TB, url string, out any) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("bad response %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

func postJSON(t testing.TB, url string, body, out any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("bad response %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

// fixture is one structure served by the cluster plus its single-node
// ground truth.
type fixture struct {
	fp     string
	source int
	eps    float64
	oracle *ftbfs.Oracle
	n      int
	// failable base-graph edges (not reinforced in the ground truth).
	edges [][2]int
}

// buildFixtures registers graphs with the cluster via the router's /build
// and builds identical single-node ground truths.
func buildFixtures(t testing.TB, url string, seeds []int64, sources []int, eps float64) []fixture {
	t.Helper()
	var out []fixture
	for _, seed := range seeds {
		g, edges := clusterGraph(60, 90, seed)
		var text bytes.Buffer
		if err := g.Write(&text); err != nil {
			t.Fatal(err)
		}
		var resp server.BuildResponse
		code, body := postJSON(t, url+"/build", server.BuildRequest{
			Graph:   text.String(),
			Sources: sources,
			Eps:     []float64{eps},
		}, &resp)
		if code != http.StatusOK {
			t.Fatalf("/build via router: %d %s", code, body)
		}
		if len(resp.Structures) != len(sources) {
			t.Fatalf("router built %d structures, want %d", len(resp.Structures), len(sources))
		}
		for _, src := range sources {
			truth, err := ftbfs.Build(g, src, eps)
			if err != nil {
				t.Fatal(err)
			}
			var failable [][2]int
			for _, e := range edges {
				if !truth.IsReinforced(e[0], e[1]) {
					failable = append(failable, e)
				}
			}
			out = append(out, fixture{
				fp:     resp.Fingerprint,
				source: src,
				eps:    eps,
				oracle: truth.Oracle(),
				n:      g.N(),
				edges:  failable,
			})
		}
	}
	return out
}

// checkPoint asserts one routed /dist-avoiding answer against the
// single-node oracle.
func checkPoint(t testing.TB, url string, fx fixture, v int, e [2]int) {
	t.Helper()
	want, err := fx.oracle.DistAvoiding(v, e[0], e[1])
	if err != nil {
		t.Fatal(err)
	}
	var dr struct {
		Dist int `json:"dist"`
	}
	q := fmt.Sprintf("%s/dist-avoiding?graph=%s&source=%d&eps=%g&v=%d&fu=%d&fv=%d",
		url, fx.fp, fx.source, fx.eps, v, e[0], e[1])
	code, body := getJSON(t, q, &dr)
	if code != http.StatusOK {
		t.Fatalf("routed /dist-avoiding: %d %s (%s)", code, body, q)
	}
	if dr.Dist != want {
		t.Fatalf("routed dist-avoiding(v=%d, fail={%d,%d}) = %d, single-node oracle says %d",
			v, e[0], e[1], dr.Dist, want)
	}
}

// TestRouterDifferentialVsSingleNode is the cluster correctness gate: every
// failure query through a 4-shard / replication-2 cluster must answer
// exactly what a single-node Oracle.DistAvoiding answers.
func TestRouterDifferentialVsSingleNode(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	fixtures := buildFixtures(t, lc.URL(), []int64{11, 12}, []int{0, 5}, 0.3)

	// Replication factor 2 really landed every structure on two stores.
	total := 0
	for _, sh := range lc.Shards {
		total += sh.Store.Len()
	}
	if want := len(fixtures) * 2; total != want {
		t.Fatalf("shards hold %d structures in total, want %d (R=2 × %d)", total, want, len(fixtures))
	}

	for _, fx := range fixtures {
		// Intact distances through the router.
		for v := 0; v < fx.n; v += 7 {
			var dr struct {
				Dist int `json:"dist"`
			}
			code, body := getJSON(t, fmt.Sprintf("%s/dist?graph=%s&source=%d&eps=%g&v=%d",
				lc.URL(), fx.fp, fx.source, fx.eps, v), &dr)
			if code != http.StatusOK {
				t.Fatalf("routed /dist: %d %s", code, body)
			}
			if want := fx.oracle.Dist(v); dr.Dist != want {
				t.Fatalf("routed dist(%d) = %d, want %d", v, dr.Dist, want)
			}
		}
		// Every failable edge, two targets each.
		for i, e := range fx.edges {
			checkPoint(t, lc.URL(), fx, (i*13)%fx.n, e)
			checkPoint(t, lc.URL(), fx, e[1], e)
		}
	}

	// An unknown graph is 404 on every replica; the router retries it as
	// possibly-cold shard state and relays the 404 when all replicas agree
	// — not a 502.
	if code, _ := getJSON(t, lc.URL()+"/dist?graph=ffffffffffffffff&v=1", nil); code != http.StatusNotFound {
		t.Fatalf("unknown graph through router: %d, want 404", code)
	}
	// A deterministic client error (bad vertex) must be relayed from the
	// first replica without burning the rest.
	var rsBefore RouterStatsResponse
	getJSON(t, lc.URL()+"/stats", &rsBefore)
	if code, _ := getJSON(t, fmt.Sprintf("%s/dist?graph=%s&eps=0.3&v=99999", lc.URL(), fixtures[0].fp), nil); code != http.StatusBadRequest {
		t.Fatalf("bad vertex through router: %d, want 400", code)
	}
	var rsAfter RouterStatsResponse
	getJSON(t, lc.URL()+"/stats", &rsAfter)
	if rsAfter.Failovers != rsBefore.Failovers {
		t.Fatalf("deterministic 400 burned replicas: failovers %d -> %d", rsBefore.Failovers, rsAfter.Failovers)
	}
}

// TestRouterBatchScatterGather drives a multi-structure batch through the
// router: slots spanning different structures (hence different shards),
// plus invalid slots that must come back as per-query errors.
func TestRouterBatchScatterGather(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fixtures := buildFixtures(t, lc.URL(), []int64{21, 22}, []int{0, 5}, 0.25)

	eps := 0.25
	req := server.BatchQueryRequest{Graph: fixtures[0].fp, Eps: &eps}
	type expect struct {
		dist int
		err  bool
	}
	var want []expect
	for fi := range fixtures {
		fx := &fixtures[fi]
		src := fx.source
		for i := 0; i < 6 && i < len(fx.edges); i++ {
			e := fx.edges[i]
			v := (i * 11) % fx.n
			req.Queries = append(req.Queries, server.BatchQuery{
				Graph: fx.fp, Source: &src, V: v, Fail: e,
			})
			d, err := fx.oracle.DistAvoiding(v, e[0], e[1])
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, expect{dist: d})
		}
	}
	// Invalid slots: bad target, non-edge, unknown structure.
	req.Queries = append(req.Queries,
		server.BatchQuery{V: 10_000, Fail: fixtures[0].edges[0]},
		server.BatchQuery{V: 1, Fail: [2]int{0, 0}},
		server.BatchQuery{Graph: "ffffffffffffffff", V: 1, Fail: fixtures[0].edges[0]},
	)
	want = append(want, expect{err: true}, expect{err: true}, expect{err: true})

	var resp server.BatchQueryResponse
	code, body := postJSON(t, lc.URL()+"/batch-query", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("routed /batch-query: %d %s", code, body)
	}
	if len(resp.Dists) != len(want) || len(resp.Errors) != len(want) {
		t.Fatalf("got %d dists / %d errors, want %d", len(resp.Dists), len(resp.Errors), len(want))
	}
	for i, w := range want {
		if w.err {
			if resp.Errors[i] == "" {
				t.Fatalf("slot %d: expected an error slot (%s)", i, body)
			}
			continue
		}
		if resp.Errors[i] != "" {
			t.Fatalf("slot %d: unexpected error %q", i, resp.Errors[i])
		}
		if resp.Dists[i] != w.dist {
			t.Fatalf("slot %d: routed %d, single-node oracle says %d", i, resp.Dists[i], w.dist)
		}
	}
}

// TestRouterSurvivesShardKillAndRejoin kills each shard in turn — the
// acceptance gate: with replication 2, every query must keep answering the
// single-node truth while any one shard is down, and after a rejoin.
func TestRouterSurvivesShardKillAndRejoin(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fixtures := buildFixtures(t, lc.URL(), []int64{31}, []int{0, 5}, 0.3)

	sample := func(label string) {
		for _, fx := range fixtures {
			for i := 0; i < len(fx.edges); i += 3 {
				e := fx.edges[i]
				checkPoint(t, lc.URL(), fx, (i*17)%fx.n, e)
			}
		}
		// A batch spanning both structures must also survive.
		eps := 0.3
		req := server.BatchQueryRequest{Eps: &eps}
		var want []int
		for fi := range fixtures {
			fx := &fixtures[fi]
			src := fx.source
			e := fx.edges[1]
			req.Queries = append(req.Queries, server.BatchQuery{Graph: fx.fp, Source: &src, V: e[0], Fail: e})
			d, err := fx.oracle.DistAvoiding(e[0], e[0], e[1])
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, d)
		}
		var resp server.BatchQueryResponse
		code, body := postJSON(t, lc.URL()+"/batch-query", req, &resp)
		if code != http.StatusOK {
			t.Fatalf("[%s] routed batch: %d %s", label, code, body)
		}
		if resp.Errors != nil {
			t.Fatalf("[%s] batch error slots with one shard down: %v", label, resp.Errors)
		}
		for i := range want {
			if resp.Dists[i] != want[i] {
				t.Fatalf("[%s] batch slot %d: %d, want %d", label, i, resp.Dists[i], want[i])
			}
		}
	}

	sample("all-up")
	for i := range lc.Shards {
		lc.KillShard(i)
		sample(fmt.Sprintf("shard%d-down", i))
		lc.RestartShard(i)
		sample(fmt.Sprintf("shard%d-rejoined", i))
	}
}

// TestRouterConcurrentDifferential hammers the router from many goroutines
// while a shard is killed and rejoined mid-flight; every answer must stay
// correct (run under -race in CI).
func TestRouterConcurrentDifferential(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fixtures := buildFixtures(t, lc.URL(), []int64{41}, []int{0}, 0.3)
	fx := fixtures[0]

	type q struct {
		v    int
		e    [2]int
		want int
	}
	var qs []q
	for i, e := range fx.edges {
		v := (i * 13) % fx.n
		d, err := fx.oracle.DistAvoiding(v, e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q{v: v, e: e, want: d})
	}

	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := w; i < len(qs)*4; i += workers {
				qq := qs[i%len(qs)]
				url := fmt.Sprintf("%s/dist-avoiding?graph=%s&source=%d&eps=0.3&v=%d&fu=%d&fv=%d",
					lc.URL(), fx.fp, fx.source, qq.v, qq.e[0], qq.e[1])
				resp, err := client.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				var dr struct {
					Dist int `json:"dist"`
				}
				err = json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d mid-churn", resp.StatusCode)
					return
				}
				if dr.Dist != qq.want {
					t.Errorf("concurrent routed dist-avoiding(v=%d, fail=%v) = %d, want %d",
						qq.v, qq.e, dr.Dist, qq.want)
					return
				}
			}
		}()
	}
	// Churn one shard at a time while the workers run: kill, let traffic
	// fail over, rejoin.
	go func() {
		defer close(stop)
		for _, i := range []int{2, 0} {
			lc.KillShard(i)
			time.Sleep(30 * time.Millisecond)
			lc.RestartShard(i)
			time.Sleep(10 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-stop
}

// TestRouterBuildSingleFlight launches identical concurrent /build requests
// and asserts exactly-once fan-out: each owning shard builds each structure
// once, no matter how many clients raced.
func TestRouterBuildSingleFlight(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	g, _ := clusterGraph(150, 300, 51)
	var text bytes.Buffer
	if err := g.Write(&text); err != nil {
		t.Fatal(err)
	}
	req := server.BuildRequest{Graph: text.String(), Sources: []int{0, 9}, Eps: []float64{0.25, 0.4}}

	const clients = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			var resp server.BuildResponse
			code, body := postJSON(t, lc.URL()+"/build", req, &resp)
			if code != http.StatusOK {
				t.Errorf("/build: %d %s", code, body)
				return
			}
			if len(resp.Structures) != 4 {
				t.Errorf("built %d structures, want 4", len(resp.Structures))
			}
		}()
	}
	close(start)
	wg.Wait()

	// Exactly-once per replica: 4 pairs × R=2 = 8 shard-side builds in
	// total, regardless of how many of the 8 clients coalesced. (Even a
	// flight miss is absorbed by the shard store's own single-flight, so
	// this holds unconditionally — the router flight just avoids the
	// redundant fan-out traffic.)
	var shardBuilds uint64
	for _, sh := range lc.Shards {
		shardBuilds += sh.Store.Stats().Builds
	}
	if shardBuilds != 8 {
		t.Fatalf("shards performed %d builds in total, want exactly 8 (4 structures × R=2)", shardBuilds)
	}
	var rs RouterStatsResponse
	if code, body := getJSON(t, lc.URL()+"/stats", &rs); code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	if rs.Builds+rs.BuildsCoalesced != clients {
		t.Fatalf("router flight accounting: %d builds + %d coalesced != %d clients",
			rs.Builds, rs.BuildsCoalesced, clients)
	}
	if rs.Builds == 0 {
		t.Fatal("router reports zero executed builds")
	}
}

func TestRouterStatsHealthReady(t *testing.T) {
	lc, err := StartLocal(3, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	var hr server.HealthResponse
	if code, body := getJSON(t, lc.URL()+"/healthz", &hr); code != http.StatusOK || !hr.OK || hr.Role != "router" {
		t.Fatalf("/healthz: %d %s", code, body)
	}
	var rr RouterReadyResponse
	if code, body := getJSON(t, lc.URL()+"/readyz", &rr); code != http.StatusOK || !rr.Ready || rr.Shards != 3 {
		t.Fatalf("/readyz: %d %s", code, body)
	}
	var rs RouterStatsResponse
	if code, body := getJSON(t, lc.URL()+"/stats", &rs); code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	if rs.Role != "router" || rs.Replicas != 2 || len(rs.Shards) != 3 {
		t.Fatalf("unexpected router stats %+v", rs)
	}
	for _, sh := range rs.Shards {
		if sh.Stats == nil || sh.Stats.Role != "shard" {
			t.Fatalf("shard stats not gathered: %+v", sh)
		}
	}

	// With every shard down and probed, the router must report not-ready.
	for i := range lc.Shards {
		lc.KillShard(i)
	}
	ctx := t.Context()
	lc.Router.Membership().ProbeAll(ctx, &http.Client{Timeout: time.Second})
	lc.Router.Membership().ProbeAll(ctx, &http.Client{Timeout: time.Second}) // second strike marks down
	if code, _ := getJSON(t, lc.URL()+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with all shards down: %d, want 503", code)
	}
	// One shard back: ready again after a probe.
	lc.RestartShard(1)
	lc.Router.Membership().ProbeAll(ctx, &http.Client{Timeout: time.Second})
	if code, _ := getJSON(t, lc.URL()+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("/readyz after rejoin: %d, want 200", code)
	}
}
