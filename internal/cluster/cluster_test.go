package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"ftbfs"
	"ftbfs/internal/server"
)

// clusterGraph builds a deterministic connected random graph and returns it
// with its edge list (the root Graph type does not expose edges).
func clusterGraph(n, extra int, seed int64) (*ftbfs.Graph, [][2]int) {
	rng := rand.New(rand.NewSource(seed))
	g := ftbfs.NewGraph(n)
	var edges [][2]int
	add := func(u, v int) {
		g.MustAddEdge(u, v)
		edges = append(edges, [2]int{u, v})
	}
	for i := 1; i < n; i++ {
		add(i, rng.Intn(i))
	}
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			add(u, v)
		}
	}
	return g, edges
}

func getJSON(t testing.TB, url string, out any) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("bad response %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

func postJSON(t testing.TB, url string, body, out any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("bad response %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

// fixture is one structure served by the cluster plus its single-node
// ground truth.
type fixture struct {
	fp     string
	source int
	eps    float64
	oracle *ftbfs.Oracle
	n      int
	// failable base-graph edges (not reinforced in the ground truth).
	edges [][2]int
}

// buildFixtures registers graphs with the cluster via the router's /build
// and builds identical single-node ground truths.
func buildFixtures(t testing.TB, url string, seeds []int64, sources []int, eps float64) []fixture {
	t.Helper()
	var out []fixture
	for _, seed := range seeds {
		g, edges := clusterGraph(60, 90, seed)
		var text bytes.Buffer
		if err := g.Write(&text); err != nil {
			t.Fatal(err)
		}
		var resp server.BuildResponse
		code, body := postJSON(t, url+"/build", server.BuildRequest{
			Graph:   text.String(),
			Sources: sources,
			Eps:     []float64{eps},
		}, &resp)
		if code != http.StatusOK {
			t.Fatalf("/build via router: %d %s", code, body)
		}
		if len(resp.Structures) != len(sources) {
			t.Fatalf("router built %d structures, want %d", len(resp.Structures), len(sources))
		}
		for _, src := range sources {
			truth, err := ftbfs.Build(g, src, eps)
			if err != nil {
				t.Fatal(err)
			}
			var failable [][2]int
			for _, e := range edges {
				if !truth.IsReinforced(e[0], e[1]) {
					failable = append(failable, e)
				}
			}
			out = append(out, fixture{
				fp:     resp.Fingerprint,
				source: src,
				eps:    eps,
				oracle: truth.Oracle(),
				n:      g.N(),
				edges:  failable,
			})
		}
	}
	return out
}

// checkPoint asserts one routed /dist-avoiding answer against the
// single-node oracle.
func checkPoint(t testing.TB, url string, fx fixture, v int, e [2]int) {
	t.Helper()
	want, err := fx.oracle.DistAvoiding(v, e[0], e[1])
	if err != nil {
		t.Fatal(err)
	}
	var dr struct {
		Dist int `json:"dist"`
	}
	q := fmt.Sprintf("%s/dist-avoiding?graph=%s&source=%d&eps=%g&v=%d&fu=%d&fv=%d",
		url, fx.fp, fx.source, fx.eps, v, e[0], e[1])
	code, body := getJSON(t, q, &dr)
	if code != http.StatusOK {
		t.Fatalf("routed /dist-avoiding: %d %s (%s)", code, body, q)
	}
	if dr.Dist != want {
		t.Fatalf("routed dist-avoiding(v=%d, fail={%d,%d}) = %d, single-node oracle says %d",
			v, e[0], e[1], dr.Dist, want)
	}
}

// TestRouterDifferentialVsSingleNode is the cluster correctness gate: every
// failure query through a 4-shard / replication-2 cluster must answer
// exactly what a single-node Oracle.DistAvoiding answers.
func TestRouterDifferentialVsSingleNode(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	fixtures := buildFixtures(t, lc.URL(), []int64{11, 12}, []int{0, 5}, 0.3)

	// Replication factor 2 really landed every structure on two stores.
	total := 0
	for _, sh := range lc.Shards {
		total += sh.Store.Len()
	}
	if want := len(fixtures) * 2; total != want {
		t.Fatalf("shards hold %d structures in total, want %d (R=2 × %d)", total, want, len(fixtures))
	}

	for _, fx := range fixtures {
		// Intact distances through the router.
		for v := 0; v < fx.n; v += 7 {
			var dr struct {
				Dist int `json:"dist"`
			}
			code, body := getJSON(t, fmt.Sprintf("%s/dist?graph=%s&source=%d&eps=%g&v=%d",
				lc.URL(), fx.fp, fx.source, fx.eps, v), &dr)
			if code != http.StatusOK {
				t.Fatalf("routed /dist: %d %s", code, body)
			}
			if want := fx.oracle.Dist(v); dr.Dist != want {
				t.Fatalf("routed dist(%d) = %d, want %d", v, dr.Dist, want)
			}
		}
		// Every failable edge, two targets each.
		for i, e := range fx.edges {
			checkPoint(t, lc.URL(), fx, (i*13)%fx.n, e)
			checkPoint(t, lc.URL(), fx, e[1], e)
		}
	}

	// An unknown graph is 404 on every replica; the router retries it as
	// possibly-cold shard state and relays the 404 when all replicas agree
	// — not a 502.
	if code, _ := getJSON(t, lc.URL()+"/dist?graph=ffffffffffffffff&v=1", nil); code != http.StatusNotFound {
		t.Fatalf("unknown graph through router: %d, want 404", code)
	}
	// A deterministic client error (bad vertex) must be relayed from the
	// first replica without burning the rest.
	var rsBefore RouterStatsResponse
	getJSON(t, lc.URL()+"/stats", &rsBefore)
	if code, _ := getJSON(t, fmt.Sprintf("%s/dist?graph=%s&eps=0.3&v=99999", lc.URL(), fixtures[0].fp), nil); code != http.StatusBadRequest {
		t.Fatalf("bad vertex through router: %d, want 400", code)
	}
	var rsAfter RouterStatsResponse
	getJSON(t, lc.URL()+"/stats", &rsAfter)
	if rsAfter.Failovers != rsBefore.Failovers {
		t.Fatalf("deterministic 400 burned replicas: failovers %d -> %d", rsBefore.Failovers, rsAfter.Failovers)
	}
}

// TestRouterBatchScatterGather drives a multi-structure batch through the
// router: slots spanning different structures (hence different shards),
// plus invalid slots that must come back as per-query errors.
func TestRouterBatchScatterGather(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fixtures := buildFixtures(t, lc.URL(), []int64{21, 22}, []int{0, 5}, 0.25)

	eps := 0.25
	req := server.BatchQueryRequest{Graph: fixtures[0].fp, Eps: &eps}
	type expect struct {
		dist int
		err  bool
	}
	var want []expect
	for fi := range fixtures {
		fx := &fixtures[fi]
		src := fx.source
		for i := 0; i < 6 && i < len(fx.edges); i++ {
			e := fx.edges[i]
			v := (i * 11) % fx.n
			req.Queries = append(req.Queries, server.BatchQuery{
				Graph: fx.fp, Source: &src, V: v, Fail: e,
			})
			d, err := fx.oracle.DistAvoiding(v, e[0], e[1])
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, expect{dist: d})
		}
	}
	// Invalid slots: bad target, non-edge, unknown structure.
	req.Queries = append(req.Queries,
		server.BatchQuery{V: 10_000, Fail: fixtures[0].edges[0]},
		server.BatchQuery{V: 1, Fail: [2]int{0, 0}},
		server.BatchQuery{Graph: "ffffffffffffffff", V: 1, Fail: fixtures[0].edges[0]},
	)
	want = append(want, expect{err: true}, expect{err: true}, expect{err: true})

	var resp server.BatchQueryResponse
	code, body := postJSON(t, lc.URL()+"/batch-query", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("routed /batch-query: %d %s", code, body)
	}
	if len(resp.Dists) != len(want) || len(resp.Errors) != len(want) {
		t.Fatalf("got %d dists / %d errors, want %d", len(resp.Dists), len(resp.Errors), len(want))
	}
	for i, w := range want {
		if w.err {
			if resp.Errors[i] == "" {
				t.Fatalf("slot %d: expected an error slot (%s)", i, body)
			}
			continue
		}
		if resp.Errors[i] != "" {
			t.Fatalf("slot %d: unexpected error %q", i, resp.Errors[i])
		}
		if resp.Dists[i] != w.dist {
			t.Fatalf("slot %d: routed %d, single-node oracle says %d", i, resp.Dists[i], w.dist)
		}
	}
}

// TestRouterSurvivesShardKillAndRejoin kills each shard in turn — the
// acceptance gate: with replication 2, every query must keep answering the
// single-node truth while any one shard is down, and after a rejoin.
func TestRouterSurvivesShardKillAndRejoin(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fixtures := buildFixtures(t, lc.URL(), []int64{31}, []int{0, 5}, 0.3)

	sample := func(label string) {
		for _, fx := range fixtures {
			for i := 0; i < len(fx.edges); i += 3 {
				e := fx.edges[i]
				checkPoint(t, lc.URL(), fx, (i*17)%fx.n, e)
			}
		}
		// A batch spanning both structures must also survive.
		eps := 0.3
		req := server.BatchQueryRequest{Eps: &eps}
		var want []int
		for fi := range fixtures {
			fx := &fixtures[fi]
			src := fx.source
			e := fx.edges[1]
			req.Queries = append(req.Queries, server.BatchQuery{Graph: fx.fp, Source: &src, V: e[0], Fail: e})
			d, err := fx.oracle.DistAvoiding(e[0], e[0], e[1])
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, d)
		}
		var resp server.BatchQueryResponse
		code, body := postJSON(t, lc.URL()+"/batch-query", req, &resp)
		if code != http.StatusOK {
			t.Fatalf("[%s] routed batch: %d %s", label, code, body)
		}
		if resp.Errors != nil {
			t.Fatalf("[%s] batch error slots with one shard down: %v", label, resp.Errors)
		}
		for i := range want {
			if resp.Dists[i] != want[i] {
				t.Fatalf("[%s] batch slot %d: %d, want %d", label, i, resp.Dists[i], want[i])
			}
		}
	}

	sample("all-up")
	for i := range lc.Shards {
		lc.KillShard(i)
		sample(fmt.Sprintf("shard%d-down", i))
		lc.RestartShard(i)
		sample(fmt.Sprintf("shard%d-rejoined", i))
	}
}

// TestRouterConcurrentDifferential hammers the router from many goroutines
// while a shard is killed and rejoined mid-flight; every answer must stay
// correct (run under -race in CI).
func TestRouterConcurrentDifferential(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fixtures := buildFixtures(t, lc.URL(), []int64{41}, []int{0}, 0.3)
	fx := fixtures[0]

	type q struct {
		v    int
		e    [2]int
		want int
	}
	var qs []q
	for i, e := range fx.edges {
		v := (i * 13) % fx.n
		d, err := fx.oracle.DistAvoiding(v, e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q{v: v, e: e, want: d})
	}

	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := w; i < len(qs)*4; i += workers {
				qq := qs[i%len(qs)]
				url := fmt.Sprintf("%s/dist-avoiding?graph=%s&source=%d&eps=0.3&v=%d&fu=%d&fv=%d",
					lc.URL(), fx.fp, fx.source, qq.v, qq.e[0], qq.e[1])
				resp, err := client.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				var dr struct {
					Dist int `json:"dist"`
				}
				err = json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d mid-churn", resp.StatusCode)
					return
				}
				if dr.Dist != qq.want {
					t.Errorf("concurrent routed dist-avoiding(v=%d, fail=%v) = %d, want %d",
						qq.v, qq.e, dr.Dist, qq.want)
					return
				}
			}
		}()
	}
	// Churn one shard at a time while the workers run: kill, let traffic
	// fail over, rejoin.
	go func() {
		defer close(stop)
		for _, i := range []int{2, 0} {
			lc.KillShard(i)
			time.Sleep(30 * time.Millisecond)
			lc.RestartShard(i)
			time.Sleep(10 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-stop
}

// TestRouterBuildSingleFlight launches identical concurrent /build requests
// and asserts exactly-once fan-out: each owning shard builds each structure
// once, no matter how many clients raced.
func TestRouterBuildSingleFlight(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	g, _ := clusterGraph(150, 300, 51)
	var text bytes.Buffer
	if err := g.Write(&text); err != nil {
		t.Fatal(err)
	}
	req := server.BuildRequest{Graph: text.String(), Sources: []int{0, 9}, Eps: []float64{0.25, 0.4}}

	const clients = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			var resp server.BuildResponse
			code, body := postJSON(t, lc.URL()+"/build", req, &resp)
			if code != http.StatusOK {
				t.Errorf("/build: %d %s", code, body)
				return
			}
			if len(resp.Structures) != 4 {
				t.Errorf("built %d structures, want 4", len(resp.Structures))
			}
		}()
	}
	close(start)
	wg.Wait()

	// Exactly-once per replica: 4 pairs × R=2 = 8 shard-side builds in
	// total, regardless of how many of the 8 clients coalesced. (Even a
	// flight miss is absorbed by the shard store's own single-flight, so
	// this holds unconditionally — the router flight just avoids the
	// redundant fan-out traffic.)
	var shardBuilds uint64
	for _, sh := range lc.Shards {
		shardBuilds += sh.Store.Stats().Builds
	}
	if shardBuilds != 8 {
		t.Fatalf("shards performed %d builds in total, want exactly 8 (4 structures × R=2)", shardBuilds)
	}
	var rs RouterStatsResponse
	if code, body := getJSON(t, lc.URL()+"/stats", &rs); code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	if rs.Builds+rs.BuildsCoalesced != clients {
		t.Fatalf("router flight accounting: %d builds + %d coalesced != %d clients",
			rs.Builds, rs.BuildsCoalesced, clients)
	}
	if rs.Builds == 0 {
		t.Fatal("router reports zero executed builds")
	}
}

func TestRouterStatsHealthReady(t *testing.T) {
	lc, err := StartLocal(3, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	var hr server.HealthResponse
	if code, body := getJSON(t, lc.URL()+"/healthz", &hr); code != http.StatusOK || !hr.OK || hr.Role != "router" {
		t.Fatalf("/healthz: %d %s", code, body)
	}
	var rr RouterReadyResponse
	if code, body := getJSON(t, lc.URL()+"/readyz", &rr); code != http.StatusOK || !rr.Ready || rr.Shards != 3 {
		t.Fatalf("/readyz: %d %s", code, body)
	}
	var rs RouterStatsResponse
	if code, body := getJSON(t, lc.URL()+"/stats", &rs); code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	if rs.Role != "router" || rs.Replicas != 2 || len(rs.Shards) != 3 {
		t.Fatalf("unexpected router stats %+v", rs)
	}
	for _, sh := range rs.Shards {
		if sh.Stats == nil || sh.Stats.Role != "shard" {
			t.Fatalf("shard stats not gathered: %+v", sh)
		}
	}

	// With every shard down and probed, the router must report not-ready.
	for i := range lc.Shards {
		lc.KillShard(i)
	}
	ctx := t.Context()
	lc.Router.Membership().ProbeAll(ctx, &http.Client{Timeout: time.Second})
	lc.Router.Membership().ProbeAll(ctx, &http.Client{Timeout: time.Second}) // second strike marks down
	if code, _ := getJSON(t, lc.URL()+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with all shards down: %d, want 503", code)
	}
	// One shard back: ready again after a probe.
	lc.RestartShard(1)
	lc.Router.Membership().ProbeAll(ctx, &http.Client{Timeout: time.Second})
	if code, _ := getJSON(t, lc.URL()+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("/readyz after rejoin: %d, want 200", code)
	}
}

// TestRouterVertexDifferential drives the vertex failure model end to end
// through a 4-shard / R=2 cluster: /build with vertexSources fans the graph
// and the vertex structures onto the ring, then every failable vertex of
// the graph is queried through the router — point reads on
// /dist-avoiding-vertex and a mixed edge+vertex /batch-query — and checked
// against a local reference oracle, including while a shard is down and
// after it rejoins.
func TestRouterVertexDifferential(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	g, _ := clusterGraph(40, 60, 21)
	var text bytes.Buffer
	if err := g.Write(&text); err != nil {
		t.Fatal(err)
	}
	const source = 0
	var br server.BuildResponse
	code, body := postJSON(t, lc.URL()+"/build", server.BuildRequest{
		Graph:         text.String(),
		Sources:       []int{source},
		Eps:           []float64{0.3},
		VertexSources: []int{source},
	}, &br)
	if code != http.StatusOK {
		t.Fatalf("/build: %d %s", code, body)
	}
	if len(br.VertexStructures) != 1 {
		t.Fatalf("built %d vertex structures, want 1", len(br.VertexStructures))
	}

	// Replication factor 2 landed the vertex structure on two shard stores.
	fpParsed := uint64(0)
	if _, err := fmt.Sscanf(br.Fingerprint, "%016x", &fpParsed); err != nil {
		t.Fatal(err)
	}
	holders := 0
	for _, sh := range lc.Shards {
		if _, ok := sh.Store.GetVertex(fpParsed, source); ok {
			holders++
		}
	}
	if holders != 2 {
		t.Fatalf("%d shards hold the vertex structure, want 2 (R=2)", holders)
	}

	ref, err := ftbfs.BuildVertex(g, source)
	if err != nil {
		t.Fatal(err)
	}
	ro := ref.Oracle()
	n := g.N()
	checkAll := func(phase string) {
		t.Helper()
		for w := 0; w < n; w++ {
			if w == source {
				continue
			}
			for _, v := range []int{w, (w * 13) % n, (w + 1) % n} {
				want, err := ro.DistAvoidingVertex(v, w)
				if err != nil {
					t.Fatal(err)
				}
				var dr struct {
					Dist int `json:"dist"`
				}
				code, body := getJSON(t, fmt.Sprintf("%s/dist-avoiding-vertex?graph=%s&source=%d&v=%d&fw=%d",
					lc.URL(), br.Fingerprint, source, v, w), &dr)
				if code != http.StatusOK {
					t.Fatalf("%s: routed vertex query (v=%d, w=%d): %d %s", phase, v, w, code, body)
				}
				if dr.Dist != want {
					t.Fatalf("%s: routed dist(v=%d | w=%d failed) = %d, want %d", phase, v, w, dr.Dist, want)
				}
			}
		}
	}
	checkAll("all-up")

	// Kill each shard in turn: every vertex key keeps a live replica.
	for i := range lc.Shards {
		lc.KillShard(i)
		checkAll(fmt.Sprintf("shard%d-down", i))
		lc.RestartShard(i)
	}
	checkAll("after-rejoin")

	// Mixed-model batch through the scatter-gather path: edge and vertex
	// slots interleaved, plus a bad vertex slot erroring individually.
	est, err := ftbfs.Build(g, source, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	eo := est.Oracle()
	var failable [][2]int
	for _, e := range est.Edges() {
		if !est.IsReinforced(e[0], e[1]) {
			failable = append(failable, e)
		}
	}
	eps := 0.3
	req := server.BatchQueryRequest{Graph: br.Fingerprint, Eps: &eps}
	type expect struct {
		dist int
		bad  bool
	}
	var expects []expect
	for j := 0; j < 32; j++ {
		if j%2 == 0 {
			w := 1 + j%(n-1)
			v := (j * 7) % n
			fw := w
			req.Queries = append(req.Queries, server.BatchQuery{V: v, FailedVertex: &fw})
			want, err := ro.DistAvoidingVertex(v, w)
			if err != nil {
				t.Fatal(err)
			}
			expects = append(expects, expect{dist: want})
		} else {
			e := failable[j%len(failable)]
			v := (j * 11) % n
			req.Queries = append(req.Queries, server.BatchQuery{V: v, Fail: e})
			want, err := eo.DistAvoiding(v, e[0], e[1])
			if err != nil {
				t.Fatal(err)
			}
			expects = append(expects, expect{dist: want})
		}
	}
	srcFail := source
	req.Queries = append(req.Queries, server.BatchQuery{V: 1, FailedVertex: &srcFail})
	expects = append(expects, expect{bad: true})

	var resp server.BatchQueryResponse
	code, body = postJSON(t, lc.URL()+"/batch-query", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	if len(resp.Dists) != len(expects) {
		t.Fatalf("batch: %d dists for %d slots", len(resp.Dists), len(expects))
	}
	for i, ex := range expects {
		if ex.bad {
			if resp.Errors == nil || resp.Errors[i] == "" {
				t.Fatalf("batch slot %d: bad slot did not error", i)
			}
			continue
		}
		if resp.Errors != nil && resp.Errors[i] != "" {
			t.Fatalf("batch slot %d errored: %s", i, resp.Errors[i])
		}
		if resp.Dists[i] != ex.dist {
			t.Fatalf("batch slot %d: dist %d, want %d", i, resp.Dists[i], ex.dist)
		}
	}
}

// TestRouterVertexConcurrentChurn mixes concurrent routed vertex queries
// with shard kill/restart churn; run under -race in CI. Answers must either
// match the reference or fail with a transport-visible error status — never
// silently differ.
func TestRouterVertexConcurrentChurn(t *testing.T) {
	lc, err := StartLocal(3, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	g, _ := clusterGraph(30, 45, 22)
	var text bytes.Buffer
	if err := g.Write(&text); err != nil {
		t.Fatal(err)
	}
	var br server.BuildResponse
	code, body := postJSON(t, lc.URL()+"/build", server.BuildRequest{
		Graph:         text.String(),
		VertexSources: []int{0},
	}, &br)
	if code != http.StatusOK {
		t.Fatalf("/build: %d %s", code, body)
	}
	ref, err := ftbfs.BuildVertex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	ro := ref.Oracle()
	want := make([][]int, n)
	for w := 1; w < n; w++ {
		want[w] = make([]int, n)
		for v := 0; v < n; v++ {
			d, err := ro.DistAvoidingVertex(v, w)
			if err != nil {
				t.Fatal(err)
			}
			want[w][v] = d
		}
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			lc.KillShard(i % len(lc.Shards))
			time.Sleep(5 * time.Millisecond)
			lc.RestartShard(i % len(lc.Shards))
			i++
			time.Sleep(5 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for gid := 0; gid < 4; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + gid)))
			client := &http.Client{Timeout: 5 * time.Second}
			for iter := 0; iter < 150; iter++ {
				w := 1 + rng.Intn(n-1)
				v := rng.Intn(n)
				resp, err := client.Get(fmt.Sprintf("%s/dist-avoiding-vertex?graph=%s&v=%d&fw=%d",
					lc.URL(), br.Fingerprint, v, w))
				if err != nil {
					continue // router itself unreachable mid-churn: not a correctness bug
				}
				var dr struct {
					Dist int `json:"dist"`
				}
				deco := json.NewDecoder(resp.Body)
				code := resp.StatusCode
				decErr := deco.Decode(&dr)
				resp.Body.Close()
				if code != http.StatusOK {
					continue // visible failure is acceptable under churn
				}
				if decErr != nil {
					select {
					case errc <- fmt.Errorf("undecodable 200: %v", decErr):
					default:
					}
					return
				}
				if dr.Dist != want[w][v] {
					select {
					case errc <- fmt.Errorf("silent wrong answer (v=%d, w=%d): %d != %d", v, w, dr.Dist, want[w][v]):
					default:
					}
					return
				}
			}
		}(gid)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestRouterWireFastPathCountersAndFallback pins down how queries actually
// travel: with every shard speaking the binary protocol the router's
// wire_points/wire_batches counters move (the fast path is really taken, not
// silently HTTP), and when the wire listeners die while HTTP stays up the
// router falls back per request — counted, and still answer-correct.
func TestRouterWireFastPathCountersAndFallback(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fixtures := buildFixtures(t, lc.URL(), []int64{41}, []int{0, 5}, 0.3)

	stats := func() RouterStatsResponse {
		var rs RouterStatsResponse
		if code, body := getJSON(t, lc.URL()+"/stats", &rs); code != http.StatusOK {
			t.Fatalf("/stats: %d %s", code, body)
		}
		return rs
	}
	sample := func(label string) {
		for _, fx := range fixtures {
			for i := 0; i < len(fx.edges); i += 4 {
				checkPoint(t, lc.URL(), fx, (i*19)%fx.n, fx.edges[i])
			}
		}
		eps := 0.3
		fx := fixtures[0]
		src := fx.source
		e := fx.edges[0]
		want, err := fx.oracle.DistAvoiding(e[1], e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		var resp server.BatchQueryResponse
		req := server.BatchQueryRequest{Eps: &eps, Queries: []server.BatchQuery{
			{Graph: fx.fp, Source: &src, V: e[1], Fail: e},
		}}
		code, body := postJSON(t, lc.URL()+"/batch-query", req, &resp)
		if code != http.StatusOK {
			t.Fatalf("[%s] routed batch: %d %s", label, code, body)
		}
		if resp.Errors != nil || len(resp.Dists) != 1 || resp.Dists[0] != want {
			t.Fatalf("[%s] batch answer %v / %v, want [%d]", label, resp.Dists, resp.Errors, want)
		}
	}

	// All shards speak wire: the fast path carries both points and batches.
	before := stats()
	sample("all-wire")
	after := stats()
	if after.WirePoints <= before.WirePoints {
		t.Fatalf("wire_points did not move: %d -> %d (points answered over HTTP?)", before.WirePoints, after.WirePoints)
	}
	if after.WireBatches <= before.WireBatches {
		t.Fatalf("wire_batches did not move: %d -> %d", before.WireBatches, after.WireBatches)
	}
	if after.WireFallbacks != before.WireFallbacks {
		t.Fatalf("healthy cluster fell back to HTTP %d times", after.WireFallbacks-before.WireFallbacks)
	}

	// Kill only the binary listeners; the members still hold the stale wire
	// addresses, so each request tries the fast path, fails, and falls back
	// to HTTP — correctness must not depend on the wire at all.
	for _, sh := range lc.Shards {
		sh.stopWire()
	}
	before = stats()
	sample("wire-down")
	after = stats()
	if after.WireFallbacks <= before.WireFallbacks {
		t.Fatalf("wire_fallbacks did not move with dead wire listeners: %d -> %d",
			before.WireFallbacks, after.WireFallbacks)
	}

	// A probe sweep un-learns the dead wire addresses from /readyz, after
	// which the router routes HTTP-first without burning a dial per request.
	ms := lc.Router.Membership()
	ms.ProbeAll(context.Background(), &http.Client{Timeout: 2 * time.Second})
	before = stats()
	sample("wire-unlearned")
	after = stats()
	if after.WireFallbacks != before.WireFallbacks {
		t.Fatalf("router still dialing un-advertised wire: fallbacks %d -> %d",
			before.WireFallbacks, after.WireFallbacks)
	}

	// Restarted listeners are re-discovered by the next sweep and the fast
	// path resumes.
	for _, sh := range lc.Shards {
		if err := sh.startWire(); err != nil {
			t.Fatal(err)
		}
	}
	ms.ProbeAll(context.Background(), &http.Client{Timeout: 2 * time.Second})
	before = stats()
	sample("wire-back")
	after = stats()
	if after.WirePoints <= before.WirePoints {
		t.Fatalf("fast path did not resume after restart: wire_points %d -> %d",
			before.WirePoints, after.WirePoints)
	}
}
