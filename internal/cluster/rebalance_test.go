package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ftbfs"
	"ftbfs/internal/server"
	"ftbfs/internal/store"
)

// vertexFixture is a vertex-failure structure served by the cluster plus its
// single-node ground truth.
type vertexFixture struct {
	fp     string
	fpU    uint64
	source int
	oracle *ftbfs.VertexOracle
	n      int
}

// buildVertexFixtures registers one graph and a vertex structure per source
// through the router's /build.
func buildVertexFixtures(t testing.TB, url string, seed int64, sources []int) []vertexFixture {
	t.Helper()
	g, _ := clusterGraph(40, 60, seed)
	var text bytes.Buffer
	if err := g.Write(&text); err != nil {
		t.Fatal(err)
	}
	var br server.BuildResponse
	code, body := postJSON(t, url+"/build", server.BuildRequest{
		Graph:         text.String(),
		VertexSources: sources,
	}, &br)
	if code != http.StatusOK {
		t.Fatalf("/build vertex: %d %s", code, body)
	}
	var fpU uint64
	if _, err := fmt.Sscanf(br.Fingerprint, "%016x", &fpU); err != nil {
		t.Fatal(err)
	}
	var out []vertexFixture
	for _, src := range sources {
		ref, err := ftbfs.BuildVertex(g, src)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, vertexFixture{
			fp: br.Fingerprint, fpU: fpU, source: src, oracle: ref.Oracle(), n: g.N(),
		})
	}
	return out
}

// edgeKey converts an edge fixture to its store key.
func edgeKey(t testing.TB, fx fixture) store.Key {
	t.Helper()
	var fpU uint64
	if _, err := fmt.Sscanf(fx.fp, "%016x", &fpU); err != nil {
		t.Fatal(err)
	}
	return store.Key{Graph: fpU, Source: fx.source, Eps: fx.eps}
}

// rebalanceQuery is one precomputed routed query with its ground truth. The
// oracles are not goroutine-safe (query scratch buffers), so churn tests
// precompute every (url, want) pair serially and let workers replay them.
type rebalanceQuery struct {
	url  string
	want int
}

// rebalanceQueries interleaves edge and vertex queries over every fixture.
func rebalanceQueries(t testing.TB, base string, fixtures []fixture, vfixtures []vertexFixture) []rebalanceQuery {
	t.Helper()
	var qs []rebalanceQuery
	for _, fx := range fixtures {
		for i, e := range fx.edges {
			v := (i * 13) % fx.n
			want, err := fx.oracle.DistAvoiding(v, e[0], e[1])
			if err != nil {
				t.Fatal(err)
			}
			qs = append(qs, rebalanceQuery{
				url: fmt.Sprintf("%s/dist-avoiding?graph=%s&source=%d&eps=%g&v=%d&fu=%d&fv=%d",
					base, fx.fp, fx.source, fx.eps, v, e[0], e[1]),
				want: want,
			})
		}
	}
	for _, vf := range vfixtures {
		for i := 0; i < 24; i++ {
			fw := 1 + (i % (vf.n - 1))
			if fw == vf.source {
				continue
			}
			v := (i * 7) % vf.n
			want, err := vf.oracle.DistAvoidingVertex(v, fw)
			if err != nil {
				t.Fatal(err)
			}
			qs = append(qs, rebalanceQuery{
				url: fmt.Sprintf("%s/dist-avoiding-vertex?graph=%s&source=%d&v=%d&fw=%d",
					base, vf.fp, vf.source, v, fw),
				want: want,
			})
		}
	}
	// Shuffle edge and vertex queries together deterministically so every
	// worker stride mixes both failure models.
	for i := len(qs) - 1; i > 0; i-- {
		j := (i * 7919) % (i + 1)
		qs[i], qs[j] = qs[j], qs[i]
	}
	return qs
}

// TestRouterRebalanceJoinDrainDifferential is the elastic-cluster gate: with
// mixed edge/vertex traffic running, a shard joins (its gained structures
// transfer onto it before routing flips) and another drains out (its
// structures push to successors before it leaves). Every answer along the
// way must match the single-node oracles, and afterwards the router's /stats
// and the new shard's store must prove the structures moved — not load-through.
func TestRouterRebalanceJoinDrainDifferential(t *testing.T) {
	lc, err := StartLocal(3, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	fixtures := buildFixtures(t, lc.URL(), []int64{61, 62, 63}, []int{0, 5}, 0.3)
	vfixtures := buildVertexFixtures(t, lc.URL(), 64, []int{0, 1, 2, 3})
	qs := rebalanceQueries(t, lc.URL(), fixtures, vfixtures)

	var wrong, errs atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[i%len(qs)]
				resp, err := client.Get(q.url)
				if err != nil {
					errs.Add(1)
					continue
				}
				var dr struct {
					Dist int `json:"dist"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					errs.Add(1)
					continue
				}
				if dr.Dist != q.want {
					wrong.Add(1)
					t.Errorf("routed %s = %d, want %d mid-rebalance", q.url, dr.Dist, q.want)
					return
				}
			}
		}()
	}

	ctx := context.Background()
	time.Sleep(20 * time.Millisecond) // let traffic establish

	// A shard joins mid-traffic: transfer-before-flip.
	sh, joinReport, err := lc.AddShard(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(joinReport.Errors) != 0 {
		t.Fatalf("join rebalance errors: %v", joinReport.Errors)
	}
	if joinReport.Rejoin {
		t.Fatal("fresh shard reported as rejoin")
	}
	if joinReport.Transferred < 1 {
		t.Fatalf("joiner received %d structures (ranges=%d) — transfer never ran", joinReport.Transferred, joinReport.Ranges)
	}
	time.Sleep(20 * time.Millisecond)

	// Another shard leaves mid-traffic: drain pushes to successors first.
	drainReport, err := lc.RemoveShard(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(drainReport.Errors) != 0 {
		t.Fatalf("drain rebalance errors: %v", drainReport.Errors)
	}
	time.Sleep(20 * time.Millisecond)

	close(stop)
	wg.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d wrong answers during rebalance", n)
	}
	if n := errs.Load(); n != 0 {
		t.Fatalf("%d request errors during join/drain (no shard was killed — failover should mask the churn)", n)
	}

	// The router's stats must confirm the rebalance actually moved bytes.
	var rs RouterStatsResponse
	if code, body := getJSON(t, lc.URL()+"/stats", &rs); code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	if rs.Rebalances != 2 {
		t.Fatalf("stats report %d rebalances, want 2 (one join, one drain)", rs.Rebalances)
	}
	if rs.StructuresTransferred < 1 || rs.BytesMoved == 0 {
		t.Fatalf("stats report %d structures / %d bytes moved — load-through masked a broken handoff",
			rs.StructuresTransferred, rs.BytesMoved)
	}
	if rs.RangesPending != 0 {
		t.Fatalf("stats report %d ranges still pending after both rebalances", rs.RangesPending)
	}

	// The joined shard serves from handed-off structures, not load-through:
	// it holds structures, performed zero builds, and answers a held key
	// correctly when queried directly.
	st := sh.Store.Stats()
	if st.Builds != 0 {
		t.Fatalf("new shard performed %d builds — structures must arrive by handoff", st.Builds)
	}
	if st.HandoffsIn < 1 {
		t.Fatalf("new shard counted %d handoffs in", st.HandoffsIn)
	}
	served := false
	for _, fx := range fixtures {
		if !sh.Store.Has(edgeKey(t, fx)) {
			continue
		}
		e := fx.edges[0]
		checkPoint(t, sh.Addr(), fx, e[1], e)
		served = true
		break
	}
	if !served {
		// All transferred keys were vertex keys; prove one of those instead.
		for _, vf := range vfixtures {
			if !sh.Store.Has(store.VertexKey(vf.fpU, vf.source)) {
				continue
			}
			w := 1 + vf.source%2
			if w == vf.source {
				w++
			}
			want, err := vf.oracle.DistAvoidingVertex(w, w)
			if err != nil {
				t.Fatal(err)
			}
			var dr struct {
				Dist int `json:"dist"`
			}
			code, body := getJSON(t, fmt.Sprintf("%s/dist-avoiding-vertex?graph=%s&source=%d&v=%d&fw=%d",
				sh.Addr(), vf.fp, vf.source, w, w), &dr)
			if code != http.StatusOK {
				t.Fatalf("direct vertex query on joined shard: %d %s", code, body)
			}
			if dr.Dist != want {
				t.Fatalf("joined shard answers %d, oracle says %d", dr.Dist, want)
			}
			served = true
			break
		}
	}
	if !served {
		t.Fatalf("joined shard holds none of the fixtures (transferred=%d)", joinReport.Transferred)
	}
	if after := sh.Store.Stats(); after.Builds != 0 {
		t.Fatal("direct query on the joined shard triggered a build — it was not serving the handed-off structure")
	}
}

// soakPhase aggregates one phase of the churn soak.
type soakPhase struct {
	Phase   string  `json:"phase"`
	Queries uint64  `json:"queries"`
	Errors  uint64  `json:"errors"`
	Wrong   uint64  `json:"wrong"`
	P50us   float64 `json:"p50_us"`
	P99us   float64 `json:"p99_us"`
}

// soakSampler collects per-phase latency/error samples from many workers.
type soakSampler struct {
	mu        sync.Mutex
	phase     string
	order     []string
	latencies map[string][]time.Duration
	errors    map[string]uint64
	wrong     map[string]uint64
}

func newSoakSampler() *soakSampler {
	return &soakSampler{
		latencies: make(map[string][]time.Duration),
		errors:    make(map[string]uint64),
		wrong:     make(map[string]uint64),
	}
}

func (s *soakSampler) setPhase(p string) {
	s.mu.Lock()
	s.phase = p
	// Phases repeat across soak iterations; aggregate each name once.
	seen := false
	for _, o := range s.order {
		if o == p {
			seen = true
			break
		}
	}
	if !seen {
		s.order = append(s.order, p)
	}
	s.mu.Unlock()
}

func (s *soakSampler) record(d time.Duration, ok, correct bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.phase
	if !ok {
		s.errors[p]++
		return
	}
	if !correct {
		s.wrong[p]++
		return
	}
	s.latencies[p] = append(s.latencies[p], d)
}

func (s *soakSampler) summary() []soakPhase {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []soakPhase
	for _, p := range s.order {
		lat := append([]time.Duration(nil), s.latencies[p]...)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		ph := soakPhase{
			Phase:   p,
			Queries: uint64(len(lat)) + s.errors[p] + s.wrong[p],
			Errors:  s.errors[p],
			Wrong:   s.wrong[p],
		}
		if len(lat) > 0 {
			ph.P50us = float64(lat[len(lat)/2].Microseconds())
			ph.P99us = float64(lat[len(lat)*99/100].Microseconds())
		}
		out = append(out, ph)
	}
	return out
}

// TestChurnSoak runs mixed edge/vertex traffic through a cluster that joins
// and drains shards in a loop for a configurable duration, recording
// per-phase latency and error counts. CI runs it short on PRs and extended
// on the nightly schedule via CHURN_SOAK_DURATION; CHURN_SOAK_SUMMARY names
// a JSON file to write the per-phase summary to (uploaded as a CI artifact).
func TestChurnSoak(t *testing.T) {
	duration := 2 * time.Second
	if v := os.Getenv("CHURN_SOAK_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("bad CHURN_SOAK_DURATION %q: %v", v, err)
		}
		duration = d
	}
	if testing.Short() {
		duration = 500 * time.Millisecond
	}

	lc, err := StartLocal(3, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fixtures := buildFixtures(t, lc.URL(), []int64{71, 72}, []int{0, 5}, 0.3)
	vfixtures := buildVertexFixtures(t, lc.URL(), 73, []int{0, 1})
	qs := rebalanceQueries(t, lc.URL(), fixtures, vfixtures)

	sampler := newSoakSampler()
	sampler.setPhase("baseline")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[i%len(qs)]
				start := time.Now()
				resp, err := client.Get(q.url)
				elapsed := time.Since(start)
				if err != nil {
					sampler.record(elapsed, false, false)
					continue
				}
				var dr struct {
					Dist int `json:"dist"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					sampler.record(elapsed, false, false)
					continue
				}
				sampler.record(elapsed, true, dr.Dist == q.want)
			}
		}()
	}

	// Churn loop: join a shard, drain an old one, settle; repeat until the
	// soak budget is spent. Every iteration grows then shrinks the cluster
	// back to 3 shards.
	ctx := context.Background()
	deadline := time.Now().Add(duration)
	slice := duration / 8
	if slice < 50*time.Millisecond {
		slice = 50 * time.Millisecond
	}
	iterations := 0
	for time.Now().Before(deadline) {
		time.Sleep(slice) // baseline / settled traffic

		sampler.setPhase("join")
		if _, report, err := lc.AddShard(ctx); err != nil {
			t.Fatal(err)
		} else if len(report.Errors) != 0 {
			t.Fatalf("join errors: %v", report.Errors)
		}
		time.Sleep(slice)

		sampler.setPhase("drain")
		if report, err := lc.RemoveShard(ctx, 0); err != nil {
			t.Fatal(err)
		} else if len(report.Errors) != 0 {
			t.Fatalf("drain errors: %v", report.Errors)
		}
		time.Sleep(slice)

		sampler.setPhase("settled")
		iterations++
	}
	close(stop)
	wg.Wait()

	summary := sampler.summary()
	var totalWrong, totalErrs, totalQ uint64
	for _, ph := range summary {
		totalWrong += ph.Wrong
		totalErrs += ph.Errors
		totalQ += ph.Queries
		t.Logf("phase %-8s queries=%d errors=%d wrong=%d p50=%.0fµs p99=%.0fµs",
			ph.Phase, ph.Queries, ph.Errors, ph.Wrong, ph.P50us, ph.P99us)
	}
	if path := os.Getenv("CHURN_SOAK_SUMMARY"); path != "" {
		raw, err := json.MarshalIndent(map[string]any{
			"duration":   duration.String(),
			"iterations": iterations,
			"queries":    totalQ,
			"phases":     summary,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if totalWrong != 0 {
		t.Fatalf("%d wrong answers across %d soak iterations", totalWrong, iterations)
	}
	if totalErrs != 0 {
		t.Fatalf("%d request errors across %d soak iterations (join/drain churn must be invisible)", totalErrs, iterations)
	}
	if totalQ == 0 || iterations == 0 {
		t.Fatalf("vacuous soak: %d queries, %d iterations", totalQ, iterations)
	}

	// After the soak the cluster must be quiescent and the handoff machinery
	// demonstrably used.
	var rs RouterStatsResponse
	if code, body := getJSON(t, lc.URL()+"/stats", &rs); code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	if rs.RangesPending != 0 {
		t.Fatalf("%d ranges pending after soak", rs.RangesPending)
	}
	if rs.StructuresTransferred == 0 {
		t.Fatal("soak completed without a single structure transfer")
	}
}

// TestPromoteHotWidensReplicaSet drives the R+k promotion path: after enough
// recorded hits a key's replica set widens by one, the extra owner receives
// the structure by handoff (never building), and routed reads keep answering
// correctly from the widened set.
func TestPromoteHotWidensReplicaSet(t *testing.T) {
	lc, err := StartLocal(4, LocalOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fixtures := buildFixtures(t, lc.URL(), []int64{81}, []int{0}, 0.3)
	fx := fixtures[0]

	// Heat the key up past the threshold.
	for i := 0; i < 12; i++ {
		e := fx.edges[i%len(fx.edges)]
		checkPoint(t, lc.URL(), fx, (i*5)%fx.n, e)
	}
	ctx := context.Background()
	n, err := lc.Router.PromoteHot(ctx, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("promoted %d keys, want exactly 1 (only one key is hot)", n)
	}
	// Idempotent: a second sweep promotes nothing new.
	if n, err := lc.Router.PromoteHot(ctx, 1, 10); err != nil || n != 0 {
		t.Fatalf("second sweep promoted %d (err=%v)", n, err)
	}

	// The structure now resides on R+1 = 3 shards, the extra copy by handoff.
	k := edgeKey(t, fx)
	holders, handoffs := 0, uint64(0)
	for _, sh := range lc.Shards {
		if sh.Store.Has(k) {
			holders++
			handoffs += sh.Store.Stats().HandoffsIn
		}
	}
	if holders != 3 {
		t.Fatalf("%d shards hold the hot key, want 3 (R=2 + 1)", holders)
	}
	if handoffs != 1 {
		t.Fatalf("%d handoff installs among holders, want 1 (the promoted copy)", handoffs)
	}

	// Routing sees the widened set and answers stay correct.
	var rs RouterStatsResponse
	if code, body := getJSON(t, lc.URL()+"/stats", &rs); code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	if rs.HotPromotions != 1 || rs.PromotedKeys != 1 {
		t.Fatalf("stats: hot_promotions=%d promoted_keys=%d, want 1/1", rs.HotPromotions, rs.PromotedKeys)
	}
	for i := 0; i < len(fx.edges); i += 2 {
		e := fx.edges[i]
		checkPoint(t, lc.URL(), fx, (i*11)%fx.n, e)
	}
}
