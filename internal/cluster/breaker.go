package cluster

import (
	"sync"
	"time"
)

// Per-replica circuit breaker. Health marks (membership.go) reorder the
// attempt list; the breaker goes further and stops spending attempts on a
// replica that keeps failing, so a dead shard costs the request path one
// strike burst and then nothing until it proves itself again.
//
// States:
//
//	closed    — requests flow; `threshold` consecutive failures trip it open.
//	open      — requests are skipped. After `cooldown` (or a successful
//	            /readyz probe, whichever first) the breaker arms a single
//	            probe token and moves to half-open.
//	half-open — exactly one request is let through. Success closes the
//	            breaker; failure re-opens it and restarts the cooldown.
//
// Allow consumes the half-open probe token, so callers must only call it
// when they will actually send the request.

// DefaultBreakerThreshold is how many consecutive request failures trip a
// replica's breaker open. It is above downAfter: health demotion reorders
// first, the breaker stops attempts only on sustained failure.
const DefaultBreakerThreshold = 5

// DefaultBreakerCooldown is how long an open breaker waits before arming a
// half-open probe on its own (a successful readiness probe arms it sooner).
const DefaultBreakerCooldown = 2 * time.Second

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

type breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	probing   bool   // half-open token already handed out
	opens     uint64 // lifetime transitions into open (stats)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may be sent to this replica right now.
// In half-open it hands out the single probe token; callers that get true
// must follow up with onResult so the token is resolved.
func (b *breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// onResult folds one real request outcome (sent to this replica) into the
// state machine.
func (b *breaker) onResult(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = breakerClosed
		b.failures = 0
		b.probing = false
		return
	}
	b.failures++
	switch b.state {
	case breakerClosed:
		if b.failures >= b.threshold {
			b.trip()
		}
	case breakerHalfOpen:
		// The probe failed: straight back to open, cooldown restarts.
		b.trip()
	case breakerOpen:
		// A forced or straggler attempt failed while open; refresh the
		// cooldown so sustained failure keeps the breaker firmly open.
		b.openedAt = time.Now()
	}
}

// trip moves to open; callers hold b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = time.Now()
	b.probing = false
	b.opens++
}

// onProbe folds a readiness-probe outcome in: a successful probe on an open
// breaker arms the half-open token immediately instead of waiting out the
// cooldown — the prober already proved the node answers.
func (b *breaker) onProbe(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok && b.state == breakerOpen {
		b.state = breakerHalfOpen
		b.probing = false
	}
}

// snapshot returns the state name and lifetime open count for stats.
func (b *breaker) snapshot() (state string, opens uint64) {
	if b == nil {
		return breakerClosed.String(), 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.opens
}

// isOpen reports whether the breaker would currently refuse a request
// without consuming anything — selection uses it to detect the all-open
// case before deciding to force an attempt.
func (b *breaker) isOpen() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return time.Since(b.openedAt) < b.cooldown
	case breakerHalfOpen:
		return b.probing
	default:
		return false
	}
}
