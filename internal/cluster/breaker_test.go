package cluster

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestBreakerStateMachine walks the closed → open → half-open → closed
// lifecycle through both recovery paths: probe-driven (onProbe arms the
// half-open token early) and cooldown-driven (Allow arms it once the
// cooldown elapses).
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(3, 50*time.Millisecond)
	if !b.Allow() {
		t.Fatal("fresh breaker must allow")
	}
	b.onResult(false)
	b.onResult(false)
	if s, _ := b.snapshot(); s != "closed" {
		t.Fatalf("two failures (< threshold 3) tripped the breaker: %s", s)
	}
	b.onResult(false)
	if s, opens := b.snapshot(); s != "open" || opens != 1 {
		t.Fatalf("after 3 failures breaker = %s (opens=%d), want open/1", s, opens)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
	if !b.isOpen() {
		t.Fatal("isOpen = false on a freshly-tripped breaker")
	}

	// Probe-driven recovery: a successful readiness probe arms the half-open
	// token without waiting out the cooldown.
	b.onProbe(true)
	if s, _ := b.snapshot(); s != "half-open" {
		t.Fatalf("after a good probe breaker = %s, want half-open", s)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused its single probe request")
	}
	if b.Allow() {
		t.Fatal("half-open breaker handed out a second probe token")
	}
	b.onResult(false) // the probe failed: straight back to open
	if s, opens := b.snapshot(); s != "open" || opens != 2 {
		t.Fatalf("failed probe left breaker = %s (opens=%d), want open/2", s, opens)
	}

	// Cooldown-driven recovery: once the cooldown elapses, Allow itself
	// transitions to half-open and hands out the token.
	time.Sleep(60 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("elapsed cooldown did not arm a probe request")
	}
	if s, _ := b.snapshot(); s != "half-open" {
		t.Fatalf("post-cooldown Allow left breaker = %s, want half-open", s)
	}
	b.onResult(true)
	if s, _ := b.snapshot(); s != "closed" {
		t.Fatalf("successful probe left breaker = %s, want closed", s)
	}
	if !b.Allow() {
		t.Fatal("recovered breaker must allow")
	}

	// The failure counter is consecutive: a success in between resets it.
	b.onResult(false)
	b.onResult(false)
	b.onResult(true)
	b.onResult(false)
	b.onResult(false)
	if s, _ := b.snapshot(); s != "closed" {
		t.Fatalf("non-consecutive failures tripped the breaker: %s", s)
	}
}

// TestBreakerNilSafe: Members constructed outside Join (tests, zero values)
// have no breaker; every method must behave as a permanently-closed one.
func TestBreakerNilSafe(t *testing.T) {
	var b *breaker
	if !b.Allow() {
		t.Fatal("nil breaker refused a request")
	}
	b.onResult(false)
	b.onProbe(true)
	if b.isOpen() {
		t.Fatal("nil breaker reports open")
	}
	if s, opens := b.snapshot(); s != "closed" || opens != 0 {
		t.Fatalf("nil breaker snapshot = %s/%d, want closed/0", s, opens)
	}
}

// TestBreakerOpensAndRecovers drives the full lifecycle through a real
// cluster: a killed shard's breaker trips open after the configured strike
// count (visible in /stats, with skip/forced counters moving), a successful
// readiness probe against the recovered shard arms half-open, and the next
// routed query closes it — answering correctly.
func TestBreakerOpensAndRecovers(t *testing.T) {
	lc, err := StartLocal(1, LocalOptions{Replicas: 1, Router: RouterOptions{
		HedgeDelay:       -1,
		RetryBackoff:     -1, // no backoff: each query is exactly one strike
		BreakerThreshold: 3,
		// Long cooldown so recovery below is provably probe-driven, not the
		// cooldown timer firing mid-test.
		BreakerCooldown: time.Minute,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fx := buildFixtures(t, lc.URL(), []int64{91}, []int{0}, 0.3)[0]
	checkPoint(t, lc.URL(), fx, 5%fx.n, fx.edges[0])

	m, ok := lc.Router.Membership().Member("shard0")
	if !ok {
		t.Fatal("shard0 not in membership")
	}

	lc.KillShard(0)
	q := fmt.Sprintf("%s/dist-avoiding?graph=%s&source=%d&eps=%g&v=%d&fu=%d&fv=%d",
		lc.URL(), fx.fp, fx.source, fx.eps, 1, fx.edges[0][0], fx.edges[0][1])
	// 3 failures trip the breaker; two more queries while open exercise the
	// skip-then-forced path (a single-owner key always forces one attempt —
	// an answer beats a guaranteed refusal).
	for i := 0; i < 5; i++ {
		if code, body := getJSON(t, q, nil); code == http.StatusOK {
			t.Fatalf("query %d against the killed single-shard cluster succeeded: %s", i, body)
		}
	}
	if state, opens := m.breakerSnapshot(); state != "open" || opens < 1 {
		t.Fatalf("after 5 failed queries breaker = %s (opens=%d), want open", state, opens)
	}
	var stats RouterStatsResponse
	if code, body := getJSON(t, lc.URL()+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	if len(stats.Shards) != 1 || stats.Shards[0].Breaker != "open" || stats.Shards[0].BreakerOpens < 1 {
		t.Fatalf("/stats shard breaker = %+v, want open with opens >= 1", stats.Shards)
	}
	if stats.BreakerSkips < 1 || stats.BreakerForced < 1 {
		t.Fatalf("/stats breaker_skips=%d breaker_forced=%d, want both >= 1",
			stats.BreakerSkips, stats.BreakerForced)
	}

	// The shard process comes back on the same identity. Deliberately NOT a
	// membership rejoin (which resets the breaker as a fresh start) — the
	// router must discover recovery through its own probes and traffic.
	sh := lc.Shards[0]
	sh.startHTTP()
	if err := sh.startWire(); err != nil {
		t.Fatal(err)
	}
	m.setAddr(sh.ts.URL)
	m.SetWireAddr(normalizeWireAddr(sh.Server.WireAddr(), sh.ts.URL))
	if state, _ := m.breakerSnapshot(); state != "open" {
		t.Fatalf("breaker = %s after restart without rejoin, want still open", state)
	}

	// Probe-driven recovery: one good /readyz probe arms the half-open token.
	lc.Router.Membership().ProbeAll(context.Background(), &http.Client{Timeout: 2 * time.Second})
	if state, _ := m.breakerSnapshot(); state != "half-open" {
		t.Fatalf("breaker = %s after a successful probe, want half-open", state)
	}

	// The single half-open probe request flows, answers correctly, and
	// closes the breaker.
	checkPoint(t, lc.URL(), fx, 2%fx.n, fx.edges[1%len(fx.edges)])
	if state, _ := m.breakerSnapshot(); state != "closed" {
		t.Fatalf("breaker = %s after a successful probe request, want closed", state)
	}
}
