// Package vertexft extends the repository to single VERTEX failures: a
// vertex fault-tolerant BFS structure H ⊆ G satisfies
//
//	dist(s, v, H \ {w}) ≤ dist(s, v, G \ {w})
//
// for every vertex v and every failed vertex w ≠ s. The paper treats edge
// failures; vertex faults are the natural companion problem it cites
// (Parter, DISC'14 [16]; Parter–Peleg ESA'13 handles both). The
// construction mirrors the edge baseline: the BFS tree plus the last edge
// of a replacement path for every pair ⟨v, w⟩ with w on π(s,v), justified
// by the vertex analogue of Observation 2.2.
package vertexft

import (
	"fmt"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
)

// Structure is a vertex fault-tolerant BFS structure.
type Structure struct {
	G     *graph.Graph
	S     int
	Edges *graph.EdgeSet

	// Pairs counts the ⟨v,w⟩ pairs that required adding a new replacement
	// last edge — pairs already protected by a tree edge or by an edge a
	// previous pair purchased are not counted, so Pairs == |H| − |T0|.
	Pairs int
}

// Workspace holds the reusable scratch of Build: the restricted-BFS
// scratch, the per-failure distance vector, the banned-vertex set, the
// packed children adjacency of T0 and the descendant walk stack. Mirroring
// core.Workspace, one workspace serves any number of builds (batch
// pre-building every source of a graph, the store's build-through) without
// re-allocating the O(n) state per call. A Workspace is not safe for
// concurrent use.
type Workspace struct {
	n      int
	sc     *bfs.Scratch
	dist   []int32
	banned *graph.VertexSet
	stack  []int32

	// Children of T0 in CSR form: the children of v occupy
	// childList[childStart[v]:childStart[v+1]], filled in BFS order so the
	// descendant walk is deterministic. Packing replaces the O(n) per-vertex
	// slices a tree.Tree would allocate per build.
	childStart []int32 // len n+1
	childList  []int32 // len n
}

// NewWorkspace returns an empty workspace; buffers are sized lazily by the
// first build that uses it.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensure sizes the workspace for graphs with n vertices.
func (ws *Workspace) ensure(n int) {
	if ws.n == n && ws.sc != nil {
		return
	}
	ws.n = n
	ws.sc = bfs.NewScratch(n)
	ws.dist = make([]int32, n)
	ws.banned = graph.NewVertexSet(n)
	ws.childStart = make([]int32, n+1)
	ws.childList = make([]int32, n)
}

// fillChildren packs T0's children lists into the workspace CSR. Children
// appear in BFS order within each row — the same order a tree.Tree would
// list them, so the descendant walk of BuildWith is order-identical.
func (ws *Workspace) fillChildren(bt *bfs.Tree) {
	for i := range ws.childStart {
		ws.childStart[i] = 0
	}
	for _, v := range bt.Order {
		if p := bt.Parent[v]; p >= 0 {
			ws.childStart[p+1]++
		}
	}
	for i := 1; i < len(ws.childStart); i++ {
		ws.childStart[i] += ws.childStart[i-1]
	}
	// Fill in BFS order, bumping a per-row cursor stored in childStart,
	// then shift the (now end-of-row) offsets back to row starts — the
	// classic in-place counting sort, no temporary cursor array.
	for _, v := range bt.Order {
		if p := bt.Parent[v]; p >= 0 {
			ws.childList[ws.childStart[p]] = v
			ws.childStart[p]++
		}
	}
	// childStart[v] now holds the END of row v; shift back to starts.
	for i := len(ws.childStart) - 1; i > 0; i-- {
		ws.childStart[i] = ws.childStart[i-1]
	}
	ws.childStart[0] = 0
}

// children returns the packed T0 children of v (BFS order).
func (ws *Workspace) children(v int32) []int32 {
	return ws.childList[ws.childStart[v]:ws.childStart[v+1]]
}

// Build constructs the vertex FT-BFS structure for (g, s) with a private
// workspace; use BuildWith to recycle one across calls.
func Build(g *graph.Graph, s int) (*Structure, error) {
	return BuildWith(g, s, NewWorkspace())
}

// BuildWith constructs the vertex FT-BFS structure for (g, s). For every
// non-source vertex w it runs one BFS on G\{w} and, for every descendant v
// of w in T0 that stays reachable, ensures some edge (u,v) with
// dist(s,u,G\{w})+1 = dist(s,v,G\{w}) is present in H — a tree edge, an
// edge purchased for an earlier pair, or failing both the canonical
// min-index replacement. The result is deterministic and identical to
// Build; ws only recycles scratch buffers across calls.
func BuildWith(g *graph.Graph, s int, ws *Workspace) (*Structure, error) {
	if !g.Frozen() {
		return nil, fmt.Errorf("vertexft: graph must be frozen")
	}
	if s < 0 || s >= g.N() {
		return nil, fmt.Errorf("vertexft: source %d out of range", s)
	}
	bt := bfs.From(g, s)
	h := bt.EdgeSet(g.M())
	st := &Structure{G: g, S: s, Edges: h}

	ws.ensure(g.N())
	ws.fillChildren(bt)
	sc, dist, banned := ws.sc, ws.dist, ws.banned
	stack := ws.stack[:0]
	for w := 0; w < g.N(); w++ {
		if w == s || bt.Dist[w] < 0 || len(ws.children(int32(w))) == 0 {
			continue // failing a leaf of T0 affects nobody's tree path
		}
		banned.Clear()
		banned.Add(int32(w))
		sc.DistancesAvoiding(g, s, bfs.Restriction{BannedEdge: graph.NoEdge, BannedVertices: banned}, dist)
		// walk the strict descendants of w
		stack = stack[:0]
		stack = append(stack, ws.children(int32(w))...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack = append(stack, ws.children(v)...)
			target := dist[v]
			if target == bfs.Unreachable {
				continue // w disconnects v: vacuous
			}
			// Already last-protected by an edge of H? Consulting H — not just
			// the tree edges — is what keeps the structure sparse: a
			// replacement edge purchased for an earlier failed vertex (or an
			// earlier descendant of this one) protects every later pair it
			// happens to satisfy, so no second edge is bought for it.
			cand := int32(-1)
			protected := false
			for _, a := range g.Neighbors(int(v)) {
				if a.To == int32(w) || dist[a.To] == bfs.Unreachable || dist[a.To]+1 != target {
					continue
				}
				if h.Contains(a.ID) {
					protected = true
					break
				}
				if cand == -1 {
					cand = a.To // adjacency sorted ⇒ first is min-index
				}
			}
			if protected {
				continue
			}
			if cand == -1 {
				return nil, fmt.Errorf("vertexft: no replacement last edge for ⟨v=%d, w=%d⟩", v, w)
			}
			st.Pairs++
			h.Add(g.EdgeIDOf(int(cand), int(v)))
		}
	}
	ws.stack = stack
	return st, nil
}

// Size returns |E(H)|.
func (st *Structure) Size() int { return st.Edges.Len() }

// Violation is a breach of the vertex FT-BFS contract.
type Violation struct {
	Failed int32 // failed vertex w
	Vertex int32
	InH    int32
	InG    int32
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("vertex %d failed, vertex %d: dist in H\\w = %d > dist in G\\w = %d",
		v.Failed, v.Vertex, v.InH, v.InG)
}

// Verify exhaustively checks the contract over all single vertex failures;
// limit caps the number of reported violations (0 = unlimited).
func Verify(st *Structure, limit int) []Violation {
	g := st.G
	scG := bfs.NewScratch(g.N())
	scH := bfs.NewScratch(g.N())
	distG := make([]int32, g.N())
	distH := make([]int32, g.N())
	banned := graph.NewVertexSet(g.N())
	var out []Violation
	for w := 0; w < g.N(); w++ {
		if w == st.S {
			continue
		}
		banned.Clear()
		banned.Add(int32(w))
		scG.DistancesAvoiding(g, st.S, bfs.Restriction{BannedEdge: graph.NoEdge, BannedVertices: banned}, distG)
		scH.DistancesAvoiding(g, st.S, bfs.Restriction{BannedEdge: graph.NoEdge, BannedVertices: banned, AllowedEdges: st.Edges}, distH)
		for v := int32(0); v < int32(g.N()); v++ {
			if v == int32(w) || distG[v] == bfs.Unreachable {
				continue
			}
			if distH[v] == bfs.Unreachable || distH[v] > distG[v] {
				out = append(out, Violation{Failed: int32(w), Vertex: v, InH: distH[v], InG: distG[v]})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
