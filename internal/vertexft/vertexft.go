// Package vertexft extends the repository to single VERTEX failures: a
// vertex fault-tolerant BFS structure H ⊆ G satisfies
//
//	dist(s, v, H \ {w}) ≤ dist(s, v, G \ {w})
//
// for every vertex v and every failed vertex w ≠ s. The paper treats edge
// failures; vertex faults are the natural companion problem it cites
// (Parter, DISC'14 [16]; Parter–Peleg ESA'13 handles both). The
// construction mirrors the edge baseline: the BFS tree plus the last edge
// of a replacement path for every pair ⟨v, w⟩ with w on π(s,v), justified
// by the vertex analogue of Observation 2.2.
package vertexft

import (
	"fmt"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
	"ftbfs/internal/tree"
)

// Structure is a vertex fault-tolerant BFS structure.
type Structure struct {
	G     *graph.Graph
	S     int
	Edges *graph.EdgeSet

	// Pairs counts the ⟨v,w⟩ pairs that required a new last edge.
	Pairs int
}

// Build constructs the vertex FT-BFS structure for (g, s). For every
// non-source vertex w it runs one BFS on G\{w} and, for every descendant v
// of w in T0 that stays reachable, ensures some edge (u,v) with
// dist(s,u,G\{w})+1 = dist(s,v,G\{w}) is present (the canonical min-index
// u is chosen when T0 provides none).
func Build(g *graph.Graph, s int) (*Structure, error) {
	if !g.Frozen() {
		return nil, fmt.Errorf("vertexft: graph must be frozen")
	}
	if s < 0 || s >= g.N() {
		return nil, fmt.Errorf("vertexft: source %d out of range", s)
	}
	bt := bfs.From(g, s)
	t := tree.Build(g, bt)
	h := bt.EdgeSet(g.M())
	st := &Structure{G: g, S: s, Edges: h}

	sc := bfs.NewScratch(g.N())
	dist := make([]int32, g.N())
	banned := graph.NewVertexSet(g.N())
	treeEdges := bt.EdgeSet(g.M())
	var stack []int32
	for w := 0; w < g.N(); w++ {
		if w == s || t.Depth[w] < 0 || len(t.Children(int32(w))) == 0 {
			continue // failing a leaf of T0 affects nobody's tree path
		}
		banned.Clear()
		banned.Add(int32(w))
		sc.DistancesAvoiding(g, s, bfs.Restriction{BannedEdge: graph.NoEdge, BannedVertices: banned}, dist)
		// walk the strict descendants of w
		stack = stack[:0]
		stack = append(stack, t.Children(int32(w))...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack = append(stack, t.Children(v)...)
			target := dist[v]
			if target == bfs.Unreachable {
				continue // w disconnects v: vacuous
			}
			st.Pairs++
			// already last-protected by a tree edge?
			cand := int32(-1)
			protected := false
			for _, a := range g.Neighbors(int(v)) {
				if a.To == int32(w) || dist[a.To] == bfs.Unreachable || dist[a.To]+1 != target {
					continue
				}
				if treeEdges.Contains(a.ID) {
					protected = true
					break
				}
				if cand == -1 {
					cand = a.To // adjacency sorted ⇒ first is min-index
				}
			}
			if protected {
				continue
			}
			if cand == -1 {
				return nil, fmt.Errorf("vertexft: no replacement last edge for ⟨v=%d, w=%d⟩", v, w)
			}
			h.Add(g.EdgeIDOf(int(cand), int(v)))
		}
	}
	return st, nil
}

// Size returns |E(H)|.
func (st *Structure) Size() int { return st.Edges.Len() }

// Violation is a breach of the vertex FT-BFS contract.
type Violation struct {
	Failed int32 // failed vertex w
	Vertex int32
	InH    int32
	InG    int32
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("vertex %d failed, vertex %d: dist in H\\w = %d > dist in G\\w = %d",
		v.Failed, v.Vertex, v.InH, v.InG)
}

// Verify exhaustively checks the contract over all single vertex failures;
// limit caps the number of reported violations (0 = unlimited).
func Verify(st *Structure, limit int) []Violation {
	g := st.G
	scG := bfs.NewScratch(g.N())
	scH := bfs.NewScratch(g.N())
	distG := make([]int32, g.N())
	distH := make([]int32, g.N())
	banned := graph.NewVertexSet(g.N())
	var out []Violation
	for w := 0; w < g.N(); w++ {
		if w == st.S {
			continue
		}
		banned.Clear()
		banned.Add(int32(w))
		scG.DistancesAvoiding(g, st.S, bfs.Restriction{BannedEdge: graph.NoEdge, BannedVertices: banned}, distG)
		scH.DistancesAvoiding(g, st.S, bfs.Restriction{BannedEdge: graph.NoEdge, BannedVertices: banned, AllowedEdges: st.Edges}, distH)
		for v := int32(0); v < int32(g.N()); v++ {
			if v == int32(w) || distG[v] == bfs.Unreachable {
				continue
			}
			if distH[v] == bfs.Unreachable || distH[v] > distG[v] {
				out = append(out, Violation{Failed: int32(w), Vertex: v, InH: distH[v], InG: distG[v]})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}
