package vertexft

import (
	"math"
	"testing"

	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
)

func families() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"cycle":       gen.Cycle(20),
		"grid":        gen.Grid(6, 6),
		"torus":       gen.Torus(5, 5),
		"hypercube":   gen.Hypercube(5),
		"random":      gen.RandomConnected(50, 80, 1),
		"gnp":         gen.GNPConnected(60, 0.08, 2),
		"lowerbound":  gen.LowerBoundParams(2, 3, 5).G,
		"cliquechain": gen.CliqueChain(15),
		"star":        gen.Star(12),
		"path":        gen.PathGraph(15),
	}
}

func TestBuildValidAcrossFamilies(t *testing.T) {
	for name, g := range families() {
		st, err := Build(g, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if viol := Verify(st, 3); len(viol) != 0 {
			t.Fatalf("%s: contract violated: %v", name, viol)
		}
		if st.Size() > g.M() {
			t.Fatalf("%s: |H|=%d exceeds m=%d", name, st.Size(), g.M())
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(graph.New(3), 0); err == nil {
		t.Fatal("unfrozen accepted")
	}
	g := gen.Cycle(5)
	if _, err := Build(g, -1); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := Build(g, 7); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestDifferentSources(t *testing.T) {
	g := gen.RandomConnected(40, 60, 9)
	for s := 0; s < 8; s++ {
		st, err := Build(g, s)
		if err != nil {
			t.Fatalf("source %d: %v", s, err)
		}
		if viol := Verify(st, 1); len(viol) != 0 {
			t.Fatalf("source %d: %v", s, viol)
		}
	}
}

// Vertex FT-BFS structures are also Θ(n^{3/2}) in the worst case; check the
// generous upper envelope on all families.
func TestSizeEnvelope(t *testing.T) {
	for name, g := range families() {
		st, err := Build(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		n := float64(g.N())
		if float64(st.Size()) > 4*n*math.Sqrt(n) {
			t.Fatalf("%s: size %d above 4n^1.5", name, st.Size())
		}
	}
}

// On a path, removing an internal vertex disconnects its suffix: the tree
// alone is a valid vertex FT-BFS structure.
func TestPathNeedsNothing(t *testing.T) {
	g := gen.PathGraph(12)
	st, err := Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != g.M() {
		t.Fatalf("path structure has %d edges, want all %d (the tree)", st.Size(), g.M())
	}
	// every failure disconnects the suffix, so all pairs are vacuous
	if st.Pairs != 0 {
		t.Fatalf("path has %d non-vacuous pairs, want 0", st.Pairs)
	}
	// on a cycle, by contrast, pairs do exist
	st2, err := Build(gen.Cycle(12), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Pairs == 0 {
		t.Fatal("cycle should have non-vacuous pairs")
	}
}

// Verify must catch a broken structure: on a cycle, the tree alone cannot
// tolerate the failure of an internal tree vertex.
func TestVerifyCatchesBroken(t *testing.T) {
	g := gen.Cycle(12)
	st, err := Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// remove a non-tree edge that the construction added
	full := st.Edges.Clone()
	removed := false
	full.ForEach(func(id graph.EdgeID) {
		if removed {
			return
		}
		trial := full.Clone()
		trial.Remove(id)
		broken := &Structure{G: g, S: 0, Edges: trial}
		if len(Verify(broken, 1)) > 0 {
			removed = true
		}
	})
	if !removed {
		t.Fatal("no single edge removal breaks the cycle structure — verifier too weak?")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Failed: 3, Vertex: 7, InH: -1, InG: 4}
	if v.String() == "" {
		t.Fatal("empty violation string")
	}
}
