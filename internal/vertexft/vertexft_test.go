package vertexft

import (
	"math"
	"testing"

	"ftbfs/internal/bfs"
	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
	"ftbfs/internal/tree"
)

func families() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"cycle":       gen.Cycle(20),
		"grid":        gen.Grid(6, 6),
		"torus":       gen.Torus(5, 5),
		"hypercube":   gen.Hypercube(5),
		"random":      gen.RandomConnected(50, 80, 1),
		"gnp":         gen.GNPConnected(60, 0.08, 2),
		"lowerbound":  gen.LowerBoundParams(2, 3, 5).G,
		"cliquechain": gen.CliqueChain(15),
		"star":        gen.Star(12),
		"path":        gen.PathGraph(15),
	}
}

func TestBuildValidAcrossFamilies(t *testing.T) {
	for name, g := range families() {
		st, err := Build(g, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if viol := Verify(st, 3); len(viol) != 0 {
			t.Fatalf("%s: contract violated: %v", name, viol)
		}
		if st.Size() > g.M() {
			t.Fatalf("%s: |H|=%d exceeds m=%d", name, st.Size(), g.M())
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(graph.New(3), 0); err == nil {
		t.Fatal("unfrozen accepted")
	}
	g := gen.Cycle(5)
	if _, err := Build(g, -1); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := Build(g, 7); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestDifferentSources(t *testing.T) {
	g := gen.RandomConnected(40, 60, 9)
	for s := 0; s < 8; s++ {
		st, err := Build(g, s)
		if err != nil {
			t.Fatalf("source %d: %v", s, err)
		}
		if viol := Verify(st, 1); len(viol) != 0 {
			t.Fatalf("source %d: %v", s, viol)
		}
	}
}

// Vertex FT-BFS structures are also Θ(n^{3/2}) in the worst case; check the
// generous upper envelope on all families.
func TestSizeEnvelope(t *testing.T) {
	for name, g := range families() {
		st, err := Build(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		n := float64(g.N())
		if float64(st.Size()) > 4*n*math.Sqrt(n) {
			t.Fatalf("%s: size %d above 4n^1.5", name, st.Size())
		}
	}
}

// On a path, removing an internal vertex disconnects its suffix: the tree
// alone is a valid vertex FT-BFS structure.
func TestPathNeedsNothing(t *testing.T) {
	g := gen.PathGraph(12)
	st, err := Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != g.M() {
		t.Fatalf("path structure has %d edges, want all %d (the tree)", st.Size(), g.M())
	}
	// every failure disconnects the suffix, so all pairs are vacuous
	if st.Pairs != 0 {
		t.Fatalf("path has %d non-vacuous pairs, want 0", st.Pairs)
	}
	// on a cycle, by contrast, pairs do exist
	st2, err := Build(gen.Cycle(12), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Pairs == 0 {
		t.Fatal("cycle should have non-vacuous pairs")
	}
}

// Verify must catch a broken structure: on a cycle, the tree alone cannot
// tolerate the failure of an internal tree vertex.
func TestVerifyCatchesBroken(t *testing.T) {
	g := gen.Cycle(12)
	st, err := Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// remove a non-tree edge that the construction added
	full := st.Edges.Clone()
	removed := false
	full.ForEach(func(id graph.EdgeID) {
		if removed {
			return
		}
		trial := full.Clone()
		trial.Remove(id)
		broken := &Structure{G: g, S: 0, Edges: trial}
		if len(Verify(broken, 1)) > 0 {
			removed = true
		}
	})
	if !removed {
		t.Fatal("no single edge removal breaks the cycle structure — verifier too weak?")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Failed: 3, Vertex: 7, InH: -1, InG: 4}
	if v.String() == "" {
		t.Fatal("empty violation string")
	}
}

// Pairs must count exactly the ⟨v,w⟩ pairs that purchased a new replacement
// last edge — not every reachable descendant pair — so it equals the number
// of non-tree edges of H.
func TestPairsCountsAddedEdges(t *testing.T) {
	for name, g := range families() {
		st, err := Build(g, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		treeEdges := bfs.From(g, 0).EdgeSet(g.M()).Len()
		if got, want := st.Pairs, st.Size()-treeEdges; got != want {
			t.Fatalf("%s: Pairs = %d, want |H|-|T0| = %d-%d = %d", name, got, st.Size(), treeEdges, want)
		}
	}
}

// naiveBuild replicates the pre-fix construction: the protection check
// consults the tree edges only, so a replacement last edge added for an
// earlier failed vertex is invisible and a second (min-index) edge is
// bought for later pairs it would have protected. It is the sparsity
// yardstick the fixed Build must never exceed.
func naiveBuild(t *testing.T, g *graph.Graph, s int) *graph.EdgeSet {
	t.Helper()
	bt := bfs.From(g, s)
	// tree.Build, not BuildAncestry: this walker needs the children lists,
	// which the ancestry-only constructor deliberately skips.
	tr := tree.Build(g, bt)
	h := bt.EdgeSet(g.M())
	treeEdges := bt.EdgeSet(g.M())
	sc := bfs.NewScratch(g.N())
	dist := make([]int32, g.N())
	banned := graph.NewVertexSet(g.N())
	var stack []int32
	for w := 0; w < g.N(); w++ {
		if w == s || tr.Depth[w] < 0 || len(tr.Children(int32(w))) == 0 {
			continue
		}
		banned.Clear()
		banned.Add(int32(w))
		sc.DistancesAvoiding(g, s, bfs.Restriction{BannedEdge: graph.NoEdge, BannedVertices: banned}, dist)
		stack = stack[:0]
		stack = append(stack, tr.Children(int32(w))...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack = append(stack, tr.Children(v)...)
			target := dist[v]
			if target == bfs.Unreachable {
				continue
			}
			cand := int32(-1)
			protected := false
			for _, a := range g.Neighbors(int(v)) {
				if a.To == int32(w) || dist[a.To] == bfs.Unreachable || dist[a.To]+1 != target {
					continue
				}
				if treeEdges.Contains(a.ID) {
					protected = true
					break
				}
				if cand == -1 {
					cand = a.To
				}
			}
			if protected {
				continue
			}
			if cand == -1 {
				t.Fatalf("naive: no replacement for ⟨v=%d, w=%d⟩", v, w)
			}
			h.Add(g.EdgeIDOf(int(cand), int(v)))
		}
	}
	return h
}

// Sparsity regression over a seeded random-graph corpus: checking candidate
// membership in H (not just the tree) must never grow the structure, and on
// graphs with shareable replacement edges it must strictly shrink at least
// once across the corpus.
func TestNoRedundantReplacementEdges(t *testing.T) {
	shrank := false
	for seed := int64(1); seed <= 8; seed++ {
		for _, mk := range []func() *graph.Graph{
			func() *graph.Graph { return gen.RandomConnected(60, 120, seed) },
			func() *graph.Graph { return gen.GNPConnected(50, 0.1, seed) },
		} {
			g := mk()
			st, err := Build(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			naive := naiveBuild(t, g, 0)
			if st.Size() > naive.Len() {
				t.Fatalf("seed %d: fixed |H| = %d exceeds naive |H| = %d", seed, st.Size(), naive.Len())
			}
			if st.Size() < naive.Len() {
				shrank = true
			}
			if viol := Verify(st, 1); len(viol) != 0 {
				t.Fatalf("seed %d: contract violated after sparsity fix: %v", seed, viol)
			}
		}
	}
	if !shrank {
		t.Fatal("corpus never exercised the redundant-replacement path; grow the corpus")
	}
}

// BuildWith must recycle the workspace without changing the result: a
// shared workspace across sources yields byte-for-byte the edge sets a
// fresh Build produces.
func TestBuildWithSharedWorkspace(t *testing.T) {
	g := gen.RandomConnected(50, 100, 4)
	ws := NewWorkspace()
	for s := 0; s < 6; s++ {
		shared, err := BuildWith(g, s, ws)
		if err != nil {
			t.Fatalf("source %d: %v", s, err)
		}
		fresh, err := Build(g, s)
		if err != nil {
			t.Fatal(err)
		}
		if shared.Pairs != fresh.Pairs {
			t.Fatalf("source %d: pairs %d != %d", s, shared.Pairs, fresh.Pairs)
		}
		want := fresh.Edges.IDs()
		got := shared.Edges.IDs()
		if len(got) != len(want) {
			t.Fatalf("source %d: |H| %d != %d", s, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("source %d: edge sets differ at %d: %d != %d", s, i, got[i], want[i])
			}
		}
	}
}
