package experiments

import (
	"bytes"
	"io"
	"strconv"
	"strings"
	"testing"
)

// Every registered experiment runs in quick mode and produces at least one
// populated table.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavy")
	}
	cfg := Config{Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if tb.NumRows() == 0 {
					t.Fatalf("table %q empty", tb.Title)
				}
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := Run("nope", Config{Quick: true}, io.Discard); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunRendersTitle(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavy")
	}
	var buf bytes.Buffer
	if err := Run("clique-example", Config{Quick: true}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E6") || !strings.Contains(out, "clique") {
		t.Fatalf("missing title in output:\n%s", out)
	}
}

// Shape assertions on the cheap experiments: the verification table must be
// all zeros, and the E2 exponents must land in the predicted bands.
func TestVerifyExactAllZero(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavy")
	}
	tables, err := VerifyExact(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tables[0].RenderCSV(&buf)
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if i == 0 {
			continue
		}
		fields := strings.Split(line, ",")
		if fields[len(fields)-1] != "0" {
			t.Fatalf("violations in row %q", line)
		}
	}
}

func TestBaselineExponentBands(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavy")
	}
	tables, err := BaselineN32(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tables[0].RenderCSV(&buf)
	rows := strings.Split(strings.TrimSpace(buf.String()), "\n")[1:]
	for _, row := range rows {
		fields := strings.Split(row, ",")
		exp := fields[len(fields)-1]
		switch {
		case strings.HasPrefix(fields[0], "lower-bound"):
			if !within(exp, 1.35, 1.6) {
				t.Fatalf("adversarial exponent %s outside [1.35,1.6]", exp)
			}
		default:
			if !within(exp, 0.85, 1.25) {
				t.Fatalf("sparse exponent %s outside [0.85,1.25]", exp)
			}
		}
	}
}

func within(s string, lo, hi float64) bool {
	x, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return false
	}
	return x >= lo && x <= hi
}
