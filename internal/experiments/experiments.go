// Package experiments regenerates, one table per experiment id, the
// paper-shaped results catalogued in EXPERIMENTS.md (E1–E10): the
// reinforcement-backup tradeoff of Theorem 3.1, the Θ(n^{3/2}) baseline of
// [14], the lower-bound families of Theorems 5.1/5.4, the cost corollary,
// the decomposition facts and the interference census.
//
// The absolute numbers depend on machine-free combinatorics only (edge
// counts, not wall-clock), so the tables are deterministic.
package experiments

import (
	"fmt"
	"io"
	"math"

	"ftbfs/internal/batch"
	"ftbfs/internal/core"
	"ftbfs/internal/expstats"
	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
	"ftbfs/internal/vertexft"
)

// Config tunes an experiment run.
type Config struct {
	Quick bool // smaller instances (used by benchmarks and -quick)
}

// Experiment couples an id with its implementation.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) ([]*expstats.Table, error)
}

// All returns the experiment registry in presentation order.
func All() []Experiment {
	return []Experiment{
		{"tradeoff-upper", "E1: reinforcement-backup tradeoff (Thm 3.1)", TradeoffUpper},
		{"baseline-n32", "E2: FT-BFS baseline size Θ(n^{3/2}) ([14], ε=1)", BaselineN32},
		{"lower-bound", "E3: single-source lower bound (Thm 5.1, Fig. 10, Claim 5.3)", LowerBoundExp},
		{"mbfs-lower-bound", "E4: multi-source lower bound (Thm 5.4)", MBFSLowerBound},
		{"cost-curve", "E5: cost-optimal ε vs price ratio (§1 corollary)", CostCurve},
		{"clique-example", "E6: introduction's clique example", CliqueExample},
		{"decomposition", "E7: tree decomposition facts (Fact 3.3, Fact 4.1)", Decomposition},
		{"interference", "E8: interference census (Fig. 1-2, types A/B/C)", Interference},
		{"phase-ablation", "E9: phase ablation and heuristics", PhaseAblation},
		{"verify-exact", "E10: exhaustive contract verification (Def. 2.1)", VerifyExact},
		{"vertex-ft", "E11 (extension): single vertex-failure FT-BFS structures", VertexFT},
	}
}

// Run executes the experiment with the given id, rendering tables to w.
func Run(id string, cfg Config, w io.Writer) error {
	for _, e := range All() {
		if e.ID == id {
			fmt.Fprintf(w, "# %s\n\n", e.Title)
			tables, err := e.Run(cfg)
			if err != nil {
				return err
			}
			for _, t := range tables {
				t.Render(w)
				fmt.Fprintln(w)
			}
			return nil
		}
	}
	return fmt.Errorf("experiments: unknown id %q", id)
}

func must(st *core.Structure, err error) *core.Structure {
	if err != nil {
		panic(err)
	}
	return st
}

// sweep builds one structure per (eps, options) item on a fixed (g, s)
// through the batch orchestrator, so the whole sweep shares one BFS tree, one
// Phase S0 pass and one reinforcement sweep.
func sweep(g *graph.Graph, s int, items []batch.Request) ([]*core.Structure, error) {
	for i := range items {
		items[i].Source = s
	}
	return batch.Build(g, items, batch.Options{})
}

// epsSweep is sweep over a plain ε grid with default options.
func epsSweep(g *graph.Graph, s int, grid []float64) ([]*core.Structure, error) {
	items := make([]batch.Request, len(grid))
	for i, eps := range grid {
		items[i] = batch.Request{Eps: eps}
	}
	return sweep(g, s, items)
}

// lowerBoundDeep sizes a Theorem 5.1 instance like gen.LowerBound but
// guarantees paths of length ≥ 3: with d ≤ 2 the whole biclique is already
// forced by star-edge failures and reinforcing Π cannot pay off.
func lowerBoundDeep(n int, eps float64) *gen.LowerBoundGraph {
	d := int(math.Pow(float64(n), eps) / 4)
	if d < 3 {
		d = 3
	}
	k := int(math.Pow(float64(n), 1-2*eps))
	if k < 1 {
		k = 1
	}
	x := n/k - 1 - (d + 1) - (d*d + 5*d)
	if x < 2 {
		x = 2
	}
	return gen.LowerBoundParams(k, d, x)
}

// TradeoffUpper regenerates E1. Part A sweeps the algorithm's ε on a fixed
// deep-path lower-bound instance, exhibiting the monotone tradeoff; part B
// fits the scaling exponent of b(n) against n^{1+ε} on matched instances;
// part C fits the scaling of r(n) under a reinforcement-heavy ε.
func TradeoffUpper(cfg Config) ([]*expstats.Table, error) {
	baseN := 3000
	sizes := []int{500, 1000, 2000}
	if cfg.Quick {
		baseN = 1200
		sizes = []int{300, 600, 1200}
	}

	// Part A: fixed instance, sweep algorithm ε.
	ta := expstats.NewTable("E1a: sweep of ε on a deep lower-bound instance (graph ε_c = 0.42)",
		"eps", "n", "|H|", "backup b", "reinforced r", "n^{1+eps}", "n^{1-eps}")
	lb := gen.LowerBound(baseN, 0.42)
	n := float64(lb.G.N())
	epsGrid := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	sts, err := epsSweep(lb.G, lb.S, epsGrid)
	if err != nil {
		return nil, err
	}
	for i, st := range sts {
		eps := epsGrid[i]
		ta.AddRow(eps, lb.G.N(), st.Size(), st.BackupCount(), st.ReinforcedCount(),
			math.Pow(n, 1+eps), math.Pow(n, 1-eps))
	}

	// Part B: matched instances, scaling of b(n).
	tb := expstats.NewTable("E1b: scaling of b(n) on matched instances (expect slope ≈ 1+ε)",
		"eps", "n", "backup b", "reinforced r", "fitted b-exponent")
	for _, eps := range []float64{0.2, 0.3, 0.4} {
		var xs, ys []float64
		var rows [][4]float64
		for _, sz := range sizes {
			lb := gen.LowerBound(sz, eps)
			st := must(core.Build(lb.G, lb.S, eps, core.Options{}))
			xs = append(xs, float64(lb.G.N()))
			ys = append(ys, float64(st.BackupCount()))
			rows = append(rows, [4]float64{eps, float64(lb.G.N()), float64(st.BackupCount()), float64(st.ReinforcedCount())})
		}
		fit, err := expstats.FitPower(xs, ys)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			tb.AddRow(r[0], int(r[1]), int(r[2]), int(r[3]), fit.Exp)
		}
	}

	// Part C: the r(n) axis. On a matched instance the n^{1+ε} backup
	// volume is forced unless the ≈ n^{1−ε}/4 costly edges Π are reinforced
	// (Thm 5.1); reinforcing exactly Π collapses the backup set to
	// near-linear, and the reinforcement demand |Π| scales as n^{1−ε}.
	tc := expstats.NewTable("E1c: scaling of the reinforcement demand r(n) on matched instances (slope → 1−ε as n grows; finite sizes clamp d)",
		"eps", "n", "r (Π reinforced)", "predicted k(d-1)", "b with r", "b with r=0", "fitted r-exponent")
	for _, eps := range []float64{0.3, 0.35, 0.4} {
		var xs, ys []float64
		type row struct {
			n, r, pred, bWith, bWithout int
		}
		var rows []row
		for _, sz := range sizes {
			lb := lowerBoundDeep(sz, eps)
			var costly []graph.EdgeID
			for _, pe := range lb.PiEdges {
				costly = append(costly, pe.ID)
			}
			withR, err := core.BuildReinforcing(lb.G, lb.S, costly)
			if err != nil {
				return nil, err
			}
			withoutR := must(core.Build(lb.G, lb.S, eps, core.Options{}))
			xs = append(xs, float64(lb.G.N()))
			ys = append(ys, float64(withR.ReinforcedCount()))
			rows = append(rows, row{lb.G.N(), withR.ReinforcedCount(), lb.K * (lb.D - 1),
				withR.BackupCount(), withoutR.BackupCount()})
		}
		exp := math.NaN()
		if fit, err := expstats.FitPower(xs, ys); err == nil {
			exp = fit.Exp
		}
		for _, r := range rows {
			tc.AddRow(eps, r.n, r.r, r.pred, r.bWith, r.bWithout, exp)
		}
	}
	return []*expstats.Table{ta, tb, tc}, nil
}

// BaselineN32 regenerates E2: baseline FT-BFS sizes on an adversarial
// family (slope → 3/2) against a sparse random family (slope ≈ 1).
func BaselineN32(cfg Config) ([]*expstats.Table, error) {
	sizes := []int{500, 1000, 2000, 4000}
	if cfg.Quick {
		sizes = []int{300, 600, 1200}
	}
	t := expstats.NewTable("E2: baseline FT-BFS size |E(H)| ([14]: Θ(n^{3/2}) worst case)",
		"family", "n", "m", "|H|", "fitted exponent")
	for _, fam := range []string{"lower-bound(0.48)", "gnp(sparse)"} {
		var xs, ys []float64
		var rows [][3]int
		for _, sz := range sizes {
			var g *graph.Graph
			var s int
			switch fam {
			case "lower-bound(0.48)":
				lb := gen.LowerBound(sz, 0.48)
				g, s = lb.G, lb.S
			default:
				g, s = gen.GNPConnected(sz, 4/float64(sz), int64(sz)), 0
			}
			st := must(core.Build(g, s, 1, core.Options{}))
			xs = append(xs, float64(g.N()))
			ys = append(ys, float64(st.Size()))
			rows = append(rows, [3]int{g.N(), g.M(), st.Size()})
		}
		fit, err := expstats.FitPower(xs, ys)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			t.AddRow(fam, r[0], r[1], r[2], fit.Exp)
		}
	}
	return []*expstats.Table{t}, nil
}

// LowerBoundExp regenerates E3: on the Theorem 5.1 instances, any structure
// reinforcing at most ⌊n^{1−ε}/6⌋ edges must keep every fan of the
// unreinforced costly edges (Claim 5.3); the built structures exhibit the
// forced Ω(n^{1+ε}) backup volume.
func LowerBoundExp(cfg Config) ([]*expstats.Table, error) {
	baseN := 2500
	if cfg.Quick {
		baseN = 900
	}
	t := expstats.NewTable("E3: single-source lower bound (Thm 5.1)",
		"eps", "n", "m", "costly |Π|", "allowed r=⌊n^{1-eps}/6⌋", "built b", "built r",
		"forced fans present", "b ≥ (|Π|-r)·|X|")
	for _, eps := range []float64{0.15, 0.25, 0.35} {
		lb := gen.LowerBound(baseN, eps)
		n := float64(lb.G.N())
		allowedR := int(math.Pow(n, 1-eps) / 6)
		st := must(core.Build(lb.G, lb.S, eps, core.Options{}))
		// Claim 5.3: every costly edge not reinforced must have its full
		// fan inside H.
		ok := 0
		for _, pe := range lb.PiEdges {
			if st.Reinforced.Contains(pe.ID) {
				continue
			}
			full := true
			for _, id := range lb.Fan(pe) {
				if !st.Edges.Contains(id) {
					full = false
					break
				}
			}
			if full {
				ok++
			}
		}
		unreinforced := 0
		for _, pe := range lb.PiEdges {
			if !st.Reinforced.Contains(pe.ID) {
				unreinforced++
			}
		}
		forced := unreinforced * len(lb.X[0])
		t.AddRow(eps, lb.G.N(), lb.G.M(), len(lb.PiEdges), allowedR,
			st.BackupCount(), st.ReinforcedCount(),
			fmt.Sprintf("%d/%d", ok, unreinforced),
			st.BackupCount() >= forced)
	}
	return []*expstats.Table{t}, nil
}

// MBFSLowerBound regenerates E4: size scaling of ε FT-MBFS structures on
// the Theorem 5.4 instances as the number of sources grows.
func MBFSLowerBound(cfg Config) ([]*expstats.Table, error) {
	baseN := 1500
	if cfg.Quick {
		baseN = 600
	}
	t := expstats.NewTable("E4: multi-source lower bound (Thm 5.4), ε = 0.25",
		"K sources", "n", "m", "|H|", "backup b", "reinforced r", "biclique edges")
	for _, K := range []int{1, 2, 4} {
		lb := gen.MultiLowerBound(baseN, K, 0.25)
		ms, err := core.BuildMulti(lb.G, lb.Sources, 0.25, core.Options{})
		if err != nil {
			return nil, err
		}
		biclique := 0
		for j := range lb.X {
			biclique += len(lb.X[j]) * K * lb.D * 1
		}
		t.AddRow(K, lb.G.N(), lb.G.M(), ms.Size(), ms.BackupCount(), ms.ReinforcedCount(), biclique)
	}
	return []*expstats.Table{t}, nil
}

// CostCurve regenerates E5: the cost-minimising ε grows with log(R/B), as
// the paper's corollary ε* = Θ(log(R/B)/log n) predicts.
func CostCurve(cfg Config) ([]*expstats.Table, error) {
	baseN := 2000
	if cfg.Quick {
		baseN = 800
	}
	lb := gen.LowerBound(baseN, 0.42)
	grid := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 1}
	// build once per ε (one batched sweep), reuse across ratios
	type pt struct {
		eps  float64
		b, r int
	}
	var pts []pt
	sts, err := epsSweep(lb.G, lb.S, grid)
	if err != nil {
		return nil, err
	}
	for i, st := range sts {
		pts = append(pts, pt{grid[i], st.BackupCount(), st.ReinforcedCount()})
	}
	t := expstats.NewTable("E5: cost-minimising ε vs price ratio R/B",
		"R/B", "best eps (measured)", "predicted eps", "best cost", "b at best", "r at best")
	for _, ratio := range []float64{1, 4, 16, 64, 256, 1024, 4096} {
		best := 0
		bestCost := math.Inf(1)
		for i, p := range pts {
			c := float64(p.b) + ratio*float64(p.r)
			if c < bestCost {
				bestCost = c
				best = i
			}
		}
		t.AddRow(ratio, pts[best].eps, core.PredictedOptimalEps(lb.G.N(), 1, ratio),
			bestCost, pts[best].b, pts[best].r)
	}
	return []*expstats.Table{t}, nil
}

// CliqueExample regenerates E6: the introduction's motivating example — a
// source tied to a clique by one bridge. One reinforced edge plus a sparse
// backup set beats both all-backup and all-reinforced deployments.
func CliqueExample(cfg Config) ([]*expstats.Table, error) {
	n := 60
	if cfg.Quick {
		n = 30
	}
	g := gen.CliqueChain(n)
	t := expstats.NewTable(fmt.Sprintf("E6: clique example (n=%d, m=%d), prices B=1, R=20", n, g.M()),
		"strategy", "|H|", "backup b", "reinforced r", "cost")
	t.AddRow("conservative: buy all of G as backup+bridge reinforced", g.M(), g.M()-1, 1, float64(g.M()-1)+20)
	grid := []float64{0, 0.3, 1}
	sts, err := epsSweep(g, 0, grid)
	if err != nil {
		return nil, err
	}
	for i, st := range sts {
		t.AddRow(fmt.Sprintf("ε=%.1f (%s)", grid[i], st.Stats.Algorithm),
			st.Size(), st.BackupCount(), st.ReinforcedCount(), st.Cost(1, 20))
	}
	return []*expstats.Table{t}, nil
}

// Decomposition regenerates E7: Fact 3.3 recursion depth and the Fact 4.1
// per-vertex bounds, compared against log₂ n.
func Decomposition(cfg Config) ([]*expstats.Table, error) {
	sizes := []int{500, 2000, 8000}
	if cfg.Quick {
		sizes = []int{300, 1200}
	}
	t := expstats.NewTable("E7: tree-decomposition statistics (Fact 3.3, Fact 4.1)",
		"family", "n", "paths", "max level", "max paths on π(s,v)", "max glue on π(s,v)", "log2 n")
	for _, sz := range sizes {
		for _, fam := range []string{"random-tree", "gnp", "lower-bound"} {
			var g *graph.Graph
			var s int
			switch fam {
			case "random-tree":
				g, s = gen.RandomTree(sz, int64(sz)), 0
			case "gnp":
				g, s = gen.GNPConnected(sz, 3/float64(sz), int64(sz)), 0
			default:
				lb := gen.LowerBound(sz, 0.3)
				g, s = lb.G, lb.S
			}
			en := replacement.NewEngine(g, s)
			maxSegs, maxGlue := 0, 0
			for v := int32(0); v < int32(g.N()); v++ {
				if en.T.Depth[v] < 0 {
					continue
				}
				if k := len(en.T.SegmentsTo(v)); k > maxSegs {
					maxSegs = k
				}
				if k := len(en.T.GlueEdgesOn(v)); k > maxGlue {
					maxGlue = k
				}
			}
			t.AddRow(fam, g.N(), len(en.T.Paths), en.T.MaxLevel, maxSegs, maxGlue,
				math.Log2(float64(g.N())))
		}
	}
	return []*expstats.Table{t}, nil
}

// Interference regenerates E8: the census of uncovered pairs, their split
// into the (≁)-interfering set I1 vs the (∼)-set I2, and the per-iteration
// type A/B/C classification of Phase S1.
func Interference(cfg Config) ([]*expstats.Table, error) {
	baseN := 1500
	if cfg.Quick {
		baseN = 600
	}
	t := expstats.NewTable("E8: interference census at ε = 0.25",
		"family", "n", "uncovered |UP|", "|I1| (≁)", "|I2| (∼)", "iter-1 A/B/C", "S1 added", "S2 added")
	for _, fam := range []string{"lower-bound(0.42)", "gnp", "grid"} {
		var g *graph.Graph
		var s int
		switch fam {
		case "lower-bound(0.42)":
			lb := gen.LowerBound(baseN, 0.42)
			g, s = lb.G, lb.S
		case "gnp":
			g, s = gen.GNPConnected(baseN, 6/float64(baseN), 11), 0
		default:
			side := int(math.Sqrt(float64(baseN)))
			g, s = gen.Grid(side, side), 0
		}
		st := must(core.Build(g, s, 0.25, core.Options{}))
		abc := "-"
		if len(st.Stats.TypeACounts) > 0 {
			abc = fmt.Sprintf("%d/%d/%d", st.Stats.TypeACounts[0], st.Stats.TypeBCounts[0], st.Stats.TypeCCounts[0])
		}
		t.AddRow(fam, g.N(), st.Stats.UncoveredPairs, st.Stats.I1Size, st.Stats.I2Size,
			abc, st.Stats.S1Added, st.Stats.S2GlueAdded+st.Stats.S2Added)
	}
	return []*expstats.Table{t}, nil
}

// PhaseAblation regenerates E9: what each phase buys, against the greedy
// heuristic and the baseline.
func PhaseAblation(cfg Config) ([]*expstats.Table, error) {
	baseN := 1500
	if cfg.Quick {
		baseN = 600
	}
	lb := gen.LowerBound(baseN, 0.42)
	t := expstats.NewTable(fmt.Sprintf("E9: ablation at ε = 0.15 on lower-bound(0.42), n=%d", lb.G.N()),
		"variant", "|H|", "backup b", "reinforced r", "cost B=1,R=100")
	variants := []struct {
		name string
		opt  core.Options
		eps  float64
	}{
		{"full (S1+S2)", core.Options{}, 0.15},
		{"no S1", core.Options{SkipPhase1: true}, 0.15},
		{"no S2", core.Options{SkipPhase2: true}, 0.15},
		{"greedy", core.Options{Algorithm: core.Greedy}, 0.15},
		{"baseline [14]", core.Options{Algorithm: core.Baseline}, 1},
		{"tree (ε=0)", core.Options{Algorithm: core.Tree}, 0},
	}
	reqs := make([]batch.Request, len(variants))
	for i, v := range variants {
		reqs[i] = batch.Request{Eps: v.eps, Opt: v.opt}
	}
	sts, err := sweep(lb.G, lb.S, reqs)
	if err != nil {
		return nil, err
	}
	for i, st := range sts {
		t.AddRow(variants[i].name, st.Size(), st.BackupCount(), st.ReinforcedCount(), st.Cost(1, 100))
	}
	return []*expstats.Table{t}, nil
}

// VerifyExact regenerates E10: exhaustive Definition 2.1 verification of
// every algorithm on every family (the correctness table).
func VerifyExact(cfg Config) ([]*expstats.Table, error) {
	t := expstats.NewTable("E10: exhaustive verification (violations must be 0)",
		"family", "n", "eps", "algorithm", "violations")
	fams := []struct {
		name string
		g    *graph.Graph
		s    int
	}{
		{"cycle", gen.Cycle(40), 0},
		{"grid", gen.Grid(8, 8), 0},
		{"gnp", gen.GNPConnected(80, 0.06, 5), 0},
		{"lower-bound", gen.LowerBoundParams(3, 4, 6).G, 0},
		{"cliquechain", gen.CliqueChain(24), 0},
	}
	if !cfg.Quick {
		fams = append(fams,
			struct {
				name string
				g    *graph.Graph
				s    int
			}{"random-dense", gen.RandomConnected(120, 500, 7), 0})
	}
	for _, f := range fams {
		grid := []float64{0, 0.2, 0.4, 1}
		sts, err := epsSweep(f.g, f.s, grid)
		if err != nil {
			return nil, err
		}
		for i, st := range sts {
			viol := core.Verify(st, 0)
			t.AddRow(f.name, f.g.N(), grid[i], st.Stats.Algorithm, len(viol))
		}
	}
	return []*expstats.Table{t}, nil
}

// VertexFT regenerates E11 — the vertex-failure extension: structure sizes
// and verification across families, with the edge baseline for comparison.
func VertexFT(cfg Config) ([]*expstats.Table, error) {
	scale := 1
	if cfg.Quick {
		scale = 2
	}
	t := expstats.NewTable("E11: vertex fault-tolerant BFS structures (extension; companion of [16])",
		"family", "n", "m", "vertex |H|", "edge baseline |H|", "violations")
	fams := []struct {
		name string
		g    *graph.Graph
	}{
		{"torus", gen.Torus(12/scale, 12/scale)},
		{"gnp", gen.GNPConnected(400/scale, 8/float64(400/scale), 3)},
		{"lower-bound", gen.LowerBoundParams(3, 4, 24/scale).G},
		{"hypercube", gen.Hypercube(8 - scale)},
	}
	for _, f := range fams {
		vst, err := vertexft.Build(f.g, 0)
		if err != nil {
			return nil, err
		}
		est := must(core.Build(f.g, 0, 1, core.Options{}))
		viol := vertexft.Verify(vst, 0)
		t.AddRow(f.name, f.g.N(), f.g.M(), vst.Size(), est.Size(), len(viol))
	}
	return []*expstats.Table{t}, nil
}
