package gen

import "ftbfs/internal/graph"

// PathGraph returns the path 0-1-…-(n-1).
func PathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.Add(i, i+1)
	}
	return b.Graph()
}

// Cycle returns the n-cycle (n >= 3).
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, (i+1)%n)
	}
	return b.Graph()
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.Add(0, i)
	}
	return b.Graph()
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.Add(u, v)
		}
	}
	return b.Graph()
}

// CompleteBipartite returns K_{a,b}: vertices 0..a-1 on the left,
// a..a+b-1 on the right.
func CompleteBipartite(a, b int) *graph.Graph {
	bld := graph.NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			bld.Add(u, v)
		}
	}
	return bld.Graph()
}

// CliqueChain builds the introduction's motivating example: a source vertex
// 0 connected by a single edge to an (n-1)-vertex clique (via vertex 1).
// Reinforcing the single bridge {0,1} makes the whole structure resilient
// even when only a fraction of the clique is purchased.
func CliqueChain(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	b.Add(0, 1)
	for u := 1; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.Add(u, v)
		}
	}
	return b.Graph()
}

// Grid returns the rows×cols grid graph, vertex (r,c) = r*cols+c.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				b.Add(v, v+1)
			}
			if r+1 < rows {
				b.Add(v, v+cols)
			}
		}
	}
	return b.Graph()
}

// Torus returns the rows×cols torus (grid with wraparound); needs
// rows, cols >= 3 to avoid duplicate edges.
func Torus(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			b.Add(v, r*cols+(c+1)%cols)
			b.Add(v, ((r+1)%rows)*cols+c)
		}
	}
	return b.Graph()
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *graph.Graph {
	n := 1 << uint(d)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << uint(bit))
			if u > v {
				b.Add(v, u)
			}
		}
	}
	return b.Graph()
}
