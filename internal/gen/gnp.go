// Package gen generates the graph families used by the tests, examples and
// experiments: classical random and structured families plus the paper's
// Section 5 lower-bound constructions (single-source Theorem 5.1 and
// multi-source Theorem 5.4).
//
// All generators are deterministic given their seed and return frozen
// graphs.
package gen

import (
	"math/rand"

	"ftbfs/internal/graph"
)

// GNP returns an Erdős–Rényi G(n,p) graph.
func GNP(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.Add(u, v)
			}
		}
	}
	return b.Graph()
}

// GNM returns a uniform graph with n vertices and m distinct edges
// (m is clamped to the number of available pairs).
func GNM(n, m int, seed int64) *graph.Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for b.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		b.Add(u, v)
	}
	return b.Graph()
}

// RandomTree returns a uniform-ish random tree built by attaching each
// vertex i>0 to a uniformly random earlier vertex.
func RandomTree(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.Add(i, rng.Intn(i))
	}
	return b.Graph()
}

// RandomConnected returns a connected graph: a random spanning tree plus
// `extra` additional random edges (duplicates are skipped, so the final
// edge count is at most n-1+extra).
func RandomConnected(n, extra int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.Add(i, rng.Intn(i))
	}
	for k := 0; k < extra; k++ {
		b.Add(rng.Intn(n), rng.Intn(n))
	}
	return b.Graph()
}

// GNPConnected returns a G(n,p) graph patched into connectivity by linking
// each non-root component head to a random earlier vertex.
func GNPConnected(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.Add(u, v)
			}
		}
	}
	// union-find to locate components
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	g := b.Graph()
	nb := graph.NewBuilder(n)
	for _, e := range g.EdgesView() {
		nb.Add(int(e.U), int(e.V))
		ru, rv := find(int(e.U)), find(int(e.V))
		if ru != rv {
			parent[ru] = rv
		}
	}
	for v := 1; v < n; v++ {
		if find(v) != find(0) {
			u := rng.Intn(v)
			nb.Add(u, v)
			parent[find(v)] = find(u)
		}
	}
	return nb.Graph()
}
