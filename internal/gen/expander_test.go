package gen

import (
	"testing"

	"ftbfs/internal/graph"
)

func TestCirculant(t *testing.T) {
	g := Circulant(12, []int{1, 3})
	if g.N() != 12 || g.M() != 24 {
		t.Fatalf("C_12(1,3): n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < 12; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("deg(%d)=%d want 4", v, g.Degree(v))
		}
	}
	if !graph.IsConnected(g) {
		t.Fatal("circulant disconnected")
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	// antipodal offset halves the edge count per offset
	h := Circulant(8, []int{4})
	if h.M() != 4 {
		t.Fatalf("C_8(4): m=%d want 4", h.M())
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(50, 4, 7)
	if g.N() != 50 {
		t.Fatal("n wrong")
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	// the pairing retries make exact regularity overwhelmingly likely
	irregular := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			irregular++
		}
	}
	if irregular > 2 {
		t.Fatalf("%d vertices off-degree", irregular)
	}
	// determinism
	a, b := RandomRegular(30, 3, 9), RandomRegular(30, 3, 9)
	if a.M() != b.M() {
		t.Fatal("not deterministic")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd n·d accepted")
		}
	}()
	RandomRegular(5, 3, 1)
}

func TestRandomRegularManySeeds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := RandomRegular(40, 4, seed)
		if err := graph.Validate(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != 4 {
				t.Fatalf("seed %d: deg(%d)=%d", seed, v, g.Degree(v))
			}
		}
	}
}
