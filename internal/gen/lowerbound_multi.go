package gen

import (
	"fmt"
	"math"

	"ftbfs/internal/graph"
)

// MultiPiEdge is a costly edge e_ℓ^{i,j} of the multi-source construction.
type MultiPiEdge struct {
	Source int          // source index i (0-based)
	Column int          // column index j (0-based): which shared X_j it targets
	L      int          // position on π_{i,j}, 1-based
	ID     graph.EdgeID // the edge (v_ℓ, v_{ℓ+1})
	Z      int32        // z_ℓ^{i,j}
}

// MultiLowerBoundGraph is the Theorem 5.4 construction: K sources, each
// with kk path gadgets; the gadgets of column j share one vertex set X_j
// (attached through the hub v~_j) that is completely connected to all the
// z vertices of that column.
type MultiLowerBoundGraph struct {
	G   *graph.Graph
	Eps float64

	Sources []int     // the K source vertices
	KK, D   int       // columns per source, path length
	X       [][]int32 // X_j per column
	PiEdges []MultiPiEdge
}

// MultiLowerBoundParams builds the construction from explicit parameters:
// nsrc sources, kk columns, path length d, and xPerColumn vertices per X_j.
func MultiLowerBoundParams(nsrc, kk, d, xPerColumn int) *MultiLowerBoundGraph {
	if nsrc < 1 || kk < 1 || d < 1 || xPerColumn < 1 {
		panic(fmt.Sprintf("gen: bad multi lower-bound parameters K=%d kk=%d d=%d x=%d", nsrc, kk, d, xPerColumn))
	}
	perGadget := (d + 1) + (d*d + 5*d)
	n := nsrc + kk*(nsrc*perGadget+1+xPerColumn)
	b := graph.NewBuilder(n)
	lb := &MultiLowerBoundGraph{KK: kk, D: d}
	next := 0
	alloc := func(c int) []int32 {
		out := make([]int32, c)
		for i := range out {
			out[i] = int32(next)
			next++
		}
		return out
	}
	srcs := alloc(nsrc)
	for _, s := range srcs {
		lb.Sources = append(lb.Sources, int(s))
	}
	type gadget struct {
		pi []int32
		zs []int32
	}
	piVerts := make([][]gadget, nsrc) // [source][column]
	for i := range piVerts {
		piVerts[i] = make([]gadget, kk)
	}
	for j := 0; j < kk; j++ {
		var colZ []int32
		for i := 0; i < nsrc; i++ {
			pi := alloc(d + 1)
			b.Add(int(srcs[i]), int(pi[0]))
			for l := 0; l+1 <= d; l++ {
				b.Add(int(pi[l]), int(pi[l+1]))
			}
			zs := make([]int32, d)
			for l := 1; l <= d; l++ {
				tl := 6 + 2*(d-l)
				interior := alloc(tl)
				prev := pi[l-1]
				for _, w := range interior {
					b.Add(int(prev), int(w))
					prev = w
				}
				zs[l-1] = prev
			}
			colZ = append(colZ, zs...)
			piVerts[i][j] = gadget{pi: pi, zs: zs}
		}
		hub := alloc(1)[0] // v~_j
		xs := alloc(xPerColumn)
		for i := 0; i < nsrc; i++ {
			b.Add(int(hub), int(piVerts[i][j].pi[d])) // v~_j — v*_{i,j}
		}
		for _, x := range xs {
			b.Add(int(hub), int(x))
			for _, z := range colZ {
				b.Add(int(x), int(z))
			}
		}
		lb.X = append(lb.X, xs)
		for i := 0; i < nsrc; i++ {
			for l := 1; l <= d; l++ {
				lb.PiEdges = append(lb.PiEdges, MultiPiEdge{
					Source: i, Column: j, L: l, Z: piVerts[i][j].zs[l-1],
				})
			}
		}
	}
	lb.G = b.Graph()
	if lb.G.N() != n {
		panic("gen: multi lower-bound vertex accounting is wrong")
	}
	for idx := range lb.PiEdges {
		pe := &lb.PiEdges[idx]
		pi := piVerts[pe.Source][pe.Column].pi
		pe.ID = lb.G.EdgeIDOf(int(pi[pe.L-1]), int(pi[pe.L]))
		if pe.ID == graph.NoEdge {
			panic("gen: missing multi π edge")
		}
	}
	return lb
}

// MultiLowerBound sizes the construction to approximately n vertices with K
// sources and ε ∈ (0, 1/2]: d ≈ (n/4K)^ε, kk ≈ (n/K)^{1−2ε}.
func MultiLowerBound(n, nsrc int, eps float64) *MultiLowerBoundGraph {
	if eps <= 0 || eps > 0.5 {
		panic(fmt.Sprintf("gen: MultiLowerBound needs ε ∈ (0, 0.5], got %g", eps))
	}
	if nsrc < 1 {
		panic("gen: need at least one source")
	}
	d := int(math.Pow(float64(n)/(4*float64(nsrc)), eps))
	if d < 1 {
		d = 1
	}
	kk := int(math.Pow(float64(n)/float64(nsrc), 1-2*eps))
	if kk < 1 {
		kk = 1
	}
	perGadget := (d + 1) + (d*d + 5*d)
	x := (n-nsrc)/kk - nsrc*perGadget - 1
	if x < 1 {
		x = 1
	}
	lb := MultiLowerBoundParams(nsrc, kk, d, x)
	lb.Eps = eps
	return lb
}

// Fan returns the forced fan E_ℓ^{i,j} = {(x, z_ℓ^{i,j}) : x ∈ X_j}
// (Claim 5.6).
func (lb *MultiLowerBoundGraph) Fan(pe MultiPiEdge) []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(lb.X[pe.Column]))
	for _, x := range lb.X[pe.Column] {
		id := lb.G.EdgeIDOf(int(x), int(pe.Z))
		if id == graph.NoEdge {
			panic("gen: missing biclique edge")
		}
		out = append(out, id)
	}
	return out
}
