package gen

import (
	"fmt"
	"math"

	"ftbfs/internal/graph"
)

// PiEdge describes one "costly" path edge e_j^i = (v_j, v_{j+1}) of the
// lower-bound construction, together with the fan E_j^i = {(x, z_j^i)} that
// Claim 5.3 forces into every ε FT-BFS structure that does not reinforce it.
type PiEdge struct {
	Copy int          // copy index i
	J    int          // position on the path, 1-based
	ID   graph.EdgeID // the edge (v_j, v_{j+1})
	Z    int32        // z_j^i — the forced fan is {(x, Z) : x ∈ X of the fan}
}

// LowerBoundGraph is the single-source construction of Theorem 5.1
// (Fig. 10): k copies of the gadget G_{ε,i} hanging off a common source.
// Each gadget has a length-d path π_i, escape paths P_j^i of decreasing
// length 6+2(d−j) ending at z_j^i, a vertex set X_i attached to the path's
// terminal, and the complete bipartite graph X_i × Z_i.
type LowerBoundGraph struct {
	G   *graph.Graph
	S   int     // the source (always 0)
	Eps float64 // requested ε (0 when built from explicit parameters)

	K, D    int       // number of copies, path length
	X       [][]int32 // X_i per copy
	Z       [][]int32 // Z_i per copy (z_1..z_d)
	PiEdges []PiEdge  // all k·d costly edges, in copy-major order
}

// LowerBoundParams builds the construction from explicit parameters:
// k copies, paths of length d, and xPerCopy vertices in each X_i.
// Requires k ≥ 1, d ≥ 1, xPerCopy ≥ 1.
func LowerBoundParams(k, d, xPerCopy int) *LowerBoundGraph {
	if k < 1 || d < 1 || xPerCopy < 1 {
		panic(fmt.Sprintf("gen: bad lower-bound parameters k=%d d=%d x=%d", k, d, xPerCopy))
	}
	perCopy := (d + 1) + (d*d + 5*d) + xPerCopy
	n := 1 + k*perCopy
	b := graph.NewBuilder(n)
	lb := &LowerBoundGraph{S: 0, K: k, D: d}
	next := 1 // vertex allocator; 0 is the source
	alloc := func(c int) []int32 {
		out := make([]int32, c)
		for i := range out {
			out[i] = int32(next)
			next++
		}
		return out
	}
	piVerts := make([][]int32, 0, k)
	for i := 0; i < k; i++ {
		pi := alloc(d + 1) // v_1 … v_{d+1}; v_1 = s_i, v_{d+1} = v*_i
		piVerts = append(piVerts, pi)
		b.Add(0, int(pi[0]))
		for j := 0; j+1 <= d; j++ {
			b.Add(int(pi[j]), int(pi[j+1]))
		}
		zs := make([]int32, d)
		for j := 1; j <= d; j++ {
			tj := 6 + 2*(d-j) // |P_j^i|
			interior := alloc(tj)
			prev := pi[j-1] // v_j
			for _, w := range interior {
				b.Add(int(prev), int(w))
				prev = w
			}
			zs[j-1] = prev // z_j^i
		}
		xs := alloc(xPerCopy)
		vstar := pi[d]
		for _, x := range xs {
			b.Add(int(vstar), int(x))
			for _, z := range zs {
				b.Add(int(x), int(z))
			}
		}
		lb.X = append(lb.X, xs)
		lb.Z = append(lb.Z, zs)
		for j := 1; j <= d; j++ {
			lb.PiEdges = append(lb.PiEdges, PiEdge{Copy: i, J: j, Z: zs[j-1]})
		}
	}
	lb.G = b.Graph()
	if lb.G.N() != n {
		panic("gen: lower-bound vertex accounting is wrong")
	}
	// Resolve the costly-edge ids now that the graph is frozen.
	for idx := range lb.PiEdges {
		pe := &lb.PiEdges[idx]
		pi := piVerts[pe.Copy]
		pe.ID = lb.G.EdgeIDOf(int(pi[pe.J-1]), int(pi[pe.J]))
		if pe.ID == graph.NoEdge {
			panic("gen: missing π edge")
		}
	}
	return lb
}

// LowerBound sizes the Theorem 5.1 construction to approximately n vertices
// for the given ε ∈ (0, 1/2): d ≈ n^ε/4, k ≈ n^{1−2ε}, with X_i absorbing
// the per-copy remainder. The actual vertex count is G.N().
func LowerBound(n int, eps float64) *LowerBoundGraph {
	if eps <= 0 || eps >= 0.5 {
		panic(fmt.Sprintf("gen: LowerBound needs ε ∈ (0, 0.5), got %g", eps))
	}
	d := int(math.Pow(float64(n), eps) / 4)
	if d < 1 {
		d = 1
	}
	k := int(math.Pow(float64(n), 1-2*eps))
	if k < 1 {
		k = 1
	}
	fixed := (d + 1) + (d*d + 5*d)
	x := n/k - 1 - fixed
	if x < 1 {
		x = 1
	}
	lb := LowerBoundParams(k, d, x)
	lb.Eps = eps
	return lb
}

// Fan returns the forced edge fan E_j^i for the given costly edge: all
// biclique edges (x, z_j^i) with x ∈ X_i. Claim 5.3: every ε FT-BFS that
// leaves pe unreinforced must contain the entire fan.
func (lb *LowerBoundGraph) Fan(pe PiEdge) []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(lb.X[pe.Copy]))
	for _, x := range lb.X[pe.Copy] {
		id := lb.G.EdgeIDOf(int(x), int(pe.Z))
		if id == graph.NoEdge {
			panic("gen: missing biclique edge")
		}
		out = append(out, id)
	}
	return out
}

// TheoreticalBackupLowerBound returns the Ω(n^{1+ε})-scale quantity
// (#unreinforced costly edges) × |X_i| realised by this instance when at
// most r edges may be reinforced.
func (lb *LowerBoundGraph) TheoreticalBackupLowerBound(r int) int {
	costly := len(lb.PiEdges)
	if r > costly {
		return 0
	}
	return (costly - r) * len(lb.X[0])
}
