package gen

import (
	"math/rand"
	"sort"

	"ftbfs/internal/graph"
)

// Circulant returns the circulant graph C_n(offsets): vertex i is adjacent
// to i±o (mod n) for every offset o. Circulants are vertex-transitive and,
// for suitable offsets, good expanders — a useful contrast family to the
// adversarial lower-bound graphs (their FT-BFS structures stay near-linear).
func Circulant(n int, offsets []int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for _, o := range offsets {
			j := ((i+o)%n + n) % n
			b.Add(i, j)
		}
	}
	return b.Graph()
}

// RandomRegular returns a d-regular random simple graph via the pairing
// model with edge-swap repair: stubs are matched uniformly, then every
// self-loop or duplicate pairing is resolved by switching with a random
// existing edge (the standard degree-preserving repair, terminating with
// overwhelming probability). d·n must be even and d < n.
func RandomRegular(n, d int, seed int64) *graph.Graph {
	if n*d%2 != 0 {
		panic("gen: n·d must be even for a d-regular graph")
	}
	if d >= n {
		panic("gen: need d < n")
	}
	rng := rand.New(rand.NewSource(seed))
	type pair = [2]int32
	key := func(u, v int32) pair {
		if u > v {
			u, v = v, u
		}
		return pair{u, v}
	}

	stubs := make([]int32, 0, n*d)
	for v := 0; v < n; v++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, int32(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	edgeSet := make(map[pair]bool, n*d/2)
	var edges []pair
	var bad []pair // colliding stub pairs awaiting repair
	addOrDefer := func(u, v int32) {
		k := key(u, v)
		if u == v || edgeSet[k] {
			bad = append(bad, pair{u, v})
			return
		}
		edgeSet[k] = true
		edges = append(edges, k)
	}
	for i := 0; i+1 < len(stubs); i += 2 {
		addOrDefer(stubs[i], stubs[i+1])
	}
	// Repair: for a bad pair (u,v), pick a random existing edge (a,b) and
	// switch to (u,a), (v,b) when both are fresh; this preserves degrees.
	for guard := 0; len(bad) > 0 && guard < 100*n*d; guard++ {
		u, v := bad[len(bad)-1][0], bad[len(bad)-1][1]
		e := edges[rng.Intn(len(edges))]
		a, b := e[0], e[1]
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		if u == a || v == b || edgeSet[key(u, a)] || edgeSet[key(v, b)] || key(u, a) == key(v, b) {
			continue
		}
		bad = bad[:len(bad)-1]
		delete(edgeSet, e)
		edgeSet[key(u, a)] = true
		edgeSet[key(v, b)] = true
		// rebuild edges slice lazily: replace e with one new edge, append other
		for i := range edges {
			if edges[i] == e {
				edges[i] = key(u, a)
				break
			}
		}
		edges = append(edges, key(v, b))
	}
	final := make([]pair, 0, len(edgeSet))
	for e := range edgeSet {
		final = append(final, e)
	}
	sort.Slice(final, func(i, j int) bool {
		if final[i][0] != final[j][0] {
			return final[i][0] < final[j][0]
		}
		return final[i][1] < final[j][1]
	})
	bld := graph.NewBuilder(n)
	for _, e := range final {
		bld.Add(int(e[0]), int(e[1]))
	}
	return bld.Graph()
}
