package gen

import (
	"testing"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
)

func TestStructuredCounts(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		n, m int
	}{
		{"path", PathGraph(10), 10, 9},
		{"cycle", Cycle(8), 8, 8},
		{"star", Star(7), 7, 6},
		{"complete", Complete(6), 6, 15},
		{"biclique", CompleteBipartite(3, 4), 7, 12},
		{"cliquechain", CliqueChain(6), 6, 1 + 10},
		{"grid", Grid(3, 4), 12, 3*3 + 2*4},
		{"torus", Torus(3, 4), 12, 24},
		{"hypercube", Hypercube(4), 16, 32},
	}
	for _, c := range cases {
		if c.g.N() != c.n || c.g.M() != c.m {
			t.Errorf("%s: n=%d m=%d want n=%d m=%d", c.name, c.g.N(), c.g.M(), c.n, c.m)
		}
		if err := graph.Validate(c.g); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		if !graph.IsConnected(c.g) {
			t.Errorf("%s: not connected", c.name)
		}
	}
}

func TestGNPDeterministicAndBounded(t *testing.T) {
	a := GNP(40, 0.2, 9)
	b := GNP(40, 0.2, 9)
	if a.M() != b.M() {
		t.Fatal("GNP not deterministic for fixed seed")
	}
	c := GNP(40, 0.2, 10)
	if a.M() == c.M() && a.M() != 0 {
		// extremely unlikely to coincide exactly; tolerate but check edges differ
		same := true
		ae, ce := a.Edges(), c.Edges()
		for i := range ae {
			if ae[i] != ce[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds gave identical graphs")
		}
	}
	if GNP(10, 0, 1).M() != 0 || GNP(10, 1, 1).M() != 45 {
		t.Fatal("GNP extremes wrong")
	}
}

func TestGNM(t *testing.T) {
	g := GNM(30, 100, 4)
	if g.M() != 100 {
		t.Fatalf("GNM m=%d", g.M())
	}
	if g := GNM(5, 1000, 4); g.M() != 10 {
		t.Fatalf("GNM clamp failed: %d", g.M())
	}
}

func TestRandomFamiliesConnected(t *testing.T) {
	if !graph.IsConnected(RandomTree(50, 3)) {
		t.Fatal("RandomTree disconnected")
	}
	if RandomTree(50, 3).M() != 49 {
		t.Fatal("RandomTree edge count")
	}
	if !graph.IsConnected(RandomConnected(60, 30, 5)) {
		t.Fatal("RandomConnected disconnected")
	}
	if !graph.IsConnected(GNPConnected(80, 0.01, 7)) {
		t.Fatal("GNPConnected disconnected")
	}
	if !graph.IsConnected(GNPConnected(80, 0.2, 7)) {
		t.Fatal("GNPConnected (dense) disconnected")
	}
}

func TestLowerBoundAccounting(t *testing.T) {
	k, d, x := 3, 4, 7
	lb := LowerBoundParams(k, d, x)
	g := lb.G
	wantN := 1 + k*((d+1)+(d*d+5*d)+x)
	if g.N() != wantN {
		t.Fatalf("N=%d want %d", g.N(), wantN)
	}
	// edges: per copy: 1 (s-s_i) + d (π) + d²+5d (P paths) + x (star) + x·d (biclique)
	wantM := k * (1 + d + d*d + 5*d + x + x*d)
	if g.M() != wantM {
		t.Fatalf("M=%d want %d", g.M(), wantM)
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Fatal("lower-bound graph disconnected")
	}
	if len(lb.PiEdges) != k*d {
		t.Fatalf("%d costly edges, want %d", len(lb.PiEdges), k*d)
	}
	for _, pe := range lb.PiEdges {
		if len(lb.Fan(pe)) != x {
			t.Fatalf("fan of %+v has %d edges, want %d", pe, len(lb.Fan(pe)), x)
		}
	}
}

// The distance profile that drives Theorem 5.1: in the intact graph,
// dist(s,x)=d+2 for x ∈ X_i and dist(s,z_j)=d+3; upon failure of the j'th
// path edge, dist(s,x) jumps to 2d−j+7 and the unique shortest path ends
// with (z_j, x).
func TestLowerBoundDistanceProfile(t *testing.T) {
	lb := LowerBoundParams(2, 5, 6)
	g, d := lb.G, lb.D
	dist := bfs.Distances(g, lb.S)
	for i := 0; i < lb.K; i++ {
		for _, x := range lb.X[i] {
			if int(dist[x]) != d+2 {
				t.Fatalf("dist(s,x)=%d want %d", dist[x], d+2)
			}
		}
		for _, z := range lb.Z[i] {
			if int(dist[z]) != d+3 {
				t.Fatalf("dist(s,z)=%d want %d", dist[z], d+3)
			}
		}
	}
	sc := bfs.NewScratch(g.N())
	out := make([]int32, g.N())
	for _, pe := range lb.PiEdges {
		sc.DistancesAvoiding(g, lb.S, bfs.Restriction{BannedEdge: pe.ID}, out)
		want := int32(2*d - pe.J + 7)
		for _, x := range lb.X[pe.Copy] {
			if out[x] != want {
				t.Fatalf("copy %d edge j=%d: dist(s,x)=%d want %d", pe.Copy, pe.J, out[x], want)
			}
			// unique last edge: only the neighbour z_j attains dist-1
			count := 0
			for _, a := range g.Neighbors(int(x)) {
				if out[a.To] == want-1 {
					count++
					if a.To != pe.Z {
						t.Fatalf("unexpected penultimate %d (want z=%d)", a.To, pe.Z)
					}
				}
			}
			if count != 1 {
				t.Fatalf("x has %d shortest predecessors, want 1", count)
			}
		}
	}
}

func TestLowerBoundSizing(t *testing.T) {
	lb := LowerBound(2000, 0.25)
	n := lb.G.N()
	if n < 1000 || n > 4000 {
		t.Fatalf("sized graph has %d vertices for target 2000", n)
	}
	if lb.Eps != 0.25 {
		t.Fatal("eps not recorded")
	}
	if lb.TheoreticalBackupLowerBound(0) != len(lb.PiEdges)*len(lb.X[0]) {
		t.Fatal("theoretical bound with r=0 wrong")
	}
	if lb.TheoreticalBackupLowerBound(1<<30) != 0 {
		t.Fatal("theoretical bound with huge r must be 0")
	}
}

func TestMultiLowerBoundAccounting(t *testing.T) {
	K, kk, d, x := 3, 2, 3, 5
	lb := MultiLowerBoundParams(K, kk, d, x)
	g := lb.G
	perGadget := (d + 1) + (d*d + 5*d)
	wantN := K + kk*(K*perGadget+1+x)
	if g.N() != wantN {
		t.Fatalf("N=%d want %d", g.N(), wantN)
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Fatal("multi lower-bound graph disconnected")
	}
	if len(lb.Sources) != K || len(lb.PiEdges) != K*kk*d {
		t.Fatalf("sources=%d piEdges=%d", len(lb.Sources), len(lb.PiEdges))
	}
	for _, pe := range lb.PiEdges {
		if len(lb.Fan(pe)) != x {
			t.Fatal("fan size wrong")
		}
	}
}

// Claim 5.6's distance profile: failure of e_ℓ^{i,j} forces, for source i,
// the unique replacement path to every x ∈ X_j through z_ℓ^{i,j}; other
// sources keep their intact distance d+3.
func TestMultiLowerBoundDistanceProfile(t *testing.T) {
	lb := MultiLowerBoundParams(2, 2, 4, 5)
	g, d := lb.G, lb.D
	for i, s := range lb.Sources {
		dist := bfs.Distances(g, s)
		for j := range lb.X {
			for _, x := range lb.X[j] {
				if int(dist[x]) != d+3 {
					t.Fatalf("source %d: dist to x=%d is %d want %d", i, x, dist[x], d+3)
				}
			}
		}
	}
	sc := bfs.NewScratch(g.N())
	out := make([]int32, g.N())
	for _, pe := range lb.PiEdges {
		s := lb.Sources[pe.Source]
		sc.DistancesAvoiding(g, s, bfs.Restriction{BannedEdge: pe.ID}, out)
		want := int32(2*d - pe.L + 7) // 1 + (ℓ-1) + t_ℓ + 1 with t_ℓ = 6+2(d-ℓ)
		for _, x := range lb.X[pe.Column] {
			if out[x] != want {
				t.Fatalf("src %d col %d ℓ=%d: dist=%d want %d", pe.Source, pe.Column, pe.L, out[x], want)
			}
			count := 0
			for _, a := range g.Neighbors(int(x)) {
				if out[a.To] == want-1 {
					count++
					if a.To != pe.Z {
						t.Fatalf("unexpected penultimate %d (want z=%d)", a.To, pe.Z)
					}
				}
			}
			if count != 1 {
				t.Fatalf("x has %d shortest predecessors, want 1", count)
			}
		}
		// an unaffected source keeps its intact distance
		other := lb.Sources[(pe.Source+1)%len(lb.Sources)]
		sc2 := bfs.NewScratch(g.N())
		d2 := sc2.DistAvoiding(g, other, int(lb.X[pe.Column][0]), bfs.Restriction{BannedEdge: pe.ID})
		if int(d2) != d+3 {
			t.Fatalf("unaffected source distance changed: %d want %d", d2, d+3)
		}
	}
}

func TestMultiLowerBoundSizing(t *testing.T) {
	lb := MultiLowerBound(3000, 4, 0.25)
	if lb.G.N() < 1500 || lb.G.N() > 6000 {
		t.Fatalf("sized to %d for target 3000", lb.G.N())
	}
}
