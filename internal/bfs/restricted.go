package bfs

import (
	"ftbfs/internal/graph"
)

// Restriction describes the part of G excluded from a search: at most one
// banned edge (the failing edge e), an optional banned-vertex set (the
// removed path interiors of the graphs G_j(v) in Algorithm Pcons), and an
// optional whitelist of edges (searching inside a structure H ⊆ G).
// A nil BannedVertices means no vertex is banned; a nil AllowedEdges means
// every edge of G may be used; BannedEdge may be graph.NoEdge.
type Restriction struct {
	BannedEdge     graph.EdgeID
	BannedVertices *graph.VertexSet
	AllowedEdges   *graph.EdgeSet
}

// blocks reports whether the restriction forbids traversing arc a into a.To.
func (r Restriction) blocks(a graph.Arc) bool {
	if a.ID == r.BannedEdge {
		return true
	}
	if r.AllowedEdges != nil && !r.AllowedEdges.Contains(a.ID) {
		return true
	}
	return r.BannedVertices != nil && r.BannedVertices.Contains(a.To)
}

// Scratch holds reusable buffers for repeated restricted searches, avoiding
// per-call allocation in the hot loops of the replacement-path engine.
// A Scratch is not safe for concurrent use.
type Scratch struct {
	dist  []int32
	queue []int32
	epoch []int32
	cur   int32
}

// NewScratch returns scratch buffers for graphs with n vertices.
func NewScratch(n int) *Scratch {
	return &Scratch{
		dist:  make([]int32, n),
		queue: make([]int32, 0, n),
		epoch: make([]int32, n),
	}
}

func (sc *Scratch) reset() {
	sc.cur++
	sc.queue = sc.queue[:0]
}

func (sc *Scratch) seen(v int32) bool { return sc.epoch[v] == sc.cur }

func (sc *Scratch) set(v, d int32) {
	sc.epoch[v] = sc.cur
	sc.dist[v] = d
}

// DistancesAvoiding runs BFS from s under the restriction and writes
// distances into out (len must be g.N()); unreachable and banned vertices get
// Unreachable. It returns out for chaining.
func (sc *Scratch) DistancesAvoiding(g *graph.Graph, s int, r Restriction, out []int32) []int32 {
	sc.reset()
	if r.BannedVertices == nil || !r.BannedVertices.Contains(int32(s)) {
		sc.set(int32(s), 0)
		sc.queue = append(sc.queue, int32(s))
	}
	for head := 0; head < len(sc.queue); head++ {
		u := sc.queue[head]
		for _, a := range g.Neighbors(int(u)) {
			if sc.seen(a.To) || r.blocks(a) {
				continue
			}
			sc.set(a.To, sc.dist[u]+1)
			sc.queue = append(sc.queue, a.To)
		}
	}
	for v := range out {
		if sc.seen(int32(v)) {
			out[v] = sc.dist[v]
		} else {
			out[v] = Unreachable
		}
	}
	return out
}

// DistAvoiding returns dist(s, target, G under restriction), or Unreachable.
// It early-exits as soon as the target is settled.
func (sc *Scratch) DistAvoiding(g *graph.Graph, s, target int, r Restriction) int32 {
	if s == target {
		return 0
	}
	sc.reset()
	if r.BannedVertices != nil && r.BannedVertices.Contains(int32(s)) {
		return Unreachable
	}
	sc.set(int32(s), 0)
	sc.queue = append(sc.queue, int32(s))
	for head := 0; head < len(sc.queue); head++ {
		u := sc.queue[head]
		for _, a := range g.Neighbors(int(u)) {
			if sc.seen(a.To) || r.blocks(a) {
				continue
			}
			if a.To == int32(target) {
				return sc.dist[u] + 1
			}
			sc.set(a.To, sc.dist[u]+1)
			sc.queue = append(sc.queue, a.To)
		}
	}
	return Unreachable
}

// CanonicalPathAvoiding returns the canonical shortest path from root to
// target in G under the restriction, as a vertex sequence starting at root,
// or nil if target is unreachable. Canonical means: BFS rooted at root with
// min-index parents, then the unique tree path. The replacement-path engine
// roots this at the detour's terminal v so that detours of the same terminal
// share suffixes deterministically (see package comment).
func (sc *Scratch) CanonicalPathAvoiding(g *graph.Graph, root, target int, r Restriction) []int32 {
	sc.reset()
	if r.BannedVertices != nil &&
		(r.BannedVertices.Contains(int32(root)) || r.BannedVertices.Contains(int32(target))) {
		return nil
	}
	if root == target {
		return []int32{int32(root)}
	}
	sc.set(int32(root), 0)
	sc.queue = append(sc.queue, int32(root))
	found := false
	for head := 0; head < len(sc.queue) && !found; head++ {
		u := sc.queue[head]
		for _, a := range g.Neighbors(int(u)) {
			if sc.seen(a.To) || r.blocks(a) {
				continue
			}
			sc.set(a.To, sc.dist[u]+1)
			sc.queue = append(sc.queue, a.To)
			if a.To == int32(target) {
				found = true
			}
		}
	}
	if !found {
		return nil
	}
	// Walk back from target choosing the min-index predecessor at each level
	// (adjacency sorted ⇒ first match is minimal).
	path := make([]int32, sc.dist[target]+1)
	x := int32(target)
	for i := len(path) - 1; i >= 0; i-- {
		path[i] = x
		if i == 0 {
			break
		}
		prev := int32(-1)
		for _, a := range g.Neighbors(int(x)) {
			// The arc must be traversable in the restricted graph and one
			// level closer to the root.
			if r.blocks(a) {
				continue
			}
			if sc.seen(a.To) && sc.dist[a.To] == sc.dist[x]-1 {
				prev = a.To
				break
			}
		}
		if prev < 0 {
			panic("bfs: broken predecessor chain")
		}
		x = prev
	}
	return path
}
