package bfs

import (
	"math"

	"ftbfs/internal/graph"
)

// Repair recomputes BFS distances after a tree-edge (Run) or tree-vertex
// (RunAvoidingVertex) failure, touching only the vertices that can actually
// change: the failed subtree. Deleting a tree edge e = (p, c) of a BFS tree
// of H leaves every vertex outside the subtree of c with its intact
// distance (its tree path avoids e), so the new distances inside the
// subtree satisfy a unit-weight shortest-path problem seeded from the arcs
// crossing into the subtree: for w inside,
//
//	dist'(w) = min( min_{u outside, {u,w} ∈ H\{e}} intact(u) + 1 + dist_sub(w', w) )
//
// where the inner walk stays inside the subtree (any shortest path in
// H\{e}, decomposed at its LAST entry into the subtree, has exactly this
// shape). Repair solves it with a bucket queue over distance levels — a
// multi-seed BFS whose cost is O(Σ_{w ∈ subtree} deg_H(w)) instead of the
// O(|E(H)|) of a from-scratch search, and O(1) extra per level spanned.
//
// A Repair is not safe for concurrent use; pool it alongside the oracle
// that owns it.
type Repair struct {
	inSub   []int32 // epoch stamp: v is in the current subtree
	settled []int32 // epoch stamp: dist[v] is final for the current run
	dist    []int32
	epoch   int32
	buckets [][]int32 // pending vertices per distance level
	levels  []int32   // non-empty bucket levels of the current run, for reset
}

// NewRepair returns a repair scratch for graphs with n vertices.
func NewRepair(n int) *Repair {
	return &Repair{
		inSub:   make([]int32, n),
		settled: make([]int32, n),
		dist:    make([]int32, n),
		buckets: make([][]int32, n+1),
	}
}

// Run computes dist(s, ·) in H \ {failed} for every vertex of sub, where h
// is the CSR adjacency of H, failed is a tree edge of H's BFS tree, sub is
// the subtree hanging below it (the exact set of vertices whose distance
// may change), and intact[u] is the unchanged distance of every u ∉ sub.
// Results stay readable through Dist until the next Run.
func (r *Repair) Run(h *graph.CSR, intact []int32, sub []int32, failed graph.EdgeID) {
	r.run(h, intact, sub, failed, -1)
}

// RunAvoidingVertex is Run for a failed VERTEX w of H's BFS tree: sub must
// be the strict descendants of w (the exact set of vertices whose distance
// may change — every vertex outside w's subtree keeps its tree path, and w
// itself leaves the graph), and every arc incident to w is banned from the
// search. intact[u] is the unchanged distance of every u ∉ sub ∪ {w}.
func (r *Repair) RunAvoidingVertex(h *graph.CSR, intact []int32, sub []int32, failed int32) {
	r.run(h, intact, sub, graph.NoEdge, failed)
}

// run is the shared repair search; bannedEdge is graph.NoEdge or the failed
// tree edge, bannedVertex is -1 or the failed tree vertex. Exactly one of
// the two names a real failure.
func (r *Repair) run(h *graph.CSR, intact []int32, sub []int32, bannedEdge graph.EdgeID, bannedVertex int32) {
	r.nextEpoch()
	for _, v := range sub {
		r.inSub[v] = r.epoch
	}
	// Seed each subtree vertex with its best entering arc from the settled
	// outside world. The failed edge is the one tree arc entering the
	// subtree root, and a failed vertex is never in sub but holds an intact
	// distance; skipping both here is the only place the failure shows up —
	// the relaxation below stays inside sub, which the failed vertex cannot
	// be part of.
	for _, v := range sub {
		best := int32(-1)
		for _, a := range h.ArcsOf(v) {
			if a.ID == bannedEdge || a.To == bannedVertex || r.inSub[a.To] == r.epoch {
				continue
			}
			if d := intact[a.To]; d >= 0 && (best < 0 || d+1 < best) {
				best = d + 1
			}
		}
		if best >= 0 {
			r.push(v, best)
		}
	}
	// Unit-weight Dijkstra over the bucket queue: levels settle in
	// increasing order, each pop either settles a vertex or discards a
	// superseded entry.
	for li := 0; li < len(r.levels); li++ {
		level := r.levels[li]
		// Draining pushes only to level+1, never back into this bucket, so a
		// plain index loop over the (possibly growing) levels list is safe.
		bucket := r.buckets[level]
		for bi := 0; bi < len(bucket); bi++ {
			v := bucket[bi]
			if r.settled[v] == r.epoch {
				continue
			}
			r.settled[v] = r.epoch
			r.dist[v] = level
			for _, a := range h.ArcsOf(v) {
				if a.ID == bannedEdge || r.inSub[a.To] != r.epoch || r.settled[a.To] == r.epoch {
					continue
				}
				r.push(a.To, level+1)
			}
		}
		r.buckets[level] = bucket[:0]
	}
	r.levels = r.levels[:0]
}

// push enqueues v at the given distance level, recording first use of the
// level so Run can drain and reset exactly the buckets it touched. Levels
// are pushed in non-decreasing order (seeds may arrive unordered, but every
// relaxation targets level+1 ≥ the level being drained), so an insertion
// sort step keeps r.levels sorted at O(1) amortized cost.
func (r *Repair) push(v, level int32) {
	if int(level) >= len(r.buckets) {
		return // distances are < n by construction; guard against misuse
	}
	if len(r.buckets[level]) == 0 {
		r.levels = append(r.levels, level)
		for i := len(r.levels) - 1; i > 0 && r.levels[i-1] > r.levels[i]; i-- {
			r.levels[i-1], r.levels[i] = r.levels[i], r.levels[i-1]
		}
	}
	r.buckets[level] = append(r.buckets[level], v)
}

// Dist returns the repaired distance of v — valid only for vertices of the
// sub slice passed to the last Run; vertices the repair never reached are
// Unreachable.
func (r *Repair) Dist(v int32) int32 {
	if r.settled[v] != r.epoch {
		return Unreachable
	}
	return r.dist[v]
}

// nextEpoch advances the stamp, resetting the arrays on the (practically
// unreachable) wrap so a long-lived server never confuses stamps.
func (r *Repair) nextEpoch() {
	if r.epoch == math.MaxInt32 {
		for i := range r.inSub {
			r.inSub[i] = 0
			r.settled[i] = 0
		}
		r.epoch = 0
	}
	r.epoch++
}
