package bfs

import (
	"math/rand"
	"testing"

	"ftbfs/internal/graph"
)

func randomConnected(t *testing.T, n, extra int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 1; i < n; i++ {
		if _, err := g.AddEdge(i, rng.Intn(i)); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g.Freeze()
}

func TestFromCSRMatchesFrom(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomConnected(t, 80, 120, seed)
		want := From(g, 0)
		got := FromCSR(g.CSRView(), 0)
		for v := 0; v < g.N(); v++ {
			if got.Dist[v] != want.Dist[v] {
				t.Fatalf("seed %d: Dist[%d] = %d, want %d", seed, v, got.Dist[v], want.Dist[v])
			}
			if got.Parent[v] != want.Parent[v] || got.ParentEdge[v] != want.ParentEdge[v] {
				t.Fatalf("seed %d: parent of %d: (%d,%d), want (%d,%d)", seed, v,
					got.Parent[v], got.ParentEdge[v], want.Parent[v], want.ParentEdge[v])
			}
		}
	}
}

// subtreeOf collects the vertices whose canonical tree path passes through
// c — the brute-force definition the repair search's preorder interval must
// agree with.
func subtreeOf(bt *Tree, c int32) []int32 {
	var sub []int32
	for v := int32(0); int(v) < len(bt.Dist); v++ {
		if bt.Dist[v] == Unreachable {
			continue
		}
		for x := v; x >= 0; x = bt.Parent[x] {
			if x == c {
				sub = append(sub, v)
				break
			}
		}
	}
	return sub
}

// TestRepairMatchesFullSearch fails every tree edge of random graphs and
// checks the subtree-local repair against a from-scratch restricted BFS.
func TestRepairMatchesFullSearch(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		extra := int(seed) * 20 // seed 0: a tree, where every failure disconnects
		g := randomConnected(t, 60, extra, seed)
		csr := g.CSRView()
		bt := From(g, 0)
		r := NewRepair(g.N())
		sc := NewScratch(g.N())
		want := make([]int32, g.N())
		for v := int32(1); int(v) < g.N(); v++ {
			id := bt.ParentEdge[v]
			if id == graph.NoEdge {
				continue
			}
			sub := subtreeOf(bt, v)
			r.Run(csr, bt.Dist, sub, id)
			sc.DistancesAvoiding(g, 0, Restriction{BannedEdge: id}, want)
			for _, w := range sub {
				if got := r.Dist(w); got != want[w] {
					t.Fatalf("seed %d, failed edge %d (child %d): dist[%d] = %d, want %d",
						seed, id, v, w, got, want[w])
				}
			}
		}
	}
}

// TestRepairScratchReuse runs two repairs back to back and checks the second
// is not polluted by the first (epoch stamping, bucket reset).
func TestRepairScratchReuse(t *testing.T) {
	g := randomConnected(t, 50, 40, 7)
	csr := g.CSRView()
	bt := From(g, 0)
	r := NewRepair(g.N())
	sc := NewScratch(g.N())
	want := make([]int32, g.N())
	var treeChildren []int32
	for v := int32(1); int(v) < g.N(); v++ {
		if bt.ParentEdge[v] != graph.NoEdge {
			treeChildren = append(treeChildren, v)
		}
	}
	for round := 0; round < 3; round++ {
		for _, c := range treeChildren {
			id := bt.ParentEdge[c]
			sub := subtreeOf(bt, c)
			r.Run(csr, bt.Dist, sub, id)
			sc.DistancesAvoiding(g, 0, Restriction{BannedEdge: id}, want)
			for _, w := range sub {
				if got := r.Dist(w); got != want[w] {
					t.Fatalf("round %d, child %d: dist[%d] = %d, want %d", round, c, w, got, want[w])
				}
			}
		}
	}
}
