package bfs

import (
	"math/rand"
	"testing"

	"ftbfs/internal/graph"
)

func grid3x3() *graph.Graph {
	// 0 1 2
	// 3 4 5
	// 6 7 8
	b := graph.NewBuilder(9)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			v := r*3 + c
			if c+1 < 3 {
				b.Add(v, v+1)
			}
			if r+1 < 3 {
				b.Add(v, v+3)
			}
		}
	}
	return b.Graph()
}

func TestFromDistances(t *testing.T) {
	g := grid3x3()
	tr := From(g, 0)
	want := []int32{0, 1, 2, 1, 2, 3, 2, 3, 4}
	for v, d := range want {
		if tr.Dist[v] != d {
			t.Fatalf("dist[%d]=%d want %d", v, tr.Dist[v], d)
		}
	}
	if tr.Parent[0] != -1 || tr.ParentEdge[0] != graph.NoEdge {
		t.Fatal("source must have no parent")
	}
}

func TestCanonicalMinIndexParent(t *testing.T) {
	g := grid3x3()
	tr := From(g, 0)
	// vertex 4 has parents 1 and 3 at distance 1; canonical is min = 1.
	if tr.Parent[4] != 1 {
		t.Fatalf("parent[4]=%d want 1", tr.Parent[4])
	}
	// vertex 8 has parents 5 and 7 at distance 3; canonical is 5.
	if tr.Parent[8] != 5 {
		t.Fatalf("parent[8]=%d want 5", tr.Parent[8])
	}
}

func TestPathToPrefixClosure(t *testing.T) {
	g := grid3x3()
	tr := From(g, 0)
	for v := 0; v < g.N(); v++ {
		p := tr.PathTo(v)
		if int32(len(p)-1) != tr.Dist[v] {
			t.Fatalf("path length %d != dist %d", len(p)-1, tr.Dist[v])
		}
		if p[0] != 0 || p[len(p)-1] != int32(v) {
			t.Fatalf("bad endpoints %v", p)
		}
		// prefix closure: the canonical path to p[i] is p[:i+1]
		for i, u := range p {
			q := tr.PathTo(int(u))
			if len(q) != i+1 {
				t.Fatalf("prefix closure violated at %d on path to %d", u, v)
			}
			for j := range q {
				if q[j] != p[j] {
					t.Fatalf("prefix mismatch %v vs %v", q, p[:i+1])
				}
			}
		}
	}
}

func TestUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	b.Add(0, 1)
	g := b.Graph()
	tr := From(g, 0)
	if tr.Dist[2] != Unreachable || tr.PathTo(2) != nil {
		t.Fatal("vertex 2 should be unreachable")
	}
	if len(tr.Order) != 2 {
		t.Fatalf("Order=%v", tr.Order)
	}
}

func TestTreeEdgeSetAndChildEndpoint(t *testing.T) {
	g := grid3x3()
	tr := From(g, 0)
	es := tr.EdgeSet(g.M())
	if es.Len() != 8 {
		t.Fatalf("tree must have n-1=8 edges, got %d", es.Len())
	}
	es.ForEach(func(id graph.EdgeID) {
		child := tr.ChildEndpoint(g, id)
		e := g.EdgeByID(id)
		other := e.Other(child)
		if tr.Dist[child] != tr.Dist[other]+1 {
			t.Fatalf("edge %v: child %d not one deeper", e, child)
		}
		if tr.Parent[child] != other {
			t.Fatalf("edge %v not a parent edge of %d", e, child)
		}
	})
}

func TestDistancesAvoidingEdge(t *testing.T) {
	// cycle of 6: removing edge {0,1} forces the long way round.
	b := graph.NewBuilder(6)
	for i := 0; i < 6; i++ {
		b.Add(i, (i+1)%6)
	}
	g := b.Graph()
	sc := NewScratch(g.N())
	out := make([]int32, g.N())
	sc.DistancesAvoiding(g, 0, Restriction{BannedEdge: g.EdgeIDOf(0, 1)}, out)
	if out[1] != 5 {
		t.Fatalf("dist to 1 avoiding {0,1} = %d want 5", out[1])
	}
	if out[3] != 3 {
		t.Fatalf("dist to 3 = %d want 3", out[3])
	}
}

func TestDistancesAvoidingVertices(t *testing.T) {
	g := grid3x3()
	banned := graph.NewVertexSet(g.N())
	banned.Add(1)
	banned.Add(3)
	sc := NewScratch(g.N())
	out := make([]int32, g.N())
	sc.DistancesAvoiding(g, 0, Restriction{BannedEdge: graph.NoEdge, BannedVertices: banned}, out)
	if out[4] != Unreachable {
		t.Fatalf("4 should be cut off, got %d", out[4])
	}
	if out[1] != Unreachable || out[3] != Unreachable {
		t.Fatal("banned vertices must be unreachable")
	}
}

func TestDistAvoidingEarlyExit(t *testing.T) {
	b := graph.NewBuilder(6)
	for i := 0; i < 6; i++ {
		b.Add(i, (i+1)%6)
	}
	g := b.Graph()
	sc := NewScratch(g.N())
	d := sc.DistAvoiding(g, 0, 1, Restriction{BannedEdge: g.EdgeIDOf(0, 1)})
	if d != 5 {
		t.Fatalf("DistAvoiding=%d want 5", d)
	}
	if sc.DistAvoiding(g, 2, 2, Restriction{BannedEdge: graph.NoEdge}) != 0 {
		t.Fatal("self distance must be 0")
	}
}

func TestDistAvoidingBannedSource(t *testing.T) {
	g := grid3x3()
	banned := graph.NewVertexSet(g.N())
	banned.Add(0)
	sc := NewScratch(g.N())
	if d := sc.DistAvoiding(g, 0, 5, Restriction{BannedEdge: graph.NoEdge, BannedVertices: banned}); d != Unreachable {
		t.Fatalf("banned source should be unreachable, got %d", d)
	}
}

func TestCanonicalPathAvoiding(t *testing.T) {
	g := grid3x3()
	sc := NewScratch(g.N())
	p := sc.CanonicalPathAvoiding(g, 8, 0, Restriction{BannedEdge: graph.NoEdge})
	if len(p) != 5 || p[0] != 8 || p[4] != 0 {
		t.Fatalf("bad path %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(int(p[i]), int(p[i+1])) {
			t.Fatalf("non-edge %d-%d in path %v", p[i], p[i+1], p)
		}
	}
	// Deterministic: same call twice gives identical path.
	q := sc.CanonicalPathAvoiding(g, 8, 0, Restriction{BannedEdge: graph.NoEdge})
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("canonical path not deterministic")
		}
	}
	// Unreachable target gives nil.
	banned := graph.NewVertexSet(g.N())
	banned.Add(1)
	banned.Add(3)
	if sc.CanonicalPathAvoiding(g, 0, 4, Restriction{BannedEdge: graph.NoEdge, BannedVertices: banned}) != nil {
		t.Fatal("expected nil path")
	}
}

func TestScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := graph.NewBuilder(40)
	for i := 1; i < 40; i++ {
		b.Add(i, rng.Intn(i)) // random connected tree
	}
	for k := 0; k < 60; k++ {
		b.Add(rng.Intn(40), rng.Intn(40))
	}
	g := b.Graph()
	sc := NewScratch(g.N())
	out := make([]int32, g.N())
	for trial := 0; trial < 20; trial++ {
		e := graph.EdgeID(rng.Intn(g.M()))
		sc.DistancesAvoiding(g, 0, Restriction{BannedEdge: e}, out)
		// brute force: rebuild graph without e
		nb := graph.NewBuilder(g.N())
		for id, ed := range g.Edges() {
			if graph.EdgeID(id) != e {
				nb.Add(int(ed.U), int(ed.V))
			}
		}
		want := Distances(nb.Graph(), 0)
		for v := range want {
			if out[v] != want[v] {
				t.Fatalf("trial %d: dist[%d]=%d want %d (edge %v)", trial, v, out[v], want[v], g.EdgeByID(e))
			}
		}
	}
}

func TestEccentricity(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddPath(0, 1, 2, 3, 4)
	g := b.Graph()
	if Eccentricity(g, 0) != 4 || Eccentricity(g, 2) != 2 {
		t.Fatal("eccentricity wrong")
	}
}
