// Package bfs implements breadth-first search primitives with deterministic
// canonical tie-breaking. The paper (Section 2) assumes a positive weight
// assignment W that makes the shortest path between every pair of vertices
// unique in every subgraph G' ⊆ G. We realise W with the min-index parent
// rule: among all neighbours u of v with dist(s,u) = dist(s,v)-1, the
// canonical parent is the smallest-id u. The resulting canonical paths are
// unique and prefix-closed in every (sub)graph, which is exactly what the
// constructions of Sections 3-4 rely on (Claims 4.4-4.6); see DESIGN.md §3
// for the substitution note.
package bfs

import (
	"ftbfs/internal/graph"
)

// Unreachable is the distance value used for vertices not reachable from the
// source.
const Unreachable int32 = -1

// Tree is the canonical BFS tree T0(s): distances, min-index parents and the
// tree-edge ids. It corresponds to the paper's T0 = ⋃_v π(s,v).
type Tree struct {
	Source     int32
	Dist       []int32
	Parent     []int32        // canonical parent; -1 for the source and unreachable vertices
	ParentEdge []graph.EdgeID // id of {Parent[v], v}; NoEdge where Parent is -1
	Order      []int32        // reachable vertices in increasing distance (BFS) order
}

// From runs a BFS from s over the frozen graph g and returns the canonical
// tree. Parents are assigned by the min-index rule, not by discovery order,
// so the result is independent of queue internals.
func From(g *graph.Graph, s int) *Tree {
	if !g.Frozen() {
		panic("bfs: graph must be frozen")
	}
	n := g.N()
	t := &Tree{
		Source:     int32(s),
		Dist:       make([]int32, n),
		Parent:     make([]int32, n),
		ParentEdge: make([]graph.EdgeID, n),
	}
	for i := 0; i < n; i++ {
		t.Dist[i] = Unreachable
		t.Parent[i] = -1
		t.ParentEdge[i] = graph.NoEdge
	}
	queue := make([]int32, 0, n)
	t.Dist[s] = 0
	queue = append(queue, int32(s))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, a := range g.Neighbors(int(u)) {
			if t.Dist[a.To] == Unreachable {
				t.Dist[a.To] = t.Dist[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	t.Order = queue
	// Canonical min-index parents: adjacency lists are sorted by Freeze, so
	// the first neighbour one level up is the smallest-id one.
	for _, v := range queue {
		if v == int32(s) {
			continue
		}
		for _, a := range g.Neighbors(int(v)) {
			if t.Dist[a.To] == t.Dist[v]-1 {
				t.Parent[v] = a.To
				t.ParentEdge[v] = a.ID
				break
			}
		}
	}
	return t
}

// PathTo returns the canonical shortest path π(s,v) as a vertex sequence
// from the source to v, or nil if v is unreachable.
func (t *Tree) PathTo(v int) []int32 {
	if t.Dist[v] == Unreachable {
		return nil
	}
	path := make([]int32, t.Dist[v]+1)
	x := int32(v)
	for i := len(path) - 1; i >= 0; i-- {
		path[i] = x
		x = t.Parent[x]
	}
	return path
}

// EdgeSet returns the set of tree-edge ids (the edges of T0).
func (t *Tree) EdgeSet(m int) *graph.EdgeSet {
	s := graph.NewEdgeSet(m)
	for v := range t.ParentEdge {
		if t.ParentEdge[v] != graph.NoEdge {
			s.Add(t.ParentEdge[v])
		}
	}
	return s
}

// OnPath reports whether tree edge id (given by its child endpoint, i.e. the
// deeper endpoint) lies on π(s,v): true iff child is an ancestor-or-self of
// v. This requires an ancestor oracle and therefore lives in package tree;
// here we expose only the child-endpoint convention helper.
//
// ChildEndpoint returns, for a tree edge id on this tree, the endpoint
// farther from the source (the paper directs tree edges away from s).
func (t *Tree) ChildEndpoint(g *graph.Graph, id graph.EdgeID) int32 {
	e := g.EdgeByID(id)
	if t.Dist[e.U] > t.Dist[e.V] {
		return e.U
	}
	return e.V
}

// Distances is a convenience wrapper returning only the distance array.
func Distances(g *graph.Graph, s int) []int32 {
	return From(g, s).Dist
}

// Eccentricity returns max_v dist(s,v) over reachable v (0 for isolated s).
func Eccentricity(g *graph.Graph, s int) int {
	d := Distances(g, s)
	ecc := int32(0)
	for _, x := range d {
		if x > ecc {
			ecc = x
		}
	}
	return int(ecc)
}
