package bfs

import (
	"ftbfs/internal/graph"
)

// FromCSR runs a canonical BFS from s over a CSR adjacency view and returns
// the tree. It is From for a materialized (sub)graph: rows of a CSR extracted
// from a frozen graph keep the neighbour-sorted order, so the min-index
// parent rule yields the same canonical tree the equivalent restricted
// search over the base graph would.
func FromCSR(c *graph.CSR, s int) *Tree {
	n := c.N()
	t := &Tree{
		Source:     int32(s),
		Dist:       make([]int32, n),
		Parent:     make([]int32, n),
		ParentEdge: make([]graph.EdgeID, n),
	}
	for i := 0; i < n; i++ {
		t.Dist[i] = Unreachable
		t.Parent[i] = -1
		t.ParentEdge[i] = graph.NoEdge
	}
	queue := make([]int32, 0, n)
	t.Dist[s] = 0
	queue = append(queue, int32(s))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, a := range c.ArcsOf(u) {
			if t.Dist[a.To] == Unreachable {
				t.Dist[a.To] = t.Dist[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	t.Order = queue
	for _, v := range queue {
		if v == int32(s) {
			continue
		}
		for _, a := range c.ArcsOf(v) {
			if t.Dist[a.To] == t.Dist[v]-1 {
				t.Parent[v] = a.To
				t.ParentEdge[v] = a.ID
				break
			}
		}
	}
	return t
}
