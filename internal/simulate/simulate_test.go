package simulate

import (
	"testing"

	"ftbfs/internal/core"
	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
)

func TestEdgeCampaignCleanOnValidStructure(t *testing.T) {
	for _, eps := range []float64{0, 0.3, 1} {
		g := gen.RandomConnected(60, 90, 7)
		st, err := core.Build(g, 0, eps, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := EdgeCampaign(st, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("ε=%g: %v", eps, rep)
		}
		if rep.Failures != st.BackupCount() {
			t.Fatalf("failures %d != backup %d", rep.Failures, st.BackupCount())
		}
		if rep.Probes != rep.Failures*g.N() {
			t.Fatalf("probes %d != failures×n", rep.Probes)
		}
	}
}

func TestEdgeCampaignSampledProbes(t *testing.T) {
	g := gen.Grid(6, 6)
	st, err := core.Build(g, 0, 0.25, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EdgeCampaign(st, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probes != rep.Failures*5 {
		t.Fatalf("probes %d != failures×5", rep.Probes)
	}
	if !rep.Clean() {
		t.Fatalf("violations on valid structure: %v", rep)
	}
	// determinism for fixed seed
	rep2, _ := EdgeCampaign(st, 5, 42)
	if rep.Probes != rep2.Probes || rep.Violations != rep2.Violations || rep.MaxImpact != rep2.MaxImpact {
		t.Fatal("campaign not deterministic")
	}
}

func TestEdgeCampaignDetectsBrokenStructure(t *testing.T) {
	g := gen.Cycle(16)
	st, err := core.Build(g, 0, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	broken := &core.Structure{
		G: g, S: 0, Eps: 1,
		Edges:      st.TreeEdges.Clone(), // tree only: cycle failures strand the subtree
		Reinforced: graph.NewEdgeSet(g.M()),
		TreeEdges:  st.TreeEdges.Clone(),
	}
	rep, err := EdgeCampaign(broken, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("campaign missed the violations")
	}
}

func TestEdgeCampaignImpactHistogram(t *testing.T) {
	// On a cycle, failing tree edge (0,1) lengthens v=1's distance from 1
	// to n-1: large impacts land in the capped last bucket.
	n := 20
	g := gen.Cycle(n)
	st, err := core.Build(g, 0, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EdgeCampaign(st, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxImpact < n/2-2 {
		t.Fatalf("max impact %d suspiciously small", rep.MaxImpact)
	}
	total := 0
	for _, c := range rep.Impact {
		total += c
	}
	if total == 0 {
		t.Fatal("empty impact histogram")
	}
	if rep.Impact[len(rep.Impact)-1] == 0 {
		t.Fatal("expected capped bucket hits on a cycle")
	}
	if rep.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestEdgeCampaignNilStructure(t *testing.T) {
	if _, err := EdgeCampaign(nil, 0, 1); err == nil {
		t.Fatal("nil accepted")
	}
}
