// Package simulate runs operational failure campaigns against built
// structures: fail every (or a sampled set of) backup edge(s), probe
// distances through the surviving structure, and aggregate contract
// violations and failure-impact statistics. It is the analytics layer a
// network operator would run before deploying a structure.
package simulate

import (
	"fmt"
	"math/rand"

	"ftbfs/internal/bfs"
	"ftbfs/internal/core"
	"ftbfs/internal/graph"
)

// Report aggregates a campaign.
type Report struct {
	Failures       int // distinct single-edge failures simulated
	Probes         int // (failure, target) distance probes
	Violations     int // probes where H's distance exceeded G's
	Disconnections int // probes where the failure cut the target off in G itself

	// Impact histogram: how much a failure lengthened the true distance
	// (dist(s,v,G\{e}) − dist(s,v,G)), over probes with finite distances.
	// Index capped at len(Impact)-1.
	Impact    []int
	MaxImpact int
}

// EdgeCampaign fails every non-reinforced edge of the structure and probes
// probesPerFailure random targets per failure (0 = every vertex). The seed
// drives target sampling only; the failure sweep is exhaustive.
func EdgeCampaign(st *core.Structure, probesPerFailure int, seed int64) (*Report, error) {
	if st == nil || st.G == nil {
		return nil, fmt.Errorf("simulate: nil structure")
	}
	g := st.G
	rng := rand.New(rand.NewSource(seed))
	rep := &Report{Impact: make([]int, 8)}
	scG := bfs.NewScratch(g.N())
	scH := bfs.NewScratch(g.N())
	distG := make([]int32, g.N())
	distH := make([]int32, g.N())
	dist0 := bfs.Distances(g, st.S)

	fail := func(e graph.EdgeID) {
		rep.Failures++
		scG.DistancesAvoiding(g, st.S, bfs.Restriction{BannedEdge: e}, distG)
		scH.DistancesAvoiding(g, st.S, bfs.Restriction{BannedEdge: e, AllowedEdges: st.Edges}, distH)
		probe := func(v int32) {
			rep.Probes++
			if distG[v] == bfs.Unreachable {
				rep.Disconnections++
				return
			}
			if distH[v] == bfs.Unreachable || distH[v] > distG[v] {
				rep.Violations++
				return
			}
			if dist0[v] != bfs.Unreachable {
				impact := int(distG[v] - dist0[v])
				if impact > rep.MaxImpact {
					rep.MaxImpact = impact
				}
				idx := impact
				if idx >= len(rep.Impact) {
					idx = len(rep.Impact) - 1
				}
				rep.Impact[idx]++
			}
		}
		if probesPerFailure <= 0 {
			for v := int32(0); v < int32(g.N()); v++ {
				probe(v)
			}
		} else {
			for i := 0; i < probesPerFailure; i++ {
				probe(int32(rng.Intn(g.N())))
			}
		}
	}

	st.Edges.ForEach(func(e graph.EdgeID) {
		if !st.Reinforced.Contains(e) {
			fail(e)
		}
	})
	return rep, nil
}

// String implements fmt.Stringer with a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("campaign{failures=%d probes=%d violations=%d disconnections=%d maxImpact=%d}",
		r.Failures, r.Probes, r.Violations, r.Disconnections, r.MaxImpact)
}

// Clean reports whether the campaign found no contract violations.
func (r *Report) Clean() bool { return r.Violations == 0 }
