package replacement

import (
	"math/rand"
	"testing"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
	"ftbfs/internal/paths"
)

// bruteDistAvoiding computes dist(s,v,G\{e}) by rebuilding the graph.
func bruteDistAvoiding(g *graph.Graph, s int, e graph.EdgeID) []int32 {
	b := graph.NewBuilder(g.N())
	for id, ed := range g.Edges() {
		if graph.EdgeID(id) != e {
			b.Add(int(ed.U), int(ed.V))
		}
	}
	return bfs.Distances(b.Graph(), s)
}

func randomConnected(n, extra int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.Add(i, rng.Intn(i))
	}
	for k := 0; k < extra; k++ {
		b.Add(rng.Intn(n), rng.Intn(n))
	}
	return b.Graph()
}

func TestForEachFailureDistances(t *testing.T) {
	g := randomConnected(30, 40, 3)
	en := NewEngine(g, 0)
	count := 0
	en.ForEachFailure(func(e graph.EdgeID, child int32, distE []int32) {
		count++
		want := bruteDistAvoiding(g, 0, e)
		for v := range want {
			if distE[v] != want[v] {
				t.Fatalf("edge %v: dist[%d]=%d want %d", g.EdgeByID(e), v, distE[v], want[v])
			}
		}
		if en.T.ChildEndpoint(g, e) != child {
			t.Fatal("child endpoint mismatch")
		}
	})
	if count != g.N()-1 {
		t.Fatalf("visited %d failures, want n-1=%d", count, g.N()-1)
	}
}

func TestSubtreeOf(t *testing.T) {
	// path 0-1-2-3 with branch 1-4
	b := graph.NewBuilder(5)
	b.AddPath(0, 1, 2, 3)
	b.Add(1, 4)
	g := b.Graph()
	en := NewEngine(g, 0)
	got := en.SubtreeOf(1, nil)
	want := map[int32]bool{1: true, 2: true, 3: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("subtree=%v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected %d in subtree", v)
		}
	}
}

func TestCoveredByBridge(t *testing.T) {
	// path graph: every tree edge is a bridge ⇒ all pairs vacuously covered.
	b := graph.NewBuilder(5)
	b.AddPath(0, 1, 2, 3, 4)
	g := b.Graph()
	en := NewEngine(g, 0)
	if pairs := en.AllPairs(); len(pairs) != 0 {
		t.Fatalf("path graph has %d uncovered pairs, want 0", len(pairs))
	}
}

func TestCycleSinglePair(t *testing.T) {
	// 6-cycle from source 0: failing edge {0,1} forces v=1..? BFS tree from 0
	// on cycle 0-1-2-3-4-5: dists 0,1,2,3,2,1.
	n := 6
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, (i+1)%n)
	}
	g := b.Graph()
	en := NewEngine(g, 0)
	pairs := en.AllPairs()
	// Every replacement path goes the other way round the cycle; its last
	// edge is a tree edge except when the detour must end at the antipode.
	for _, p := range pairs {
		full := en.FullPath(p)
		if err := full.ValidateOn(g); err != nil {
			t.Fatalf("invalid path: %v", err)
		}
		want := bruteDistAvoiding(g, 0, p.Edge)[p.V]
		if int32(full.Len()) != want {
			t.Fatalf("pair ⟨%d,%v⟩ length %d want %d", p.V, g.EdgeByID(p.Edge), full.Len(), want)
		}
	}
}

// The master correctness test: on random graphs, enumerate all pairs and
// check the engine's covered/uncovered classification and every canonical
// path property the construction relies on.
func TestAllPairsProperties(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomConnected(40, 60, seed)
		en := NewEngine(g, 0)
		pairSet := map[[2]int32]*Pair{}
		for _, p := range en.AllPairs() {
			pairSet[[2]int32{p.V, int32(p.Edge)}] = p
		}
		en.ForEachFailure(func(e graph.EdgeID, child int32, distE []int32) {
			want := bruteDistAvoiding(g, 0, e)
			sub := en.SubtreeOf(child, nil)
			onSub := map[int32]bool{}
			for _, v := range sub {
				onSub[v] = true
			}
			for v := int32(0); v < int32(g.N()); v++ {
				p, isUncovered := pairSet[[2]int32{v, int32(e)}]
				if !onSub[v] {
					if isUncovered {
						t.Fatalf("pair for v=%d not in subtree of e=%v", v, g.EdgeByID(e))
					}
					continue
				}
				// covered ⟺ some T0 edge (u,v) attains want[v] via want[u]+1
				hasTreeLast := false
				if want[v] != bfs.Unreachable {
					for _, a := range g.Neighbors(int(v)) {
						if a.ID != e && en.TreeEdges.Contains(a.ID) &&
							want[a.To] != bfs.Unreachable && want[a.To]+1 == want[v] {
							hasTreeLast = true
							break
						}
					}
				} else {
					hasTreeLast = true // vacuous
				}
				if hasTreeLast == isUncovered {
					t.Fatalf("seed %d: pair ⟨%d,%v⟩ covered=%v but engine says uncovered=%v",
						seed, v, g.EdgeByID(e), hasTreeLast, isUncovered)
				}
				if !isUncovered {
					continue
				}
				// canonical path properties
				if p.Dist != want[v] {
					t.Fatalf("pair dist %d want %d", p.Dist, want[v])
				}
				full := en.FullPath(p)
				if err := full.ValidateOn(g); err != nil {
					t.Fatalf("invalid canonical path: %v", err)
				}
				if int32(full.Len()) != want[v] {
					t.Fatalf("path length %d want %d", full.Len(), want[v])
				}
				// avoids e
				ed := g.EdgeByID(e)
				for i := 0; i+1 < len(full); i++ {
					if (full[i] == ed.U && full[i+1] == ed.V) || (full[i] == ed.V && full[i+1] == ed.U) {
						t.Fatalf("path traverses the failed edge %v", ed)
					}
				}
				// new-ending: last edge not in T0
				if en.TreeEdges.Contains(p.LastID) {
					t.Fatal("uncovered pair with tree last edge")
				}
				// Observation 3.2: detour interior avoids π(s,v)
				pi := en.BT.PathTo(int(v))
				onPi := map[int32]bool{}
				for _, x := range pi {
					onPi[x] = true
				}
				if p.Detour.First() != p.Div || p.Detour.Last() != v {
					t.Fatal("detour endpoints wrong")
				}
				for _, x := range p.Detour[1 : len(p.Detour)-1] {
					if onPi[x] {
						t.Fatalf("detour interior touches π(s,v) at %d", x)
					}
				}
				// Claim 4.4(2): no replacement path with divergence strictly
				// above Div. Check: banning the path interior below any
				// strictly higher u_j yields a strictly longer distance.
				jstar := int(en.T.Depth[p.Div])
				if jstar > 0 {
					j := jstar - 1
					banned := graph.NewVertexSet(g.N())
					for tt := j + 1; tt < len(pi)-1; tt++ {
						banned.Add(pi[tt])
					}
					sc := bfs.NewScratch(g.N())
					d := sc.DistAvoiding(g, 0, int(v), bfs.Restriction{BannedEdge: e, BannedVertices: banned})
					if d == want[v] {
						t.Fatalf("seed %d: divergence point of ⟨%d,%v⟩ not minimal (j*=%d but j=%d works)",
							seed, v, g.EdgeByID(e), jstar, j)
					}
				}
			}
		})
	}
}

func TestUncoveredCountMatchesAllPairs(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomConnected(35, 45, seed)
		en := NewEngine(g, 0)
		if got, want := en.UncoveredCount(), len(en.AllPairs()); got != want {
			t.Fatalf("seed %d: UncoveredCount=%d, AllPairs=%d", seed, got, want)
		}
	}
}

// Claim 4.6(1): a detour is at least as long as the failing edge's distance
// from v along π(s,v).
func TestDetourLengthLowerBound(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomConnected(40, 50, seed)
		en := NewEngine(g, 0)
		for _, p := range en.AllPairs() {
			if int32(p.Detour.Len()) < p.DistFromV(en.T) {
				t.Fatalf("detour of ⟨%d,%v⟩ has length %d < dist-from-v %d",
					p.V, g.EdgeByID(p.Edge), p.Detour.Len(), p.DistFromV(en.T))
			}
		}
	}
}

// Determinism: two engines over the same graph produce identical pairs.
func TestEngineDeterminism(t *testing.T) {
	g := randomConnected(30, 40, 11)
	a := NewEngine(g, 0).AllPairs()
	b := NewEngine(g, 0).AllPairs()
	if len(a) != len(b) {
		t.Fatalf("pair counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].V != b[i].V || a[i].Edge != b[i].Edge || a[i].LastID != b[i].LastID || a[i].Div != b[i].Div {
			t.Fatalf("pair %d differs", i)
		}
		for j := range a[i].Detour {
			if a[i].Detour[j] != b[i].Detour[j] {
				t.Fatalf("detour %d differs", i)
			}
		}
	}
}

func TestFullPathPrefixIsTreePath(t *testing.T) {
	g := randomConnected(40, 60, 5)
	en := NewEngine(g, 0)
	for _, p := range en.AllPairs() {
		full := en.FullPath(p)
		prefix := paths.Path(en.BT.PathTo(int(p.Div)))
		for i := range prefix {
			if full[i] != prefix[i] {
				t.Fatal("full path does not start with π(s,Div)")
			}
		}
	}
}

func TestResetMatchesFreshEngine(t *testing.T) {
	g := randomConnected(50, 80, 9)
	en := NewEngine(g, 0)
	en.SetWorkers(3)
	first := en.AllPairs()
	if len(first) == 0 {
		t.Fatal("expected uncovered pairs on the random graph")
	}
	if &first[0] != &en.AllPairs()[0] {
		t.Fatal("AllPairs is not memoised")
	}
	for _, s := range []int{7, 21, 0} {
		en.Reset(s)
		if en.Workers() != 3 {
			t.Fatal("Reset dropped the worker preference")
		}
		fresh := NewEngine(g, s)
		if en.S != fresh.S || en.BT.Source != fresh.BT.Source {
			t.Fatalf("source %d not installed", s)
		}
		a, b := en.AllPairs(), fresh.AllPairs()
		if len(a) != len(b) {
			t.Fatalf("source %d: pair counts differ after Reset: %d vs %d", s, len(a), len(b))
		}
		for i := range a {
			if a[i].V != b[i].V || a[i].Edge != b[i].Edge || a[i].LastID != b[i].LastID {
				t.Fatalf("source %d: pair %d differs after Reset", s, i)
			}
		}
		if en.TreeEdges.Len() != fresh.TreeEdges.Len() {
			t.Fatalf("source %d: tree edges differ after Reset", s)
		}
	}
}

func TestResetInvalidatesPairsMemo(t *testing.T) {
	g := randomConnected(40, 60, 4)
	en := NewEngine(g, 5)
	before := len(en.AllPairs())
	en.Reset(5) // same source: memo must be recomputed, result unchanged
	if en.pairsReady {
		t.Fatal("Reset did not invalidate the AllPairs memo")
	}
	if after := len(en.AllPairs()); after != before {
		t.Fatalf("pair count changed across Reset to the same source: %d vs %d", after, before)
	}
}
