// Package replacement computes single-failure replacement paths: for a
// source s, a terminal v and a failing tree edge e ∈ π(s,v), the canonical
// shortest s–v path in G \ {e}. It implements Phase S0 of the paper
// (Algorithm Pcons), including the classification of vertex-edge pairs into
// covered pairs (a replacement path can reuse a T0 last edge) and uncovered
// pairs (the path is new-ending), and the extraction of detour segments.
package replacement

import (
	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
	"ftbfs/internal/paths"
	"ftbfs/internal/tree"
)

// Pair is an uncovered vertex-edge pair ⟨v,e⟩ together with its canonical
// new-ending replacement path P_{v,e} in decomposed form
// P = π(s, Div) ◦ Detour (Observation 3.2).
type Pair struct {
	V         int32        // terminal
	Edge      graph.EdgeID // failing tree edge e ∈ π(s,v)
	EdgeChild int32        // deeper endpoint of e (edges point away from s)
	Dist      int32        // |P| = dist(s, v, G\{e})
	Div       int32        // unique divergence point d(P) ∈ π(s,v)
	Detour    paths.Path   // Detour[0]=Div … Detour[last]=V; interior avoids π(s,v)
	LastID    graph.EdgeID // id of LastE(P) — never a T0 edge
}

// LastEdge returns LastE(P_{v,e}).
func (p *Pair) LastEdge() graph.Edge { return p.Detour.LastEdge() }

// DepthOfEdge returns dist(s,e): the depth of the failing edge's child
// endpoint, so deeper edges have larger values.
func (p *Pair) DepthOfEdge(t *tree.Tree) int32 { return t.Depth[p.EdgeChild] }

// DistFromV returns dist(v, e, π(s,v)) — the ordering key used by Phase S1
// ("increasing distance of the failing edge from v" = deepest edge first).
func (p *Pair) DistFromV(t *tree.Tree) int32 {
	return t.Depth[p.V] - t.Depth[p.EdgeChild]
}

// Engine bundles everything Phases S0–S2 need about (G, s): the canonical
// BFS tree, the rooted-tree structure, and reusable scratch space for the
// per-failure searches. An Engine is not safe for concurrent use.
type Engine struct {
	G  *graph.Graph
	S  int
	BT *bfs.Tree
	T  *tree.Tree

	TreeEdges *graph.EdgeSet // edges of T0

	sc      *bfs.Scratch
	distE   []int32 // dist(s, ·, G\{e}) for the failure being processed
	banned  *graph.VertexSet
	workers int // preferred parallelism for failure sweeps (0/1 = serial)

	pairs      []*Pair // memoised AllPairs result; valid while pairsReady
	pairsReady bool
}

// SetWorkers records the preferred parallelism for failure sweeps run on
// behalf of this engine: 0 or 1 mean sequential, negative means
// GOMAXPROCS, positive sets an explicit worker count.
func (en *Engine) SetWorkers(w int) { en.workers = w }

// Workers returns the preference recorded by SetWorkers.
func (en *Engine) Workers() int { return en.workers }

// NewEngine builds the engine for (g, s). g must be frozen.
func NewEngine(g *graph.Graph, s int) *Engine {
	en := &Engine{
		G:      g,
		sc:     bfs.NewScratch(g.N()),
		distE:  make([]int32, g.N()),
		banned: graph.NewVertexSet(g.N()),
	}
	en.Reset(s)
	return en
}

// Reset rebinds the engine to a new source on the same graph, recomputing the
// canonical trees but recycling every scratch allocation (BFS scratch,
// distance array, banned-vertex set). The worker preference is preserved; the
// AllPairs memo is invalidated. Batch builders use this to amortise the
// scratch across one worker's whole stream of sources.
func (en *Engine) Reset(s int) {
	bt := bfs.From(en.G, s)
	en.S = s
	en.BT = bt
	en.T = tree.Build(en.G, bt)
	en.TreeEdges = bt.EdgeSet(en.G.M())
	en.pairs = nil
	en.pairsReady = false
}

// ForEachFailure iterates over every tree edge e (every failure that can
// change distances), computing dist(s, ·, G\{e}) once per edge and invoking
// fn(e, child endpoint, distances). The distance slice is reused between
// calls: fn must not retain it.
func (en *Engine) ForEachFailure(fn func(e graph.EdgeID, child int32, distE []int32)) {
	for v := 0; v < en.G.N(); v++ {
		id := en.BT.ParentEdge[v]
		if id == graph.NoEdge {
			continue
		}
		en.sc.DistancesAvoiding(en.G, en.S, bfs.Restriction{BannedEdge: id}, en.distE)
		fn(id, int32(v), en.distE)
	}
}

// SubtreeOf appends to out all vertices in the subtree rooted at c (the
// terminals v with e ∈ π(s,v) for the edge whose child endpoint is c).
func (en *Engine) SubtreeOf(c int32, out []int32) []int32 {
	out = append(out, c)
	for head := len(out) - 1; head < len(out); head++ {
		for _, ch := range en.T.Children(out[head]) {
			out = append(out, ch)
		}
	}
	return out
}

// CoveredBy reports whether ⟨v,e⟩ is covered, returning a certifying T0
// last edge when one exists: an edge (u,v) ∈ T0, different from e, with
// dist(s,u,G\{e})+1 = dist(s,v,G\{e}). Pairs with v unreachable in G\{e}
// are vacuously covered (nothing to protect, certificate NoEdge). distE
// must be the distance array for failure e.
func (en *Engine) CoveredBy(v int32, e graph.EdgeID, distE []int32) (graph.EdgeID, bool) {
	target := distE[v]
	if target == bfs.Unreachable {
		return graph.NoEdge, true // vacuously protected: e disconnects v
	}
	for _, a := range en.G.Neighbors(int(v)) {
		if a.ID == e || !en.TreeEdges.Contains(a.ID) {
			continue
		}
		if distE[a.To] != bfs.Unreachable && distE[a.To]+1 == target {
			return a.ID, true
		}
	}
	return graph.NoEdge, false
}

// AllPairs enumerates every vertex-edge pair ⟨v,e⟩ with e ∈ π(s,v) and
// returns the uncovered ones with their canonical replacement paths. The
// returned slice is ordered by failing edge (outer) and terminal (inner),
// which downstream phases re-sort as needed. The result is memoised until the
// next Reset, so builders sharing an engine for several ε values on the same
// source pay for Phase S0 once; callers must treat it as read-only.
func (en *Engine) AllPairs() []*Pair {
	if !en.pairsReady {
		en.pairs = en.computeAllPairs()
		en.pairsReady = true
	}
	return en.pairs
}

func (en *Engine) computeAllPairs() []*Pair {
	var out []*Pair
	var subtree []int32
	en.ForEachFailure(func(e graph.EdgeID, child int32, distE []int32) {
		subtree = en.SubtreeOf(child, subtree[:0])
		for _, v := range subtree {
			// CoveredBy also reports vacuous pairs (v unreachable in
			// G\{e}) as covered: there is nothing to protect.
			if _, covered := en.CoveredBy(v, e, distE); covered {
				continue
			}
			out = append(out, en.Pcons(v, e, child, distE[v]))
		}
	})
	return out
}

// UncoveredCount returns the number of uncovered pairs without materialising
// their paths (used by experiments).
func (en *Engine) UncoveredCount() int {
	count := 0
	var subtree []int32
	en.ForEachFailure(func(e graph.EdgeID, child int32, distE []int32) {
		subtree = en.SubtreeOf(child, subtree[:0])
		for _, v := range subtree {
			if _, covered := en.CoveredBy(v, e, distE); !covered {
				count++
			}
		}
	})
	return count
}
