package replacement

import (
	"testing"

	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
)

// On the Theorem 5.1 instances the canonical replacement paths are known in
// closed form: for a costly edge e_j = (v_j, v_{j+1}) and terminal x ∈ X_i,
// the unique replacement path diverges at v_j, runs down the escape path
// P_j to z_j, and ends with the fan edge (z_j, x). Pcons must reproduce
// exactly this.
func TestPconsOnLowerBoundFamily(t *testing.T) {
	lb := gen.LowerBoundParams(2, 4, 5)
	g := lb.G
	en := NewEngine(g, lb.S)
	pairs := en.AllPairs()

	fanPairs := map[[2]int32]*Pair{} // (x, costly edge) → pair
	for _, p := range pairs {
		fanPairs[[2]int32{p.V, int32(p.Edge)}] = p
	}
	for _, pe := range lb.PiEdges {
		ed := g.EdgeByID(pe.ID)
		vj := ed.U // shallower endpoint = v_j (edges canonicalised by depth below)
		if en.T.Depth[ed.V] < en.T.Depth[ed.U] {
			vj = ed.V
		}
		for _, x := range lb.X[pe.Copy] {
			p, ok := fanPairs[[2]int32{x, int32(pe.ID)}]
			if !ok {
				// the one x that is z_j's BFS parent is covered by the tree
				// edge (x, z_j) and produces no uncovered pair
				if en.BT.Parent[pe.Z] == x {
					continue
				}
				t.Fatalf("no uncovered pair for terminal x=%d, costly edge %v", x, ed)
			}
			if p.Div != vj {
				t.Fatalf("divergence point %d, want v_j=%d", p.Div, vj)
			}
			last := p.LastEdge().Canonical()
			want := graph.Edge{U: x, V: pe.Z}.Canonical()
			if last != want {
				t.Fatalf("last edge %v, want fan edge %v", last, want)
			}
			// detour = v_j ∘ P_j ∘ z_j ∘ x: length t_j + 1
			tj := 6 + 2*(lb.D-pe.J)
			if p.Detour.Len() != tj+1 {
				t.Fatalf("detour length %d, want t_j+1=%d", p.Detour.Len(), tj+1)
			}
			// replacement distance 2d − j + 7
			if int(p.Dist) != 2*lb.D-pe.J+7 {
				t.Fatalf("replacement distance %d, want %d", p.Dist, 2*lb.D-pe.J+7)
			}
		}
	}
}

// Every fan pair of the same costly edge shares the escape-path detour
// except for the final hop — the interference structure Phase S1 exploits
// ((∼)-interference between fan pairs of one edge).
func TestFanPairsShareEscapePath(t *testing.T) {
	lb := gen.LowerBoundParams(1, 3, 4)
	en := NewEngine(lb.G, lb.S)
	pairs := en.AllPairs()
	inX := map[int32]bool{}
	for _, xs := range lb.X {
		for _, x := range xs {
			inX[x] = true
		}
	}
	byEdge := map[graph.EdgeID][]*Pair{}
	for _, p := range pairs {
		if inX[p.V] {
			byEdge[p.Edge] = append(byEdge[p.Edge], p)
		}
	}
	for _, pe := range lb.PiEdges {
		fan := byEdge[pe.ID]
		if len(fan) < 2 {
			continue
		}
		base := fan[0].Detour
		for _, p := range fan[1:] {
			if len(p.Detour) != len(base) {
				t.Fatalf("fan detour lengths differ: %d vs %d", len(p.Detour), len(base))
			}
			for i := 0; i < len(base)-1; i++ { // all but the terminal
				if p.Detour[i] != base[i] {
					t.Fatalf("fan detours diverge before the last hop at %d", i)
				}
			}
		}
	}
}
