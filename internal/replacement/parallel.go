package replacement

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
)

// ForEachFailureParallel is ForEachFailure with the per-failure BFS passes
// spread across workers goroutines (≤ 0 means GOMAXPROCS). The failures are
// independent — one BFS on G\{e} each — so this is an embarrassingly
// parallel sweep; fn must be safe for concurrent invocation and must not
// retain distE. The set of (e, child, distE) triples delivered is identical
// to the sequential method's, in unspecified order.
func (en *Engine) ForEachFailureParallel(workers int, fn func(e graph.EdgeID, child int32, distE []int32)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		en.ForEachFailure(fn)
		return
	}
	// collect the failure list up front (children with parent edges)
	var children []int32
	for v := 0; v < en.G.N(); v++ {
		if en.BT.ParentEdge[v] != graph.NoEdge {
			children = append(children, int32(v))
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := bfs.NewScratch(en.G.N())
			dist := make([]int32, en.G.N())
			for {
				i := next.Add(1) - 1
				if int(i) >= len(children) {
					return
				}
				child := children[i]
				id := en.BT.ParentEdge[child]
				sc.DistancesAvoiding(en.G, en.S, bfs.Restriction{BannedEdge: id}, dist)
				fn(id, child, dist)
			}
		}()
	}
	wg.Wait()
}
