package replacement

import (
	"fmt"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
	"ftbfs/internal/paths"
)

// Pcons constructs the canonical new-ending replacement path for the
// uncovered pair ⟨v,e⟩ following Algorithm Pcons of the paper (Phase S0):
// among all shortest s–v paths in G\{e} it selects one whose unique
// divergence point from π(s,v) is as close to s as possible (Claim 4.4).
//
// Implementation: with π(s,v) = [u_0=s, …, u_k=v] and e = (u_i, u_{i+1}),
// let G_j(v) = G \ (V(π(u_j, u_k)) \ {u_j, u_k}). dist(s,v,G_j(v)\{e}) is
// non-increasing in j and bounded below by target = dist(s,v,G\{e}), so the
// minimal j* with equality (the paper's divergence index) is found by
// binary search. By Observation 3.2 the detour segment D(P) then avoids all
// of π(s,v) except its endpoints d = u_{j*} and v, so it is extracted as
// the canonical shortest d–v path in G minus V(π(s,v))\{d,v}, rooted at v
// (rooting detours of the same terminal in near-identical graphs realises
// the W-consistency that Claim 4.6 relies on).
//
// target must equal dist(s,v,G\{e}) (finite), child the deeper endpoint
// of e.
func (en *Engine) Pcons(v int32, e graph.EdgeID, child int32, target int32) *Pair {
	pi := en.BT.PathTo(int(v)) // π(s,v)
	k := len(pi) - 1
	i := int(en.T.Depth[child]) - 1 // e = (u_i, u_{i+1})
	if i < 0 || i >= k || pi[i+1] != child {
		panic(fmt.Sprintf("replacement: edge child %d (depth %d) not on π(s,%d)", child, en.T.Depth[child], v))
	}

	// probe(j) = dist(s, v, G_j(v)\{e})
	probe := func(j int) int32 {
		en.banned.Clear()
		for t := j + 1; t < k; t++ { // interior of π(u_j, v)
			en.banned.Add(pi[t])
		}
		return en.sc.DistAvoiding(en.G, en.S, int(v),
			bfs.Restriction{BannedEdge: e, BannedVertices: en.banned})
	}

	lo, hi := 0, i
	for lo < hi {
		mid := (lo + hi) / 2
		if probe(mid) == target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	jstar := lo
	if jstar == i && probe(i) != target {
		panic(fmt.Sprintf("replacement: no unique-divergence replacement path for ⟨%d,%v⟩", v, en.G.EdgeByID(e)))
	}
	d := pi[jstar]

	// Detour: canonical shortest d–v path avoiding every other π(s,v)
	// vertex (Observation 3.2), walked from the v side.
	en.banned.Clear()
	for t := 0; t <= k; t++ {
		if t != jstar && t != k {
			en.banned.Add(pi[t])
		}
	}
	rev := en.sc.CanonicalPathAvoiding(en.G, int(v), int(d),
		bfs.Restriction{BannedEdge: e, BannedVertices: en.banned})
	if rev == nil {
		panic(fmt.Sprintf("replacement: no detour from divergence point %d to %d", d, v))
	}
	detour := paths.Path(rev).Reverse() // d → v
	if got := int32(jstar) + int32(detour.Len()); got != target {
		panic(fmt.Sprintf("replacement: detour length %d + prefix %d != target %d (v=%d, e=%v)",
			detour.Len(), jstar, target, v, en.G.EdgeByID(e)))
	}

	last := detour.LastEdge()
	lastID := en.G.EdgeIDOf(int(last.U), int(last.V))
	if lastID == graph.NoEdge {
		panic("replacement: last edge not in G")
	}
	if en.TreeEdges.Contains(lastID) {
		panic(fmt.Sprintf("replacement: uncovered pair ⟨%d,%v⟩ produced a T0 last edge", v, en.G.EdgeByID(e)))
	}
	return &Pair{
		V:         v,
		Edge:      e,
		EdgeChild: child,
		Dist:      target,
		Div:       d,
		Detour:    detour,
		LastID:    lastID,
	}
}

// FullPath reconstructs the complete replacement path π(s,Div)◦Detour.
func (en *Engine) FullPath(p *Pair) paths.Path {
	prefix := paths.Path(en.BT.PathTo(int(p.Div)))
	return paths.Concat(prefix, p.Detour)
}
