package core

import (
	"fmt"

	"ftbfs/internal/graph"
)

// MultiStructure is an ε FT-MBFS structure: the union of per-source
// structures, providing the FT-BFS guarantee simultaneously for every
// source in Sources (Section 5, multiple-sources setting).
type MultiStructure struct {
	G       *graph.Graph
	Sources []int
	Eps     float64

	Edges      *graph.EdgeSet
	Reinforced *graph.EdgeSet
	Per        []*Structure // the per-source structures (share edge ids)
}

// BuildMulti constructs an ε FT-MBFS structure by building one ε FT-BFS per
// source and taking the union of edges and reinforcements. The union is
// valid: each per-source guarantee only requires its own H_s ⊆ H, and
// enlarging H never increases distances; reinforcing a superset never
// weakens a guarantee.
func BuildMulti(g *graph.Graph, sources []int, eps float64, opt Options) (*MultiStructure, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: no sources")
	}
	ms := &MultiStructure{
		G:          g,
		Sources:    append([]int(nil), sources...),
		Eps:        eps,
		Edges:      graph.NewEdgeSet(g.M()),
		Reinforced: graph.NewEdgeSet(g.M()),
	}
	for _, s := range sources {
		st, err := Build(g, s, eps, opt)
		if err != nil {
			return nil, fmt.Errorf("core: source %d: %w", s, err)
		}
		ms.Per = append(ms.Per, st)
		ms.Edges.AddSet(st.Edges)
		ms.Reinforced.AddSet(st.Reinforced)
	}
	return ms, nil
}

// BackupCount returns b(n) for the union structure.
func (ms *MultiStructure) BackupCount() int { return ms.Edges.Len() - ms.Reinforced.Len() }

// ReinforcedCount returns r(n) for the union structure.
func (ms *MultiStructure) ReinforcedCount() int { return ms.Reinforced.Len() }

// Size returns |E(H)|.
func (ms *MultiStructure) Size() int { return ms.Edges.Len() }

// VerifyMulti checks the FT-MBFS contract for every source against the
// union edge set and union reinforcement set.
func VerifyMulti(ms *MultiStructure, limit int) []Violation {
	var out []Violation
	for i, st := range ms.Per {
		// check against the union H (may only be better) with the union
		// reinforcement removed from the failure set
		union := &Structure{
			G:          ms.G,
			S:          ms.Sources[i],
			Eps:        ms.Eps,
			Edges:      ms.Edges,
			Reinforced: ms.Reinforced,
			TreeEdges:  st.TreeEdges,
		}
		out = append(out, Verify(union, limit)...)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}
