package core

import (
	"fmt"
	"math"

	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

// Build constructs an ε FT-BFS structure for (g, s) per Theorem 3.1.
// The returned structure satisfies dist(s,v,H\{e}) ≤ dist(s,v,G\{e}) for
// every vertex v and every non-reinforced edge e (checkable with Verify).
func Build(g *graph.Graph, s int, eps float64, opt Options) (*Structure, error) {
	if !g.Frozen() {
		return nil, fmt.Errorf("core: graph must be frozen")
	}
	if s < 0 || s >= g.N() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", s, g.N())
	}
	return BuildWithEngine(replacement.NewEngine(g, s), eps, opt)
}

// BuildWithEngine is Build against a prepared replacement-path engine, so
// batch orchestrators can recycle one engine (and its memoised Phase S0
// pairs) across many builds on the same source. The result is identical to
// Build(en.G, en.S, eps, opt).
func BuildWithEngine(en *replacement.Engine, eps float64, opt Options) (*Structure, error) {
	en.SetWorkers(opt.Workers)
	h, stats, err := buildEdges(en, eps, opt, &sharedS0{})
	if err != nil {
		return nil, err
	}
	st := newStructure(en, eps, h)
	st.Stats = stats
	return st, nil
}

// sharedS0 caches the ε-independent products of Phase S0 across the builds
// of a same-source group: the pair interference index (with its memoised
// π-intersection cache) and the I1/I2 interference split. A fresh value is
// used per Build; BuildGroup shares one across all its items.
type sharedS0 struct {
	ix     *pairIndex
	i1, i2 []int32
}

func (sh *sharedS0) load(en *replacement.Engine, opt Options) *pairIndex {
	if sh.ix == nil {
		sh.ix = buildPairIndex(en, en.AllPairs())
		sh.i1, sh.i2 = sh.ix.splitI1I2()
	}
	if opt.Workspace != nil {
		sh.ix.ws = opt.Workspace // honour each item's workspace preference
	}
	return sh.ix
}

// ValidateBuild reports whether (eps, opt) name a runnable construction,
// without building anything. Batch orchestrators use it to reject a bad
// request before any group starts paying for trees and replacement paths.
func ValidateBuild(eps float64, opt Options) error {
	_, err := resolveAlgorithm(eps, opt)
	return err
}

// resolveAlgorithm validates eps and applies the Theorem 3.1 automatic
// dispatch.
func resolveAlgorithm(eps float64, opt Options) (Algorithm, error) {
	if eps < 0 || eps > 1 {
		return Auto, fmt.Errorf("core: ε=%g outside [0,1]", eps)
	}
	alg := opt.Algorithm
	if alg == Auto {
		switch {
		case eps == 0:
			alg = Tree
		case eps >= 0.5:
			alg = Baseline
		default:
			alg = Epsilon
		}
	}
	if alg == Epsilon && eps <= 0 {
		return Auto, fmt.Errorf("core: the Epsilon algorithm needs ε > 0")
	}
	switch alg {
	case Tree, Baseline, Epsilon, Greedy:
		return alg, nil
	}
	return Auto, fmt.Errorf("core: unknown algorithm %v", opt.Algorithm)
}

// buildEdges runs the selected construction and returns the chosen edge set H
// (reinforcement not yet computed) together with the phase diagnostics.
func buildEdges(en *replacement.Engine, eps float64, opt Options, sh *sharedS0) (*graph.EdgeSet, BuildStats, error) {
	alg, err := resolveAlgorithm(eps, opt)
	if err != nil {
		return nil, BuildStats{}, err
	}
	switch alg {
	case Tree:
		// The ε = 0 extreme: H = T0, reinforcing every tree edge that is
		// last-unprotected in T0 (at most n−1 edges, no backup redundancy).
		return en.TreeEdges.Clone(), BuildStats{Algorithm: Tree.String()}, nil
	case Baseline:
		h, stats := baselineEdges(en)
		return h, stats, nil
	case Greedy:
		h, stats := greedyEdges(en, eps, opt)
		return h, stats, nil
	default:
		h, stats := epsilonEdges(en, eps, opt, sh)
		return h, stats, nil
	}
}

// epsilonEdges runs the three-phase construction of Section 3.
func epsilonEdges(en *replacement.Engine, eps float64, opt Options, sh *sharedS0) (*graph.EdgeSet, BuildStats) {
	n := en.G.N()
	threshold := int(math.Ceil(math.Pow(float64(n), eps)))
	if threshold < 1 {
		threshold = 1
	}
	k := int(math.Ceil(1/eps)) + 2 // Eq. (4)

	h := en.TreeEdges.Clone()
	ix := sh.load(en, opt)
	i1, i2 := sh.i1, sh.i2

	stats := BuildStats{
		Algorithm:      Epsilon.String(),
		UncoveredPairs: len(ix.pairs),
		I1Size:         len(i1),
		I2Size:         len(i2),
		K:              k,
		Threshold:      threshold,
	}

	sets := [][]int32{i2} // PC_0 = I2
	if !opt.SkipPhase1 {
		p1 := runPhase1(ix, h, i1, k, threshold)
		stats.S1Added = p1.Added
		stats.S1Leftover = len(p1.Leftover)
		stats.TypeACounts = p1.ACounts
		stats.TypeBCounts = p1.BCounts
		stats.TypeCCounts = p1.CCounts
		sets = append(sets, p1.CSets...)
		// Defensive fallback (see DESIGN.md §3): Lemma 4.10 proves the
		// leftover is empty; on tiny or adversarial inputs where our
		// canonical tie-breaking deviates from the ideal W, covering the
		// residue directly keeps the structure valid at negligible cost.
		for _, p := range p1.Leftover {
			h.Add(ix.lastEdgeOf(p))
		}
	}
	if !opt.SkipPhase2 {
		stats.S2GlueAdded, stats.S2Added = runPhase2(ix, h, sets, threshold)
	}
	return h, stats
}

// newStructure assembles a Structure from the chosen edge set, reinforcing
// exactly the last-unprotected tree edges (valid by Observation 2.2). The
// reinforcement sweep honours the engine's worker preference.
func newStructure(en *replacement.Engine, eps float64, h *graph.EdgeSet) *Structure {
	var unprotected *graph.EdgeSet
	switch w := en.Workers(); {
	case w == 0 || w == 1:
		unprotected = LastUnprotected(en, h)
	case w < 0:
		unprotected = LastUnprotectedParallel(en, h, 0)
	default:
		unprotected = LastUnprotectedParallel(en, h, w)
	}
	return &Structure{
		G:          en.G,
		S:          en.S,
		Eps:        eps,
		Edges:      h,
		Reinforced: unprotected,
		TreeEdges:  en.TreeEdges.Clone(),
	}
}
