package core

import (
	"fmt"
	"math"

	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

// Build constructs an ε FT-BFS structure for (g, s) per Theorem 3.1.
// The returned structure satisfies dist(s,v,H\{e}) ≤ dist(s,v,G\{e}) for
// every vertex v and every non-reinforced edge e (checkable with Verify).
func Build(g *graph.Graph, s int, eps float64, opt Options) (*Structure, error) {
	if !g.Frozen() {
		return nil, fmt.Errorf("core: graph must be frozen")
	}
	if s < 0 || s >= g.N() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", s, g.N())
	}
	if eps < 0 || eps > 1 {
		return nil, fmt.Errorf("core: ε=%g outside [0,1]", eps)
	}
	alg := opt.Algorithm
	if alg == Auto {
		switch {
		case eps == 0:
			alg = Tree
		case eps >= 0.5:
			alg = Baseline
		default:
			alg = Epsilon
		}
	}
	en := replacement.NewEngine(g, s)
	en.SetWorkers(opt.Workers)
	switch alg {
	case Tree:
		return buildTree(en, eps), nil
	case Baseline:
		return buildBaseline(en, eps), nil
	case Epsilon:
		if eps <= 0 {
			return nil, fmt.Errorf("core: the Epsilon algorithm needs ε > 0")
		}
		return buildEpsilon(en, eps, opt), nil
	case Greedy:
		return buildGreedy(en, eps, opt), nil
	}
	return nil, fmt.Errorf("core: unknown algorithm %v", opt.Algorithm)
}

// buildTree is the ε = 0 extreme: H = T0, reinforcing every tree edge that
// is last-unprotected in T0 (at most n−1 edges, no backup redundancy).
func buildTree(en *replacement.Engine, eps float64) *Structure {
	h := en.TreeEdges.Clone()
	st := newStructure(en, eps, h)
	st.Stats.Algorithm = Tree.String()
	return st
}

// buildEpsilon runs the three-phase construction of Section 3.
func buildEpsilon(en *replacement.Engine, eps float64, opt Options) *Structure {
	n := en.G.N()
	threshold := int(math.Ceil(math.Pow(float64(n), eps)))
	if threshold < 1 {
		threshold = 1
	}
	k := int(math.Ceil(1/eps)) + 2 // Eq. (4)

	h := en.TreeEdges.Clone()
	pairs := en.AllPairs()
	ix := buildPairIndex(en, pairs)
	i1, i2 := ix.splitI1I2()

	stats := BuildStats{
		Algorithm:      Epsilon.String(),
		UncoveredPairs: len(pairs),
		I1Size:         len(i1),
		I2Size:         len(i2),
		K:              k,
		Threshold:      threshold,
	}

	sets := [][]int32{i2} // PC_0 = I2
	if !opt.SkipPhase1 {
		p1 := runPhase1(ix, h, i1, k, threshold)
		stats.S1Added = p1.Added
		stats.S1Leftover = len(p1.Leftover)
		stats.TypeACounts = p1.ACounts
		stats.TypeBCounts = p1.BCounts
		stats.TypeCCounts = p1.CCounts
		sets = append(sets, p1.CSets...)
		// Defensive fallback (see DESIGN.md §3): Lemma 4.10 proves the
		// leftover is empty; on tiny or adversarial inputs where our
		// canonical tie-breaking deviates from the ideal W, covering the
		// residue directly keeps the structure valid at negligible cost.
		for _, p := range p1.Leftover {
			h.Add(ix.lastEdgeOf(p))
		}
	}
	if !opt.SkipPhase2 {
		stats.S2GlueAdded, stats.S2Added = runPhase2(ix, h, sets, threshold)
	}

	st := newStructure(en, eps, h)
	st.Stats = stats
	return st
}

// newStructure assembles a Structure from the chosen edge set, reinforcing
// exactly the last-unprotected tree edges (valid by Observation 2.2). The
// reinforcement sweep honours the engine's worker preference.
func newStructure(en *replacement.Engine, eps float64, h *graph.EdgeSet) *Structure {
	var unprotected *graph.EdgeSet
	switch w := en.Workers(); {
	case w == 0 || w == 1:
		unprotected = LastUnprotected(en, h)
	case w < 0:
		unprotected = LastUnprotectedParallel(en, h, 0)
	default:
		unprotected = LastUnprotectedParallel(en, h, w)
	}
	return &Structure{
		G:          en.G,
		S:          en.S,
		Eps:        eps,
		Edges:      h,
		Reinforced: unprotected,
		TreeEdges:  en.TreeEdges.Clone(),
	}
}
