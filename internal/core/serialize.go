package core

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
)

// The structure text format (companion of the graph format in
// internal/graph) is a versioned record: the header line names the record
// version, and each version fixes its metadata line and edge tags.
//
// Version 1 — an edge-failure (b, r) FT-BFS structure:
//
//	ftbfs-structure 1
//	source <s> eps <ε> alg <name>
//	b <u> <v>        (one line per backup edge)
//	r <u> <v>        (one line per reinforced edge)
//
// Version 2 — a vertex-failure FT-BFS structure (no ε/algorithm dimension,
// no reinforced edges; every edge is fault-prone):
//
//	ftbfs-structure 2 vertex
//	source <s> pairs <p>
//	e <u> <v>        (one line per structure edge)
//
// The base graph travels separately; decoding re-binds the edge endpoints
// against it and recomputes the BFS tree. DecodeStructure reads exactly the
// version-1 record it always has — pre-existing edge-structure files keep
// loading unchanged — and DecodeVertexRecord reads version 2.

// vertexHeader is the version-2 record header.
const vertexHeader = "ftbfs-structure 2 vertex"

// EncodeStructure writes st in the structure text format.
func EncodeStructure(w io.Writer, st *Structure) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "ftbfs-structure 1")
	fmt.Fprintf(bw, "source %d eps %g alg %s\n", st.S, st.Eps, st.Stats.Algorithm)
	var err error
	st.Edges.ForEach(func(id graph.EdgeID) {
		if err != nil {
			return
		}
		e := st.G.EdgeByID(id).Canonical()
		tag := "b"
		if st.Reinforced.Contains(id) {
			tag = "r"
		}
		_, err = fmt.Fprintf(bw, "%s %d %d\n", tag, e.U, e.V)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// recordScanner walks the non-blank, non-comment lines of a structure file,
// tracking line numbers for error messages; shared by every record version.
type recordScanner struct {
	sc   *bufio.Scanner
	line int
}

func newRecordScanner(r io.Reader) *recordScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return &recordScanner{sc: sc}
}

func (s *recordScanner) next() (string, bool) {
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		if text != "" && !strings.HasPrefix(text, "#") {
			return text, true
		}
	}
	return "", false
}

// parseEdgeRecord parses one "<tag> <u> <v>" line, checks the tag against
// the version's allowed set, and re-binds the endpoints against g. Shared
// by both record decoders so edge-line validation and error wording cannot
// drift between format versions.
func (s *recordScanner) parseEdgeRecord(g *graph.Graph, text string, tags ...string) (string, graph.EdgeID, error) {
	f := strings.Fields(text)
	if len(f) != 3 || !slices.Contains(tags, f[0]) {
		return "", graph.NoEdge, fmt.Errorf("core: line %d: bad record %q", s.line, text)
	}
	u, err1 := strconv.Atoi(f[1])
	v, err2 := strconv.Atoi(f[2])
	if err1 != nil || err2 != nil {
		return "", graph.NoEdge, fmt.Errorf("core: line %d: bad endpoints %q", s.line, text)
	}
	id := g.EdgeIDOf(u, v)
	if id == graph.NoEdge {
		return "", graph.NoEdge, fmt.Errorf("core: line %d: edge {%d,%d} not in the base graph", s.line, u, v)
	}
	return f[0], id, nil
}

// DecodeStructure parses the version-1 (edge-failure) structure format
// against its base graph g. The BFS tree is recomputed from the recorded
// source; the decoded structure is validated with CheckInvariants.
func DecodeStructure(r io.Reader, g *graph.Graph) (*Structure, error) {
	rs := newRecordScanner(r)
	next := rs.next
	header, ok := next()
	if !ok || header != "ftbfs-structure 1" {
		if header == vertexHeader {
			return nil, fmt.Errorf("core: %q is a vertex structure record (decode it with DecodeVertexRecord)", header)
		}
		return nil, fmt.Errorf("core: bad structure header %q", header)
	}
	meta, ok := next()
	if !ok {
		return nil, fmt.Errorf("core: missing metadata line")
	}
	fields := strings.Fields(meta)
	if len(fields) != 6 || fields[0] != "source" || fields[2] != "eps" || fields[4] != "alg" {
		return nil, fmt.Errorf("core: bad metadata line %q", meta)
	}
	s, err := strconv.Atoi(fields[1])
	if err != nil || s < 0 || s >= g.N() {
		return nil, fmt.Errorf("core: bad source %q", fields[1])
	}
	eps, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return nil, fmt.Errorf("core: bad eps %q", fields[3])
	}
	st := &Structure{
		G:          g,
		S:          s,
		Eps:        eps,
		Edges:      graph.NewEdgeSet(g.M()),
		Reinforced: graph.NewEdgeSet(g.M()),
		TreeEdges:  bfs.From(g, s).EdgeSet(g.M()),
	}
	st.Stats.Algorithm = fields[5]
	for {
		text, ok := next()
		if !ok {
			break
		}
		tag, id, err := rs.parseEdgeRecord(g, text, "b", "r")
		if err != nil {
			return nil, err
		}
		st.Edges.Add(id)
		if tag == "r" {
			st.Reinforced.Add(id)
		}
	}
	if err := rs.sc.Err(); err != nil {
		return nil, err
	}
	if err := CheckInvariants(st); err != nil {
		return nil, fmt.Errorf("core: decoded structure invalid: %w", err)
	}
	return st, nil
}

// VertexRecord is the decoded form of a version-2 (vertex-failure)
// structure record: the source, the Pairs diagnostic of the build, and the
// structure's edge set re-bound against the base graph. It deliberately
// carries no ε or algorithm — the vertex construction has neither dimension.
type VertexRecord struct {
	S     int
	Pairs int
	Edges *graph.EdgeSet
}

// EncodeVertexRecord writes a vertex structure in the version-2 record
// format; g is the base graph the edge ids resolve against.
func EncodeVertexRecord(w io.Writer, g *graph.Graph, rec *VertexRecord) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, vertexHeader)
	fmt.Fprintf(bw, "source %d pairs %d\n", rec.S, rec.Pairs)
	var err error
	rec.Edges.ForEach(func(id graph.EdgeID) {
		if err != nil {
			return
		}
		e := g.EdgeByID(id).Canonical()
		_, err = fmt.Fprintf(bw, "e %d %d\n", e.U, e.V)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeVertexRecord parses a version-2 record against its base graph g.
// Endpoints are re-bound to edge ids; semantic validation (does H preserve
// the intact BFS distances?) is the caller's, since only the caller knows
// how expensive a check the context can afford.
func DecodeVertexRecord(r io.Reader, g *graph.Graph) (*VertexRecord, error) {
	rs := newRecordScanner(r)
	header, ok := rs.next()
	if !ok || header != vertexHeader {
		return nil, fmt.Errorf("core: bad vertex structure header %q", header)
	}
	meta, ok := rs.next()
	if !ok {
		return nil, fmt.Errorf("core: missing metadata line")
	}
	fields := strings.Fields(meta)
	if len(fields) != 4 || fields[0] != "source" || fields[2] != "pairs" {
		return nil, fmt.Errorf("core: bad vertex metadata line %q", meta)
	}
	s, err := strconv.Atoi(fields[1])
	if err != nil || s < 0 || s >= g.N() {
		return nil, fmt.Errorf("core: bad source %q", fields[1])
	}
	pairs, err := strconv.Atoi(fields[3])
	if err != nil || pairs < 0 {
		return nil, fmt.Errorf("core: bad pairs %q", fields[3])
	}
	rec := &VertexRecord{S: s, Pairs: pairs, Edges: graph.NewEdgeSet(g.M())}
	for {
		text, ok := rs.next()
		if !ok {
			break
		}
		_, id, err := rs.parseEdgeRecord(g, text, "e")
		if err != nil {
			return nil, err
		}
		rec.Edges.Add(id)
	}
	if err := rs.sc.Err(); err != nil {
		return nil, err
	}
	return rec, nil
}
