package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
)

// The structure text format (companion of the graph format in
// internal/graph):
//
//	ftbfs-structure 1
//	source <s> eps <ε> alg <name>
//	b <u> <v>        (one line per backup edge)
//	r <u> <v>        (one line per reinforced edge)
//
// The base graph travels separately; DecodeStructure re-binds the edge
// endpoints against it and recomputes the BFS tree.

// EncodeStructure writes st in the structure text format.
func EncodeStructure(w io.Writer, st *Structure) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "ftbfs-structure 1")
	fmt.Fprintf(bw, "source %d eps %g alg %s\n", st.S, st.Eps, st.Stats.Algorithm)
	var err error
	st.Edges.ForEach(func(id graph.EdgeID) {
		if err != nil {
			return
		}
		e := st.G.EdgeByID(id).Canonical()
		tag := "b"
		if st.Reinforced.Contains(id) {
			tag = "r"
		}
		_, err = fmt.Fprintf(bw, "%s %d %d\n", tag, e.U, e.V)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeStructure parses the structure format against its base graph g.
// The BFS tree is recomputed from the recorded source; the decoded
// structure is validated with CheckInvariants.
func DecodeStructure(r io.Reader, g *graph.Graph) (*Structure, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text != "" && !strings.HasPrefix(text, "#") {
				return text, true
			}
		}
		return "", false
	}
	header, ok := next()
	if !ok || header != "ftbfs-structure 1" {
		return nil, fmt.Errorf("core: bad structure header %q", header)
	}
	meta, ok := next()
	if !ok {
		return nil, fmt.Errorf("core: missing metadata line")
	}
	fields := strings.Fields(meta)
	if len(fields) != 6 || fields[0] != "source" || fields[2] != "eps" || fields[4] != "alg" {
		return nil, fmt.Errorf("core: bad metadata line %q", meta)
	}
	s, err := strconv.Atoi(fields[1])
	if err != nil || s < 0 || s >= g.N() {
		return nil, fmt.Errorf("core: bad source %q", fields[1])
	}
	eps, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return nil, fmt.Errorf("core: bad eps %q", fields[3])
	}
	st := &Structure{
		G:          g,
		S:          s,
		Eps:        eps,
		Edges:      graph.NewEdgeSet(g.M()),
		Reinforced: graph.NewEdgeSet(g.M()),
		TreeEdges:  bfs.From(g, s).EdgeSet(g.M()),
	}
	st.Stats.Algorithm = fields[5]
	for {
		text, ok := next()
		if !ok {
			break
		}
		f := strings.Fields(text)
		if len(f) != 3 || (f[0] != "b" && f[0] != "r") {
			return nil, fmt.Errorf("core: line %d: bad record %q", line, text)
		}
		u, err1 := strconv.Atoi(f[1])
		v, err2 := strconv.Atoi(f[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("core: line %d: bad endpoints %q", line, text)
		}
		id := g.EdgeIDOf(u, v)
		if id == graph.NoEdge {
			return nil, fmt.Errorf("core: line %d: edge {%d,%d} not in the base graph", line, u, v)
		}
		st.Edges.Add(id)
		if f[0] == "r" {
			st.Reinforced.Add(id)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := CheckInvariants(st); err != nil {
		return nil, fmt.Errorf("core: decoded structure invalid: %w", err)
	}
	return st, nil
}
