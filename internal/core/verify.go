package core

import (
	"fmt"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
)

// Violation describes one breach of the FT-BFS contract found by Verify.
type Violation struct {
	Edge   graph.EdgeID // failed (non-reinforced) edge
	Vertex int32        // vertex whose distance regressed
	InH    int32        // dist(s, v, H \ {e}) (-1 = unreachable)
	InG    int32        // dist(s, v, G \ {e})
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("edge %d, vertex %d: dist in H\\e = %d > dist in G\\e = %d",
		v.Edge, v.Vertex, v.InH, v.InG)
}

// Verify exhaustively checks the (b, r) FT-BFS contract (Definition 2.1):
// for every non-reinforced edge e of G and every vertex v,
// dist(s,v,H\{e}) ≤ dist(s,v,G\{e}). Only T0 edges can violate the
// contract (failing any other edge leaves T0 ⊆ H intact), so those are the
// edges checked; the limit caps the number of reported violations
// (0 = unlimited). Intended for tests and experiment E10 — it runs 2(n−1)
// BFS passes.
func Verify(st *Structure, limit int) []Violation {
	g := st.G
	scG := bfs.NewScratch(g.N())
	scH := bfs.NewScratch(g.N())
	distG := make([]int32, g.N())
	distH := make([]int32, g.N())
	var out []Violation
	st.TreeEdges.ForEach(func(e graph.EdgeID) {
		if limit > 0 && len(out) >= limit {
			return
		}
		if st.Reinforced.Contains(e) {
			return // reinforced edges never fail
		}
		scG.DistancesAvoiding(g, st.S, bfs.Restriction{BannedEdge: e}, distG)
		scH.DistancesAvoiding(g, st.S, bfs.Restriction{BannedEdge: e, AllowedEdges: st.Edges}, distH)
		for v := int32(0); v < int32(g.N()); v++ {
			if distG[v] == bfs.Unreachable {
				continue // v not required to be reachable
			}
			if distH[v] == bfs.Unreachable || distH[v] > distG[v] {
				out = append(out, Violation{Edge: e, Vertex: v, InH: distH[v], InG: distG[v]})
				if limit > 0 && len(out) >= limit {
					return
				}
			}
		}
	})
	return out
}

// MustVerify is Verify returning an error summarising the first violations.
func MustVerify(st *Structure) error {
	if viol := Verify(st, 5); len(viol) > 0 {
		return fmt.Errorf("core: structure violates FT-BFS contract: %v", viol)
	}
	return nil
}

// CheckInvariants validates internal consistency of a structure: the
// reinforced set is contained in the tree edges, which are contained in H,
// and every H edge exists in G.
func CheckInvariants(st *Structure) error {
	if st.Reinforced.Len() != st.Reinforced.Intersect(st.TreeEdges).Len() {
		return fmt.Errorf("core: reinforced edges outside T0")
	}
	if st.TreeEdges.Len() != st.TreeEdges.Intersect(st.Edges).Len() {
		return fmt.Errorf("core: T0 not contained in H")
	}
	bad := false
	st.Edges.ForEach(func(e graph.EdgeID) {
		if int(e) >= st.G.M() {
			bad = true
		}
	})
	if bad {
		return fmt.Errorf("core: H references edges outside G")
	}
	return nil
}
