package core

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
)

func TestStructureRoundTrip(t *testing.T) {
	g := gen.RandomConnected(50, 80, 13)
	st := mustBuild(t, g, 3, 0.3, Options{})
	var buf bytes.Buffer
	if err := EncodeStructure(&buf, st); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeStructure(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if back.S != st.S || back.Eps != st.Eps || back.Stats.Algorithm != st.Stats.Algorithm {
		t.Fatal("metadata lost")
	}
	a, b := st.Edges.IDs(), back.Edges.IDs()
	if len(a) != len(b) {
		t.Fatalf("edge counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("edge sets differ")
		}
	}
	ra, rb := st.Reinforced.IDs(), back.Reinforced.IDs()
	if len(ra) != len(rb) {
		t.Fatal("reinforced sets differ")
	}
	// the decoded structure still verifies
	if err := MustVerify(back); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeStructureErrors(t *testing.T) {
	g := gen.Cycle(6)
	st := mustBuild(t, g, 0, 0.25, Options{})
	var buf bytes.Buffer
	if err := EncodeStructure(&buf, st); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"empty":        "",
		"bad header":   "nope\n",
		"no meta":      "ftbfs-structure 1\n",
		"bad meta":     "ftbfs-structure 1\nsource x eps y alg z q\n",
		"bad source":   "ftbfs-structure 1\nsource 99 eps 0.2 alg epsilon\n",
		"bad eps":      "ftbfs-structure 1\nsource 0 eps zz alg epsilon\n",
		"bad record":   "ftbfs-structure 1\nsource 0 eps 0.2 alg epsilon\nq 1 2\n",
		"bad endpoint": "ftbfs-structure 1\nsource 0 eps 0.2 alg epsilon\nb 1 x\n",
		"non-edge":     "ftbfs-structure 1\nsource 0 eps 0.2 alg epsilon\nb 0 3\n",
	}
	for name, in := range cases {
		if _, err := DecodeStructure(strings.NewReader(in), g); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	// invariant breakage: reinforced edge outside T0
	broken := strings.Replace(good, "b ", "r ", 1)
	// (first backup line becomes reinforced; whether this breaks invariants
	// depends on whether it is a tree edge — construct a guaranteed breach
	// instead: reinforce a non-tree edge explicitly)
	_ = broken
	st2 := mustBuild(t, gen.Cycle(6), 0, 1, Options{})
	nonTree := -1
	for id := 0; id < st2.G.M(); id++ {
		if st2.Edges.Contains(graphEdgeID(id)) && !st2.TreeEdges.Contains(graphEdgeID(id)) {
			nonTree = id
			break
		}
	}
	if nonTree >= 0 {
		e := st2.G.EdgeByID(graphEdgeID(nonTree)).Canonical()
		in := "ftbfs-structure 1\nsource 0 eps 1 alg baseline\n"
		in += "r " + itoa(int(e.U)) + " " + itoa(int(e.V)) + "\n"
		if _, err := DecodeStructure(strings.NewReader(in), st2.G); err == nil {
			t.Error("reinforced non-tree edge accepted")
		}
	}
}

func TestDecodeStructureSkipsComments(t *testing.T) {
	g := gen.Cycle(6)
	st := mustBuild(t, g, 0, 0.25, Options{})
	var buf bytes.Buffer
	if err := EncodeStructure(&buf, st); err != nil {
		t.Fatal(err)
	}
	commented := "# saved structure\n" + strings.Replace(buf.String(), "\n", "\n# note\n", 1)
	if _, err := DecodeStructure(strings.NewReader(commented), g); err != nil {
		t.Fatal(err)
	}
}

func graphEdgeID(i int) graph.EdgeID { return graph.EdgeID(i) }

func itoa(i int) string { return strconv.Itoa(i) }
