package core

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"ftbfs/internal/bfs"
	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
)

func TestStructureRoundTrip(t *testing.T) {
	g := gen.RandomConnected(50, 80, 13)
	st := mustBuild(t, g, 3, 0.3, Options{})
	var buf bytes.Buffer
	if err := EncodeStructure(&buf, st); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeStructure(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if back.S != st.S || back.Eps != st.Eps || back.Stats.Algorithm != st.Stats.Algorithm {
		t.Fatal("metadata lost")
	}
	a, b := st.Edges.IDs(), back.Edges.IDs()
	if len(a) != len(b) {
		t.Fatalf("edge counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("edge sets differ")
		}
	}
	ra, rb := st.Reinforced.IDs(), back.Reinforced.IDs()
	if len(ra) != len(rb) {
		t.Fatal("reinforced sets differ")
	}
	// the decoded structure still verifies
	if err := MustVerify(back); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeStructureErrors(t *testing.T) {
	g := gen.Cycle(6)
	st := mustBuild(t, g, 0, 0.25, Options{})
	var buf bytes.Buffer
	if err := EncodeStructure(&buf, st); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"empty":        "",
		"bad header":   "nope\n",
		"no meta":      "ftbfs-structure 1\n",
		"bad meta":     "ftbfs-structure 1\nsource x eps y alg z q\n",
		"bad source":   "ftbfs-structure 1\nsource 99 eps 0.2 alg epsilon\n",
		"bad eps":      "ftbfs-structure 1\nsource 0 eps zz alg epsilon\n",
		"bad record":   "ftbfs-structure 1\nsource 0 eps 0.2 alg epsilon\nq 1 2\n",
		"bad endpoint": "ftbfs-structure 1\nsource 0 eps 0.2 alg epsilon\nb 1 x\n",
		"non-edge":     "ftbfs-structure 1\nsource 0 eps 0.2 alg epsilon\nb 0 3\n",
	}
	for name, in := range cases {
		if _, err := DecodeStructure(strings.NewReader(in), g); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	// invariant breakage: reinforced edge outside T0
	broken := strings.Replace(good, "b ", "r ", 1)
	// (first backup line becomes reinforced; whether this breaks invariants
	// depends on whether it is a tree edge — construct a guaranteed breach
	// instead: reinforce a non-tree edge explicitly)
	_ = broken
	st2 := mustBuild(t, gen.Cycle(6), 0, 1, Options{})
	nonTree := -1
	for id := 0; id < st2.G.M(); id++ {
		if st2.Edges.Contains(graphEdgeID(id)) && !st2.TreeEdges.Contains(graphEdgeID(id)) {
			nonTree = id
			break
		}
	}
	if nonTree >= 0 {
		e := st2.G.EdgeByID(graphEdgeID(nonTree)).Canonical()
		in := "ftbfs-structure 1\nsource 0 eps 1 alg baseline\n"
		in += "r " + itoa(int(e.U)) + " " + itoa(int(e.V)) + "\n"
		if _, err := DecodeStructure(strings.NewReader(in), st2.G); err == nil {
			t.Error("reinforced non-tree edge accepted")
		}
	}
}

func TestDecodeStructureSkipsComments(t *testing.T) {
	g := gen.Cycle(6)
	st := mustBuild(t, g, 0, 0.25, Options{})
	var buf bytes.Buffer
	if err := EncodeStructure(&buf, st); err != nil {
		t.Fatal(err)
	}
	commented := "# saved structure\n" + strings.Replace(buf.String(), "\n", "\n# note\n", 1)
	if _, err := DecodeStructure(strings.NewReader(commented), g); err != nil {
		t.Fatal(err)
	}
}

func graphEdgeID(i int) graph.EdgeID { return graph.EdgeID(i) }

func itoa(i int) string { return strconv.Itoa(i) }

func TestVertexRecordRoundTrip(t *testing.T) {
	g := gen.RandomConnected(30, 60, 4)
	g.Freeze()
	edges := bfs.From(g, 0).EdgeSet(g.M())
	edges.Add(graph.EdgeID(0))
	rec := &VertexRecord{S: 0, Pairs: 7, Edges: edges}
	var buf bytes.Buffer
	if err := EncodeVertexRecord(&buf, g, rec); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "ftbfs-structure 2 vertex\n") {
		t.Fatalf("bad header: %q", buf.String()[:40])
	}
	back, err := DecodeVertexRecord(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if back.S != rec.S || back.Pairs != rec.Pairs || back.Edges.Len() != rec.Edges.Len() {
		t.Fatalf("round trip changed record: %+v vs %+v", back, rec)
	}
	rec.Edges.ForEach(func(id graph.EdgeID) {
		if !back.Edges.Contains(id) {
			t.Fatalf("edge %d lost in round trip", id)
		}
	})
}

func TestVertexRecordVersioning(t *testing.T) {
	g := gen.Cycle(8)
	g.Freeze()
	st, err := Build(g, 0, 0.25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var edgeRec bytes.Buffer
	if err := EncodeStructure(&edgeRec, st); err != nil {
		t.Fatal(err)
	}
	// A v1 edge record must not decode as a vertex record…
	if _, err := DecodeVertexRecord(bytes.NewReader(edgeRec.Bytes()), g); err == nil {
		t.Fatal("edge record decoded as vertex record")
	}
	// …and a v2 vertex record must be rejected by the v1 decoder with a
	// pointer at the right decoder, while pre-existing v1 files keep loading.
	var vrec bytes.Buffer
	if err := EncodeVertexRecord(&vrec, g, &VertexRecord{S: 0, Edges: bfs.From(g, 0).EdgeSet(g.M())}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeStructure(bytes.NewReader(vrec.Bytes()), g); err == nil ||
		!strings.Contains(err.Error(), "DecodeVertexRecord") {
		t.Fatalf("v1 decoder on v2 record: %v", err)
	}
	if _, err := DecodeStructure(bytes.NewReader(edgeRec.Bytes()), g); err != nil {
		t.Fatalf("v1 record no longer loads: %v", err)
	}
}

func TestDecodeVertexRecordErrors(t *testing.T) {
	g := gen.Cycle(6)
	g.Freeze()
	for name, text := range map[string]string{
		"bad-header":  "ftbfs-structure 3 vertex\nsource 0 pairs 0\n",
		"bad-meta":    "ftbfs-structure 2 vertex\nsource 0 eps 0.5\n",
		"bad-source":  "ftbfs-structure 2 vertex\nsource 99 pairs 0\n",
		"bad-pairs":   "ftbfs-structure 2 vertex\nsource 0 pairs -3\n",
		"bad-tag":     "ftbfs-structure 2 vertex\nsource 0 pairs 0\nb 0 1\n",
		"not-an-edge": "ftbfs-structure 2 vertex\nsource 0 pairs 0\ne 0 3\n",
	} {
		if _, err := DecodeVertexRecord(strings.NewReader(text), g); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}
