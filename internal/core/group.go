package core

import (
	"fmt"

	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

// GroupItem is one build request of a same-source group: the tradeoff
// parameter and its options (algorithm choice, ablations, workspace).
type GroupItem struct {
	Eps float64
	Opt Options
}

// ItemError is a BuildGroup failure tagged with the index of the item that
// caused it, so batch callers can attribute the error to the right request.
type ItemError struct {
	Item int
	Err  error
}

func (e *ItemError) Error() string { return fmt.Sprintf("item %d: %v", e.Item, e.Err) }
func (e *ItemError) Unwrap() error { return e.Err }

// BuildGroup constructs one structure per item, all for the engine's (G, S),
// sharing everything that does not depend on ε: the canonical trees carried
// by the engine, the memoised Phase S0 replacement-path pairs, and — the big
// win — a single LastUnprotectedMulti reinforcement sweep covering every
// item instead of one O(n·m) sweep per item. Each returned structure is
// identical (byte-identical under EncodeStructure) to the one Build would
// produce for the same (G, S, eps, options).
//
// Per-item Workers options are ignored: the reinforcement sweep is shared
// across the group, and batch callers parallelise across sources instead.
func BuildGroup(en *replacement.Engine, items []GroupItem) ([]*Structure, error) {
	hs := make([]*graph.EdgeSet, len(items))
	stats := make([]BuildStats, len(items))
	sh := &sharedS0{} // Phase S0 products shared by every ε of the group
	for i, it := range items {
		h, st, err := buildEdges(en, it.Eps, it.Opt, sh)
		if err != nil {
			return nil, &ItemError{Item: i, Err: err}
		}
		hs[i], stats[i] = h, st
	}
	unprotected := LastUnprotectedMulti(en, hs)
	out := make([]*Structure, len(items))
	for i := range items {
		out[i] = &Structure{
			G:          en.G,
			S:          en.S,
			Eps:        items[i].Eps,
			Edges:      hs[i],
			Reinforced: unprotected[i],
			TreeEdges:  en.TreeEdges.Clone(),
			Stats:      stats[i],
		}
	}
	return out, nil
}
