package core

import (
	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

// baselineEdges is the classical FT-BFS construction of [14] (Parter–Peleg,
// ESA'13), which the paper uses both as the ε ≥ ½ branch of Theorem 3.1 and
// as the comparison point of the tradeoff: H = T0 plus the last edge of
// every new-ending replacement path. Its analysis bounds |E(H)| by
// O(n^{3/2}); every edge ends up protected, so no reinforcement is needed
// (r = 0 up to degenerate tie-breaking residue, asserted empty in tests).
func baselineEdges(en *replacement.Engine) (*graph.EdgeSet, BuildStats) {
	h := en.TreeEdges.Clone()
	added := 0
	for _, p := range en.AllPairs() {
		if h.Add(p.LastID) {
			added++
		}
	}
	return h, BuildStats{Algorithm: Baseline.String(), BaselineAdded: added}
}
