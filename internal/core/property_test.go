package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftbfs/internal/bfs"
	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

// Property: for any random connected graph and any ε, the built structure
// satisfies the exact FT-BFS contract and its invariants.
func TestPropertyRandomGraphsAlwaysValid(t *testing.T) {
	f := func(seed int64, epsRaw uint8, extraRaw uint8) bool {
		n := 20 + int(uint(seed)%30)
		extra := int(extraRaw) % 60
		eps := float64(epsRaw%101) / 100
		g := gen.RandomConnected(n, extra, seed)
		st, err := Build(g, 0, eps, Options{})
		if err != nil {
			t.Logf("build error: %v", err)
			return false
		}
		if err := CheckInvariants(st); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		if viol := Verify(st, 1); len(viol) > 0 {
			t.Logf("seed=%d n=%d eps=%g violation: %v", seed, n, eps, viol[0])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: a structure is monotone under edge addition — adding any graph
// edge to H can never break the contract (supersets of valid structures
// remain valid).
func TestPropertySupersetStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.RandomConnected(40, 60, 17)
	st, err := Build(g, 0, 0.3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	enlarged := &Structure{
		G: g, S: 0, Eps: st.Eps,
		Edges:      st.Edges.Clone(),
		Reinforced: st.Reinforced.Clone(),
		TreeEdges:  st.TreeEdges.Clone(),
	}
	for k := 0; k < 20; k++ {
		enlarged.Edges.Add(graph.EdgeID(rng.Intn(g.M())))
	}
	if viol := Verify(enlarged, 1); len(viol) > 0 {
		t.Fatalf("superset broke the contract: %v", viol[0])
	}
}

// Failure injection: removing any single backup edge from H and failing
// any OTHER backup edge must still satisfy what the weakened structure can
// promise — i.e. the verifier must detect exactly the breakages and never
// report false positives. Here we check the contrapositive direction: if
// the verifier reports no violation for a weakened structure, then a direct
// BFS comparison agrees.
func TestFailureInjectionVerifierConsistency(t *testing.T) {
	g := gen.RandomConnected(35, 50, 23)
	st, err := Build(g, 0, 0.3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	scG := bfs.NewScratch(g.N())
	scH := bfs.NewScratch(g.N())
	distG := make([]int32, g.N())
	distH := make([]int32, g.N())
	for trial := 0; trial < 10; trial++ {
		// weaken: drop one random backup edge from H
		weak := &Structure{
			G: g, S: 0, Eps: st.Eps,
			Edges:      st.Edges.Clone(),
			Reinforced: st.Reinforced.Clone(),
			TreeEdges:  st.TreeEdges.Clone(),
		}
		ids := st.Edges.Minus(st.Reinforced).IDs()
		dropped := ids[rng.Intn(len(ids))]
		weak.Edges.Remove(dropped)
		if weak.TreeEdges.Contains(dropped) {
			continue // dropping tree edges violates structural assumptions
		}
		viol := Verify(weak, 0)
		// cross-check each reported violation with a direct BFS
		for _, v := range viol {
			scG.DistancesAvoiding(g, 0, bfs.Restriction{BannedEdge: v.Edge}, distG)
			scH.DistancesAvoiding(g, 0, bfs.Restriction{BannedEdge: v.Edge, AllowedEdges: weak.Edges}, distH)
			if distG[v.Vertex] != v.InG || distH[v.Vertex] != v.InH {
				t.Fatalf("verifier misreported: %v vs dist %d/%d", v, distH[v.Vertex], distG[v.Vertex])
			}
			if !(distH[v.Vertex] == bfs.Unreachable || distH[v.Vertex] > distG[v.Vertex]) {
				t.Fatalf("false positive: %v", v)
			}
		}
	}
}

// Property: LastUnprotected is monotone — a larger H has no more
// unprotected edges.
func TestPropertyLastUnprotectedMonotone(t *testing.T) {
	g := gen.RandomConnected(40, 70, 31)
	en := replacement.NewEngine(g, 0)
	h := en.TreeEdges.Clone()
	prev := LastUnprotected(en, h).Len()
	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 10; step++ {
		for k := 0; k < 5; k++ {
			h.Add(graph.EdgeID(rng.Intn(g.M())))
		}
		cur := LastUnprotected(en, h).Len()
		if cur > prev {
			t.Fatalf("unprotected grew from %d to %d after adding edges", prev, cur)
		}
		prev = cur
	}
}

// Property: the baseline structure is a superset-of-or-equal to T0 and its
// reinforced set is empty on 2-edge-connected graphs.
func TestPropertyBaselineOnBiconnected(t *testing.T) {
	// torus is 4-regular and 2-edge-connected
	g := gen.Torus(5, 6)
	st, err := Build(g, 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ReinforcedCount() != 0 {
		t.Fatalf("baseline reinforced %d edges on a biconnected graph", st.ReinforcedCount())
	}
	if st.TreeEdges.Minus(st.Edges).Len() != 0 {
		t.Fatal("T0 not inside H")
	}
}

// Determinism: identical inputs give identical structures.
func TestPropertyDeterminism(t *testing.T) {
	g := gen.RandomConnected(45, 80, 41)
	a, err := Build(g, 0, 0.25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, 0, 0.25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Edges.IDs(), b.Edges.IDs()
	if len(ea) != len(eb) {
		t.Fatalf("sizes differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("edge sets differ")
		}
	}
	ra, rb := a.Reinforced.IDs(), b.Reinforced.IDs()
	if len(ra) != len(rb) {
		t.Fatal("reinforced sets differ")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("reinforced sets differ")
		}
	}
}

// BuildReinforcing: reinforced set is contained in the candidate set plus
// anything the candidates' omission leaves unprotected; a candidate that is
// protected anyway must not be reinforced.
func TestBuildReinforcing(t *testing.T) {
	lb := gen.LowerBoundParams(3, 5, 8)
	var costly []graph.EdgeID
	for _, pe := range lb.PiEdges {
		costly = append(costly, pe.ID)
	}
	st, err := BuildReinforcing(lb.G, lb.S, costly)
	if err != nil {
		t.Fatal(err)
	}
	if err := MustVerify(st); err != nil {
		t.Fatal(err)
	}
	cand := graph.NewEdgeSet(lb.G.M())
	for _, e := range costly {
		cand.Add(e)
	}
	if st.Reinforced.Minus(cand).Len() != 0 {
		t.Fatal("reinforced an edge outside the candidate set")
	}
	// sanity: reinforcement actually saves backup volume vs baseline here
	base, err := Build(lb.G, lb.S, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.BackupCount() >= base.BackupCount() {
		t.Fatalf("reinforcing Π saved nothing: %d vs %d", st.BackupCount(), base.BackupCount())
	}
	unfrozen := graph.New(4)
	if _, err := BuildReinforcing(unfrozen, 0, nil); err == nil {
		t.Fatal("unfrozen graph accepted")
	}
}
