package core

import (
	"sort"

	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

// pairIndex holds the uncovered pairs of Phase S0 together with the inverted
// detour-vertex index used to answer interference queries (Eq. 1 of the
// paper): two pairs interfere when their detours share a vertex internal to
// both.
type pairIndex struct {
	en    *replacement.Engine
	pairs []*replacement.Pair

	internal [][]int32 // internal detour vertices per pair (detour minus endpoints)
	byVertex [][]int32 // vertex → indices of pairs whose detour interior contains it
	byV      [][]int32 // terminal v → indices of its pairs

	inSet   []int32 // iteration-stamped membership marks for classify
	isA     []int32 // stamped type-A marks for classify's second pass
	interf  []int32 // stamped has-interference marks for classify
	seenT   []int32 // stamped per-terminal dedup marks, indexed by vertex
	stamp   int32
	piCache map[int64]bool // memoised π-intersection queries (pair, terminal)

	ws *Workspace // scratch for the Phase S2 hot path; lazily created
}

// workspace returns the index's scratch workspace, creating one on first use.
// Batch builders install a long-lived per-worker workspace instead (see
// Options.Workspace) so repeated builds reuse the same buffers.
func (ix *pairIndex) workspace() *Workspace {
	if ix.ws == nil {
		ix.ws = NewWorkspace()
	}
	return ix.ws
}

func buildPairIndex(en *replacement.Engine, pairs []*replacement.Pair) *pairIndex {
	n := en.G.N()
	ix := &pairIndex{
		en:       en,
		pairs:    pairs,
		internal: make([][]int32, len(pairs)),
		byVertex: make([][]int32, n),
		byV:      make([][]int32, n),
		inSet:    make([]int32, len(pairs)),
		isA:      make([]int32, len(pairs)),
		interf:   make([]int32, len(pairs)),
		seenT:    make([]int32, n),
		piCache:  make(map[int64]bool),
	}
	for i, p := range pairs {
		if len(p.Detour) > 2 {
			ix.internal[i] = p.Detour[1 : len(p.Detour)-1]
		}
		for _, z := range ix.internal[i] {
			ix.byVertex[z] = append(ix.byVertex[z], int32(i))
		}
		ix.byV[p.V] = append(ix.byV[p.V], int32(i))
	}
	return ix
}

// related reports e ∼ e' for the failing edges of pairs i and j.
func (ix *pairIndex) related(i, j int32) bool {
	return ix.en.T.Related(ix.pairs[i].EdgeChild, ix.pairs[j].EdgeChild)
}

// piIntersects reports whether the detour of pair i intersects
// π(LCA(v_i,t), t) \ {LCA} — equivalently (see Phase S1 notes in DESIGN.md)
// whether some interior detour vertex is an ancestor of t.
func (ix *pairIndex) piIntersects(i int32, t int32) bool {
	key := int64(i)<<32 | int64(t)
	if v, ok := ix.piCache[key]; ok {
		return v
	}
	res := false
	for _, z := range ix.internal[i] {
		if ix.en.T.IsAncestor(z, t) {
			res = true
			break
		}
	}
	ix.piCache[key] = res
	return res
}

// splitI1I2 partitions all pairs into I1 (pairs with at least one
// (≁)-interference anywhere in UP) and the (∼)-set I2 = UP \ I1.
func (ix *pairIndex) splitI1I2() (i1, i2 []int32) {
	for i := range ix.pairs {
		p := int32(i)
		if ix.hasNonSimInterference(p, nil) {
			i1 = append(i1, p)
		} else {
			i2 = append(i2, p)
		}
	}
	return i1, i2
}

// hasNonSimInterference reports whether pair p (≁)-interferes with any pair
// in the current set (restrict nil means: any pair at all).
func (ix *pairIndex) hasNonSimInterference(p int32, restrict func(int32) bool) bool {
	vp := ix.pairs[p].V
	for _, z := range ix.internal[p] {
		for _, q := range ix.byVertex[z] {
			if q == p || ix.pairs[q].V == vp {
				continue
			}
			if restrict != nil && !restrict(q) {
				continue
			}
			if !ix.related(p, q) {
				return true
			}
		}
	}
	return false
}

// classify splits the working set Pi into the paper's type A, B and C pairs
// (Eqs. 2–3):
//
//	A: π-intersects a (≁)-interfering pair of Pi;
//	B: not A, and (≁)-interferes with another non-A pair of Pi;
//	C: everything else — a (∼)-set deferred to Phase S2 (Obs. 4.11).
func (ix *pairIndex) classify(pi []int32) (a, b, c []int32) {
	// Three stamped mark sets replace the per-iteration maps: membership of
	// Pi, the type-A verdicts and the has-interference flags. Stamps only
	// ever grow, so marks from earlier iterations (or earlier builds sharing
	// this index) can never alias the current ones.
	ix.stamp++
	inStamp := ix.stamp
	for _, p := range pi {
		ix.inSet[p] = inStamp
	}
	aStamp := ix.stamp + 1
	interfStamp := ix.stamp + 2
	ix.stamp += 2
	for _, p := range pi {
		vp := ix.pairs[p].V
		ix.stamp++
		tStamp := ix.stamp // per-pair dedup of examined terminals
		found := false
	scanA:
		for _, z := range ix.internal[p] {
			for _, q := range ix.byVertex[z] {
				if q == p || ix.inSet[q] != inStamp || ix.pairs[q].V == vp || ix.related(p, q) {
					continue
				}
				ix.interf[p] = interfStamp
				t := ix.pairs[q].V
				if ix.seenT[t] == tStamp {
					continue
				}
				ix.seenT[t] = tStamp
				if ix.piIntersects(p, t) {
					found = true
					break scanA
				}
			}
		}
		if found {
			ix.isA[p] = aStamp
			a = append(a, p)
		}
	}
	// second pass: B needs an interfering partner that is itself non-A
	for _, p := range pi {
		if ix.isA[p] == aStamp {
			continue
		}
		if ix.interf[p] == interfStamp && ix.hasNonSimInterference(p, func(q int32) bool {
			return ix.inSet[q] == inStamp && ix.isA[q] != aStamp
		}) {
			b = append(b, p)
		} else {
			c = append(c, p)
		}
	}
	return a, b, c
}

// groupByTerminal buckets the given pairs by their terminal v and orders
// each bucket by increasing distance of the failing edge from v (deepest
// edges first) — the ordering −→P(v) of the paper. Terminals are returned
// in increasing id order for determinism.
func (ix *pairIndex) groupByTerminal(set []int32) (terminals []int32, buckets map[int32][]int32) {
	buckets = make(map[int32][]int32)
	for _, p := range set {
		v := ix.pairs[p].V
		if _, ok := buckets[v]; !ok {
			terminals = append(terminals, v)
		}
		buckets[v] = append(buckets[v], p)
	}
	sort.Slice(terminals, func(i, j int) bool { return terminals[i] < terminals[j] })
	t := ix.en.T
	for _, v := range terminals {
		b := buckets[v]
		sort.Slice(b, func(i, j int) bool {
			di := ix.pairs[b[i]].DistFromV(t)
			dj := ix.pairs[b[j]].DistFromV(t)
			if di != dj {
				return di < dj
			}
			return ix.pairs[b[i]].Edge < ix.pairs[b[j]].Edge
		})
	}
	return terminals, buckets
}

// lastEdgeOf returns the last-edge id of pair p.
func (ix *pairIndex) lastEdgeOf(p int32) graph.EdgeID { return ix.pairs[p].LastID }
