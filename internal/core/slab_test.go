package core

import (
	"bytes"
	"testing"

	"ftbfs/internal/bfs"
	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
)

// slabTestRecord builds a structure over a small random graph and captures
// it as a SlabRecord the way the root package does: edge sets from the
// build, serving arrays from H's own CSR and canonical BFS tree.
func slabTestRecord(t testing.TB, n, m int, seed int64) (*graph.Graph, *SlabRecord) {
	if t != nil {
		t.Helper()
	}
	g := gen.RandomConnected(n, m, seed)
	st, err := Build(g, 0, 0.3, Options{})
	if err != nil {
		if t != nil {
			t.Fatalf("Build: %v", err)
		}
		panic(err)
	}
	alg, err := ParseAlgorithm(st.Stats.Algorithm)
	if err != nil {
		if t != nil {
			t.Fatalf("ParseAlgorithm: %v", err)
		}
		panic(err)
	}
	h := g.SubgraphCSR(st.Edges)
	bt := bfs.FromCSR(h, st.S)
	return g, &SlabRecord{
		Model:      SlabEdge,
		S:          st.S,
		Eps:        st.Eps,
		Alg:        alg,
		Edges:      st.Edges,
		Reinforced: st.Reinforced,
		TreeEdges:  st.TreeEdges,
		Intact:     bt.Dist,
		RowStart:   h.RowStart,
		Arcs:       h.Arcs,
		Parent:     bt.Parent,
		ParentEdge: bt.ParentEdge,
		Order:      bt.Order,
	}
}

// TestSlabRoundTrip encodes a record and decodes it back, comparing every
// array and the re-encoded bytes.
func TestSlabRoundTrip(t *testing.T) {
	g, rec := slabTestRecord(t, 60, 150, 5)
	data, err := EncodeSlabBytes(g, rec)
	if err != nil {
		t.Fatalf("EncodeSlabBytes: %v", err)
	}
	if !IsSlabRecord(data) {
		t.Fatalf("encoded record not sniffed as slab")
	}
	back, err := DecodeSlab(data, g)
	if err != nil {
		t.Fatalf("DecodeSlab: %v", err)
	}
	if back.S != rec.S || back.Eps != rec.Eps || back.Alg != rec.Alg || back.Model != rec.Model {
		t.Fatalf("metadata changed in round trip")
	}
	if back.Edges.Len() != rec.Edges.Len() || back.Reinforced.Len() != rec.Reinforced.Len() ||
		back.TreeEdges.Len() != rec.TreeEdges.Len() {
		t.Fatalf("edge sets changed in round trip")
	}
	again, err := EncodeSlabBytes(g, back)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encoded bytes differ")
	}
	// Text records must never sniff as slabs.
	if IsSlabRecord([]byte("ftbfs-structure 1\n")) || IsSlabRecord([]byte(vertexHeader)) {
		t.Fatalf("text header sniffed as binary")
	}
}

// FuzzDecodeSlab feeds arbitrary bytes to the binary record decoder. The
// decoder must never panic and never allocate unboundedly; inputs that do
// decode must re-encode to exactly the bytes that were accepted (the format
// has a canonical form).
func FuzzDecodeSlab(f *testing.F) {
	g, rec := slabTestRecord(nil, 40, 100, 9)
	valid, err := EncodeSlabBytes(g, rec)
	if err != nil {
		f.Fatalf("EncodeSlabBytes: %v", err)
	}
	f.Add(valid)
	f.Add(valid[:slabHeaderSize])
	f.Add([]byte("FTB3"))
	f.Add([]byte("ftbfs-structure 1\nsource 0 eps 0.3 alg tree\n"))
	mut := bytes.Clone(valid)
	mut[70] ^= 0xff
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeSlab(data, g)
		if err != nil {
			return
		}
		again, err := EncodeSlabBytes(g, dec)
		if err != nil {
			t.Fatalf("accepted record failed to re-encode: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("accepted record is not canonical")
		}
	})
}
