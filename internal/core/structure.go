// Package core implements the paper's contribution: constructions of
// (b, r) fault-tolerant BFS structures mixing fault-prone backup edges with
// fail-proof reinforced edges.
//
// The main entry point is Build, which dispatches on ε (Theorem 3.1):
// ε = 0 reinforces the BFS tree itself; ε ≥ 1/2 falls back to the classical
// FT-BFS construction of Parter–Peleg (ESA'13, reference [14] of the paper)
// with O(n^{3/2}) edges; ε ∈ (0, 1/2) runs the three-phase algorithm of
// Section 3 (replacement-path preprocessing S0, interference-driven
// iterations S1, tree-decomposition covering S2) and reinforces exactly the
// edges left last-unprotected, which the analysis bounds by
// O(1/ε · n^{1-ε} · log n).
package core

import (
	"fmt"

	"ftbfs/internal/graph"
)

// Structure is a (b, r) FT-BFS structure: a subgraph H ⊆ G whose edges are
// split into backup (fault-prone) edges and reinforced (fail-proof) edges.
// The contract (Definition 2.1): for every edge e ∉ Reinforced and every
// vertex v, dist(s, v, H\{e}) ≤ dist(s, v, G\{e}).
type Structure struct {
	G   *graph.Graph
	S   int
	Eps float64

	Edges      *graph.EdgeSet // E(H), including reinforced edges
	Reinforced *graph.EdgeSet // E' ⊆ E(H); always a subset of the T0 edges
	TreeEdges  *graph.EdgeSet // edges of the underlying BFS tree T0

	Stats BuildStats
}

// BuildStats records what each phase of the construction did; experiments
// E8/E9 report these.
type BuildStats struct {
	Algorithm string // "tree", "baseline", "epsilon", "greedy"

	UncoveredPairs int // |UP| after Phase S0
	I1Size, I2Size int // (≁)-interfering pairs vs the initial (∼)-set
	K              int // number of S1 iterations
	Threshold      int // ⌈n^ε⌉

	S1Added       int   // last edges added during Phase S1
	S1Leftover    int   // pairs remaining after K iterations (Lemma 4.10 says 0)
	TypeACounts   []int // |PA_i| per iteration
	TypeBCounts   []int // |PB_i| per iteration
	TypeCCounts   []int // |PC_i| per iteration
	S2GlueAdded   int   // last edges added in Sub-Phase S2.1
	S2Added       int   // last edges added in Sub-Phases S2.2–S2.3
	BaselineAdded int   // last edges added by the baseline construction
}

// BackupCount returns b(n) = |E(H)| − |E'| (the paper counts every
// non-reinforced structure edge as backup).
func (st *Structure) BackupCount() int { return st.Edges.Len() - st.Reinforced.Len() }

// ReinforcedCount returns r(n) = |E'|.
func (st *Structure) ReinforcedCount() int { return st.Reinforced.Len() }

// Size returns |E(H)|.
func (st *Structure) Size() int { return st.Edges.Len() }

// Cost returns the total deployment cost B·b(n) + R·r(n) of the structure
// under per-edge prices B (backup) and R (reinforced).
func (st *Structure) Cost(backupPrice, reinforcePrice float64) float64 {
	return backupPrice*float64(st.BackupCount()) + reinforcePrice*float64(st.ReinforcedCount())
}

// String implements fmt.Stringer.
func (st *Structure) String() string {
	return fmt.Sprintf("ftbfs{n=%d m=%d |H|=%d backup=%d reinforced=%d ε=%.3g alg=%s}",
		st.G.N(), st.G.M(), st.Size(), st.BackupCount(), st.ReinforcedCount(), st.Eps, st.Stats.Algorithm)
}
