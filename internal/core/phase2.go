package core

import (
	"sort"

	"ftbfs/internal/graph"
	"ftbfs/internal/paths"
)

// runPhase2 executes Phase S2: given the collection S of (∼)-sets (I2 plus
// the PC_i sets deferred by Phase S1), it adds to H
//
//	(S2.1) the last edges of every uncovered pair protecting a glue edge of
//	       the Fact 3.3 tree decomposition (O(log n) per terminal by
//	       Fact 4.1(a));
//	(S2.2) for every set P and terminal v, the pairs of the light
//	       subsegments of the exponential decomposition of π(s,v), plus the
//	       upmost pair of every subsegment;
//	(S2.3) for every decomposition path ψ met by π(s,v), the upmost pair on
//	       ψ and — when small — the pairs of the first and last subsegments
//	       that straddle ψ's boundary.
//
// It returns the number of last edges added by S2.1 and by S2.2–S2.3.
//
// The per-terminal state (the add set, the subsegment grouping and the
// distinct-last-edge counts) lives entirely in the pairIndex's workspace:
// stamped mark arrays instead of maps, and contiguous runs of the
// edge-index-sorted pair list instead of a segment hash. Per-terminal work
// therefore allocates nothing once the workspace has warmed up.
func runPhase2(ix *pairIndex, H *graph.EdgeSet, sets [][]int32, threshold int) (glueAdded, added int) {
	t := ix.en.T
	ws := ix.workspace()
	ws.ensure(len(ix.pairs), ix.en.G.M())

	// --- Sub-Phase S2.1: glue edges E⁻(TD). ---
	glueStamp := ws.nextStamp()
	for _, e := range t.GlueEdges {
		ws.edgeMark[e] = glueStamp
	}
	for i, p := range ix.pairs {
		if ws.edgeMark[p.Edge] == glueStamp && H.Add(ix.lastEdgeOf(int32(i))) {
			glueAdded++
		}
	}

	// --- Sub-Phases S2.2 and S2.3, per (∼)-set and terminal. ---
	for _, set := range sets {
		terminals, buckets := ix.groupByTerminal(set)
		for _, v := range terminals {
			vpairs := buckets[v]
			// The bucket arrives ordered deepest failing edge first; the edge
			// indexes of one terminal's pairs are pairwise distinct (one pair
			// per edge of π(s,v)), so reversing yields the strictly
			// increasing edge-index order (upmost first) the sub-phases need.
			for i, j := 0, len(vpairs)-1; i < j; i, j = i+1, j-1 {
				vpairs[i], vpairs[j] = vpairs[j], vpairs[i]
			}
			addStamp := ws.nextStamp()
			ws.addList = ws.addList[:0]
			addPair := func(p int32) {
				if ws.pairMark[p] != addStamp {
					ws.pairMark[p] = addStamp
					ws.addList = append(ws.addList, p)
				}
			}
			k := int(t.Depth[v])
			dec := paths.DecomposeLenInto(k, ws.bounds)
			ws.bounds = dec.Bounds

			// S2.2: group v's pairs by subsegment. Segments cover contiguous
			// edge-index ranges, so each group is a run of the sorted bucket.
			for i := 0; i < len(vpairs); {
				_, hi := dec.EdgeRange(dec.SegmentOfEdge(edgeIndexOf(ix, vpairs[i])))
				end := i + 1
				for end < len(vpairs) && edgeIndexOf(ix, vpairs[end]) < hi {
					end++
				}
				grp := vpairs[i:end]
				if countDistinctLast(ix, ws, grp) < threshold { // light subsegment
					for _, p := range grp {
						addPair(p)
					}
				}
				addPair(grp[0]) // ⟨v, e*_j⟩ — upmost pair of the segment
				i = end
			}

			// S2.3: per decomposition path ψ intersecting π(s,v). The
			// ψ∩π(s,v) edges form the contiguous edge-index interval
			// [D0, D1) where D0 = depth of ψ's head on the segment and D1 =
			// depth of the deepest ψ-vertex that is an ancestor of v.
			ws.segs = t.AppendSegmentsTo(ws.segs[:0], v)
			for _, seg := range ws.segs {
				path := t.Paths[seg.Path]
				d0 := int(t.Depth[path[0]])
				d1 := int(t.Depth[path[seg.BottomPos]])
				if d1 <= d0 {
					continue // single-vertex intersection: no π edges on ψ
				}
				// pairs with e ∈ ψ ∩ π(s,v)
				onPsi := pairsInRange(ix, vpairs, d0, d1)
				if len(onPsi) == 0 {
					continue
				}
				addPair(onPsi[0]) // upmost pair ⟨v, e*⟩ on ψ

				// boundary subsegments πU and πL: π-subsegments that meet ψ
				// but are not contained in it.
				first, last := -1, -1
				for j := 0; j < dec.NumSegments(); j++ {
					lo, hi := dec.EdgeRange(j)
					meets := lo < d1 && hi > d0
					contained := lo >= d0 && hi <= d1
					if meets && !contained {
						if first == -1 {
							first = j
						}
						last = j
					}
				}
				for bi, j := range [2]int{first, last} { // {first, last} deduplicated
					if j == -1 || (bi == 1 && last == first) {
						break
					}
					lo, hi := dec.EdgeRange(j)
					clo, chi := max(lo, d0), min(hi, d1)
					pu := pairsInRange(ix, vpairs, clo, chi)
					if len(pu) == 0 {
						continue
					}
					if countDistinctLast(ix, ws, pu) <= threshold {
						for _, p := range pu {
							addPair(p)
						}
					}
					addPair(pu[0]) // ⟨v, e*_U⟩ (resp. e*_L)
				}
			}

			for _, p := range ws.addList {
				if H.Add(ix.lastEdgeOf(p)) {
					added++
				}
			}
		}
	}
	return glueAdded, added
}

// countDistinctLast returns the number of distinct last-edge ids among the
// given pairs, using the workspace's stamped edge marks.
func countDistinctLast(ix *pairIndex, ws *Workspace, ps []int32) int {
	stamp := ws.nextStamp()
	distinct := 0
	for _, p := range ps {
		if e := ix.lastEdgeOf(p); ws.edgeMark[e] != stamp {
			ws.edgeMark[e] = stamp
			distinct++
		}
	}
	return distinct
}

// edgeIndexOf returns the edge index of pair p's failing edge along
// π(s, p.V): depth(child) − 1.
func edgeIndexOf(ix *pairIndex, p int32) int {
	return int(ix.en.T.Depth[ix.pairs[p].EdgeChild]) - 1
}

// pairsInRange returns the pairs (already sorted by edge index) whose edge
// index lies in [lo, hi).
func pairsInRange(ix *pairIndex, sorted []int32, lo, hi int) []int32 {
	i := sort.Search(len(sorted), func(i int) bool { return edgeIndexOf(ix, sorted[i]) >= lo })
	j := sort.Search(len(sorted), func(i int) bool { return edgeIndexOf(ix, sorted[i]) >= hi })
	return sorted[i:j]
}
