package core

import (
	"sort"

	"ftbfs/internal/graph"
	"ftbfs/internal/paths"
)

// runPhase2 executes Phase S2: given the collection S of (∼)-sets (I2 plus
// the PC_i sets deferred by Phase S1), it adds to H
//
//	(S2.1) the last edges of every uncovered pair protecting a glue edge of
//	       the Fact 3.3 tree decomposition (O(log n) per terminal by
//	       Fact 4.1(a));
//	(S2.2) for every set P and terminal v, the pairs of the light
//	       subsegments of the exponential decomposition of π(s,v), plus the
//	       upmost pair of every subsegment;
//	(S2.3) for every decomposition path ψ met by π(s,v), the upmost pair on
//	       ψ and — when small — the pairs of the first and last subsegments
//	       that straddle ψ's boundary.
//
// It returns the number of last edges added by S2.1 and by S2.2–S2.3.
func runPhase2(ix *pairIndex, H *graph.EdgeSet, sets [][]int32, threshold int) (glueAdded, added int) {
	t := ix.en.T

	// --- Sub-Phase S2.1: glue edges E⁻(TD). ---
	glue := graph.NewEdgeSet(ix.en.G.M())
	for _, e := range t.GlueEdges {
		glue.Add(e)
	}
	for i, p := range ix.pairs {
		if glue.Contains(p.Edge) && H.Add(ix.lastEdgeOf(int32(i))) {
			glueAdded++
		}
	}

	// --- Sub-Phases S2.2 and S2.3, per (∼)-set and terminal. ---
	for _, set := range sets {
		terminals, buckets := ix.groupByTerminal(set)
		for _, v := range terminals {
			vpairs := buckets[v]
			// order by edge index (upmost first)
			sort.Slice(vpairs, func(a, b int) bool {
				return edgeIndexOf(ix, vpairs[a]) < edgeIndexOf(ix, vpairs[b])
			})
			add := make(map[int32]bool)
			k := int(t.Depth[v])
			dec := paths.DecomposeLen(k)

			// S2.2: group v's pairs by subsegment.
			type segGroup struct {
				pairs   []int32
				lastIDs map[graph.EdgeID]bool
			}
			groups := make(map[int]*segGroup)
			for _, p := range vpairs {
				j := dec.SegmentOfEdge(edgeIndexOf(ix, p))
				grp := groups[j]
				if grp == nil {
					grp = &segGroup{lastIDs: map[graph.EdgeID]bool{}}
					groups[j] = grp
				}
				grp.pairs = append(grp.pairs, p)
				grp.lastIDs[ix.lastEdgeOf(p)] = true
			}
			for _, grp := range groups {
				if len(grp.lastIDs) < threshold { // light subsegment
					for _, p := range grp.pairs {
						add[p] = true
					}
				}
				add[grp.pairs[0]] = true // ⟨v, e*_j⟩ — upmost pair of the segment
			}

			// S2.3: per decomposition path ψ intersecting π(s,v). The
			// ψ∩π(s,v) edges form the contiguous edge-index interval
			// [D0, D1) where D0 = depth of ψ's head on the segment and D1 =
			// depth of the deepest ψ-vertex that is an ancestor of v.
			for _, seg := range t.SegmentsTo(v) {
				path := t.Paths[seg.Path]
				d0 := int(t.Depth[path[0]])
				d1 := int(t.Depth[path[seg.BottomPos]])
				if d1 <= d0 {
					continue // single-vertex intersection: no π edges on ψ
				}
				// pairs with e ∈ ψ ∩ π(s,v)
				onPsi := pairsInRange(ix, vpairs, d0, d1)
				if len(onPsi) == 0 {
					continue
				}
				add[onPsi[0]] = true // upmost pair ⟨v, e*⟩ on ψ

				// boundary subsegments πU and πL: π-subsegments that meet ψ
				// but are not contained in it.
				first, last := -1, -1
				for j := 0; j < dec.NumSegments(); j++ {
					lo, hi := dec.EdgeRange(j)
					meets := lo < d1 && hi > d0
					contained := lo >= d0 && hi <= d1
					if meets && !contained {
						if first == -1 {
							first = j
						}
						last = j
					}
				}
				for _, j := range boundary(first, last) {
					lo, hi := dec.EdgeRange(j)
					clo, chi := max(lo, d0), min(hi, d1)
					pu := pairsInRange(ix, vpairs, clo, chi)
					if len(pu) == 0 {
						continue
					}
					lastIDs := map[graph.EdgeID]bool{}
					for _, p := range pu {
						lastIDs[ix.lastEdgeOf(p)] = true
					}
					if len(lastIDs) <= threshold {
						for _, p := range pu {
							add[p] = true
						}
					}
					add[pu[0]] = true // ⟨v, e*_U⟩ (resp. e*_L)
				}
			}

			for p := range add {
				if H.Add(ix.lastEdgeOf(p)) {
					added++
				}
			}
		}
	}
	return glueAdded, added
}

// edgeIndexOf returns the edge index of pair p's failing edge along
// π(s, p.V): depth(child) − 1.
func edgeIndexOf(ix *pairIndex, p int32) int {
	return int(ix.en.T.Depth[ix.pairs[p].EdgeChild]) - 1
}

// pairsInRange returns the pairs (already sorted by edge index) whose edge
// index lies in [lo, hi).
func pairsInRange(ix *pairIndex, sorted []int32, lo, hi int) []int32 {
	i := sort.Search(len(sorted), func(i int) bool { return edgeIndexOf(ix, sorted[i]) >= lo })
	j := sort.Search(len(sorted), func(i int) bool { return edgeIndexOf(ix, sorted[i]) >= hi })
	return sorted[i:j]
}

// boundary returns {first, last} deduplicated, skipping -1.
func boundary(first, last int) []int {
	if first == -1 {
		return nil
	}
	if first == last {
		return []int{first}
	}
	return []int{first, last}
}
