package core

import (
	"math"
	"testing"

	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

// families returns small connected graphs exercising different regimes.
func families() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"cycle":        gen.Cycle(24),
		"grid":         gen.Grid(6, 7),
		"hypercube":    gen.Hypercube(5),
		"random40":     gen.RandomConnected(40, 60, 1),
		"random70":     gen.RandomConnected(70, 120, 2),
		"gnp":          gen.GNPConnected(50, 0.08, 3),
		"cliquechain":  gen.CliqueChain(20),
		"lowerbound":   gen.LowerBoundParams(2, 3, 5).G,
		"lowerbound2":  gen.LowerBoundParams(3, 4, 6).G,
		"caterpillar":  caterpillarGraph(),
		"dense-random": gen.GNM(30, 200, 4),
		"circulant":    gen.Circulant(30, []int{1, 5, 9}),
		"regular":      gen.RandomRegular(36, 4, 6),
	}
}

func caterpillarGraph() *graph.Graph {
	b := graph.NewBuilder(14)
	b.AddPath(0, 1, 2, 3, 4, 5, 6)
	for i := 7; i < 14; i++ {
		b.Add(i-7, i)
	}
	b.Add(7, 8)
	b.Add(12, 13)
	return b.Graph()
}

func mustBuild(t *testing.T, g *graph.Graph, s int, eps float64, opt Options) *Structure {
	t.Helper()
	st, err := Build(g, s, eps, opt)
	if err != nil {
		t.Fatalf("Build(ε=%g): %v", eps, err)
	}
	if err := CheckInvariants(st); err != nil {
		t.Fatalf("invariants (ε=%g): %v", eps, err)
	}
	return st
}

func TestBuildArgumentValidation(t *testing.T) {
	g := gen.Cycle(5)
	if _, err := Build(g, -1, 0.2, Options{}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := Build(g, 9, 0.2, Options{}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := Build(g, 0, -0.1, Options{}); err == nil {
		t.Fatal("negative ε accepted")
	}
	if _, err := Build(g, 0, 1.5, Options{}); err == nil {
		t.Fatal("ε>1 accepted")
	}
	if _, err := Build(g, 0, 0, Options{Algorithm: Epsilon}); err == nil {
		t.Fatal("Epsilon with ε=0 accepted")
	}
	unfrozen := graph.New(3)
	if _, err := Build(unfrozen, 0, 0.2, Options{}); err == nil {
		t.Fatal("unfrozen graph accepted")
	}
}

func TestTreeAlgorithm(t *testing.T) {
	for name, g := range families() {
		st := mustBuild(t, g, 0, 0, Options{})
		if st.Stats.Algorithm != "tree" {
			t.Fatalf("%s: algorithm=%s", name, st.Stats.Algorithm)
		}
		if st.Size() > g.N()-1 {
			t.Fatalf("%s: tree structure has %d edges", name, st.Size())
		}
		if st.ReinforcedCount() > g.N()-1 {
			t.Fatalf("%s: r=%d > n-1", name, st.ReinforcedCount())
		}
		if err := MustVerify(st); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestBaselineProtectsEverything(t *testing.T) {
	for name, g := range families() {
		st := mustBuild(t, g, 0, 1, Options{})
		if st.Stats.Algorithm != "baseline" {
			t.Fatalf("%s: algorithm=%s", name, st.Stats.Algorithm)
		}
		if st.ReinforcedCount() != 0 {
			t.Fatalf("%s: baseline needs %d reinforced edges, want 0", name, st.ReinforcedCount())
		}
		if err := MustVerify(st); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Theorem of [14]: |E(H)| = O(n^{3/2}); generous constant 4.
		n := float64(g.N())
		if float64(st.Size()) > 4*n*math.Sqrt(n) {
			t.Fatalf("%s: baseline size %d exceeds 4·n^1.5=%g", name, st.Size(), 4*n*math.Sqrt(n))
		}
	}
}

func TestEpsilonValidAcrossFamiliesAndEps(t *testing.T) {
	for name, g := range families() {
		for _, eps := range []float64{0.15, 0.3, 0.45} {
			st := mustBuild(t, g, 0, eps, Options{})
			if st.Stats.Algorithm != "epsilon" {
				t.Fatalf("%s ε=%g: algorithm=%s", name, eps, st.Stats.Algorithm)
			}
			if err := MustVerify(st); err != nil {
				t.Fatalf("%s ε=%g: %v", name, eps, err)
			}
		}
	}
}

func TestEpsilonStatsConsistent(t *testing.T) {
	g := gen.LowerBoundParams(3, 4, 6).G
	en := replacement.NewEngine(g, 0)
	st := mustBuild(t, g, 0, 0.3, Options{})
	if st.Stats.UncoveredPairs != en.UncoveredCount() {
		t.Fatalf("stats UncoveredPairs=%d engine=%d", st.Stats.UncoveredPairs, en.UncoveredCount())
	}
	if st.Stats.I1Size+st.Stats.I2Size != st.Stats.UncoveredPairs {
		t.Fatal("I1+I2 != UP")
	}
	if st.Stats.K != int(math.Ceil(1/0.3))+2 {
		t.Fatalf("K=%d", st.Stats.K)
	}
	if st.Stats.Threshold != int(math.Ceil(math.Pow(float64(g.N()), 0.3))) {
		t.Fatalf("threshold=%d", st.Stats.Threshold)
	}
	if len(st.Stats.TypeACounts) > st.Stats.K {
		t.Fatal("more classification rounds than K")
	}
}

// Reinforcement stays within the analytic budget O(1/ε · n^{1−ε} · log n)
// with a generous constant.
func TestEpsilonReinforcementBudget(t *testing.T) {
	for name, g := range families() {
		for _, eps := range []float64{0.2, 0.35} {
			st := mustBuild(t, g, 0, eps, Options{})
			n := float64(g.N())
			bound := 8 / eps * math.Pow(n, 1-eps) * math.Log2(n+1)
			if float64(st.ReinforcedCount()) > bound {
				t.Fatalf("%s ε=%g: r=%d exceeds budget %g", name, eps, st.ReinforcedCount(), bound)
			}
			// backup stays within O(min{1/ε·n^{1+ε}·log n, n^{3/2}})
			sizeBound := 8 * math.Min(1/eps*math.Pow(n, 1+eps)*math.Log2(n+1), n*math.Sqrt(n)+n)
			if float64(st.Size()) > sizeBound {
				t.Fatalf("%s ε=%g: |H|=%d exceeds %g", name, eps, st.Size(), sizeBound)
			}
		}
	}
}

func TestGreedyValid(t *testing.T) {
	for name, g := range families() {
		st := mustBuild(t, g, 0, 0.3, Options{Algorithm: Greedy})
		if st.Stats.Algorithm != "greedy" {
			t.Fatalf("%s: algorithm=%s", name, st.Stats.Algorithm)
		}
		if err := MustVerify(st); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// explicit budget respected (after minimisation it can only shrink)
	g := gen.LowerBoundParams(2, 4, 6).G
	st := mustBuild(t, g, 0, 0.3, Options{Algorithm: Greedy, GreedyBudget: 3})
	if st.ReinforcedCount() > 3 {
		t.Fatalf("greedy exceeded budget: r=%d", st.ReinforcedCount())
	}
}

func TestAblationsStillValid(t *testing.T) {
	g := gen.LowerBoundParams(2, 4, 6).G
	full := mustBuild(t, g, 0, 0.3, Options{})
	noS1 := mustBuild(t, g, 0, 0.3, Options{SkipPhase1: true})
	noS2 := mustBuild(t, g, 0, 0.3, Options{SkipPhase2: true})
	for _, st := range []*Structure{full, noS1, noS2} {
		if err := MustVerify(st); err != nil {
			t.Fatal(err)
		}
	}
	if noS1.Stats.S1Added != 0 {
		t.Fatal("SkipPhase1 still added S1 edges")
	}
	if noS2.Stats.S2Added != 0 || noS2.Stats.S2GlueAdded != 0 {
		t.Fatal("SkipPhase2 still added S2 edges")
	}
}

func TestVerifyCatchesBrokenStructure(t *testing.T) {
	// On a cycle, the bare tree with nothing reinforced is NOT fault
	// tolerant: failing a tree edge strands the subtree.
	g := gen.Cycle(12)
	en := replacement.NewEngine(g, 0)
	bogus := &Structure{
		G:          g,
		S:          0,
		Edges:      en.TreeEdges.Clone(),
		Reinforced: graph.NewEdgeSet(g.M()),
		TreeEdges:  en.TreeEdges.Clone(),
	}
	if len(Verify(bogus, 0)) == 0 {
		t.Fatal("Verify accepted an invalid structure")
	}
	if len(Verify(bogus, 2)) != 2 {
		t.Fatal("violation limit not honoured")
	}
	if MustVerify(bogus) == nil {
		t.Fatal("MustVerify accepted an invalid structure")
	}
}

func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	g := gen.Cycle(8)
	st := mustBuild(t, g, 0, 0.3, Options{})
	bad := *st
	bad.Reinforced = graph.NewEdgeSet(g.M())
	// a reinforced edge outside T0:
	st.TreeEdges.ForEach(func(e graph.EdgeID) {})
	for id := 0; id < g.M(); id++ {
		if !st.TreeEdges.Contains(graph.EdgeID(id)) {
			bad.Reinforced.Add(graph.EdgeID(id))
			break
		}
	}
	if CheckInvariants(&bad) == nil {
		t.Fatal("reinforced edge outside T0 accepted")
	}
}

func TestStructureAccessors(t *testing.T) {
	g := gen.Grid(5, 5)
	st := mustBuild(t, g, 0, 0.3, Options{})
	if st.Size() != st.BackupCount()+st.ReinforcedCount() {
		t.Fatal("size != backup+reinforced")
	}
	wantCost := 2*float64(st.BackupCount()) + 10*float64(st.ReinforcedCount())
	if st.Cost(2, 10) != wantCost {
		t.Fatal("cost arithmetic wrong")
	}
	if st.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestDisconnectedGraphHandled(t *testing.T) {
	b := graph.NewBuilder(10)
	b.AddClique(0, 1, 2, 3)
	b.AddClique(4, 5, 6) // unreachable island
	b.AddPath(0, 7, 8, 9)
	g := b.Graph()
	for _, eps := range []float64{0, 0.3, 1} {
		st := mustBuild(t, g, 0, eps, Options{})
		if err := MustVerify(st); err != nil {
			t.Fatalf("ε=%g: %v", eps, err)
		}
	}
}

func TestTinyGraphs(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		b := graph.NewBuilder(n)
		for i := 0; i+1 < n; i++ {
			b.Add(i, i+1)
		}
		g := b.Graph()
		for _, eps := range []float64{0, 0.25, 1} {
			st := mustBuild(t, g, 0, eps, Options{})
			if err := MustVerify(st); err != nil {
				t.Fatalf("n=%d ε=%g: %v", n, eps, err)
			}
		}
	}
}

func TestDifferentSources(t *testing.T) {
	g := gen.RandomConnected(40, 60, 9)
	for s := 0; s < 10; s++ {
		st := mustBuild(t, g, s, 0.3, Options{})
		if err := MustVerify(st); err != nil {
			t.Fatalf("source %d: %v", s, err)
		}
	}
}
