package core

import (
	"ftbfs/internal/tree"
)

// Workspace holds the scratch buffers that keep the Phase S2 hot path
// allocation-free: stamped mark arrays (indexed by pair id and edge id), the
// insertion-ordered add set of the terminal being processed, and the
// segment-boundary buffer of the exponential decomposition. A Workspace may
// be reused across builds — even on different graphs, the buffers regrow on
// demand — but must never be shared by concurrent builds; batch builders keep
// one per worker.
type Workspace struct {
	pairMark []int32        // stamped add-set membership, indexed by pair id
	edgeMark []int32        // stamped distinct-last-edge marks, indexed by edge id
	addList  []int32        // insertion-ordered add set of the current terminal
	bounds   []int          // reusable buffer for paths.DecomposeLenInto
	segs     []tree.Segment // reusable buffer for tree.AppendSegmentsTo
	stamp    int32
}

// NewWorkspace returns an empty workspace; buffers are sized lazily.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensure sizes the mark arrays for a build with nPairs uncovered pairs on a
// graph with m edges. Freshly grown arrays are zeroed, which can never
// collide with a live stamp (stamps start at 1 and only grow).
func (ws *Workspace) ensure(nPairs, m int) {
	if len(ws.pairMark) < nPairs {
		ws.pairMark = make([]int32, nPairs)
	}
	if len(ws.edgeMark) < m {
		ws.edgeMark = make([]int32, m)
	}
}

// nextStamp starts a new logical mark set. On the (practically unreachable)
// int32 wrap-around the mark arrays are cleared so stale entries cannot alias
// the restarted counter.
func (ws *Workspace) nextStamp() int32 {
	ws.stamp++
	if ws.stamp < 0 {
		for i := range ws.pairMark {
			ws.pairMark[i] = 0
		}
		for i := range ws.edgeMark {
			ws.edgeMark[i] = 0
		}
		ws.stamp = 1
	}
	return ws.stamp
}
