package core

import (
	"math"
	"testing"

	"ftbfs/internal/gen"
)

func TestCostPointArithmetic(t *testing.T) {
	g := gen.CliqueChain(12)
	points, best, err := CostSweep(g, 0, []float64{0, 1}, 2, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		want := 2*float64(p.Backup) + 7*float64(p.Reinforced)
		if math.Abs(p.Cost-want) > 1e-9 {
			t.Fatalf("cost %g want %g", p.Cost, want)
		}
	}
	if best != 0 && best != 1 {
		t.Fatal("best index out of range")
	}
}

func TestCostSweepPropagatesBuildError(t *testing.T) {
	g := gen.Cycle(6)
	if _, _, err := CostSweep(g, 99, []float64{0.2}, 1, 1, Options{}); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, _, err := CostSweep(g, 0, []float64{-3}, 1, 1, Options{}); err == nil {
		t.Fatal("bad eps accepted")
	}
}

func TestPredictedOptimalEpsMidrange(t *testing.T) {
	// log(R/B)/(2 log n): n=10^4, R/B=10^2 → 2/(2·4) = 0.25
	if got := PredictedOptimalEps(10000, 1, 100); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("got %g want 0.25", got)
	}
}

func TestGreedyDefaultBudget(t *testing.T) {
	// with eps=0.5 and n vertices, the default budget is ⌈n^{0.5}⌉; the
	// resulting reinforced count can only be smaller.
	g := gen.RandomConnected(49, 80, 3)
	st, err := Build(g, 0, 0.5, Options{Algorithm: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if st.ReinforcedCount() > 7 {
		t.Fatalf("reinforced %d exceeds default budget 7", st.ReinforcedCount())
	}
	if err := MustVerify(st); err != nil {
		t.Fatal(err)
	}
}
