package core

import (
	"errors"
	"math"
	"sort"

	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

var errNotFrozen = errors.New("core: graph must be frozen")

// buildGreedy is the heuristic comparator suggested by the paper's
// discussion of Cost(e): reinforcement is most valuable on edges with many
// users, i.e. the tree edges whose failure requires the largest fan of new
// last edges. Greedy therefore
//
//  1. computes for every tree edge e the fan F(e) = distinct last edges of
//     the uncovered pairs protecting e,
//  2. reinforces the (at most budget) edges with the largest |F(e)|,
//  3. buys the fans of every remaining edge as backup.
//
// The result is a valid (b,r) FT-BFS structure (every unreinforced edge is
// last-protected by construction); it is an upper-bound heuristic, not the
// paper's algorithm — experiment E9 compares the two.
//
// The reinforcement computed by the caller's sweep is the exact
// last-unprotected set, which is the greedily chosen set minus any edge whose
// fan turned out covered by other additions — the minimal set rather than the
// nominal one.
func greedyEdges(en *replacement.Engine, eps float64, opt Options) (*graph.EdgeSet, BuildStats) {
	n := en.G.N()
	budget := opt.GreedyBudget
	if budget <= 0 {
		budget = int(math.Ceil(math.Pow(float64(n), 1-eps)))
	}

	// fans per failing tree edge
	fans := make(map[graph.EdgeID]map[graph.EdgeID]bool)
	pairs := en.AllPairs()
	for _, p := range pairs {
		f := fans[p.Edge]
		if f == nil {
			f = make(map[graph.EdgeID]bool)
			fans[p.Edge] = f
		}
		f[p.LastID] = true
	}
	type fanSize struct {
		e    graph.EdgeID
		size int
	}
	order := make([]fanSize, 0, len(fans))
	for e, f := range fans {
		order = append(order, fanSize{e, len(f)})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].size != order[j].size {
			return order[i].size > order[j].size
		}
		return order[i].e < order[j].e
	})

	reinforce := graph.NewEdgeSet(en.G.M())
	for i := 0; i < len(order) && i < budget; i++ {
		reinforce.Add(order[i].e)
	}

	h := en.TreeEdges.Clone()
	for _, p := range pairs {
		if !reinforce.Contains(p.Edge) {
			h.Add(p.LastID)
		}
	}
	return h, BuildStats{Algorithm: Greedy.String()}
}

// BuildReinforcing constructs a structure that reinforces (up to) the given
// candidate tree edges and buys, as backup, the last edges of every
// uncovered pair protecting a non-candidate edge. This is the "oracle
// reinforcement" used by the lower-bound experiments: on the Theorem 5.1
// instances, reinforcing exactly the costly path edges Π collapses the
// backup volume from Θ(n^{1+ε}) to near-linear. Candidates that turn out
// protected anyway are not reinforced.
func BuildReinforcing(g *graph.Graph, s int, candidates []graph.EdgeID) (*Structure, error) {
	if !g.Frozen() {
		return nil, errNotFrozen
	}
	en := replacement.NewEngine(g, s)
	cand := graph.NewEdgeSet(g.M())
	for _, e := range candidates {
		cand.Add(e)
	}
	h := en.TreeEdges.Clone()
	for _, p := range en.AllPairs() {
		if !cand.Contains(p.Edge) {
			h.Add(p.LastID)
		}
	}
	st := newStructure(en, 0, h)
	st.Stats.Algorithm = "reinforce-set"
	return st, nil
}
