package core

import (
	"testing"

	"ftbfs/internal/gen"
)

func TestBuildMultiValid(t *testing.T) {
	g := gen.RandomConnected(40, 60, 21)
	ms, err := BuildMulti(g, []int{0, 7, 13}, 0.3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Per) != 3 {
		t.Fatalf("per-source structures: %d", len(ms.Per))
	}
	if viol := VerifyMulti(ms, 0); len(viol) != 0 {
		t.Fatalf("FT-MBFS violations: %v", viol[:min(len(viol), 3)])
	}
	if ms.Size() != ms.BackupCount()+ms.ReinforcedCount() {
		t.Fatal("size mismatch")
	}
	// union at least as large as each part
	for _, st := range ms.Per {
		if ms.Size() < st.Size() {
			t.Fatal("union smaller than a part")
		}
	}
}

func TestBuildMultiOnLowerBoundGraph(t *testing.T) {
	lb := gen.MultiLowerBoundParams(2, 2, 3, 4)
	ms, err := BuildMulti(lb.G, lb.Sources, 0.3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if viol := VerifyMulti(ms, 0); len(viol) != 0 {
		t.Fatalf("violations on the Thm 5.4 construction: %d", len(viol))
	}
}

func TestBuildMultiErrors(t *testing.T) {
	g := gen.Cycle(6)
	if _, err := BuildMulti(g, nil, 0.3, Options{}); err == nil {
		t.Fatal("empty source list accepted")
	}
	if _, err := BuildMulti(g, []int{99}, 0.3, Options{}); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestPredictedOptimalEps(t *testing.T) {
	if PredictedOptimalEps(1000, 1, 1) != 0 {
		t.Fatal("equal prices should predict ε=0")
	}
	// monotone in R/B and clamped
	prev := -1.0
	for _, ratio := range []float64{1, 4, 16, 256, 1 << 20} {
		eps := PredictedOptimalEps(1000, 1, ratio)
		if eps < prev {
			t.Fatalf("not monotone at R/B=%g", ratio)
		}
		if eps < 0 || eps > 0.5 {
			t.Fatalf("out of range: %g", eps)
		}
		prev = eps
	}
	if PredictedOptimalEps(1000, 4, 1) != 0 {
		t.Fatal("cheap reinforcement must clamp to 0")
	}
	if PredictedOptimalEps(1, 1, 10) != 0 || PredictedOptimalEps(10, 0, 1) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
}

func TestCostSweep(t *testing.T) {
	g := gen.LowerBoundParams(2, 3, 5).G
	grid := []float64{0, 0.25, 0.5, 1}
	points, best, err := CostSweep(g, 0, grid, 1, 50, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(grid) || best < 0 || best >= len(points) {
		t.Fatalf("sweep shape wrong: %d points, best=%d", len(points), best)
	}
	for _, p := range points {
		if p.Cost < points[best].Cost {
			t.Fatal("best is not minimal")
		}
		if p.Cost != float64(p.Backup)+50*float64(p.Reinforced) {
			t.Fatal("cost arithmetic wrong")
		}
	}
	if len(DefaultEpsGrid()) < 5 {
		t.Fatal("default grid too small")
	}
}

// When reinforcement is expensive, the sweep should not pick a
// reinforcement-heavy point over the baseline; when it is cheap, ε=0 (all
// tree edges reinforced, b=0) should win on the lower-bound family.
func TestCostSweepDirection(t *testing.T) {
	g := gen.LowerBoundParams(3, 4, 8).G
	grid := []float64{0, 0.25, 1}
	// reinforcement cheap: ε=0 optimal
	_, best, err := CostSweep(g, 0, grid, 1000, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if grid[best] != 0 {
		t.Fatalf("cheap reinforcement: best ε=%g want 0", grid[best])
	}
	// reinforcement exorbitant: the optimum must avoid reinforcement
	// entirely (ε=1 guarantees r=0, but a smaller ε may reach r=0 with
	// fewer backup edges and win — both are acceptable).
	points, best, err := CostSweep(g, 0, grid, 1, 1e9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if points[best].Reinforced != 0 {
		t.Fatalf("expensive reinforcement: best point still reinforces %d edges (ε=%g)",
			points[best].Reinforced, grid[best])
	}
}
