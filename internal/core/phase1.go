package core

import (
	"ftbfs/internal/graph"
)

// phase1Result captures what the K iterations of Phase S1 produced.
type phase1Result struct {
	CSets    [][]int32 // PC_1 … PC_K — the (∼)-sets deferred to Phase S2
	Added    int       // last edges inserted into H
	Leftover []int32   // pairs of PA∪PB still uncovered after K iterations
	ACounts  []int
	BCounts  []int
	CCounts  []int
}

// runPhase1 executes Phase S1 on the (≁)-set I1: K iterations, each
// classifying the working set into types A/B/C (Eqs. 2–3), deferring the C
// pairs and adding, per terminal v and per type J ∈ {A,B}, the ⌈n^ε⌉
// distinct last edges of the replacement paths protecting the deepest
// failing edges on π(s,v). Lemma 4.10 guarantees that after K = ⌈1/ε⌉+2
// iterations no type-A/B pair remains uncovered; any residue is returned in
// Leftover and handled defensively by the caller (see DESIGN.md §3).
func runPhase1(ix *pairIndex, H *graph.EdgeSet, i1 []int32, k, threshold int) phase1Result {
	var res phase1Result
	pi := i1
	for iter := 1; iter <= k && len(pi) > 0; iter++ {
		a, b, c := ix.classify(pi)
		res.ACounts = append(res.ACounts, len(a))
		res.BCounts = append(res.BCounts, len(b))
		res.CCounts = append(res.CCounts, len(c))
		res.CSets = append(res.CSets, c)

		for _, set := range [][]int32{a, b} {
			terminals, buckets := ix.groupByTerminal(set)
			for _, v := range terminals {
				budget := threshold
				for _, p := range buckets[v] {
					last := ix.lastEdgeOf(p)
					if H.Contains(last) {
						continue // already covered — costs no budget
					}
					if budget == 0 {
						break // deeper pairs wait for the next iteration
					}
					H.Add(last)
					res.Added++
					budget--
				}
			}
		}
		// P_{i+1} = pairs of PA ∪ PB whose last edge is still missing.
		var next []int32
		for _, set := range [][]int32{a, b} {
			for _, p := range set {
				if !H.Contains(ix.lastEdgeOf(p)) {
					next = append(next, p)
				}
			}
		}
		pi = next
	}
	res.Leftover = pi
	return res
}
