package core

import (
	"testing"

	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

func indexFor(t *testing.T, g *graph.Graph, s int) (*replacement.Engine, *pairIndex) {
	t.Helper()
	en := replacement.NewEngine(g, s)
	pairs := en.AllPairs()
	return en, buildPairIndex(en, pairs)
}

// Brute-force interference test between pairs i and j: detours share a
// vertex internal to both (Eq. 1).
func interferes(ix *pairIndex, i, j int32) bool {
	pi, pj := ix.pairs[i], ix.pairs[j]
	if pi.V == pj.V {
		return false
	}
	inJ := map[int32]bool{}
	for _, z := range pj.Detour[1 : len(pj.Detour)-1] {
		inJ[z] = true
	}
	for _, z := range pi.Detour[1 : len(pi.Detour)-1] {
		if inJ[z] {
			return true
		}
	}
	return false
}

func TestSplitI1I2MatchesBruteForce(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.LowerBoundParams(2, 3, 5).G,
		gen.RandomConnected(50, 80, 3),
		gen.GNPConnected(60, 0.07, 4),
	} {
		_, ix := indexFor(t, g, 0)
		i1, i2 := ix.splitI1I2()
		if len(i1)+len(i2) != len(ix.pairs) {
			t.Fatalf("I1+I2=%d+%d != %d pairs", len(i1), len(i2), len(ix.pairs))
		}
		inI1 := map[int32]bool{}
		for _, p := range i1 {
			inI1[p] = true
		}
		for i := range ix.pairs {
			want := false
			for j := range ix.pairs {
				if i == j {
					continue
				}
				if interferes(ix, int32(i), int32(j)) && !ix.related(int32(i), int32(j)) {
					want = true
					break
				}
			}
			if inI1[int32(i)] != want {
				t.Fatalf("pair %d: I1 membership %v, brute force %v", i, inI1[int32(i)], want)
			}
		}
	}
}

// Observation 4.11: every classify() C-set is a (∼)-set — no pair of it
// (≁)-interferes with another pair of it.
func TestTypeCIsSimSet(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.LowerBoundParams(3, 4, 6).G,
		gen.RandomConnected(60, 100, 5),
	} {
		_, ix := indexFor(t, g, 0)
		i1, _ := ix.splitI1I2()
		a, b, c := ix.classify(i1)
		if len(a)+len(b)+len(c) != len(i1) {
			t.Fatal("classify does not partition")
		}
		seen := map[int32]int{}
		for _, p := range a {
			seen[p]++
		}
		for _, p := range b {
			seen[p]++
		}
		for _, p := range c {
			seen[p]++
		}
		for p, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("pair %d classified %d times", p, cnt)
			}
		}
		for _, p := range c {
			for _, q := range c {
				if p != q && interferes(ix, p, q) && !ix.related(p, q) {
					t.Fatalf("C-set pairs %d and %d (≁)-interfere", p, q)
				}
			}
		}
	}
}

// Type B pairs must (≁)-interfere with some non-A pair; type A pairs must
// π-intersect some interfering pair of the set.
func TestClassifyDefinitions(t *testing.T) {
	g := gen.LowerBoundParams(3, 4, 6).G
	_, ix := indexFor(t, g, 0)
	i1, _ := ix.splitI1I2()
	a, b, _ := ix.classify(i1)
	inA := map[int32]bool{}
	for _, p := range a {
		inA[p] = true
	}
	inSet := map[int32]bool{}
	for _, p := range i1 {
		inSet[p] = true
	}
	for _, p := range a {
		found := false
		for _, q := range i1 {
			if q != p && interferes(ix, p, q) && !ix.related(p, q) &&
				ix.piIntersects(p, ix.pairs[q].V) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("type-A pair %d has no π-intersecting interferer", p)
		}
	}
	for _, p := range b {
		found := false
		for _, q := range i1 {
			if q != p && !inA[q] && interferes(ix, p, q) && !ix.related(p, q) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("type-B pair %d has no non-A interferer", p)
		}
	}
}

// π-intersection against the definition: the detour of p meets
// π(LCA(v,t), t) \ {LCA}.
func TestPiIntersectsAgainstDefinition(t *testing.T) {
	g := gen.RandomConnected(50, 90, 8)
	en, ix := indexFor(t, g, 0)
	for i := range ix.pairs {
		p := int32(i)
		v := ix.pairs[p].V
		for t32 := int32(0); t32 < int32(g.N()); t32++ {
			if t32 == v || en.T.Depth[t32] < 0 {
				continue
			}
			// brute force: walk π(s,t) below LCA(v,t)
			lca := en.T.LCA(v, t32)
			onSeg := map[int32]bool{}
			for x := t32; x != lca && x >= 0; x = en.T.Parent[x] {
				onSeg[x] = true
			}
			want := false
			for _, z := range ix.pairs[p].Detour {
				if onSeg[z] {
					want = true
					break
				}
			}
			if got := ix.piIntersects(p, t32); got != want {
				t.Fatalf("pair %d terminal %d: piIntersects=%v brute=%v", p, t32, got, want)
			}
		}
	}
}

func TestGroupByTerminalOrdering(t *testing.T) {
	g := gen.LowerBoundParams(2, 4, 5).G
	en, ix := indexFor(t, g, 0)
	all := make([]int32, len(ix.pairs))
	for i := range all {
		all[i] = int32(i)
	}
	terminals, buckets := ix.groupByTerminal(all)
	for i := 1; i < len(terminals); i++ {
		if terminals[i-1] >= terminals[i] {
			t.Fatal("terminals not sorted")
		}
	}
	total := 0
	for _, v := range terminals {
		b := buckets[v]
		total += len(b)
		for i := 1; i < len(b); i++ {
			if ix.pairs[b[i-1]].DistFromV(en.T) > ix.pairs[b[i]].DistFromV(en.T) {
				t.Fatal("bucket not ordered deepest-edge-first")
			}
		}
		for _, p := range b {
			if ix.pairs[p].V != v {
				t.Fatal("bucket contains foreign pair")
			}
		}
	}
	if total != len(all) {
		t.Fatal("buckets lose pairs")
	}
}
