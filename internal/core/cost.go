package core

import (
	"math"

	"ftbfs/internal/graph"
)

// CostPoint is one row of the cost sweep: the structure built at Eps and
// its deployment cost under the given price pair.
type CostPoint struct {
	Eps        float64
	Backup     int
	Reinforced int
	Cost       float64
}

// PredictedOptimalEps is the paper's closed-form guidance (Section 1): the
// minimum of B·b(n) + R·r(n) ≈ B·n^{1+ε} + R·n^{1−ε} is achieved around
// ε = log(R/B) / (2 log n), clamped to [0, ½]. (Balancing the two terms:
// n^{1+ε}·B = n^{1−ε}·R ⇒ n^{2ε} = R/B.)
func PredictedOptimalEps(n int, backupPrice, reinforcePrice float64) float64 {
	if n < 2 || backupPrice <= 0 || reinforcePrice <= 0 {
		return 0
	}
	eps := math.Log(reinforcePrice/backupPrice) / (2 * math.Log(float64(n)))
	if eps < 0 {
		return 0
	}
	if eps > 0.5 {
		return 0.5
	}
	return eps
}

// CostSweep builds a structure for every ε in the grid and prices it,
// returning the sweep and the index of the cheapest point.
func CostSweep(g *graph.Graph, s int, epsGrid []float64, backupPrice, reinforcePrice float64, opt Options) ([]CostPoint, int, error) {
	points := make([]CostPoint, 0, len(epsGrid))
	best := -1
	for _, eps := range epsGrid {
		st, err := Build(g, s, eps, opt)
		if err != nil {
			return nil, -1, err
		}
		cp := CostPoint{
			Eps:        eps,
			Backup:     st.BackupCount(),
			Reinforced: st.ReinforcedCount(),
			Cost:       st.Cost(backupPrice, reinforcePrice),
		}
		points = append(points, cp)
		if best == -1 || cp.Cost < points[best].Cost {
			best = len(points) - 1
		}
	}
	return points, best, nil
}

// DefaultEpsGrid returns the ε grid used by the experiments:
// 0, 1/8, …, ½, ¾, 1.
func DefaultEpsGrid() []float64 {
	return []float64{0, 0.125, 0.25, 0.375, 0.5, 0.75, 1}
}
