package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"ftbfs/internal/graph"
)

// The version-3 binary record ("slab" format) stores a structure as flat
// little-endian arrays in exactly the layout the serving plane consumes, so
// loading is a one-shot read plus bounds validation instead of line parsing,
// endpoint re-binding and BFS recomputation. One record holds everything a
// query plan needs, ready to use:
//
//	header   64 bytes, fixed (see slabHeader)
//	edges      bitset of E(H) edge ids               ⌈m/64⌉ × u64
//	reinforced bitset of E' ⊆ E(H)    (edge model)   ⌈m/64⌉ × u64
//	treeEdges  bitset of T0's edges   (edge model)   ⌈m/64⌉ × u64
//	intact     dist(s,·) in intact H                 n × i32
//	rowStart   H's own CSR row offsets               (n+1) × i32
//	arcs       H's packed CSR arcs (to, edge id)     arcCount × 2 × i32
//	parent     canonical BFS-tree parent in H        n × i32
//	parentEdge edge id of {parent[v], v}             n × i32
//	order      reachable vertices in BFS order       reachable × i32
//
// Every section starts 8-byte aligned (odd-count i32 sections are padded
// with zero bytes), so on little-endian hosts the integer sections are
// reinterpreted in place — the decoded record's arrays alias the input
// buffer, no per-element parsing at all; other hosts fall back to explicit
// little-endian reads. The payload is integrity-checked by length and a
// CRC-32C digest in the header, and every array is bounds-validated
// against the base graph before anything downstream touches it — a corrupt
// or adversarial record fails decoding, it cannot panic a query. Text v1/v2
// records are unaffected: the magic ("FTB3"/"FTB4") is disjoint from the
// text header prefix, and loaders sniff the first bytes to pick the decoder.
//
// The version-4 record is version 3 with the reserved header word carrying
// the generation of the base graph the structure was built from ("live
// graphs": every structure knows which generation it serves). A structure
// built from generation 0 still encodes as a byte-identical version-3
// record, and a version-3 record loads as generation 0 — so stores and
// handoff peers that predate generations interoperate unchanged, and
// records exported for them round-trip byte-for-byte.

// slabMagic is the first four bytes of a version-3 binary record
// (generation 0); slabMagicV4 marks a version-4 record (generation > 0).
var (
	slabMagic   = [4]byte{'F', 'T', 'B', '3'}
	slabMagicV4 = [4]byte{'F', 'T', 'B', '4'}
)

// SlabModel says which failure model a slab record stores.
type SlabModel uint32

const (
	// SlabEdge is an edge-failure (b, r) structure (text version 1).
	SlabEdge SlabModel = 0
	// SlabVertex is a vertex-failure structure (text version 2).
	SlabVertex SlabModel = 1
)

// slabHeaderSize is the fixed header length in bytes.
const slabHeaderSize = 64

// slab header field offsets.
const (
	slabOffMagic      = 0  // [4]byte
	slabOffModel      = 4  // u32
	slabOffN          = 8  // u32
	slabOffM          = 12 // u32
	slabOffSource     = 16 // u32
	slabOffAlg        = 20 // u32
	slabOffEps        = 24 // u64 (float64 bits)
	slabOffPairs      = 32 // u32
	slabOffReachable  = 36 // u32
	slabOffArcs       = 40 // u32 (directed arc count)
	slabOffGen        = 44 // u32; base-graph generation in v4, zero (reserved) in v3
	slabOffPayloadLen = 48 // u64
	slabOffChecksum   = 56 // u64 (CRC-32C of header[0:56] + payload)
)

// IsSlabRecord reports whether the byte prefix starts a version-3 or -4
// binary record; loaders use it to sniff binary vs text before dispatching.
func IsSlabRecord(prefix []byte) bool {
	if len(prefix) < len(slabMagic) {
		return false
	}
	magic := [4]byte(prefix[:4])
	return magic == slabMagic || magic == slabMagicV4
}

// slabGenOf reads the record's base-graph generation: the reserved word of a
// v3 record is zero by construction, so one read serves both versions.
func slabGenOf(data []byte) uint64 {
	return uint64(binary.LittleEndian.Uint32(data[slabOffGen:]))
}

// SlabModelOf peeks the failure model of a version-3 record from its header
// without decoding or checksumming the payload; ok is false when the bytes
// are not a plausible slab record. Handoff installers use it to cross-check
// a shipped record against the registry key it is meant for before paying
// the full decode — a mis-addressed record fails with a model mismatch
// instead of a confusing deep validation error.
func SlabModelOf(data []byte) (SlabModel, bool) {
	if len(data) < slabHeaderSize || !IsSlabRecord(data) {
		return 0, false
	}
	m := SlabModel(binary.LittleEndian.Uint32(data[slabOffModel:]))
	if m != SlabEdge && m != SlabVertex {
		return 0, false
	}
	return m, true
}

// SlabRecord is the in-memory form of a version-3 record: the structure's
// metadata and edge sets plus the precomputed serving arrays (H's CSR, the
// intact distance vector, H's canonical BFS tree). Encoding captures them
// from a built plan; decoding hands them back validated, so the caller can
// assemble a query plan without running a single search.
type SlabRecord struct {
	Model SlabModel
	S     int
	Eps   float64   // edge model only
	Alg   Algorithm // edge model only
	Pairs int       // vertex model only
	Gen   uint64    // base-graph generation; 0 encodes as a v3 record

	Edges      *graph.EdgeSet
	Reinforced *graph.EdgeSet // edge model only
	TreeEdges  *graph.EdgeSet // edge model only; T0 over the base graph

	Intact     []int32
	RowStart   []int32
	Arcs       []graph.Arc
	Parent     []int32
	ParentEdge []graph.EdgeID
	Order      []int32
}

// slabI32Bytes returns the padded byte length of an i32 section.
func slabI32Bytes(count int) int { return (count*4 + 7) &^ 7 }

// slabPayloadLen computes the exact payload length for the given shape.
func slabPayloadLen(model SlabModel, n, m, arcCount, reachable int) int {
	words := (m + 63) / 64
	bitsets := 1
	if model == SlabEdge {
		bitsets = 3
	}
	return bitsets*words*8 +
		slabI32Bytes(n) + // intact
		slabI32Bytes(n+1) + // rowStart
		arcCount*8 + // arcs: two i32 each, always 8-aligned
		slabI32Bytes(n) + // parent
		slabI32Bytes(n) + // parentEdge
		slabI32Bytes(reachable) // order
}

// slabWriter appends aligned little-endian sections to a preallocated buffer.
type slabWriter struct{ buf []byte }

func (w *slabWriter) words(ws []uint64) {
	for _, x := range ws {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, x)
	}
}

func (w *slabWriter) i32s(xs []int32) {
	for _, x := range xs {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(x))
	}
	if len(xs)&1 == 1 {
		w.buf = append(w.buf, 0, 0, 0, 0)
	}
}

// EncodeSlabBytes serialises rec (validated against its base graph g) as a
// version-3 binary record and returns the full record bytes.
func EncodeSlabBytes(g *graph.Graph, rec *SlabRecord) ([]byte, error) {
	n, m := g.N(), g.M()
	if rec.S < 0 || rec.S >= n {
		return nil, fmt.Errorf("core: slab encode: source %d out of range [0,%d)", rec.S, n)
	}
	if rec.Model != SlabEdge && rec.Model != SlabVertex {
		return nil, fmt.Errorf("core: slab encode: unknown model %d", rec.Model)
	}
	if rec.Model == SlabEdge && (rec.Alg < Auto || rec.Alg > Greedy) {
		return nil, fmt.Errorf("core: slab encode: unknown algorithm %d", rec.Alg)
	}
	if rec.Gen > math.MaxUint32 {
		return nil, fmt.Errorf("core: slab encode: generation %d exceeds the header's u32 slot", rec.Gen)
	}
	if len(rec.Intact) != n || len(rec.Parent) != n || len(rec.ParentEdge) != n || len(rec.RowStart) != n+1 {
		return nil, fmt.Errorf("core: slab encode: array lengths do not match n=%d", n)
	}
	arcCount, reachable := len(rec.Arcs), len(rec.Order)
	payloadLen := slabPayloadLen(rec.Model, n, m, arcCount, reachable)

	out := make([]byte, slabHeaderSize, slabHeaderSize+payloadLen)
	// Generation 0 stays a byte-identical version-3 record (magic FTB3,
	// reserved word zero), so pre-generation peers and old files interop
	// without translation; only a live generation needs the v4 magic.
	if rec.Gen > 0 {
		copy(out[slabOffMagic:], slabMagicV4[:])
		binary.LittleEndian.PutUint32(out[slabOffGen:], uint32(rec.Gen))
	} else {
		copy(out[slabOffMagic:], slabMagic[:])
	}
	le := binary.LittleEndian
	le.PutUint32(out[slabOffModel:], uint32(rec.Model))
	le.PutUint32(out[slabOffN:], uint32(n))
	le.PutUint32(out[slabOffM:], uint32(m))
	le.PutUint32(out[slabOffSource:], uint32(rec.S))
	le.PutUint32(out[slabOffAlg:], uint32(rec.Alg))
	le.PutUint64(out[slabOffEps:], math.Float64bits(rec.Eps))
	le.PutUint32(out[slabOffPairs:], uint32(rec.Pairs))
	le.PutUint32(out[slabOffReachable:], uint32(reachable))
	le.PutUint32(out[slabOffArcs:], uint32(arcCount))
	le.PutUint64(out[slabOffPayloadLen:], uint64(payloadLen))

	w := &slabWriter{buf: out}
	w.words(rec.Edges.Words())
	if rec.Model == SlabEdge {
		w.words(rec.Reinforced.Words())
		w.words(rec.TreeEdges.Words())
	}
	w.i32s(rec.Intact)
	w.i32s(rec.RowStart)
	for _, a := range rec.Arcs {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(a.To))
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(a.ID))
	}
	w.i32s(rec.Parent)
	i32sFromEdgeIDs := make([]int32, len(rec.ParentEdge))
	for i, id := range rec.ParentEdge {
		i32sFromEdgeIDs[i] = int32(id)
	}
	w.i32s(i32sFromEdgeIDs)
	w.i32s(rec.Order)
	out = w.buf
	if got := len(out) - slabHeaderSize; got != payloadLen {
		return nil, fmt.Errorf("core: slab encode: payload %d bytes, want %d", got, payloadLen)
	}

	le.PutUint64(out[slabOffChecksum:], slabChecksum(out))
	return out, nil
}

// slabCRC is the CRC-32C (Castagnoli) table; hardware-accelerated on the
// platforms the serving plane runs on, so integrity checking stays far off
// the load-path critical time.
var slabCRC = crc32.MakeTable(crc32.Castagnoli)

// slabChecksum digests a whole record — header (minus the checksum field
// itself) plus payload — into the header's u64 checksum slot.
func slabChecksum(rec []byte) uint64 {
	c := crc32.Update(0, slabCRC, rec[:slabOffChecksum])
	return uint64(crc32.Update(c, slabCRC, rec[slabHeaderSize:]))
}

// EncodeSlab writes rec as a version-3 binary record.
func EncodeSlab(w io.Writer, g *graph.Graph, rec *SlabRecord) error {
	buf, err := EncodeSlabBytes(g, rec)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// CheckSlab verifies a binary record's self-contained integrity — magic,
// model, exact payload length and checksum — without a base graph. Warm-start
// scans use it to detect truncated or corrupt record files cheaply; a record
// passing CheckSlab can still fail DecodeSlab's graph-dependent validation.
func CheckSlab(data []byte) error {
	if !IsSlabRecord(data) {
		return fmt.Errorf("core: not a binary structure record")
	}
	if len(data) < slabHeaderSize {
		return fmt.Errorf("core: binary record shorter than its header")
	}
	le := binary.LittleEndian
	model := SlabModel(le.Uint32(data[slabOffModel:]))
	n := int(le.Uint32(data[slabOffN:]))
	m := int(le.Uint32(data[slabOffM:]))
	reachable := int(le.Uint32(data[slabOffReachable:]))
	arcCount := int(le.Uint32(data[slabOffArcs:]))
	payloadLen := le.Uint64(data[slabOffPayloadLen:])
	if model != SlabEdge && model != SlabVertex {
		return fmt.Errorf("core: binary record has unknown model %d", model)
	}
	if err := checkSlabGen(data); err != nil {
		return err
	}
	if reachable > n || arcCount > 2*m {
		return fmt.Errorf("core: binary record header is inconsistent")
	}
	if want := slabPayloadLen(model, n, m, arcCount, reachable); payloadLen != uint64(want) {
		return fmt.Errorf("core: binary record payload %d bytes, want %d", payloadLen, want)
	}
	if uint64(len(data)-slabHeaderSize) != payloadLen {
		return fmt.Errorf("core: binary record truncated: %d payload bytes of %d", len(data)-slabHeaderSize, payloadLen)
	}
	if slabChecksum(data) != le.Uint64(data[slabOffChecksum:]) {
		return fmt.Errorf("core: binary record checksum mismatch")
	}
	return nil
}

// checkSlabGen enforces the version/generation pairing: a v3 record's
// reserved word must be zero (it always was), and a v4 record must carry a
// live generation — a zero-generation v4 record would be a v3 record that
// lies about its version, so it is rejected rather than normalised.
func checkSlabGen(data []byte) error {
	gen := slabGenOf(data)
	if [4]byte(data[:4]) == slabMagicV4 {
		if gen == 0 {
			return fmt.Errorf("core: version-4 record claims generation 0 (must encode as version 3)")
		}
		return nil
	}
	if gen != 0 {
		return fmt.Errorf("core: version-3 record has nonzero reserved word")
	}
	return nil
}

// nativeLE reports whether this host is little-endian — the on-disk layout
// matches memory layout, so integer sections can be served straight from the
// record buffer instead of element-by-element decoding.
var nativeLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// slabReader walks the payload's aligned sections with bounds checks.
type slabReader struct {
	buf []byte
	off int
}

// section bounds-checks and consumes `need` bytes, returning the section's
// start and whether an in-place view with the given alignment is allowed
// (little-endian host, aligned base — true in practice, since every section
// starts 8-aligned in a heap-allocated buffer).
func (r *slabReader) section(need, align int) ([]byte, bool, error) {
	if need < 0 || r.off+need > len(r.buf) {
		return nil, false, fmt.Errorf("core: slab record truncated at offset %d", r.off)
	}
	sec := r.buf[r.off:]
	r.off += need
	if need == 0 {
		return nil, false, nil
	}
	return sec, nativeLE && uintptr(unsafe.Pointer(&sec[0]))%uintptr(align) == 0, nil
}

func (r *slabReader) words(count int) ([]uint64, error) {
	sec, inPlace, err := r.section(count*8, 8)
	if err != nil || count == 0 {
		return nil, err
	}
	if inPlace {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&sec[0])), count), nil
	}
	out := make([]uint64, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(sec[i*8:])
	}
	return out, nil
}

func (r *slabReader) i32s(count int) ([]int32, error) {
	sec, inPlace, err := r.section(slabI32Bytes(count), 4)
	if err != nil || count == 0 {
		return nil, err
	}
	if inPlace {
		return unsafe.Slice((*int32)(unsafe.Pointer(&sec[0])), count), nil
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(sec[i*4:]))
	}
	return out, nil
}

// edgeIDs reads an i32 section as edge ids (EdgeID is an int32).
func (r *slabReader) edgeIDs(count int) ([]graph.EdgeID, error) {
	sec, inPlace, err := r.section(slabI32Bytes(count), 4)
	if err != nil || count == 0 {
		return nil, err
	}
	if inPlace {
		return unsafe.Slice((*graph.EdgeID)(unsafe.Pointer(&sec[0])), count), nil
	}
	out := make([]graph.EdgeID, count)
	for i := range out {
		out[i] = graph.EdgeID(int32(binary.LittleEndian.Uint32(sec[i*4:])))
	}
	return out, nil
}

// The in-place Arc view relies on Arc being exactly its two packed int32s.
var _ = [1]byte{}[unsafe.Sizeof(graph.Arc{})-8]

// arcs reads a packed (to, edge id) pair section as CSR arcs; the Arc struct
// is exactly two int32s, so the pairs are an Arc array already.
func (r *slabReader) arcs(count int) ([]graph.Arc, error) {
	sec, inPlace, err := r.section(count*8, 8)
	if err != nil || count == 0 {
		return nil, err
	}
	if inPlace {
		return unsafe.Slice((*graph.Arc)(unsafe.Pointer(&sec[0])), count), nil
	}
	out := make([]graph.Arc, count)
	for i := range out {
		out[i] = graph.Arc{
			To: int32(binary.LittleEndian.Uint32(sec[i*8:])),
			ID: graph.EdgeID(int32(binary.LittleEndian.Uint32(sec[i*8+4:]))),
		}
	}
	return out, nil
}

// DecodeSlab parses a version-3 binary record against its base graph g,
// validating shape, integrity and every cross-reference (arc ids against
// E(H), parent edges against the base graph's endpoints, BFS-order
// consistency of the tree arrays) so the returned record is safe to serve
// from directly. On little-endian hosts the record's integer sections are
// in-place views of data — the caller must not modify the buffer after a
// successful decode (loaders read a record file once and hand the bytes
// over, which is the point: load cost is validation, not parsing).
func DecodeSlab(data []byte, g *graph.Graph) (*SlabRecord, error) {
	if !IsSlabRecord(data) {
		return nil, fmt.Errorf("core: not a binary structure record")
	}
	if len(data) < slabHeaderSize {
		return nil, fmt.Errorf("core: binary record shorter than its header")
	}
	le := binary.LittleEndian
	model := SlabModel(le.Uint32(data[slabOffModel:]))
	n := int(le.Uint32(data[slabOffN:]))
	m := int(le.Uint32(data[slabOffM:]))
	source := int(le.Uint32(data[slabOffSource:]))
	alg := Algorithm(le.Uint32(data[slabOffAlg:]))
	eps := math.Float64frombits(le.Uint64(data[slabOffEps:]))
	pairs := int(le.Uint32(data[slabOffPairs:]))
	reachable := int(le.Uint32(data[slabOffReachable:]))
	arcCount := int(le.Uint32(data[slabOffArcs:]))
	payloadLen := le.Uint64(data[slabOffPayloadLen:])
	checksum := le.Uint64(data[slabOffChecksum:])

	if model != SlabEdge && model != SlabVertex {
		return nil, fmt.Errorf("core: binary record has unknown model %d", model)
	}
	if err := checkSlabGen(data); err != nil {
		return nil, err
	}
	gen := slabGenOf(data)
	if gen != g.Generation() {
		return nil, fmt.Errorf("core: binary record is for generation %d, base graph is generation %d", gen, g.Generation())
	}
	if n != g.N() || m != g.M() {
		return nil, fmt.Errorf("core: binary record is for a %d-vertex %d-edge graph, base graph has n=%d m=%d",
			n, m, g.N(), g.M())
	}
	if source < 0 || source >= n {
		return nil, fmt.Errorf("core: binary record source %d out of range [0,%d)", source, n)
	}
	if model == SlabEdge {
		if alg < Auto || alg > Greedy {
			return nil, fmt.Errorf("core: binary record has unknown algorithm %d", alg)
		}
		if math.IsNaN(eps) || math.IsInf(eps, 0) || eps < 0 {
			return nil, fmt.Errorf("core: binary record has bad eps %v", eps)
		}
	}
	if pairs < 0 {
		return nil, fmt.Errorf("core: binary record has negative pairs")
	}
	if reachable < 0 || reachable > n {
		return nil, fmt.Errorf("core: binary record claims %d reachable of %d vertices", reachable, n)
	}
	if arcCount < 0 || arcCount > 2*m {
		return nil, fmt.Errorf("core: binary record claims %d arcs for %d edges", arcCount, m)
	}
	if want := slabPayloadLen(model, n, m, arcCount, reachable); payloadLen != uint64(want) {
		return nil, fmt.Errorf("core: binary record payload %d bytes, want %d", payloadLen, want)
	}
	if uint64(len(data)-slabHeaderSize) != payloadLen {
		return nil, fmt.Errorf("core: binary record truncated: %d payload bytes of %d", len(data)-slabHeaderSize, payloadLen)
	}
	if slabChecksum(data) != checksum {
		return nil, fmt.Errorf("core: binary record checksum mismatch")
	}

	r := &slabReader{buf: data[slabHeaderSize:]}
	words := (m + 63) / 64
	rec := &SlabRecord{Model: model, S: source, Eps: eps, Alg: alg, Pairs: pairs, Gen: gen}
	var err error
	readSet := func() (*graph.EdgeSet, error) {
		ws, err := r.words(words)
		if err != nil {
			return nil, err
		}
		return graph.NewEdgeSetFromWords(m, ws)
	}
	if rec.Edges, err = readSet(); err != nil {
		return nil, err
	}
	if model == SlabEdge {
		if rec.Reinforced, err = readSet(); err != nil {
			return nil, err
		}
		if rec.TreeEdges, err = readSet(); err != nil {
			return nil, err
		}
	}
	if rec.Intact, err = r.i32s(n); err != nil {
		return nil, err
	}
	if rec.RowStart, err = r.i32s(n + 1); err != nil {
		return nil, err
	}
	if rec.Arcs, err = r.arcs(arcCount); err != nil {
		return nil, err
	}
	if rec.Parent, err = r.i32s(n); err != nil {
		return nil, err
	}
	if rec.ParentEdge, err = r.edgeIDs(n); err != nil {
		return nil, err
	}
	if rec.Order, err = r.i32s(reachable); err != nil {
		return nil, err
	}
	if err := validateSlab(rec, g); err != nil {
		return nil, err
	}
	return rec, nil
}

// validateSlab cross-checks the decoded arrays against each other and the
// base graph: it guarantees the CSR, tree arrays and BFS order are mutually
// consistent, which is what lets plan assembly and tree.BuildAncestry run on
// them without re-deriving anything.
func validateSlab(rec *SlabRecord, g *graph.Graph) error {
	n, m := g.N(), g.M()
	if rec.Model == SlabEdge {
		sub := rec.Reinforced.Minus(rec.Edges)
		if sub.Len() != 0 {
			return fmt.Errorf("core: binary record: %d reinforced edges outside E(H)", sub.Len())
		}
	}
	// H's CSR: shape-validated by NewCSR below; here bind each arc to E(H).
	for i, a := range rec.Arcs {
		if a.To < 0 || int(a.To) >= n || a.ID < 0 || int(a.ID) >= m {
			return fmt.Errorf("core: binary record: arc %d out of range", i)
		}
		if !rec.Edges.Contains(a.ID) {
			return fmt.Errorf("core: binary record: arc %d uses edge %d outside E(H)", i, a.ID)
		}
	}
	// Tree arrays: parents and parent edges must name real H edges with
	// consistent BFS depths.
	for v := 0; v < n; v++ {
		p, id, d := rec.Parent[v], rec.ParentEdge[v], rec.Intact[v]
		if d < -1 || d > int32(n) {
			return fmt.Errorf("core: binary record: intact dist of %d is %d", v, d)
		}
		if p < 0 {
			if p != -1 || id != graph.NoEdge {
				return fmt.Errorf("core: binary record: vertex %d has no parent but parent edge %d", v, id)
			}
			continue
		}
		if int(p) >= n || id < 0 || int(id) >= m {
			return fmt.Errorf("core: binary record: parent link of %d out of range", v)
		}
		e := g.EdgeByID(id)
		if !(e.U == int32(v) && e.V == p || e.U == p && e.V == int32(v)) {
			return fmt.Errorf("core: binary record: parent edge %d does not join %d and %d", id, v, p)
		}
		if !rec.Edges.Contains(id) {
			return fmt.Errorf("core: binary record: parent edge %d of %d outside E(H)", id, v)
		}
		if rec.Intact[p] < 0 || d != rec.Intact[p]+1 {
			return fmt.Errorf("core: binary record: vertex %d at depth %d under parent at depth %d", v, d, rec.Intact[p])
		}
	}
	// BFS order: the source first, each vertex exactly once, reachable set
	// matched exactly, depths nondecreasing (so parents precede children and
	// a bottom-up pass over the order is safe).
	seen := make([]bool, n)
	reach := 0
	for _, d := range rec.Intact {
		if d >= 0 {
			reach++
		}
	}
	if reach != len(rec.Order) {
		return fmt.Errorf("core: binary record: %d vertices in BFS order, %d have finite distance", len(rec.Order), reach)
	}
	prev := int32(0)
	for i, v := range rec.Order {
		if v < 0 || int(v) >= n || seen[v] {
			return fmt.Errorf("core: binary record: BFS order entry %d invalid", i)
		}
		seen[v] = true
		d := rec.Intact[v]
		if d < 0 || d < prev {
			return fmt.Errorf("core: binary record: BFS order not sorted by distance at entry %d", i)
		}
		prev = d
		if i == 0 && (int(v) != rec.S || d != 0) {
			return fmt.Errorf("core: binary record: BFS order does not start at the source")
		}
	}
	return nil
}
