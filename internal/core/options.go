package core

import "fmt"

// Algorithm selects the construction Build runs.
type Algorithm int

const (
	// Auto dispatches per Theorem 3.1: ε = 0 → Tree, ε ≥ ½ → Baseline,
	// otherwise Epsilon.
	Auto Algorithm = iota
	// Tree keeps only the BFS tree and reinforces its unprotected edges —
	// the ε = 0 extreme (≤ n−1 reinforced edges, no backup redundancy).
	Tree
	// Baseline is the classical FT-BFS construction of [14]: the last edges
	// of every new-ending replacement path, O(n^{3/2}) edges, no
	// reinforcement needed.
	Baseline
	// Epsilon is the paper's three-phase (b, r) construction for
	// ε ∈ (0, ½).
	Epsilon
	// Greedy is the heuristic comparator discussed in the paper's
	// discussion section: reinforce the costliest tree edges first.
	Greedy
)

// ParseAlgorithm is the inverse of Algorithm.String; the empty string means
// Auto.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "", "auto":
		return Auto, nil
	case "tree":
		return Tree, nil
	case "baseline":
		return Baseline, nil
	case "epsilon":
		return Epsilon, nil
	case "greedy":
		return Greedy, nil
	}
	return Auto, fmt.Errorf("core: unknown algorithm %q", s)
}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case Tree:
		return "tree"
	case Baseline:
		return "baseline"
	case Epsilon:
		return "epsilon"
	case Greedy:
		return "greedy"
	}
	return "unknown"
}

// Options tunes Build. The zero value is a sensible default.
type Options struct {
	Algorithm Algorithm

	// GreedyBudget caps the number of reinforced edges for the Greedy
	// algorithm; 0 means ⌈n^{1−ε}⌉.
	GreedyBudget int

	// SkipPhase1 / SkipPhase2 ablate the corresponding phase of the
	// Epsilon algorithm (experiment E9). The result is still a valid
	// structure — skipped protection shows up as extra reinforced edges.
	SkipPhase1 bool
	SkipPhase2 bool

	// Workers parallelises the final reinforcement sweep (the dominant
	// O(n·m) pass): 0/1 = sequential, negative = GOMAXPROCS, otherwise the
	// given worker count. The result is identical either way.
	Workers int

	// Workspace, when non-nil, supplies the scratch buffers of the Epsilon
	// hot paths so repeated builds recycle them instead of reallocating
	// (see NewWorkspace). Builds sharing a workspace must not run
	// concurrently; the result is identical with or without one.
	Workspace *Workspace
}
