package core

import (
	"testing"

	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

// Direct unit tests of the Phase S2 covering logic.

func TestPhase2GlueEdgesCovered(t *testing.T) {
	// After running S2 alone (sets empty) every pair protecting a glue edge
	// must have its last edge in H (Sub-Phase S2.1 / Claim 4.12).
	g := gen.RandomConnected(60, 100, 13)
	en := replacement.NewEngine(g, 0)
	pairs := en.AllPairs()
	ix := buildPairIndex(en, pairs)
	h := en.TreeEdges.Clone()
	runPhase2(ix, h, nil, 2)
	glue := map[graph.EdgeID]bool{}
	for _, e := range en.T.GlueEdges {
		glue[e] = true
	}
	for _, p := range pairs {
		if glue[p.Edge] && !h.Contains(p.LastID) {
			t.Fatalf("glue-edge pair ⟨%d,%v⟩ left uncovered", p.V, g.EdgeByID(p.Edge))
		}
	}
}

func TestPhase2LightSegmentsFullyCovered(t *testing.T) {
	// With a huge threshold every subsegment is light, so S2 must cover
	// every pair of the given (∼)-set.
	g := gen.LowerBoundParams(2, 5, 6).G
	en := replacement.NewEngine(g, 0)
	pairs := en.AllPairs()
	ix := buildPairIndex(en, pairs)
	h := en.TreeEdges.Clone()
	all := make([]int32, len(pairs))
	for i := range all {
		all[i] = int32(i)
	}
	runPhase2(ix, h, [][]int32{all}, 1<<20)
	for i, p := range pairs {
		if !h.Contains(p.LastID) {
			t.Fatalf("pair %d ⟨%d,%v⟩ uncovered despite infinite threshold", i, p.V, g.EdgeByID(p.Edge))
		}
	}
}

func TestPhase2UpmostPairsAlwaysAdded(t *testing.T) {
	// Even with threshold 1 (every populated segment heavy unless it has a
	// single distinct last edge), the upmost pair of each segment is added:
	// for every terminal with pairs, at least one last edge appears.
	g := gen.LowerBoundParams(3, 4, 8).G
	en := replacement.NewEngine(g, 0)
	pairs := en.AllPairs()
	ix := buildPairIndex(en, pairs)
	h := en.TreeEdges.Clone()
	before := h.Len()
	all := make([]int32, len(pairs))
	for i := range all {
		all[i] = int32(i)
	}
	glueAdded, added := runPhase2(ix, h, [][]int32{all}, 1)
	if h.Len() == before {
		t.Fatal("S2 added nothing")
	}
	if glueAdded+added != h.Len()-before {
		t.Fatalf("accounting wrong: %d+%d vs %d", glueAdded, added, h.Len()-before)
	}
	// every terminal with at least one pair got at least one covered pair
	// (its upmost segment representative)
	covered := map[int32]bool{}
	hasPairs := map[int32]bool{}
	for _, p := range pairs {
		hasPairs[p.V] = true
		if h.Contains(p.LastID) {
			covered[p.V] = true
		}
	}
	for v := range hasPairs {
		if !covered[v] {
			t.Fatalf("terminal %d has pairs but no covered pair after S2", v)
		}
	}
}

func TestPhase1BudgetRespected(t *testing.T) {
	// Each S1 iteration adds at most threshold new last edges per terminal
	// per type; with K=1 and threshold=1, the number of added edges is at
	// most 2 × #terminals.
	g := gen.LowerBoundParams(3, 5, 10).G
	en := replacement.NewEngine(g, 0)
	pairs := en.AllPairs()
	ix := buildPairIndex(en, pairs)
	i1, _ := ix.splitI1I2()
	h := en.TreeEdges.Clone()
	res := runPhase1(ix, h, i1, 1, 1)
	terminals := map[int32]bool{}
	for _, p := range i1 {
		terminals[ix.pairs[p].V] = true
	}
	if res.Added > 2*len(terminals) {
		t.Fatalf("S1 added %d edges for %d terminals with budget 1", res.Added, len(terminals))
	}
	if len(res.ACounts) != 1 {
		t.Fatalf("expected exactly one iteration, got %d", len(res.ACounts))
	}
	// leftovers are exactly the A/B pairs whose last edge is missing
	for _, p := range res.Leftover {
		if h.Contains(ix.lastEdgeOf(p)) {
			t.Fatal("leftover pair already covered")
		}
	}
}

func TestEdgeIndexOfConsistency(t *testing.T) {
	g := gen.RandomConnected(40, 60, 21)
	en := replacement.NewEngine(g, 0)
	pairs := en.AllPairs()
	ix := buildPairIndex(en, pairs)
	for i, p := range pairs {
		idx := edgeIndexOf(ix, int32(i))
		if idx < 0 || int32(idx) >= en.T.Depth[p.V] {
			t.Fatalf("edge index %d outside [0, depth(v)=%d)", idx, en.T.Depth[p.V])
		}
		// the edge at index idx on π(s,v) is p.Edge
		pi := en.BT.PathTo(int(p.V))
		if g.EdgeIDOf(int(pi[idx]), int(pi[idx+1])) != p.Edge {
			t.Fatal("edge index does not address the failing edge")
		}
	}
}
