package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

// LastUnprotectedParallel is LastUnprotected with the per-failure sweeps
// distributed over workers goroutines (≤ 0 = GOMAXPROCS). The result is
// identical to the sequential computation.
func LastUnprotectedParallel(en *replacement.Engine, H *graph.EdgeSet, workers int) *graph.EdgeSet {
	out := graph.NewEdgeSet(en.G.M())
	var mu sync.Mutex
	// SubtreeOf walks shared tree structures read-only; each worker keeps
	// its own scratch slice.
	type local struct{ subtree []int32 }
	pool := sync.Pool{New: func() any { return &local{} }}
	en.ForEachFailureParallel(workers, func(e graph.EdgeID, child int32, distE []int32) {
		l := pool.Get().(*local)
		l.subtree = en.SubtreeOf(child, l.subtree[:0])
		for _, v := range l.subtree {
			if !lastProtectedFor(en, H, v, e, distE) {
				mu.Lock()
				out.Add(e)
				mu.Unlock()
				break
			}
		}
		pool.Put(l)
	})
	return out
}

// VerifyParallel is Verify with the failure checks parallelised. limit ≤ 0
// checks everything. With a positive limit the returned slice is clamped to
// at most limit violations and the result is deterministic — identical to
// Verify(st, limit) regardless of worker count or scheduling: violations are
// collected per failure (in increasing failure-edge-id order, vertices
// ascending within a failure) and workers stop early only once a fully
// processed prefix of the failure list already holds limit violations, so
// the clamp always keeps the canonical first ones.
func VerifyParallel(st *Structure, limit, workers int) []Violation {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := st.G
	failures := st.TreeEdges.Minus(st.Reinforced).IDs()
	perFailure := make([][]Violation, len(failures))
	done := make([]atomic.Bool, len(failures))
	var (
		mu         sync.Mutex
		watermark  int // failures[:watermark] fully processed
		prefixViol int // violations found within the watermark prefix
		stop       atomic.Bool
		next       atomic.Int64
		wg         sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scG := bfs.NewScratch(g.N())
			scH := bfs.NewScratch(g.N())
			distG := make([]int32, g.N())
			distH := make([]int32, g.N())
			for {
				i := int(next.Add(1) - 1)
				if i >= len(failures) || stop.Load() {
					return
				}
				e := failures[i]
				scG.DistancesAvoiding(g, st.S, bfs.Restriction{BannedEdge: e}, distG)
				scH.DistancesAvoiding(g, st.S, bfs.Restriction{BannedEdge: e, AllowedEdges: st.Edges}, distH)
				var viol []Violation
				for v := int32(0); v < int32(g.N()); v++ {
					if distG[v] == bfs.Unreachable {
						continue
					}
					if distH[v] == bfs.Unreachable || distH[v] > distG[v] {
						viol = append(viol, Violation{Edge: e, Vertex: v, InH: distH[v], InG: distG[v]})
					}
				}
				perFailure[i] = viol
				done[i].Store(true)
				if limit > 0 {
					mu.Lock()
					for watermark < len(failures) && done[watermark].Load() {
						prefixViol += len(perFailure[watermark])
						watermark++
					}
					if prefixViol >= limit {
						stop.Store(true)
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	var out []Violation
	for _, viol := range perFailure {
		out = append(out, viol...)
		if limit > 0 && len(out) >= limit {
			out = out[:limit]
			break
		}
	}
	return out
}
