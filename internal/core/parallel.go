package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

// LastUnprotectedParallel is LastUnprotected with the per-failure sweeps
// distributed over workers goroutines (≤ 0 = GOMAXPROCS). The result is
// identical to the sequential computation.
func LastUnprotectedParallel(en *replacement.Engine, H *graph.EdgeSet, workers int) *graph.EdgeSet {
	out := graph.NewEdgeSet(en.G.M())
	var mu sync.Mutex
	// SubtreeOf walks shared tree structures read-only; each worker keeps
	// its own scratch slice.
	type local struct{ subtree []int32 }
	pool := sync.Pool{New: func() any { return &local{} }}
	en.ForEachFailureParallel(workers, func(e graph.EdgeID, child int32, distE []int32) {
		l := pool.Get().(*local)
		l.subtree = en.SubtreeOf(child, l.subtree[:0])
		for _, v := range l.subtree {
			if !lastProtectedFor(en, H, v, e, distE) {
				mu.Lock()
				out.Add(e)
				mu.Unlock()
				break
			}
		}
		pool.Put(l)
	})
	return out
}

// VerifyParallel is Verify with the failure checks parallelised. limit ≤ 0
// checks everything; with a positive limit it may return slightly more than
// limit violations (workers race to append) but never fewer when violations
// exist. Violations are returned in unspecified order.
func VerifyParallel(st *Structure, limit, workers int) []Violation {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := st.G
	failures := st.TreeEdges.Minus(st.Reinforced).IDs()
	var out []Violation
	var mu sync.Mutex
	var stop atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scG := bfs.NewScratch(g.N())
			scH := bfs.NewScratch(g.N())
			distG := make([]int32, g.N())
			distH := make([]int32, g.N())
			for {
				i := next.Add(1) - 1
				if int(i) >= len(failures) || stop.Load() {
					return
				}
				e := failures[i]
				scG.DistancesAvoiding(g, st.S, bfs.Restriction{BannedEdge: e}, distG)
				scH.DistancesAvoiding(g, st.S, bfs.Restriction{BannedEdge: e, AllowedEdges: st.Edges}, distH)
				for v := int32(0); v < int32(g.N()); v++ {
					if distG[v] == bfs.Unreachable {
						continue
					}
					if distH[v] == bfs.Unreachable || distH[v] > distG[v] {
						mu.Lock()
						out = append(out, Violation{Edge: e, Vertex: v, InH: distH[v], InG: distG[v]})
						full := limit > 0 && len(out) >= limit
						mu.Unlock()
						if full {
							stop.Store(true)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	return out
}
