package core

import (
	"sync"
	"testing"

	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

func TestLastUnprotectedParallelMatchesSerial(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.LowerBoundParams(3, 4, 8).G,
		gen.RandomConnected(80, 120, 3),
		gen.Cycle(50),
	} {
		en := replacement.NewEngine(g, 0)
		h := en.TreeEdges.Clone()
		// a partially protected structure: add a few last edges
		for i, p := range en.AllPairs() {
			if i%3 == 0 {
				h.Add(p.LastID)
			}
		}
		serial := LastUnprotected(en, h).IDs()
		for _, workers := range []int{1, 2, 4, 8} {
			enP := replacement.NewEngine(g, 0) // fresh engine: scratch is not shared
			par := LastUnprotectedParallel(enP, h, workers).IDs()
			if len(par) != len(serial) {
				t.Fatalf("workers=%d: %d vs %d unprotected", workers, len(par), len(serial))
			}
			for i := range par {
				if par[i] != serial[i] {
					t.Fatalf("workers=%d: sets differ at %d", workers, i)
				}
			}
		}
	}
}

func TestVerifyParallelMatchesSerial(t *testing.T) {
	g := gen.RandomConnected(60, 90, 7)
	st := mustBuild(t, g, 0, 0.3, Options{})
	if len(VerifyParallel(st, 0, 4)) != 0 {
		t.Fatal("parallel verifier found violations on a valid structure")
	}
	// a broken structure: both verifiers find the same violation count
	en := replacement.NewEngine(gen.Cycle(20), 0)
	bogus := &Structure{
		G:          en.G,
		S:          0,
		Edges:      en.TreeEdges.Clone(),
		Reinforced: graph.NewEdgeSet(en.G.M()),
		TreeEdges:  en.TreeEdges.Clone(),
	}
	serial := Verify(bogus, 0)
	par := VerifyParallel(bogus, 0, 4)
	if len(serial) != len(par) {
		t.Fatalf("violation counts differ: serial %d, parallel %d", len(serial), len(par))
	}
	if limited := VerifyParallel(bogus, 3, 4); len(limited) != 3 {
		t.Fatalf("limit must be a true cap: got %d violations, want exactly 3", len(limited))
	}
}

func TestVerifyParallelLimitDeterministic(t *testing.T) {
	// With a positive limit the parallel verifier must return exactly the
	// violations the serial one does, in the same order, for any worker
	// count — the early stop may not depend on scheduling.
	en := replacement.NewEngine(gen.RandomConnected(50, 75, 17), 0)
	bogus := &Structure{
		G:          en.G,
		S:          0,
		Edges:      en.TreeEdges.Clone(),
		Reinforced: graph.NewEdgeSet(en.G.M()),
		TreeEdges:  en.TreeEdges.Clone(),
	}
	for _, limit := range []int{1, 2, 5, 20} {
		want := Verify(bogus, limit)
		if len(want) > limit {
			t.Fatalf("serial Verify overflowed its limit: %d > %d", len(want), limit)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			for round := 0; round < 3; round++ {
				got := VerifyParallel(bogus, limit, workers)
				if len(got) != len(want) {
					t.Fatalf("limit=%d workers=%d: %d violations, want %d", limit, workers, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("limit=%d workers=%d: violation %d differs: %v vs %v", limit, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestForEachFailureParallelCoverage(t *testing.T) {
	g := gen.RandomConnected(70, 100, 9)
	en := replacement.NewEngine(g, 0)
	type rec struct {
		child int32
		sum   int64
	}
	want := map[graph.EdgeID]rec{}
	en.ForEachFailure(func(e graph.EdgeID, child int32, distE []int32) {
		var s int64
		for _, d := range distE {
			s += int64(d)
		}
		want[e] = rec{child, s}
	})
	for _, workers := range []int{2, 5} {
		enP := replacement.NewEngine(g, 0)
		var mu sync.Mutex
		got := map[graph.EdgeID]rec{}
		enP.ForEachFailureParallel(workers, func(e graph.EdgeID, child int32, distE []int32) {
			var s int64
			for _, d := range distE {
				s += int64(d)
			}
			mu.Lock()
			got[e] = rec{child, s}
			mu.Unlock()
		})
		if len(got) != len(want) {
			t.Fatalf("workers=%d: visited %d failures want %d", workers, len(got), len(want))
		}
		for e, r := range want {
			if got[e] != r {
				t.Fatalf("workers=%d: failure %d results differ", workers, e)
			}
		}
	}
}

func TestBuildWithWorkersMatchesSequential(t *testing.T) {
	g := gen.RandomConnected(70, 110, 29)
	seq := mustBuild(t, g, 0, 0.3, Options{})
	for _, w := range []int{-1, 2, 6} {
		par := mustBuild(t, g, 0, 0.3, Options{Workers: w})
		a, b := seq.Reinforced.IDs(), par.Reinforced.IDs()
		if len(a) != len(b) {
			t.Fatalf("workers=%d: reinforced %d vs %d", w, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: reinforced sets differ", w)
			}
		}
		if par.Size() != seq.Size() {
			t.Fatalf("workers=%d: sizes differ", w)
		}
	}
}
