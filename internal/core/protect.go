package core

import (
	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

// LastUnprotected computes the set of T0 edges that are last-unprotected in
// the candidate structure H (Section 2 of the paper): edge e is
// v-last-unprotected when no replacement path P_{v,e} has its last edge in
// H, i.e. no H-edge (u,v) with dist(s,u,G\{e})+1 = dist(s,v,G\{e}) exists.
// By Observation 2.2, every last-protected edge is protected, so
// reinforcing exactly this set yields a valid (b,r) FT-BFS structure.
//
// Only T0 edges can ever be unprotected: failing a non-tree edge leaves
// T0 ⊆ H intact and dist(s,v,G\{e}) ≥ dist(s,v,G).
func LastUnprotected(en *replacement.Engine, H *graph.EdgeSet) *graph.EdgeSet {
	out := graph.NewEdgeSet(en.G.M())
	var subtree []int32
	en.ForEachFailure(func(e graph.EdgeID, child int32, distE []int32) {
		subtree = en.SubtreeOf(child, subtree[:0])
		for _, v := range subtree {
			if !lastProtectedFor(en, H, v, e, distE) {
				out.Add(e)
				break
			}
		}
	})
	return out
}

// LastUnprotectedMulti computes LastUnprotected for several candidate
// structures in ONE failure sweep: the per-failure restricted BFS — the
// dominant O(n·m) cost — is shared, and only the O(deg(v)) protection probes
// run once per structure. This is the batch orchestrator's reinforcement
// path: all ε values of one source are swept together. Each returned set is
// identical to LastUnprotected(en, hs[i]).
func LastUnprotectedMulti(en *replacement.Engine, hs []*graph.EdgeSet) []*graph.EdgeSet {
	outs := make([]*graph.EdgeSet, len(hs))
	for i := range outs {
		outs[i] = graph.NewEdgeSet(en.G.M())
	}
	var subtree []int32
	en.ForEachFailure(func(e graph.EdgeID, child int32, distE []int32) {
		subtree = en.SubtreeOf(child, subtree[:0])
		for i, h := range hs {
			for _, v := range subtree {
				if !lastProtectedFor(en, h, v, e, distE) {
					outs[i].Add(e)
					break
				}
			}
		}
	})
	return outs
}

// lastProtectedFor reports whether edge e is v-last-protected in H.
func lastProtectedFor(en *replacement.Engine, H *graph.EdgeSet, v int32, e graph.EdgeID, distE []int32) bool {
	target := distE[v]
	if target == bfs.Unreachable {
		return true // e disconnects v: vacuously protected
	}
	for _, a := range en.G.Neighbors(int(v)) {
		if a.ID == e || !H.Contains(a.ID) {
			continue
		}
		if distE[a.To] != bfs.Unreachable && distE[a.To]+1 == target {
			return true
		}
	}
	return false
}

// UnprotectedReport lists, for diagnostics, each last-unprotected tree edge
// together with one witness terminal whose replacement paths' last edges
// are all missing from H.
type UnprotectedReport struct {
	Edge    graph.EdgeID
	Witness int32
}

// LastUnprotectedReport is LastUnprotected with witnesses.
func LastUnprotectedReport(en *replacement.Engine, H *graph.EdgeSet) []UnprotectedReport {
	var out []UnprotectedReport
	var subtree []int32
	en.ForEachFailure(func(e graph.EdgeID, child int32, distE []int32) {
		subtree = en.SubtreeOf(child, subtree[:0])
		for _, v := range subtree {
			if !lastProtectedFor(en, H, v, e, distE) {
				out = append(out, UnprotectedReport{Edge: e, Witness: v})
				break
			}
		}
	})
	return out
}
