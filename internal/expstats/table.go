package expstats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns — the
// experiment harness prints one Table per paper table/figure.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v (floats with %.4g).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// RenderCSV writes the table as CSV (header row first).
func (t *Table) RenderCSV(w io.Writer) {
	writeCSVRow(w, t.headers)
	for _, row := range t.rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	quoted := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		quoted[i] = c
	}
	fmt.Fprintln(w, strings.Join(quoted, ","))
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
