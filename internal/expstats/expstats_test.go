package expstats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFitPowerExact(t *testing.T) {
	xs := []float64{10, 100, 1000, 10000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	fit, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exp-1.5) > 1e-9 || math.Abs(fit.C-3) > 1e-6 {
		t.Fatalf("fit=%+v", fit)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("R2=%g", fit.R2)
	}
}

func TestFitPowerNoisy(t *testing.T) {
	xs := []float64{100, 200, 400, 800, 1600}
	ys := []float64{105, 195, 410, 790, 1620} // ~linear
	fit, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exp-1.0) > 0.05 {
		t.Fatalf("exp=%g want ~1", fit.Exp)
	}
}

func TestFitPowerErrors(t *testing.T) {
	if _, err := FitPower([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitPower([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitPower([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Fatal("negative x accepted")
	}
	if _, err := FitPower([]float64{1, 2}, []float64{0, 2}); err == nil {
		t.Fatal("zero y accepted")
	}
}

func TestAggregates(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if Mean(nil) != 0 || Max(nil) != 0 || GeoMean(nil) != 0 {
		t.Fatal("empty aggregates must be 0")
	}
	if Max([]float64{3, 9, 2}) != 9 {
		t.Fatal("Max")
	}
	if math.Abs(GeoMean([]float64{1, 100})-10) > 1e-9 {
		t.Fatal("GeoMean")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("GeoMean of negative must be 0")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "n", "b(n)", "note")
	tb.AddRow(100, 1234, "ok")
	tb.AddRow(200, 5678.5, "with, comma")
	if tb.NumRows() != 2 {
		t.Fatal("NumRows")
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "b(n)", "1234", "5678"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	tb.RenderCSV(&csv)
	if !strings.Contains(csv.String(), `"with, comma"`) {
		t.Fatalf("CSV quoting broken:\n%s", csv.String())
	}
	if !strings.HasPrefix(csv.String(), "n,b(n),note\n") {
		t.Fatalf("CSV header broken:\n%s", csv.String())
	}
}
