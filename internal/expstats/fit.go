// Package expstats provides the small statistics and formatting toolkit the
// experiment harness uses: log-log power-law fits for exponent estimation
// (e.g. "does |E(H)| scale like n^{1.5}?"), aligned table rendering and CSV
// output.
package expstats

import (
	"fmt"
	"math"
)

// PowerFit is the least-squares fit of y = C · x^Exp on log-log scale.
type PowerFit struct {
	Exp float64 // fitted exponent
	C   float64 // fitted constant
	R2  float64 // coefficient of determination in log space
}

// FitPower fits y ≈ C·x^e by linear regression of log y on log x.
// All inputs must be positive; len(xs) == len(ys) >= 2.
func FitPower(xs, ys []float64) (PowerFit, error) {
	if len(xs) != len(ys) {
		return PowerFit{}, fmt.Errorf("expstats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return PowerFit{}, fmt.Errorf("expstats: need at least 2 points, got %d", len(xs))
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return PowerFit{}, fmt.Errorf("expstats: non-positive sample (%g, %g)", xs[i], ys[i])
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	slope, intercept, r2 := linreg(lx, ly)
	return PowerFit{Exp: slope, C: math.Exp(intercept), R2: r2}, nil
}

// linreg returns slope, intercept and R² of the least-squares line.
func linreg(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
