// Package tree provides rooted-tree machinery over the canonical BFS tree
// T0: ancestor tests, least common ancestors, and the recursive path
// decomposition of Fact 3.3 (Sleator–Tarjan heavy paths in the variant of
// Baswana–Khanna) that Phase S2 of the construction is built on.
package tree

import (
	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
)

// Tree is a rooted tree with precomputed ancestor structure and the Fact 3.3
// decomposition. All arrays are indexed by vertex; vertices unreachable from
// the root have Depth -1 and PathOf -1.
type Tree struct {
	Root       int32
	Parent     []int32
	ParentEdge []graph.EdgeID
	Depth      []int32
	Size       []int32 // subtree sizes (0 for unreachable)

	tin, tout []int32 // preorder intervals for O(1) ancestor tests

	// Dense preorder from the same tour: the subtree of v is the
	// contiguous slice PreOrder[PreIndex[v] : PreIndex[v]+Size[v]], which is
	// what lets a failure repair enumerate exactly the affected vertices.
	PreOrder []int32 // reachable vertices in DFS preorder
	PreIndex []int32 // preorder position of v; -1 for unreachable vertices

	// Fact 3.3 decomposition TD. Every reachable vertex lies on exactly one
	// path; Paths[i] lists its vertices from shallowest (head) to deepest.
	Paths     [][]int32
	PathOf    []int32 // index into Paths
	PosOf     []int32 // position of v within Paths[PathOf[v]]
	PathLevel []int32 // recursion level of each path (root path = 0)
	MaxLevel  int32

	// GlueEdges is E⁻(TD): the tree edges e(ψ,i) connecting a hanging
	// subtree's head to its parent path. PathEdges (E⁺(TD)) is the
	// complement within the tree edges.
	GlueEdges []graph.EdgeID

	children [][]int32
	order    []int32 // reachable vertices, top-down
}

// Build constructs the rooted-tree structure from a canonical BFS tree,
// including the Fact 3.3 decomposition.
func Build(g *graph.Graph, bt *bfs.Tree) *Tree {
	t := BuildAncestry(g.N(), bt)
	t.buildChildren(g.N())
	t.decompose(g)
	return t
}

// buildChildren materializes per-vertex child lists (needed only by the
// decomposition and Children); the lists share one flat slab, appended into
// pre-capped slices, so the whole thing costs three allocations.
func (t *Tree) buildChildren(n int) {
	cnt := make([]int32, n)
	total := 0
	for _, v := range t.order {
		if p := t.Parent[v]; p >= 0 {
			cnt[p]++
			total++
		}
	}
	flat := make([]int32, total)
	t.children = make([][]int32, n)
	off := 0
	for v := 0; v < n; v++ {
		t.children[v] = flat[off : off : off+int(cnt[v])]
		off += int(cnt[v])
	}
	for _, v := range t.order {
		if p := t.Parent[v]; p >= 0 {
			t.children[p] = append(t.children[p], v)
		}
	}
}

// BuildAncestry constructs only the ancestry machinery — subtree sizes,
// preorder intervals, preorder subtree enumeration — without the Fact 3.3
// decomposition. Query plans use it: they classify failures and enumerate
// subtrees but never walk decomposition paths, and skipping decompose saves
// an O(n) pass plus its allocations on every structure build and store
// load-through. Paths/PathOf/PosOf/PathLevel/GlueEdges/children stay empty;
// LCA, SegmentsTo, GlueEdgesOn and Children must not be called on an
// ancestry-only tree.
func BuildAncestry(n int, bt *bfs.Tree) *Tree {
	t := &Tree{
		Root:       bt.Source,
		Parent:     bt.Parent,
		ParentEdge: bt.ParentEdge,
		Depth:      bt.Dist,
		order:      bt.Order,
	}
	// The four n-sized ancestry arrays share one allocation (and one zeroing
	// pass); this constructor runs on every store load-through, so constant
	// factors here are serving-path latency.
	slab := make([]int32, 4*n)
	t.Size = slab[0*n : 1*n : 1*n]
	t.tin = slab[1*n : 2*n : 2*n]
	t.tout = slab[2*n : 3*n : 3*n]
	t.PreIndex = slab[3*n : 4*n : 4*n]
	for i := 0; i < n; i++ {
		t.tin[i] = -1
		t.PreIndex[i] = -1
	}
	// Subtree sizes bottom-up over the BFS order (children follow parents).
	for i := len(t.order) - 1; i >= 0; i-- {
		v := t.order[i]
		t.Size[v]++
		if p := t.Parent[v]; p >= 0 {
			t.Size[p] += t.Size[v]
		}
	}
	t.preorderTour()
	return t
}

// preorderTour assigns each reachable vertex its dense preorder position —
// parent first, siblings in BFS order — and the half-open interval
// [tin, tout) = [PreIndex[v], PreIndex[v]+Size[v]) that makes IsAncestor and
// InSubtree O(1). One top-down pass over the BFS order replaces an explicit
// DFS: tout[v] doubles as v's child cursor (the next free slot inside v's
// interval), starting just past v itself and ending — after the last child
// claims its block — at exactly tin[v]+Size[v], the interval end.
func (t *Tree) preorderTour() {
	if len(t.order) == 0 {
		return
	}
	t.PreOrder = make([]int32, len(t.order))
	t.tin[t.Root] = 0
	t.tout[t.Root] = 1
	for _, v := range t.order {
		if p := t.Parent[v]; p >= 0 {
			t.tin[v] = t.tout[p]
			t.tout[p] += t.Size[v]
			t.tout[v] = t.tin[v] + 1
		}
		t.PreIndex[v] = t.tin[v]
		t.PreOrder[t.tin[v]] = v
	}
}

// decompose builds the Fact 3.3 decomposition: the root path descends to the
// child with the largest subtree until a leaf; every subtree hanging off it
// has at most half the vertices and is decomposed recursively (implemented
// as a worklist). Glue edges connect each hanging head to its parent path.
func (t *Tree) decompose(g *graph.Graph) {
	n := g.N()
	t.PathOf = make([]int32, n)
	t.PosOf = make([]int32, n)
	for i := 0; i < n; i++ {
		t.PathOf[i] = -1
	}
	if len(t.order) == 0 {
		return
	}
	type job struct {
		head  int32
		level int32
	}
	work := []job{{head: t.Root, level: 0}}
	for len(work) > 0 {
		j := work[len(work)-1]
		work = work[:len(work)-1]
		if j.level > t.MaxLevel {
			t.MaxLevel = j.level
		}
		idx := int32(len(t.Paths))
		var path []int32
		v := j.head
		for {
			t.PathOf[v] = idx
			t.PosOf[v] = int32(len(path))
			path = append(path, v)
			// heaviest child continues the path
			var heavy int32 = -1
			for _, c := range t.children[v] {
				if heavy == -1 || t.Size[c] > t.Size[heavy] {
					heavy = c
				}
			}
			if heavy == -1 {
				break
			}
			for _, c := range t.children[v] {
				if c != heavy {
					t.GlueEdges = append(t.GlueEdges, t.ParentEdge[c])
					work = append(work, job{head: c, level: j.level + 1})
				}
			}
			v = heavy
		}
		t.Paths = append(t.Paths, path)
		t.PathLevel = append(t.PathLevel, j.level)
	}
}

// Subtree returns the vertices of v's subtree (v first, then descendants in
// DFS preorder) as a slice of the tree's preorder array — zero-copy, so
// repeated failure repairs enumerate a subtree without allocating. The slice
// is owned by the tree and must not be modified; it is empty for vertices
// unreachable from the root.
func (t *Tree) Subtree(v int32) []int32 {
	p := t.PreIndex[v]
	if p < 0 {
		return nil
	}
	return t.PreOrder[p : p+t.Size[v]]
}

// InSubtree reports whether v lies in the subtree rooted at c (including
// v == c), in O(1) via the preorder interval.
func (t *Tree) InSubtree(v, c int32) bool {
	pv := t.PreIndex[v]
	pc := t.PreIndex[c]
	return pv >= pc && pc >= 0 && pv < pc+t.Size[c]
}

// IsAncestor reports whether u is an ancestor of v (or u == v).
func (t *Tree) IsAncestor(u, v int32) bool {
	if t.tin[u] < 0 || t.tin[v] < 0 {
		return false
	}
	return t.tin[u] <= t.tin[v] && t.tout[v] <= t.tout[u]
}

// LCA returns the least common ancestor of u and v via path-decomposition
// ascent, or -1 if either vertex is unreachable.
func (t *Tree) LCA(u, v int32) int32 {
	if t.Depth[u] < 0 || t.Depth[v] < 0 {
		return -1
	}
	for t.PathOf[u] != t.PathOf[v] {
		hu := t.Paths[t.PathOf[u]][0]
		hv := t.Paths[t.PathOf[v]][0]
		// ascend from the path whose head is deeper
		if t.Depth[hu] >= t.Depth[hv] {
			u = t.Parent[hu]
		} else {
			v = t.Parent[hv]
		}
	}
	if t.Depth[u] <= t.Depth[v] {
		return u
	}
	return v
}

// ChildEndpoint returns the deeper endpoint of tree edge id (the paper
// directs tree edges away from the root).
func (t *Tree) ChildEndpoint(g *graph.Graph, id graph.EdgeID) int32 {
	e := g.EdgeByID(id)
	if t.Depth[e.U] > t.Depth[e.V] {
		return e.U
	}
	return e.V
}

// Related implements the paper's e ∼ e' relation on tree edges, addressed by
// their child endpoints a and b: e ∼ e' iff one child endpoint is an
// ancestor-or-self of the other, i.e. both edges lie on a common root-leaf
// path π(s,·).
func (t *Tree) Related(a, b int32) bool {
	return t.IsAncestor(a, b) || t.IsAncestor(b, a)
}

// OnRootPath reports whether the tree edge with child endpoint c lies on
// π(root, v).
func (t *Tree) OnRootPath(c, v int32) bool {
	return t.IsAncestor(c, v)
}

// Segment is a maximal intersection of π(root,v) with one decomposition
// path: vertices Paths[Path][0..BottomPos] are all ancestors of v.
type Segment struct {
	Path      int32 // index into Paths
	BottomPos int32 // deepest position of the intersection within the path
}

// SegmentsTo returns the decomposition-path segments of π(root,v) ordered
// from v upward to the root. Fact 4.1(b) bounds their number by O(log n).
func (t *Tree) SegmentsTo(v int32) []Segment {
	return t.AppendSegmentsTo(nil, v)
}

// AppendSegmentsTo is SegmentsTo appending to segs, so repeated queries can
// recycle one buffer.
func (t *Tree) AppendSegmentsTo(segs []Segment, v int32) []Segment {
	if t.Depth[v] < 0 {
		return segs
	}
	for v >= 0 {
		p := t.PathOf[v]
		segs = append(segs, Segment{Path: p, BottomPos: t.PosOf[v]})
		v = t.Parent[t.Paths[p][0]]
	}
	return segs
}

// GlueEdgesOn returns the glue edges (E⁻(TD)) lying on π(root,v), i.e. the
// parent edges of every segment head below the root. Fact 4.1(a) bounds
// their number by O(log n).
func (t *Tree) GlueEdgesOn(v int32) []graph.EdgeID {
	var out []graph.EdgeID
	for v >= 0 {
		head := t.Paths[t.PathOf[v]][0]
		if t.Parent[head] < 0 {
			break
		}
		out = append(out, t.ParentEdge[head])
		v = t.Parent[head]
	}
	return out
}

// Children returns v's children (owned by the tree; do not modify).
func (t *Tree) Children(v int32) []int32 { return t.children[v] }

// Order returns the reachable vertices in top-down (BFS) order.
func (t *Tree) Order() []int32 { return t.order }
