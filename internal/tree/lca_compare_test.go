package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
)

// Property test: LCA laws on random trees — identity, symmetry,
// ancestor-absorption, and associativity of the meet operation.
func TestLCAMeetLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + int(uint(seed)%60)
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			b.Add(i, rng.Intn(i))
		}
		g := b.Graph()
		tr := Build(g, bfs.From(g, 0))
		for k := 0; k < 50; k++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			w := int32(rng.Intn(n))
			if tr.LCA(u, u) != u {
				return false
			}
			if tr.LCA(u, v) != tr.LCA(v, u) {
				return false
			}
			l := tr.LCA(u, v)
			if !tr.IsAncestor(l, u) || !tr.IsAncestor(l, v) {
				return false
			}
			// absorption: lca(anc, u) = anc for any ancestor of u
			if tr.LCA(l, u) != l {
				return false
			}
			// associativity of meet in a tree semilattice
			if tr.LCA(tr.LCA(u, v), w) != tr.LCA(u, tr.LCA(v, w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the deepest common ancestor is the LCA — no deeper common
// ancestor exists.
func TestLCAIsDeepestCommonAncestor(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	b := graph.NewBuilder(200)
	for i := 1; i < 200; i++ {
		b.Add(i, rng.Intn(i))
	}
	g := b.Graph()
	tr := Build(g, bfs.From(g, 0))
	for k := 0; k < 500; k++ {
		u := int32(rng.Intn(200))
		v := int32(rng.Intn(200))
		l := tr.LCA(u, v)
		for x := int32(0); x < 200; x++ {
			if tr.IsAncestor(x, u) && tr.IsAncestor(x, v) && tr.Depth[x] > tr.Depth[l] {
				t.Fatalf("deeper common ancestor %d of (%d,%d) than LCA %d", x, u, v, l)
			}
		}
	}
}
