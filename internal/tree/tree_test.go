package tree

import (
	"math"
	"math/rand"
	"testing"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
)

// buildTree returns the Tree for a BFS from s on g.
func buildTree(g *graph.Graph, s int) *Tree {
	return Build(g, bfs.From(g, s))
}

// caterpillar: path 0-1-2-3-4 with leaves hanging off each spine vertex.
func caterpillar() *graph.Graph {
	b := graph.NewBuilder(10)
	b.AddPath(0, 1, 2, 3, 4)
	b.Add(1, 5)
	b.Add(2, 6)
	b.Add(2, 7)
	b.Add(3, 8)
	b.Add(4, 9)
	return b.Graph()
}

func TestSubtreeSizes(t *testing.T) {
	g := caterpillar()
	tr := buildTree(g, 0)
	if tr.Size[0] != 10 {
		t.Fatalf("Size[root]=%d", tr.Size[0])
	}
	if tr.Size[2] != 7 { // 2,6,7,3,8,4,9
		t.Fatalf("Size[2]=%d want 7", tr.Size[2])
	}
	if tr.Size[9] != 1 {
		t.Fatalf("Size[9]=%d", tr.Size[9])
	}
}

func TestIsAncestorAndLCA(t *testing.T) {
	g := caterpillar()
	tr := buildTree(g, 0)
	cases := []struct {
		u, v, lca int32
	}{
		{5, 9, 1}, {6, 7, 2}, {8, 9, 3}, {0, 9, 0}, {4, 4, 4}, {6, 9, 2},
	}
	for _, c := range cases {
		if got := tr.LCA(c.u, c.v); got != c.lca {
			t.Errorf("LCA(%d,%d)=%d want %d", c.u, c.v, got, c.lca)
		}
		if got := tr.LCA(c.v, c.u); got != c.lca {
			t.Errorf("LCA(%d,%d)=%d want %d (symmetry)", c.v, c.u, got, c.lca)
		}
	}
	if !tr.IsAncestor(2, 9) || tr.IsAncestor(9, 2) {
		t.Fatal("IsAncestor wrong on 2/9")
	}
	if !tr.IsAncestor(3, 3) {
		t.Fatal("IsAncestor must be reflexive")
	}
	if tr.IsAncestor(5, 6) {
		t.Fatal("5 is not an ancestor of 6")
	}
}

// Reference LCA by walking parents.
func refLCA(tr *Tree, u, v int32) int32 {
	anc := map[int32]bool{}
	for x := u; x >= 0; x = tr.Parent[x] {
		anc[x] = true
	}
	for x := v; x >= 0; x = tr.Parent[x] {
		if anc[x] {
			return x
		}
	}
	return -1
}

func randomConnected(n, extra int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.Add(i, rng.Intn(i))
	}
	for k := 0; k < extra; k++ {
		b.Add(rng.Intn(n), rng.Intn(n))
	}
	return b.Graph()
}

func TestLCAAgainstReferenceRandom(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomConnected(80, 60, seed)
		tr := buildTree(g, 0)
		rng := rand.New(rand.NewSource(seed + 100))
		for k := 0; k < 200; k++ {
			u, v := int32(rng.Intn(80)), int32(rng.Intn(80))
			if got, want := tr.LCA(u, v), refLCA(tr, u, v); got != want {
				t.Fatalf("seed %d: LCA(%d,%d)=%d want %d", seed, u, v, got, want)
			}
		}
	}
}

func TestDecompositionPartition(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomConnected(100, 50, seed)
		tr := buildTree(g, 0)
		// every vertex on exactly one path at its recorded position
		seen := make([]int, g.N())
		for pi, path := range tr.Paths {
			for pos, v := range path {
				seen[v]++
				if tr.PathOf[v] != int32(pi) || tr.PosOf[v] != int32(pos) {
					t.Fatalf("PathOf/PosOf inconsistent for %d", v)
				}
				if pos > 0 && tr.Parent[v] != path[pos-1] {
					t.Fatalf("path %d not a descending chain at %d", pi, v)
				}
			}
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("vertex %d on %d paths", v, c)
			}
		}
		// glue edges + path edges partition tree edges
		glue := map[graph.EdgeID]bool{}
		for _, e := range tr.GlueEdges {
			glue[e] = true
		}
		pathEdges := 0
		for _, path := range tr.Paths {
			pathEdges += len(path) - 1
		}
		if pathEdges+len(tr.GlueEdges) != g.N()-1 {
			t.Fatalf("edges: %d path + %d glue != %d tree", pathEdges, len(tr.GlueEdges), g.N()-1)
		}
		for _, path := range tr.Paths {
			for pos := 1; pos < len(path); pos++ {
				if glue[tr.ParentEdge[path[pos]]] {
					t.Fatal("path edge also glue edge")
				}
			}
		}
	}
}

// Fact 3.3: every subtree hanging off a path has at most half the vertices
// of the subtree the path was carved from; recursion depth is O(log n).
func TestFact33HalvingAndLevels(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		n := 300
		g := randomConnected(n, 0, seed) // pure random tree
		tr := buildTree(g, 0)
		limit := int32(math.Ceil(math.Log2(float64(n)))) + 1
		if tr.MaxLevel > limit {
			t.Fatalf("seed %d: MaxLevel=%d exceeds log bound %d", seed, tr.MaxLevel, limit)
		}
		for _, path := range tr.Paths {
			head := path[0]
			if tr.Parent[head] < 0 {
				continue
			}
			parentPathHead := tr.Paths[tr.PathOf[tr.Parent[head]]][0]
			if 2*tr.Size[head] > tr.Size[parentPathHead] {
				t.Fatalf("seed %d: hanging subtree at %d has size %d > half of %d",
					seed, head, tr.Size[head], tr.Size[parentPathHead])
			}
		}
	}
}

// Fact 4.1: for every v, π(s,v) meets O(log n) decomposition paths and
// O(log n) glue edges.
func TestFact41LogBounds(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		n := 400
		g := randomConnected(n, 200, seed)
		tr := buildTree(g, 0)
		limit := int(math.Ceil(math.Log2(float64(n)))) + 2
		for v := int32(0); v < int32(n); v++ {
			segs := tr.SegmentsTo(v)
			if len(segs) > limit {
				t.Fatalf("v=%d meets %d paths > %d", v, len(segs), limit)
			}
			glues := tr.GlueEdgesOn(v)
			if len(glues) != len(segs)-1 {
				t.Fatalf("v=%d: %d glue edges for %d segments", v, len(glues), len(segs))
			}
			// segments really cover π(s,v): total vertices = depth+1
			total := 0
			x := v
			for _, s := range segs {
				if tr.Paths[s.Path][s.BottomPos] != x {
					t.Fatalf("segment bottom mismatch for v=%d", v)
				}
				total += int(s.BottomPos) + 1
				x = tr.Parent[tr.Paths[s.Path][0]]
			}
			if total != int(tr.Depth[v])+1 {
				t.Fatalf("v=%d: segments cover %d vertices, want %d", v, total, tr.Depth[v]+1)
			}
		}
	}
}

func TestRelated(t *testing.T) {
	g := caterpillar()
	tr := buildTree(g, 0)
	// edges by child endpoints: edge (1,2) child=2, edge (3,4) child=4: both
	// on π(0,4) ⇒ related. edge (1,5) child=5 vs (2,6) child=6: unrelated.
	if !tr.Related(2, 4) {
		t.Fatal("edges on a common root path must be related")
	}
	if tr.Related(5, 6) {
		t.Fatal("edges on divergent branches must be unrelated")
	}
	if !tr.Related(2, 2) {
		t.Fatal("an edge is related to itself")
	}
}

func TestChildEndpointAndOnRootPath(t *testing.T) {
	g := caterpillar()
	tr := buildTree(g, 0)
	id := g.EdgeIDOf(2, 3)
	if tr.ChildEndpoint(g, id) != 3 {
		t.Fatal("child endpoint of (2,3) must be 3")
	}
	if !tr.OnRootPath(3, 9) {
		t.Fatal("edge (2,3) lies on π(0,9)")
	}
	if tr.OnRootPath(3, 7) {
		t.Fatal("edge (2,3) is not on π(0,7)")
	}
}

func TestUnreachableVertices(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddPath(0, 1, 2)
	b.Add(3, 4)
	g := b.Graph()
	tr := buildTree(g, 0)
	if tr.PathOf[3] != -1 || tr.Depth[3] != -1 {
		t.Fatal("unreachable vertex should be unmarked")
	}
	if tr.LCA(1, 3) != -1 {
		t.Fatal("LCA with unreachable must be -1")
	}
	if tr.IsAncestor(0, 3) || tr.IsAncestor(3, 3) {
		t.Fatal("ancestor tests with unreachable must be false")
	}
	if tr.SegmentsTo(3) != nil {
		t.Fatal("SegmentsTo(unreachable) must be nil")
	}
}

func TestPathGraphDecomposition(t *testing.T) {
	b := graph.NewBuilder(50)
	for i := 0; i+1 < 50; i++ {
		b.Add(i, i+1)
	}
	g := b.Graph()
	tr := buildTree(g, 0)
	if len(tr.Paths) != 1 || tr.MaxLevel != 0 || len(tr.GlueEdges) != 0 {
		t.Fatalf("path graph should decompose into one path: %d paths, level %d, %d glue",
			len(tr.Paths), tr.MaxLevel, len(tr.GlueEdges))
	}
	if len(tr.Paths[0]) != 50 {
		t.Fatal("root path should span everything")
	}
}

func TestStarDecomposition(t *testing.T) {
	b := graph.NewBuilder(21)
	for i := 1; i <= 20; i++ {
		b.Add(0, i)
	}
	g := b.Graph()
	tr := buildTree(g, 0)
	if len(tr.Paths) != 20 {
		t.Fatalf("star should give 20 paths (1 spine + 19 singletons), got %d", len(tr.Paths))
	}
	if len(tr.GlueEdges) != 19 {
		t.Fatalf("19 glue edges expected, got %d", len(tr.GlueEdges))
	}
	if tr.MaxLevel != 1 {
		t.Fatalf("MaxLevel=%d want 1", tr.MaxLevel)
	}
}

func TestSubtreePreorderIntervals(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomConnected(70, int(seed)*25, seed)
		tr := buildTree(g, 0)
		if len(tr.PreOrder) != int(tr.Size[tr.Root]) {
			t.Fatalf("seed %d: preorder has %d vertices, want %d", seed, len(tr.PreOrder), tr.Size[tr.Root])
		}
		for i, v := range tr.PreOrder {
			if tr.PreIndex[v] != int32(i) {
				t.Fatalf("seed %d: PreIndex[%d] = %d, want %d", seed, v, tr.PreIndex[v], i)
			}
		}
		for v := int32(0); int(v) < g.N(); v++ {
			sub := tr.Subtree(v)
			if tr.Depth[v] < 0 {
				if sub != nil || tr.PreIndex[v] != -1 {
					t.Fatalf("seed %d: unreachable %d has a subtree", seed, v)
				}
				continue
			}
			if int32(len(sub)) != tr.Size[v] || sub[0] != v {
				t.Fatalf("seed %d: Subtree(%d) has %d vertices starting at %d, want %d starting at %d",
					seed, v, len(sub), sub[0], tr.Size[v], v)
			}
			// The interval must contain exactly the descendants-or-self.
			for _, w := range sub {
				if !tr.IsAncestor(v, w) {
					t.Fatalf("seed %d: %d in Subtree(%d) but not a descendant", seed, w, v)
				}
			}
			for w := int32(0); int(w) < g.N(); w++ {
				if got, want := tr.InSubtree(w, v), tr.IsAncestor(v, w); got != want {
					t.Fatalf("seed %d: InSubtree(%d,%d) = %v, IsAncestor = %v", seed, w, v, got, want)
				}
			}
		}
	}
}
