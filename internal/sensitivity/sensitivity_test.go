package sensitivity

import (
	"testing"

	"ftbfs/internal/bfs"
	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

func bruteAvoiding(g *graph.Graph, s int, e graph.EdgeID) []int32 {
	b := graph.NewBuilder(g.N())
	for id, ed := range g.Edges() {
		if graph.EdgeID(id) != e {
			b.Add(int(ed.U), int(ed.V))
		}
	}
	return bfs.Distances(b.Graph(), s)
}

func TestOracleMatchesBruteForce(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.RandomConnected(40, 60, 1),
		gen.Cycle(16),
		gen.Grid(5, 6),
		gen.LowerBoundParams(2, 3, 4).G,
	} {
		o, err := New(g, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < g.M(); id++ {
			want := bruteAvoiding(g, 0, graph.EdgeID(id))
			for v := 0; v < g.N(); v += 3 {
				got := o.DistAvoidingID(v, graph.EdgeID(id))
				// Oracle may answer from the intact tree when the failure
				// cannot hurt v — that answer must equal the true distance.
				if got != want[v] {
					t.Fatalf("edge %v, v=%d: oracle %d, brute %d", g.EdgeByID(graph.EdgeID(id)), v, got, want[v])
				}
			}
		}
	}
}

func TestOracleErrors(t *testing.T) {
	if _, err := New(graph.New(3), 0, 4); err == nil {
		t.Fatal("unfrozen accepted")
	}
	g := gen.Cycle(5)
	if _, err := New(g, 9, 4); err == nil {
		t.Fatal("bad source accepted")
	}
	o, err := New(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.DistAvoiding(1, 0, 3); err == nil {
		t.Fatal("non-edge accepted")
	}
	if d, err := o.DistAvoiding(2, 0, 1); err != nil || d != 3 {
		t.Fatalf("DistAvoiding(2,{0,1}) = %d, %v; want 3", d, err)
	}
}

func TestCacheBehaviour(t *testing.T) {
	g := gen.RandomConnected(60, 90, 5)
	o, err := New(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// find tree edges on some deep path to force cache activity
	var treeIDs []graph.EdgeID
	for id := 0; id < g.M() && len(treeIDs) < 8; id++ {
		eid := graph.EdgeID(id)
		if o.treeEdges.Contains(eid) {
			treeIDs = append(treeIDs, eid)
		}
	}
	for _, id := range treeIDs {
		child := o.t.ChildEndpoint(g, id)
		o.DistAvoidingID(int(child), id) // each forces a BFS (miss)
	}
	_, misses := o.CacheStats()
	if misses != len(treeIDs) {
		t.Fatalf("misses=%d want %d", misses, len(treeIDs))
	}
	if o.CachedFailures() > 4 {
		t.Fatalf("cache grew to %d beyond capacity 4", o.CachedFailures())
	}
	// re-query the most recent edge: must hit
	last := treeIDs[len(treeIDs)-1]
	o.DistAvoidingID(int(o.t.ChildEndpoint(g, last)), last)
	hits, _ := o.CacheStats()
	if hits == 0 {
		t.Fatal("expected a cache hit")
	}
}

func TestOffPathQueriesAreFree(t *testing.T) {
	g := gen.Star(10) // tree: every edge is a tree edge
	o, err := New(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// failing edge (0,1) cannot hurt v=2 (not a descendant)
	if d := o.DistAvoidingID(2, g.EdgeIDOf(0, 1)); d != 1 {
		t.Fatalf("dist=%d want 1", d)
	}
	if _, misses := o.CacheStats(); misses != 0 {
		t.Fatal("off-path query triggered a BFS")
	}
	// intact distances
	if o.Dist(0) != 0 || o.Dist(5) != 1 {
		t.Fatal("intact distances wrong")
	}
}

func TestDefaultCapacity(t *testing.T) {
	g := gen.Cycle(6)
	o, err := New(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.capacity != 16 {
		t.Fatalf("default capacity %d", o.capacity)
	}
}

// Cross-validation: the oracle agrees with the replacement engine's
// per-failure distance streams on every (failure, vertex) pair.
func TestOracleMatchesReplacementEngine(t *testing.T) {
	g := gen.RandomConnected(60, 100, 17)
	o, err := New(g, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	en := replacement.NewEngine(g, 0)
	en.ForEachFailure(func(e graph.EdgeID, child int32, distE []int32) {
		for v := 0; v < g.N(); v += 2 {
			if got := o.DistAvoidingID(v, e); got != distE[v] {
				t.Fatalf("edge %v v=%d: oracle %d engine %d", g.EdgeByID(e), v, got, distE[v])
			}
		}
	})
}
