// Package sensitivity provides a single-source distance-sensitivity oracle
// for edge failures: queries dist(s, v, G\{e}) for arbitrary (v, e). It is
// the query-side companion of the FT-BFS structures (the paper's related
// work connects FT-BFS to the single-source replacement-paths problem [9]).
//
// Design: only failures of T0 edges lying on π(s,v) can change dist(s,v),
// so all other queries answer from the intact BFS tree in O(1). Tree-edge
// failures trigger one BFS on G\{e} whose distance array is kept in a
// bounded FIFO cache — a failed edge is typically probed for many targets,
// so the amortised cost per query is O(1) after the first probe.
package sensitivity

import (
	"fmt"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
	"ftbfs/internal/tree"
)

// Oracle answers dist(s, v, G\{e}) queries. Not safe for concurrent use.
type Oracle struct {
	g  *graph.Graph
	s  int
	bt *bfs.Tree
	t  *tree.Tree

	treeEdges *graph.EdgeSet
	sc        *bfs.Scratch

	capacity int
	cache    map[graph.EdgeID][]int32
	order    []graph.EdgeID // FIFO eviction order

	hits, misses int
}

// New builds an oracle for (g, s) caching up to capacity failure BFS
// results (capacity < 1 means 16).
func New(g *graph.Graph, s int, capacity int) (*Oracle, error) {
	if !g.Frozen() {
		return nil, fmt.Errorf("sensitivity: graph must be frozen")
	}
	if s < 0 || s >= g.N() {
		return nil, fmt.Errorf("sensitivity: source %d out of range", s)
	}
	if capacity < 1 {
		capacity = 16
	}
	bt := bfs.From(g, s)
	return &Oracle{
		g:         g,
		s:         s,
		bt:        bt,
		t:         tree.Build(g, bt),
		treeEdges: bt.EdgeSet(g.M()),
		sc:        bfs.NewScratch(g.N()),
		capacity:  capacity,
		cache:     make(map[graph.EdgeID][]int32),
	}, nil
}

// Dist returns the intact distance dist(s, v).
func (o *Oracle) Dist(v int) int32 { return o.bt.Dist[v] }

// DistAvoiding returns dist(s, v, G \ {u,w}), or bfs.Unreachable.
func (o *Oracle) DistAvoiding(v, u, w int) (int32, error) {
	id := o.g.EdgeIDOf(u, w)
	if id == graph.NoEdge {
		return 0, fmt.Errorf("sensitivity: {%d,%d} is not an edge", u, w)
	}
	return o.DistAvoidingID(v, id), nil
}

// DistAvoidingID is DistAvoiding addressed by edge id.
func (o *Oracle) DistAvoidingID(v int, id graph.EdgeID) int32 {
	// failures off the canonical tree path cannot hurt v
	if !o.treeEdges.Contains(id) {
		return o.bt.Dist[v]
	}
	child := o.t.ChildEndpoint(o.g, id)
	if !o.t.IsAncestor(child, int32(v)) {
		return o.bt.Dist[v]
	}
	return o.failureDists(id)[v]
}

// failureDists returns (computing and caching if needed) the distance
// array of G\{id}.
func (o *Oracle) failureDists(id graph.EdgeID) []int32 {
	if d, ok := o.cache[id]; ok {
		o.hits++
		return d
	}
	o.misses++
	d := make([]int32, o.g.N())
	o.sc.DistancesAvoiding(o.g, o.s, bfs.Restriction{BannedEdge: id}, d)
	if len(o.order) >= o.capacity {
		evict := o.order[0]
		o.order = o.order[1:]
		delete(o.cache, evict)
	}
	o.cache[id] = d
	o.order = append(o.order, id)
	return d
}

// CacheStats returns (hits, misses) of the failure-BFS cache.
func (o *Oracle) CacheStats() (hits, misses int) { return o.hits, o.misses }

// CachedFailures returns the number of failure arrays currently cached.
func (o *Oracle) CachedFailures() int { return len(o.cache) }
