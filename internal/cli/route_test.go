package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"ftbfs"
)

func TestParseShardSpec(t *testing.T) {
	got, err := parseShardSpec("s0=127.0.0.1:7001, http://127.0.0.1:7002/ ,s2=https://h:7003")
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{
		{"s0", "http://127.0.0.1:7001"},
		{"127.0.0.1:7002", "http://127.0.0.1:7002"},
		{"s2", "https://h:7003"},
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("parseShardSpec = %v, want %v", got, want)
	}
	if _, err := parseShardSpec(""); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := parseShardSpec("a=h:1,a=h:2"); err == nil {
		t.Fatal("duplicate shard id accepted")
	}
}

func TestRouteBadFlags(t *testing.T) {
	if _, _, code := run(t, "route"); code != 1 {
		t.Fatal("route without -shards accepted")
	}
	if _, _, code := run(t, "route", "-bogus"); code != 1 {
		t.Fatal("bad flag accepted")
	}
}

// TestRouteCommand boots two shard serve commands and a router over them,
// builds through the router, and checks a failure query against a local
// oracle — the full `ftbfs serve -shard` + `ftbfs route` wiring end to end.
func TestRouteCommand(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	oldCtx, oldReady := serveSignalContext, serveReady
	defer func() { serveSignalContext, serveReady = oldCtx, oldReady }()
	serveSignalContext = func() (context.Context, context.CancelFunc) {
		return ctx, func() {}
	}
	addrc := make(chan string, 3)
	serveReady = func(addr string) { addrc <- addr }

	waitAddr := func(what string) string {
		select {
		case a := <-addrc:
			return a
		case <-time.After(15 * time.Second):
			t.Fatalf("%s did not come up", what)
			return ""
		}
	}

	done := make(chan int, 3)
	var outs [3]bytes.Buffer
	launch := func(i int, args ...string) {
		go func() { done <- Main(args, &outs[i], os.Stderr) }()
	}
	launch(0, "serve", "-addr", "127.0.0.1:0", "-shard", "-id", "s0")
	shard0 := waitAddr("shard 0")
	launch(1, "serve", "-addr", "127.0.0.1:0", "-shard", "-id", "s1")
	shard1 := waitAddr("shard 1")
	launch(2, "route", "-addr", "127.0.0.1:0", "-probe", "50ms", "-replication", "2",
		"-shards", "s0="+shard0+",s1="+shard1)
	router := "http://" + waitAddr("router")

	// Build through the router: a ring with chords, small enough to be fast.
	const n = 16
	g := ftbfs.NewGraph(n)
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
		g.MustAddEdge(i, (i+1)%n)
	}
	for i := 0; i < n/2; i += 2 {
		edges = append(edges, [2]int{i, i + n/2})
		g.MustAddEdge(i, i+n/2)
	}
	body, _ := json.Marshal(map[string]any{"n": n, "edges": edges, "eps": []float64{0.3}})
	resp, err := http.Post(router+"/build", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var br struct {
		Fingerprint string `json:"fingerprint"`
	}
	err = json.NewDecoder(resp.Body).Decode(&br)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/build via router: %v (status %d)", err, resp.StatusCode)
	}

	truth, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	oracle := truth.Oracle()
	checked := 0
	for _, e := range edges {
		if truth.IsReinforced(e[0], e[1]) {
			continue
		}
		want, err := oracle.DistAvoiding(e[1], e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		r2, err := http.Get(fmt.Sprintf("%s/dist-avoiding?graph=%s&eps=0.3&v=%d&fu=%d&fv=%d",
			router, br.Fingerprint, e[1], e[0], e[1]))
		if err != nil {
			t.Fatal(err)
		}
		var dr struct {
			Dist int `json:"dist"`
		}
		err = json.NewDecoder(r2.Body).Decode(&dr)
		r2.Body.Close()
		if err != nil || r2.StatusCode != http.StatusOK {
			t.Fatalf("routed /dist-avoiding: %v (status %d)", err, r2.StatusCode)
		}
		if dr.Dist != want {
			t.Fatalf("routed dist-avoiding(v=%d, fail=%v) = %d, want %d", e[1], e, dr.Dist, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no failable edges checked")
	}

	// Router /stats sees both shards.
	r3, err := http.Get(router + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var rs struct {
		Role   string `json:"role"`
		Shards []struct {
			ID      string `json:"id"`
			Healthy bool   `json:"healthy"`
		} `json:"shards"`
	}
	err = json.NewDecoder(r3.Body).Decode(&rs)
	r3.Body.Close()
	if err != nil || rs.Role != "router" || len(rs.Shards) != 2 {
		t.Fatalf("router /stats: %v %+v", err, rs)
	}

	cancel()
	for i := 0; i < 3; i++ {
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("a serve/route command exited %d\nouts: %q %q %q",
					code, outs[0].String(), outs[1].String(), outs[2].String())
			}
		case <-time.After(15 * time.Second):
			t.Fatal("serve/route did not shut down")
		}
	}
	if !strings.Contains(outs[2].String(), "routing on") {
		t.Fatalf("router startup banner missing: %q", outs[2].String())
	}
}
