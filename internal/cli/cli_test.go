package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := Main(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestUsageAndUnknown(t *testing.T) {
	if _, _, code := run(t); code != 2 {
		t.Fatal("no-arg should exit 2")
	}
	if _, errS, code := run(t, "bogus"); code != 2 || !strings.Contains(errS, "unknown subcommand") {
		t.Fatalf("bogus subcommand: code=%d err=%q", code, errS)
	}
	if out, _, code := run(t, "help"); code != 0 || !strings.Contains(out, "usage:") {
		t.Fatal("help broken")
	}
}

func genFile(t *testing.T, args ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	full := append([]string{"gen", "-o", path}, args...)
	if _, errS, code := run(t, full...); code != 0 {
		t.Fatalf("gen failed: %s", errS)
	}
	return path
}

func TestGenFamilies(t *testing.T) {
	for _, fam := range []string{"gnp", "gnm", "grid", "cycle", "hypercube", "random", "cliquechain"} {
		path := genFile(t, "-family", fam, "-n", "30")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "p ") {
			t.Fatalf("%s: bad output %q", fam, string(data[:10]))
		}
	}
	path := genFile(t, "-family", "lowerbound", "-n", "300", "-eps", "0.3")
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatal("lowerbound gen empty")
	}
	if _, _, code := run(t, "gen", "-family", "nope"); code != 1 {
		t.Fatal("unknown family accepted")
	}
}

func TestBuildVerifySaveRoundTrip(t *testing.T) {
	g := genFile(t, "-family", "gnp", "-n", "60", "-p", "0.1", "-seed", "3")
	saved := filepath.Join(t.TempDir(), "st.txt")
	dot := filepath.Join(t.TempDir(), "g.dot")
	out, errS, code := run(t, "build", "-in", g, "-eps", "0.25", "-save", saved, "-dot", dot, "-verify", "-workers", "2")
	if code != 0 {
		t.Fatalf("build failed: %s", errS)
	}
	if !strings.Contains(out, "verified") || !strings.Contains(out, "ftbfs{") {
		t.Fatalf("build output: %q", out)
	}
	if data, err := os.ReadFile(dot); err != nil || !strings.Contains(string(data), "graph G {") {
		t.Fatal("dot output broken")
	}
	// verify the saved structure
	out, errS, code = run(t, "verify", "-in", g, "-structure", saved)
	if code != 0 || !strings.Contains(out, "contract holds") {
		t.Fatalf("verify saved: code=%d out=%q err=%q", code, out, errS)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, _, code := run(t, "build", "-in", "/nonexistent/file"); code != 1 {
		t.Fatal("missing file accepted")
	}
	g := genFile(t, "-family", "cycle", "-n", "10")
	if _, _, code := run(t, "build", "-in", g, "-alg", "nope"); code != 1 {
		t.Fatal("bad algorithm accepted")
	}
	if _, _, code := run(t, "build", "-in", g, "-eps", "7"); code != 1 {
		t.Fatal("bad eps accepted")
	}
}

func TestSweep(t *testing.T) {
	g := genFile(t, "-family", "cliquechain", "-n", "16")
	out, errS, code := run(t, "sweep", "-in", g, "-grid", "0,0.5,1", "-B", "1", "-R", "25")
	if code != 0 {
		t.Fatalf("sweep failed: %s", errS)
	}
	if !strings.Contains(out, "predicted optimal") || !strings.Contains(out, "*") {
		t.Fatalf("sweep output: %q", out)
	}
	out, _, code = run(t, "sweep", "-in", g, "-grid", "0,1", "-csv")
	if code != 0 || !strings.Contains(out, "eps,backup") {
		t.Fatalf("csv sweep output: %q", out)
	}
	if _, _, code := run(t, "sweep", "-in", g, "-grid", "0,zz"); code != 1 {
		t.Fatal("bad grid accepted")
	}
}

func TestVerifyBuildsWhenNoStructure(t *testing.T) {
	g := genFile(t, "-family", "grid", "-n", "25")
	out, errS, code := run(t, "verify", "-in", g, "-eps", "0.3")
	if code != 0 || !strings.Contains(out, "contract holds") {
		t.Fatalf("verify: code=%d out=%q err=%q", code, out, errS)
	}
}

func TestVertexFT(t *testing.T) {
	g := genFile(t, "-family", "hypercube", "-n", "32")
	out, errS, code := run(t, "vertexft", "-in", g, "-verify")
	if code != 0 {
		t.Fatalf("vertexft failed: %s", errS)
	}
	if !strings.Contains(out, "vertex contract holds") {
		t.Fatalf("vertexft output: %q", out)
	}
}

func TestGenToStdout(t *testing.T) {
	out, _, code := run(t, "gen", "-family", "cycle", "-n", "5")
	if code != 0 || !strings.HasPrefix(out, "p 5 5") {
		t.Fatalf("stdout gen: %q", out)
	}
}
