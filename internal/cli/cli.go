// Package cli implements the ftbfs command-line tool (the thin binary in
// cmd/ftbfs delegates here so the commands are unit-testable).
//
// Subcommands:
//
//	gen      generate a graph family in the text format
//	build    build an ε FT-BFS structure (optionally save / render / verify)
//	sweep    price the tradeoff per ε and report the cheapest point
//	verify   exhaustively check a built or saved structure
//	vertexft build and verify a vertex fault-tolerant structure
//	serve    run the HTTP/JSON failure-query service (internal/server)
//	route    front a shard cluster with a consistent-hash router (internal/cluster)
package cli

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"ftbfs/internal/batch"
	"ftbfs/internal/core"
	"ftbfs/internal/expstats"
	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
	"ftbfs/internal/vertexft"
)

// Main dispatches the subcommand and returns the process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "gen":
		err = cmdGen(args[1:], stdout)
	case "build":
		err = cmdBuild(args[1:], stdout)
	case "sweep":
		err = cmdSweep(args[1:], stdout)
	case "verify":
		err = cmdVerify(args[1:], stdout)
	case "vertexft":
		err = cmdVertexFT(args[1:], stdout)
	case "serve":
		err = cmdServe(args[1:], stdout)
	case "route":
		err = cmdRoute(args[1:], stdout)
	case "-h", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "ftbfs: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "ftbfs: %v\n", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: ftbfs <subcommand> [flags]

  gen      -family gnp|gnm|grid|cycle|hypercube|random|cliquechain|lowerbound
           -n N [-p P] [-m M] [-eps E] [-seed S] [-o FILE]
  build    -in FILE -source S -eps E [-alg auto|tree|baseline|epsilon|greedy]
           [-workers W] [-save FILE] [-dot FILE] [-verify]
  sweep    -in FILE -source S [-grid "0,0.25,0.5,1"] [-B 1] [-R 10] [-csv]
  verify   -in FILE -source S (-eps E | -structure FILE)
  vertexft -in FILE -source S [-verify] [-save FILE]
  serve    [-addr :8080] [-dir DIR] [-cap N] [-shard] [-id NAME]
           [-drain-grace 0s] [-pprof localhost:6060]
           [-in FILE [-sources "0,5"] [-eps "0.25,0.5"] [-alg auto]
           [-vertex-sources "0,5"]]
  route    -shards "s0=host:port,s1=host:port" [-addr :8081] [-replication 2]
           [-vnodes 64] [-hedge 3ms] [-probe 2s] [-drain-grace 0s]
           [-hot-extra K] [-hot-min-hits N] [-hot-interval 30s]
           [-trace-sample N] [-pprof localhost:6061]

serve answers edge failures on /dist-avoiding and vertex failures on
/dist-avoiding-vertex (vertex structures build through the store on first
use; -vertex-sources pre-builds them for -in). route proxies both query
surfaces over the same consistent-hash ring; -hot-extra promotes the
hottest keys to replication+K replicas via shard-to-shard handoff.

FILE "-" means stdin/stdout.`)
}

func readGraph(path string) (*graph.Graph, error) {
	var r io.Reader
	if path == "-" || path == "" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return graph.Decode(r)
}

func openOut(path string, stdout io.Writer) (io.Writer, func() error, error) {
	if path == "-" || path == "" {
		return stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func cmdGen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	family := fs.String("family", "gnp", "graph family")
	n := fs.Int("n", 100, "vertex count (target)")
	p := fs.Float64("p", 0.05, "edge probability (gnp)")
	m := fs.Int("m", 0, "edge count (gnm; 0 = 4n)")
	eps := fs.Float64("eps", 0.25, "construction ε (lowerbound)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "-", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	switch *family {
	case "gnp":
		g = gen.GNPConnected(*n, *p, *seed)
	case "gnm":
		mm := *m
		if mm == 0 {
			mm = 4 * *n
		}
		g = gen.GNM(*n, mm, *seed)
	case "grid":
		side := int(math.Sqrt(float64(*n)))
		if side < 1 {
			side = 1
		}
		g = gen.Grid(side, side)
	case "cycle":
		g = gen.Cycle(*n)
	case "hypercube":
		d := 0
		for 1<<uint(d+1) <= *n {
			d++
		}
		g = gen.Hypercube(d)
	case "random":
		g = gen.RandomConnected(*n, 2**n, *seed)
	case "cliquechain":
		g = gen.CliqueChain(*n)
	case "lowerbound":
		g = gen.LowerBound(*n, *eps).G
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	w, closeFn, err := openOut(*out, stdout)
	if err != nil {
		return err
	}
	if err := graph.Encode(w, g); err != nil {
		closeFn()
		return err
	}
	return closeFn()
}

func cmdBuild(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	in := fs.String("in", "-", "input graph (text format), - for stdin")
	source := fs.Int("source", 0, "BFS source")
	eps := fs.Float64("eps", 0.25, "tradeoff parameter ε")
	algName := fs.String("alg", "auto", "algorithm: auto|tree|baseline|epsilon|greedy")
	workers := fs.Int("workers", 0, "parallel reinforcement sweep (0 = sequential, -1 = all cores)")
	save := fs.String("save", "", "write the structure to file")
	dot := fs.String("dot", "", "write Graphviz rendering to file")
	verify := fs.Bool("verify", false, "exhaustively verify the contract (slow)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := readGraph(*in)
	if err != nil {
		return err
	}
	alg, err := core.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	st, err := core.Build(g, *source, *eps, core.Options{Algorithm: alg, Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, st)
	fmt.Fprintf(stdout, "phases: uncovered=%d I1=%d I2=%d S1+=%d S2+=%d glue+=%d leftovers=%d\n",
		st.Stats.UncoveredPairs, st.Stats.I1Size, st.Stats.I2Size,
		st.Stats.S1Added, st.Stats.S2Added, st.Stats.S2GlueAdded, st.Stats.S1Leftover)
	if *save != "" {
		w, closeFn, err := openOut(*save, stdout)
		if err != nil {
			return err
		}
		if err := core.EncodeStructure(w, st); err != nil {
			closeFn()
			return err
		}
		if err := closeFn(); err != nil {
			return err
		}
	}
	if *dot != "" {
		w, closeFn, err := openOut(*dot, stdout)
		if err != nil {
			return err
		}
		if err := graph.WriteDOT(w, g, graph.DOTOptions{
			Structure: st.Edges, Reinforced: st.Reinforced, Source: *source,
		}); err != nil {
			closeFn()
			return err
		}
		if err := closeFn(); err != nil {
			return err
		}
	}
	if *verify {
		if viol := core.Verify(st, 5); len(viol) > 0 {
			return fmt.Errorf("contract violated: %v", viol)
		}
		fmt.Fprintln(stdout, "verified: contract holds for every non-reinforced edge")
	}
	return nil
}

func cmdSweep(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	in := fs.String("in", "-", "input graph")
	source := fs.Int("source", 0, "BFS source")
	gridSpec := fs.String("grid", "0,0.125,0.25,0.375,0.5,1", "comma-separated ε grid")
	bPrice := fs.Float64("B", 1, "backup edge price")
	rPrice := fs.Float64("R", 10, "reinforced edge price")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := readGraph(*in)
	if err != nil {
		return err
	}
	var grid []float64
	for _, part := range strings.Split(*gridSpec, ",") {
		x, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("bad grid entry %q", part)
		}
		grid = append(grid, x)
	}
	points, best, err := batch.CostSweep(g, *source, grid, *bPrice, *rPrice, batch.Options{})
	if err != nil {
		return err
	}
	t := expstats.NewTable(fmt.Sprintf("cost sweep (B=%g R=%g, n=%d m=%d)", *bPrice, *rPrice, g.N(), g.M()),
		"eps", "backup", "reinforced", "cost", "best")
	for i, p := range points {
		mark := ""
		if i == best {
			mark = "*"
		}
		t.AddRow(p.Eps, p.Backup, p.Reinforced, p.Cost, mark)
	}
	if *csv {
		t.RenderCSV(stdout)
	} else {
		t.Render(stdout)
	}
	fmt.Fprintf(stdout, "predicted optimal ε ≈ %.3f\n", core.PredictedOptimalEps(g.N(), *bPrice, *rPrice))
	return nil
}

func cmdVerify(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	in := fs.String("in", "-", "input graph")
	source := fs.Int("source", 0, "BFS source")
	eps := fs.Float64("eps", 0.25, "tradeoff parameter ε (ignored with -structure)")
	structPath := fs.String("structure", "", "verify a saved structure instead of building one")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := readGraph(*in)
	if err != nil {
		return err
	}
	var st *core.Structure
	if *structPath != "" {
		f, err := os.Open(*structPath)
		if err != nil {
			return err
		}
		st, err = core.DecodeStructure(f, g)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		st, err = core.Build(g, *source, *eps, core.Options{})
		if err != nil {
			return err
		}
	}
	viol := core.Verify(st, 10)
	if len(viol) > 0 {
		for _, v := range viol {
			fmt.Fprintln(stdout, v)
		}
		return fmt.Errorf("%d violations", len(viol))
	}
	fmt.Fprintf(stdout, "%v\nverified: contract holds\n", st)
	return nil
}

func cmdVertexFT(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vertexft", flag.ContinueOnError)
	in := fs.String("in", "-", "input graph")
	source := fs.Int("source", 0, "BFS source")
	verify := fs.Bool("verify", false, "exhaustively verify the vertex contract")
	save := fs.String("save", "", "write the vertex structure to file (version-2 record)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := readGraph(*in)
	if err != nil {
		return err
	}
	st, err := vertexft.Build(g, *source)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "vertex-ftbfs{n=%d m=%d |H|=%d pairs=%d}\n", g.N(), g.M(), st.Size(), st.Pairs)
	if *save != "" {
		w, closeFn, err := openOut(*save, stdout)
		if err != nil {
			return err
		}
		rec := &core.VertexRecord{S: st.S, Pairs: st.Pairs, Edges: st.Edges}
		if err := core.EncodeVertexRecord(w, g, rec); err != nil {
			closeFn()
			return err
		}
		if err := closeFn(); err != nil {
			return err
		}
	}
	if *verify {
		if viol := vertexft.Verify(st, 5); len(viol) > 0 {
			return fmt.Errorf("vertex contract violated: %v", viol)
		}
		fmt.Fprintln(stdout, "verified: vertex contract holds")
	}
	return nil
}
