package cli

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"ftbfs/internal/cluster"
	"ftbfs/internal/server"
)

// parseShardSpec splits a -shards value into (id, base-URL) pairs. Each
// comma-separated entry is either "id=url" or a bare URL, whose ID defaults
// to the host:port part. IDs — not addresses — position shards on the ring,
// so naming them explicitly lets a shard move hosts without remapping keys.
func parseShardSpec(spec string) ([][2]string, error) {
	var out [][2]string
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url := "", part
		if i := strings.Index(part, "="); i >= 0 && !strings.Contains(part[:i], "/") {
			id, url = part[:i], part[i+1:]
		}
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		url = strings.TrimRight(url, "/")
		if id == "" {
			id = strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
		}
		if seen[id] {
			return nil, fmt.Errorf("duplicate shard id %q", id)
		}
		seen[id] = true
		out = append(out, [2]string{id, url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-shards names no shards")
	}
	return out, nil
}

func cmdRoute(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	addr := fs.String("addr", ":8081", "listen address")
	shardsSpec := fs.String("shards", "", `comma-separated shard list: "id=host:port" or bare "host:port"`)
	replicas := fs.Int("replication", 2, "replicas per structure (capped at the shard count)")
	vnodes := fs.Int("vnodes", cluster.DefaultVnodes, "virtual ring points per shard")
	hedge := fs.Duration("hedge", cluster.DefaultHedgeDelay, "delay before hedging a point query to the next replica (0 or negative = off)")
	probe := fs.Duration("probe", 2*time.Second, "shard health-probe interval (0 = no probing)")
	id := fs.String("id", "", "router identity reported by /healthz and /stats")
	useWire := fs.Bool("wire", true, "use the binary protocol to shards that advertise it via /readyz (falls back to HTTP per request)")
	drainGrace := fs.Duration("drain-grace", 0, "on shutdown, keep serving with /readyz=503 this long so balancers stop routing here first")
	hotExtra := fs.Int("hot-extra", 0, "promote hot keys to replication+N replicas (0 = off)")
	hotMinHits := fs.Uint64("hot-min-hits", 1000, "point-query hits before a key counts as hot")
	hotInterval := fs.Duration("hot-interval", 30*time.Second, "how often to scan for hot keys to promote")
	budget := fs.Duration("budget", 0, "default per-request deadline budget for query requests without an "+server.BudgetHeader+" header (0 = none)")
	retryBackoff := fs.Duration("retry-backoff", cluster.DefaultRetryBackoff, "base delay before a failover retry, doubling with jitter per attempt (negative = off)")
	retryBackoffMax := fs.Duration("retry-backoff-max", cluster.DefaultMaxRetryBackoff, "cap on the exponential retry backoff")
	breakerThreshold := fs.Int("breaker-threshold", cluster.DefaultBreakerThreshold, "consecutive request failures before a shard's circuit breaker opens")
	breakerCooldown := fs.Duration("breaker-cooldown", cluster.DefaultBreakerCooldown, "how long an open breaker waits before letting a probe request through")
	traceSample := fs.Int("trace-sample", 0, "trace every Nth point query end to end, retrievable at /debug/traces (0 = off)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this extra debug-only address, e.g. \"localhost:6061\" (empty = off; never exposed on the serving listener)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	shards, err := parseShardSpec(*shardsSpec)
	if err != nil {
		return err
	}

	ms := cluster.NewMembership(*replicas, *vnodes)
	for _, sh := range shards {
		ms.Join(sh[0], sh[1])
	}
	hedgeDelay := *hedge
	if hedgeDelay == 0 {
		// RouterOptions treats 0 as "use the default"; an operator passing
		// -hedge 0 means off.
		hedgeDelay = -1
	}
	rt := cluster.NewRouter(ms, cluster.RouterOptions{
		HedgeDelay:       hedgeDelay,
		ID:               *id,
		DisableWire:      !*useWire,
		DefaultBudget:    *budget,
		RetryBackoff:     *retryBackoff,
		MaxRetryBackoff:  *retryBackoffMax,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		TraceSample:      *traceSample,
	})

	ctx, cancel := serveSignalContext()
	defer cancel()
	if err := startPprof(ctx, *pprofAddr, stdout); err != nil {
		return err
	}
	if *probe > 0 {
		ms.StartProber(ctx, *probe, &http.Client{Timeout: *probe})
		ms.ProbeAll(ctx, &http.Client{Timeout: *probe}) // seed health before the first request
	}
	if *hotExtra > 0 && *hotInterval > 0 {
		go func() {
			t := time.NewTicker(*hotInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n, err := rt.PromoteHot(ctx, *hotExtra, *hotMinHits); n > 0 || err != nil {
						fmt.Fprintf(stdout, "ftbfs: hot-key promotion: %d promoted (err=%v)\n", n, err)
					}
				}
			}
		}()
	}
	err = server.ServeDraining(ctx, *addr, rt, *drainGrace, func(bound string) {
		fmt.Fprintf(stdout, "ftbfs: routing on %s -> %d shards (replication=%d, healthy=%d)\n",
			bound, len(shards), *replicas, ms.HealthyCount())
		for _, sh := range shards {
			fmt.Fprintf(stdout, "  shard %s @ %s\n", sh[0], sh[1])
		}
		serveReady(bound)
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "ftbfs: router shut down cleanly")
	return nil
}
