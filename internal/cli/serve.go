package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"ftbfs"
	"ftbfs/internal/core"
	"ftbfs/internal/server"
	"ftbfs/internal/store"
	"ftbfs/internal/wire"
)

// serveSignalContext returns the context the serve command runs under; it is
// cancelled by SIGINT/SIGTERM. Tests replace it to drive shutdown.
var serveSignalContext = func() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// serveReady is called with the bound address once the listener is up; tests
// replace it to discover :0 ports.
var serveReady = func(addr string) {}

// readRootGraph reads a graph file (or stdin for "-") as the root package
// type the store registers.
func readRootGraph(path string) (*ftbfs.Graph, error) {
	var r io.Reader
	if path == "-" || path == "" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return ftbfs.ReadGraph(r)
}

func cmdServe(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dir := fs.String("dir", "", "persist directory (warm start + write-through); empty = memory only")
	capacity := fs.Int("cap", 128, "max structures resident in memory (0 = unlimited)")
	in := fs.String("in", "", "graph file to register at startup (text format)")
	sourcesSpec := fs.String("sources", "0", "comma-separated sources to pre-build for -in")
	epsSpec := fs.String("eps", "", "comma-separated ε grid to pre-build for -in (empty = none)")
	algName := fs.String("alg", "auto", "algorithm for pre-built structures")
	vertexSpec := fs.String("vertex-sources", "", "comma-separated sources to pre-build VERTEX-failure structures for -in (empty = none)")
	shard := fs.Bool("shard", false, "run as a cluster shard (identity in /healthz, /stats; route to it with `ftbfs route`)")
	wireAddr := fs.String("wire", "", "binary-protocol listen address, e.g. \":8090\" (empty = HTTP only); advertised via /readyz so routers discover it")
	id := fs.String("id", "", "node identity reported by /healthz and /stats (default: the bound address)")
	drainGrace := fs.Duration("drain-grace", 0, "on shutdown, keep serving with /readyz=503 this long so balancers stop routing here first")
	maxInflight := fs.Int("max-inflight", server.DefaultMaxInflight, "concurrent query/build requests served before queueing")
	maxQueued := fs.Int("max-queued", server.DefaultMaxQueued, "requests allowed to wait for a work slot before load shedding answers 503")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this extra debug-only address, e.g. \"localhost:6060\" (empty = off; never exposed on the serving listener)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	st, err := store.New(*capacity, *dir)
	if err != nil {
		return err
	}
	if *in != "" {
		g, err := readRootGraph(*in)
		if err != nil {
			return err
		}
		fp, err := st.AddGraph(g)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "registered graph %016x (n=%d m=%d)\n", fp, g.N(), g.M())
		if *epsSpec != "" {
			alg, err := core.ParseAlgorithm(*algName)
			if err != nil {
				return err
			}
			var reqs []store.Req
			for _, spart := range strings.Split(*sourcesSpec, ",") {
				src, err := strconv.Atoi(strings.TrimSpace(spart))
				if err != nil {
					return fmt.Errorf("bad source %q", spart)
				}
				for _, epart := range strings.Split(*epsSpec, ",") {
					eps, err := strconv.ParseFloat(strings.TrimSpace(epart), 64)
					if err != nil {
						return fmt.Errorf("bad eps %q", epart)
					}
					reqs = append(reqs, store.Req{Source: src, Eps: eps, Alg: alg})
				}
			}
			sts, err := st.GetOrBuildMany(context.Background(), fp, reqs)
			if err != nil {
				return err
			}
			for i, s := range sts {
				fmt.Fprintf(stdout, "pre-built s=%d eps=%g: |H|=%d backup=%d reinforced=%d\n",
					reqs[i].Source, reqs[i].Eps, s.Size(), s.BackupCount(), s.ReinforcedCount())
			}
		}
		if *vertexSpec != "" {
			for _, spart := range strings.Split(*vertexSpec, ",") {
				src, err := strconv.Atoi(strings.TrimSpace(spart))
				if err != nil {
					return fmt.Errorf("bad vertex source %q", spart)
				}
				vs, err := st.GetOrBuildVertex(context.Background(), fp, src)
				if err != nil {
					return err
				}
				fmt.Fprintf(stdout, "pre-built vertex s=%d: |H|=%d pairs=%d\n",
					src, vs.Size(), vs.Pairs())
			}
		}
	}

	ctx, cancel := serveSignalContext()
	defer cancel()
	if err := startPprof(ctx, *pprofAddr, stdout); err != nil {
		return err
	}
	srv := server.New(st)
	srv.SetWorkLimits(*maxInflight, *maxQueued)
	if *wireAddr != "" {
		ln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			return err
		}
		defer ln.Close()
		go func() { _ = wire.Serve(ctx, ln, srv) }()
		srv.SetWireAddr(ln.Addr().String())
		fmt.Fprintf(stdout, "ftbfs: wire protocol on %s\n", ln.Addr().String())
	}
	role := ""
	if *shard {
		role = "shard"
	}
	err = server.ServeDraining(ctx, *addr, srv, *drainGrace, func(bound string) {
		nodeID := *id
		if nodeID == "" {
			nodeID = bound
		}
		srv.SetIdentity(role, nodeID)
		if *shard {
			fmt.Fprintf(stdout, "ftbfs: shard %s serving on %s (graphs=%d, structures=%d)\n",
				nodeID, bound, st.Stats().Graphs, st.Len())
		} else {
			fmt.Fprintf(stdout, "ftbfs: serving on %s (graphs=%d, structures=%d)\n",
				bound, st.Stats().Graphs, st.Len())
		}
		serveReady(bound)
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "ftbfs: shut down cleanly")
	return nil
}
