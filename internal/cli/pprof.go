package cli

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// startPprof opens the opt-in profiling listener. The handlers go on their
// own mux and their own port, never the serving listener: profiling is an
// operator door, and the query surface must not grow /debug/pprof/* routes
// just because someone wants a CPU profile.
func startPprof(ctx context.Context, addr string, stdout io.Writer) error {
	if addr == "" {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(stdout, "ftbfs: pprof on %s (debug listener, keep it off the public network)\n", ln.Addr().String())
	return nil
}
