package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ftbfs/internal/wire"
)

// TestServeCommand drives the full subcommand: generate a graph, start the
// service with a persist directory and a pre-built structure, query it over
// HTTP, and shut it down through the (stubbed) signal context.
func TestServeCommand(t *testing.T) {
	dir := t.TempDir()
	graphFile := filepath.Join(dir, "g.txt")
	if _, _, code := run(t, "gen", "-family", "gnp", "-n", "40", "-p", "0.15", "-seed", "3", "-o", graphFile); code != 0 {
		t.Fatal("gen failed")
	}

	ctx, cancel := context.WithCancel(context.Background())
	oldCtx, oldReady := serveSignalContext, serveReady
	defer func() { serveSignalContext, serveReady = oldCtx, oldReady }()
	serveSignalContext = func() (context.Context, context.CancelFunc) {
		return ctx, func() {}
	}
	addrc := make(chan string, 1)
	serveReady = func(addr string) { addrc <- addr }

	var out bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- Main([]string{"serve", "-addr", "127.0.0.1:0",
			"-dir", filepath.Join(dir, "store"), "-cap", "4",
			"-in", graphFile, "-sources", "0", "-eps", "0.3"}, &out, os.Stderr)
	}()
	var addr string
	select {
	case addr = <-addrc:
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not come up")
	}

	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Store struct {
			Graphs     int `json:"graphs"`
			Structures int `json:"structures"`
		} `json:"store"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Store.Graphs != 1 || stats.Store.Structures != 1 {
		t.Fatalf("pre-build missing from /stats: %+v", stats)
	}

	// The pre-registered fingerprint is printed at startup; query through it.
	startup := out.String()
	var fp string
	for _, line := range strings.Split(startup, "\n") {
		if strings.HasPrefix(line, "registered graph ") {
			fp = strings.Fields(line)[2]
		}
	}
	if fp == "" {
		t.Fatalf("no fingerprint in startup output: %q", startup)
	}
	resp, err = http.Get(fmt.Sprintf("http://%s/dist?graph=%s&eps=0.3&v=5", addr, fp))
	if err != nil {
		t.Fatal(err)
	}
	var dr struct {
		Dist int `json:"dist"`
	}
	err = json.NewDecoder(resp.Body).Decode(&dr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/dist failed: %v (status %d)", err, resp.StatusCode)
	}
	if dr.Dist < 0 {
		t.Fatalf("vertex 5 unreachable in a connected graph (dist %d)", dr.Dist)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serve exited %d; output:\n%s", code, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down")
	}
	if !strings.Contains(out.String(), "shut down cleanly") {
		t.Fatalf("missing graceful-shutdown message in %q", out.String())
	}

	// The persist directory survived: it holds the graph and the structure.
	files, err := filepath.Glob(filepath.Join(dir, "store", "*"))
	if err != nil || len(files) != 2 {
		t.Fatalf("persist dir contents: %v (%v)", files, err)
	}
}

func TestServeBadFlags(t *testing.T) {
	if _, _, code := run(t, "serve", "-in", "/nonexistent/graph.txt"); code != 1 {
		t.Fatal("missing graph file accepted")
	}
	if _, _, code := run(t, "serve", "-bogus"); code != 1 {
		t.Fatal("bad flag accepted")
	}
}

// TestServeWireFlag checks that -wire opens a binary-protocol listener,
// advertises it on /readyz, and answers a point query identically to HTTP.
func TestServeWireFlag(t *testing.T) {
	dir := t.TempDir()
	graphFile := filepath.Join(dir, "g.txt")
	if _, _, code := run(t, "gen", "-family", "gnp", "-n", "30", "-p", "0.2", "-seed", "7", "-o", graphFile); code != 0 {
		t.Fatal("gen failed")
	}

	ctx, cancel := context.WithCancel(context.Background())
	oldCtx, oldReady := serveSignalContext, serveReady
	defer func() { serveSignalContext, serveReady = oldCtx, oldReady }()
	serveSignalContext = func() (context.Context, context.CancelFunc) { return ctx, func() {} }
	addrc := make(chan string, 1)
	serveReady = func(addr string) { addrc <- addr }

	var out bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- Main([]string{"serve", "-addr", "127.0.0.1:0", "-wire", "127.0.0.1:0",
			"-in", graphFile, "-sources", "0", "-eps", "0.3"}, &out, os.Stderr)
	}()
	var addr string
	select {
	case addr = <-addrc:
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not come up")
	}

	// /readyz advertises the wire address.
	resp, err := http.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Wire string `json:"wire"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if err != nil || ready.Wire == "" {
		t.Fatalf("/readyz did not advertise a wire address: %v %+v", err, ready)
	}

	var fp uint64
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(line, "registered graph ") {
			if _, err := fmt.Sscanf(strings.Fields(line)[2], "%x", &fp); err != nil {
				t.Fatalf("bad fingerprint line %q: %v", line, err)
			}
		}
	}

	wc := wire.NewClient(ready.Wire, 1)
	defer wc.Close()
	d, werr, err := wc.Point(context.Background(), wire.TDist, &wire.PointQuery{
		FP: fp, EpsBits: math.Float64bits(0.3), Source: 0, V: 5, A: -1, B: -1,
	})
	if err != nil || werr != nil {
		t.Fatalf("wire dist: %v %v", err, werr)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/dist?graph=%016x&eps=0.3&v=5", addr, fp))
	if err != nil {
		t.Fatal(err)
	}
	var dr struct {
		Dist int `json:"dist"`
	}
	err = json.NewDecoder(resp.Body).Decode(&dr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/dist failed: %v (status %d)", err, resp.StatusCode)
	}
	if int(d) != dr.Dist {
		t.Fatalf("wire dist %d != HTTP dist %d", d, dr.Dist)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serve exited %d; output:\n%s", code, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down")
	}
}

// TestServePprofFlag checks that -pprof opens the profiling handlers on
// their own debug listener and that the serving listener never grows them.
func TestServePprofFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	oldCtx, oldReady := serveSignalContext, serveReady
	defer func() { serveSignalContext, serveReady = oldCtx, oldReady }()
	serveSignalContext = func() (context.Context, context.CancelFunc) { return ctx, func() {} }
	addrc := make(chan string, 1)
	serveReady = func(addr string) { addrc <- addr }

	var out bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- Main([]string{"serve", "-addr", "127.0.0.1:0", "-pprof", "127.0.0.1:0"}, &out, os.Stderr)
	}()
	var addr string
	select {
	case addr = <-addrc:
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not come up")
	}

	// startPprof printed its bound address before the serving listener came up.
	var pprofAddr string
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(line, "ftbfs: pprof on ") {
			pprofAddr = strings.Fields(line)[3]
		}
	}
	if pprofAddr == "" {
		t.Fatalf("no pprof address in output:\n%s", out.String())
	}
	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug listener /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("the serving listener answered /debug/pprof/ — profiling must stay on the debug listener")
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serve exited %d; output:\n%s", code, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down")
	}
}
