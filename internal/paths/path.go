// Package paths provides path values (vertex sequences) and the exponential
// segment decomposition of shortest paths used by Sub-Phase S2.2 of the
// construction (Eq. 5 of the paper).
package paths

import (
	"fmt"

	"ftbfs/internal/graph"
)

// Path is a walk given as its vertex sequence. Paths are directed away from
// the source (paper convention).
type Path []int32

// Len returns the length of the path in edges.
func (p Path) Len() int { return len(p) - 1 }

// First returns the first vertex.
func (p Path) First() int32 { return p[0] }

// Last returns the last vertex.
func (p Path) Last() int32 { return p[len(p)-1] }

// LastEdge returns the final edge of the path as (penultimate, last). It
// panics on paths with no edge — matching the paper's LastE(P), which is
// only applied to nonempty paths.
func (p Path) LastEdge() graph.Edge {
	if len(p) < 2 {
		panic("paths: LastEdge of a path with no edges")
	}
	return graph.Edge{U: p[len(p)-2], V: p[len(p)-1]}
}

// Sub returns the subpath P[p[i], p[j]] (inclusive vertex indices).
func (p Path) Sub(i, j int) Path {
	if i < 0 || j >= len(p) || i > j {
		panic(fmt.Sprintf("paths: bad subpath [%d,%d] of length-%d path", i, j, len(p)))
	}
	return p[i : j+1]
}

// Concat returns a ◦ b; the last vertex of a must equal the first of b.
func Concat(a, b Path) Path {
	if len(a) == 0 {
		return append(Path(nil), b...)
	}
	if len(b) == 0 {
		return append(Path(nil), a...)
	}
	if a.Last() != b.First() {
		panic(fmt.Sprintf("paths: cannot concatenate: %d != %d", a.Last(), b.First()))
	}
	out := make(Path, 0, len(a)+len(b)-1)
	out = append(out, a...)
	out = append(out, b[1:]...)
	return out
}

// Reverse returns the reversed path as a new slice.
func (p Path) Reverse() Path {
	out := make(Path, len(p))
	for i, v := range p {
		out[len(p)-1-i] = v
	}
	return out
}

// Divergence returns the index of the first divergence point of a from b:
// the largest i such that a[:i+1] == b[:i+1] — i.e. a[i] is the last common
// prefix vertex (the paper's divergence point when the paths then split).
// It returns -1 when the paths have no common prefix at all.
func Divergence(a, b Path) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := -1
	for k := 0; k < n && a[k] == b[k]; k++ {
		i = k
	}
	return i
}

// ValidateOn checks that p is a walk in g (every consecutive pair is an
// edge) with no repeated vertices; used by tests and the exact verifier.
func (p Path) ValidateOn(g *graph.Graph) error {
	seen := make(map[int32]bool, len(p))
	for i, v := range p {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("paths: vertex %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("paths: repeated vertex %d", v)
		}
		seen[v] = true
		if i > 0 && !g.HasEdge(int(p[i-1]), int(v)) {
			return fmt.Errorf("paths: non-edge %d-%d", p[i-1], v)
		}
	}
	return nil
}
