package paths

import "fmt"

// SegDecomp is the exponential decomposition of a length-k shortest path
// π(s,v) into k' = ⌊log₂ k⌋ subsegments of geometrically decreasing length
// (Sub-Phase S2.2, Eq. 5): the j'th boundary sits at distance
// ⌈Σ_{ℓ≤j} k/2^ℓ⌉ = k − ⌊k/2^j⌋ from s. The final segment is extended to
// cover the residual edge so that the segments partition all k edges.
//
// Edges are addressed by their index a ∈ [0,k): edge a connects the vertices
// at depth a and a+1 along the path (equivalently a = depth(child)−1).
type SegDecomp struct {
	K      int   // path length in edges
	Bounds []int // Bounds[0]=0 < ... < Bounds[len-1]=K; segment j covers [Bounds[j], Bounds[j+1])
}

// DecomposeLen builds the decomposition for a path of k edges (k >= 0).
func DecomposeLen(k int) SegDecomp {
	return DecomposeLenInto(k, nil)
}

// DecomposeLenInto is DecomposeLen recycling bounds' backing array for the
// Bounds slice, so repeated decompositions (one per terminal in Phase S2) stay
// allocation-free once the buffer has grown to ⌊log₂ k⌋+2 entries.
func DecomposeLenInto(k int, bounds []int) SegDecomp {
	if k < 0 {
		panic("paths: negative path length")
	}
	d := SegDecomp{K: k, Bounds: append(bounds[:0], 0)}
	if k == 0 {
		return d
	}
	for j := 1; ; j++ {
		b := k - (k >> uint(j)) // = ⌈k − k/2^j⌉ for integral k
		if k>>uint(j) == 0 || b >= k {
			break
		}
		if b > d.Bounds[len(d.Bounds)-1] {
			d.Bounds = append(d.Bounds, b)
		}
		if 1<<uint(j+1) > k { // j reached ⌊log₂ k⌋
			break
		}
	}
	d.Bounds = append(d.Bounds, k)
	return d
}

// NumSegments returns the number of segments (≥1 for k≥1).
func (d SegDecomp) NumSegments() int { return len(d.Bounds) - 1 }

// EdgeRange returns the half-open edge-index range [lo,hi) of segment j.
func (d SegDecomp) EdgeRange(j int) (lo, hi int) {
	return d.Bounds[j], d.Bounds[j+1]
}

// SegmentOfEdge returns the segment index containing edge index a.
func (d SegDecomp) SegmentOfEdge(a int) int {
	if a < 0 || a >= d.K {
		panic(fmt.Sprintf("paths: edge index %d out of [0,%d)", a, d.K))
	}
	lo, hi := 0, d.NumSegments()-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.Bounds[mid+1] <= a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// TailLen returns the total number of edges strictly below segment j —
// the quantity Σ_{j'>j} |π_{j'}| that Lemma 4.14 compares against |π_j|/2.
func (d SegDecomp) TailLen(j int) int { return d.K - d.Bounds[j+1] }

// SegLen returns the length of segment j in edges.
func (d SegDecomp) SegLen(j int) int { return d.Bounds[j+1] - d.Bounds[j] }
