package paths

import (
	"testing"
	"testing/quick"

	"ftbfs/internal/graph"
)

func TestPathBasics(t *testing.T) {
	p := Path{0, 1, 2, 3}
	if p.Len() != 3 || p.First() != 0 || p.Last() != 3 {
		t.Fatal("basics wrong")
	}
	if e := p.LastEdge(); e.U != 2 || e.V != 3 {
		t.Fatalf("LastEdge=%v", e)
	}
	sub := p.Sub(1, 2)
	if len(sub) != 2 || sub[0] != 1 || sub[1] != 2 {
		t.Fatalf("Sub=%v", sub)
	}
	r := p.Reverse()
	if r[0] != 3 || r[3] != 0 {
		t.Fatalf("Reverse=%v", r)
	}
}

func TestLastEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LastEdge on single-vertex path should panic")
		}
	}()
	Path{7}.LastEdge()
}

func TestConcat(t *testing.T) {
	a := Path{0, 1, 2}
	b := Path{2, 5, 6}
	c := Concat(a, b)
	want := Path{0, 1, 2, 5, 6}
	if len(c) != len(want) {
		t.Fatalf("Concat=%v", c)
	}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("Concat=%v want %v", c, want)
		}
	}
	if got := Concat(nil, b); len(got) != len(b) {
		t.Fatal("Concat with empty lhs")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Concat should panic")
		}
	}()
	Concat(Path{0, 1}, Path{2, 3})
}

func TestDivergence(t *testing.T) {
	if Divergence(Path{0, 1, 2, 3}, Path{0, 1, 5, 6}) != 1 {
		t.Fatal("divergence at index 1 expected")
	}
	if Divergence(Path{0, 1}, Path{0, 1, 2}) != 1 {
		t.Fatal("prefix case: last common index")
	}
	if Divergence(Path{3}, Path{4}) != -1 {
		t.Fatal("no common prefix → -1")
	}
}

func TestValidateOn(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddPath(0, 1, 2, 3)
	g := b.Graph()
	if err := (Path{0, 1, 2}).ValidateOn(g); err != nil {
		t.Fatal(err)
	}
	if (Path{0, 2}).ValidateOn(g) == nil {
		t.Fatal("non-edge accepted")
	}
	if (Path{0, 1, 0}).ValidateOn(g) == nil {
		t.Fatal("repeated vertex accepted")
	}
	if (Path{0, 9}).ValidateOn(g) == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestDecomposeSmall(t *testing.T) {
	d := DecomposeLen(0)
	if d.NumSegments() != 0 {
		t.Fatalf("k=0 gives %d segments", d.NumSegments())
	}
	d = DecomposeLen(1)
	if d.NumSegments() != 1 || d.Bounds[1] != 1 {
		t.Fatalf("k=1: %+v", d)
	}
	d = DecomposeLen(8)
	// boundaries at 8-(8>>j): j=1→4, j=2→6, j=3→7, then final 8
	want := []int{0, 4, 6, 7, 8}
	if len(d.Bounds) != len(want) {
		t.Fatalf("k=8 bounds=%v", d.Bounds)
	}
	for i := range want {
		if d.Bounds[i] != want[i] {
			t.Fatalf("k=8 bounds=%v want %v", d.Bounds, want)
		}
	}
}

// Eq. (5)-style invariants for every k: segments partition [0,k); the first
// segment holds about half the edges; each tail is at least half the
// preceding segment (up to the +1 slack of integer rounding absorbed by
// extending the final segment).
func TestDecomposeInvariants(t *testing.T) {
	f := func(kk uint16) bool {
		k := int(kk%5000) + 1
		d := DecomposeLen(k)
		if d.Bounds[0] != 0 || d.Bounds[len(d.Bounds)-1] != k {
			return false
		}
		total := 0
		for j := 0; j < d.NumSegments(); j++ {
			l := d.SegLen(j)
			if l <= 0 {
				return false
			}
			total += l
			if j+1 < d.NumSegments() {
				// tail ≥ (seg-1)/2: geometric halving with rounding slack
				if 2*d.TailLen(j)+1 < l-1 {
					return false
				}
			}
		}
		if total != k {
			return false
		}
		// first segment ≈ k/2
		if d.SegLen(0) != k-(k>>1) {
			return false
		}
		// number of segments is ≤ ⌊log2 k⌋ + 1
		lg := 0
		for 1<<uint(lg+1) <= k {
			lg++
		}
		return d.NumSegments() <= lg+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentOfEdgeConsistent(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7, 8, 9, 100, 1023, 1024} {
		d := DecomposeLen(k)
		for a := 0; a < k; a++ {
			j := d.SegmentOfEdge(a)
			lo, hi := d.EdgeRange(j)
			if a < lo || a >= hi {
				t.Fatalf("k=%d edge %d assigned segment %d [%d,%d)", k, a, j, lo, hi)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range SegmentOfEdge should panic")
		}
	}()
	DecomposeLen(5).SegmentOfEdge(5)
}
