package batch

import (
	"bytes"
	"strings"
	"testing"

	"ftbfs/internal/core"
	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
)

func encode(t *testing.T, st *core.Structure) string {
	t.Helper()
	var buf bytes.Buffer
	if err := core.EncodeStructure(&buf, st); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.String()
}

// TestBuildMatchesSequential is the orchestrator's contract: for a mixed
// request list (several sources, several ε, several algorithms) the batch
// output is byte-identical to one sequential core.Build per request, for
// every worker count.
func TestBuildMatchesSequential(t *testing.T) {
	g := gen.RandomConnected(90, 180, 11)
	reqs := []Request{
		{Source: 0, Eps: 0.2},
		{Source: 0, Eps: 0.3},
		{Source: 0, Eps: 0}, // tree branch
		{Source: 7, Eps: 0.25},
		{Source: 7, Eps: 1}, // baseline branch
		{Source: 23, Eps: 0.4},
		{Source: 23, Eps: 0.15, Opt: core.Options{SkipPhase1: true}},
		{Source: 41, Eps: 0.3, Opt: core.Options{Algorithm: core.Greedy}},
		{Source: 41, Eps: 0.3, Opt: core.Options{Algorithm: core.Baseline}},
	}
	want := make([]string, len(reqs))
	for i, r := range reqs {
		st, err := core.Build(g, r.Source, r.Eps, r.Opt)
		if err != nil {
			t.Fatalf("sequential build %d: %v", i, err)
		}
		want[i] = encode(t, st)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		sts, err := Build(g, reqs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(sts) != len(reqs) {
			t.Fatalf("workers=%d: %d results for %d requests", workers, len(sts), len(reqs))
		}
		for i, st := range sts {
			if got := encode(t, st); got != want[i] {
				t.Fatalf("workers=%d request %d: batch structure differs from sequential Build", workers, i)
			}
			if viol := core.Verify(st, 5); len(viol) > 0 {
				t.Fatalf("workers=%d request %d: contract violated: %v", workers, i, viol)
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	g := gen.Cycle(12)
	if _, err := Build(g, []Request{{Source: 99, Eps: 0.3}}, Options{}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := Build(g, []Request{{Source: 0, Eps: 0.3}, {Source: 1, Eps: 2}}, Options{}); err == nil {
		t.Fatal("ε > 1 accepted")
	} else if !strings.Contains(err.Error(), "request 1") {
		t.Fatalf("error does not name the failing request: %v", err)
	}
	unfrozen := graph.New(4)
	if _, err := Build(unfrozen, []Request{{Source: 0, Eps: 0.3}}, Options{}); err == nil {
		t.Fatal("unfrozen graph accepted")
	}
	if sts, err := Build(g, nil, Options{}); err != nil || sts != nil {
		t.Fatalf("empty batch: got (%v, %v), want (nil, nil)", sts, err)
	}
}

func TestCostSweepMatchesCore(t *testing.T) {
	lb := gen.LowerBoundParams(3, 4, 8)
	grid := []float64{0, 0.2, 0.35, 1}
	wantPts, wantBest, err := core.CostSweep(lb.G, lb.S, grid, 1, 25, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotPts, gotBest, err := CostSweep(lb.G, lb.S, grid, 1, 25, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if gotBest != wantBest || len(gotPts) != len(wantPts) {
		t.Fatalf("sweep mismatch: best %d vs %d, len %d vs %d", gotBest, wantBest, len(gotPts), len(wantPts))
	}
	for i := range gotPts {
		if gotPts[i] != wantPts[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, gotPts[i], wantPts[i])
		}
	}
}

// TestWorkspaceReuseAcrossGraphs exercises the per-worker workspace and
// engine recycling on graphs of different sizes in one batch — buffers must
// regrow safely and results stay exact.
func TestWorkspaceReuseAcrossGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.RandomConnected(40, 70, 3),
		gen.RandomConnected(120, 260, 5),
	} {
		reqs := []Request{
			{Source: 0, Eps: 0.2}, {Source: 0, Eps: 0.45},
			{Source: 1, Eps: 0.3}, {Source: 2, Eps: 0.25},
		}
		sts, err := Build(g, reqs, Options{Workers: 1}) // one worker: one engine+workspace reused for all
		if err != nil {
			t.Fatal(err)
		}
		for i, st := range sts {
			want, err := core.Build(g, reqs[i].Source, reqs[i].Eps, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if encode(t, st) != encode(t, want) {
				t.Fatalf("request %d differs after workspace reuse", i)
			}
		}
	}
}
