// Package batch builds many FT-BFS structures over one shared frozen graph:
// the multi-request orchestrator behind ftbfs.BuildBatch. Real deployments of
// the (b, r) tradeoff — sensitivity sweeps over ε, cost planning across price
// ratios, multi-source surveillance networks — need dozens of structures on
// the same network, and a naive loop of Build calls recomputes the canonical
// BFS tree, the Fact 3.3 decomposition, and the whole Phase S0
// replacement-path enumeration once per request.
//
// The orchestrator instead groups the requests by source and dispatches the
// groups to a worker pool. Each worker owns one replacement.Engine — recycled
// between sources via Engine.Reset, so the per-failure BFS scratch is
// allocated once per worker, not once per request — and one core.Workspace
// that keeps the Phase S2 hot path allocation-free. Within a source group the
// canonical trees and the memoised Phase S0 pairs are computed once and
// shared by every ε, and core.BuildGroup runs a single reinforcement sweep
// for the whole group. Every structure produced is byte-identical (under
// core.EncodeStructure) to the one a sequential core.Build would return.
package batch

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ftbfs/internal/core"
	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
)

// Request names one structure to build: a source, a tradeoff parameter and
// the per-build options (algorithm, ablations). Opt.Workers and Opt.Workspace
// are managed by the orchestrator and ignored if set.
type Request struct {
	Source int
	Eps    float64
	Opt    core.Options
}

// Options tunes a batch run.
type Options struct {
	// Workers is the size of the worker pool; ≤ 0 means GOMAXPROCS. The
	// unit of parallelism is the source group (requests sharing a source
	// are built by one worker so they can share trees, pairs and the
	// reinforcement sweep).
	Workers int
}

// Build constructs one structure per request over the shared frozen graph.
// Results are returned in request order; the first failing request aborts the
// batch with its error. The output is deterministic: independent of the
// worker count and byte-identical to sequential core.Build calls.
func Build(g *graph.Graph, reqs []Request, opt Options) ([]*core.Structure, error) {
	if !g.Frozen() {
		return nil, fmt.Errorf("batch: graph must be frozen")
	}
	if len(reqs) == 0 {
		return nil, nil
	}
	for i, r := range reqs {
		if r.Source < 0 || r.Source >= g.N() {
			return nil, fmt.Errorf("batch: request %d: source %d out of range [0,%d)", i, r.Source, g.N())
		}
		if err := core.ValidateBuild(r.Eps, r.Opt); err != nil {
			return nil, fmt.Errorf("batch: request %d (source %d, ε=%g): %w", i, r.Source, r.Eps, err)
		}
	}

	// Group request indices by source, keeping sources in first-appearance
	// order and requests in submission order within each group.
	groupOf := make(map[int]int)
	var groups [][]int // request indices per source group
	var sources []int
	for i, r := range reqs {
		gi, ok := groupOf[r.Source]
		if !ok {
			gi = len(groups)
			groupOf[r.Source] = gi
			groups = append(groups, nil)
			sources = append(sources, r.Source)
		}
		groups[gi] = append(groups[gi], i)
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}

	out := make([]*core.Structure, len(reqs))
	errs := make([]error, len(reqs))
	var next atomic.Int64
	var failed atomic.Bool // a group failed: stop claiming new groups
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var en *replacement.Engine // recycled across this worker's sources
			ws := core.NewWorkspace()
			for {
				gi := int(next.Add(1) - 1)
				if gi >= len(groups) || failed.Load() {
					return
				}
				s := sources[gi]
				if en == nil {
					en = replacement.NewEngine(g, s)
				} else {
					en.Reset(s)
				}
				idxs := groups[gi]
				items := make([]core.GroupItem, len(idxs))
				for k, ri := range idxs {
					o := reqs[ri].Opt
					o.Workers = 0
					o.Workspace = ws
					items[k] = core.GroupItem{Eps: reqs[ri].Eps, Opt: o}
				}
				sts, err := core.BuildGroup(en, items)
				if err != nil {
					// attribute the failure to the request whose item broke
					ri := idxs[0]
					var ie *core.ItemError
					if errors.As(err, &ie) {
						ri = idxs[ie.Item]
						err = ie.Err
					}
					errs[ri] = err
					failed.Store(true)
					continue
				}
				for k, ri := range idxs {
					out[ri] = sts[k]
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("batch: request %d (source %d, ε=%g): %w", i, reqs[i].Source, reqs[i].Eps, err)
		}
	}
	return out, nil
}

// CostSweep is core.CostSweep running through the batch orchestrator: one
// structure per ε in the grid, all sharing the source's trees, Phase S0 pairs
// and reinforcement sweep. It returns the priced sweep and the index of the
// cheapest point.
func CostSweep(g *graph.Graph, s int, epsGrid []float64, backupPrice, reinforcePrice float64, opt Options) ([]core.CostPoint, int, error) {
	reqs := make([]Request, len(epsGrid))
	for i, eps := range epsGrid {
		reqs[i] = Request{Source: s, Eps: eps}
	}
	sts, err := Build(g, reqs, opt)
	if err != nil {
		return nil, -1, err
	}
	points := make([]core.CostPoint, 0, len(epsGrid))
	best := -1
	for i, st := range sts {
		cp := core.CostPoint{
			Eps:        epsGrid[i],
			Backup:     st.BackupCount(),
			Reinforced: st.ReinforcedCount(),
			Cost:       st.Cost(backupPrice, reinforcePrice),
		}
		points = append(points, cp)
		if best == -1 || cp.Cost < points[best].Cost {
			best = len(points) - 1
		}
	}
	return points, best, nil
}
