package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestDeterministicStream proves the injector's whole point: two injectors
// with the same (plan, seed) produce the same fault sequence.
func TestDeterministicStream(t *testing.T) {
	plan, ok := Named("disk")
	if !ok {
		t.Fatal("disk plan missing from catalog")
	}
	h1 := New(plan, 42).StoreHooks()
	h2 := New(plan, 42).StoreHooks()
	if h1 == nil || h2 == nil {
		t.Fatal("disk plan produced no store hooks")
	}
	data := []byte("0123456789abcdef0123456789abcdef")
	for i := 0; i < 2000; i++ {
		e1, e2 := h1.BeforeWrite("p"), h2.BeforeWrite("p")
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("op %d: BeforeWrite diverged: %v vs %v", i, e1, e2)
		}
		s1, s2 := h1.BeforeSync("p"), h2.BeforeSync("p")
		if (s1 == nil) != (s2 == nil) {
			t.Fatalf("op %d: BeforeSync diverged: %v vs %v", i, s1, s2)
		}
		d1, r1 := h1.AfterRead("p", data, nil)
		d2, r2 := h2.AfterRead("p", data, nil)
		if (r1 == nil) != (r2 == nil) || !bytes.Equal(d1, d2) {
			t.Fatalf("op %d: AfterRead diverged", i)
		}
	}
}

// TestInjectedErrorsWrapSentinel checks every fabricated error is
// recognisable as injected.
func TestInjectedErrorsWrapSentinel(t *testing.T) {
	in := New(Plan{DiskWriteErrP: 1}, 1)
	h := in.StoreHooks()
	err := h.BeforeWrite("p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("BeforeWrite error %v does not wrap ErrInjected", err)
	}
	if in.Total() == 0 {
		t.Fatal("no faults counted")
	}
}

// TestNilInjectorPassthrough: a nil *Injector must wire through as a no-op.
func TestNilInjectorPassthrough(t *testing.T) {
	var in *Injector
	if in.StoreHooks() != nil {
		t.Fatal("nil injector produced store hooks")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	if got := in.Listener(ln, LayerWire); got != ln {
		t.Fatal("nil injector wrapped the listener")
	}
}

// TestCorruptionStaysOffHTTP: an HTTP-layer conn under the corrupt plan must
// deliver bytes verbatim (corruption is wire-only; truncation may kill the
// conn, so the echo tolerates transport errors — just never mangled bytes).
func TestCorruptionStaysOffHTTP(t *testing.T) {
	in := New(Plan{CorruptP: 1}, 7) // corrupt every op — if it applied
	addr, done := echoServer(t, in, LayerHTTP)
	defer done()
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	msg := []byte("the bytes must survive verbatim")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("HTTP-layer bytes mangled: %q", got)
	}
}

// TestWireCorruptionFires: the same plan on the wire layer must corrupt.
func TestWireCorruptionFires(t *testing.T) {
	in := New(Plan{CorruptP: 1}, 7)
	addr, done := echoServer(t, in, LayerWire)
	defer done()
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	msg := []byte("these bytes will not survive")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("wire-layer bytes survived a CorruptP=1 plan")
	}
	if in.Counts()["read-corrupt"]+in.Counts()["write-corrupt"] == 0 {
		t.Fatal("no corruption counted")
	}
}

// echoServer accepts one connection through the injector and echoes it.
func echoServer(t *testing.T, in *Injector, layer Layer) (addr string, done func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	wrapped := in.Listener(ln, layer)
	go func() {
		for {
			c, err := wrapped.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// TestCatalogComplete pins the plan names the CI matrix iterates.
func TestCatalogComplete(t *testing.T) {
	want := []string{"corrupt", "disk", "drops", "latency", "mixed", "resets", "stalls"}
	got := PlanNames()
	if len(got) != len(want) {
		t.Fatalf("PlanNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PlanNames() = %v, want %v", got, want)
		}
	}
}
