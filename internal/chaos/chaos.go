// Package chaos is a deterministic, seedable fault-injection layer for the
// serving plane. An Injector wraps net.Listener/net.Conn (for both the HTTP
// and binary-wire surfaces) and the store's disk I/O (store.IOHooks),
// injecting the failure modes a real deployment sees: latency spikes,
// dropped writes, connection resets, stalls, truncated or corrupted bytes,
// and write/fsync/read errors on the persist directory.
//
// Two properties make the injector usable as a differential-test harness
// rather than a fuzzer:
//
//   - Determinism: all randomness flows from one seeded generator, so a
//     failing run replays byte-for-byte from its (plan, seed) pair.
//   - Detectability: corruption is only injected where the stack carries
//     end-to-end integrity checks — wire frames (CRC-32C trailer) and store
//     records (slab checksum) — so a corrupted byte can surface as an error
//     or a retry, never as a silently wrong answer. The HTTP/JSON surface is
//     the unchecksummed compatibility path and therefore receives every
//     fault except corruption.
//
// cluster.StartLocal accepts an Injector via LocalOptions.Chaos, which makes
// any existing differential test runnable under a named fault plan (see
// Named for the catalog).
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ftbfs/internal/store"
)

// Layer tells the injector which serving surface a listener carries, so it
// can keep corruption off the unchecksummed HTTP surface.
type Layer int

const (
	// LayerHTTP carries HTTP/JSON: every fault except corruption.
	LayerHTTP Layer = iota
	// LayerWire carries the binary protocol, whose per-frame CRC makes
	// corrupted bytes detectable; all faults apply.
	LayerWire
)

// Plan is one named mix of fault probabilities. All probabilities are per
// I/O operation (per Read/Write call for connections, per record read/write
// for the disk hooks) and independent; the first fault whose roll hits wins
// the operation.
type Plan struct {
	Name string

	// Connection faults.
	LatencyP   float64       // delay the op by [LatencyMin, LatencyMax]
	LatencyMin time.Duration //
	LatencyMax time.Duration //
	DropP      float64       // swallow a write: report success, deliver nothing, poison the conn
	ResetP     float64       // close the conn abruptly mid-op
	StallP     float64       // hold the op for StallFor, then kill the conn
	StallFor   time.Duration //
	TruncateP  float64       // deliver only a prefix of the op's bytes, then kill the conn
	CorruptP   float64       // flip one bit in the op's bytes (wire layer only)

	// Disk faults, applied through store.IOHooks.
	DiskWriteErrP float64 // fail a record write before it starts
	DiskSyncErrP  float64 // fail the pre-rename fsync
	DiskReadErrP  float64 // fail a whole-file read
	DiskCorruptP  float64 // flip one bit in the bytes a read returns
	DiskTruncP    float64 // return only a prefix of the bytes a read returns
}

// ErrInjected is the sentinel wrapped by every error the injector
// fabricates, so tests can tell injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// Injector applies one Plan with one deterministic random stream. Safe for
// concurrent use; the shared generator is mutex-guarded, and the interleaving
// of concurrent requests is the only nondeterminism a test run keeps.
type Injector struct {
	plan Plan

	disabled atomic.Bool

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[string]uint64
}

// New returns an injector for plan whose random stream starts at seed.
func New(plan Plan, seed int64) *Injector {
	return &Injector{
		plan:   plan,
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[string]uint64),
	}
}

// Plan returns the plan the injector runs.
func (in *Injector) Plan() Plan { return in.plan }

// SetEnabled turns injection on or off (on from New). Chaos tests boot the
// cluster and build their fixtures with injection off, then arm the plan
// for the query phase — a fault during setup would abort the test before it
// tested anything. Disabled rolls consume nothing from the random stream.
func (in *Injector) SetEnabled(v bool) { in.disabled.Store(!v) }

// Counts snapshots how many faults of each kind have been injected —
// chaos tests assert on these to prove the plan actually fired.
func (in *Injector) Counts() map[string]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of injected faults across all kinds.
func (in *Injector) Total() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, v := range in.counts {
		n += v
	}
	return n
}

// roll draws one uniform sample and reports whether it lands under p,
// counting a hit under kind.
func (in *Injector) roll(p float64, kind string) bool {
	if p <= 0 || in.disabled.Load() {
		return false
	}
	in.mu.Lock()
	hit := in.rng.Float64() < p
	if hit {
		in.counts[kind]++
	}
	in.mu.Unlock()
	return hit
}

// dur draws a uniform duration in [lo, hi].
func (in *Injector) dur(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	in.mu.Lock()
	d := lo + time.Duration(in.rng.Int63n(int64(hi-lo)))
	in.mu.Unlock()
	return d
}

// intn draws a uniform int in [0, n).
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	v := in.rng.Intn(n)
	in.mu.Unlock()
	return v
}

// Listener wraps ln so every accepted connection injects the plan's
// connection faults. layer selects the fault set (corruption stays off
// LayerHTTP). A nil receiver returns ln unwrapped, so call sites can wire
// the injector through unconditionally.
func (in *Injector) Listener(ln net.Listener, layer Layer) net.Listener {
	if in == nil {
		return ln
	}
	return &chaosListener{Listener: ln, in: in, layer: layer}
}

type chaosListener struct {
	net.Listener
	in    *Injector
	layer Layer
}

func (l *chaosListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &chaosConn{Conn: c, in: l.in, layer: l.layer}, nil
}

// chaosConn injects per-operation faults on one accepted connection.
type chaosConn struct {
	net.Conn
	in    *Injector
	layer Layer

	mu       sync.Mutex
	poisoned bool // a dropped write desynced the stream; fail everything after
}

func (c *chaosConn) isPoisoned() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.poisoned
}

func (c *chaosConn) poison() {
	c.mu.Lock()
	c.poisoned = true
	c.mu.Unlock()
}

// injected fabricates one transport error.
func injected(kind string) error {
	return fmt.Errorf("chaos: injected %s: %w", kind, ErrInjected)
}

// before runs the fault schedule shared by reads and writes: latency, then
// reset, then stall. It returns a non-nil error when the op must fail.
func (c *chaosConn) before(op string) error {
	if c.isPoisoned() {
		return injected("poisoned conn (" + op + " after drop)")
	}
	p := &c.in.plan
	if c.in.roll(p.LatencyP, "latency") {
		time.Sleep(c.in.dur(p.LatencyMin, p.LatencyMax))
	}
	if c.in.roll(p.ResetP, "reset") {
		c.Conn.Close()
		return injected("reset")
	}
	if c.in.roll(p.StallP, "stall") {
		time.Sleep(p.StallFor)
		c.Conn.Close()
		return injected("stall")
	}
	return nil
}

func (c *chaosConn) Read(b []byte) (int, error) {
	if err := c.before("read"); err != nil {
		return 0, err
	}
	p := &c.in.plan
	n, err := c.Conn.Read(b)
	if n > 0 && err == nil {
		if c.in.roll(p.TruncateP, "read-truncate") {
			keep := 1 + c.in.intn(n)
			c.Conn.Close()
			return keep, nil // the close surfaces on the next read
		}
		if c.layer == LayerWire && c.in.roll(p.CorruptP, "read-corrupt") {
			i := c.in.intn(n)
			b[i] ^= 1 << uint(c.in.intn(8))
		}
	}
	return n, err
}

func (c *chaosConn) Write(b []byte) (int, error) {
	if err := c.before("write"); err != nil {
		return 0, err
	}
	p := &c.in.plan
	if c.in.roll(p.DropP, "drop") {
		// Report success, deliver nothing: the peer sees silence and must
		// save itself with its own deadline. Poisoning guarantees the stream
		// never resynchronises into a half-delivered state.
		c.poison()
		return len(b), nil
	}
	if c.in.roll(p.TruncateP, "write-truncate") {
		keep := 1 + c.in.intn(len(b))
		c.Conn.Write(b[:keep])
		c.Conn.Close()
		return keep, injected("write truncated")
	}
	if c.layer == LayerWire && c.in.roll(p.CorruptP, "write-corrupt") {
		mangled := make([]byte, len(b))
		copy(mangled, b)
		i := c.in.intn(len(mangled))
		mangled[i] ^= 1 << uint(c.in.intn(8))
		return c.Conn.Write(mangled)
	}
	return c.Conn.Write(b)
}

// StoreHooks returns disk-fault hooks implementing the plan, for
// store.SetIOHooks. A nil receiver (or a plan without disk faults) returns
// nil, which the store treats as "no hooks".
func (in *Injector) StoreHooks() *store.IOHooks {
	if in == nil {
		return nil
	}
	p := &in.plan
	if p.DiskWriteErrP <= 0 && p.DiskSyncErrP <= 0 && p.DiskReadErrP <= 0 && p.DiskCorruptP <= 0 && p.DiskTruncP <= 0 {
		return nil
	}
	return &store.IOHooks{
		BeforeWrite: func(path string) error {
			if in.roll(p.DiskWriteErrP, "disk-write-err") {
				return injected("disk write error")
			}
			return nil
		},
		BeforeSync: func(path string) error {
			if in.roll(p.DiskSyncErrP, "disk-sync-err") {
				return injected("fsync error")
			}
			return nil
		},
		AfterRead: func(path string, data []byte, err error) ([]byte, error) {
			if err != nil {
				return data, err
			}
			if in.roll(p.DiskReadErrP, "disk-read-err") {
				return nil, injected("disk read error")
			}
			if len(data) > 0 && in.roll(p.DiskTruncP, "disk-read-trunc") {
				return data[:in.intn(len(data))], nil
			}
			if len(data) > 0 && in.roll(p.DiskCorruptP, "disk-read-corrupt") {
				mangled := make([]byte, len(data))
				copy(mangled, data)
				i := in.intn(len(mangled))
				mangled[i] ^= 1 << uint(in.intn(8))
				return mangled, nil
			}
			return data, nil
		},
	}
}

// plans is the named fault-plan catalog. Probabilities are tuned so mixed
// traffic mostly succeeds — the point is exercising the recovery paths
// (retries, breakers, budgets, rebuild fallbacks) under steady fire, not
// drowning the cluster.
var plans = map[string]Plan{
	"latency": {
		Name: "latency", LatencyP: 0.25, LatencyMin: 2 * time.Millisecond, LatencyMax: 30 * time.Millisecond,
	},
	"drops": {
		Name: "drops", DropP: 0.04,
	},
	"resets": {
		Name: "resets", ResetP: 0.05,
	},
	"stalls": {
		Name: "stalls", StallP: 0.02, StallFor: 250 * time.Millisecond,
	},
	"corrupt": {
		Name: "corrupt", CorruptP: 0.05, TruncateP: 0.01,
	},
	"disk": {
		Name: "disk", DiskWriteErrP: 0.15, DiskSyncErrP: 0.1, DiskReadErrP: 0.1, DiskCorruptP: 0.1, DiskTruncP: 0.05,
	},
	"mixed": {
		Name:     "mixed",
		LatencyP: 0.1, LatencyMin: time.Millisecond, LatencyMax: 10 * time.Millisecond,
		DropP: 0.01, ResetP: 0.02, StallP: 0.005, StallFor: 150 * time.Millisecond,
		TruncateP: 0.01, CorruptP: 0.02,
		DiskWriteErrP: 0.05, DiskSyncErrP: 0.05, DiskReadErrP: 0.03, DiskCorruptP: 0.03, DiskTruncP: 0.02,
	},
}

// Named returns the named plan from the catalog.
func Named(name string) (Plan, bool) {
	p, ok := plans[name]
	return p, ok
}

// PlanNames lists the catalog, sorted.
func PlanNames() []string {
	out := make([]string, 0, len(plans))
	for name := range plans {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
