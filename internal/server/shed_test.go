package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ftbfs/internal/store"
	"ftbfs/internal/wire"
)

// White-box load-shedding tests: the limiter is filled by hand (taking its
// slots directly) so the shed paths are driven deterministically instead of
// racing real traffic against the queue.

func newShedServer(t *testing.T) *Server {
	t.Helper()
	st, err := store.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	return New(st)
}

// fillSlots occupies n work slots, returning a release func.
func fillSlots(t *testing.T, s *Server, n int) func() {
	t.Helper()
	w := s.work.Load()
	for i := 0; i < n; i++ {
		select {
		case w.slots <- struct{}{}:
		default:
			t.Fatalf("could not occupy slot %d/%d", i, n)
		}
	}
	return func() {
		for i := 0; i < n; i++ {
			w.release()
		}
	}
}

func TestShedOverloadAnswers503(t *testing.T) {
	s := newShedServer(t)
	s.SetWorkLimits(1, 0) // one slot, no queue
	release := fillSlots(t, s, 1)
	defer release()

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dist?graph=0&source=0&eps=0.5&v=1", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503: %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("503 carried Retry-After %q, want \"1\"", ra)
	}
	if got := s.m.shed.Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// Health, readiness, and stats must keep answering on a saturated node —
	// shedding them would flap the cluster's routing.
	for _, path := range []string{"/healthz", "/readyz", "/stats"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s answered %d on a saturated server, want 200", path, rec.Code)
		}
	}
}

func TestShedQueuedRequestRunsWhenSlotFrees(t *testing.T) {
	s := newShedServer(t)
	s.SetWorkLimits(1, 4)
	release := fillSlots(t, s, 1)

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		// Bogus graph: reaching the handler (404 unknown graph) proves the
		// request queued and then acquired the freed slot.
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dist?graph=00000000000000ff&source=0&eps=0.5&v=1", nil))
		done <- rec
	}()
	time.Sleep(20 * time.Millisecond) // parked in the queue
	release()
	select {
	case rec := <-done:
		if rec.Code != http.StatusNotFound {
			t.Fatalf("queued request answered %d (%s), want 404 from the handler", rec.Code, rec.Body)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never ran after its slot freed")
	}
	if got := s.m.shed.Value(); got != 0 {
		t.Fatalf("shed counter = %d after a successfully-queued request, want 0", got)
	}
}

func TestShedQueuedPastBudgetAnswers504(t *testing.T) {
	s := newShedServer(t)
	s.SetWorkLimits(1, 4)
	release := fillSlots(t, s, 1)
	defer release()

	req := httptest.NewRequest(http.MethodGet, "/dist?graph=0&source=0&eps=0.5&v=1", nil)
	req.Header.Set(BudgetHeader, "30") // 30ms budget, spent in the queue
	rec := httptest.NewRecorder()
	start := time.Now()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("budget-exhausted queued request answered %d, want 504: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "queued") {
		t.Fatalf("504 body %q does not say the budget died in the queue", rec.Body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("budget of 30ms held the request %v", elapsed)
	}
	if got := s.m.shed.Value(); got != 0 {
		t.Fatalf("a budget expiry is a 504, not a shed: shed = %d", got)
	}
}

func TestShedDrainingFailsFastWithoutQueueing(t *testing.T) {
	s := newShedServer(t)
	s.SetWorkLimits(1, 64) // plenty of queue — draining must skip it anyway
	release := fillSlots(t, s, 1)
	defer release()
	s.SetDraining(true)
	defer s.SetDraining(false)

	start := time.Now()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/batch-query", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining saturated server answered %d, want 503", rec.Code)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("draining request queued for %v instead of failing fast", elapsed)
	}
}

// TestShedWirePaths: the binary protocol shares the HTTP limiter — a
// saturated node sheds wire points with an in-protocol 503 and fails every
// slot of a wire batch, and a budget spent queueing comes back 504.
func TestShedWirePaths(t *testing.T) {
	s := newShedServer(t)
	s.SetWorkLimits(1, 0)
	release := fillSlots(t, s, 1)
	defer release()

	_, werr := s.WirePoint(context.Background(), wire.TDist, &wire.PointQuery{})
	if werr == nil || werr.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated WirePoint = %v, want in-protocol 503", werr)
	}
	if got := s.m.shed.Value(); got != 1 {
		t.Fatalf("shed counter = %d after a wire shed, want 1", got)
	}

	dists, errs := s.WireBatch(context.Background(), make([]wire.BatchSlot, 3))
	if len(dists) != 3 || len(errs) != 3 {
		t.Fatalf("shed WireBatch shapes: %d dists, %d errs", len(dists), len(errs))
	}
	for i := range errs {
		if errs[i] == "" {
			t.Fatalf("shed WireBatch slot %d carries no error", i)
		}
		if dists[i] != -1 {
			t.Fatalf("shed WireBatch slot %d dist = %d, want -1", i, dists[i])
		}
	}

	// Queue-capable limiter + expired budget → 504, not 503.
	s.SetWorkLimits(1, 4)
	release2 := fillSlots(t, s, 1)
	defer release2()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, werr = s.WirePoint(ctx, wire.TDist, &wire.PointQuery{})
	if werr == nil || werr.Code != http.StatusGatewayTimeout {
		t.Fatalf("budget-exhausted WirePoint = %v, want in-protocol 504", werr)
	}
}
