package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ftbfs"
	"ftbfs/internal/store"
)

func testGraph(t testing.TB, n, extra int, seed int64) *ftbfs.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := ftbfs.NewGraph(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, rng.Intn(i))
	}
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

func newTestServer(t testing.TB) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(st))
	t.Cleanup(ts.Close)
	return ts, st
}

func postJSON(t testing.TB, url string, body, out any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("bad response %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

func getJSON(t testing.TB, url string, out any) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("bad response %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

// buildVia registers g with the service and returns its fingerprint.
func buildVia(t testing.TB, ts *httptest.Server, g *ftbfs.Graph, sources []int, eps float64) BuildResponse {
	t.Helper()
	var text bytes.Buffer
	if err := g.Write(&text); err != nil {
		t.Fatal(err)
	}
	var out BuildResponse
	code, body := postJSON(t, ts.URL+"/build", BuildRequest{
		Graph:   text.String(),
		Sources: sources,
		Eps:     []float64{eps},
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("/build: %d %s", code, body)
	}
	return out
}

func TestBuildEndpoint(t *testing.T) {
	ts, st := newTestServer(t)
	g := testGraph(t, 40, 60, 1)
	out := buildVia(t, ts, g, []int{0, 7}, 0.3)
	if out.N != 40 || len(out.Structures) != 2 {
		t.Fatalf("unexpected build response %+v", out)
	}
	for _, si := range out.Structures {
		if si.Size == 0 || si.Eps != 0.3 {
			t.Fatalf("bad structure info %+v", si)
		}
	}
	if st.Len() != 2 {
		t.Fatalf("store holds %d structures, want 2", st.Len())
	}

	// Inline n+edges form.
	var out2 BuildResponse
	code, body := postJSON(t, ts.URL+"/build", BuildRequest{
		N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}, &out2)
	if code != http.StatusOK || len(out2.Structures) != 1 {
		t.Fatalf("/build inline: %d %s", code, body)
	}

	// Error paths.
	if code, _ := postJSON(t, ts.URL+"/build", BuildRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty build accepted: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/build", BuildRequest{N: 3, Edges: [][2]int{{0, 0}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("self-loop accepted: %d", code)
	}
	// A tiny request must not be able to allocate gigabytes of adjacency.
	if code, _ := postJSON(t, ts.URL+"/build", BuildRequest{N: MaxBuildN + 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized n accepted: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/build", BuildRequest{Graph: "p 2000000000 1\ne 0 1\n"}, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized text-graph header accepted: %d", code)
	}
	resp, err := http.Get(ts.URL + "/build")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /build: %d", resp.StatusCode)
	}
}

func TestDistEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	g := testGraph(t, 50, 70, 2)
	out := buildVia(t, ts, g, []int{0}, 0.3)
	fp := out.Fingerprint

	// Ground truth from a serial oracle over an identical graph.
	g2 := testGraph(t, 50, 70, 2)
	st2, err := ftbfs.Build(g2, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	o := st2.Oracle()

	var dr distResponse
	code, body := getJSON(t, fmt.Sprintf("%s/dist?graph=%s&eps=0.3&v=17", ts.URL, fp), &dr)
	if code != http.StatusOK {
		t.Fatalf("/dist: %d %s", code, body)
	}
	if want := o.Dist(17); dr.Dist != want {
		t.Fatalf("/dist = %d, want %d", dr.Dist, want)
	}

	var fail [2]int
	for _, e := range st2.Edges() {
		if !st2.IsReinforced(e[0], e[1]) {
			fail = e
			break
		}
	}
	want, err := o.DistAvoiding(17, fail[0], fail[1])
	if err != nil {
		t.Fatal(err)
	}
	code, body = getJSON(t, fmt.Sprintf("%s/dist-avoiding?graph=%s&eps=0.3&v=17&fu=%d&fv=%d",
		ts.URL, fp, fail[0], fail[1]), &dr)
	if code != http.StatusOK {
		t.Fatalf("/dist-avoiding GET: %d %s", code, body)
	}
	if dr.Dist != want {
		t.Fatalf("/dist-avoiding = %d, want %d", dr.Dist, want)
	}

	// POST form of the same query.
	eps := 0.3
	v17 := 17
	code, body = postJSON(t, ts.URL+"/dist-avoiding", QueryRequest{
		Graph: fp, Eps: &eps, V: &v17, Fail: &fail,
	}, &dr)
	if code != http.StatusOK || dr.Dist != want {
		t.Fatalf("/dist-avoiding POST: %d %s (want dist %d)", code, body, want)
	}

	// Error paths: unknown graph (404: absent state, retryable by the
	// cluster router), missing failure, bad vertex.
	if code, _ := getJSON(t, ts.URL+"/dist?graph=ffffffffffffffff&v=1", nil); code != http.StatusNotFound {
		t.Fatalf("unknown graph: %d, want 404", code)
	}
	if code, _ := getJSON(t, fmt.Sprintf("%s/dist-avoiding?graph=%s&eps=0.3&v=1", ts.URL, fp), nil); code != http.StatusBadRequest {
		t.Fatalf("missing failed edge: %d", code)
	}
	if code, _ := getJSON(t, fmt.Sprintf("%s/dist?graph=%s&eps=0.3&v=999", ts.URL, fp), nil); code != http.StatusBadRequest {
		t.Fatalf("out-of-range vertex: %d", code)
	}
	// Half a failed edge must be rejected, not defaulted to vertex 0.
	if code, _ := getJSON(t, fmt.Sprintf("%s/dist-avoiding?graph=%s&eps=0.3&v=17&fu=%d", ts.URL, fp, fail[0]), nil); code != http.StatusBadRequest {
		t.Fatalf("fu without fv accepted: %d", code)
	}
	// So must a missing target vertex — it is not "vertex 0".
	if code, _ := getJSON(t, fmt.Sprintf("%s/dist?graph=%s&eps=0.3", ts.URL, fp), nil); code != http.StatusBadRequest {
		t.Fatalf("missing v accepted on /dist: %d", code)
	}
	if code, _ := getJSON(t, fmt.Sprintf("%s/dist-avoiding?graph=%s&eps=0.3&fu=%d&fv=%d", ts.URL, fp, fail[0], fail[1]), nil); code != http.StatusBadRequest {
		t.Fatalf("missing v accepted on /dist-avoiding: %d", code)
	}
	// NaN eps must be rejected, not become an unfindable map key (ParseFloat
	// accepts "NaN"; a NaN key would nil-deref in the store's single-flight).
	for _, bad := range []string{"NaN", "+Inf"} {
		if code, _ := getJSON(t, fmt.Sprintf("%s/dist-avoiding?graph=%s&eps=%s&v=17&fu=%d&fv=%d",
			ts.URL, fp, bad, fail[0], fail[1]), nil); code != http.StatusBadRequest {
			t.Fatalf("eps=%s accepted: %d", bad, code)
		}
	}
}

func TestBatchQueryMatchesSerial(t *testing.T) {
	ts, _ := newTestServer(t)
	g := testGraph(t, 60, 90, 3)
	out := buildVia(t, ts, g, []int{0}, 0.25)

	g2 := testGraph(t, 60, 90, 3)
	st2, err := ftbfs.Build(g2, 0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	o := st2.Oracle()

	eps := 0.25
	req := BatchQueryRequest{Graph: out.Fingerprint, Eps: &eps}
	var want []int
	for i, e := range st2.Edges() {
		if st2.IsReinforced(e[0], e[1]) {
			continue
		}
		v := (i * 11) % 60
		req.Queries = append(req.Queries, BatchQuery{V: v, Fail: e})
		d, err := o.DistAvoiding(v, e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, d)
	}
	var resp BatchQueryResponse
	code, body := postJSON(t, ts.URL+"/batch-query", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("/batch-query: %d %s", code, body)
	}
	if len(resp.Dists) != len(want) {
		t.Fatalf("got %d dists, want %d", len(resp.Dists), len(want))
	}
	if resp.Errors != nil {
		t.Fatalf("fully-valid batch carries error slots: %v", resp.Errors)
	}
	for i := range want {
		if resp.Dists[i] != want[i] {
			t.Fatalf("batch query %d: got %d, want %d", i, resp.Dists[i], want[i])
		}
	}
	if code, _ := postJSON(t, ts.URL+"/batch-query", BatchQueryRequest{Graph: out.Fingerprint}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch accepted: %d", code)
	}
}

// TestBatchQueryPartialErrors drives the per-query error-slot contract: one
// bad query must not fail the batch, and a batch may span several structures
// with per-query addressing.
func TestBatchQueryPartialErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	g := testGraph(t, 50, 70, 6)
	out := buildVia(t, ts, g, []int{0, 3}, 0.3)

	g2 := testGraph(t, 50, 70, 6)
	st0, err := ftbfs.Build(g2, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	g3 := testGraph(t, 50, 70, 6)
	st3, err := ftbfs.Build(g3, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var fail [2]int
	for _, e := range st0.Edges() {
		if !st0.IsReinforced(e[0], e[1]) {
			fail = e
			break
		}
	}
	want0, err := st0.Oracle().DistAvoiding(17, fail[0], fail[1])
	if err != nil {
		t.Fatal(err)
	}
	var fail3 [2]int
	for _, e := range st3.Edges() {
		if !st3.IsReinforced(e[0], e[1]) {
			fail3 = e
			break
		}
	}
	want3, err := st3.Oracle().DistAvoiding(9, fail3[0], fail3[1])
	if err != nil {
		t.Fatal(err)
	}

	eps := 0.3
	src3 := 3
	req := BatchQueryRequest{Graph: out.Fingerprint, Eps: &eps, Queries: []BatchQuery{
		{V: 17, Fail: fail},                           // valid, default structure (source 0)
		{V: 999, Fail: fail},                          // out-of-range target
		{V: 9, Source: &src3, Fail: fail3},            // valid, per-query source override
		{V: 5, Fail: [2]int{0, 0}},                    // not an edge
		{V: 1, Graph: "ffffffffffffffff", Fail: fail}, // unknown structure
	}}
	var resp BatchQueryResponse
	code, body := postJSON(t, ts.URL+"/batch-query", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("/batch-query with partial errors: %d %s", code, body)
	}
	if len(resp.Dists) != 5 || len(resp.Errors) != 5 {
		t.Fatalf("got %d dists / %d errors, want 5/5: %s", len(resp.Dists), len(resp.Errors), body)
	}
	if resp.Errors[0] != "" || resp.Dists[0] != want0 {
		t.Fatalf("slot 0: dist %d err %q, want %d ok", resp.Dists[0], resp.Errors[0], want0)
	}
	if resp.Errors[2] != "" || resp.Dists[2] != want3 {
		t.Fatalf("slot 2: dist %d err %q, want %d ok", resp.Dists[2], resp.Errors[2], want3)
	}
	for _, i := range []int{1, 3, 4} {
		if resp.Errors[i] == "" {
			t.Fatalf("slot %d: invalid query got no error (%s)", i, body)
		}
		if resp.Dists[i] != -1 {
			t.Fatalf("slot %d: errored slot holds dist %d, want -1", i, resp.Dists[i])
		}
	}
}

// TestRetryableErrorPrefixes pins the wire contracts the cluster router
// depends on: per-slot batch errors are strings, and the router recognises
// retryable shard state by UnknownGraphPrefix and store.PersistPrefix.
func TestRetryableErrorPrefixes(t *testing.T) {
	err := &UnknownGraphError{Fingerprint: 0xabc}
	if !strings.HasPrefix(err.Error(), UnknownGraphPrefix) {
		t.Fatalf("UnknownGraphError %q does not start with UnknownGraphPrefix %q", err, UnknownGraphPrefix)
	}
	pe := &store.PersistError{Err: fmt.Errorf("disk gone")}
	if !strings.HasPrefix(pe.Error(), store.PersistPrefix) {
		t.Fatalf("PersistError %q does not start with PersistPrefix %q", pe, store.PersistPrefix)
	}
}

func TestBuildPairs(t *testing.T) {
	ts, st := newTestServer(t)
	g := testGraph(t, 40, 50, 7)
	var text bytes.Buffer
	if err := g.Write(&text); err != nil {
		t.Fatal(err)
	}
	// Explicit pairs that are NOT a cross product.
	var out BuildResponse
	code, body := postJSON(t, ts.URL+"/build", BuildRequest{
		Graph: text.String(),
		Pairs: []BuildPair{{Source: 0, Eps: 0.25}, {Source: 5, Eps: 0.4}},
	}, &out)
	if code != http.StatusOK {
		t.Fatalf("/build pairs: %d %s", code, body)
	}
	if len(out.Structures) != 2 || out.Structures[0].Source != 0 || out.Structures[1].Eps != 0.4 {
		t.Fatalf("unexpected pair build response %+v", out)
	}
	if st.Len() != 2 {
		t.Fatalf("store holds %d structures, want 2", st.Len())
	}
}

func TestHealthAndReadyEndpoints(t *testing.T) {
	st, err := store.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st)
	srv.SetIdentity("shard", "shard7")
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var hr HealthResponse
	code, body := getJSON(t, ts.URL+"/healthz", &hr)
	if code != http.StatusOK || !hr.OK || hr.Role != "shard" || hr.ID != "shard7" {
		t.Fatalf("/healthz: %d %s", code, body)
	}
	var rr ReadyResponse
	code, body = getJSON(t, ts.URL+"/readyz", &rr)
	if code != http.StatusOK || !rr.Ready {
		t.Fatalf("/readyz: %d %s", code, body)
	}
	// Draining flips readiness to 503 but keeps liveness green.
	srv.SetDraining(true)
	if code, _ := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d, want 503", code)
	}
	if code, _ := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz while draining: %d, want 200", code)
	}
	// Identity also lands in /stats.
	var sr StatsResponse
	if code, body := getJSON(t, ts.URL+"/stats", &sr); code != http.StatusOK || sr.ID != "shard7" || !sr.Draining {
		t.Fatalf("/stats identity: %d %s", code, body)
	}
}

// TestConcurrentDistAvoiding is the acceptance gate: many goroutines hammer
// /dist-avoiding on one structure and every answer must equal the serial
// Oracle.DistAvoiding ground truth (run under -race in CI).
func TestConcurrentDistAvoiding(t *testing.T) {
	ts, _ := newTestServer(t)
	g := testGraph(t, 80, 120, 4)
	out := buildVia(t, ts, g, []int{0}, 0.3)

	g2 := testGraph(t, 80, 120, 4)
	st2, err := ftbfs.Build(g2, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	serial := st2.Oracle()
	type q struct {
		v, fu, fv, want int
	}
	var qs []q
	for i, e := range st2.Edges() {
		if st2.IsReinforced(e[0], e[1]) {
			continue
		}
		v := (i * 17) % 80
		d, err := serial.DistAvoiding(v, e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q{v, e[0], e[1], d})
	}

	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := w; i < len(qs)*3; i += workers {
				qq := qs[i%len(qs)]
				url := fmt.Sprintf("%s/dist-avoiding?graph=%s&eps=0.3&v=%d&fu=%d&fv=%d",
					ts.URL, out.Fingerprint, qq.v, qq.fu, qq.fv)
				resp, err := client.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				var dr distResponse
				err = json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if dr.Dist != qq.want {
					t.Errorf("concurrent /dist-avoiding(v=%d, fail={%d,%d}) = %d, want %d",
						qq.v, qq.fu, qq.fv, dr.Dist, qq.want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	g := testGraph(t, 30, 40, 5)
	out := buildVia(t, ts, g, []int{0}, 0.25)
	if code, _ := getJSON(t, fmt.Sprintf("%s/dist?graph=%s&v=3", ts.URL, out.Fingerprint), nil); code != http.StatusOK {
		t.Fatal("dist failed")
	}
	var sr StatsResponse
	code, body := getJSON(t, ts.URL+"/stats", &sr)
	if code != http.StatusOK {
		t.Fatalf("/stats: %d %s", code, body)
	}
	if sr.Requests < 3 || sr.Queries != 1 || sr.Store.Graphs != 1 || sr.Store.Builds != 1 {
		t.Fatalf("unexpected stats %+v", sr)
	}
}

// TestServeDrainGrace: after shutdown is requested, the server keeps
// answering (with /readyz 503) for the grace period so balancer probes can
// observe the drain before the listener closes.
func TestServeDrainGrace(t *testing.T) {
	st, err := store.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- ServeDraining(ctx, "127.0.0.1:0", New(st), 500*time.Millisecond, func(a string) { addrc <- a })
	}()
	addr := <-addrc
	cancel()
	time.Sleep(50 * time.Millisecond) // let the drain flip land
	resp, err := http.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatalf("server stopped accepting during the drain grace: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain grace: %d, want 503", resp.StatusCode)
	}
	// Liveness and queries keep working mid-drain.
	resp, err = http.Get("http://" + addr + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain grace: %v (%v)", resp, err)
	}
	resp.Body.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeDraining returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeDraining did not shut down after the grace")
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	st, err := store.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, "127.0.0.1:0", New(st), func(a string) { addrc <- a })
	}()
	addr := <-addrc
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not shut down")
	}
	if _, err := http.Get("http://" + addr + "/stats"); err == nil ||
		!strings.Contains(err.Error(), "refused") && !strings.Contains(err.Error(), "connect") {
		t.Fatalf("server still accepting after shutdown: %v", err)
	}
}

// TestDistAvoidingVertexEndpoint exercises the vertex failure model end to
// end over HTTP: build-through on first use, GET and POST forms, agreement
// with a local reference oracle for every failable vertex, and the error
// paths (missing fw, source failure, unknown graph).
func TestDistAvoidingVertexEndpoint(t *testing.T) {
	ts, st := newTestServer(t)
	g := testGraph(t, 40, 60, 6)
	fp, err := st.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	fpHex := fmt.Sprintf("%016x", fp)
	ref, err := ftbfs.BuildVertex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	ro := ref.Oracle()
	for w := 1; w < g.N(); w++ { // skip the source: it cannot fail
		for _, v := range []int{0, w, (w + 7) % g.N()} {
			want, err := ro.DistAvoidingVertex(v, w)
			if err != nil {
				t.Fatal(err)
			}
			var dr distResponse
			code, body := getJSON(t,
				fmt.Sprintf("%s/dist-avoiding-vertex?graph=%s&v=%d&fw=%d", ts.URL, fpHex, v, w), &dr)
			if code != http.StatusOK {
				t.Fatalf("GET (v=%d, w=%d): status %d: %s", v, w, code, body)
			}
			if dr.Dist != want {
				t.Fatalf("GET (v=%d, w=%d): dist %d, want %d", v, w, dr.Dist, want)
			}
		}
	}
	// POST form.
	v, w := 3, 5
	want, err := ro.DistAvoidingVertex(v, w)
	if err != nil {
		t.Fatal(err)
	}
	var dr distResponse
	code, body := postJSON(t, ts.URL+"/dist-avoiding-vertex",
		QueryRequest{Graph: fpHex, V: &v, FailedVertex: &w}, &dr)
	if code != http.StatusOK || dr.Dist != want {
		t.Fatalf("POST: status %d, dist %d (want %d): %s", code, dr.Dist, want, body)
	}
	// Error paths.
	if code, _ := getJSON(t, fmt.Sprintf("%s/dist-avoiding-vertex?graph=%s&v=1", ts.URL, fpHex), nil); code != http.StatusBadRequest {
		t.Fatalf("missing fw: status %d, want 400", code)
	}
	if code, _ := getJSON(t, fmt.Sprintf("%s/dist-avoiding-vertex?graph=%s&v=1&fw=0", ts.URL, fpHex), nil); code != http.StatusBadRequest {
		t.Fatalf("source failure: status %d, want 400", code)
	}
	if code, _ := getJSON(t, fmt.Sprintf("%s/dist-avoiding-vertex?graph=%016x&v=1&fw=2", ts.URL, fp+1), nil); code != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d, want 404", code)
	}
}

// TestBatchQueryMixedModels sends one /batch-query vector mixing edge and
// vertex failure slots (plus deliberately bad slots of both kinds) and
// checks each answered slot against its own reference oracle.
func TestBatchQueryMixedModels(t *testing.T) {
	ts, st := newTestServer(t)
	g := testGraph(t, 40, 60, 7)
	fp, err := st.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	fpHex := fmt.Sprintf("%016x", fp)
	est, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	vst, err := ftbfs.BuildVertex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	eo, vo := est.Oracle(), vst.Oracle()

	var failableEdge [2]int
	for _, e := range est.Edges() {
		if !est.IsReinforced(e[0], e[1]) {
			failableEdge = e
			break
		}
	}
	eps := 0.3
	fw1, fw2, fwSrc := 5, 9, 0
	req := BatchQueryRequest{Graph: fpHex, Eps: &eps, Queries: []BatchQuery{
		{V: 7, Fail: failableEdge},              // edge slot
		{V: 11, FailedVertex: &fw1},             // vertex slot
		{V: fw1, FailedVertex: &fw1},            // vertex slot, target == failed: Unreachable
		{V: 13, FailedVertex: &fw2},             // second vertex group
		{V: 2, FailedVertex: &fwSrc},            // bad: the source cannot fail
		{V: 1, Fail: [2]int{0, 0}},              // bad: not an edge
		{Graph: "zz", V: 1, FailedVertex: &fw1}, // bad: unresolvable address
	}}
	var resp BatchQueryResponse
	code, body := postJSON(t, ts.URL+"/batch-query", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if len(resp.Dists) != len(req.Queries) || len(resp.Errors) != len(req.Queries) {
		t.Fatalf("slot counts: %d dists, %d errors", len(resp.Dists), len(resp.Errors))
	}
	wantEdge, err := eo.DistAvoiding(7, failableEdge[0], failableEdge[1])
	if err != nil {
		t.Fatal(err)
	}
	wantV1, err := vo.DistAvoidingVertex(11, fw1)
	if err != nil {
		t.Fatal(err)
	}
	wantV2, err := vo.DistAvoidingVertex(13, fw2)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range map[int]int{0: wantEdge, 1: wantV1, 2: ftbfs.Unreachable, 3: wantV2} {
		if resp.Errors[i] != "" {
			t.Fatalf("slot %d errored: %s", i, resp.Errors[i])
		}
		if resp.Dists[i] != want {
			t.Fatalf("slot %d: dist %d, want %d", i, resp.Dists[i], want)
		}
	}
	for _, i := range []int{4, 5, 6} {
		if resp.Errors[i] == "" {
			t.Fatalf("bad slot %d did not error", i)
		}
		if resp.Dists[i] != ftbfs.Unreachable {
			t.Fatalf("bad slot %d carries dist %d", i, resp.Dists[i])
		}
	}
	if !strings.Contains(resp.Errors[4], "cannot fail") {
		t.Fatalf("slot 4: unexpected error %q", resp.Errors[4])
	}
}

// TestBuildVertexSources checks that /build pre-builds vertex structures
// for vertexSources — including the vertex-only form that builds no edge
// structure at all.
func TestBuildVertexSources(t *testing.T) {
	ts, reg := newTestServer(t)
	g := testGraph(t, 30, 45, 8)
	var text bytes.Buffer
	if err := g.Write(&text); err != nil {
		t.Fatal(err)
	}
	var resp BuildResponse
	code, body := postJSON(t, ts.URL+"/build",
		BuildRequest{Graph: text.String(), VertexSources: []int{0, 4}}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if len(resp.Structures) != 0 {
		t.Fatalf("vertex-only build produced %d edge structures", len(resp.Structures))
	}
	if len(resp.VertexStructures) != 2 {
		t.Fatalf("built %d vertex structures, want 2", len(resp.VertexStructures))
	}
	want, err := ftbfs.BuildVertex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.VertexStructures[0].Size != want.Size() || resp.VertexStructures[0].Pairs != want.Pairs() {
		t.Fatalf("vertex structure shape %+v, want size=%d pairs=%d",
			resp.VertexStructures[0], want.Size(), want.Pairs())
	}
	fp, err := reg.AddGraph(g) // idempotent: returns the registered fingerprint
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.GetVertex(fp, 4); !ok {
		t.Fatal("vertex structure for source 4 not resident after /build")
	}
	// A build asking for the source out of range is the client's 400.
	code, _ = postJSON(t, ts.URL+"/build",
		BuildRequest{Graph: text.String(), VertexSources: []int{99}}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad vertex source: status %d, want 400", code)
	}
}

// TestEdgeEndpointsIgnoreStrayFailedVertex pins the model-selection rule:
// the endpoint, not a stray failedVertex/fw field, picks the failure model.
// /dist and /dist-avoiding must keep answering the edge model when a
// request carries fw, not flip to a vertex-model key and fail.
func TestEdgeEndpointsIgnoreStrayFailedVertex(t *testing.T) {
	ts, st := newTestServer(t)
	g := testGraph(t, 30, 45, 9)
	fp, err := st.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	fpHex := fmt.Sprintf("%016x", fp)
	est, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var dr distResponse
	code, body := getJSON(t, fmt.Sprintf("%s/dist?graph=%s&eps=0.3&v=4&fw=7", ts.URL, fpHex), &dr)
	if code != http.StatusOK {
		t.Fatalf("/dist with stray fw: status %d: %s", code, body)
	}
	if want := est.Oracle().Dist(4); dr.Dist != want {
		t.Fatalf("/dist with stray fw: %d, want %d", dr.Dist, want)
	}
	var edge [2]int
	for _, e := range est.Edges() {
		if !est.IsReinforced(e[0], e[1]) {
			edge = e
			break
		}
	}
	want, err := est.Oracle().DistAvoiding(4, edge[0], edge[1])
	if err != nil {
		t.Fatal(err)
	}
	code, body = getJSON(t, fmt.Sprintf("%s/dist-avoiding?graph=%s&eps=0.3&v=4&fu=%d&fv=%d&fw=7",
		ts.URL, fpHex, edge[0], edge[1]), &dr)
	if code != http.StatusOK {
		t.Fatalf("/dist-avoiding with stray fw: status %d: %s", code, body)
	}
	if dr.Dist != want {
		t.Fatalf("/dist-avoiding with stray fw: %d, want %d", dr.Dist, want)
	}
}
