package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"time"

	"ftbfs"
	"ftbfs/internal/core"
	"ftbfs/internal/store"
	"ftbfs/internal/telemetry"
	"ftbfs/internal/wire"
)

// This file implements wire.Backend on *Server: the binary protocol answers
// through exactly the same key resolution, store lookups, and pooled oracles
// as the HTTP handlers, so the two transports are answer-identical by
// construction — only the encoding differs.

// keyForPoint resolves the registry key a wire point query addresses,
// mirroring resolveKey/resolveVertexModelKey (which parse the same fields
// out of JSON): -0 ε folds to +0, non-finite ε and out-of-range algorithms
// are rejected before they can poison a store key.
func keyForPoint(typ byte, q *wire.PointQuery) (store.Key, error) {
	if typ == wire.TDistAvoidingVertex {
		return store.VertexKey(q.FP, int(q.Source)), nil
	}
	e := q.Eps()
	if math.IsNaN(e) || math.IsInf(e, 0) {
		return store.Key{}, fmt.Errorf("eps must be finite, got %v", e)
	}
	if e == 0 {
		e = 0 // fold IEEE -0 into +0, matching resolveKey
	}
	if q.Alg < 0 || q.Alg > int32(core.Greedy) {
		return store.Key{}, fmt.Errorf("unknown algorithm code %d", q.Alg)
	}
	return store.Key{Graph: q.FP, Source: int(q.Source), Eps: e, Alg: ftbfs.Algorithm(q.Alg)}, nil
}

// shedWire passes a wire request through the same load shedder as the HTTP
// handlers. It returns a non-nil in-protocol error when the request is shed
// (503, mirroring HTTP's Retry-After semantics) or its budget ran out while
// queued (504); otherwise the caller owns a work slot and must release it.
func (s *Server) shedWire(ctx context.Context) (*limiter, *wire.Error) {
	work := s.work.Load()
	if !work.acquire(ctx, s.draining.Load()) {
		s.m.errs.Inc()
		if ctx.Err() != nil {
			return nil, &wire.Error{Code: http.StatusGatewayTimeout, Msg: "deadline budget exhausted while queued"}
		}
		s.m.shed.Inc()
		return nil, &wire.Error{Code: http.StatusServiceUnavailable, Msg: "server overloaded; retry later"}
	}
	return work, nil
}

// observeWire records one finished wire request into its frame type's
// outcome-labeled histogram. Inline starts and a direct array index keep the
// point-query path allocation-free.
func (s *Server) observeWire(typ byte, start time.Time, werr *wire.Error) {
	if int(typ) >= len(s.m.wireByType) {
		return
	}
	out := telemetry.OutcomeOK
	if werr != nil {
		out = telemetry.OutcomeOf(werr.Code)
	}
	s.m.wireByType[typ].Observe(time.Since(start), out)
}

// WirePoint answers one binary point query (wire.Backend). It wraps the
// actual dispatch so the latency observation needs no deferred closure —
// the point path must stay allocation-free.
func (s *Server) WirePoint(ctx context.Context, typ byte, q *wire.PointQuery) (int32, *wire.Error) {
	s.m.wireRequests.Inc()
	start := time.Now()
	d, werr := s.wirePoint(ctx, typ, q)
	s.observeWire(typ, start, werr)
	if tr := telemetry.TraceFrom(ctx); tr != nil {
		// The response frame has no span field, so a wire-traced request's
		// spans are retrievable from this shard's own /debug/traces ring.
		tr.Add("shard.wire", start)
		s.traces.Record(tr, "wire", time.Since(start))
	}
	return d, werr
}

func (s *Server) wirePoint(ctx context.Context, typ byte, q *wire.PointQuery) (int32, *wire.Error) {
	work, werr := s.shedWire(ctx)
	if werr != nil {
		return 0, werr
	}
	defer work.release()
	k, err := keyForPoint(typ, q)
	if err != nil {
		s.m.errs.Inc()
		return 0, &wire.Error{Code: http.StatusBadRequest, Msg: err.Error()}
	}
	v := int(q.V)
	var d int
	switch typ {
	case wire.TDist:
		st, err := s.structureForKey(ctx, k, &v)
		if err != nil {
			s.m.errs.Inc()
			return 0, &wire.Error{Code: statusFor(err), Msg: err.Error()}
		}
		d = st.Dist(v)
	case wire.TDistAvoiding:
		st, err := s.structureForKey(ctx, k, &v)
		if err != nil {
			s.m.errs.Inc()
			return 0, &wire.Error{Code: statusFor(err), Msg: err.Error()}
		}
		err = st.OraclePool().Do(func(o *ftbfs.Oracle) error {
			var qerr error
			d, qerr = o.DistAvoiding(v, int(q.A), int(q.B))
			return qerr
		})
		if err != nil {
			s.m.errs.Inc()
			return 0, &wire.Error{Code: http.StatusBadRequest, Msg: err.Error()}
		}
	case wire.TDistAvoidingVertex:
		st, err := s.vertexStructureForKey(ctx, k, &v)
		if err != nil {
			s.m.errs.Inc()
			return 0, &wire.Error{Code: statusFor(err), Msg: err.Error()}
		}
		err = st.OraclePool().Do(func(o *ftbfs.VertexOracle) error {
			var qerr error
			d, qerr = o.DistAvoidingVertex(v, int(q.A))
			return qerr
		})
		if err != nil {
			s.m.errs.Inc()
			return 0, &wire.Error{Code: http.StatusBadRequest, Msg: err.Error()}
		}
	default:
		s.m.errs.Inc()
		return 0, &wire.Error{Code: http.StatusBadRequest, Msg: fmt.Sprintf("unknown point type %#x", typ)}
	}
	s.m.queries.Inc()
	return int32(d), nil
}

// WireMutate applies one binary mutation batch (wire.MutateBackend): the
// same store.Mutate the HTTP /mutate handler delegates to, so both transports
// apply batches with identical validation and swap semantics.
func (s *Server) WireMutate(ctx context.Context, lineage uint64, wmuts []wire.MutationWire) (wire.MutateResult, *wire.Error) {
	s.m.wireRequests.Inc()
	start := time.Now()
	res, werr := s.wireMutate(ctx, lineage, wmuts)
	s.observeWire(wire.TMutate, start, werr)
	return res, werr
}

func (s *Server) wireMutate(ctx context.Context, lineage uint64, wmuts []wire.MutationWire) (wire.MutateResult, *wire.Error) {
	work, werr := s.shedWire(ctx)
	if werr != nil {
		return wire.MutateResult{}, werr
	}
	defer work.release()
	if _, ok := s.store.Graph(lineage); !ok {
		s.m.errs.Inc()
		err := &UnknownGraphError{Fingerprint: lineage}
		return wire.MutateResult{}, &wire.Error{Code: statusFor(err), Msg: err.Error()}
	}
	muts := make([]ftbfs.Mutation, len(wmuts))
	for i, m := range wmuts {
		// The wire parser already rejected ops outside {0, 1}; the numbering
		// matches ftbfs.MutInsert/MutDelete by design.
		muts[i] = ftbfs.Mutation{Op: ftbfs.MutationOp(m.Op), U: int(m.U), V: int(m.V)}
	}
	res, err := s.store.Mutate(ctx, lineage, muts)
	if err != nil {
		s.m.errs.Inc()
		return wire.MutateResult{}, &wire.Error{Code: statusFor(err), Msg: err.Error()}
	}
	return wire.MutateResult{
		Lineage:       res.Lineage,
		Gen:           res.Gen,
		FP:            res.Fingerprint,
		RebuildsDelta: uint32(res.RebuildsDelta),
		RebuildsFull:  uint32(res.RebuildsFull),
	}, nil
}

// WireBatch answers one binary batch (wire.Backend): slots group by resolved
// key and funnel into the same answerGroups machinery as POST /batch-query.
func (s *Server) WireBatch(ctx context.Context, slots []wire.BatchSlot) ([]int32, []string) {
	s.m.wireRequests.Inc()
	start := time.Now()
	dists := make([]int, len(slots))
	errs := make([]string, len(slots))
	if work, werr := s.shedWire(ctx); werr != nil {
		// A shed batch fails every slot with the shed message; the router's
		// per-slot retry machinery then redistributes them.
		out := make([]int32, len(slots))
		for i := range slots {
			out[i] = int32(ftbfs.Unreachable)
			errs[i] = werr.Msg
		}
		s.observeWire(wire.TBatch, start, werr)
		return out, errs
	} else {
		defer work.release()
	}
	var groups []*queryGroup
	byKey := make(map[store.Key]*queryGroup)
	for i := range slots {
		sl := &slots[i]
		typ := byte(wire.TDistAvoiding)
		if sl.Vertex {
			typ = wire.TDistAvoidingVertex
		}
		k, err := keyForPoint(typ, &sl.PointQuery)
		if err != nil {
			dists[i] = ftbfs.Unreachable
			errs[i] = err.Error()
			continue
		}
		gr := byKey[k]
		if gr == nil {
			gr = &queryGroup{key: k}
			byKey[k] = gr
			groups = append(groups, gr)
		}
		gr.slots = append(gr.slots, i)
		if sl.Vertex {
			gr.vqueries = append(gr.vqueries, ftbfs.VertexFailureQuery{V: int(sl.V), Failed: int(sl.A)})
		} else {
			gr.queries = append(gr.queries, ftbfs.FailureQuery{V: int(sl.V), FailedU: int(sl.A), FailedV: int(sl.B)})
		}
	}
	s.m.queries.Add(s.answerGroups(ctx, groups, dists, errs))
	out := make([]int32, len(dists))
	var failed bool
	for i, d := range dists {
		out[i] = int32(d)
		if errs[i] != "" {
			s.m.errs.Inc()
			failed = true
		}
	}
	var batchErr *wire.Error
	if failed {
		batchErr = &wire.Error{Code: http.StatusBadRequest}
	}
	s.observeWire(wire.TBatch, start, batchErr)
	return out, errs
}
