package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"ftbfs"
	"ftbfs/internal/core"
	"ftbfs/internal/store"
	"ftbfs/internal/wire"
)

// This file is the shard's handoff surface — how built structures move
// between shards when the cluster ring changes, without rebuilding:
//
//	GET  /handoff/keys    inventory of every exportable structure key
//	GET  /handoff/record  raw record bytes of one structure (octet-stream)
//	GET  /handoff/graph   canonical text of one registered graph
//	POST /handoff/pull    pull a key list FROM a named source shard
//
// The pull endpoint is receiver-driven: the cluster router tells the new
// owner what to pull and from whom, the receiver fetches graph + records
// (over the source's persistent wire connections when it advertises them,
// HTTP otherwise) and installs them through the store's zero-parse import
// path. The same frames also travel the binary protocol (THandoff/TGraph);
// *Server implements wire.HandoffBackend below.

// HandoffKeyInfo is the JSON form of one structure key on the handoff
// surface. Eps round-trips exactly through JSON (shortest-repr encoding)
// and the record URL (FormatFloat -1); Alg travels as the core algorithm
// code, Model as "vertex" or "" (edge).
type HandoffKeyInfo struct {
	Graph  string  `json:"graph"` // %016x fingerprint
	Source int     `json:"source"`
	Eps    float64 `json:"eps,omitempty"`
	Alg    int     `json:"alg,omitempty"`
	Model  string  `json:"model,omitempty"`
}

// HandoffKeyFor converts a registry key to its handoff JSON form.
func HandoffKeyFor(k store.Key) HandoffKeyInfo {
	info := HandoffKeyInfo{Graph: fmt.Sprintf("%016x", k.Graph), Source: k.Source}
	if k.Model == store.ModelVertex {
		info.Model = "vertex"
	} else {
		info.Eps = k.Eps
		info.Alg = int(k.Alg)
	}
	return info
}

// StoreKey converts back to the registry key, with the same validation the
// query paths apply (-0 ε folds to +0, finite ε, algorithm in range).
func (i HandoffKeyInfo) StoreKey() (store.Key, error) {
	fp, err := strconv.ParseUint(i.Graph, 16, 64)
	if err != nil {
		return store.Key{}, fmt.Errorf("bad graph fingerprint %q", i.Graph)
	}
	if i.Model == "vertex" {
		return store.VertexKey(fp, i.Source), nil
	}
	if i.Model != "" {
		return store.Key{}, fmt.Errorf("unknown model %q", i.Model)
	}
	e := i.Eps
	if math.IsNaN(e) || math.IsInf(e, 0) {
		return store.Key{}, fmt.Errorf("eps must be finite, got %v", e)
	}
	if e == 0 {
		e = 0
	}
	if i.Alg < 0 || i.Alg > int(core.Greedy) {
		return store.Key{}, fmt.Errorf("unknown algorithm code %d", i.Alg)
	}
	return store.Key{Graph: fp, Source: i.Source, Eps: e, Alg: ftbfs.Algorithm(i.Alg)}, nil
}

// WireKey converts to the binary-protocol handoff key.
func (i HandoffKeyInfo) WireKey() (wire.HandoffKey, error) {
	k, err := i.StoreKey()
	if err != nil {
		return wire.HandoffKey{}, err
	}
	return wire.HandoffKey{
		FP:      k.Graph,
		EpsBits: math.Float64bits(k.Eps),
		Source:  int32(k.Source),
		Alg:     int32(k.Alg),
		Vertex:  k.Model == store.ModelVertex,
	}, nil
}

// recordQuery encodes the /handoff/record URL parameters for a key.
// FormatFloat with precision -1 produces the shortest decimal that parses
// back to the exact same float, so the key survives the URL round trip.
func recordQuery(i HandoffKeyInfo) string {
	v := url.Values{}
	v.Set("graph", i.Graph)
	v.Set("source", strconv.Itoa(i.Source))
	if i.Model != "" {
		v.Set("model", i.Model)
	} else {
		v.Set("eps", strconv.FormatFloat(i.Eps, 'g', -1, 64))
		v.Set("alg", strconv.Itoa(i.Alg))
	}
	return v.Encode()
}

// HandoffKeysResponse is the reply of GET /handoff/keys.
type HandoffKeysResponse struct {
	Keys   []HandoffKeyInfo `json:"keys"`
	Graphs []string         `json:"graphs"`
}

func (s *Server) handleHandoffKeys(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	keys := s.store.Keys()
	resp := HandoffKeysResponse{Keys: make([]HandoffKeyInfo, len(keys))}
	for i, k := range keys {
		resp.Keys[i] = HandoffKeyFor(k)
	}
	for _, fp := range s.store.Graphs() {
		resp.Graphs = append(resp.Graphs, fmt.Sprintf("%016x", fp))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handoffKeyFromQuery parses a structure key out of /handoff/record URL
// parameters (the inverse of recordQuery).
func handoffKeyFromQuery(r *http.Request) (store.Key, error) {
	vals := r.URL.Query()
	info := HandoffKeyInfo{Graph: vals.Get("graph"), Model: vals.Get("model")}
	var err error
	if info.Source, err = strconv.Atoi(vals.Get("source")); err != nil {
		return store.Key{}, fmt.Errorf("bad source=%q", vals.Get("source"))
	}
	if info.Model == "" {
		if info.Eps, err = strconv.ParseFloat(vals.Get("eps"), 64); err != nil {
			return store.Key{}, fmt.Errorf("bad eps=%q", vals.Get("eps"))
		}
		if info.Alg, err = strconv.Atoi(vals.Get("alg")); err != nil {
			return store.Key{}, fmt.Errorf("bad alg=%q", vals.Get("alg"))
		}
	}
	return info.StoreKey()
}

func (s *Server) handleHandoffRecord(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	k, err := handoffKeyFromQuery(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	data, err := s.store.ExportRecord(k)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotHeld) {
			code = http.StatusNotFound
		}
		s.writeErr(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *Server) handleHandoffGraph(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	fp, err := strconv.ParseUint(r.URL.Query().Get("graph"), 16, 64)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad graph fingerprint %q", r.URL.Query().Get("graph")))
		return
	}
	data, err := s.store.GraphText(fp)
	if err != nil {
		s.writeErr(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

// HandoffPullRequest is the body of POST /handoff/pull: the receiving shard
// pulls the listed keys from the named source. Wire, when non-empty, is the
// source's binary-protocol address — records stream over its persistent
// connections and only fall back to From's HTTP surface on a transport
// fault or an over-limit record.
type HandoffPullRequest struct {
	From string           `json:"from"`
	Wire string           `json:"wire,omitempty"`
	Keys []HandoffKeyInfo `json:"keys"`
}

// HandoffPullResponse summarises one pull: how many records installed, how
// many were already held (skipped), the bytes that actually moved, and
// per-key failure messages.
type HandoffPullResponse struct {
	Transferred int      `json:"transferred"`
	Skipped     int      `json:"skipped"`
	Bytes       int64    `json:"bytes"`
	Errors      []string `json:"errors,omitempty"`
}

// handoffClient fetches records over HTTP when the wire path is unavailable.
// Transfers can be large, so the timeout is generous; each request is still
// bounded by the pull request's context.
var handoffClient = &http.Client{Timeout: 2 * time.Minute}

// handoffGet fetches one URL, demanding a 200.
func handoffGet(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := handoffClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if len(body) > MaxBodyBytes {
		return nil, fmt.Errorf("record exceeds %d bytes", MaxBodyBytes)
	}
	return body, nil
}

func (s *Server) handleHandoffPull(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req HandoffPullRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if req.From == "" {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("missing source address"))
		return
	}
	resp := s.pull(r.Context(), &req)
	s.writeJSON(w, http.StatusOK, resp)
}

// pull fetches and installs the requested keys from the source shard:
// wire-first per record, HTTP fallback, graphs fetched once on first need.
func (s *Server) pull(ctx context.Context, req *HandoffPullRequest) *HandoffPullResponse {
	resp := &HandoffPullResponse{}
	var wc *wire.Client
	if req.Wire != "" {
		wc = wire.NewClient(req.Wire, 2)
		defer wc.Close()
	}
	haveGraph := make(map[uint64]bool)
	fetchGraph := func(fp uint64) error {
		if haveGraph[fp] {
			return nil
		}
		if _, ok := s.store.Graph(fp); ok {
			haveGraph[fp] = true
			return nil
		}
		var data []byte
		if wc != nil {
			if b, werr, err := wc.FetchGraph(ctx, fp); err == nil && werr == nil {
				data = b
			}
		}
		if data == nil {
			b, err := handoffGet(ctx, fmt.Sprintf("%s/handoff/graph?graph=%016x", req.From, fp))
			if err != nil {
				return fmt.Errorf("fetch graph %016x: %w", fp, err)
			}
			data = b
		}
		g, err := ftbfs.ReadGraph(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("decode graph %016x: %w", fp, err)
		}
		g.Freeze()
		if g.Fingerprint() != fp {
			return fmt.Errorf("graph fetched for %016x has fingerprint %016x", fp, g.Fingerprint())
		}
		if _, err := s.store.AddGraph(g); err != nil {
			// A PersistError means the graph is registered and serving from
			// memory — only durability failed. Keep pulling its records (they
			// degrade the same way) and surface the error instead of skipping
			// every key of the graph.
			var pe *store.PersistError
			if !errors.As(err, &pe) {
				return err
			}
			resp.Errors = append(resp.Errors, err.Error())
		}
		haveGraph[fp] = true
		return nil
	}
	for _, info := range req.Keys {
		// Check the deadline between keys, not just inside fetches: an aborted
		// pull must stop cleanly with every unprocessed key reported, so the
		// router can tell "not transferred" from "silently dropped" and keeps
		// the pending ledger honest.
		if err := ctx.Err(); err != nil {
			resp.Errors = append(resp.Errors, fmt.Sprintf("pull aborted: %v", err))
			break
		}
		k, err := info.StoreKey()
		if err != nil {
			resp.Errors = append(resp.Errors, err.Error())
			continue
		}
		if s.store.Has(k) {
			resp.Skipped++
			continue
		}
		if err := fetchGraph(k.Graph); err != nil {
			resp.Errors = append(resp.Errors, err.Error())
			continue
		}
		var data []byte
		if wc != nil {
			if wk, err := info.WireKey(); err == nil {
				if b, werr, err := wc.FetchRecord(ctx, &wk); err == nil && werr == nil {
					data = b
				}
			}
		}
		if data == nil {
			b, err := handoffGet(ctx, req.From+"/handoff/record?"+recordQuery(info))
			if err != nil {
				resp.Errors = append(resp.Errors, fmt.Sprintf("fetch %v: %v", k, err))
				continue
			}
			data = b
		}
		installed, err := s.store.ImportRecord(k, data)
		if installed {
			// The structure is resident and serving even if persistence
			// failed (ImportRecord reports that as installed + PersistError).
			// Counting it transferred keeps the router's pending ledger
			// consistent with what this store actually holds; the error still
			// surfaces so operators see the durability gap.
			resp.Transferred++
			resp.Bytes += int64(len(data))
			if err != nil {
				resp.Errors = append(resp.Errors, err.Error())
			}
			continue
		}
		if err != nil {
			resp.Errors = append(resp.Errors, err.Error())
			continue
		}
		resp.Skipped++
	}
	return resp
}

// HandoffRecord implements wire.HandoffBackend: the binary-protocol twin of
// GET /handoff/record. Records larger than the frame bound answer 413 so
// the puller falls back to HTTP (which has no such bound).
func (s *Server) HandoffRecord(ctx context.Context, k *wire.HandoffKey) ([]byte, *wire.Error) {
	s.m.wireRequests.Inc()
	if err := ctx.Err(); err != nil {
		return nil, &wire.Error{Code: http.StatusGatewayTimeout, Msg: err.Error()}
	}
	sk := store.Key{Graph: k.FP, Source: int(k.Source), Eps: math.Float64frombits(k.EpsBits), Alg: ftbfs.Algorithm(k.Alg)}
	if k.Vertex {
		sk = store.VertexKey(k.FP, int(k.Source))
	}
	data, err := s.store.ExportRecord(sk)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotHeld) {
			code = http.StatusNotFound
		}
		return nil, &wire.Error{Code: code, Msg: err.Error()}
	}
	if len(data) > wire.MaxPayload {
		return nil, &wire.Error{Code: http.StatusRequestEntityTooLarge, Msg: fmt.Sprintf("record is %d bytes, wire frames carry at most %d", len(data), wire.MaxPayload)}
	}
	return data, nil
}

// HandoffGraph implements wire.HandoffBackend: the binary-protocol twin of
// GET /handoff/graph.
func (s *Server) HandoffGraph(ctx context.Context, fp uint64) ([]byte, *wire.Error) {
	s.m.wireRequests.Inc()
	if err := ctx.Err(); err != nil {
		return nil, &wire.Error{Code: http.StatusGatewayTimeout, Msg: err.Error()}
	}
	data, err := s.store.GraphText(fp)
	if err != nil {
		return nil, &wire.Error{Code: http.StatusNotFound, Msg: err.Error()}
	}
	if len(data) > wire.MaxPayload {
		return nil, &wire.Error{Code: http.StatusRequestEntityTooLarge, Msg: fmt.Sprintf("graph text is %d bytes, wire frames carry at most %d", len(data), wire.MaxPayload)}
	}
	return data, nil
}
