// Package server exposes the FT-BFS query service over HTTP/JSON: the
// operational layer that answers "dist(s, v) avoiding failed edge e" against
// structures held in an internal/store registry. Oracles are not
// concurrency-safe, so every query checks one out of the structure's
// OraclePool for the duration of the request; structures themselves are
// immutable and shared.
//
// Failure queries route through each structure's QueryPlan (built once by
// the store, shared by every oracle): a failed edge off H's BFS tree is an
// O(1) lookup of the cached intact vector, a failed tree edge repairs only
// the subtree hanging below it, and /batch-query vectors are answered in
// failed-edge groups so one repair serves every target of the same failure.
// The repair scratches travel inside the pooled oracles, so the steady-state
// hot path allocates nothing.
//
// Endpoints:
//
//	POST /build          register a graph and build structures for it
//	POST /mutate         apply an edge-mutation batch; atomic generation swap
//	GET|POST /dist           dist(s, v) in the intact structure H
//	GET|POST /dist-avoiding  dist(s, v) in H minus one failed edge
//	GET|POST /dist-avoiding-vertex  dist(s, v) in H minus one failed VERTEX
//	POST /batch-query    a vector of failure queries, per-query error slots
//	GET  /handoff/keys   inventory of exportable structure keys
//	GET  /handoff/record raw record bytes of one structure
//	GET  /handoff/graph  canonical text of one registered graph
//	POST /handoff/pull   pull structures from a peer shard (rebalance; handoff.go)
//	GET  /stats          store and server counters
//	GET  /healthz        liveness: identity + uptime, always 200 while up
//	GET  /readyz         readiness: 503 while draining, else store summary
//
// /dist-avoiding-vertex serves the vertex failure model: it addresses a
// vertex-failure structure (keyed by graph + source only — the vertex
// construction has no ε or algorithm dimension), built through the store on
// first use, and answers through pooled VertexOracles exactly like the edge
// path: an off-tree-path failed vertex is an O(1) read of the intact
// vector, a failed tree vertex repairs only its subtree.
//
// A /batch-query vector may span several structures (each query can carry
// its own graph/source/eps/alg, defaulting to the request-level address) and
// never fails as a whole on one bad query: the response carries a parallel
// error slot per query, which is what a scatter-gather router needs to merge
// partial results. A slot carrying "failedVertex" instead of "fail" is a
// vertex-failure query; both models may mix freely in one vector.
//
// Distances use -1 for "unreachable". Errors are {"error": "..."} with a
// 4xx/5xx status.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ftbfs"
	"ftbfs/internal/core"
	"ftbfs/internal/store"
	"ftbfs/internal/telemetry"
)

// DefaultEps is the tradeoff parameter assumed when a request leaves ε out.
const DefaultEps = 0.25

// MaxBuildN caps the vertex count of a /build request: a single small JSON
// body must not be able to make the server allocate gigabytes of adjacency.
const MaxBuildN = 1_000_000

// MaxBodyBytes bounds every JSON request body (graph text for 1M edges is
// well under this). The cluster router applies the same bound so the two
// tiers never disagree about what is acceptable.
const MaxBodyBytes = 64 << 20

// BudgetHeader carries a request's deadline budget in whole milliseconds
// over HTTP — the JSON-surface twin of the wire frame's budget field. The
// router stamps the remaining budget on every forwarded request; a server
// receiving it answers 504 instead of working past the caller's deadline.
const BudgetHeader = "X-Ftbfs-Budget-Ms"

// Default work-queue limits (see SetWorkLimits). Generous: shedding is a
// last resort against collapse, not a throttle — a healthy node under normal
// load never sheds.
const (
	DefaultMaxInflight = 256
	DefaultMaxQueued   = 512
)

// limiter is the server-wide bounded work queue behind load shedding: at
// most cap(slots) requests run, at most maxQueue more wait, everyone else is
// shed with 503 + Retry-After. Draining servers skip the queue entirely —
// new work fails fast while in-flight requests finish.
type limiter struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
	wait     *telemetry.Histogram // queue-wait times; nil-safe to skip
}

func newLimiter(inflight, queue int, wait *telemetry.Histogram) *limiter {
	if inflight < 1 {
		inflight = 1
	}
	return &limiter{slots: make(chan struct{}, inflight), maxQueue: int64(queue), wait: wait}
}

// acquire takes a work slot, queueing (bounded) until ctx expires. It
// reports false when the request must be shed or has outlived its budget —
// the caller distinguishes via ctx.Err(). Only the queued path records a
// wait observation; the immediate-slot fast path never reads the clock.
func (l *limiter) acquire(ctx context.Context, draining bool) bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
	}
	if draining {
		return false
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		return false
	}
	defer l.queued.Add(-1)
	start := time.Now()
	ok := false
	select {
	case l.slots <- struct{}{}:
		ok = true
	case <-ctx.Done():
	}
	if l.wait != nil {
		l.wait.Observe(time.Since(start))
	}
	return ok
}

func (l *limiter) release() { <-l.slots }

// identity names a node for /healthz and /stats; held behind an atomic
// pointer because `serve` only learns its default ID (the bound address)
// after the listener is up, when probes may already be hitting /healthz.
type identity struct {
	role string // "" for standalone, "shard" under a cluster router
	id   string
}

// Server is the HTTP handler of the query service.
type Server struct {
	store *store.Store
	mux   *http.ServeMux
	start time.Time

	ident atomic.Pointer[identity]

	// groupSem bounds concurrent /batch-query group resolutions across ALL
	// requests: each cold group is a synchronous build-through, and without
	// a server-wide cap a burst of many-structure batches would amplify
	// into unbounded concurrent builds.
	groupSem chan struct{}

	// wireAddr is the advertised binary-protocol listen address, empty when
	// the wire listener is off. /healthz and /readyz carry it so the cluster
	// router's probes discover the fast path without extra configuration.
	wireAddr atomic.Pointer[string]

	// work bounds concurrent query/build work across both transports; see
	// limiter. Swapped atomically so SetWorkLimits is safe while serving.
	work atomic.Pointer[limiter]

	// m backs every request counter and latency histogram; traces keeps the
	// most recent traced requests for /debug/traces.
	m      *serverMetrics
	traces *telemetry.TraceRing

	draining atomic.Bool // graceful shutdown in progress (readyz gates on it)
}

// New returns a service over the given registry.
func New(st *store.Store) *Server {
	s := &Server{
		store:    st,
		mux:      http.NewServeMux(),
		start:    time.Now(),
		groupSem: make(chan struct{}, 8),
		traces:   telemetry.NewTraceRing(256, 0),
	}
	routes := []struct {
		path    string
		handler http.HandlerFunc
	}{
		{"/build", s.handleBuild},
		{"/mutate", s.handleMutate},
		{"/dist", s.handleDist},
		{"/dist-avoiding", s.handleDistAvoiding},
		{"/dist-avoiding-vertex", s.handleDistAvoidingVertex},
		{"/batch-query", s.handleBatchQuery},
		{"/handoff/keys", s.handleHandoffKeys},
		{"/handoff/record", s.handleHandoffRecord},
		{"/handoff/graph", s.handleHandoffGraph},
		{"/handoff/pull", s.handleHandoffPull},
		{"/stats", s.handleStats},
		{"/healthz", s.handleHealthz},
		{"/readyz", s.handleReadyz},
		{"/metrics", s.handleMetrics},
		{"/metrics.json", s.handleMetricsJSON},
		{"/debug/traces", func(w http.ResponseWriter, r *http.Request) { s.traces.ServeHTTP(w, r) }},
	}
	paths := make([]string, len(routes))
	for i, rt := range routes {
		s.mux.HandleFunc(rt.path, rt.handler)
		paths[i] = rt.path
	}
	s.m = newServerMetrics(paths)
	s.work.Store(newLimiter(DefaultMaxInflight, DefaultMaxQueued, s.m.queueWait))
	return s
}

// SetWorkLimits resizes the load shedder: at most inflight requests run
// concurrently, at most queue more wait for a slot, the rest are answered
// 503 + Retry-After. Queries and builds on both transports count; health,
// stats and handoff endpoints are exempt (probes and rebalances must work on
// an overloaded node). Safe to call while serving — in-flight requests
// release into the limiter they acquired from.
func (s *Server) SetWorkLimits(inflight, queue int) {
	s.work.Store(newLimiter(inflight, queue, s.m.queueWait))
}

// shedPaths are the endpoints subject to load shedding: the ones doing
// query/build work. Health and readiness probes must answer on an overloaded
// node (shedding them would flap the cluster's routing), stats feed
// dashboards, and the handoff surface stays up so a draining or struggling
// node can still move its structures away.
func shedsLoad(path string) bool {
	switch path {
	case "/build", "/mutate", "/dist", "/dist-avoiding", "/dist-avoiding-vertex", "/batch-query":
		return true
	}
	return false
}

// SetIdentity names the node for /healthz and /stats; a cluster shard sets
// role "shard" plus its member ID so router probes and operators can tell
// nodes apart. Safe to call while the server is already handling requests.
func (s *Server) SetIdentity(role, id string) {
	s.ident.Store(&identity{role: role, id: id})
}

// identitySnapshot returns the current (role, id), empty before SetIdentity.
func (s *Server) identitySnapshot() identity {
	if p := s.ident.Load(); p != nil {
		return *p
	}
	return identity{}
}

// SetDraining flips the readiness gate: a draining server answers /readyz
// with 503 so load balancers and the cluster router stop sending it new
// work while in-flight requests finish. Serve calls it on shutdown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// SetWireAddr advertises the binary-protocol listen address on /healthz and
// /readyz (empty = wire serving off). Safe to call while serving — a
// restarted wire listener on a new port re-advertises itself and probing
// routers pick the change up.
func (s *Server) SetWireAddr(addr string) { s.wireAddr.Store(&addr) }

// WireAddr returns the advertised binary-protocol address, "" when unset.
func (s *Server) WireAddr() string {
	if p := s.wireAddr.Load(); p != nil {
		return *p
	}
	return ""
}

// ServeHTTP implements http.Handler. Two pieces of the robustness story run
// here, before any handler: the request's deadline budget (BudgetHeader)
// becomes a context deadline, and work-bearing endpoints pass through the
// load shedder — a saturated node answers 503 + Retry-After immediately
// instead of queueing without bound and missing every deadline at once.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	start := time.Now()
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	}
	if h := r.Header.Get(BudgetHeader); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
			defer cancel()
			r = r.WithContext(ctx)
		}
	}
	// A trace header makes the request traced: its spans travel back in the
	// response's span header and the trace is retained at /debug/traces.
	var tr *telemetry.Trace
	if id, ok := telemetry.ParseTraceID(r.Header.Get(telemetry.TraceHeader)); ok {
		tr = telemetry.NewTrace(id)
		r = r.WithContext(telemetry.WithTrace(r.Context(), tr))
	}
	sw := statusWriter{ResponseWriter: w}
	if shedsLoad(r.URL.Path) {
		work := s.work.Load()
		if !work.acquire(r.Context(), s.draining.Load()) {
			if r.Context().Err() != nil {
				// The budget ran out while queued: the caller is gone, answer
				// 504 so retries count it against the right failure mode.
				s.writeErr(&sw, http.StatusGatewayTimeout, fmt.Errorf("deadline budget exhausted while queued"))
			} else {
				s.m.shed.Inc()
				sw.Header().Set("Retry-After", s.m.retryAfterSecs())
				s.writeErr(&sw, http.StatusServiceUnavailable, fmt.Errorf("server overloaded; retry later"))
			}
			s.observeHTTP(r.URL.Path, start, sw.status)
			return
		}
		defer work.release()
	}
	if tr == nil {
		s.mux.ServeHTTP(&sw, r)
		s.observeHTTP(r.URL.Path, start, sw.status)
		return
	}
	// Traced path: buffer the response so the span header (complete only
	// after the handler returns) still precedes the body.
	bw := &bufferedWriter{statusWriter: statusWriter{ResponseWriter: w}}
	s.mux.ServeHTTP(bw, r)
	tr.Add("shard.handle", start)
	bw.Header().Set(telemetry.SpanHeader, tr.SpansJSON())
	bw.flush()
	s.traces.Record(tr, r.URL.Path, time.Since(start))
	s.observeHTTP(r.URL.Path, start, bw.status)
}

// observeHTTP records one finished HTTP request into its route's
// outcome-labeled histogram; unregistered paths (404s) are not a route and
// record nothing.
func (s *Server) observeHTTP(path string, start time.Time, status int) {
	if h := s.m.httpByRoute[path]; h != nil {
		if status == 0 {
			status = http.StatusOK
		}
		h.Observe(time.Since(start), telemetry.OutcomeOf(status))
	}
}

// handleMetrics serves the shard's Prometheus exposition: the server's own
// registry merged with the store's, one scrape surface per node.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := telemetry.Merge(s.m.reg.Snapshot(), s.store.Telemetry().Snapshot())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = snap.WriteProm(w)
}

// handleMetricsJSON serves the same merged snapshot as JSON — the payload
// the cluster router scrapes and merges into /metrics/fleet.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	snap := telemetry.Merge(s.m.reg.Snapshot(), s.store.Telemetry().Snapshot())
	s.writeJSON(w, http.StatusOK, snap)
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, code int, err error) {
	s.m.errs.Inc()
	s.writeJSON(w, code, map[string]string{"error": err.Error()})
}

// BuildPair names one (source, ε) structure of a /build request.
type BuildPair struct {
	Source int     `json:"source"`
	Eps    float64 `json:"eps"`
}

// BuildRequest is the body of POST /build. The graph arrives either as the
// library text format (Graph) or inline as a vertex count plus an edge list
// (N, Edges). Edge structures are built for the explicit Pairs when given,
// otherwise for the cross product Sources × Eps; empty defaults are source 0,
// ε = DefaultEps, algorithm auto. The cluster router uses Pairs to hand each
// shard exactly the subset of structures it owns, which is generally not a
// cross product. VertexSources additionally builds one VERTEX-failure
// structure per listed source (the vertex model has no ε/algorithm
// dimension); a request carrying only VertexSources builds no edge
// structures at all.
type BuildRequest struct {
	Graph         string      `json:"graph,omitempty"`
	N             int         `json:"n,omitempty"`
	Edges         [][2]int    `json:"edges,omitempty"`
	Sources       []int       `json:"sources,omitempty"`
	Eps           []float64   `json:"eps,omitempty"`
	Pairs         []BuildPair `json:"pairs,omitempty"`
	Alg           string      `json:"alg,omitempty"`
	VertexSources []int       `json:"vertexSources,omitempty"`
}

// ResolvedPairs expands the request into the explicit (source, ε) list of
// edge structures it asks for: Pairs verbatim when present, otherwise
// Sources × Eps with the usual defaults. A vertex-only request (nothing but
// VertexSources) resolves to no edge pairs — the implicit default pair is a
// convenience for edge clients, not an obligation.
func (req *BuildRequest) ResolvedPairs() []BuildPair {
	if len(req.Pairs) > 0 {
		return req.Pairs
	}
	if len(req.Sources) == 0 && len(req.Eps) == 0 && len(req.VertexSources) > 0 {
		return nil
	}
	sources := req.Sources
	if len(sources) == 0 {
		sources = []int{0}
	}
	epsGrid := req.Eps
	if len(epsGrid) == 0 {
		epsGrid = []float64{DefaultEps}
	}
	pairs := make([]BuildPair, 0, len(sources)*len(epsGrid))
	for _, src := range sources {
		for _, eps := range epsGrid {
			pairs = append(pairs, BuildPair{Source: src, Eps: eps})
		}
	}
	return pairs
}

// checkTextGraphSize rejects a text-format graph whose "p <n> <m>" header
// declares more than MaxBuildN vertices before any adjacency is allocated.
func checkTextGraphSize(text string) error {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "p" {
			return fmt.Errorf("bad graph text: first record %q is not a p-header", line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("bad graph text: vertex count %q", fields[1])
		}
		if n > MaxBuildN {
			return fmt.Errorf("n = %d exceeds the limit of %d vertices", n, MaxBuildN)
		}
		return nil
	}
	return fmt.Errorf("empty graph text")
}

// GraphFromBuildRequest materialises and validates the graph a BuildRequest
// carries (text form or inline n+edges). The cluster router shares this with
// handleBuild so both reject oversized or malformed graphs identically.
func GraphFromBuildRequest(req *BuildRequest) (*ftbfs.Graph, error) {
	switch {
	case req.Graph != "":
		if err := checkTextGraphSize(req.Graph); err != nil {
			return nil, err
		}
		g, err := ftbfs.ReadGraph(strings.NewReader(req.Graph))
		if err != nil {
			return nil, fmt.Errorf("bad graph text: %w", err)
		}
		return g, nil
	case req.N > 0:
		if req.N > MaxBuildN {
			return nil, fmt.Errorf("n = %d exceeds the limit of %d vertices", req.N, MaxBuildN)
		}
		g := ftbfs.NewGraph(req.N)
		for _, e := range req.Edges {
			if err := g.AddEdge(e[0], e[1]); err != nil {
				return nil, err
			}
		}
		return g, nil
	default:
		return nil, fmt.Errorf(`provide "graph" (text format) or "n"+"edges"`)
	}
}

// StructureInfo summarises one built structure in a BuildResponse.
type StructureInfo struct {
	Source     int     `json:"source"`
	Eps        float64 `json:"eps"`
	Alg        string  `json:"alg"`
	Size       int     `json:"size"`
	Backup     int     `json:"backup"`
	Reinforced int     `json:"reinforced"`
}

// VertexStructureInfo summarises one built vertex-failure structure in a
// BuildResponse.
type VertexStructureInfo struct {
	Source int `json:"source"`
	Size   int `json:"size"`
	Pairs  int `json:"pairs"`
}

// BuildResponse is the reply of POST /build. Fingerprint keys every
// subsequent query for this graph. VertexStructures is parallel to the
// request's VertexSources.
type BuildResponse struct {
	Fingerprint      string                `json:"fingerprint"`
	N                int                   `json:"n"`
	M                int                   `json:"m"`
	Structures       []StructureInfo       `json:"structures"`
	VertexStructures []VertexStructureInfo `json:"vertexStructures,omitempty"`
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req BuildRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	g, err := GraphFromBuildRequest(&req)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	alg, err := core.ParseAlgorithm(req.Alg)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	pairs := req.ResolvedPairs()
	fp, err := s.store.AddGraph(g)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	reqs := make([]store.Req, len(pairs))
	for i, p := range pairs {
		reqs[i] = store.Req{Source: p.Source, Eps: p.Eps, Alg: alg}
	}
	sts, err := s.store.GetOrBuildMany(r.Context(), fp, reqs)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	resp := BuildResponse{Fingerprint: fmt.Sprintf("%016x", fp), N: g.N(), M: g.M()}
	for i, st := range sts {
		resp.Structures = append(resp.Structures, StructureInfo{
			Source:     reqs[i].Source,
			Eps:        reqs[i].Eps,
			Alg:        alg.String(),
			Size:       st.Size(),
			Backup:     st.BackupCount(),
			Reinforced: st.ReinforcedCount(),
		})
	}
	for _, src := range req.VertexSources {
		vst, err := s.store.GetOrBuildVertex(r.Context(), fp, src)
		if err != nil {
			s.writeErr(w, statusFor(err), err)
			return
		}
		resp.VertexStructures = append(resp.VertexStructures, VertexStructureInfo{
			Source: src,
			Size:   vst.Size(),
			Pairs:  vst.Pairs(),
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// MutationJSON is one edge mutation of a /mutate request: op "insert" or
// "delete" plus the edge's endpoints.
type MutationJSON struct {
	Op string `json:"op"`
	U  int    `json:"u"`
	V  int    `json:"v"`
}

// MutateRequest is the body of POST /mutate: the graph's lineage (the
// fingerprint /build returned — stable across generations) plus an ordered
// mutation batch. The batch applies atomically: one invalid mutation fails
// the whole batch and the serving generation does not change.
type MutateRequest struct {
	Graph     string         `json:"graph"`
	Mutations []MutationJSON `json:"mutations"`
}

// ParsedMutations validates and converts the request's mutation list. The
// cluster router shares this with handleMutate so both tiers reject a
// malformed batch identically, before any shard does work.
func (req *MutateRequest) ParsedMutations() ([]ftbfs.Mutation, error) {
	if len(req.Mutations) == 0 {
		return nil, fmt.Errorf("empty mutation batch")
	}
	muts := make([]ftbfs.Mutation, len(req.Mutations))
	for i, m := range req.Mutations {
		var op ftbfs.MutationOp
		switch m.Op {
		case "insert":
			op = ftbfs.MutInsert
		case "delete":
			op = ftbfs.MutDelete
		default:
			return nil, fmt.Errorf(`mutation %d: op %q is not "insert" or "delete"`, i, m.Op)
		}
		muts[i] = ftbfs.Mutation{Op: op, U: m.U, V: m.V}
	}
	return muts, nil
}

// MutateResponse is the reply of POST /mutate: the new serving generation's
// identity plus how each resident structure crossed over (the convergence
// ledger the cluster router aggregates). Graph echoes the lineage — the key
// queries keep using; Fingerprint is the new generation's content identity.
type MutateResponse struct {
	Graph         string `json:"graph"`
	Gen           uint64 `json:"gen"`
	Fingerprint   string `json:"fingerprint"`
	RebuildsDelta int    `json:"rebuildsDelta"`
	RebuildsFull  int    `json:"rebuildsFull"`
}

// handleMutate applies one edge-mutation batch to a registered graph. The
// store does the heavy lifting — rebuilding resident structures against the
// new generation while the old one keeps serving, then swapping atomically —
// so this handler is thin: parse, validate, delegate, classify the error.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req MutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	lineage, err := strconv.ParseUint(req.Graph, 16, 64)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad graph fingerprint %q", req.Graph))
		return
	}
	muts, err := req.ParsedMutations()
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if _, ok := s.store.Graph(lineage); !ok {
		// 404, not 400: on a cluster shard the graph may not have reached
		// this replica, and the router treats 404 as tolerable shard state.
		err := &UnknownGraphError{Fingerprint: lineage}
		s.writeErr(w, statusFor(err), err)
		return
	}
	res, err := s.store.Mutate(r.Context(), lineage, muts)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, MutateResponse{
		Graph:         fmt.Sprintf("%016x", res.Lineage),
		Gen:           res.Gen,
		Fingerprint:   fmt.Sprintf("%016x", res.Fingerprint),
		RebuildsDelta: res.RebuildsDelta,
		RebuildsFull:  res.RebuildsFull,
	})
}

// QueryRequest addresses one structure plus one (target, failure) query.
// GET requests carry the same fields as URL parameters (graph, source, eps,
// alg, v, fu, fv, fw). V is a pointer so an omitted target is
// distinguishable from vertex 0 — the distance endpoints reject it as
// malformed; FailedVertex (fw) likewise, and its presence switches the
// request to the vertex failure model (eps/alg are then ignored: the
// vertex structure has neither dimension).
type QueryRequest struct {
	Graph        string   `json:"graph"`
	Source       int      `json:"source"`
	Eps          *float64 `json:"eps,omitempty"`
	Alg          string   `json:"alg,omitempty"`
	V            *int     `json:"v,omitempty"`
	Fail         *[2]int  `json:"fail,omitempty"`
	FailedVertex *int     `json:"failedVertex,omitempty"`
}

// resolveKey turns a structure address into the registry key the router and
// the shard server agree on — routing hashes exactly what the store keys.
func resolveKey(graphHex string, source int, eps *float64, algName string) (store.Key, error) {
	fp, err := strconv.ParseUint(graphHex, 16, 64)
	if err != nil {
		return store.Key{}, fmt.Errorf("bad graph fingerprint %q", graphHex)
	}
	alg, err := core.ParseAlgorithm(algName)
	if err != nil {
		return store.Key{}, err
	}
	e := DefaultEps
	if eps != nil {
		e = *eps
	}
	if math.IsNaN(e) || math.IsInf(e, 0) {
		return store.Key{}, fmt.Errorf("eps must be finite, got %v", e)
	}
	if e == 0 {
		// JSON "-0" parses to negative zero; fold it into +0 so the key —
		// and the cluster ring position derived from its bits — is unique.
		e = 0
	}
	return store.Key{Graph: fp, Source: source, Eps: e, Alg: alg}, nil
}

// resolveVertexModelKey turns a vertex-failure address into its canonical
// registry key: graph + source only, ε and algorithm pinned at their zero
// values by store.VertexKey so every addressing of one vertex structure
// maps to one key — and one cluster ring position.
func resolveVertexModelKey(graphHex string, source int) (store.Key, error) {
	fp, err := strconv.ParseUint(graphHex, 16, 64)
	if err != nil {
		return store.Key{}, fmt.Errorf("bad graph fingerprint %q", graphHex)
	}
	return store.VertexKey(fp, source), nil
}

// EdgeKey resolves the edge-model structure key the request addresses —
// what /dist and /dist-avoiding serve. A stray failedVertex/fw field does
// not change the model: the endpoint, not the parameter, picks the failure
// model (KeyForEndpoint). The cluster router routes on exactly this key.
func (q *QueryRequest) EdgeKey() (store.Key, error) {
	return resolveKey(q.Graph, q.Source, q.Eps, q.Alg)
}

// VertexKey resolves the vertex-model structure key the request addresses —
// what /dist-avoiding-vertex serves (graph + source only; ε and algorithm
// do not exist in the vertex model and are ignored).
func (q *QueryRequest) VertexKey() (store.Key, error) {
	return resolveVertexModelKey(q.Graph, q.Source)
}

// KeyForEndpoint resolves the structure key a request to the given URL path
// addresses: the vertex-model key for /dist-avoiding-vertex, the edge key
// for every other point endpoint. The router shares this with the shard
// handlers so both tiers route and serve on the same key.
func (q *QueryRequest) KeyForEndpoint(path string) (store.Key, error) {
	if path == "/dist-avoiding-vertex" {
		return q.VertexKey()
	}
	return q.EdgeKey()
}

// ParseQuery decodes a QueryRequest from a POST body or GET parameters.
func ParseQuery(r *http.Request) (QueryRequest, error) {
	var q QueryRequest
	if r.Method == http.MethodPost {
		if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
			return q, fmt.Errorf("bad body: %w", err)
		}
		return q, nil
	}
	if r.Method != http.MethodGet {
		return q, fmt.Errorf("GET or POST required")
	}
	vals := r.URL.Query()
	q.Graph = vals.Get("graph")
	q.Alg = vals.Get("alg")
	intParam := func(name string, dst *int) error {
		s := vals.Get(name)
		if s == "" {
			return nil
		}
		x, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("bad %s=%q", name, s)
		}
		*dst = x
		return nil
	}
	if err := intParam("source", &q.Source); err != nil {
		return q, err
	}
	if vals.Get("v") != "" {
		var v int
		if err := intParam("v", &v); err != nil {
			return q, err
		}
		q.V = &v
	}
	if s := vals.Get("eps"); s != "" {
		x, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return q, fmt.Errorf("bad eps=%q", s)
		}
		q.Eps = &x
	}
	if vals.Get("fu") != "" || vals.Get("fv") != "" {
		// Half a failed edge is a malformed query, not "the other endpoint
		// is vertex 0" — answering that would be confidently wrong.
		if vals.Get("fu") == "" || vals.Get("fv") == "" {
			return q, fmt.Errorf("failed edge needs both fu= and fv=")
		}
		var fail [2]int
		if err := intParam("fu", &fail[0]); err != nil {
			return q, err
		}
		if err := intParam("fv", &fail[1]); err != nil {
			return q, err
		}
		q.Fail = &fail
	}
	if vals.Get("fw") != "" {
		var fw int
		if err := intParam("fw", &fw); err != nil {
			return q, err
		}
		q.FailedVertex = &fw
	}
	return q, nil
}

// UnknownGraphPrefix starts every UnknownGraphError message. It is a wire
// contract, not just wording: per-slot /batch-query errors travel as
// strings, and the cluster router matches this prefix to tell retryable
// shard state ("this replica is cold") from a final verdict on the query.
const UnknownGraphPrefix = "unknown graph "

// UnknownGraphError reports a query addressing a graph this node has not
// registered. It maps to 404 rather than 400: on a cluster shard the graph
// may simply not have reached this replica yet, so the router treats 404 as
// retryable shard state while every other 4xx is a definitive client error
// relayed without burning the remaining replicas.
type UnknownGraphError struct{ Fingerprint uint64 }

func (e *UnknownGraphError) Error() string {
	return fmt.Sprintf("%s%016x (POST /build first)", UnknownGraphPrefix, e.Fingerprint)
}

// statusFor classifies an error: a spent deadline budget is 504 (the caller
// stopped waiting — retryable against a faster replica), persist-directory
// faults are the server's (503-adjacent 500), an unknown graph is 404
// (absent state), everything else on these paths is caused by the request
// (invalid parameters, non-edge failure).
func statusFor(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	var pe *store.PersistError
	if errors.As(err, &pe) {
		return http.StatusInternalServerError
	}
	var ug *UnknownGraphError
	if errors.As(err, &ug) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// structureForKey resolves (load-through or build-through) a structure by
// registry key, validating the optional target vertex against its graph.
// ctx carries the request's deadline budget into the store's miss path.
func (s *Server) structureForKey(ctx context.Context, k store.Key, v *int) (*ftbfs.Structure, error) {
	g, ok := s.store.Graph(k.Graph)
	if !ok {
		return nil, &UnknownGraphError{Fingerprint: k.Graph}
	}
	if v != nil && (*v < 0 || *v >= g.N()) {
		return nil, fmt.Errorf("vertex %d out of range [0,%d)", *v, g.N())
	}
	// GetOrBuild serves a resident structure on its fast path; misses fall
	// through to load- or build-through.
	return s.store.GetOrBuild(ctx, k)
}

// structureFor resolves the edge structure a query addresses (/dist and
// /dist-avoiding always serve the edge model, whatever stray fields the
// request carries).
func (s *Server) structureFor(ctx context.Context, q QueryRequest) (*ftbfs.Structure, store.Key, error) {
	k, err := q.EdgeKey()
	if err != nil {
		return nil, k, err
	}
	st, err := s.structureForKey(ctx, k, q.V)
	return st, k, err
}

type distResponse struct {
	Dist int `json:"dist"` // -1 means unreachable
}

func (s *Server) handleDist(w http.ResponseWriter, r *http.Request) {
	q, err := ParseQuery(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if q.V == nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("missing target vertex v"))
		return
	}
	st, _, err := s.structureFor(r.Context(), q)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	// Intact distances come from the structure's shared cached vector — no
	// oracle (and no BFS scratch allocation) needed.
	d := st.Dist(*q.V)
	s.m.queries.Inc()
	s.writeJSON(w, http.StatusOK, distResponse{Dist: d})
}

func (s *Server) handleDistAvoiding(w http.ResponseWriter, r *http.Request) {
	q, err := ParseQuery(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if q.V == nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("missing target vertex v"))
		return
	}
	if q.Fail == nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("missing failed edge (fail=[u,v] or fu=&fv=)"))
		return
	}
	st, _, err := s.structureFor(r.Context(), q)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	// DistAvoiding runs against the structure's QueryPlan: O(1) for
	// non-tree-edge failures, subtree-local repair otherwise.
	var d int
	err = st.OraclePool().Do(func(o *ftbfs.Oracle) error {
		var qerr error
		d, qerr = o.DistAvoiding(*q.V, q.Fail[0], q.Fail[1])
		return qerr
	})
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.m.queries.Inc()
	s.writeJSON(w, http.StatusOK, distResponse{Dist: d})
}

// vertexStructureForKey resolves (load-through or build-through) a
// vertex-failure structure by registry key, validating the optional target
// vertex against its graph.
func (s *Server) vertexStructureForKey(ctx context.Context, k store.Key, v *int) (*ftbfs.VertexStructure, error) {
	g, ok := s.store.Graph(k.Graph)
	if !ok {
		return nil, &UnknownGraphError{Fingerprint: k.Graph}
	}
	if v != nil && (*v < 0 || *v >= g.N()) {
		return nil, fmt.Errorf("vertex %d out of range [0,%d)", *v, g.N())
	}
	return s.store.GetOrBuildVertex(ctx, k.Graph, k.Source)
}

func (s *Server) handleDistAvoidingVertex(w http.ResponseWriter, r *http.Request) {
	q, err := ParseQuery(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if q.V == nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("missing target vertex v"))
		return
	}
	if q.FailedVertex == nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("missing failed vertex (failedVertex or fw=)"))
		return
	}
	k, err := q.VertexKey()
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.vertexStructureForKey(r.Context(), k, q.V)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	// DistAvoidingVertex runs against the structure's VertexQueryPlan: O(1)
	// for off-tree-path failures, subtree-local repair otherwise.
	var d int
	err = st.OraclePool().Do(func(o *ftbfs.VertexOracle) error {
		var qerr error
		d, qerr = o.DistAvoidingVertex(*q.V, *q.FailedVertex)
		return qerr
	})
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.m.queries.Inc()
	s.writeJSON(w, http.StatusOK, distResponse{Dist: d})
}

// BatchQuery is one entry of a /batch-query vector: the target vertex, the
// simulated failure, and an optional structure address overriding the
// request-level default — one batch may span many structures (the cluster
// router relies on this to ship one sub-batch per shard). The failure is
// either a failed edge (Fail) or, when FailedVertex is set, a failed
// vertex: the slot then addresses the (graph, source) vertex-failure
// structure and Eps/Alg are ignored.
type BatchQuery struct {
	Graph        string   `json:"graph,omitempty"`
	Source       *int     `json:"source,omitempty"`
	Eps          *float64 `json:"eps,omitempty"`
	Alg          string   `json:"alg,omitempty"`
	V            int      `json:"v"`
	Fail         [2]int   `json:"fail"`
	FailedVertex *int     `json:"failedVertex,omitempty"`
}

// BatchQueryRequest is the body of POST /batch-query: a default structure
// address plus a vector of failure queries. Queries addressing the same
// structure are answered with one pooled oracle, grouped by failed edge so
// each tree-edge failure is repaired once for all its targets.
type BatchQueryRequest struct {
	Graph   string       `json:"graph,omitempty"`
	Source  int          `json:"source,omitempty"`
	Eps     *float64     `json:"eps,omitempty"`
	Alg     string       `json:"alg,omitempty"`
	Queries []BatchQuery `json:"queries"`
}

// KeyFor resolves the structure key addressed by query i, applying the
// request-level defaults; a slot carrying a failed vertex resolves to the
// vertex-model key. The cluster router routes on exactly this key.
func (req *BatchQueryRequest) KeyFor(i int) (store.Key, error) {
	q := &req.Queries[i]
	graph := q.Graph
	if graph == "" {
		graph = req.Graph
	}
	source := req.Source
	if q.Source != nil {
		source = *q.Source
	}
	if q.FailedVertex != nil {
		return resolveVertexModelKey(graph, source)
	}
	eps := req.Eps
	if q.Eps != nil {
		eps = q.Eps
	}
	alg := q.Alg
	if alg == "" {
		alg = req.Alg
	}
	return resolveKey(graph, source, eps, alg)
}

// BatchQueryResponse is the reply of POST /batch-query. Dists is parallel to
// the request's query vector; a query that failed individually (bad vertex,
// non-edge, unknown structure) has its message in the matching Errors slot
// and Dists holding -1. Errors is omitted entirely when every query
// succeeded, so fully-valid batches keep the compact wire shape.
type BatchQueryResponse struct {
	Dists  []int    `json:"dists"`            // -1 means unreachable (or errored slot)
	Errors []string `json:"errors,omitempty"` // parallel to Dists; "" = ok
}

// queryGroup is one structure's worth of a batch: the resolved key plus the
// request slots (indexes into the batch vector) it answers. Exactly one of
// queries/vqueries is populated, decided by the key's model.
type queryGroup struct {
	key      store.Key
	slots    []int
	queries  []ftbfs.FailureQuery
	vqueries []ftbfs.VertexFailureQuery
}

// answerGroups resolves each group's structure and answers its slots with one
// pooled oracle, writing into dists/errs (indexed by the groups' slots) and
// returning the number of individually-successful queries. Groups are
// independent (disjoint slots, one pooled oracle each), so multi-structure
// batches answer them concurrently — one cold structure's build-through must
// not serialise every other group of the batch behind it. The dominant
// single-structure batch skips the goroutine machinery and runs inline on the
// calling goroutine (this is the gated BenchmarkServeQueries/batch-query16
// path); concurrency is bounded by the server-wide groupSem so batch bursts
// cannot amplify into unbounded concurrent builds. Both the HTTP /batch-query
// handler and the wire-protocol batch handler funnel here, which is what
// makes the two transports answer-identical by construction.
func (s *Server) answerGroups(ctx context.Context, groups []*queryGroup, dists []int, errs []string) uint64 {
	var answered atomic.Uint64
	answerGroup := func(gr *queryGroup) {
		failSlots := func(err error) {
			for _, i := range gr.slots {
				dists[i] = ftbfs.Unreachable
				errs[i] = err.Error()
			}
		}
		subDists := make([]int, len(gr.slots))
		subErrs := make([]error, len(gr.slots))
		if gr.key.Model == store.ModelVertex {
			st, err := s.vertexStructureForKey(ctx, gr.key, nil)
			if err != nil {
				failSlots(err)
				return
			}
			_ = st.OraclePool().Do(func(o *ftbfs.VertexOracle) error {
				o.DistAvoidingVertexEach(gr.vqueries, subDists, subErrs)
				return nil
			})
		} else {
			st, err := s.structureForKey(ctx, gr.key, nil)
			if err != nil {
				failSlots(err)
				return
			}
			_ = st.OraclePool().Do(func(o *ftbfs.Oracle) error {
				o.DistAvoidingEach(gr.queries, subDists, subErrs)
				return nil
			})
		}
		for j, i := range gr.slots {
			dists[i] = subDists[j]
			if subErrs[j] != nil {
				errs[i] = subErrs[j].Error()
			} else {
				answered.Add(1)
			}
		}
	}
	// acquireSem respects the caller's budget: a batch stuck behind other
	// groups' cold builds gives up when its deadline passes, failing its own
	// slots with the 504-equivalent error instead of occupying the queue.
	acquireSem := func(gr *queryGroup) bool {
		select {
		case s.groupSem <- struct{}{}:
			return true
		case <-ctx.Done():
			for _, i := range gr.slots {
				dists[i] = ftbfs.Unreachable
				errs[i] = ctx.Err().Error()
			}
			return false
		}
	}
	switch len(groups) {
	case 0:
	case 1:
		// Inline on the calling goroutine, but still under the server-wide
		// cap: a burst of single-structure batches on distinct cold keys
		// is bounded exactly like a multi-group fan-out.
		if !acquireSem(groups[0]) {
			break
		}
		answerGroup(groups[0])
		<-s.groupSem
	default:
		var wg sync.WaitGroup
		for _, gr := range groups {
			gr := gr
			if !acquireSem(gr) {
				continue
			}
			wg.Add(1)
			go func() {
				defer func() { <-s.groupSem; wg.Done() }()
				answerGroup(gr)
			}()
		}
		wg.Wait()
	}
	return answered.Load()
}

func (s *Server) handleBatchQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req BatchQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("empty query vector"))
		return
	}
	dists := make([]int, len(req.Queries))
	errs := make([]string, len(req.Queries))
	// Group the vector by addressed structure, preserving first-seen order;
	// a query with an unresolvable address errors its own slot only. The
	// key's Model decides which query slice a group fills — slots of one
	// group are homogeneous by construction (vertex slots resolve to vertex
	// keys), so exactly one of queries/vqueries is populated.
	var groups []*queryGroup
	byKey := make(map[store.Key]*queryGroup)
	for i := range req.Queries {
		k, err := req.KeyFor(i)
		if err != nil {
			dists[i] = ftbfs.Unreachable
			errs[i] = err.Error()
			continue
		}
		gr := byKey[k]
		if gr == nil {
			gr = &queryGroup{key: k}
			byKey[k] = gr
			groups = append(groups, gr)
		}
		q := req.Queries[i]
		gr.slots = append(gr.slots, i)
		if k.Model == store.ModelVertex {
			gr.vqueries = append(gr.vqueries, ftbfs.VertexFailureQuery{V: q.V, Failed: *q.FailedVertex})
		} else {
			gr.queries = append(gr.queries, ftbfs.FailureQuery{V: q.V, FailedU: q.Fail[0], FailedV: q.Fail[1]})
		}
	}
	s.m.queries.Add(s.answerGroups(r.Context(), groups, dists, errs))
	resp := BatchQueryResponse{Dists: dists}
	for _, e := range errs {
		if e != "" {
			resp.Errors = errs
			break
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// StatsResponse is the reply of GET /stats. Store carries the registry
// counters (hits, misses, loads, builds, evictions, saves) alongside the
// request-level totals.
type StatsResponse struct {
	Role          string      `json:"role,omitempty"`
	ID            string      `json:"id,omitempty"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	Requests      uint64      `json:"requests"`
	WireRequests  uint64      `json:"wire_requests"`
	Queries       uint64      `json:"queries"`
	Errors        uint64      `json:"errors"`
	Shed          uint64      `json:"shed"` // requests refused by the load shedder
	Draining      bool        `json:"draining,omitempty"`
	Store         store.Stats `json:"store"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	ident := s.identitySnapshot()
	s.writeJSON(w, http.StatusOK, StatsResponse{
		Role:          ident.role,
		ID:            ident.id,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.m.requests.Value(),
		WireRequests:  s.m.wireRequests.Value(),
		Queries:       s.m.queries.Value(),
		Errors:        s.m.errs.Value(),
		Shed:          s.m.shed.Value(),
		Draining:      s.draining.Load(),
		Store:         s.store.Stats(),
	})
}

// HealthResponse is the reply of GET /healthz: pure liveness plus identity.
// It never consults the store — a wedged build must not make probes flap.
type HealthResponse struct {
	OK            bool    `json:"ok"`
	Role          string  `json:"role,omitempty"`
	ID            string  `json:"id,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Wire is the advertised binary-protocol address, when serving one;
	// the cluster router's probes learn the fast path from this field.
	Wire string `json:"wire,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ident := s.identitySnapshot()
	s.writeJSON(w, http.StatusOK, HealthResponse{
		OK:            true,
		Role:          ident.role,
		ID:            ident.id,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Wire:          s.WireAddr(),
	})
}

// ReadyResponse is the reply of GET /readyz.
type ReadyResponse struct {
	Ready      bool `json:"ready"`
	Draining   bool `json:"draining,omitempty"`
	Graphs     int  `json:"graphs"`
	Structures int  `json:"structures"`
	// Wire mirrors HealthResponse.Wire: the binary-protocol address, if any.
	Wire string `json:"wire,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.store.Stats()
	resp := ReadyResponse{
		Ready:      !s.draining.Load(),
		Draining:   s.draining.Load(),
		Graphs:     st.Graphs,
		Structures: st.Structures,
		Wire:       s.WireAddr(),
	}
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, resp)
}

// drainable lets Serve flip a handler's readiness gate before draining;
// *Server implements it, and so does the cluster router.
type drainable interface{ SetDraining(bool) }

// Serve runs handler on addr until ctx is cancelled, then drains in-flight
// requests (graceful shutdown, 5 s deadline). ready, when non-nil, is called
// once with the bound address — useful with addr ":0". Handlers implementing
// SetDraining(bool) are marked draining first, so their /readyz flips to 503
// before the listener stops accepting; use ServeDraining to hold that 503
// window open long enough for load-balancer probes to observe it.
func Serve(ctx context.Context, addr string, handler http.Handler, ready func(addr string)) error {
	return ServeDraining(ctx, addr, handler, 0, ready)
}

// ServeDraining is Serve with an explicit drain grace: after shutdown is
// requested the handler is marked draining (its /readyz answers 503) and
// the listener keeps accepting for drainGrace before closing, giving load
// balancers and the cluster router's health probes a real window to stop
// routing new work here instead of discovering a closed port. A zero grace
// shuts down immediately (the right default for tests and one-node use).
func ServeDraining(ctx context.Context, addr string, handler http.Handler, drainGrace time.Duration, ready func(addr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler: handler,
		// Slowloris guard: a client trickling header bytes must not pin a
		// goroutine forever. Bodies are bounded by MaxBytesReader instead
		// of a ReadTimeout so legitimate large /build uploads still work.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if ready != nil {
		ready(ln.Addr().String())
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		if d, ok := handler.(drainable); ok {
			d.SetDraining(true)
		}
		if drainGrace > 0 {
			select {
			case err := <-errc: // listener died on its own mid-grace
				return err
			case <-time.After(drainGrace):
			}
		}
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return err
		}
		<-errc // srv.Serve has returned http.ErrServerClosed
		return nil
	}
}
