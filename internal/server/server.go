// Package server exposes the FT-BFS query service over HTTP/JSON: the
// operational layer that answers "dist(s, v) avoiding failed edge e" against
// structures held in an internal/store registry. Oracles are not
// concurrency-safe, so every query checks one out of the structure's
// OraclePool for the duration of the request; structures themselves are
// immutable and shared.
//
// Failure queries route through each structure's QueryPlan (built once by
// the store, shared by every oracle): a failed edge off H's BFS tree is an
// O(1) lookup of the cached intact vector, a failed tree edge repairs only
// the subtree hanging below it, and /batch-query vectors are answered in
// failed-edge groups so one repair serves every target of the same failure
// (Oracle.DistAvoidingMany). The repair scratches travel inside the pooled
// oracles, so the steady-state hot path allocates nothing.
//
// Endpoints:
//
//	POST /build          register a graph and build structures for it
//	GET|POST /dist           dist(s, v) in the intact structure H
//	GET|POST /dist-avoiding  dist(s, v) in H minus one failed edge
//	POST /batch-query    a vector of failure queries on one structure
//	GET  /stats          store and server counters
//
// Distances use -1 for "unreachable". Errors are {"error": "..."} with a
// 4xx/5xx status.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ftbfs"
	"ftbfs/internal/core"
	"ftbfs/internal/store"
)

// DefaultEps is the tradeoff parameter assumed when a request leaves ε out.
const DefaultEps = 0.25

// MaxBuildN caps the vertex count of a /build request: a single small JSON
// body must not be able to make the server allocate gigabytes of adjacency.
const MaxBuildN = 1_000_000

// maxBodyBytes bounds every JSON request body (graph text for 1M edges is
// well under this).
const maxBodyBytes = 64 << 20

// Server is the HTTP handler of the query service.
type Server struct {
	store *store.Store
	mux   *http.ServeMux
	start time.Time

	requests atomic.Uint64 // HTTP requests accepted
	queries  atomic.Uint64 // individual distance queries answered
	errs     atomic.Uint64 // requests answered with an error status
}

// New returns a service over the given registry.
func New(st *store.Store) *Server {
	s := &Server{store: st, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/build", s.handleBuild)
	s.mux.HandleFunc("/dist", s.handleDist)
	s.mux.HandleFunc("/dist-avoiding", s.handleDistAvoiding)
	s.mux.HandleFunc("/batch-query", s.handleBatchQuery)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, code int, err error) {
	s.errs.Add(1)
	s.writeJSON(w, code, map[string]string{"error": err.Error()})
}

// BuildRequest is the body of POST /build. The graph arrives either as the
// library text format (Graph) or inline as a vertex count plus an edge list
// (N, Edges). Structures are built for the cross product Sources × Eps;
// empty defaults are source 0, ε = DefaultEps, algorithm auto.
type BuildRequest struct {
	Graph   string    `json:"graph,omitempty"`
	N       int       `json:"n,omitempty"`
	Edges   [][2]int  `json:"edges,omitempty"`
	Sources []int     `json:"sources,omitempty"`
	Eps     []float64 `json:"eps,omitempty"`
	Alg     string    `json:"alg,omitempty"`
}

// checkTextGraphSize rejects a text-format graph whose "p <n> <m>" header
// declares more than MaxBuildN vertices before any adjacency is allocated.
func checkTextGraphSize(text string) error {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "p" {
			return fmt.Errorf("bad graph text: first record %q is not a p-header", line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("bad graph text: vertex count %q", fields[1])
		}
		if n > MaxBuildN {
			return fmt.Errorf("n = %d exceeds the limit of %d vertices", n, MaxBuildN)
		}
		return nil
	}
	return fmt.Errorf("empty graph text")
}

// StructureInfo summarises one built structure in a BuildResponse.
type StructureInfo struct {
	Source     int     `json:"source"`
	Eps        float64 `json:"eps"`
	Alg        string  `json:"alg"`
	Size       int     `json:"size"`
	Backup     int     `json:"backup"`
	Reinforced int     `json:"reinforced"`
}

// BuildResponse is the reply of POST /build. Fingerprint keys every
// subsequent query for this graph.
type BuildResponse struct {
	Fingerprint string          `json:"fingerprint"`
	N           int             `json:"n"`
	M           int             `json:"m"`
	Structures  []StructureInfo `json:"structures"`
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req BuildRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	var g *ftbfs.Graph
	switch {
	case req.Graph != "":
		if err := checkTextGraphSize(req.Graph); err != nil {
			s.writeErr(w, http.StatusBadRequest, err)
			return
		}
		var err error
		if g, err = ftbfs.ReadGraph(strings.NewReader(req.Graph)); err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad graph text: %w", err))
			return
		}
	case req.N > 0:
		if req.N > MaxBuildN {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("n = %d exceeds the limit of %d vertices", req.N, MaxBuildN))
			return
		}
		g = ftbfs.NewGraph(req.N)
		for _, e := range req.Edges {
			if err := g.AddEdge(e[0], e[1]); err != nil {
				s.writeErr(w, http.StatusBadRequest, err)
				return
			}
		}
	default:
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf(`provide "graph" (text format) or "n"+"edges"`))
		return
	}
	alg, err := core.ParseAlgorithm(req.Alg)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	sources := req.Sources
	if len(sources) == 0 {
		sources = []int{0}
	}
	epsGrid := req.Eps
	if len(epsGrid) == 0 {
		epsGrid = []float64{DefaultEps}
	}
	fp, err := s.store.AddGraph(g)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	var reqs []store.Req
	for _, src := range sources {
		for _, eps := range epsGrid {
			reqs = append(reqs, store.Req{Source: src, Eps: eps, Alg: alg})
		}
	}
	sts, err := s.store.GetOrBuildMany(fp, reqs)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	resp := BuildResponse{Fingerprint: fmt.Sprintf("%016x", fp), N: g.N(), M: g.M()}
	for i, st := range sts {
		resp.Structures = append(resp.Structures, StructureInfo{
			Source:     reqs[i].Source,
			Eps:        reqs[i].Eps,
			Alg:        alg.String(),
			Size:       st.Size(),
			Backup:     st.BackupCount(),
			Reinforced: st.ReinforcedCount(),
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// queryRequest addresses one structure plus one (target, failure) query.
// GET requests carry the same fields as URL parameters (graph, source, eps,
// alg, v, fu, fv). V is a pointer so an omitted target is distinguishable
// from vertex 0 — the distance endpoints reject it as malformed.
type queryRequest struct {
	Graph  string   `json:"graph"`
	Source int      `json:"source"`
	Eps    *float64 `json:"eps,omitempty"`
	Alg    string   `json:"alg,omitempty"`
	V      *int     `json:"v,omitempty"`
	Fail   *[2]int  `json:"fail,omitempty"`
}

// key resolves the addressed structure key.
func (q *queryRequest) key() (store.Key, error) {
	fp, err := strconv.ParseUint(q.Graph, 16, 64)
	if err != nil {
		return store.Key{}, fmt.Errorf("bad graph fingerprint %q", q.Graph)
	}
	alg, err := core.ParseAlgorithm(q.Alg)
	if err != nil {
		return store.Key{}, err
	}
	eps := DefaultEps
	if q.Eps != nil {
		eps = *q.Eps
	}
	if math.IsNaN(eps) || math.IsInf(eps, 0) {
		return store.Key{}, fmt.Errorf("eps must be finite, got %v", eps)
	}
	return store.Key{Graph: fp, Source: q.Source, Eps: eps, Alg: alg}, nil
}

// parseQuery decodes a queryRequest from a POST body or GET parameters.
func parseQuery(r *http.Request) (queryRequest, error) {
	var q queryRequest
	if r.Method == http.MethodPost {
		if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
			return q, fmt.Errorf("bad body: %w", err)
		}
		return q, nil
	}
	if r.Method != http.MethodGet {
		return q, fmt.Errorf("GET or POST required")
	}
	vals := r.URL.Query()
	q.Graph = vals.Get("graph")
	q.Alg = vals.Get("alg")
	intParam := func(name string, dst *int) error {
		s := vals.Get(name)
		if s == "" {
			return nil
		}
		x, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("bad %s=%q", name, s)
		}
		*dst = x
		return nil
	}
	if err := intParam("source", &q.Source); err != nil {
		return q, err
	}
	if vals.Get("v") != "" {
		var v int
		if err := intParam("v", &v); err != nil {
			return q, err
		}
		q.V = &v
	}
	if s := vals.Get("eps"); s != "" {
		x, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return q, fmt.Errorf("bad eps=%q", s)
		}
		q.Eps = &x
	}
	if vals.Get("fu") != "" || vals.Get("fv") != "" {
		// Half a failed edge is a malformed query, not "the other endpoint
		// is vertex 0" — answering that would be confidently wrong.
		if vals.Get("fu") == "" || vals.Get("fv") == "" {
			return q, fmt.Errorf("failed edge needs both fu= and fv=")
		}
		var fail [2]int
		if err := intParam("fu", &fail[0]); err != nil {
			return q, err
		}
		if err := intParam("fv", &fail[1]); err != nil {
			return q, err
		}
		q.Fail = &fail
	}
	return q, nil
}

// statusFor classifies an error: persist-directory faults are the server's
// (503-adjacent 500), everything else on these paths is caused by the
// request (unknown graph, invalid parameters, non-edge failure).
func statusFor(err error) int {
	var pe *store.PersistError
	if errors.As(err, &pe) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// structureFor resolves (load-through or build-through) the structure a query
// addresses and validates the target vertex.
func (s *Server) structureFor(q queryRequest) (*ftbfs.Structure, store.Key, error) {
	k, err := q.key()
	if err != nil {
		return nil, k, err
	}
	g, ok := s.store.Graph(k.Graph)
	if !ok {
		return nil, k, fmt.Errorf("unknown graph %s (POST /build first)", q.Graph)
	}
	if q.V != nil && (*q.V < 0 || *q.V >= g.N()) {
		return nil, k, fmt.Errorf("vertex %d out of range [0,%d)", *q.V, g.N())
	}
	// GetOrBuild serves a resident structure on its fast path; misses fall
	// through to load- or build-through.
	st, err := s.store.GetOrBuild(k)
	if err != nil {
		return nil, k, err
	}
	return st, k, nil
}

type distResponse struct {
	Dist int `json:"dist"` // -1 means unreachable
}

func (s *Server) handleDist(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if q.V == nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("missing target vertex v"))
		return
	}
	st, _, err := s.structureFor(q)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	// Intact distances come from the structure's shared cached vector — no
	// oracle (and no BFS scratch allocation) needed.
	d := st.Dist(*q.V)
	s.queries.Add(1)
	s.writeJSON(w, http.StatusOK, distResponse{Dist: d})
}

func (s *Server) handleDistAvoiding(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if q.V == nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("missing target vertex v"))
		return
	}
	if q.Fail == nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("missing failed edge (fail=[u,v] or fu=&fv=)"))
		return
	}
	st, _, err := s.structureFor(q)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	// DistAvoiding runs against the structure's QueryPlan: O(1) for
	// non-tree-edge failures, subtree-local repair otherwise.
	var d int
	err = st.OraclePool().Do(func(o *ftbfs.Oracle) error {
		var qerr error
		d, qerr = o.DistAvoiding(*q.V, q.Fail[0], q.Fail[1])
		return qerr
	})
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.queries.Add(1)
	s.writeJSON(w, http.StatusOK, distResponse{Dist: d})
}

// BatchQueryRequest is the body of POST /batch-query: one structure address
// plus a vector of failure queries, answered with one pooled oracle through
// the query plan; the batch is validated up front and grouped by failed
// edge, so each tree-edge failure is repaired once for all its targets
// (Oracle.DistAvoidingMany).
type BatchQueryRequest struct {
	Graph   string   `json:"graph"`
	Source  int      `json:"source"`
	Eps     *float64 `json:"eps,omitempty"`
	Alg     string   `json:"alg,omitempty"`
	Queries []struct {
		V    int    `json:"v"`
		Fail [2]int `json:"fail"`
	} `json:"queries"`
}

type batchQueryResponse struct {
	Dists []int `json:"dists"` // -1 means unreachable
}

func (s *Server) handleBatchQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req BatchQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("empty query vector"))
		return
	}
	st, _, err := s.structureFor(queryRequest{Graph: req.Graph, Source: req.Source, Eps: req.Eps, Alg: req.Alg})
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	queries := make([]ftbfs.FailureQuery, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = ftbfs.FailureQuery{V: q.V, FailedU: q.Fail[0], FailedV: q.Fail[1]}
	}
	dists := make([]int, len(queries))
	err = st.OraclePool().Do(func(o *ftbfs.Oracle) error {
		_, qerr := o.DistAvoidingMany(queries, dists)
		return qerr
	})
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.queries.Add(uint64(len(queries)))
	s.writeJSON(w, http.StatusOK, batchQueryResponse{Dists: dists})
}

// StatsResponse is the reply of GET /stats.
type StatsResponse struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Requests      uint64      `json:"requests"`
	Queries       uint64      `json:"queries"`
	Errors        uint64      `json:"errors"`
	Store         store.Stats `json:"store"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	s.writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Queries:       s.queries.Load(),
		Errors:        s.errs.Load(),
		Store:         s.store.Stats(),
	})
}

// Serve runs handler on addr until ctx is cancelled, then drains in-flight
// requests (graceful shutdown, 5 s deadline). ready, when non-nil, is called
// once with the bound address — useful with addr ":0".
func Serve(ctx context.Context, addr string, handler http.Handler, ready func(addr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler: handler,
		// Slowloris guard: a client trickling header bytes must not pin a
		// goroutine forever. Bodies are bounded by MaxBytesReader instead
		// of a ReadTimeout so legitimate large /build uploads still work.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if ready != nil {
		ready(ln.Addr().String())
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return err
		}
		<-errc // srv.Serve has returned http.ErrServerClosed
		return nil
	}
}
