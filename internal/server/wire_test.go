package server

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"ftbfs"
	"ftbfs/internal/store"
	"ftbfs/internal/wire"
)

// newWireServer starts one Server behind both transports: an httptest HTTP
// listener and a loopback binary-protocol listener, with a connected client.
func newWireServer(t testing.TB) (*httptest.Server, *wire.Client, *store.Store) {
	t.Helper()
	st, err := store.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() { _ = wire.Serve(ctx, ln, srv) }()
	wc := wire.NewClient(ln.Addr().String(), 2)
	t.Cleanup(wc.Close)
	return ts, wc, st
}

// TestWireDifferentialVsHTTPAndOracle is the transport-equivalence gate:
// for every failable edge and every failable vertex, the binary protocol,
// the HTTP/JSON endpoint, and the in-process oracle must agree exactly.
func TestWireDifferentialVsHTTPAndOracle(t *testing.T) {
	ts, wc, st := newWireServer(t)
	g := testGraph(t, 50, 75, 31)
	fp, err := st.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	fpHex := fmt.Sprintf("%016x", fp)
	eps := 0.3
	est, err := ftbfs.Build(g, 0, eps)
	if err != nil {
		t.Fatal(err)
	}
	vst, err := ftbfs.BuildVertex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	eo, vo := est.Oracle(), vst.Oracle()
	ctx := context.Background()
	epsBits := math.Float64bits(eps)

	// Intact distances.
	for v := 0; v < g.N(); v++ {
		d, werr, err := wc.Point(ctx, wire.TDist, &wire.PointQuery{
			FP: fp, EpsBits: epsBits, Source: 0, V: int32(v), A: -1, B: -1,
		})
		if err != nil || werr != nil {
			t.Fatalf("wire dist(%d): %v %v", v, err, werr)
		}
		if int(d) != eo.Dist(v) {
			t.Fatalf("wire dist(%d) = %d, oracle says %d", v, d, eo.Dist(v))
		}
	}

	// Every failable edge, two targets each, against both HTTP and oracle.
	for i, e := range est.Edges() {
		if est.IsReinforced(e[0], e[1]) {
			continue
		}
		for _, v := range []int{(i * 13) % g.N(), e[1]} {
			want, err := eo.DistAvoiding(v, e[0], e[1])
			if err != nil {
				t.Fatal(err)
			}
			d, werr, err := wc.Point(ctx, wire.TDistAvoiding, &wire.PointQuery{
				FP: fp, EpsBits: epsBits, Source: 0, V: int32(v), A: int32(e[0]), B: int32(e[1]),
			})
			if err != nil || werr != nil {
				t.Fatalf("wire dist-avoiding(v=%d, e={%d,%d}): %v %v", v, e[0], e[1], err, werr)
			}
			var dr distResponse
			code, body := getJSON(t, fmt.Sprintf("%s/dist-avoiding?graph=%s&eps=%g&v=%d&fu=%d&fv=%d",
				ts.URL, fpHex, eps, v, e[0], e[1]), &dr)
			if code != http.StatusOK {
				t.Fatalf("HTTP dist-avoiding: %d %s", code, body)
			}
			if int(d) != want || dr.Dist != want {
				t.Fatalf("dist-avoiding(v=%d, e={%d,%d}): wire=%d http=%d oracle=%d",
					v, e[0], e[1], d, dr.Dist, want)
			}
		}
	}

	// Every failable vertex, two targets each.
	for w := 1; w < g.N(); w++ {
		for _, v := range []int{w, (w + 11) % g.N()} {
			want, err := vo.DistAvoidingVertex(v, w)
			if err != nil {
				t.Fatal(err)
			}
			d, werr, err := wc.Point(ctx, wire.TDistAvoidingVertex, &wire.PointQuery{
				FP: fp, Source: 0, V: int32(v), A: int32(w), B: -1,
			})
			if err != nil || werr != nil {
				t.Fatalf("wire dist-avoiding-vertex(v=%d, w=%d): %v %v", v, w, err, werr)
			}
			var dr distResponse
			code, body := getJSON(t, fmt.Sprintf("%s/dist-avoiding-vertex?graph=%s&v=%d&fw=%d",
				ts.URL, fpHex, v, w), &dr)
			if code != http.StatusOK {
				t.Fatalf("HTTP dist-avoiding-vertex: %d %s", code, body)
			}
			if int(d) != want || dr.Dist != want {
				t.Fatalf("dist-avoiding-vertex(v=%d, w=%d): wire=%d http=%d oracle=%d",
					v, w, d, dr.Dist, want)
			}
		}
	}
}

// TestWireBatchMatchesHTTPBatch sends the same mixed edge/vertex batch —
// good slots and bad — down both transports and requires identical answers
// slot for slot, including error text.
func TestWireBatchMatchesHTTPBatch(t *testing.T) {
	ts, wc, st := newWireServer(t)
	g := testGraph(t, 40, 60, 32)
	fp, err := st.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	fpHex := fmt.Sprintf("%016x", fp)
	eps := 0.3
	est, err := ftbfs.Build(g, 0, eps)
	if err != nil {
		t.Fatal(err)
	}
	var fe [2]int
	for _, e := range est.Edges() {
		if !est.IsReinforced(e[0], e[1]) {
			fe = e
			break
		}
	}
	epsBits := math.Float64bits(eps)
	point := func(v, a, b int) wire.PointQuery {
		return wire.PointQuery{FP: fp, EpsBits: epsBits, Source: 0, V: int32(v), A: int32(a), B: int32(b)}
	}
	vpoint := func(v, w int) wire.PointQuery {
		return wire.PointQuery{FP: fp, Source: 0, V: int32(v), A: int32(w), B: -1}
	}
	slots := []wire.BatchSlot{
		{PointQuery: point(7, fe[0], fe[1])},
		{PointQuery: vpoint(11, 5), Vertex: true},
		{PointQuery: vpoint(5, 5), Vertex: true},
		{PointQuery: point(1, 0, 0)},             // bad: not an edge
		{PointQuery: vpoint(2, 0), Vertex: true}, // bad: the source cannot fail
		{PointQuery: point(39, fe[1], fe[0])},    // reversed endpoints, same edge
	}
	dists, werrs, werr, err := wc.Batch(context.Background(), slots)
	if err != nil || werr != nil {
		t.Fatalf("wire batch: %v %v", err, werr)
	}

	fw, fwSrc := 5, 0
	httpReq := BatchQueryRequest{Graph: fpHex, Eps: &eps, Queries: []BatchQuery{
		{V: 7, Fail: fe},
		{V: 11, FailedVertex: &fw},
		{V: 5, FailedVertex: &fw},
		{V: 1, Fail: [2]int{0, 0}},
		{V: 2, FailedVertex: &fwSrc},
		{V: 39, Fail: [2]int{fe[1], fe[0]}},
	}}
	var httpResp BatchQueryResponse
	code, body := postJSON(t, ts.URL+"/batch-query", httpReq, &httpResp)
	if code != http.StatusOK {
		t.Fatalf("HTTP batch: %d %s", code, body)
	}
	if len(dists) != len(slots) || len(httpResp.Dists) != len(slots) {
		t.Fatalf("slot counts: wire %d, http %d, want %d", len(dists), len(httpResp.Dists), len(slots))
	}
	for i := range slots {
		if int(dists[i]) != httpResp.Dists[i] {
			t.Fatalf("slot %d: wire dist %d != http dist %d", i, dists[i], httpResp.Dists[i])
		}
		we := ""
		if werrs != nil {
			we = werrs[i]
		}
		he := ""
		if httpResp.Errors != nil {
			he = httpResp.Errors[i]
		}
		if we != he {
			t.Fatalf("slot %d: wire error %q != http error %q", i, we, he)
		}
	}
	if werrs == nil || werrs[3] == "" || werrs[4] == "" {
		t.Fatalf("bad slots did not error over wire: %v", werrs)
	}
}

// TestWireErrorStatuses checks the RError status codes mirror the HTTP
// statuses for the same failures.
func TestWireErrorStatuses(t *testing.T) {
	_, wc, st := newWireServer(t)
	g := testGraph(t, 20, 25, 33)
	fp, err := st.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	epsBits := math.Float64bits(0.3)

	// Unknown graph → 404.
	_, werr, err := wc.Point(ctx, wire.TDist, &wire.PointQuery{
		FP: fp + 1, EpsBits: epsBits, V: 1, A: -1, B: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if werr == nil || werr.Code != http.StatusNotFound {
		t.Fatalf("unknown graph: %v, want code 404", werr)
	}
	// Out-of-range vertex → 400.
	_, werr, err = wc.Point(ctx, wire.TDist, &wire.PointQuery{
		FP: fp, EpsBits: epsBits, V: 99999, A: -1, B: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if werr == nil || werr.Code != http.StatusBadRequest {
		t.Fatalf("bad vertex: %v, want code 400", werr)
	}
	// Source failure on the vertex model → 400.
	_, werr, err = wc.Point(ctx, wire.TDistAvoidingVertex, &wire.PointQuery{
		FP: fp, V: 1, A: 0, B: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if werr == nil || werr.Code != http.StatusBadRequest {
		t.Fatalf("source failure: %v, want code 400", werr)
	}
	// Non-finite ε is rejected before touching the store.
	_, werr, err = wc.Point(ctx, wire.TDistAvoiding, &wire.PointQuery{
		FP: fp, EpsBits: math.Float64bits(math.Inf(1)), V: 1, A: 0, B: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if werr == nil || werr.Code != http.StatusBadRequest {
		t.Fatalf("inf eps: %v, want code 400", werr)
	}
}
